package cds_test

// External test package: internal/sweep imports the cds facade (its
// batch runner fans out cds.CompareAll), so benchmarks touching sweep
// must live outside package cds to avoid a test-binary import cycle.

import (
	"testing"

	"cds/internal/sweep"
	"cds/internal/workloads"
)

// BenchmarkSweep measures a full frame-buffer sweep over the MPEG
// workload: many independent (FB size -> three schedulers + simulation)
// points, the shape the worker pool parallelizes and the analysis cache
// deduplicates.
func BenchmarkSweep(b *testing.B) {
	e := workloads.MPEG()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.FB(e.Arch, e.Part, 768, 8192, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatch measures the batch runner on an arch x workload grid:
// three machine generations crossed with every Table 1 row.
func BenchmarkBatch(b *testing.B) {
	archs, _ := sweep.PresetArchs("M1/4", "M1", "M2")
	jobs := sweep.Grid(archs, workloads.All())
	for i := 0; i < b.N; i++ {
		outcomes := sweep.Batch(jobs, 0)
		if len(outcomes) != len(jobs) {
			b.Fatalf("outcomes = %d, want %d", len(outcomes), len(jobs))
		}
	}
}
