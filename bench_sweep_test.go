package cds_test

// External test package: internal/sweep imports the cds facade (its
// batch runner fans out cds.CompareAll), so benchmarks touching sweep
// must live outside package cds to avoid a test-binary import cycle.

import (
	"testing"

	"cds/internal/rescache"
	"cds/internal/sweep"
	"cds/internal/workloads"
)

// BenchmarkSweep measures a full frame-buffer sweep over the MPEG
// workload: many independent (FB size -> three schedulers + simulation)
// points, the shape the worker pool parallelizes and the analysis cache
// deduplicates.
func BenchmarkSweep(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.FB(e.Arch, e.Part, 768, 8192, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatch measures the batch runner on an arch x workload grid:
// three machine generations crossed with every Table 1 row.
func BenchmarkBatch(b *testing.B) {
	b.ReportAllocs()
	archs, _ := sweep.PresetArchs("M1/4", "M1", "M2")
	jobs := sweep.Grid(archs, workloads.All())
	for i := 0; i < b.N; i++ {
		outcomes := sweep.Batch(jobs, 0)
		if len(outcomes) != len(jobs) {
			b.Fatalf("outcomes = %d, want %d", len(outcomes), len(jobs))
		}
	}
}

// BenchmarkSweepUncached is BenchmarkSweep with the result caches
// disabled: every point pays full scheduling cost each iteration. The
// ratio to BenchmarkSweep is the repeated-point win of the result cache;
// this variant tracks the raw scheduling core.
func BenchmarkSweepUncached(b *testing.B) {
	b.ReportAllocs()
	prev := rescache.SetEnabled(false)
	defer rescache.SetEnabled(prev)
	e := workloads.MPEG()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.FB(e.Arch, e.Part, 768, 8192, 128); err != nil {
			b.Fatal(err)
		}
	}
}
