package cds

// The benchmark harness regenerates the paper's evaluation artifacts:
//
//   - BenchmarkTable1/<row> reproduces one Table 1 row (and thereby one
//     Figure 6 bar pair): it runs Basic, DS and CDS on the workload and
//     reports the improvements, the reuse factor and the retention volume
//     as benchmark metrics.
//   - BenchmarkMPEGMemoryFloor reproduces the in-text result that the
//     Basic Scheduler cannot execute MPEG with a 1K frame buffer.
//   - BenchmarkFigure5Allocation exercises the section 5 allocator replay
//     (the Figure 5 timeline) on the MPEG workload.
//   - BenchmarkAblation* isolate design choices the paper calls out
//     (TF ranking, last-resort splitting).
//   - BenchmarkScaling measures scheduler cost on growing synthetic
//     workloads.
//
// Run with: go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"cds/internal/arch"

	"cds/internal/alloc"
	"cds/internal/core"
	"cds/internal/machine"
	"cds/internal/sim"
	"cds/internal/workloads"
)

// benchComparison runs the three schedulers once per iteration and
// reports the paper's metrics.
func benchComparison(b *testing.B, e workloads.Experiment) {
	b.Helper()
	b.ReportAllocs()
	var cmp *Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = CompareAll(e.Arch, e.Part)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.ImprovementDS, "ds_impr_%")
	b.ReportMetric(cmp.ImprovementCDS, "cds_impr_%")
	b.ReportMetric(float64(cmp.RF), "rf")
	b.ReportMetric(float64(cmp.DTBytes), "dt_B/iter")
	if e.PaperDS >= 0 {
		b.ReportMetric(e.PaperDS, "paper_ds_%")
	}
	if e.PaperCDS >= 0 {
		b.ReportMetric(e.PaperCDS, "paper_cds_%")
	}
}

// BenchmarkTable1 regenerates every Table 1 row / Figure 6 bar pair.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for _, e := range workloads.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) { benchComparison(b, e) })
	}
}

// BenchmarkMPEGMemoryFloor reproduces the paper's memory-floor result:
// at FB = 1K the Basic Scheduler is infeasible while DS and CDS run; the
// reported metric is the CDS execution time there.
func BenchmarkMPEGMemoryFloor(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEGFloor()
	var cycles int
	for i := 0; i < b.N; i++ {
		if _, err := (core.Basic{}).Schedule(e.Arch, e.Part); err == nil {
			b.Fatal("basic scheduler unexpectedly fits MPEG in 1K")
		}
		s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sim.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cds_cycles@1K")
}

// BenchmarkFigure5Allocation replays the section 5 allocation algorithm
// (the Figure 5 timeline) for the MPEG CDS schedule.
func BenchmarkFigure5Allocation(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	var rep *core.AllocationReport
	for i := 0; i < b.N; i++ {
		rep, err = core.Allocate(s, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Splits), "splits")
	b.ReportMetric(float64(len(rep.Events)), "events")
	if !rep.Regular {
		b.Fatal("allocation lost regularity")
	}
}

// BenchmarkAblationRanking isolates the value of the paper's TF ranking
// on a workload where the frame buffer can keep only one of two competing
// shared objects: the TF ranking keeps the one avoiding more transfers.
func BenchmarkAblationRanking(b *testing.B) {
	b.ReportAllocs()
	e := workloads.RankingAblation()
	basicS, err := (core.Basic{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	basicR, err := sim.Run(basicS)
	if err != nil {
		b.Fatal(err)
	}
	rankings := []struct {
		name string
		fn   core.RankFunc
	}{
		{"tf", core.RankTF},
		{"size", core.RankBySize},
		{"fifo", core.RankFIFO},
	}
	for _, rk := range rankings {
		rk := rk
		b.Run(rk.name, func(b *testing.B) {
			b.ReportAllocs()
			var imp, avoided float64
			for i := 0; i < b.N; i++ {
				s, err := (core.CompleteDataScheduler{Ranking: rk.fn}).Schedule(e.Arch, e.Part)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				imp = sim.Improvement(basicR, r)
				avoided = float64(s.AvoidedBytesPerIter())
			}
			b.ReportMetric(imp, "cds_impr_%")
			b.ReportMetric(avoided, "avoided_B/iter")
		})
	}
}

// BenchmarkAblationSplit compares allocation with and without last-resort
// splitting across all experiments (the paper reports zero splits; this
// shows the mechanism is never needed on these workloads but costs
// nothing to have).
func BenchmarkAblationSplit(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	for _, allow := range []bool{false, true} {
		allow := allow
		name := "forbidden"
		if allow {
			name = "allowed"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Allocate(s, allow); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFit compares the allocator's block-selection policies
// (the paper uses first-fit) on the MPEG schedule: splits and peak
// occupancy are the quality metrics, ns/op the cost.
func BenchmarkAblationFit(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	policies := []struct {
		name string
		p    alloc.FitPolicy
	}{
		{"first", alloc.FirstFit},
		{"best", alloc.BestFit},
		{"worst", alloc.WorstFit},
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.AllocationReport
			for i := 0; i < b.N; i++ {
				rep, err = core.AllocateWithOptions(s, core.AllocOptions{AllowSplit: true, FitPolicy: pol.p})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Splits), "splits")
			peak := 0
			for _, p := range rep.PeakUsed {
				if p > peak {
					peak = p
				}
			}
			b.ReportMetric(float64(peak), "peak_B")
		})
	}
}

// BenchmarkAblationTwoSided measures the paper's data-top/results-bottom
// placement discipline against placing everything from the top.
func BenchmarkAblationTwoSided(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	for _, oneSided := range []bool{false, true} {
		oneSided := oneSided
		name := "two-sided"
		if oneSided {
			name = "one-sided"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.AllocationReport
			for i := 0; i < b.N; i++ {
				rep, err = core.AllocateWithOptions(s, core.AllocOptions{AllowSplit: true, OneSided: oneSided})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Splits), "splits")
			regular := 1.0
			if !rep.Regular {
				regular = 0
			}
			b.ReportMetric(regular, "regular")
		})
	}
}

// BenchmarkAblationCommonRF compares the paper's take-the-max RF policy
// against a joint RF/retention sweep on every Table 1 experiment; the
// metric is how many experiments the sweep actually improves (the paper's
// simpler policy is validated if this stays at 0).
func BenchmarkAblationCommonRF(b *testing.B) {
	b.ReportAllocs()
	exps := workloads.All()
	var wins int
	for i := 0; i < b.N; i++ {
		wins = 0
		for _, e := range exps {
			mx, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
			if err != nil {
				b.Fatal(err)
			}
			sw, err := (core.CompleteDataScheduler{RF: core.RFSweep}).Schedule(e.Arch, e.Part)
			if err != nil {
				b.Fatal(err)
			}
			rMax, err := sim.Run(mx)
			if err != nil {
				b.Fatal(err)
			}
			rSweep, err := sim.Run(sw)
			if err != nil {
				b.Fatal(err)
			}
			if rSweep.TotalCycles < rMax.TotalCycles {
				wins++
			}
		}
	}
	b.ReportMetric(float64(wins), "sweep_wins")
}

// BenchmarkScaling measures end-to-end scheduler cost (analysis,
// retention selection, allocation, timing) on growing synthetic
// workloads.
func BenchmarkScaling(b *testing.B) {
	b.ReportAllocs()
	for _, clusters := range []int{4, 8, 16, 32} {
		clusters := clusters
		b.Run(benchName("clusters", clusters), func(b *testing.B) {
			b.ReportAllocs()
			cfg := workloads.DefaultSynthetic()
			cfg.Clusters = clusters
			part, err := workloads.Synthetic(cfg, 42)
			if err != nil {
				b.Fatal(err)
			}
			pa := workloads.SyntheticArch(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(CDS, pa, part); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + strconv.Itoa(n)
}

// BenchmarkCompareAll measures the wall-clock cost of one full
// three-scheduler comparison — the unit of work every sweep point and
// every Table 1 row pays. The synthetic variants grow the cluster count
// so the analysis and scheduling cost dominates the harness.
func BenchmarkCompareAll(b *testing.B) {
	b.ReportAllocs()
	cases := []struct {
		name string
		arch Arch
		part *Part
	}{}
	e := workloads.MPEG()
	cases = append(cases, struct {
		name string
		arch Arch
		part *Part
	}{"MPEG", e.Arch, e.Part})
	for _, clusters := range []int{8, 32} {
		cfg := workloads.DefaultSynthetic()
		cfg.Clusters = clusters
		part, err := workloads.Synthetic(cfg, 42)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			arch Arch
			part *Part
		}{benchName("synthetic/clusters", clusters), workloads.SyntheticArch(cfg), part})
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CompareAll(c.arch, c.part); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOverlap quantifies what the double-buffered Frame
// Buffer buys: the same CDS schedule simulated with and without
// transfer/compute overlap, per experiment.
func BenchmarkAblationOverlap(b *testing.B) {
	b.ReportAllocs()
	for _, name := range []string{"E1*", "MPEG", "ATR-SLD"} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			e, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
			if err != nil {
				b.Fatal(err)
			}
			var gain float64
			for i := 0; i < b.N; i++ {
				gain, err = sim.OverlapGain(s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(gain, "overlap_gain_%")
		})
	}
}

// BenchmarkFunctionalMachine measures the functional executor and keeps
// the equivalence property hot: Basic and CDS must produce identical
// final outputs while moving different traffic.
func BenchmarkFunctionalMachine(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	sBasic, err := (core.Basic{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	sCDS, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rBasic, err := machine.Run(sBasic, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		rCDS, err := machine.Run(sCDS, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		want := rBasic.FinalOutputs(sBasic)
		got := rCDS.FinalOutputs(sCDS)
		if len(want) != len(got) {
			b.Fatal("output sets differ")
		}
		for k, v := range want {
			if !bytes.Equal(got[k], v) {
				b.Fatalf("output %s differs between schedulers", k)
			}
		}
	}
}

// BenchmarkGenerations schedules the MPEG workload on the three machine
// presets, reporting how a bigger machine (M2: 4x FB, 2x CM, 2x bus)
// shifts the CDS result.
func BenchmarkGenerations(b *testing.B) {
	b.ReportAllocs()
	part := workloads.MPEG().Part
	for _, name := range []string{"M1/4", "M1", "M2"} {
		name := name
		pa := arch.Presets()[name]
		b.Run(strings.ReplaceAll(name, "/", "_"), func(b *testing.B) {
			b.ReportAllocs()
			var cycles, rf int
			for i := 0; i < b.N; i++ {
				s, err := (core.CompleteDataScheduler{}).Schedule(pa, part)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				cycles, rf = r.TotalCycles, s.RF
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(rf), "rf")
		})
	}
}

// BenchmarkCompareAllKeyedHit measures a warm-cache comparison when the
// caller hoists canonicalization: ComparisonKey runs once up front and
// every hit goes through CompareAllKeyed. BenchmarkCompareAllUnkeyedHit
// is the same hit through CompareAllCtx, which re-canonicalizes the
// partition on each call. The allocation delta between the two pins
// what the hoist saves schedd's hot compare path, where the same key
// used to be derived up to three times per request.
func BenchmarkCompareAllKeyedHit(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	if _, err := CompareAll(e.Arch, e.Part); err != nil {
		b.Fatal(err)
	}
	key := ComparisonKey(e.Arch, e.Part)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompareAllKeyed(ctx, e.Arch, e.Part, key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompareAllUnkeyedHit(b *testing.B) {
	b.ReportAllocs()
	e := workloads.MPEG()
	if _, err := CompareAll(e.Arch, e.Part); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompareAllCtx(ctx, e.Arch, e.Part); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareAllUncached is BenchmarkCompareAll with result caching
// off: the cost of actually scheduling, not of hitting the cache. This
// is the number that tracks the scheduling core itself.
func BenchmarkCompareAllUncached(b *testing.B) {
	b.ReportAllocs()
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	e := workloads.MPEG()
	for i := 0; i < b.N; i++ {
		if _, err := CompareAll(e.Arch, e.Part); err != nil {
			b.Fatal(err)
		}
	}
}
