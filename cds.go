// Package cds is the public facade of the Complete Data Scheduler
// reproduction (Sanchez-Elez et al., DATE 2002): scheduling of data and
// context transfers for multi-context reconfigurable architectures of the
// MorphoSys family.
//
// The typical flow mirrors the paper's compilation framework:
//
//	a := cds.NewApp("mpeg", 30).
//		Datum("frame", 512). ... // declare data and kernels
//	part := cds.Partition(a, 2, 2, 1)  // kernel scheduler output
//	res, err := cds.Run(cds.CDS, cds.M1().WithFB(2*cds.KiB), part)
//	fmt.Println(res.Timing.TotalCycles)
//
// or, comparing all three schedulers the way the paper's evaluation does:
//
//	cmp, err := cds.CompareAll(archParams, part)
//	fmt.Printf("DS %.0f%%  CDS %.0f%%\n", cmp.ImprovementDS, cmp.ImprovementCDS)
//
// The heavy lifting lives in the internal packages (arch, app, extract,
// alloc, core, sim, ksched, csched, codegen, rcarray, kernels); this
// package re-exports the stable surface.
package cds

import (
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/core"
	"cds/internal/sim"
)

// KiB is re-exported for memory-size literals.
const KiB = arch.KiB

// Re-exported architecture types and constructors.
type (
	// Arch describes one MorphoSys-class machine.
	Arch = arch.Params
	// App is a validated application (kernel sequence + data).
	App = app.App
	// AppBuilder assembles an App.
	AppBuilder = app.Builder
	// Part is a cluster decomposition of an App.
	Part = app.Partition
	// Schedule is a scheduler's transfer/compute plan.
	Schedule = core.Schedule
	// Timing is the simulator's report for one schedule.
	Timing = sim.Result
	// Allocation is the Frame Buffer allocation replay report.
	Allocation = core.AllocationReport
)

// M1 returns the default MorphoSys M1 parameters.
func M1() Arch { return arch.M1() }

// NewApp starts an application with the given name and iteration count.
func NewApp(name string, iterations int) *AppBuilder { return app.NewBuilder(name, iterations) }

// Partition splits an app into clusters of the given kernel counts,
// alternating FB sets.
func Partition(a *App, numSets int, sizes ...int) (*Part, error) {
	return app.NewPartition(a, numSets, sizes...)
}

// SchedulerKind selects one of the three scheduling policies the paper
// compares.
type SchedulerKind int

const (
	// Basic is the DATE'99 baseline: per-kernel transfers, no reuse.
	Basic SchedulerKind = iota
	// DS is the ISSS'01 Data Scheduler: within-cluster reuse + RF.
	DS
	// CDS is the paper's Complete Data Scheduler: DS + TF-ranked
	// inter-cluster retention.
	CDS
)

func (k SchedulerKind) String() string {
	switch k {
	case Basic:
		return "basic"
	case DS:
		return "ds"
	case CDS:
		return "cds"
	}
	return fmt.Sprintf("scheduler(%d)", int(k))
}

func (k SchedulerKind) scheduler() (core.Scheduler, error) {
	switch k {
	case Basic:
		return core.Basic{}, nil
	case DS:
		return core.DataScheduler{}, nil
	case CDS:
		return core.CompleteDataScheduler{}, nil
	}
	return nil, fmt.Errorf("cds: unknown scheduler kind %d", int(k))
}

// Result bundles everything one scheduler run produces.
type Result struct {
	// Schedule is the transfer/compute plan.
	Schedule *Schedule
	// Timing is the simulated execution.
	Timing *Timing
	// Allocation is the Frame Buffer replay (addresses, peaks, splits,
	// regularity).
	Allocation *Allocation
}

// Run schedules, allocates and simulates the partition under one policy.
func Run(kind SchedulerKind, pa Arch, part *Part) (*Result, error) {
	sched, err := kind.scheduler()
	if err != nil {
		return nil, err
	}
	s, err := sched.Schedule(pa, part)
	if err != nil {
		return nil, err
	}
	alloc, err := core.Allocate(s, true)
	if err != nil {
		return nil, err
	}
	timing, err := sim.Run(s)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Timing: timing, Allocation: alloc}, nil
}

// Comparison is one Table 1 row: the three schedulers on one workload.
type Comparison struct {
	Basic, DS, CDS *Result
	// BasicErr is set when the Basic Scheduler cannot execute the
	// application at all (the paper's MPEG-at-1K case); improvements
	// are reported as 100 then.
	BasicErr error
	// ImprovementDS and ImprovementCDS are the paper's Figure 6 metric:
	// relative execution improvement (%) over the Basic Scheduler.
	ImprovementDS, ImprovementCDS float64
	// RF is the context reuse factor DS and CDS settled on.
	RF int
	// DTBytes is Table 1's DT: data transfer bytes avoided per
	// iteration by the Complete Data Scheduler's retention.
	DTBytes int
}

// CompareAll runs Basic, DS and CDS on the same workload and computes the
// paper's comparison metrics.
//
// The three scheduler runs are independent — they share only the
// partition, the architecture parameters and the memoized (immutable)
// analysis — so they fan out across goroutines; DS and CDS errors
// propagate (DS first, matching the serial order), while a Basic failure
// is the paper's memory-floor outcome and is reported in BasicErr.
func CompareAll(pa Arch, part *Part) (*Comparison, error) {
	cmp := &Comparison{}
	kinds := []SchedulerKind{DS, CDS, Basic}
	results := make([]*Result, len(kinds))
	var basicErr error
	err := conc.ForEach(conc.DefaultLimit(), len(kinds), func(i int) error {
		r, err := Run(kinds[i], pa, part)
		if err != nil {
			if kinds[i] == Basic {
				// Basic infeasibility (the MPEG-at-1K case) is a
				// result, not a failure.
				basicErr = err
				return nil
			}
			return fmt.Errorf("cds: %s scheduler: %w", schedulerLongName(kinds[i]), err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	cmp.DS, cmp.CDS, cmp.Basic = results[0], results[1], results[2]
	cmp.BasicErr = basicErr
	cmp.RF = cmp.CDS.Schedule.RF
	cmp.DTBytes = cmp.CDS.Schedule.AvoidedBytesPerIter()
	if cmp.BasicErr != nil {
		cmp.ImprovementDS, cmp.ImprovementCDS = 100, 100
		return cmp, nil
	}
	cmp.ImprovementDS = sim.Improvement(cmp.Basic.Timing, cmp.DS.Timing)
	cmp.ImprovementCDS = sim.Improvement(cmp.Basic.Timing, cmp.CDS.Timing)
	return cmp, nil
}

func schedulerLongName(k SchedulerKind) string {
	switch k {
	case Basic:
		return "basic"
	case DS:
		return "data"
	case CDS:
		return "complete data"
	}
	return k.String()
}
