// Package cds is the public facade of the Complete Data Scheduler
// reproduction (Sanchez-Elez et al., DATE 2002): scheduling of data and
// context transfers for multi-context reconfigurable architectures of the
// MorphoSys family.
//
// The typical flow mirrors the paper's compilation framework:
//
//	a := cds.NewApp("mpeg", 30).
//		Datum("frame", 512). ... // declare data and kernels
//	part := cds.Partition(a, 2, 2, 1)  // kernel scheduler output
//	res, err := cds.Run(cds.CDS, cds.M1().WithFB(2*cds.KiB), part)
//	fmt.Println(res.Timing.TotalCycles)
//
// or, comparing all three schedulers the way the paper's evaluation does:
//
//	cmp, err := cds.CompareAll(archParams, part)
//	fmt.Printf("DS %.0f%%  CDS %.0f%%\n", cmp.ImprovementDS, cmp.ImprovementCDS)
//
// The heavy lifting lives in the internal packages (arch, app, extract,
// alloc, core, sim, ksched, csched, codegen, rcarray, kernels); this
// package re-exports the stable surface.
package cds

import (
	"context"
	"errors"
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/core"
	"cds/internal/rescache"
	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/verify"
)

// KiB is re-exported for memory-size literals.
const KiB = arch.KiB

// Re-exported architecture types and constructors.
type (
	// Arch describes one MorphoSys-class machine.
	Arch = arch.Params
	// App is a validated application (kernel sequence + data).
	App = app.App
	// AppBuilder assembles an App.
	AppBuilder = app.Builder
	// Part is a cluster decomposition of an App.
	Part = app.Partition
	// Schedule is a scheduler's transfer/compute plan.
	Schedule = core.Schedule
	// Timing is the simulator's report for one schedule.
	Timing = sim.Result
	// Allocation is the Frame Buffer allocation replay report.
	Allocation = core.AllocationReport
)

// M1 returns the default MorphoSys M1 parameters.
func M1() Arch { return arch.M1() }

// NewApp starts an application with the given name and iteration count.
func NewApp(name string, iterations int) *AppBuilder { return app.NewBuilder(name, iterations) }

// Partition splits an app into clusters of the given kernel counts,
// alternating FB sets.
func Partition(a *App, numSets int, sizes ...int) (*Part, error) {
	return app.NewPartition(a, numSets, sizes...)
}

// SchedulerKind selects one of the three scheduling policies the paper
// compares.
type SchedulerKind int

const (
	// Basic is the DATE'99 baseline: per-kernel transfers, no reuse.
	Basic SchedulerKind = iota
	// DS is the ISSS'01 Data Scheduler: within-cluster reuse + RF.
	DS
	// CDS is the paper's Complete Data Scheduler: DS + TF-ranked
	// inter-cluster retention.
	CDS
)

func (k SchedulerKind) String() string {
	switch k {
	case Basic:
		return "basic"
	case DS:
		return "ds"
	case CDS:
		return "cds"
	}
	return fmt.Sprintf("scheduler(%d)", int(k))
}

func (k SchedulerKind) scheduler() (core.Scheduler, error) {
	switch k {
	case Basic:
		return core.Basic{}, nil
	case DS:
		return core.DataScheduler{Eval: simCycles}, nil
	case CDS:
		return core.CompleteDataScheduler{Eval: simCycles}, nil
	}
	return nil, fmt.Errorf("cds: unknown scheduler kind %d", int(k))
}

// simCycles is the timing evaluator wired into the data schedulers' RF
// guard: candidate reuse factors are scored by the event-driven simulator
// so the chosen schedule is fastest under the machine model, not merely
// lightest on DMA traffic (core cannot import internal/sim itself).
func simCycles(s *core.Schedule) (int, error) {
	r, err := sim.Run(s)
	if err != nil {
		return 0, err
	}
	return r.TotalCycles, nil
}

// Result bundles everything one scheduler run produces.
type Result struct {
	// Schedule is the transfer/compute plan.
	Schedule *Schedule
	// Timing is the simulated execution.
	Timing *Timing
	// Allocation is the Frame Buffer replay (addresses, peaks, splits,
	// regularity).
	Allocation *Allocation
}

// Run schedules, allocates and simulates the partition under one policy.
// It is RunCtx with a background context.
func Run(kind SchedulerKind, pa Arch, part *Part) (*Result, error) {
	return RunCtx(context.Background(), kind, pa, part)
}

// RunCtx is Run with cooperative cancellation: once ctx is done the
// pipeline stops between stages and returns an error matching
// scherr.ErrCanceled. Failures are classified by the scherr taxonomy
// (errors.Is against ErrInfeasible, ErrCapacity, ErrCanceled, ...).
func RunCtx(ctx context.Context, kind SchedulerKind, pa Arch, part *Part) (*Result, error) {
	sched, err := kind.scheduler()
	if err != nil {
		return nil, err
	}
	s, err := sched.ScheduleCtx(ctx, pa, part)
	if err != nil {
		return nil, err
	}
	if err := scherr.FromContext(ctx); err != nil {
		return nil, err
	}
	alloc, err := core.Allocate(s, true)
	if err != nil {
		return nil, err
	}
	timing, err := sim.Run(s)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Timing: timing, Allocation: alloc}, nil
}

// RunVerified is RunCtx plus a post-hoc pass of the invariant verifier
// (internal/verify) over the produced schedule: capacity, liveness, DMA
// serialization and context-residency invariants all have to hold or an
// error matching scherr.ErrVerify is returned alongside the result that
// failed. It is the belt-and-braces entry point for untrusted inputs.
func RunVerified(ctx context.Context, kind SchedulerKind, pa Arch, part *Part) (*Result, error) {
	res, err := RunCtx(ctx, kind, pa, part)
	if err != nil {
		return nil, err
	}
	if err := verify.Schedule(res.Schedule); err != nil {
		return res, fmt.Errorf("cds: %s scheduler: %w", kind, err)
	}
	return res, nil
}

// Comparison is one Table 1 row: the three schedulers on one workload.
type Comparison struct {
	Basic, DS, CDS *Result
	// BasicErr is set when the Basic Scheduler cannot execute the
	// application at all (the paper's MPEG-at-1K case); improvements
	// are reported as 100 then.
	BasicErr error
	// DSErr and CDSErr carry that scheduler's failure when it could not
	// produce a result. A comparison with a failed scheduler still
	// reports the survivors' results — one scheduler failing does not
	// lose the other two's work. The errors are typed: branch on them
	// with errors.Is/As against the scherr taxonomy (and conc.PanicError
	// for a crashed run).
	DSErr, CDSErr error
	// ImprovementDS and ImprovementCDS are the paper's Figure 6 metric:
	// relative execution improvement (%) over the Basic Scheduler.
	ImprovementDS, ImprovementCDS float64
	// RF is the context reuse factor DS and CDS settled on.
	RF int
	// DTBytes is Table 1's DT: data transfer bytes avoided per
	// iteration by the Complete Data Scheduler's retention.
	DTBytes int
}

// Degraded reports whether the comparison lost a data scheduler's result
// (DS or CDS failed) and the remaining fields describe a partial run. A
// Basic failure alone is NOT degradation — it is the paper's
// memory-floor outcome, carried in BasicErr as data. Serving layers use
// this to answer a request with the surviving results instead of a hard
// failure.
func (c *Comparison) Degraded() bool { return c.DSErr != nil || c.CDSErr != nil }

// Usable reports whether the comparison carries at least one data
// scheduler's result worth returning to a caller.
func (c *Comparison) Usable() bool { return c.DS != nil || c.CDS != nil }

// CompareAll runs Basic, DS and CDS on the same workload and computes the
// paper's comparison metrics. It is CompareAllCtx with a background
// context.
func CompareAll(pa Arch, part *Part) (*Comparison, error) {
	return CompareAllCtx(context.Background(), pa, part)
}

// CompareAllCtx runs Basic, DS and CDS on the same workload and computes
// the paper's comparison metrics.
//
// The three scheduler runs are independent — they share only the
// partition, the architecture parameters and the memoized (immutable)
// analysis — so they fan out across goroutines. Each run is isolated:
// a failure (or panic, surfaced as a *conc.PanicError) in one scheduler
// is recorded in the matching per-scheduler error field and the other
// two's results are kept. The returned Comparison is non-nil whenever
// scheduling was attempted; the returned error summarizes the first
// DS/CDS failure (DS first, matching the serial order) so existing
// callers still see failures, while degradation-aware callers read the
// partial Comparison instead. A Basic failure is the paper's
// memory-floor outcome and is only reported in BasicErr.
//
// Comparisons are memoized under the spec's content fingerprint (see
// ComparisonKey): re-posing a solved (arch, partition) point returns
// the cached *Comparison — shared and immutable, like the analysis Info
// — in O(hash). Only clean outcomes are cached; errors (including
// cancellation) always recompute. SetResultCaching(false) restores the
// uncached pipeline.
func CompareAllCtx(ctx context.Context, pa Arch, part *Part) (*Comparison, error) {
	if !cachingEnabled.Load() || !rescache.Enabled() {
		return compareAll(ctx, pa, part, nil)
	}
	return CompareAllKeyed(ctx, pa, part, ComparisonKey(pa, part))
}

// CompareAllKeyed is CompareAllCtx with the content fingerprint already
// in hand. Serving layers compute ComparisonKey once per request (cache
// lookup, peer fill and the comparison itself all address the same
// key); recomputing the canonical hash for each step is pure waste —
// BenchmarkCompareAllKeyedHit pins the saving. key MUST equal
// ComparisonKey(pa, part); anything else poisons the result cache.
func CompareAllKeyed(ctx context.Context, pa Arch, part *Part, key rescache.Key) (*Comparison, error) {
	if !cachingEnabled.Load() || !rescache.Enabled() {
		return compareAll(ctx, pa, part, nil)
	}
	// A dead context must report cancellation, not a cache hit: callers
	// distinguish "answered" from "gave up" by the error.
	if err := scherr.FromContext(ctx); err != nil {
		return nil, err
	}
	v := comparisonCache.Do(key, func() (any, bool) {
		cmp, err := compareAll(ctx, pa, part, nil)
		return compareOutcome{cmp, err}, err == nil
	})
	o := v.(compareOutcome)
	if o.err != nil && errors.Is(o.err, scherr.ErrCanceled) && scherr.FromContext(ctx) == nil {
		// The singleflight leader's context died, not ours: its
		// cancellation must not poison this caller. Compute directly.
		return compareAll(ctx, pa, part, nil)
	}
	return o.cmp, o.err
}

// compareAll is the seam CompareAllCtx runs through. override, when
// non-nil, substitutes the scheduler used for a kind — the fault
// injection tests use it to crash or fail exactly one scheduler and
// prove the comparison degrades instead of dying.
func compareAll(ctx context.Context, pa Arch, part *Part, override func(SchedulerKind) core.Scheduler) (*Comparison, error) {
	cmp := &Comparison{}
	kinds := []SchedulerKind{DS, CDS, Basic}
	results := make([]*Result, len(kinds))
	errs := make([]error, len(kinds))
	// Every job records its own outcome and returns nil, so one
	// scheduler's failure never stops the siblings from being claimed
	// (with one worker the fan-out degenerates to a serial loop, and a
	// returned error would skip the remaining schedulers). Panics are
	// contained per job by conc.Safe.
	ferr := conc.ForEach(ctx, conc.DefaultLimit(), len(kinds), func(i int) error {
		errs[i] = conc.Safe(func() error {
			var r *Result
			var err error
			if override != nil {
				if sched := override(kinds[i]); sched != nil {
					r, err = runScheduler(ctx, sched, pa, part)
				} else {
					r, err = RunCtx(ctx, kinds[i], pa, part)
				}
			} else {
				r, err = RunCtx(ctx, kinds[i], pa, part)
			}
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		})
		return nil
	})
	if ferr != nil {
		// Only cancellation reaches here (jobs swallow their errors).
		return cmp, ferr
	}
	cmp.DS, cmp.CDS, cmp.Basic = results[0], results[1], results[2]
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("cds: %s scheduler: %w", schedulerLongName(kinds[i]), err)
		switch kinds[i] {
		case DS:
			cmp.DSErr = wrapped
		case CDS:
			cmp.CDSErr = wrapped
		case Basic:
			// Basic infeasibility (the MPEG-at-1K case) is a result,
			// not a failure; keep the undecorated error for it.
			cmp.BasicErr = err
		}
	}
	if cmp.CDS != nil {
		cmp.RF = cmp.CDS.Schedule.RF
		cmp.DTBytes = cmp.CDS.Schedule.AvoidedBytesPerIter()
	}
	if cmp.BasicErr != nil {
		cmp.ImprovementDS, cmp.ImprovementCDS = 100, 100
	} else if cmp.Basic != nil {
		if cmp.DS != nil {
			cmp.ImprovementDS = sim.Improvement(cmp.Basic.Timing, cmp.DS.Timing)
		}
		if cmp.CDS != nil {
			cmp.ImprovementCDS = sim.Improvement(cmp.Basic.Timing, cmp.CDS.Timing)
		}
	}
	if cmp.DSErr != nil {
		return cmp, cmp.DSErr
	}
	if cmp.CDSErr != nil {
		return cmp, cmp.CDSErr
	}
	return cmp, nil
}

// runScheduler runs an explicit core.Scheduler through the same
// allocate-and-simulate pipeline as RunCtx.
func runScheduler(ctx context.Context, sched core.Scheduler, pa Arch, part *Part) (*Result, error) {
	s, err := sched.ScheduleCtx(ctx, pa, part)
	if err != nil {
		return nil, err
	}
	alloc, err := core.Allocate(s, true)
	if err != nil {
		return nil, err
	}
	timing, err := sim.Run(s)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Timing: timing, Allocation: alloc}, nil
}

func schedulerLongName(k SchedulerKind) string {
	switch k {
	case Basic:
		return "basic"
	case DS:
		return "data"
	case CDS:
		return "complete data"
	}
	return k.String()
}
