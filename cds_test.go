package cds

import (
	"strings"
	"testing"
)

func facadePartition(t *testing.T) *Part {
	t.Helper()
	b := NewApp("facade", 8).
		Datum("in", 128).
		Datum("tbl", 192).
		Datum("mid", 64).
		Datum("sr", 96).
		Datum("out1", 64).
		Datum("out2", 64)
	b.Kernel("k1", 96, 150).In("in", "tbl").Out("mid")
	b.Kernel("k2", 96, 150).In("mid").Out("out1", "sr")
	b.Kernel("k3", 96, 150).In("out1")
	b.Kernel("k4", 96, 150).In("tbl", "sr").Out("out2")
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(a, 2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func facadeArch() Arch {
	pa := M1()
	pa.FBSetBytes = 1 * KiB
	pa.CMWords = 256
	return pa
}

func TestRunAllKinds(t *testing.T) {
	part := facadePartition(t)
	for _, kind := range []SchedulerKind{Basic, DS, CDS} {
		res, err := Run(kind, facadeArch(), part)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Timing.TotalCycles <= 0 {
			t.Errorf("%v: non-positive total time", kind)
		}
		if res.Schedule.Scheduler != kind.String() {
			t.Errorf("%v: schedule labeled %q", kind, res.Schedule.Scheduler)
		}
		if res.Allocation == nil || len(res.Allocation.PeakUsed) == 0 {
			t.Errorf("%v: missing allocation report", kind)
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	if _, err := Run(SchedulerKind(42), facadeArch(), facadePartition(t)); err == nil {
		t.Error("unknown scheduler kind accepted")
	}
}

func TestCompareAll(t *testing.T) {
	cmp, err := CompareAll(facadeArch(), facadePartition(t))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BasicErr != nil {
		t.Fatalf("basic unexpectedly infeasible: %v", cmp.BasicErr)
	}
	if cmp.ImprovementCDS < cmp.ImprovementDS {
		t.Errorf("CDS improvement %.1f below DS %.1f", cmp.ImprovementCDS, cmp.ImprovementDS)
	}
	if cmp.RF < 1 {
		t.Errorf("RF = %d", cmp.RF)
	}
	if cmp.DTBytes <= 0 {
		t.Errorf("DTBytes = %d, want retention savings on this workload", cmp.DTBytes)
	}
}

func TestCompareAllBasicInfeasible(t *testing.T) {
	pa := facadeArch()
	pa.FBSetBytes = 560 // basic needs in+tbl+mid+out1+sr = 544... cluster 0 fits; shrink more
	pa.FBSetBytes = 500
	cmp, err := CompareAll(pa, facadePartition(t))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BasicErr == nil {
		t.Skip("basic fits at this size; adjust the workload if this fires")
	}
	if cmp.ImprovementDS != 100 || cmp.ImprovementCDS != 100 {
		t.Errorf("improvements = %.0f/%.0f, want 100/100 when basic cannot run",
			cmp.ImprovementDS, cmp.ImprovementCDS)
	}
}

func TestSchedulerKindString(t *testing.T) {
	if Basic.String() != "basic" || DS.String() != "ds" || CDS.String() != "cds" {
		t.Error("SchedulerKind names broken")
	}
	if !strings.Contains(SchedulerKind(7).String(), "7") {
		t.Error("unknown kind should render numerically")
	}
}
