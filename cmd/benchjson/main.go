// Command benchjson runs the repo's benchmarks with -benchmem and
// writes the results as machine-readable JSON — the artifact the
// bench-compare CI job uploads and the BENCH_*.json files in the repo
// root are generated from. Pointing -baseline at a previous file embeds
// its numbers next to the fresh ones with relative deltas, so a
// regression reads directly out of the JSON.
//
// Usage:
//
//	benchjson [-bench regex] [-pkg ./...] [-benchtime 1s] [-count 1]
//	          [-baseline OLD.json] [-out BENCH.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Baseline numbers and relative deltas appear when -baseline names a
	// previous report containing this benchmark. Delta < 0 is faster /
	// leaner than the baseline.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  int64   `json:"baseline_bytes_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
	NsDelta             string  `json:"ns_delta,omitempty"`
	AllocsDelta         string  `json:"allocs_delta,omitempty"`
}

// Report is the whole JSON document. The header pins the machine
// configuration the numbers were measured under — benchmark deltas
// across reports only mean something when GOMAXPROCS and the platform
// match.
type Report struct {
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	BenchRegex string   `json:"bench_regex"`
	Packages   string   `json:"packages"`
	Results    []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regex (go test -bench)")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (empty = default)")
	count := flag.Int("count", 1, "go test -count value")
	baseline := flag.String("baseline", "", "previous benchjson report to embed as baseline")
	out := flag.String("out", "", "output file (empty = stdout)")
	flag.Parse()

	if err := run(*bench, *pkg, *benchtime, *count, *baseline, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(bench, pkg, benchtime string, count int, baseline, out string) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w", err)
	}

	results, err := parse(&buf)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmarks matched %q in %s", bench, pkg)
	}
	if baseline != "" {
		if err := embedBaseline(results, baseline); err != nil {
			return err
		}
	}

	report := Report{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BenchRegex: bench,
		Packages:   pkg,
		Results:    results,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(out, raw, 0o644)
}

// parse extracts Benchmark lines from `go test -bench -benchmem` output:
//
//	BenchmarkName-8  100  123 ns/op  456 B/op  7 allocs/op
//
// Repeated names (from -count > 1) average their ns/op and keep the
// maximum B/op and allocs/op (the conservative regression signal).
func parse(buf *bytes.Buffer) ([]Result, error) {
	var results []Result
	index := map[string]int{}
	seen := map[string]int{}
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		r := Result{Name: f[0], Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			switch f[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if at, ok := index[r.Name]; ok {
			n := float64(seen[r.Name])
			prev := &results[at]
			prev.NsPerOp = (prev.NsPerOp*n + r.NsPerOp) / (n + 1)
			prev.BytesPerOp = max(prev.BytesPerOp, r.BytesPerOp)
			prev.AllocsPerOp = max(prev.AllocsPerOp, r.AllocsPerOp)
			seen[r.Name]++
			continue
		}
		index[r.Name] = len(results)
		seen[r.Name] = 1
		results = append(results, r)
	}
	return results, sc.Err()
}

func embedBaseline(results []Result, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	byName := map[string]Result{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	for i := range results {
		b, ok := byName[results[i].Name]
		if !ok {
			continue
		}
		results[i].BaselineNsPerOp = b.NsPerOp
		results[i].BaselineBytesPerOp = b.BytesPerOp
		results[i].BaselineAllocsPerOp = b.AllocsPerOp
		results[i].NsDelta = delta(results[i].NsPerOp, b.NsPerOp)
		results[i].AllocsDelta = delta(float64(results[i].AllocsPerOp), float64(b.AllocsPerOp))
	}
	return nil
}

// delta formats the relative change from base to cur, e.g. "-41.3%".
func delta(cur, base float64) string {
	if base == 0 {
		return ""
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
}
