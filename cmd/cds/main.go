// Command cds schedules an application described in a JSON spec (or one
// of the built-in paper experiments) with a chosen scheduler, and prints
// the schedule summary, optionally the Frame Buffer allocation timeline
// (the paper's Figure 5 view) and the generated TinyRISC-level program.
//
// Usage:
//
//	cds -spec app.json [-scheduler cds] [-trace] [-program]
//	cds -experiment MPEG -scheduler ds -trace
//
// A run is cancellable: -timeout bounds it, and SIGINT (Ctrl-C) stops it
// cooperatively; either way the error printed to stderr matches the
// scherr.ErrCanceled taxonomy class and the exit status is non-zero.
//
// Spec format:
//
//	{
//	  "name": "pipe", "iterations": 8,
//	  "arch": {"fbSetBytes": 2048, "cmWords": 512},
//	  "data": [{"name": "in", "size": 100}, {"name": "out", "size": 50, "final": true}],
//	  "kernels": [{"name": "k1", "contextWords": 64, "computeCycles": 500,
//	               "inputs": ["in"], "outputs": ["out"]}],
//	  "clusters": [1]
//	}
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"os/signal"
	"sort"

	"cds"
	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/machine"
	"cds/internal/report"
	"cds/internal/sim"
	"cds/internal/spec"
	"cds/internal/tinyrisc"
	"cds/internal/trace"
	"cds/internal/workloads"
)

// digest hashes the functional outputs in deterministic order so two
// scheduler runs can be compared from the command line.
func digest(outs map[string][]byte) uint64 {
	keys := make([]string, 0, len(outs))
	for k := range outs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write(outs[k])
	}
	return h.Sum64()
}

type options struct {
	specPath, expName, schedName string
	trace, occupancy, program    bool
	asmOut, timeline, functional bool
	verified                     bool
	traceOut                     string
	execTraceOut, execTraceFmt   string
}

func main() {
	opts := options{}
	flag.StringVar(&opts.specPath, "spec", "", "JSON application spec")
	flag.StringVar(&opts.expName, "experiment", "", "built-in paper experiment (e.g. MPEG, E1, ATR-SLD*)")
	flag.StringVar(&opts.schedName, "scheduler", "cds", "scheduler: basic, ds or cds")
	flag.BoolVar(&opts.trace, "trace", false, "print the FB allocation timeline (Figure 5 view)")
	flag.BoolVar(&opts.occupancy, "occupancy", false, "print the address-time occupancy map per FB set")
	flag.BoolVar(&opts.program, "program", false, "print the generated transfer program")
	flag.BoolVar(&opts.asmOut, "tinyrisc", false, "compile the transfer program to TinyRISC control code and print it")
	flag.BoolVar(&opts.timeline, "timeline", false, "print the Gantt-style execution timeline")
	flag.StringVar(&opts.traceOut, "chrometrace", "", "write a Chrome/Perfetto trace of the execution to this file")
	flag.StringVar(&opts.execTraceOut, "trace-out", "", `write the recorded execution timeline to this file ("-" for stdout)`)
	flag.StringVar(&opts.execTraceFmt, "trace-format", "chrome", "timeline format: chrome, svg or summary")
	flag.BoolVar(&opts.functional, "machine", false, "run the schedule functionally and report the output digest")
	flag.BoolVar(&opts.verified, "verify", false, "audit the schedule with the post-hoc invariant verifier")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "cds: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts options) error {
	part, pa, err := load(opts.specPath, opts.expName)
	if err != nil {
		return err
	}
	kind, err := schedulerKind(opts.schedName)
	if err != nil {
		return err
	}

	var res *cds.Result
	if opts.verified {
		res, err = cds.RunVerified(ctx, kind, pa, part)
	} else {
		res, err = cds.RunCtx(ctx, kind, pa, part)
	}
	if err != nil {
		return err
	}
	printSummary(res, pa)
	if opts.verified {
		fmt.Println("verifier      capacity, liveness, serialization and residency invariants hold")
	}

	if opts.trace {
		fmt.Println()
		if err := printTrace(res.Schedule); err != nil {
			return err
		}
	}
	if opts.occupancy {
		rep, err := core.Allocate(res.Schedule, true)
		if err != nil {
			return err
		}
		sets := map[int]bool{}
		for _, c := range res.Schedule.P.Clusters {
			sets[c.Set] = true
		}
		for set := 0; set < pa.FBSets; set++ {
			if !sets[set] {
				continue
			}
			fmt.Println()
			report.Occupancy(os.Stdout, rep.Events, set, pa.FBSetBytes, 72)
			report.Legend(os.Stdout, rep.Events, set)
		}
	}
	if opts.timeline {
		fmt.Println()
		sim.WriteTimeline(os.Stdout, res.Schedule, res.Timing)
	}
	if opts.traceOut != "" {
		f, err := os.Create(opts.traceOut)
		if err != nil {
			return err
		}
		if err := sim.WriteTrace(f, res.Schedule, res.Timing); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", opts.traceOut)
	}
	if opts.execTraceOut != "" {
		_, tl, err := sim.Trace(res.Schedule)
		if err != nil {
			return err
		}
		if err := trace.ExportFile(opts.execTraceOut, opts.execTraceFmt, tl); err != nil {
			return err
		}
		if opts.execTraceOut != "-" {
			fmt.Printf("wrote %s timeline to %s\n", opts.execTraceFmt, opts.execTraceOut)
		}
	}
	if opts.functional {
		fmt.Println()
		m, err := machine.Run(res.Schedule, 1, nil)
		if err != nil {
			return fmt.Errorf("functional run: %w", err)
		}
		outs := m.FinalOutputs(res.Schedule)
		fmt.Printf("functional run: %d kernel invocations, %d B loaded, %d B stored, %d final outputs\n",
			m.KernelRuns, m.LoadedBytes, m.StoredBytes, len(outs))
		fmt.Printf("output digest: %016x\n", digest(outs))
	}
	if opts.program {
		prog, err := codegen.Generate(res.Schedule)
		if err != nil {
			return err
		}
		if _, err := codegen.Check(prog, res.Schedule); err != nil {
			return fmt.Errorf("generated program failed its own checker: %w", err)
		}
		fmt.Println()
		fmt.Printf("program (%d instructions, checker passed):\n", len(prog.Instrs))
		fmt.Print(prog.String())
	}
	if opts.asmOut {
		prog, err := codegen.Generate(res.Schedule)
		if err != nil {
			return err
		}
		tp, err := tinyrisc.Compile(prog)
		if err != nil {
			return err
		}
		if err := tinyrisc.Verify(tp, prog); err != nil {
			return fmt.Errorf("compiled control code failed verification: %w", err)
		}
		fmt.Println()
		fmt.Printf("TinyRISC control code (%d instructions for %d transfer ops, verified):\n",
			len(tp.Instrs), len(prog.Instrs))
		if err := tinyrisc.Disassemble(os.Stdout, tp); err != nil {
			return err
		}
	}
	return nil
}

func load(specPath, expName string) (*app.Partition, arch.Params, error) {
	switch {
	case specPath != "" && expName != "":
		return nil, arch.Params{}, fmt.Errorf("use either -spec or -experiment, not both")
	case expName != "":
		e, err := workloads.ByName(expName)
		if err != nil {
			return nil, arch.Params{}, err
		}
		return e.Part, e.Arch, nil
	case specPath != "":
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return nil, arch.Params{}, err
		}
		return spec.Parse(raw)
	}
	return nil, arch.Params{}, fmt.Errorf("need -spec <file> or -experiment <name>")
}

func schedulerKind(name string) (cds.SchedulerKind, error) {
	switch name {
	case "basic":
		return cds.Basic, nil
	case "ds":
		return cds.DS, nil
	case "cds":
		return cds.CDS, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want basic, ds or cds)", name)
}

func printSummary(res *cds.Result, pa arch.Params) {
	s := res.Schedule
	t := res.Timing
	fmt.Printf("application   %s (%d iterations, %d kernels, %d clusters)\n",
		s.P.App.Name, s.P.App.Iterations, s.P.App.NumKernels(), len(s.P.Clusters))
	fmt.Printf("architecture  %s: FB %s/set x%d, CM %d words\n",
		pa.Name, arch.FormatSize(pa.FBSetBytes), pa.FBSets, pa.CMWords)
	fmt.Printf("scheduler     %s, RF=%d\n", s.Scheduler, s.RF)
	if len(s.Retained) > 0 {
		fmt.Println("retained in FB:")
		for _, r := range s.Retained {
			fmt.Printf("  %-6s %-12s %5d B  set %d  clusters %d..%d  TF=%.3f  avoids %d B/iter\n",
				r.Kind, r.Name, r.Size, r.Set, r.From, r.To, r.TF, r.AvoidedBytesPerIter)
		}
	}
	fmt.Printf("traffic       loads %d B, stores %d B, contexts %d words\n",
		s.TotalLoadBytes(), s.TotalStoreBytes(), s.TotalCtxWords())
	fmt.Printf("time          %d cycles (compute %d, DMA busy %d, RC stalls %d)\n",
		t.TotalCycles, t.ComputeCycles, t.DMABusy(), t.StallCycles)
	fmt.Printf("allocation    peak/set %v of %d, splits %d, regular %v\n",
		res.Allocation.PeakUsed, pa.FBSetBytes, res.Allocation.Splits, res.Allocation.Regular)
}

// printTrace renders the allocation events of the first block as a
// Figure 5 style timeline.
func printTrace(s *core.Schedule) error {
	rep, err := core.Allocate(s, true)
	if err != nil {
		return err
	}
	fmt.Println("allocation timeline (block 0):")
	for _, ev := range rep.Events {
		if ev.Block != 0 {
			break
		}
		iter := fmt.Sprintf("iter %d", ev.Iter)
		if ev.Iter < 0 {
			iter = "preload"
		}
		fmt.Printf("  c%d %-7s %-7s %-14s set%d @%-5d %5d B\n",
			ev.Cluster, iter, ev.Op, ev.Object, ev.Set, ev.Addr, ev.Bytes)
	}
	return nil
}
