// Command cds schedules an application described in a JSON spec (or one
// of the built-in paper experiments) with a chosen scheduler, and prints
// the schedule summary, optionally the Frame Buffer allocation timeline
// (the paper's Figure 5 view) and the generated TinyRISC-level program.
//
// Usage:
//
//	cds -spec app.json [-scheduler cds] [-trace] [-program]
//	cds -experiment MPEG -scheduler ds -trace
//
// Spec format:
//
//	{
//	  "name": "pipe", "iterations": 8,
//	  "arch": {"fbSetBytes": 2048, "cmWords": 512},
//	  "data": [{"name": "in", "size": 100}, {"name": "out", "size": 50, "final": true}],
//	  "kernels": [{"name": "k1", "contextWords": 64, "computeCycles": 500,
//	               "inputs": ["in"], "outputs": ["out"]}],
//	  "clusters": [1]
//	}
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"sort"

	"cds"
	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/machine"
	"cds/internal/report"
	"cds/internal/sim"
	"cds/internal/spec"
	"cds/internal/tinyrisc"
	"cds/internal/workloads"
)

// digest hashes the functional outputs in deterministic order so two
// scheduler runs can be compared from the command line.
func digest(outs map[string][]byte) uint64 {
	keys := make([]string, 0, len(outs))
	for k := range outs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write(outs[k])
	}
	return h.Sum64()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cds: ")
	specPath := flag.String("spec", "", "JSON application spec")
	expName := flag.String("experiment", "", "built-in paper experiment (e.g. MPEG, E1, ATR-SLD*)")
	schedName := flag.String("scheduler", "cds", "scheduler: basic, ds or cds")
	trace := flag.Bool("trace", false, "print the FB allocation timeline (Figure 5 view)")
	occupancy := flag.Bool("occupancy", false, "print the address-time occupancy map per FB set")
	program := flag.Bool("program", false, "print the generated transfer program")
	asmOut := flag.Bool("tinyrisc", false, "compile the transfer program to TinyRISC control code and print it")
	timeline := flag.Bool("timeline", false, "print the Gantt-style execution timeline")
	traceOut := flag.String("chrometrace", "", "write a Chrome/Perfetto trace of the execution to this file")
	functional := flag.Bool("machine", false, "run the schedule functionally and report the output digest")
	flag.Parse()

	part, pa, err := load(*specPath, *expName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := schedulerKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	res, err := cds.Run(kind, pa, part)
	if err != nil {
		log.Fatal(err)
	}
	printSummary(res, pa)

	if *trace {
		fmt.Println()
		printTrace(res.Schedule)
	}
	if *occupancy {
		rep, err := core.Allocate(res.Schedule, true)
		if err != nil {
			log.Fatal(err)
		}
		sets := map[int]bool{}
		for _, c := range res.Schedule.P.Clusters {
			sets[c.Set] = true
		}
		for set := 0; set < pa.FBSets; set++ {
			if !sets[set] {
				continue
			}
			fmt.Println()
			report.Occupancy(os.Stdout, rep.Events, set, pa.FBSetBytes, 72)
			report.Legend(os.Stdout, rep.Events, set)
		}
	}
	if *timeline {
		fmt.Println()
		sim.WriteTimeline(os.Stdout, res.Schedule, res.Timing)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.WriteTrace(f, res.Schedule, res.Timing); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
	if *functional {
		fmt.Println()
		m, err := machine.Run(res.Schedule, 1, nil)
		if err != nil {
			log.Fatalf("functional run: %v", err)
		}
		outs := m.FinalOutputs(res.Schedule)
		fmt.Printf("functional run: %d kernel invocations, %d B loaded, %d B stored, %d final outputs\n",
			m.KernelRuns, m.LoadedBytes, m.StoredBytes, len(outs))
		fmt.Printf("output digest: %016x\n", digest(outs))
	}
	if *program {
		prog, err := codegen.Generate(res.Schedule)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := codegen.Check(prog, res.Schedule); err != nil {
			log.Fatalf("generated program failed its own checker: %v", err)
		}
		fmt.Println()
		fmt.Printf("program (%d instructions, checker passed):\n", len(prog.Instrs))
		fmt.Print(prog.String())
	}
	if *asmOut {
		prog, err := codegen.Generate(res.Schedule)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := tinyrisc.Compile(prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := tinyrisc.Verify(tp, prog); err != nil {
			log.Fatalf("compiled control code failed verification: %v", err)
		}
		fmt.Println()
		fmt.Printf("TinyRISC control code (%d instructions for %d transfer ops, verified):\n",
			len(tp.Instrs), len(prog.Instrs))
		if err := tinyrisc.Disassemble(os.Stdout, tp); err != nil {
			log.Fatal(err)
		}
	}
}

func load(specPath, expName string) (*app.Partition, arch.Params, error) {
	switch {
	case specPath != "" && expName != "":
		return nil, arch.Params{}, fmt.Errorf("use either -spec or -experiment, not both")
	case expName != "":
		e, err := workloads.ByName(expName)
		if err != nil {
			return nil, arch.Params{}, err
		}
		return e.Part, e.Arch, nil
	case specPath != "":
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return nil, arch.Params{}, err
		}
		return spec.Parse(raw)
	}
	return nil, arch.Params{}, fmt.Errorf("need -spec <file> or -experiment <name>")
}

func schedulerKind(name string) (cds.SchedulerKind, error) {
	switch name {
	case "basic":
		return cds.Basic, nil
	case "ds":
		return cds.DS, nil
	case "cds":
		return cds.CDS, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want basic, ds or cds)", name)
}

func printSummary(res *cds.Result, pa arch.Params) {
	s := res.Schedule
	t := res.Timing
	fmt.Printf("application   %s (%d iterations, %d kernels, %d clusters)\n",
		s.P.App.Name, s.P.App.Iterations, s.P.App.NumKernels(), len(s.P.Clusters))
	fmt.Printf("architecture  %s: FB %s/set x%d, CM %d words\n",
		pa.Name, arch.FormatSize(pa.FBSetBytes), pa.FBSets, pa.CMWords)
	fmt.Printf("scheduler     %s, RF=%d\n", s.Scheduler, s.RF)
	if len(s.Retained) > 0 {
		fmt.Println("retained in FB:")
		for _, r := range s.Retained {
			fmt.Printf("  %-6s %-12s %5d B  set %d  clusters %d..%d  TF=%.3f  avoids %d B/iter\n",
				r.Kind, r.Name, r.Size, r.Set, r.From, r.To, r.TF, r.AvoidedBytesPerIter)
		}
	}
	fmt.Printf("traffic       loads %d B, stores %d B, contexts %d words\n",
		s.TotalLoadBytes(), s.TotalStoreBytes(), s.TotalCtxWords())
	fmt.Printf("time          %d cycles (compute %d, DMA busy %d, RC stalls %d)\n",
		t.TotalCycles, t.ComputeCycles, t.DMABusy(), t.StallCycles)
	fmt.Printf("allocation    peak/set %v of %d, splits %d, regular %v\n",
		res.Allocation.PeakUsed, pa.FBSetBytes, res.Allocation.Splits, res.Allocation.Regular)
}

// printTrace renders the allocation events of the first block as a
// Figure 5 style timeline.
func printTrace(s *core.Schedule) {
	rep, err := core.Allocate(s, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("allocation timeline (block 0):")
	for _, ev := range rep.Events {
		if ev.Block != 0 {
			break
		}
		iter := fmt.Sprintf("iter %d", ev.Iter)
		if ev.Iter < 0 {
			iter = "preload"
		}
		fmt.Printf("  c%d %-7s %-7s %-14s set%d @%-5d %5d B\n",
			ev.Cluster, iter, ev.Op, ev.Object, ev.Set, ev.Addr, ev.Bytes)
	}
}
