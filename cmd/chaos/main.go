// Command chaos runs seeded failure drills against real schedd
// processes and verifies the recovery invariants the service promises.
// Each plan derives a deterministic fault schedule from -seed, executes
// it against supervised children (this binary re-executes itself as the
// daemon — no separate schedd build needed), and judges the outcome
// with recovery oracles; see internal/chaos.
//
// Usage:
//
//	chaos [-seed N] [-plan NAME|all] [-schedd PATH] [-dir DIR] [-out FILE] [-q]
//
// Plans:
//
//	kill-resume  SIGKILL mid-sweep at a seeded journal record count,
//	             restart, verify byte-identical resume and no lost work
//	term-drain   SIGTERM mid-sweep, verify truthful draining readyz,
//	             clean exit, and a resume that recomputes nothing
//	fs-faults    ENOSPC / torn writes / fsync errors on the journal's
//	             filesystem seam, then recovery on a healthy disk
//	proxy        resets, truncated answers, duplicated submissions and
//	             latency between a hardened client and the daemon;
//	             verifies exactly-once results
//	overload     saturate a 1-deep admission queue, verify truthful
//	             saturated readyz, 429 shedding, and recovery
//	breaker      a child whose machine fails inside a finite window;
//	             verifies the circuit opens and recovery respects the
//	             cooldown
//
// Fleet plans (a schedrouter child fronting three schedd children; the
// harness predicts routing from its own copy of the consistent-hash
// ring, so prediction/observation disagreement is itself a failure):
//
//	router-kill-worker      SIGKILL the ring owner of an in-flight
//	                        sweep; verifies failover to the exact next
//	                        replica, ejection, single-ejection ring
//	                        affinity, same-identity readmission, and a
//	                        byte-identical journal resume
//	router-drain-rebalance  SIGTERM a worker mid-sweep; verifies the
//	                        router sees the truthful draining readyz,
//	                        the in-flight sweep is served intact with
//	                        no shadow re-run, exit 0, and exactly the
//	                        drained worker's keys rebalance
//	router-split-cache      one worker computes a comparison; verifies
//	                        the other two serve the identical answer
//	                        from its cache via GET /v1/cache/{key}
//
//	all          every plan above, same seed
//
// Exit status: 0 when every oracle passes, 1 when any fails (the
// failing plan and seed are all that is needed to reproduce), 2 on
// usage errors. -out writes the full JSON reports (plans, oracle
// verdicts, fault and probe timelines) for artifact upload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"cds/internal/chaos"
)

func main() {
	// A re-executed child IS the daemon; this never returns for one.
	chaos.MaybeChild()

	seed := flag.Int64("seed", 1, "fault-schedule seed; (seed, plan) reproduces a run exactly")
	plan := flag.String("plan", "kill-resume", `plan name or "all"`)
	sched := flag.String("schedd", "", "schedd binary to supervise (default: re-execute this binary)")
	dir := flag.String("dir", "", "scratch directory for journals (default: temp, removed on pass, kept on fail)")
	out := flag.String("out", "", "write the JSON reports to this file")
	quiet := flag.Bool("q", false, "suppress per-step logging (verdicts still print)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "chaos: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	cfg := chaos.Config{Seed: *seed, Plan: *plan, SchedCmd: *sched, Dir: *dir, Logf: logf}

	var reports []*chaos.Report
	var err error
	if *plan == "all" {
		reports, err = chaos.RunAll(cfg)
	} else {
		var rep *chaos.Report
		rep, err = chaos.Run(cfg)
		if rep != nil {
			reports = append(reports, rep)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}

	ok := true
	for _, rep := range reports {
		verdict := "PASS"
		if !rep.OK {
			verdict, ok = "FAIL", false
		}
		fmt.Printf("%s plan=%s seed=%d\n", verdict, rep.Plan.Name, rep.Plan.Seed)
		for _, o := range rep.Oracles {
			mark := "  ok  "
			if !o.OK {
				mark = "  FAIL"
			}
			fmt.Printf("%s %-24s %s\n", mark, o.Name, o.Detail)
		}
		if !rep.OK && rep.Dir != "" {
			fmt.Printf("  journals kept in %s\n", rep.Dir)
		}
	}

	if *out != "" {
		data, merr := json.MarshalIndent(reports, "", "  ")
		if merr == nil {
			merr = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *out, merr)
			os.Exit(1)
		}
	}
	if !ok {
		fmt.Printf("\nreproduce: chaos -seed %d -plan <failing plan>\n", *seed)
		os.Exit(1)
	}
}
