// Command diffuzz fuzzes the three schedulers differentially: it
// generates a seeded corpus of workload specs spanning the structure
// space (deep chains, wide fan-out, shared-data-heavy, context-heavy,
// degenerate, mode-switching), runs Basic/DS/CDS on every spec, audits
// each produced schedule with the invariant verifier and asserts the
// paper's dominance ordering (CDS <= DS <= Basic cycles, feasibility
// monotonicity). Counterexamples are delta-minimized while the failure
// reproduces and written out as committable regression workload specs.
//
// Runs are cancellable (-timeout, SIGINT) and crash-safe: -journal FILE
// checkpoints every checked point, and re-running the same command
// resumes, producing a summary byte-identical to an uninterrupted run.
//
// The exit status is the differential verdict: 0 when every checked
// point is ok or infeasible, 1 on any counterexample, 2 on harness
// errors.
//
// With -arrivals N, the run additionally checks N scenarios of the
// bursty-arrival corpus against the streaming oracles: warm-memo
// replans of an unchanged log must be byte-identical, every streamed
// execution must pass the prefetch invariant family, and context
// prefetch must never lose to the serialized online baseline.
//
// With -tenants N, the run additionally checks N K-tenant mixes against
// the multi-tenant oracles: every admitted mix must pass the fairness
// invariant family (quotas, boundary-only preemption, strict priority,
// bounded lag, execution dominance) and every tenant's schedule must be
// byte-identical to its solo CDS run under the same quota.
//
// Usage:
//
//	diffuzz -seed 1 -n 2000 [-arrivals N] [-tenants N] [-workers N]
//	        [-journal FILE] [-out DIR] [-csv] [-timeout 10m]
//	        [-minimize-budget 500] [-no-minimize]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"cds/internal/diffuzz"
)

func main() {
	seed := flag.Int64("seed", 1, "corpus stream seed")
	n := flag.Int("n", 1000, "number of corpus points to check")
	arrivals := flag.Int("arrivals", 0, "number of bursty-arrival scenarios to check against the streaming oracles")
	tenants := flag.Int("tenants", 0, "number of multi-tenant mixes to check against the fairness oracles")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
	journal := flag.String("journal", "", "crash-safe checkpoint file (resume by re-running)")
	outDir := flag.String("out", "", "directory for minimized counterexample specs (JSON)")
	csvOut := flag.Bool("csv", false, "emit per-point CSV on stdout instead of the summary table")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	minBudget := flag.Int("minimize-budget", diffuzz.DefaultMinimizeBudget, "max candidate evaluations per counterexample minimization")
	noMinimize := flag.Bool("no-minimize", false, "report counterexamples without minimizing them")
	flag.Parse()

	if err := run(*seed, *n, *arrivals, *tenants, *workers, *journal, *outDir, *csvOut, *timeout, *minBudget, *noMinimize); err != nil {
		fmt.Fprintf(os.Stderr, "diffuzz: %v\n", err)
		os.Exit(2)
	}
}

func run(seed int64, n, arrivals, tenants, workers int, journalPath, outDir string, csvOut bool, timeout time.Duration, minBudget int, noMinimize bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	cfg := diffuzz.Config{Seed: seed, N: n, Workers: workers, MinimizeBudget: minBudget}

	var results []diffuzz.Result
	var err error
	if journalPath != "" {
		j, prior, jerr := diffuzz.OpenJournal(journalPath)
		if jerr != nil {
			return jerr
		}
		defer j.Close()
		if done := len(diffuzz.Completed(prior)); done > 0 {
			fmt.Fprintf(os.Stderr, "diffuzz: resuming from %s: %d of %d points already journaled\n", journalPath, done, n)
		}
		results, err = diffuzz.RunJournaled(ctx, j, prior, cfg, nil)
	} else {
		results, err = diffuzz.Run(ctx, cfg, nil)
	}
	if err != nil && ctx.Err() == nil {
		return err
	}

	// The streaming oracles run over their own corpus; their
	// counterexamples fail the run but are not spec-minimized (an arrival
	// scenario shrinks along different axes than a spec).
	var arrResults []diffuzz.Result
	arrCex := 0
	if arrivals > 0 {
		arrResults, err = diffuzz.RunArrivals(ctx, diffuzz.Config{Seed: seed, N: arrivals, Workers: workers}, nil)
		if err != nil && ctx.Err() == nil {
			return err
		}
		for _, r := range arrResults {
			if r.Counterexample() {
				arrCex++
				fmt.Fprintf(os.Stderr, "diffuzz: arrival counterexample %s: %s: %s\n", r.Name, r.Verdict, r.Detail)
			}
		}
	}

	// The multi-tenant oracles likewise sweep their own corpus; a mix
	// that breaks fairness or solo equivalence fails the run.
	var tenResults []diffuzz.Result
	tenCex := 0
	if tenants > 0 {
		tenResults, err = diffuzz.RunTenantMixes(ctx, diffuzz.Config{Seed: seed, N: tenants, Workers: workers}, nil)
		if err != nil && ctx.Err() == nil {
			return err
		}
		for _, r := range tenResults {
			if r.Counterexample() {
				tenCex++
				fmt.Fprintf(os.Stderr, "diffuzz: tenant counterexample %s: %s: %s\n", r.Name, r.Verdict, r.Detail)
			}
		}
	}

	summary := diffuzz.Summarize(seed, results)
	if csvOut {
		all := append(append([]diffuzz.Result{}, results...), arrResults...)
		all = append(all, tenResults...)
		if err := diffuzz.WriteCSV(os.Stdout, all); err != nil {
			return err
		}
	} else {
		summary.WriteText(os.Stdout)
		if arrivals > 0 {
			okN, inf := 0, 0
			for _, r := range arrResults {
				switch r.Verdict {
				case diffuzz.VerdictOK:
					okN++
				case diffuzz.VerdictInfeasible:
					inf++
				}
			}
			fmt.Fprintf(os.Stdout, "arrivals: %d scenarios, %d ok, %d infeasible, %d counterexamples\n",
				len(arrResults), okN, inf, arrCex)
		}
		if tenants > 0 {
			okN, inf := 0, 0
			for _, r := range tenResults {
				switch r.Verdict {
				case diffuzz.VerdictOK:
					okN++
				case diffuzz.VerdictInfeasible:
					inf++
				}
			}
			fmt.Fprintf(os.Stdout, "tenants: %d mixes, %d ok, %d infeasible, %d counterexamples\n",
				len(tenResults), okN, inf, tenCex)
		}
	}

	if summary.Total.Counterexamples > 0 && !noMinimize {
		cexs := diffuzz.MinimizeCounterexamples(ctx, cfg, results)
		for _, ce := range cexs {
			fmt.Fprintf(os.Stderr, "diffuzz: minimized %s (%s): %d kernels -> %d (%d evals)\n",
				ce.Result.Name, ce.Result.Verdict, len(ce.Spec.Kernels), len(ce.Minimized.Kernels), ce.Evals)
			if outDir != "" {
				if err := writeSpecFile(outDir, ce); err != nil {
					return err
				}
			}
		}
	}

	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	if total := summary.Total.Counterexamples + arrCex + tenCex; total > 0 {
		fmt.Fprintf(os.Stderr, "diffuzz: %d counterexample(s) found\n", total)
		os.Exit(1)
	}
	return nil
}

// writeSpecFile writes a counterexample's minimized spec as indented
// JSON under dir, named after its corpus point.
func writeSpecFile(dir string, ce diffuzz.Counterexample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := ce.Minimized.Marshal()
	if err != nil {
		return err
	}
	name := sanitize(ce.Minimized.Name) + ".json"
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "diffuzz: wrote %s\n", path)
	return nil
}

// sanitize maps a corpus point name onto a safe file name.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, name)
}
