// Command experiments regenerates the paper's evaluation: every Table 1
// row and the Figure 6 bar chart, plus the MPEG memory-floor result.
//
// Usage:
//
//	experiments [-csv] [-run <name>] [-floor]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cds"
	"cds/internal/arch"
	"cds/internal/csched"
	"cds/internal/report"
	"cds/internal/sim"
	"cds/internal/spec"
	"cds/internal/sweep"
	"cds/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	csvOut := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	mdOut := flag.Bool("markdown", false, "emit the markdown table EXPERIMENTS.md embeds")
	runOne := flag.String("run", "", "run a single experiment by Table 1 name (e.g. MPEG, ATR-SLD*)")
	floor := flag.Bool("floor", false, "also run the MPEG memory-floor experiment (FB = 1K)")
	detail := flag.Bool("detail", false, "print a per-experiment breakdown (timing, retention, context overlap)")
	dump := flag.String("dump", "", "export one experiment's application as editable JSON to stdout")
	workers := flag.Int("workers", 0, "worker pool size for running experiments (0 = one per CPU)")
	flag.Parse()

	if *dump != "" {
		e, err := workloads.ByName(*dump)
		if err != nil {
			log.Fatal(err)
		}
		raw, err := spec.FromPartition(e.Part, e.Arch).Marshal()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
		return
	}

	exps := workloads.All()
	if *runOne != "" {
		e, err := workloads.ByName(*runOne)
		if err != nil {
			log.Fatal(err)
		}
		exps = []workloads.Experiment{e}
	}
	if *floor {
		exps = append(exps, workloads.MPEGFloor())
	}

	// The rows are independent comparisons: run them through the sweep
	// batch pool. Outcomes come back in experiment order, so the table
	// is deterministic regardless of worker interleaving.
	jobs := make([]sweep.Job, len(exps))
	for i, e := range exps {
		jobs[i] = sweep.Job{Name: e.Name, Arch: e.Arch, Part: e.Part}
	}
	outcomes := sweep.Batch(jobs, *workers)
	rows := make([]report.Row, 0, len(exps))
	for i, o := range outcomes {
		if o.Err != nil {
			log.Fatalf("%s: %v", o.Job.Name, o.Err)
		}
		rows = append(rows, rowFrom(exps[i], o.Cmp))
		if *detail {
			printDetail(exps[i])
		}
	}

	if *csvOut {
		report.CSV(os.Stdout, rows)
		return
	}
	if *mdOut {
		report.Markdown(os.Stdout, rows)
		return
	}
	fmt.Println("Table 1 — experimental results (measured vs paper)")
	report.Table1(os.Stdout, rows)
	fmt.Println()
	fmt.Println("Figure 6 — relative execution improvement")
	report.Figure6(os.Stdout, rows)
}

// printDetail prints the per-experiment breakdown: where the cycles go,
// what the Complete Data Scheduler retained, and how much context traffic
// hides under computation.
func printDetail(e workloads.Experiment) {
	cmp, err := cds.CompareAll(e.Arch, e.Part)
	if err != nil {
		log.Fatalf("%s: %v", e.Name, err)
	}
	fmt.Printf("--- %s (FB %s/set, CM %d words) ---\n",
		e.Name, arch.FormatSize(e.Arch.FBSetBytes), e.Arch.CMWords)
	print3 := func(label string, f func(*cds.Result) int) {
		if cmp.BasicErr != nil {
			fmt.Printf("  %-18s %10s %10d %10d\n", label, "n/a", f(cmp.DS), f(cmp.CDS))
			return
		}
		fmt.Printf("  %-18s %10d %10d %10d\n", label, f(cmp.Basic), f(cmp.DS), f(cmp.CDS))
	}
	fmt.Printf("  %-18s %10s %10s %10s\n", "", "basic", "ds", "cds")
	print3("total cycles", func(r *cds.Result) int { return r.Timing.TotalCycles })
	print3("compute cycles", func(r *cds.Result) int { return r.Timing.ComputeCycles })
	print3("DMA busy", func(r *cds.Result) int { return r.Timing.DMABusy() })
	print3("RC stalls", func(r *cds.Result) int { return r.Timing.StallCycles })
	print3("load bytes", func(r *cds.Result) int { return r.Timing.LoadBytes })
	print3("store bytes", func(r *cds.Result) int { return r.Timing.StoreBytes })
	print3("context words", func(r *cds.Result) int { return r.Timing.CtxWords })

	if gain, err := sim.OverlapGain(cmp.CDS.Schedule); err == nil {
		fmt.Printf("  double-buffer overlap saves %.1f%% on the CDS schedule\n", gain)
	}
	if plan, err := csched.Build(cmp.CDS.Schedule); err == nil {
		fmt.Printf("  context plan: %.0f%% of context time overlapped, CM double-buffered: %v\n",
			100*plan.OverlapRatio(), plan.DoubleBuffered)
	}
	if len(cmp.CDS.Schedule.Retained) > 0 {
		fmt.Println("  retained:")
		for _, r := range cmp.CDS.Schedule.Retained {
			fmt.Printf("    %-6s %-12s %5dB set %d clusters %d..%d TF=%.3f\n",
				r.Kind, r.Name, r.Size, r.Set, r.From, r.To, r.TF)
		}
	}
	fmt.Println()
}

func rowFrom(e workloads.Experiment, cmp *cds.Comparison) report.Row {
	row := report.Row{
		Name:        e.Name,
		N:           len(e.Part.Clusters),
		NMax:        e.Part.MaxKernelsPerCluster(),
		DSBytes:     e.Part.App.TotalDataBytes(),
		DTBytes:     cmp.DTBytes,
		RF:          cmp.RF,
		PaperRF:     e.PaperRF,
		FBBytes:     e.Arch.FBSetBytes,
		DSImp:       cmp.ImprovementDS,
		CDSImp:      cmp.ImprovementCDS,
		PaperDS:     e.PaperDS,
		PaperCDS:    e.PaperCDS,
		BasicFailed: cmp.BasicErr != nil,
	}
	if cmp.BasicErr != nil {
		fmt.Fprintf(os.Stderr, "note: %s: %v (DS ran with RF=%d, CDS with RF=%d)\n",
			e.Name, cmp.BasicErr, cmp.DS.Schedule.RF, cmp.CDS.Schedule.RF)
	}
	return row
}
