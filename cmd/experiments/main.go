// Command experiments regenerates the paper's evaluation: every Table 1
// row and the Figure 6 bar chart, plus the MPEG memory-floor result.
//
// The evaluation is cancellable: -timeout bounds the whole run and
// SIGINT (Ctrl-C) stops it cooperatively; errors go to stderr and the
// exit status is non-zero.
//
// Usage:
//
//	experiments [-csv] [-run <name>] [-floor] [-timeout 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"cds"
	"cds/internal/arch"
	"cds/internal/csched"
	"cds/internal/profiling"
	"cds/internal/report"
	"cds/internal/sim"
	"cds/internal/spec"
	"cds/internal/sweep"
	"cds/internal/trace"
	"cds/internal/workloads"
)

type options struct {
	csvOut, mdOut, floor, detail bool
	runOne, dump, archOver       string
	traceOut, traceFmt           string
	workers                      int
}

func main() {
	opts := options{}
	flag.BoolVar(&opts.csvOut, "csv", false, "emit CSV instead of the formatted table")
	flag.BoolVar(&opts.mdOut, "markdown", false, "emit the markdown table EXPERIMENTS.md embeds")
	flag.StringVar(&opts.runOne, "run", "", "run a single experiment by Table 1 name (e.g. MPEG, ATR-SLD*)")
	flag.BoolVar(&opts.floor, "floor", false, "also run the MPEG memory-floor experiment (FB = 1K)")
	flag.BoolVar(&opts.detail, "detail", false, "print a per-experiment breakdown (timing, retention, context overlap)")
	flag.StringVar(&opts.dump, "dump", "", "export one experiment's application as editable JSON to stdout")
	flag.StringVar(&opts.archOver, "arch", "", "run every experiment on this machine preset (e.g. M2) instead of its Table 1 machine")
	flag.IntVar(&opts.workers, "workers", 0, "worker pool size for running experiments (0 = one per CPU)")
	flag.StringVar(&opts.traceOut, "trace", "", `write one experiment's basic/ds/cds timelines to this file ("-" for stdout; needs -run)`)
	flag.StringVar(&opts.traceFmt, "trace-format", "chrome", "timeline format: chrome, svg, summary or diff")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this duration (0 = no limit)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	err = run(ctx, opts)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts options) error {
	if opts.dump != "" {
		e, err := workloads.ByName(opts.dump)
		if err != nil {
			return err
		}
		raw, err := spec.FromPartition(e.Part, e.Arch).Marshal()
		if err != nil {
			return err
		}
		os.Stdout.Write(raw)
		fmt.Println()
		return nil
	}

	if opts.traceOut != "" && opts.runOne == "" {
		return fmt.Errorf("-trace needs -run <experiment> (one workload per trace)")
	}

	exps := workloads.All()
	if opts.runOne != "" {
		e, err := workloads.ByName(opts.runOne)
		if err != nil {
			return err
		}
		exps = []workloads.Experiment{e}
	}
	if opts.floor {
		exps = append(exps, workloads.MPEGFloor())
	}
	if opts.archOver != "" {
		// Preset typos must fail loudly, not shrink the run: PresetArchs
		// reports what it skipped and we refuse to continue on it.
		archs, skipped := sweep.PresetArchs(opts.archOver)
		if len(skipped) > 0 {
			known := make([]string, 0, len(arch.Presets()))
			for name := range arch.Presets() {
				known = append(known, name)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown machine preset %q (known: %s)", opts.archOver, strings.Join(known, ", "))
		}
		for i := range exps {
			exps[i].Arch = archs[0].Params
		}
	}

	// The rows are independent comparisons: run them through the sweep
	// batch pool. Outcomes come back in experiment order, so the table
	// is deterministic regardless of worker interleaving.
	jobs := make([]sweep.Job, len(exps))
	for i, e := range exps {
		jobs[i] = sweep.Job{Name: e.Name, Arch: e.Arch, Part: e.Part}
	}
	outcomes := sweep.BatchCtx(ctx, jobs, opts.workers)
	rows := make([]report.Row, 0, len(exps))
	for i, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Job.Name, o.Err)
		}
		rows = append(rows, rowFrom(exps[i], o.Cmp))
		if opts.detail {
			if err := printDetail(ctx, exps[i]); err != nil {
				return err
			}
		}
	}

	if opts.traceOut != "" {
		tc, err := cds.CompareAllTraced(ctx, exps[0].Arch, exps[0].Part)
		if err != nil {
			return fmt.Errorf("%s: %w", exps[0].Name, err)
		}
		if err := trace.ExportFile(opts.traceOut, opts.traceFmt, tc.Timelines...); err != nil {
			return err
		}
		if opts.traceOut != "-" {
			fmt.Fprintf(os.Stderr, "wrote %s %s timelines (%d schedulers) to %s\n",
				exps[0].Name, opts.traceFmt, len(tc.Timelines), opts.traceOut)
		}
	}

	if opts.csvOut {
		report.CSV(os.Stdout, rows)
		return nil
	}
	if opts.mdOut {
		report.Markdown(os.Stdout, rows)
		return nil
	}
	fmt.Println("Table 1 — experimental results (measured vs paper)")
	report.Table1(os.Stdout, rows)
	fmt.Println()
	fmt.Println("Figure 6 — relative execution improvement")
	report.Figure6(os.Stdout, rows)
	return nil
}

// printDetail prints the per-experiment breakdown: where the cycles go,
// what the Complete Data Scheduler retained, and how much context traffic
// hides under computation.
func printDetail(ctx context.Context, e workloads.Experiment) error {
	cmp, err := cds.CompareAllCtx(ctx, e.Arch, e.Part)
	if err != nil {
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	fmt.Printf("--- %s (FB %s/set, CM %d words) ---\n",
		e.Name, arch.FormatSize(e.Arch.FBSetBytes), e.Arch.CMWords)
	print3 := func(label string, f func(*cds.Result) int) {
		if cmp.BasicErr != nil {
			fmt.Printf("  %-18s %10s %10d %10d\n", label, "n/a", f(cmp.DS), f(cmp.CDS))
			return
		}
		fmt.Printf("  %-18s %10d %10d %10d\n", label, f(cmp.Basic), f(cmp.DS), f(cmp.CDS))
	}
	fmt.Printf("  %-18s %10s %10s %10s\n", "", "basic", "ds", "cds")
	print3("total cycles", func(r *cds.Result) int { return r.Timing.TotalCycles })
	print3("compute cycles", func(r *cds.Result) int { return r.Timing.ComputeCycles })
	print3("DMA busy", func(r *cds.Result) int { return r.Timing.DMABusy() })
	print3("RC stalls", func(r *cds.Result) int { return r.Timing.StallCycles })
	print3("load bytes", func(r *cds.Result) int { return r.Timing.LoadBytes })
	print3("store bytes", func(r *cds.Result) int { return r.Timing.StoreBytes })
	print3("context words", func(r *cds.Result) int { return r.Timing.CtxWords })

	if gain, err := sim.OverlapGain(cmp.CDS.Schedule); err == nil {
		fmt.Printf("  double-buffer overlap saves %.1f%% on the CDS schedule\n", gain)
	}
	if plan, err := csched.Build(cmp.CDS.Schedule); err == nil {
		fmt.Printf("  context plan: %.0f%% of context time overlapped, CM double-buffered: %v\n",
			100*plan.OverlapRatio(), plan.DoubleBuffered)
	}
	if len(cmp.CDS.Schedule.Retained) > 0 {
		fmt.Println("  retained:")
		for _, r := range cmp.CDS.Schedule.Retained {
			fmt.Printf("    %-6s %-12s %5dB set %d clusters %d..%d TF=%.3f\n",
				r.Kind, r.Name, r.Size, r.Set, r.From, r.To, r.TF)
		}
	}
	fmt.Println()
	return nil
}

func rowFrom(e workloads.Experiment, cmp *cds.Comparison) report.Row {
	row := report.Row{
		Name:        e.Name,
		N:           len(e.Part.Clusters),
		NMax:        e.Part.MaxKernelsPerCluster(),
		DSBytes:     e.Part.App.TotalDataBytes(),
		DTBytes:     cmp.DTBytes,
		RF:          cmp.RF,
		PaperRF:     e.PaperRF,
		FBBytes:     e.Arch.FBSetBytes,
		DSImp:       cmp.ImprovementDS,
		CDSImp:      cmp.ImprovementCDS,
		PaperDS:     e.PaperDS,
		PaperCDS:    e.PaperCDS,
		BasicFailed: cmp.BasicErr != nil,
	}
	if cmp.BasicErr != nil {
		fmt.Fprintf(os.Stderr, "note: %s: %v (DS ran with RF=%d, CDS with RF=%d)\n",
			e.Name, cmp.BasicErr, cmp.DS.Schedule.RF, cmp.CDS.Schedule.RF)
	}
	return row
}
