// Command morphsim runs the functional RC-array simulator: it pushes an
// 8x8 sample block through a small kernel pipeline (DCT -> quantize ->
// threshold) entirely on the simulated array, verifying each stage
// against its pure-Go reference, and prints the array traffic.
//
// Like the other commands, morphsim honors -timeout and SIGINT: the
// pipeline checks for cancellation between stages, reports the error on
// stderr and exits non-zero.
//
// Usage:
//
//	morphsim [-kernel name] [-verbose] [-timeout 10s]
//
// Without -kernel, the full pipeline demo runs; with it, the named
// library kernel runs alone on random data.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"

	"cds/internal/kernels"
	"cds/internal/rcarray"
	"cds/internal/scherr"
)

func main() {
	kernelName := flag.String("kernel", "", "run a single library kernel (empty = pipeline demo)")
	verbose := flag.Bool("verbose", false, "print block contents at each stage")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *kernelName, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "morphsim: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, kernelName string, verbose bool) error {
	lib := kernels.Library()
	if kernelName != "" {
		k, ok := lib[kernelName]
		if !ok {
			names := make([]string, 0, len(lib))
			for n := range lib {
				names = append(names, n)
			}
			sort.Strings(names)
			return fmt.Errorf("unknown kernel %q; library has %v", kernelName, names)
		}
		return runOne(ctx, k, verbose)
	}
	return pipeline(ctx, lib, verbose)
}

func runOne(ctx context.Context, k *kernels.Kernel, verbose bool) error {
	if err := scherr.FromContext(ctx); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	a := rcarray.M1Array()
	in := make([]int16, k.InWords)
	for i := range in {
		in[i] = int16(rng.Intn(200) - 100)
	}
	if err := a.LoadFB(0, in); err != nil {
		return err
	}
	got, err := k.Run(a, 0, k.InWords)
	if err != nil {
		return err
	}
	want := k.Reference(in)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: out[%d] = %d, reference says %d", k.Name, i, got[i], want[i])
		}
	}
	fmt.Printf("%s: %s\n", k.Name, k.Description)
	fmt.Printf("  contexts %d words, %d array steps, %d in -> %d out words\n",
		k.ContextWords(), k.ComputeCycles(), k.InWords, k.OutWords)
	fmt.Println("  output matches the pure-Go reference")
	if verbose {
		printBlock("input", in)
		printBlock("output", got)
	}
	return nil
}

func pipeline(ctx context.Context, lib map[string]*kernels.Kernel, verbose bool) error {
	a := rcarray.M1Array()
	block := make([]int16, 64)
	for i := range block {
		// A smooth gradient with a bright square, the classic DCT demo.
		r, c := i/8, i%8
		block[i] = int16(8*r + c)
		if r >= 2 && r < 6 && c >= 2 && c < 6 {
			block[i] += 40
		}
	}
	if err := a.LoadFB(0, block); err != nil {
		return err
	}
	fmt.Println("pipeline: dct8 -> scale (quantize) -> threshold on one 8x8 block")
	if verbose {
		printBlock("input", block)
	}

	stages := []string{"dct8", "scale", "threshold"}
	base := 0
	cur := block
	totalCtx, totalSteps := 0, 0
	for _, name := range stages {
		if err := scherr.FromContext(ctx); err != nil {
			return err
		}
		k := lib[name]
		out := base + k.InWords
		got, err := k.Run(a, base, out)
		if err != nil {
			return err
		}
		want := k.Reference(cur)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: out[%d] = %d, reference says %d", name, i, got[i], want[i])
			}
		}
		fmt.Printf("  %-10s ok  (%3d context words, %2d steps)\n", name, k.ContextWords(), k.ComputeCycles())
		totalCtx += k.ContextWords()
		totalSteps += k.ComputeCycles()
		if verbose {
			printBlock(name, got)
		}
		base = out
		cur = got
	}
	fmt.Printf("pipeline total: %d context words, %d array steps; every stage matches its reference\n",
		totalCtx, totalSteps)

	hot := 0
	for _, v := range cur {
		if v != 0 {
			hot++
		}
	}
	fmt.Printf("threshold detections: %d of 64 positions\n", hot)
	return nil
}

func printBlock(label string, data []int16) {
	fmt.Printf("%s:\n", label)
	for r := 0; r*8 < len(data); r++ {
		end := r*8 + 8
		if end > len(data) {
			end = len(data)
		}
		fmt.Print("   ")
		for _, v := range data[r*8 : end] {
			fmt.Printf("%7d", v)
		}
		fmt.Println()
	}
}
