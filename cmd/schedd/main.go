// Command schedd is the long-lived scheduling daemon: the one-shot CLIs
// (cds, experiments, sweep) as a fault-tolerant HTTP/JSON service. It
// serves scheduler comparisons and grid sweeps with retry/backoff over
// transient faults, per-target circuit breaking, bounded-queue admission
// control (load shedding with 429 + Retry-After), crash-safe sweep
// journaling and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/compare  {"workload":"MPEG"} | {"workload":"MPEG","arch":"M2","fb_bytes":2048} | {"spec":{...}}
//	                  ?trace=1 adds per-scheduler timeline analytics to the answer
//	POST /v1/sweep    {"archs":["M1/4","M1"],"workloads":["MPEG","E1"],"journal":"nightly"}
//	GET  /debug/traces  bounded ring of recently traced comparisons (?full=1 adds Chrome payloads)
//	GET  /healthz     process liveness
//	GET  /readyz      load-balancer readiness (503 while draining)
//
// Usage:
//
//	schedd [-addr :8080] [-debug-addr localhost:6060] [-workers 2] [-queue 8] [-request-timeout 30s]
//	       [-drain-timeout 10s] [-journal-dir DIR]
//	       [-retry-attempts 4] [-retry-base 10ms] [-retry-seed 1]
//	       [-breaker-threshold 5] [-breaker-cooldown 5s]
//	       [-fault-seed N -fault-stall-pct P -fault-fail-every K -fault-fail-runs R]
//
// The -fault-* flags enable chaos mode: every comparison's CDS schedule
// additionally executes on the functional machine under deterministic
// fault injection (internal/faultmachine), exercising the retry path in
// production configuration. SIGTERM (and SIGINT) drain gracefully:
// readiness flips immediately, -drain-grace holds a 503-on-/readyz
// window for load balancers (clamped to half of -drain-timeout so the
// drain itself always keeps time), in-flight requests finish within
// -drain-timeout, and the exit status is 0 exactly when everything
// drained.
package main

import (
	"context"
	_ "expvar" // /debug/vars on the debug listener
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the debug listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"cds/internal/faultmachine"
	"cds/internal/retry"
	"cds/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional debug listener for /debug/pprof and /debug/vars (empty disables; bind to localhost)")
	workers := flag.Int("workers", 2, "concurrent execution slots")
	queue := flag.Int("queue", 8, "admission queue bound beyond the slots (load shed past it)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	drainGrace := flag.Duration("drain-grace", 0, "503-on-/readyz window before the listener closes (for load balancers)")
	journalDir := flag.String("journal-dir", "", "directory for sweep journals (empty disables journaling)")
	retryAttempts := flag.Int("retry-attempts", 4, "total attempts per compare request")
	retryBase := flag.Duration("retry-base", 10*time.Millisecond, "base backoff delay")
	retrySeed := flag.Int64("retry-seed", 1, "seed of the deterministic backoff jitter")
	brThreshold := flag.Int("breaker-threshold", 5, "consecutive transient failures that open a target's circuit")
	brCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	faultSeed := flag.Int64("fault-seed", 0, "chaos mode: fault-injection seed")
	faultStallPct := flag.Int("fault-stall-pct", 0, "chaos mode: per-transfer DMA stall probability (percent)")
	faultFailEvery := flag.Int("fault-fail-every", 0, "chaos mode: fail every Nth transfer while the fault window is open")
	faultFailRuns := flag.Int("fault-fail-runs", 0, "chaos mode: width of the transient fault window in runs (<0 = persistent)")
	traceEntries := flag.Int("trace-ring-entries", 32, "max traced comparisons kept for /debug/traces")
	traceBytes := flag.Int("trace-ring-bytes", 1<<20, "byte budget of the /debug/traces ring's Chrome payloads")
	traceSample := flag.Int("trace-sample-every", 1, "keep every Nth ?trace=1 answer's full trace in the ring")
	flag.Parse()

	cfg := serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		RequestTimeout: *reqTimeout,
		DrainGrace:     *drainGrace,
		JournalDir:     *journalDir,
		Retry: retry.Policy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			Seed:        *retrySeed,
		},
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		TraceRingEntries: *traceEntries,
		TraceRingBytes:   *traceBytes,
		TraceSampleEvery: *traceSample,
		Logf:             log.Printf,
	}
	if *faultStallPct > 0 || *faultFailEvery > 0 {
		cfg.Machine = faultmachine.NewRunner(faultmachine.Config{
			Seed:         *faultSeed,
			StallProbPct: *faultStallPct,
			FailEvery:    *faultFailEvery,
		}, *faultFailRuns)
		cfg.MachineSeed = *faultSeed
	}

	if *debugAddr != "" {
		// Profiling and counters (including the "rescache" hit/miss
		// expvar) live on their own listener so they never share a port —
		// or an ACL — with the service traffic.
		go func() {
			log.Printf("schedd: debug listener on %s (/debug/pprof, /debug/vars)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("schedd: debug listener: %v", err)
			}
		}()
	}

	if err := run(*addr, cfg, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "schedd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	srv := serve.New(cfg)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-errc:
		return err // listener died before any signal
	case sig := <-sigc:
		log.Printf("schedd: %v: draining (deadline %s)", sig, drainTimeout)
	}
	signal.Stop(sigc) // a second signal kills the process the hard way

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
