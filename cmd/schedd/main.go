// Command schedd is the long-lived scheduling daemon: the one-shot CLIs
// (cds, experiments, sweep) as a fault-tolerant HTTP/JSON service. It
// serves scheduler comparisons and grid sweeps with retry/backoff over
// transient faults, per-target circuit breaking, bounded-queue admission
// control (load shedding with 429 + Retry-After), crash-safe sweep
// journaling and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/compare  {"workload":"MPEG"} | {"workload":"MPEG","arch":"M2","fb_bytes":2048} | {"spec":{...}}
//	                  ?trace=1 adds per-scheduler timeline analytics to the answer;
//	                  an Idempotency-Key header makes duplicated submissions replay
//	                  instead of double-running
//	POST /v1/sweep    {"archs":["M1/4","M1"],"workloads":["MPEG","E1"],"journal":"nightly"}
//	POST /v1/stream   {"log":{...}} — plan an arrival log incrementally: segment
//	                  schedules are memoized under content fingerprints across
//	                  requests (bound with -stream-memo), both streamed executions
//	                  (serialized and prefetching) are verified before answering
//	GET  /debug/traces  bounded ring of recently traced comparisons (?full=1 adds Chrome payloads)
//	GET  /metrics     plain-text counters: admission, result-cache hit/miss/evict
//	                  (rescache), and per-tenant queue depths in tenant mode
//	GET  /healthz     process liveness
//	GET  /readyz      load-balancer readiness: 503 while draining OR while the
//	                  admission queue is saturated, with queue depth/capacity
//	                  in the JSON body
//
// Usage:
//
//	schedd [-addr :8080] [-debug-addr localhost:6060] [-workers 2] [-queue 8] [-request-timeout 30s]
//	       [-drain-timeout 10s] [-journal-dir DIR] [-stream-memo 256]
//	       [-tenants "video:weight=3,budget=4;radar:weight=1"]
//	       [-retry-attempts 4] [-retry-base 10ms] [-retry-seed 1]
//	       [-breaker-threshold 5] [-breaker-cooldown 5s]
//	       [-fault-seed N -fault-stall-pct P -fault-fail-every K -fault-fail-runs R]
//	       [-sweep-point-delay D]
//
// The -fault-* flags enable chaos mode: every comparison's CDS schedule
// additionally executes on the functional machine under deterministic
// fault injection (internal/faultmachine), exercising the retry path in
// production configuration; -sweep-point-delay paces journaled sweeps so
// the chaos harness (cmd/chaos) can land a SIGKILL at a chosen journal
// record count. SIGTERM (and SIGINT) drain gracefully: readiness flips
// immediately, -drain-grace holds a 503-on-/readyz window for load
// balancers (clamped to half of -drain-timeout so the drain itself
// always keeps time), in-flight requests finish within -drain-timeout,
// and the exit status is 0 exactly when everything drained.
//
// -tenants turns on multi-tenant admission: requests name their tenant
// in the X-Tenant header, each tenant gets its own admission budget
// (its own 429 + Retry-After sized to the backlog) and execution slots
// are granted across tenants by weighted fair queueing, mirroring the
// array-level tenant interleaver (internal/tenant, cmd/tenants).
//
// The implementation lives in internal/daemon so the chaos harness can
// re-execute the identical daemon as a supervised child process.
package main

import (
	"os"

	"cds/internal/daemon"
)

func main() {
	os.Exit(daemon.Main(os.Args[1:], os.Stderr))
}
