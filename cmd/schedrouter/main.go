// Command schedrouter fronts a fleet of schedd workers with a
// failure-aware consistent-hash router.
//
//	schedrouter -addr :8079 \
//	    -workers w0=127.0.0.1:7100,w1=127.0.0.1:7101,w2=127.0.0.1:7102
//
// Membership is either the static -workers list or a -workers-file
// (one id=host:port per line, # comments); with a file, SIGHUP re-reads
// it and swaps the fleet in place — joiners start probing immediately,
// leavers' probe loops stop, kept workers carry their breaker state,
// and only the key ranges owned by leavers move on the ring. A file
// that fails to parse keeps the current membership.
//
// Requests hash by content — /v1/compare by the workload's partition
// fingerprint, /v1/sweep by journal name — so each key range sticks to
// one worker and its warm caches/journals. Workers are health-checked
// through their truthful /readyz (jittered probes; -eject-threshold
// consecutive failures eject, -readmit-cooldown paces half-open
// readmission); a dead worker's requests fail over along the ring with
// the same Idempotency-Key so replay stores dedupe; draining workers
// (SIGTERM) leave the ring without dropping in-flight work.
//
// Endpoints: POST /v1/compare, POST /v1/sweep (forwarded),
// GET /v1/ring (membership + health snapshot), GET /healthz,
// GET /readyz (503 once zero workers are routable).
//
// Exit status: 0 after a clean SIGTERM/SIGINT drain, 1 on errors, 2 on
// flag errors.
package main

import (
	"os"

	"cds/internal/cluster"
)

func main() {
	os.Exit(cluster.Main(os.Args[1:], os.Stderr))
}
