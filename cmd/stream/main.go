// Command stream replays an arrival log through the online scheduler:
// segments are planned incrementally with the Complete Data Scheduler
// (unchanged segments reuse their fingerprint-memoized schedules), the
// stitched schedule executes under the streaming simulator with and
// without context prefetch, both executions are audited against the
// prefetch invariant family, and the result is compared against the
// static CDS schedule of the merged offline application — the cost of
// going online, and how much of it prefetch buys back.
//
// Usage:
//
//	stream -log app.stream.json                       # replay a JSON arrival log
//	stream -gen 7 -index 3                            # replay a generated bursty scenario
//	stream -log app.stream.json -format svg -out diff.svg   # static/serialized/prefetch Gantt diff
//	stream -log app.stream.json -json                 # machine-readable replay report
//
// Formats mirror cmd/trace: diff (default when -out is set), summary,
// chrome and svg; the exported artifact stacks the static schedule, the
// serialized online baseline and the prefetching executor.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cds"
	"cds/internal/sim"
	"cds/internal/stream"
	"cds/internal/trace"
	"cds/internal/verify"
	"cds/internal/workloads"
)

func main() {
	logPath := flag.String("log", "", "JSON arrival log to replay")
	gen := flag.Int64("gen", -1, "generate the arrival scenario from this corpus seed instead of -log")
	index := flag.Int("index", 0, "scenario index within the -gen seed's stream")
	format := flag.String("format", "", "trace export format: diff, summary, chrome or svg (default diff when -out is set)")
	out := flag.String("out", "", "write the trace artifact to this file")
	jsonOut := flag.Bool("json", false, "emit the replay report as JSON on stdout")
	memo := flag.Int("memo", 0, "segment memo bound (0 = default)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *logPath, *gen, *index, *format, *out, *jsonOut, *memo); err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		os.Exit(1)
	}
}

// report is the machine-readable replay outcome (-json).
type report struct {
	Name     string    `json:"name"`
	Segments []segment `json:"segments"`
	// Makespans of the three executions of the same workload.
	StaticCycles   int `json:"static_cycles"`
	SerialCycles   int `json:"serial_cycles"`
	PrefetchCycles int `json:"prefetch_cycles"`
	// Hoisted context traffic under prefetch.
	PrefetchedBursts int `json:"prefetched_bursts"`
	PrefetchedBusy   int `json:"prefetched_busy"`
	// Verified reports that both streamed executions passed the prefetch
	// invariant family (the replay fails otherwise).
	Verified bool `json:"verified"`
}

type segment struct {
	Name        string `json:"name"`
	At          int    `json:"at"`
	Fingerprint string `json:"fingerprint"`
	RF          int    `json:"rf"`
	Visits      int    `json:"visits"`
}

func run(ctx context.Context, logPath string, gen int64, index int, format, out string, jsonOut bool, memoSize int) error {
	lg, err := load(logPath, gen, index)
	if err != nil {
		return err
	}

	start := time.Now()
	plan, err := stream.NewPlanner(memoSize).Plan(ctx, lg)
	if err != nil {
		return err
	}
	planDur := time.Since(start)

	serialRes, serialTL, err := plan.Trace(false, plan.Name+"/serialized")
	if err != nil {
		return err
	}
	preRes, preTL, err := plan.Trace(true, plan.Name+"/prefetch")
	if err != nil {
		return err
	}
	for _, v := range []struct {
		opts sim.StreamOpts
		res  *sim.Result
		tl   *trace.Timeline
	}{
		{plan.Opts(false), serialRes, serialTL},
		{plan.Opts(true), preRes, preTL},
	} {
		if err := verify.StreamTimeline(plan.Schedule, v.opts, v.res, v.tl); err != nil {
			return err
		}
	}

	// The offline yardstick: static CDS over the merged application.
	merged, err := lg.Merged()
	if err != nil {
		return err
	}
	part, pa, err := merged.Build()
	if err != nil {
		return err
	}
	static, err := cds.RunCtx(ctx, cds.CDS, pa, part)
	if err != nil {
		return err
	}
	_, staticTL, err := sim.Trace(static.Schedule)
	if err != nil {
		return err
	}
	staticTL.Label = plan.Name + "/static"

	rep := report{
		Name:             plan.Name,
		StaticCycles:     static.Timing.TotalCycles,
		SerialCycles:     serialRes.TotalCycles,
		PrefetchCycles:   preRes.TotalCycles,
		PrefetchedBursts: preRes.PrefetchCount,
		PrefetchedBusy:   preRes.PrefetchCycles,
		Verified:         true,
	}
	for _, s := range plan.Segments {
		rep.Segments = append(rep.Segments, segment{
			Name:        s.Name,
			At:          s.At,
			Fingerprint: fmt.Sprintf("%x", s.Fingerprint[:6]),
			RF:          s.RF,
			Visits:      len(s.Schedule.Visits),
		})
	}

	if out != "" {
		if format == "" {
			format = "diff"
		}
		if err := trace.ExportFile(out, format, staticTL, serialTL, preTL); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "stream: wrote %s (%s)\n", out, format)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Printf("%s: %d segments, %d visits, planned in %s (%d replanned, %d reused)\n",
		rep.Name, len(plan.Segments), len(plan.Schedule.Visits), planDur.Round(time.Microsecond),
		plan.Replanned, plan.Reused)
	fmt.Printf("%-24s %8s %14s %4s %7s\n", "segment", "arrives", "fingerprint", "rf", "visits")
	for _, s := range rep.Segments {
		fmt.Printf("%-24s %8d %14s %4d %7d\n", s.Name, s.At, s.Fingerprint, s.RF, s.Visits)
	}
	online := float64(rep.SerialCycles-rep.StaticCycles) / float64(rep.StaticCycles) * 100
	won := float64(rep.SerialCycles-rep.PrefetchCycles) / float64(rep.SerialCycles) * 100
	fmt.Printf("static CDS (offline):     %8d cycles\n", rep.StaticCycles)
	fmt.Printf("streamed, serialized:     %8d cycles  (+%.1f%% online cost)\n", rep.SerialCycles, online)
	fmt.Printf("streamed, prefetch:       %8d cycles  (%.1f%% of the baseline won back, %d bursts / %d cycles hoisted)\n",
		rep.PrefetchCycles, won, rep.PrefetchedBursts, rep.PrefetchedBusy)
	fmt.Printf("prefetch invariants:      pass\n")
	return nil
}

func load(logPath string, gen int64, index int) (*stream.Log, error) {
	switch {
	case logPath != "" && gen >= 0:
		return nil, fmt.Errorf("use either -log or -gen, not both")
	case logPath != "":
		raw, err := os.ReadFile(logPath)
		if err != nil {
			return nil, err
		}
		return stream.ParseLog(raw)
	case gen >= 0:
		a := workloads.GenArrivals(gen, index)
		return stream.Split(a.Spec, a.SegClusters, a.ArriveAt)
	default:
		return nil, fmt.Errorf("one of -log or -gen is required")
	}
}
