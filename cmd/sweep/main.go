// Command sweep plots improvement-versus-memory curves for a workload:
// the generalization of the paper's E1 -> E1* / MPEG -> MPEG* two-point
// comparisons into a full frame-buffer-size sweep. The samples run
// across a worker pool; -grid batches architecture x workload grids
// instead (machine presets crossed with every Table 1 row).
//
// Usage:
//
//	sweep -experiment MPEG [-from 512] [-to 4096] [-step 256] [-csv]
//	sweep -grid [-archs M1/4,M1,M2] [-workers N] [-csv]
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	"cds/internal/sweep"
	"cds/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	expName := flag.String("experiment", "MPEG", "Table 1 experiment to sweep")
	from := flag.Int("from", 512, "smallest FB set size in bytes")
	to := flag.Int("to", 4096, "largest FB set size in bytes")
	step := flag.Int("step", 256, "sweep step in bytes")
	csvOut := flag.Bool("csv", false, "emit CSV")
	sharing := flag.Bool("sharing", false, "sweep the synthetic generator's sharing degree instead of FB size")
	grid := flag.Bool("grid", false, "batch an architecture x workload grid instead of a single-workload FB sweep")
	archNames := flag.String("archs", "M1/4,M1,M2", "comma-separated machine presets for -grid")
	workers := flag.Int("workers", 0, "worker pool size for -grid (0 = one per CPU)")
	flag.Parse()

	if *grid {
		archs := sweep.PresetArchs(strings.Split(*archNames, ",")...)
		if len(archs) == 0 {
			log.Fatalf("no known presets in %q", *archNames)
		}
		outcomes := sweep.Batch(sweep.Grid(archs, workloads.All()), *workers)
		if *csvOut {
			sweep.CSVBatch(os.Stdout, outcomes)
			return
		}
		sweep.WriteBatch(os.Stdout, outcomes)
		return
	}

	if *sharing {
		cfg := workloads.DefaultSynthetic()
		fracs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
		points, err := sweep.Sharing(cfg, 3, fracs)
		if err != nil {
			log.Fatal(err)
		}
		sweep.WriteSharing(os.Stdout, points)
		return
	}

	e, err := workloads.ByName(*expName)
	if err != nil {
		log.Fatal(err)
	}
	points, err := sweep.FB(e.Arch, e.Part, *from, *to, *step)
	if err != nil {
		log.Fatal(err)
	}
	if *csvOut {
		sweep.CSV(os.Stdout, points)
		return
	}
	sweep.Write(os.Stdout, points)
}
