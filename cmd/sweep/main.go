// Command sweep plots improvement-versus-memory curves for a workload:
// the generalization of the paper's E1 -> E1* / MPEG -> MPEG* two-point
// comparisons into a full frame-buffer-size sweep. The samples run
// across a worker pool; -grid batches architecture x workload grids
// instead (machine presets crossed with every Table 1 row).
//
// Sweeps are cancellable: -timeout bounds the whole run and SIGINT
// (Ctrl-C) stops it cooperatively. A canceled grid still prints the
// points it measured; abandoned points carry an error matching
// scherr.ErrCanceled.
//
// Grid sweeps are also crash-safe: -journal FILE appends every completed
// point to a JSONL checkpoint as it finishes, and re-running the same
// command resumes from it — completed points are not recomputed and the
// merged output is byte-identical to an uninterrupted run.
//
// Usage:
//
//	sweep -experiment MPEG [-from 512] [-to 4096] [-step 256] [-csv]
//	sweep -grid [-archs M1/4,M1,M2] [-workers N] [-timeout 30s] [-csv] [-journal FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"cds"
	"cds/internal/arch"
	"cds/internal/profiling"
	"cds/internal/sweep"
	"cds/internal/trace"
	"cds/internal/workloads"
)

func main() {
	expName := flag.String("experiment", "MPEG", "Table 1 experiment to sweep")
	from := flag.Int("from", 512, "smallest FB set size in bytes")
	to := flag.Int("to", 4096, "largest FB set size in bytes")
	step := flag.Int("step", 256, "sweep step in bytes")
	csvOut := flag.Bool("csv", false, "emit CSV")
	sharing := flag.Bool("sharing", false, "sweep the synthetic generator's sharing degree instead of FB size")
	grid := flag.Bool("grid", false, "batch an architecture x workload grid instead of a single-workload FB sweep")
	archNames := flag.String("archs", "M1/4,M1,M2", "comma-separated machine presets for -grid")
	workers := flag.Int("workers", 0, "worker pool size for -grid (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = no limit)")
	journal := flag.String("journal", "", "crash-safe checkpoint file for -grid (resume by re-running)")
	traceOut := flag.String("trace", "", `write the swept workload's basic/ds/cds timelines at its Table 1 machine to this file ("-" for stdout; FB sweeps only)`)
	traceFmt := flag.String("trace-format", "chrome", "timeline format: chrome, svg, summary or diff")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch {
	case *grid:
		if *traceOut != "" {
			err = fmt.Errorf("-trace applies to FB sweeps, not -grid")
		} else {
			err = runGrid(ctx, *archNames, *workers, *csvOut, *journal)
		}
	case *sharing:
		if *traceOut != "" {
			err = fmt.Errorf("-trace applies to FB sweeps, not -sharing")
		} else {
			err = runSharing(ctx)
		}
	default:
		err = runFB(ctx, *expName, *from, *to, *step, *csvOut, *traceOut, *traceFmt)
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

func runGrid(ctx context.Context, archNames string, workers int, csvOut bool, journal string) error {
	archs, skipped := sweep.PresetArchs(strings.Split(archNames, ",")...)
	if len(skipped) > 0 {
		known := make([]string, 0, len(arch.Presets()))
		for name := range arch.Presets() {
			known = append(known, name)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "sweep: skipping unknown presets %s (known: %s)\n",
			strings.Join(skipped, ", "), strings.Join(known, ", "))
	}
	if len(archs) == 0 {
		return fmt.Errorf("no known presets in %q", archNames)
	}
	jobs := sweep.Grid(archs, workloads.All())

	var rows []sweep.Row
	if journal != "" {
		j, prior, err := sweep.OpenJournal(journal)
		if err != nil {
			return err
		}
		defer j.Close()
		if n := len(sweep.Completed(prior)); n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming from %s: %d of %d points already journaled\n", journal, n, len(jobs))
		}
		rows, err = sweep.RunJournaled(ctx, j, prior, jobs, workers, nil)
		if err != nil && ctx.Err() == nil {
			return err
		}
	} else {
		rows = sweep.Rows(sweep.BatchCtx(ctx, jobs, workers))
	}

	if csvOut {
		if err := sweep.CSVRows(os.Stdout, rows); err != nil {
			return err
		}
	} else {
		sweep.WriteRows(os.Stdout, rows)
	}
	// Partial results were printed above; a dead context is still a
	// failed run for the caller's exit status.
	return ctx.Err()
}

func runSharing(ctx context.Context) error {
	cfg := workloads.DefaultSynthetic()
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	points, err := sweep.SharingCtx(ctx, cfg, 3, fracs)
	if err != nil {
		return err
	}
	sweep.WriteSharing(os.Stdout, points)
	return nil
}

func runFB(ctx context.Context, expName string, from, to, step int, csvOut bool, traceOut, traceFmt string) error {
	e, err := workloads.ByName(expName)
	if err != nil {
		return err
	}
	points, err := sweep.FBCtx(ctx, e.Arch, e.Part, from, to, step)
	if err != nil {
		return err
	}
	if csvOut {
		sweep.CSV(os.Stdout, points)
	} else {
		sweep.Write(os.Stdout, points)
	}
	if traceOut != "" {
		// Trace the workload at its Table 1 machine, so the timelines
		// explain the curve's reference point.
		tc, err := cds.CompareAllTraced(ctx, e.Arch, e.Part)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if err := trace.ExportFile(traceOut, traceFmt, tc.Timelines...); err != nil {
			return err
		}
		if traceOut != "-" {
			fmt.Fprintf(os.Stderr, "sweep: wrote %s %s timelines (%d schedulers) to %s\n",
				e.Name, traceFmt, len(tc.Timelines), traceOut)
		}
	}
	return nil
}
