// Command sweep plots improvement-versus-memory curves for a workload:
// the generalization of the paper's E1 -> E1* / MPEG -> MPEG* two-point
// comparisons into a full frame-buffer-size sweep.
//
// Usage:
//
//	sweep -experiment MPEG [-from 512] [-to 4096] [-step 256] [-csv]
package main

import (
	"flag"
	"log"
	"os"

	"cds/internal/sweep"
	"cds/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	expName := flag.String("experiment", "MPEG", "Table 1 experiment to sweep")
	from := flag.Int("from", 512, "smallest FB set size in bytes")
	to := flag.Int("to", 4096, "largest FB set size in bytes")
	step := flag.Int("step", 256, "sweep step in bytes")
	csvOut := flag.Bool("csv", false, "emit CSV")
	sharing := flag.Bool("sharing", false, "sweep the synthetic generator's sharing degree instead of FB size")
	flag.Parse()

	if *sharing {
		cfg := workloads.DefaultSynthetic()
		fracs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
		points, err := sweep.Sharing(cfg, 3, fracs)
		if err != nil {
			log.Fatal(err)
		}
		sweep.WriteSharing(os.Stdout, points)
		return
	}

	e, err := workloads.ByName(*expName)
	if err != nil {
		log.Fatal(err)
	}
	points, err := sweep.FB(e.Arch, e.Part, *from, *to, *step)
	if err != nil {
		log.Fatal(err)
	}
	if *csvOut {
		sweep.CSV(os.Stdout, points)
		return
	}
	sweep.Write(os.Stdout, points)
}
