// Command tenants schedules K applications time-sharing one array and
// renders the result: per-tenant Gantt lanes (who held the RC array
// when) and fairness curves (each tenant's cumulative service share
// against its ideal weighted share). The plan is verified end to end
// before anything is rendered: the fairness invariant family plus
// per-tenant solo-equivalence.
//
// Tenants come from either source:
//
//	tenants -experiments E1,ATR-FI -weights 2,1 -fb 1024,1024 -cm 512,512
//	tenants -experiments E1,E1,ATR-FI -weights 4,2,1 -base-fb 4K
//	tenants -gen-seed 9 -gen-index 3            # a generated corpus mix
//
// Knobs parallel to -experiments (comma-separated, padded with their
// last value): -weights, -priorities, -arrivals, -fb (bytes per FB
// quota), -cm (CM words per quota). The base machine is an M1 with
// -base-fb/-base-cm (defaults: the quota sums).
//
// Output: a text summary on stdout, plus -gantt FILE and -curves FILE
// for the SVG renderings.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"cds/internal/arch"
	"cds/internal/tenant"
	"cds/internal/workloads"
)

func main() {
	experiments := flag.String("experiments", "", "comma-separated Table-1 experiment names, one tenant each")
	weights := flag.String("weights", "1", "comma-separated tenant weights")
	priorities := flag.String("priorities", "0", "comma-separated tenant priority bands")
	arrivals := flag.String("arrivals", "0", "comma-separated tenant arrival cycles")
	fb := flag.String("fb", "", "comma-separated FB quotas in bytes (default: each experiment's own FB size)")
	cm := flag.String("cm", "", "comma-separated CM quotas in words (default: each experiment's own CM size)")
	baseFB := flag.String("base-fb", "", `base machine FB set size ("4K" or bytes; default: sum of quotas)`)
	baseCM := flag.Int("base-cm", 0, "base machine CM words (default: sum of quotas)")
	genSeed := flag.Int64("gen-seed", 0, "generate the mix from the tenant corpus with this seed")
	genIndex := flag.Int("gen-index", 0, "corpus index of the generated mix")
	gantt := flag.String("gantt", "", "write the per-tenant Gantt SVG to this file")
	curves := flag.String("curves", "", "write the fairness-curves SVG to this file")
	noVerify := flag.Bool("no-verify", false, "skip the fairness + solo-equivalence audit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *experiments, *weights, *priorities, *arrivals, *fb, *cm,
		*baseFB, *baseCM, *genSeed, *genIndex, *gantt, *curves, *noVerify); err != nil {
		fmt.Fprintf(os.Stderr, "tenants: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, experiments, weights, priorities, arrivals, fb, cm, baseFB string,
	baseCM int, genSeed int64, genIndex int, gantt, curves string, noVerify bool) error {
	var base arch.Params
	var tenants []tenant.Tenant
	var err error
	switch {
	case genSeed != 0:
		base, tenants, err = fromCorpus(genSeed, genIndex)
	case experiments != "":
		base, tenants, err = fromExperiments(experiments, weights, priorities, arrivals, fb, cm, baseFB, baseCM)
	default:
		return fmt.Errorf("need -experiments or -gen-seed (see -h)")
	}
	if err != nil {
		return err
	}

	plan, err := tenant.Schedule(ctx, base, tenants)
	if err != nil {
		return err
	}
	if !noVerify {
		if err := tenant.VerifyPlan(ctx, plan); err != nil {
			return err
		}
	}

	printSummary(plan, !noVerify)
	if gantt != "" {
		if err := writeSVG(gantt, plan, tenant.WriteGanttSVG); err != nil {
			return err
		}
	}
	if curves != "" {
		if err := writeSVG(curves, plan, tenant.WriteCurvesSVG); err != nil {
			return err
		}
	}
	return nil
}

// fromCorpus materializes a generated mix into schedulable tenants.
func fromCorpus(seed int64, index int) (arch.Params, []tenant.Tenant, error) {
	mix := workloads.GenTenantMix(seed, index)
	tenants := make([]tenant.Tenant, len(mix.Tenants))
	for i, ts := range mix.Tenants {
		part, _, err := ts.Spec.Build()
		if err != nil {
			return arch.Params{}, nil, fmt.Errorf("%s: tenant %s: %w", mix.Name, ts.ID, err)
		}
		tenants[i] = tenant.Tenant{
			ID:       ts.ID,
			Weight:   ts.Weight,
			Priority: ts.Priority,
			Arrive:   ts.Arrive,
			Quota:    tenant.Quota{FBBytes: ts.Spec.Arch.FBSetBytes, CMWords: ts.Spec.Arch.CMWords},
			Part:     part,
		}
	}
	fmt.Printf("mix %s on %s\n", mix.Name, mix.Base.Name)
	return mix.Base, tenants, nil
}

// fromExperiments builds tenants from Table-1 experiment names plus the
// parallel knob lists.
func fromExperiments(experiments, weights, priorities, arrivals, fb, cm, baseFB string, baseCM int) (arch.Params, []tenant.Tenant, error) {
	names := strings.Split(experiments, ",")
	w, err := intList(weights, len(names), "weights")
	if err != nil {
		return arch.Params{}, nil, err
	}
	prio, err := intList(priorities, len(names), "priorities")
	if err != nil {
		return arch.Params{}, nil, err
	}
	arr, err := intList(arrivals, len(names), "arrivals")
	if err != nil {
		return arch.Params{}, nil, err
	}

	tenants := make([]tenant.Tenant, len(names))
	sumFB, sumCM := 0, 0
	var exps []workloads.Experiment
	for _, name := range names {
		e, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			return arch.Params{}, nil, err
		}
		exps = append(exps, e)
	}
	fbq, err := quotaList(fb, exps, func(e workloads.Experiment) int { return e.Arch.FBSetBytes }, "fb")
	if err != nil {
		return arch.Params{}, nil, err
	}
	cmq, err := quotaList(cm, exps, func(e workloads.Experiment) int { return e.Arch.CMWords }, "cm")
	if err != nil {
		return arch.Params{}, nil, err
	}
	for i, e := range exps {
		id := strings.ToLower(strings.Map(func(r rune) rune {
			if r == '*' {
				return '+'
			}
			return r
		}, e.Name))
		id = fmt.Sprintf("%s-%d", id, i)
		tenants[i] = tenant.Tenant{
			ID: id, Weight: w[i], Priority: prio[i], Arrive: arr[i],
			Quota: tenant.Quota{FBBytes: fbq[i], CMWords: cmq[i]},
			Part:  e.Part,
		}
		sumFB += fbq[i]
		sumCM += cmq[i]
	}

	base := arch.M1()
	base.FBSetBytes = sumFB
	base.CMWords = sumCM
	if baseFB != "" {
		n, err := parseSize(baseFB)
		if err != nil {
			return arch.Params{}, nil, fmt.Errorf("-base-fb: %w", err)
		}
		base.FBSetBytes = n
	}
	if baseCM > 0 {
		base.CMWords = baseCM
	}
	base.Name = fmt.Sprintf("M1[%s,%d]", arch.FormatSize(base.FBSetBytes), base.CMWords)
	return base, tenants, nil
}

// intList parses a comma-separated int list, padding with the last value
// up to n entries.
func intList(s string, n int, what string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, n)
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not an integer", what, p)
		}
		out = append(out, v)
	}
	if len(out) > n {
		return nil, fmt.Errorf("-%s: %d values for %d tenants", what, len(out), n)
	}
	for len(out) < n {
		out = append(out, out[len(out)-1])
	}
	return out, nil
}

// quotaList parses a per-tenant quota list, defaulting each entry to the
// experiment's own machine dimension.
func quotaList(s string, exps []workloads.Experiment, dim func(workloads.Experiment) int, what string) ([]int, error) {
	if s == "" {
		out := make([]int, len(exps))
		for i, e := range exps {
			out[i] = dim(e)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(exps))
	for _, p := range parts {
		v, err := parseSize(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", what, err)
		}
		out = append(out, v)
	}
	if len(out) > len(exps) {
		return nil, fmt.Errorf("-%s: %d values for %d tenants", what, len(out), len(exps))
	}
	for len(out) < len(exps) {
		out = append(out, out[len(out)-1])
	}
	return out, nil
}

// parseSize accepts "2048" or "2K".
func parseSize(s string) (int, error) {
	if k, ok := strings.CutSuffix(strings.ToUpper(s), "K"); ok {
		f, err := strconv.ParseFloat(k, 64)
		if err != nil {
			return 0, fmt.Errorf("%q is not a size", s)
		}
		return int(f * arch.KiB), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%q is not a size", s)
	}
	return n, nil
}

// printSummary renders the plan as a table plus the fairness facts.
func printSummary(p *Plan, verified bool) {
	fmt.Printf("%-12s %3s %4s %7s  %9s %9s  %9s %9s  %7s\n",
		"tenant", "w", "prio", "arrive", "fb/cm", "slices", "solo", "end", "share")
	for li, l := range p.Lanes {
		solo := l.Tenant.Arrive + l.SoloLastCompute()
		share := p.IdealShares()[li]
		fmt.Printf("%-12s %3d %4d %7d  %4d/%-4d %9d  %9d %9d  %6.1f%%\n",
			l.Tenant.ID, l.Tenant.Weight, l.Tenant.Priority, l.Tenant.Arrive,
			l.Tenant.Quota.FBBytes, l.Tenant.Quota.CMWords, len(l.Slices),
			solo, p.Exec.LaneEnd[li], 100*share)
	}
	fmt.Printf("makespan %d cycles, %d slices, max lag %.0f (bound %.0f)\n",
		p.Exec.TotalCycles, len(p.Order), p.MaxLag, p.LagBound())
	if verified {
		fmt.Println("verified: fairness invariants + per-tenant solo equivalence")
	}
}

// Plan aliases the tenant plan for the summary printer's signature.
type Plan = tenant.Plan

func writeSVG(path string, p *tenant.Plan, render func(w io.Writer, p *tenant.Plan) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f, p); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
