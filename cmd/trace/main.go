// Command trace records and compares schedule-execution timelines: it
// runs a workload (a built-in paper experiment or a JSON spec) under
// one or more schedulers, records every DMA transfer, compute interval
// and FB set switch, and renders the timelines side by side — the
// paper's Figure 6 overlap argument as an inspectable artifact.
//
// Usage:
//
//	trace -experiment MPEG                           # analytics diff of basic/ds/cds
//	trace -experiment MPEG -format svg -out mpeg.svg # stacked Gantt chart
//	trace -spec app.json -schedulers ds,cds -format chrome -out app.json.trace
//	trace -validate mpeg.trace.json                  # check an exported Chrome trace
//
// Formats: diff (default, side-by-side analytics table), summary
// (per-timeline analytics), chrome (Chrome trace_event JSON for
// chrome://tracing or Perfetto) and svg (self-contained Gantt chart).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"cds"
	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/sim"
	"cds/internal/spec"
	"cds/internal/trace"
	"cds/internal/workloads"
)

func main() {
	specPath := flag.String("spec", "", "JSON application spec")
	expName := flag.String("experiment", "", "built-in paper experiment (e.g. MPEG, E1, ATR-SLD*)")
	scheds := flag.String("schedulers", "basic,ds,cds", "comma-separated schedulers to trace (first is the diff baseline)")
	format := flag.String("format", "diff", "output format: diff, summary, chrome or svg")
	out := flag.String("out", "-", `output file ("-" for stdout)`)
	validate := flag.String("validate", "", "validate an exported Chrome trace file instead of tracing")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *specPath, *expName, *scheds, *format, *out, *validate); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, specPath, expName, scheds, format, out, validate string) error {
	if validate != "" {
		f, err := os.Open(validate)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := trace.ValidateChrome(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid Chrome trace, %d complete events\n", validate, n)
		return nil
	}

	part, pa, err := load(specPath, expName)
	if err != nil {
		return err
	}
	kinds, err := parseSchedulers(scheds)
	if err != nil {
		return err
	}

	var tls []*trace.Timeline
	for _, kind := range kinds {
		res, err := cds.RunCtx(ctx, kind, pa, part)
		if err != nil {
			// A scheduler that cannot run the workload (the paper's
			// memory-floor case) is reported, not fatal: the others
			// still trace.
			fmt.Fprintf(os.Stderr, "trace: %s: %v\n", kind, err)
			continue
		}
		_, tl, err := sim.Trace(res.Schedule)
		if err != nil {
			return err
		}
		tls = append(tls, tl)
	}
	if len(tls) == 0 {
		return fmt.Errorf("no scheduler produced a timeline")
	}
	return trace.ExportFile(out, format, tls...)
}

func load(specPath, expName string) (*app.Partition, arch.Params, error) {
	switch {
	case specPath != "" && expName != "":
		return nil, arch.Params{}, fmt.Errorf("use either -spec or -experiment, not both")
	case expName != "":
		e, err := workloads.ByName(expName)
		if err != nil {
			return nil, arch.Params{}, err
		}
		return e.Part, e.Arch, nil
	case specPath != "":
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return nil, arch.Params{}, err
		}
		return spec.Parse(raw)
	}
	return nil, arch.Params{}, fmt.Errorf("need -spec <file>, -experiment <name> or -validate <trace.json>")
}

func parseSchedulers(list string) ([]cds.SchedulerKind, error) {
	var kinds []cds.SchedulerKind
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "basic":
			kinds = append(kinds, cds.Basic)
		case "ds":
			kinds = append(kinds, cds.DS)
		case "cds":
			kinds = append(kinds, cds.CDS)
		case "":
		default:
			return nil, fmt.Errorf("unknown scheduler %q (want basic, ds or cds)", name)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no schedulers in %q", list)
	}
	return kinds, nil
}
