package cds_test

import (
	"fmt"
	"log"

	"cds"
	"cds/internal/app"
	"cds/internal/core"
)

// ExampleCompareAll reproduces the paper's comparison on a small
// application: the Data Scheduler wins through context reuse, the
// Complete Data Scheduler additionally retains the shared table.
func ExampleCompareAll() {
	b := cds.NewApp("demo", 8).
		Datum("in0", 128).
		Datum("tbl", 192). // shared by clusters 0 and 2 (same FB set)
		Datum("m", 48).
		Datum("r", 64). // cluster 0 -> cluster 2
		Datum("out1", 32).
		Datum("out2", 32)
	b.Kernel("k1", 96, 120).In("in0", "tbl").Out("m")
	b.Kernel("k2", 96, 120).In("m").Out("r", "out1")
	b.Kernel("k3", 64, 90).In("out1")
	b.Kernel("k4", 96, 120).In("tbl", "r").Out("out2")
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	part, err := cds.Partition(a, 2, 2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	machine := cds.M1()
	machine.FBSetBytes = 1 * cds.KiB
	machine.CMWords = 256

	cmp, err := cds.CompareAll(machine, part)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RF=%d\n", cmp.RF)
	fmt.Printf("retained objects: %d\n", len(cmp.CDS.Schedule.Retained))
	fmt.Printf("CDS beats DS: %v\n", cmp.ImprovementCDS > cmp.ImprovementDS)
	fmt.Printf("traffic avoided per iteration: %d bytes\n", cmp.DTBytes)
	// Output:
	// RF=2
	// retained objects: 2
	// CDS beats DS: true
	// traffic avoided per iteration: 320 bytes
}

// ExampleRun schedules with one policy and inspects the allocation.
func ExampleRun() {
	b := cds.NewApp("tiny", 4).
		Datum("in", 100).
		Datum("out", 60)
	b.Kernel("k", 64, 200).In("in").Out("out")
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	part, err := cds.Partition(a, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cds.Run(cds.DS, cds.M1(), part)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler: %s\n", res.Schedule.Scheduler)
	fmt.Printf("splits: %d, regular: %v\n", res.Allocation.Splits, res.Allocation.Regular)
	// Output:
	// scheduler: ds
	// splits: 0, regular: true
}

// ExampleTileKernel shows the intra-kernel tiling extension raising the
// reuse factor.
func ExampleTileKernel() {
	b := app.NewBuilder("tiles", 8).
		Datum("big", 600).
		Datum("out", 64)
	b.Kernel("crunch", 128, 200).In("big").Out("out")
	b.Kernel("emit", 64, 100).In("out")
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	part, err := app.NewPartition(a, 2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	pa := cds.M1()
	pa.FBSetBytes = 1 * cds.KiB

	before, err := (core.DataScheduler{}).Schedule(pa, part)
	if err != nil {
		log.Fatal(err)
	}
	tiled, err := app.TilePartition(part, "crunch", 4)
	if err != nil {
		log.Fatal(err)
	}
	after, err := (core.DataScheduler{}).Schedule(pa, tiled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RF before tiling: %d\n", before.RF)
	fmt.Printf("RF after tiling:  %d\n", after.RF)
	// Output:
	// RF before tiling: 1
	// RF after tiling:  4
}
