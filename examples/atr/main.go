// ATR example: the paper's second experiment family. Automatic target
// recognition correlates a shared image region against shared template
// banks; how the kernels are grouped into clusters decides which scheduler
// can exploit the sharing. This example runs the three ATR-SLD kernel
// schedules and shows the paper's pattern: the schedule that zeroes the
// Data Scheduler's gain is the one where the Complete Data Scheduler's
// retention shines the most.
package main

import (
	"fmt"
	"log"

	"cds"
	"cds/internal/workloads"
)

func main() {
	log.SetFlags(0)

	fmt.Println("ATR second-level detection: 8 correlator/peak-detector pairs,")
	fmt.Println("shared image region and two shared template banks, FB = 8K/set")
	fmt.Println()
	fmt.Printf("%-11s %-24s %8s %8s %10s\n", "schedule", "clusters", "DS impr", "CDS impr", "retained")

	for variant := 0; variant < 3; variant++ {
		e := workloads.ATRSLD(variant)
		cmp, err := cds.CompareAll(e.Arch, e.Part)
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		shape := ""
		for i, c := range e.Part.Clusters {
			if i > 0 {
				shape += "+"
			}
			shape += fmt.Sprintf("%d", len(c.Kernels))
		}
		fmt.Printf("%-11s %-24s %7.1f%% %7.1f%% %7d B\n",
			e.Name, shape, cmp.ImprovementDS, cmp.ImprovementCDS,
			retainedBytes(cmp))
	}

	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - big clusters duplicate the image/template transfers per correlator,")
	fmt.Println("    so the Data Scheduler's per-cluster dedup already helps;")
	fmt.Println("  - one-pair clusters have nothing to dedup (DS gains 0%), but spread")
	fmt.Println("    the shared data across four same-set clusters, so retention by the")
	fmt.Println("    Complete Data Scheduler is at its most valuable.")
}

func retainedBytes(cmp *cds.Comparison) int {
	total := 0
	for _, r := range cmp.CDS.Schedule.Retained {
		total += r.Size
	}
	return total
}
