// Design-space example: use the kernel scheduler (the upstream stage of
// the MorphoSys compilation framework) to pick the cluster decomposition
// of an application automatically, then hand the winner to the Complete
// Data Scheduler and lower it all the way to the TinyRISC-level transfer
// program.
package main

import (
	"fmt"
	"log"

	"cds"
	"cds/internal/codegen"
	"cds/internal/csched"
	"cds/internal/ksched"
)

func main() {
	log.SetFlags(0)

	// A 6-kernel radar pipeline; the interesting question is where to
	// cut it into clusters.
	b := cds.NewApp("radar", 12).
		Datum("rx", 160).
		Datum("window", 192). // shared by the two filter stages
		Datum("f1", 96).
		Datum("f2", 96).
		Datum("spec", 128).
		Datum("mag", 96).
		Datum("cfarTbl", 128).
		Datum("dets", 64).
		Datum("tracks", 48)
	b.Kernel("filt1", 160, 140).In("rx", "window").Out("f1")
	b.Kernel("filt2", 160, 140).In("f1", "window").Out("f2")
	b.Kernel("fft", 224, 180).In("f2").Out("spec")
	b.Kernel("mag", 96, 90).In("spec").Out("mag")
	b.Kernel("cfar", 128, 110).In("mag", "cfarTbl").Out("dets")
	b.Kernel("track", 96, 100).In("dets", "cfarTbl").Out("tracks")
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	machine := cds.M1()
	machine.FBSetBytes = 1 * cds.KiB
	machine.CMWords = 512

	// Explore every cluster decomposition (2^5 = 32 candidates),
	// estimating each with a tentative data schedule — the framework's
	// kernel scheduler.
	res, err := ksched.Explore(machine, a, ksched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel scheduler explored %d candidates (%d infeasible)\n",
		res.Explored, res.Infeasible)
	fmt.Printf("winner: cluster sizes %v, estimated %d cycles\n\n", res.Sizes, res.Cycles)

	// Final schedule with the Complete Data Scheduler.
	final, err := cds.Run(cds.CDS, machine, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete data scheduler: %d cycles, RF=%d, %d retained objects\n",
		final.Timing.TotalCycles, final.Schedule.RF, len(final.Schedule.Retained))

	// Context scheduling report: how much context traffic hides under
	// computation.
	plan, err := csched.Build(final.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context scheduler: %d words, %.0f%% of context time overlapped (CM double-buffered: %v)\n",
		plan.TotalWords, 100*plan.OverlapRatio(), plan.DoubleBuffered)

	// Lower to the instruction stream and verify it.
	prog, err := codegen.Generate(final.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := codegen.Check(prog, final.Schedule); err != nil {
		log.Fatalf("program checker: %v", err)
	}
	fmt.Printf("code generator: %d instructions (%d LDCTXT, %d LDFB, %d STFB, %d EXEC), checker passed\n",
		len(prog.Instrs), prog.Count(codegen.OpLdCtxt), prog.Count(codegen.OpLdFB),
		prog.Count(codegen.OpStFB), prog.Count(codegen.OpExec))

	fmt.Println("\nfirst instructions of the program:")
	for i, in := range prog.Instrs {
		if i == 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", in)
	}
}
