// Extensions example: the paper's section 7 future work, implemented.
//
//  1. Intra-kernel data management: tiling a kernel's private data into
//     streamed slices shrinks the footprint and raises the reuse factor.
//  2. Cross-FB-set reuse: retention across clusters on different sets.
//  3. A joint RF/retention sweep as an alternative to the paper's
//     take-the-max RF policy.
//
// Every variant is also executed FUNCTIONALLY to show the optimizations
// preserve the computed outputs byte for byte.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"cds"
	"cds/internal/app"
	"cds/internal/core"
	"cds/internal/machine"
	"cds/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A feature-extraction pipeline with one dominant input buffer.
	b := cds.NewApp("sensor", 12).
		Datum("frameBuf", 600). // large private input of the extractor
		Datum("lut", 96).       // lookup table shared across sets
		Datum("feat", 64).
		Datum("scores", 64).
		Datum("dets", 48)
	b.Kernel("extract", 160, 220).In("frameBuf", "lut").Out("feat")
	b.Kernel("score", 128, 140).In("feat", "lut").Out("scores")
	b.Kernel("detect", 96, 100).In("scores").Out("dets")
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	part, err := cds.Partition(a, 2, 1, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	pa := cds.M1()
	pa.FBSetBytes = 1 * cds.KiB
	pa.CMWords = 320

	fmt.Println("variant                          RF  retained  loads(B)    cycles")
	base := report("paper CDS", pa, part, core.CompleteDataScheduler{})

	// 1. Tiling: split the extractor's frame buffer into 4 streamed
	// slices sharing one context group.
	tiled, err := app.TilePartition(part, "extract", 4)
	if err != nil {
		log.Fatal(err)
	}
	report("  + intra-kernel tiling (x4)", pa, tiled, core.CompleteDataScheduler{})

	// 2. Cross-set reuse: the lookup table is used by clusters on both
	// sets; paper-mode retention cannot keep it.
	report("  + cross-set reuse", pa, tiled, core.CompleteDataScheduler{CrossSetReuse: true})

	// 3. Joint RF/retention sweep.
	report("  + RF sweep", pa, tiled, core.CompleteDataScheduler{CrossSetReuse: true, RF: core.RFSweep})

	// Functional equivalence: on the tiled application, the fully
	// extended scheduler computes the same outputs as the plain one.
	// (The tiling transform itself changes the kernel set, so the
	// comparison is between SCHEDULERS on the same application.)
	fmt.Println()
	sBase, err := (core.CompleteDataScheduler{}).Schedule(pa, tiled)
	if err != nil {
		log.Fatal(err)
	}
	sBest, err := (core.CompleteDataScheduler{CrossSetReuse: true, RF: core.RFSweep}).Schedule(pa, tiled)
	if err != nil {
		log.Fatal(err)
	}
	rBase, err := machine.Run(sBase, 42, nil)
	if err != nil {
		log.Fatal(err)
	}
	rBest, err := machine.Run(sBest, 42, nil)
	if err != nil {
		log.Fatal(err)
	}
	outBase := rBase.FinalOutputs(sBase)
	outBest := rBest.FinalOutputs(sBest)
	keys := make([]string, 0, len(outBase))
	for k := range outBase {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !bytes.Equal(outBase[k], outBest[k]) {
			log.Fatalf("output %s differs between variants!", k)
		}
	}
	fmt.Printf("functional check: %d final outputs byte-identical across scheduler variants\n", len(keys))
	_ = base
}

func report(label string, pa cds.Arch, part *cds.Part, sched core.Scheduler) *sim.Result {
	s, err := sched.Schedule(pa, part)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	r, err := sim.Run(s)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("%-32s %2d %9d %9d %9d\n", label, s.RF, len(s.Retained), r.LoadBytes, r.TotalCycles)
	return r
}
