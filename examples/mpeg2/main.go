// MPEG example: reproduce the paper's MPEG study — the encoder macroblock
// loop scheduled at three frame-buffer sizes, showing the reuse factor
// and improvement growing with memory, and the Basic Scheduler failing
// outright at 1K while the data schedulers still run (the paper's
// memory-floor result).
package main

import (
	"errors"
	"fmt"
	"log"

	"cds"
	"cds/internal/arch"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

func main() {
	log.SetFlags(0)

	part := workloads.MPEG().Part
	fmt.Println("MPEG encoder macroblock loop on MorphoSys M1")
	fmt.Printf("kernels: ")
	for i, k := range part.App.Kernels {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(k.Name)
	}
	fmt.Printf("\nclusters: %d (alternating FB sets), %d iterations\n\n",
		len(part.Clusters), part.App.Iterations)

	fmt.Printf("%-6s %10s %10s %10s %6s %12s\n", "FB", "basic", "DS", "CDS", "RF", "CDS saves")
	for _, fbKiB := range []int{1, 2, 3, 4} {
		machine := cds.M1()
		machine.FBSetBytes = fbKiB * cds.KiB
		machine.CMWords = 512

		basicRes, basicErr := cds.Run(cds.Basic, machine, part)
		dsRes, err := cds.Run(cds.DS, machine, part)
		if err != nil {
			log.Fatalf("FB=%dK: data scheduler: %v", fbKiB, err)
		}
		cdsRes, err := cds.Run(cds.CDS, machine, part)
		if err != nil {
			log.Fatalf("FB=%dK: complete data scheduler: %v", fbKiB, err)
		}

		basicCol := "cannot run"
		if basicErr == nil {
			basicCol = fmt.Sprintf("%d", basicRes.Timing.TotalCycles)
		} else {
			if !errors.Is(basicErr, scherr.ErrInfeasible) {
				log.Fatalf("FB=%dK: unexpected basic error: %v", fbKiB, basicErr)
			}
		}
		fmt.Printf("%-6s %10s %10d %10d %6d %9d B/it\n",
			arch.FormatSize(machine.FBSetBytes), basicCol,
			dsRes.Timing.TotalCycles, cdsRes.Timing.TotalCycles,
			cdsRes.Schedule.RF, cdsRes.Schedule.AvoidedBytesPerIter())
	}

	fmt.Println("\nThe 1K row is the paper's headline memory-floor result: the basic")
	fmt.Println("scheduler needs more frame buffer than the chip has, while the data")
	fmt.Println("schedulers fit by replacing dead data in place.")
}
