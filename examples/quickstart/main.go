// Quickstart: build a small application, schedule it with the three
// policies the paper compares, and print the execution times and the
// Complete Data Scheduler's retention decisions.
package main

import (
	"fmt"
	"log"

	"cds"
)

func main() {
	log.SetFlags(0)

	// An application is a sequence of kernels plus the data they
	// exchange. This one has three clusters; the coefficient table
	// "coefs" is used by clusters 0 and 2 (which share a Frame Buffer
	// set), and cluster 0 feeds the partial result "part" to cluster 2.
	b := cds.NewApp("quickstart", 16).
		Datum("samples", 192). // external input of cluster 0
		Datum("coefs", 256).   // shared by clusters 0 and 2
		Datum("mid", 64).      // intermediate inside cluster 0
		Datum("part", 96).     // cluster 0 -> cluster 2
		Datum("spec", 128).    // cluster 0 -> cluster 1 (other FB set)
		Datum("peaks", 48).    // final output of cluster 1
		Datum("frame", 96)     // final output of cluster 2
	b.Kernel("fir", 160, 150).In("samples", "coefs").Out("mid")
	b.Kernel("fft", 160, 150).In("mid").Out("spec", "part")
	b.Kernel("peak", 128, 100).In("spec").Out("peaks")
	b.Kernel("mix", 128, 100).In("part", "coefs").Out("frame")
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The kernel scheduler would normally pick the clusters; here we
	// assign them by hand: {fir,fft} {peak} {mix}, alternating FB sets.
	part, err := cds.Partition(a, 2, 2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A MorphoSys M1 with a 1K frame buffer set and a small context
	// memory, so transfers matter.
	machine := cds.M1()
	machine.FBSetBytes = 1 * cds.KiB
	machine.CMWords = 448

	cmp, err := cds.CompareAll(machine, part)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("basic scheduler: %7d cycles\n", cmp.Basic.Timing.TotalCycles)
	fmt.Printf("data scheduler:  %7d cycles  (%.1f%% better, RF=%d)\n",
		cmp.DS.Timing.TotalCycles, cmp.ImprovementDS, cmp.DS.Schedule.RF)
	fmt.Printf("complete DS:     %7d cycles  (%.1f%% better)\n",
		cmp.CDS.Timing.TotalCycles, cmp.ImprovementCDS)

	fmt.Println("\nwhat the Complete Data Scheduler kept in the frame buffer:")
	for _, r := range cmp.CDS.Schedule.Retained {
		fmt.Printf("  %-6s %-8s %4d bytes, clusters %d..%d on set %d, saves %d B per iteration\n",
			r.Kind, r.Name, r.Size, r.From, r.To, r.Set, r.AvoidedBytesPerIter)
	}
	fmt.Printf("\nallocation: peak use per set %v, splits %d, regular addresses %v\n",
		cmp.CDS.Allocation.PeakUsed, cmp.CDS.Allocation.Splits, cmp.CDS.Allocation.Regular)
}
