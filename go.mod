module cds

go 1.22
