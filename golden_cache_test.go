package cds

// Golden equivalence tests for result caching: the memoized pipeline
// must be observably identical to the uncached one — byte for byte
// under a canonical serialization — and cache hits must share one
// immutable Comparison.

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"cds/internal/rescache"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

// goldenBytes serializes everything a caller can observe in a
// comparison: schedules, timings and allocation reports of all three
// schedulers plus the derived metrics.
func goldenBytes(t *testing.T, cmp *Comparison) []byte {
	t.Helper()
	raw, err := json.Marshal(struct {
		Basic, DS, CDS                *Result
		ImprovementDS, ImprovementCDS float64
		RF, DTBytes                   int
		BasicErr, DSErr, CDSErr       string
	}{
		cmp.Basic, cmp.DS, cmp.CDS,
		cmp.ImprovementDS, cmp.ImprovementCDS,
		cmp.RF, cmp.DTBytes,
		errString(cmp.BasicErr), errString(cmp.DSErr), errString(cmp.CDSErr),
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestResultCacheGolden: for every workload, the cached comparison —
// first fill, then a pure hit — serializes byte-identically to the
// uncached scheduler output.
func TestResultCacheGolden(t *testing.T) {
	for _, e := range workloads.All() {
		prev := SetResultCaching(false)
		uncached, uncachedErr := CompareAll(e.Arch, e.Part)
		SetResultCaching(prev)
		if uncachedErr != nil && !errors.Is(uncachedErr, scherr.ErrInfeasible) {
			t.Fatalf("%s: uncached: %v", e.Name, uncachedErr)
		}

		fill, fillErr := CompareAll(e.Arch, e.Part)
		hit, hitErr := CompareAll(e.Arch, e.Part)
		if errString(fillErr) != errString(uncachedErr) || errString(hitErr) != errString(fillErr) {
			t.Fatalf("%s: error drift: uncached=%v fill=%v hit=%v", e.Name, uncachedErr, fillErr, hitErr)
		}
		if uncachedErr != nil {
			continue // degraded outcomes are not cached; nothing further to compare
		}

		want := goldenBytes(t, uncached)
		if got := goldenBytes(t, fill); string(got) != string(want) {
			t.Errorf("%s: cache-fill comparison differs from uncached output", e.Name)
		}
		if got := goldenBytes(t, hit); string(got) != string(want) {
			t.Errorf("%s: cache-hit comparison differs from uncached output", e.Name)
		}
		if fill != hit {
			t.Errorf("%s: second call did not return the shared cached *Comparison", e.Name)
		}
		if lk, ok := LookupComparison(e.Arch, e.Part); !ok || lk != hit {
			t.Errorf("%s: LookupComparison does not see the resident entry", e.Name)
		}
	}
}

// TestCompareAllCtxCanceledNotCached: a dead context reports
// cancellation and must neither poison the cache nor be served from it.
func TestCompareAllCtxCanceledNotCached(t *testing.T) {
	e := workloads.MPEG()
	// Ensure the entry exists, then cancel: the hit must NOT mask the
	// caller's dead context.
	if _, err := CompareAll(e.Arch, e.Part); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareAllCtx(ctx, e.Arch, e.Part); !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("dead context: err = %v, want ErrCanceled", err)
	}

	// A cancellation during fill must not be memoized: use a fresh spec
	// so the fill actually runs, with an already-expired deadline.
	b := NewApp("golden-cancel", 16).Datum("in", 256).Datum("out", 64)
	b.Kernel("k", 32, 500).In("in").Out("out")
	part, err := Partition(b.MustBuild(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := CompareAllCtx(dctx, e.Arch, part); !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("expired deadline: err = %v, want ErrCanceled", err)
	}
	if _, ok := LookupComparison(e.Arch, part); ok {
		t.Error("canceled computation was cached")
	}
	// The same spec under a live context computes cleanly afterwards.
	if _, err := CompareAll(e.Arch, part); err != nil {
		t.Fatalf("post-cancel recompute: %v", err)
	}
}

// TestResultCachingDisabled: with caching off, repeated calls build
// fresh Comparisons.
func TestResultCachingDisabled(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	e := workloads.MPEG()
	a, err := CompareAll(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareAll(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("caching disabled but the same *Comparison came back")
	}
}

// TestRescacheGlobalSwitch: the process-wide rescache switch also
// bypasses the comparison cache.
func TestRescacheGlobalSwitch(t *testing.T) {
	prev := rescache.SetEnabled(false)
	defer rescache.SetEnabled(prev)
	e := workloads.MPEG()
	a, err := CompareAll(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareAll(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("rescache disabled but the same *Comparison came back")
	}
}
