package cds

// Integration tests: drive the whole stack — extraction, scheduling,
// allocation replay, code generation, replay checking and timing — over
// randomized synthetic workloads and assert the cross-module invariants
// that no single package can check alone.

import (
	"errors"
	"testing"

	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/csched"
	"cds/internal/sim"
	"cds/internal/tinyrisc"
	"cds/internal/workloads"
)

// TestFullPipelineOnSyntheticSeeds runs every scheduler end to end on 25
// random workloads.
func TestFullPipelineOnSyntheticSeeds(t *testing.T) {
	cfg := workloads.DefaultSynthetic()
	pa := workloads.SyntheticArch(cfg)
	schedulers := []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}}

	for seed := int64(0); seed < 25; seed++ {
		part, err := workloads.Synthetic(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var times [3]int
		var loads [3]int
		feasible := true
		for i, sched := range schedulers {
			s, err := sched.Schedule(pa, part)
			if err != nil {
				var ie *core.InfeasibleError
				if errors.As(err, &ie) && sched.Name() == "basic" {
					feasible = false
					continue // the basic scheduler may legitimately not fit
				}
				t.Fatalf("seed %d/%s: %v", seed, sched.Name(), err)
			}
			if err := core.ValidateSchedule(s); err != nil {
				t.Fatalf("seed %d/%s: invalid schedule: %v", seed, sched.Name(), err)
			}

			// Allocation replay: leak-free, within bounds.
			rep, err := core.Allocate(s, true)
			if err != nil {
				t.Fatalf("seed %d/%s: allocation: %v", seed, sched.Name(), err)
			}
			for set, peak := range rep.PeakUsed {
				if peak > pa.FBSetBytes {
					t.Fatalf("seed %d/%s: set %d peak %d over FB %d",
						seed, sched.Name(), set, peak, pa.FBSetBytes)
				}
			}

			// Code generation + machine-discipline check.
			prog, err := codegen.Generate(s)
			if err != nil {
				t.Fatalf("seed %d/%s: codegen: %v", seed, sched.Name(), err)
			}
			if _, err := codegen.Check(prog, s); err != nil {
				t.Fatalf("seed %d/%s: program check: %v", seed, sched.Name(), err)
			}

			// Control-code compilation: the TinyRISC program must
			// replay the transfer program exactly.
			tp, err := tinyrisc.Compile(prog)
			if err != nil {
				t.Fatalf("seed %d/%s: tinyrisc: %v", seed, sched.Name(), err)
			}
			if err := tinyrisc.Verify(tp, prog); err != nil {
				t.Fatalf("seed %d/%s: tinyrisc verify: %v", seed, sched.Name(), err)
			}

			// Context plan must classify every cycle.
			plan, err := csched.Build(s)
			if err != nil {
				t.Fatalf("seed %d/%s: csched: %v", seed, sched.Name(), err)
			}
			if plan.TotalWords != s.TotalCtxWords() {
				t.Fatalf("seed %d/%s: csched words %d != schedule %d",
					seed, sched.Name(), plan.TotalWords, s.TotalCtxWords())
			}

			// Timing.
			r, err := sim.Run(s)
			if err != nil {
				t.Fatalf("seed %d/%s: sim: %v", seed, sched.Name(), err)
			}
			if r.TotalCycles < r.ComputeCycles {
				t.Fatalf("seed %d/%s: total %d below compute %d",
					seed, sched.Name(), r.TotalCycles, r.ComputeCycles)
			}
			times[i] = r.TotalCycles
			loads[i] = r.LoadBytes
		}
		if !feasible {
			continue
		}
		// Scheduler ordering invariants.
		if times[2] > times[1] || times[1] > times[0] {
			t.Errorf("seed %d: ordering broken: basic=%d ds=%d cds=%d",
				seed, times[0], times[1], times[2])
		}
		if loads[2] > loads[1] {
			t.Errorf("seed %d: CDS loads %d exceed DS loads %d", seed, loads[2], loads[1])
		}
	}
}

// TestComputeInvariantAcrossSchedulers: total computation is a property
// of the application, not the scheduler.
func TestComputeInvariantAcrossSchedulers(t *testing.T) {
	for _, e := range workloads.All() {
		var compute []int
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(e.Arch, e.Part)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sched.Name(), err)
			}
			compute = append(compute, s.TotalComputeCycles())
		}
		if compute[0] != compute[1] || compute[1] != compute[2] {
			t.Errorf("%s: compute differs across schedulers: %v", e.Name, compute)
		}
	}
}

// TestStoreLoadConservation: on every experiment, data loaded from
// external memory equals external inputs consumed plus spilled results
// reloaded; simpler invariant checked here: DS and Basic store identical
// bytes (retention is the only store reducer).
func TestStoreLoadConservation(t *testing.T) {
	for _, e := range workloads.All() {
		sBasic, err := (core.Basic{}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		sDS, err := (core.DataScheduler{}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if sBasic.TotalStoreBytes() != sDS.TotalStoreBytes() {
			t.Errorf("%s: basic stores %d, DS stores %d: should match (both store all results)",
				e.Name, sBasic.TotalStoreBytes(), sDS.TotalStoreBytes())
		}
		// Per-iteration store volume equals the persistent result bytes.
		want := 0
		for _, ci := range sDS.Info.Clusters {
			want += ci.PersistentOutBytes(e.Part.App)
		}
		if got := sDS.TotalStoreBytes(); got != want*e.Part.App.Iterations {
			t.Errorf("%s: DS stores %d, want %d (persistent bytes x iterations)",
				e.Name, got, want*e.Part.App.Iterations)
		}
	}
}

// TestCrossSetReuseEndToEnd runs the future-work extension through the
// full pipeline on the experiments and checks it never loses to the
// paper-mode CDS.
func TestCrossSetReuseEndToEnd(t *testing.T) {
	for _, e := range workloads.All() {
		plain, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		cross, err := (core.CompleteDataScheduler{CrossSetReuse: true}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		rPlain, err := sim.Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		rCross, err := sim.Run(cross)
		if err != nil {
			t.Fatal(err)
		}
		if rCross.LoadBytes > rPlain.LoadBytes {
			t.Errorf("%s: cross-set reuse increased loads (%d > %d)",
				e.Name, rCross.LoadBytes, rPlain.LoadBytes)
		}
		if _, err := core.Allocate(cross, true); err != nil {
			t.Errorf("%s: cross-set allocation: %v", e.Name, err)
		}
	}
}
