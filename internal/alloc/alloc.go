// Package alloc implements the Frame Buffer allocation algorithm of the
// Complete Data Scheduler (Sanchez-Elez et al., DATE 2002, section 5).
//
// The allocator manages one Frame Buffer set as a linear address space. It
// keeps a list of free blocks (the paper's FB_list) and serves first-fit
// requests from either end: input data and inter-cluster shared objects
// are placed from the upper addresses, intermediate and final results from
// the lower addresses. When no single free block fits, a request may be
// split across several blocks (at the cost of irregular access), which the
// paper treats as a last resort; splitting can be disabled to prove that
// the paper's experiments never need it.
//
// To promote address regularity across loop iterations, an allocation can
// name a preferred address (where the previous iteration of the same datum
// lived); the allocator honors it when that exact region is free.
package alloc

import (
	"fmt"
	"sort"
	"strings"

	"cds/internal/scherr"
)

// Dir selects which end of the free space first-fit scans from.
type Dir int

const (
	// FromTop serves the request from the highest-addressed fitting
	// free block, at that block's top. The paper uses it for input data
	// and shared objects.
	FromTop Dir = iota
	// FromBottom serves from the lowest-addressed fitting free block,
	// at that block's bottom. The paper uses it for results.
	FromBottom
)

func (d Dir) String() string {
	if d == FromTop {
		return "top"
	}
	return "bottom"
}

// Extent is a contiguous byte range [Addr, Addr+Len).
type Extent struct {
	Addr, Len int
}

// End returns the first address past the extent.
func (e Extent) End() int { return e.Addr + e.Len }

// Placement records where a named object lives. Objects normally occupy
// one extent; a split object occupies several, in ascending address order.
type Placement struct {
	Name    string
	Extents []Extent
}

// Bytes returns the total placed size.
func (p Placement) Bytes() int {
	n := 0
	for _, e := range p.Extents {
		n += e.Len
	}
	return n
}

// Split reports whether the object was split across free blocks.
func (p Placement) Split() bool { return len(p.Extents) > 1 }

// Addr returns the address of the first extent (the canonical address used
// for regularity across iterations).
func (p Placement) Addr() int { return p.Extents[0].Addr }

// FitPolicy selects which free block serves a request that fits several.
type FitPolicy int

const (
	// FirstFit takes the first fitting block in scan order (the paper's
	// choice: cheap and, with the two-sided placement discipline,
	// fragmentation-free on the paper's workloads).
	FirstFit FitPolicy = iota
	// BestFit takes the smallest fitting block.
	BestFit
	// WorstFit takes the largest fitting block.
	WorstFit
)

func (p FitPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	}
	return "fit(?)"
}

// ErrNoSpace is returned when the total free space cannot satisfy a
// request. It also matches scherr.ErrCapacity under errors.Is.
var ErrNoSpace = scherr.Sentinel(scherr.ErrCapacity, "alloc: insufficient free space")

// ErrWouldSplit is returned when the request only fits split across blocks
// but splitting is disabled. It also matches scherr.ErrCapacity.
var ErrWouldSplit = scherr.Sentinel(scherr.ErrCapacity, "alloc: request fits only when split, and splitting is disabled")

// FB is one Frame Buffer set under allocation. The zero value is unusable;
// use New.
type FB struct {
	size       int
	free       []Extent // sorted by Addr, coalesced, non-empty lengths
	live       map[string]Placement
	allowSplit bool
	policy     FitPolicy

	// Stats accumulated since New/Reset.
	peakUsed   int
	used       int
	splitCount int
	allocCount int
}

// New returns an empty Frame Buffer set allocator of the given size in
// bytes. allowSplit enables last-resort splitting across free blocks.
func New(size int, allowSplit bool) *FB {
	if size <= 0 {
		panic(fmt.Sprintf("alloc: non-positive FB size %d", size))
	}
	// The free list rarely exceeds a handful of blocks (two-sided
	// placement keeps fragmentation low); preallocating its capacity
	// keeps steady-state carve/insert churn allocation-free.
	free := make([]Extent, 1, 8)
	free[0] = Extent{Addr: 0, Len: size}
	return &FB{
		size:       size,
		free:       free,
		live:       make(map[string]Placement),
		allowSplit: allowSplit,
	}
}

// SetFitPolicy changes the block-selection policy (FirstFit by default).
// Intended for the fit-policy ablation; call it before any allocation.
func (fb *FB) SetFitPolicy(p FitPolicy) { fb.policy = p }

// Size returns the FB set capacity in bytes.
func (fb *FB) Size() int { return fb.size }

// Used returns the currently occupied bytes.
func (fb *FB) Used() int { return fb.used }

// Free returns the currently free bytes.
func (fb *FB) Free() int { return fb.size - fb.used }

// PeakUsed returns the maximum occupancy observed since New or Reset.
func (fb *FB) PeakUsed() int { return fb.peakUsed }

// Splits returns how many allocations had to be split so far.
func (fb *FB) Splits() int { return fb.splitCount }

// Allocs returns how many allocations were served so far.
func (fb *FB) Allocs() int { return fb.allocCount }

// FreeBlocks returns a copy of the free list (the paper's FB_list),
// ascending by address.
func (fb *FB) FreeBlocks() []Extent {
	out := make([]Extent, len(fb.free))
	copy(out, fb.free)
	return out
}

// LargestFree returns the size of the largest free block.
func (fb *FB) LargestFree() int {
	max := 0
	for _, e := range fb.free {
		if e.Len > max {
			max = e.Len
		}
	}
	return max
}

// Lookup returns the placement of a live object.
func (fb *FB) Lookup(name string) (Placement, bool) {
	p, ok := fb.live[name]
	return p, ok
}

// Live returns the names of all live objects, sorted.
func (fb *FB) Live() []string {
	names := make([]string, 0, len(fb.live))
	for n := range fb.live {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset empties the FB and clears statistics. The free list's backing
// array and the live map are reused, so per-sweep-point FB churn (Reset
// between points) does not allocate.
func (fb *FB) Reset() {
	fb.free = append(fb.free[:0], Extent{Addr: 0, Len: fb.size})
	clear(fb.live)
	fb.used, fb.peakUsed, fb.splitCount, fb.allocCount = 0, 0, 0, 0
}

// Alloc places a new object of the given size using first-fit from the
// chosen direction. If preferAddr is >= 0 and the exact region
// [preferAddr, preferAddr+size) is free, the object is placed there to
// keep iteration-to-iteration addresses regular.
func (fb *FB) Alloc(name string, size int, dir Dir, preferAddr int) (Placement, error) {
	if size <= 0 {
		return Placement{}, fmt.Errorf("alloc: non-positive size %d for %q", size, name)
	}
	if _, dup := fb.live[name]; dup {
		return Placement{}, fmt.Errorf("alloc: %q is already placed", name)
	}
	if size > fb.Free() {
		return Placement{}, fmt.Errorf("alloc: %q needs %d bytes, %d free: %w", name, size, fb.Free(), ErrNoSpace)
	}

	var extents []Extent
	if preferAddr >= 0 && fb.regionFree(preferAddr, size) {
		extents = []Extent{{Addr: preferAddr, Len: size}}
	} else if e, ok := fb.firstFit(size, dir); ok {
		extents = []Extent{e}
	} else {
		if !fb.allowSplit {
			return Placement{}, fmt.Errorf("alloc: %q (%d bytes, largest free %d): %w",
				name, size, fb.LargestFree(), ErrWouldSplit)
		}
		extents = fb.splitFit(size, dir)
		fb.splitCount++
	}
	for _, e := range extents {
		fb.carve(e)
	}
	p := Placement{Name: name, Extents: extents}
	fb.live[name] = p
	fb.used += size
	fb.allocCount++
	if fb.used > fb.peakUsed {
		fb.peakUsed = fb.used
	}
	return p, nil
}

// Release frees a live object and coalesces the free list (the paper's
// release(c,k,iter)). Releasing an unknown name is an error: the
// schedulers must have perfectly matched lifetimes.
func (fb *FB) Release(name string) error {
	p, ok := fb.live[name]
	if !ok {
		return fmt.Errorf("alloc: release of %q which is not placed", name)
	}
	delete(fb.live, name)
	for _, e := range p.Extents {
		fb.insertFree(e)
	}
	fb.used -= p.Bytes()
	return nil
}

// regionFree reports whether [addr, addr+size) lies entirely inside one
// free block. The free list is sorted by address, so the only block that
// can contain addr is the last one starting at or before it.
func (fb *FB) regionFree(addr, size int) bool {
	i := sort.Search(len(fb.free), func(i int) bool { return fb.free[i].Addr > addr }) - 1
	return i >= 0 && addr+size <= fb.free[i].End()
}

// firstFit finds a free block that can hold size whole under the active
// fit policy, scanning in the requested direction, and returns the extent
// to occupy.
func (fb *FB) firstFit(size int, dir Dir) (Extent, bool) {
	best := -1
	if fb.policy == FirstFit {
		// Stop at the first fitting block in scan direction.
		if dir == FromBottom {
			for i := 0; i < len(fb.free); i++ {
				if fb.free[i].Len >= size {
					best = i
					break
				}
			}
		} else {
			for i := len(fb.free) - 1; i >= 0; i-- {
				if fb.free[i].Len >= size {
					best = i
					break
				}
			}
		}
	} else {
		// Best/worst fit scan every block; the scan direction breaks
		// ties (strict improvement keeps the first seen).
		for j := 0; j < len(fb.free); j++ {
			i := j
			if dir == FromTop {
				i = len(fb.free) - 1 - j
			}
			l := fb.free[i].Len
			if l < size {
				continue
			}
			if best < 0 ||
				(fb.policy == BestFit && l < fb.free[best].Len) ||
				(fb.policy == WorstFit && l > fb.free[best].Len) {
				best = i
			}
		}
	}
	if best < 0 {
		return Extent{}, false
	}
	e := fb.free[best]
	if dir == FromBottom {
		return Extent{Addr: e.Addr, Len: size}, true
	}
	return Extent{Addr: e.End() - size, Len: size}, true
}

// splitFit gathers extents from successive free blocks (largest-address
// first for FromTop, lowest first for FromBottom) until size is covered.
// The caller guarantees total free space suffices.
func (fb *FB) splitFit(size int, dir Dir) []Extent {
	var extents []Extent
	remaining := size
	if dir == FromBottom {
		for _, e := range fb.free {
			if remaining == 0 {
				break
			}
			take := e.Len
			if take > remaining {
				take = remaining
			}
			extents = append(extents, Extent{Addr: e.Addr, Len: take})
			remaining -= take
		}
	} else {
		for i := len(fb.free) - 1; i >= 0; i-- {
			if remaining == 0 {
				break
			}
			e := fb.free[i]
			take := e.Len
			if take > remaining {
				take = remaining
			}
			extents = append(extents, Extent{Addr: e.End() - take, Len: take})
			remaining -= take
		}
		// Keep extents in ascending address order.
		sort.Slice(extents, func(i, j int) bool { return extents[i].Addr < extents[j].Addr })
	}
	if remaining != 0 {
		panic("alloc: splitFit called without enough total free space")
	}
	return extents
}

// carve removes the (guaranteed free) extent from the free list. The
// containing block is found by binary search and the list is spliced in
// place: no allocation unless a middle carve splits one block into two
// past the list's capacity.
func (fb *FB) carve(x Extent) {
	i := sort.Search(len(fb.free), func(i int) bool { return fb.free[i].Addr > x.Addr }) - 1
	if i < 0 || x.End() > fb.free[i].End() {
		panic(fmt.Sprintf("alloc: carve of non-free extent %+v (free list %+v)", x, fb.free))
	}
	e := fb.free[i]
	headLen := x.Addr - e.Addr
	tailLen := e.End() - x.End()
	switch {
	case headLen > 0 && tailLen > 0:
		// Middle carve: the block splits in two.
		fb.free[i] = Extent{Addr: e.Addr, Len: headLen}
		fb.free = append(fb.free, Extent{})
		copy(fb.free[i+2:], fb.free[i+1:])
		fb.free[i+1] = Extent{Addr: x.End(), Len: tailLen}
	case headLen > 0:
		fb.free[i] = Extent{Addr: e.Addr, Len: headLen}
	case tailLen > 0:
		fb.free[i] = Extent{Addr: x.End(), Len: tailLen}
	default:
		fb.free = append(fb.free[:i], fb.free[i+1:]...)
	}
}

// insertFree adds an extent to the free list, keeping it sorted and
// coalesced.
func (fb *FB) insertFree(x Extent) {
	i := sort.Search(len(fb.free), func(i int) bool { return fb.free[i].Addr >= x.Addr })
	fb.free = append(fb.free, Extent{})
	copy(fb.free[i+1:], fb.free[i:])
	fb.free[i] = x
	// Coalesce with neighbors.
	if i+1 < len(fb.free) && fb.free[i].End() == fb.free[i+1].Addr {
		fb.free[i].Len += fb.free[i+1].Len
		fb.free = append(fb.free[:i+1], fb.free[i+2:]...)
	}
	if i > 0 && fb.free[i-1].End() == fb.free[i].Addr {
		fb.free[i-1].Len += fb.free[i].Len
		fb.free = append(fb.free[:i], fb.free[i+1:]...)
	}
}

// CheckInvariants verifies internal consistency: free list sorted,
// coalesced, in bounds, disjoint from live placements, and accounting
// matches. Intended for tests and the replay checker.
func (fb *FB) CheckInvariants() error {
	freeSum := 0
	for i, e := range fb.free {
		if e.Len <= 0 {
			return fmt.Errorf("alloc: empty free extent %+v", e)
		}
		if e.Addr < 0 || e.End() > fb.size {
			return fmt.Errorf("alloc: free extent %+v out of bounds", e)
		}
		if i > 0 {
			prev := fb.free[i-1]
			if prev.End() > e.Addr {
				return fmt.Errorf("alloc: free list unsorted/overlapping at %d", i)
			}
			if prev.End() == e.Addr {
				return fmt.Errorf("alloc: free list not coalesced at %d", i)
			}
		}
		freeSum += e.Len
	}
	liveSum := 0
	occupied := make([]Extent, 0, len(fb.live))
	for _, p := range fb.live {
		for _, e := range p.Extents {
			if e.Len <= 0 || e.Addr < 0 || e.End() > fb.size {
				return fmt.Errorf("alloc: live extent %+v of %q out of bounds", e, p.Name)
			}
			occupied = append(occupied, e)
			liveSum += e.Len
		}
	}
	sort.Slice(occupied, func(i, j int) bool { return occupied[i].Addr < occupied[j].Addr })
	for i := 1; i < len(occupied); i++ {
		if occupied[i-1].End() > occupied[i].Addr {
			return fmt.Errorf("alloc: live extents overlap: %+v and %+v", occupied[i-1], occupied[i])
		}
	}
	// Free and live extents must not overlap.
	for _, f := range fb.free {
		for _, o := range occupied {
			if f.Addr < o.End() && o.Addr < f.End() {
				return fmt.Errorf("alloc: free %+v overlaps live %+v", f, o)
			}
		}
	}
	if liveSum != fb.used {
		return fmt.Errorf("alloc: used=%d but live extents sum to %d", fb.used, liveSum)
	}
	if freeSum+liveSum != fb.size {
		return fmt.Errorf("alloc: free(%d)+live(%d) != size(%d)", freeSum, liveSum, fb.size)
	}
	return nil
}

// String renders a compact occupancy map, useful for reproducing the
// paper's Figure 5 timelines.
func (fb *FB) String() string {
	type seg struct {
		e    Extent
		name string
	}
	var segs []seg
	for _, p := range fb.live {
		for _, e := range p.Extents {
			segs = append(segs, seg{e, p.Name})
		}
	}
	for _, e := range fb.free {
		segs = append(segs, seg{e, "-"})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].e.Addr < segs[j].e.Addr })
	var b strings.Builder
	for i, s := range segs {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%d:%s[%d]", s.e.Addr, s.name, s.e.Len)
	}
	return b.String()
}
