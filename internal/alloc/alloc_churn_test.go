package alloc

import (
	"fmt"
	"testing"
)

// TestChurnAllocsPerCycle pins the steady-state allocation cost of the
// BenchmarkAllocReleaseChurn cycle: 16 allocs + 16 releases. Each Alloc
// necessarily allocates its Placement.Extents slice (callers keep the
// Placement past Release), but the free-list bookkeeping — carve,
// insertFree, Reset — must be allocation-free once warm. The seed spent
// 32 allocs per cycle; the in-place carve halves that.
func TestChurnAllocsPerCycle(t *testing.T) {
	fb := New(8192, false)
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("o%d", i)
	}
	cycle := func() {
		for j, n := range names {
			dir := FromTop
			if j%2 == 1 {
				dir = FromBottom
			}
			if _, err := fb.Alloc(n, 64+j*16, dir, -1); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range names {
			if err := fb.Release(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle() // warm the map and the free list capacity
	if avg := testing.AllocsPerRun(50, cycle); avg > 16 {
		t.Errorf("churn cycle allocates %.1f times, want <= 16 (one Extents slice per Alloc)", avg)
	}
}

// TestResetDoesNotAllocate pins the satellite fix: per-sweep-point FB
// churn (Reset between points) reuses the live map and free list.
func TestResetDoesNotAllocate(t *testing.T) {
	fb := New(4096, false)
	if _, err := fb.Alloc("a", 256, FromTop, -1); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := fb.Alloc("b", 128, FromBottom, -1); err != nil {
			t.Fatal(err)
		}
		fb.Reset()
	}); avg > 1 { // the Alloc's own Extents slice
		t.Errorf("Alloc+Reset allocates %.1f times, want <= 1", avg)
	}
	if err := fb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
