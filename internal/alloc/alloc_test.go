package alloc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustAlloc(t *testing.T, fb *FB, name string, size int, dir Dir) Placement {
	t.Helper()
	p, err := fb.Alloc(name, size, dir, -1)
	if err != nil {
		t.Fatalf("Alloc(%s, %d, %v): %v", name, size, dir, err)
	}
	return p
}

func TestAllocFromTopAndBottom(t *testing.T) {
	fb := New(100, false)
	top := mustAlloc(t, fb, "data", 30, FromTop)
	if top.Addr() != 70 {
		t.Errorf("FromTop first alloc at %d, want 70", top.Addr())
	}
	bot := mustAlloc(t, fb, "result", 20, FromBottom)
	if bot.Addr() != 0 {
		t.Errorf("FromBottom first alloc at %d, want 0", bot.Addr())
	}
	if fb.Used() != 50 || fb.Free() != 50 {
		t.Errorf("Used/Free = %d/%d, want 50/50", fb.Used(), fb.Free())
	}
	if err := fb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocStacksFromEachEnd(t *testing.T) {
	fb := New(100, false)
	a := mustAlloc(t, fb, "a", 10, FromTop) // 90..100
	b := mustAlloc(t, fb, "b", 10, FromTop) // 80..90
	c := mustAlloc(t, fb, "c", 10, FromBottom)
	d := mustAlloc(t, fb, "d", 10, FromBottom)
	if a.Addr() != 90 || b.Addr() != 80 || c.Addr() != 0 || d.Addr() != 10 {
		t.Errorf("addrs = %d,%d,%d,%d; want 90,80,0,10", a.Addr(), b.Addr(), c.Addr(), d.Addr())
	}
}

func TestReleaseCoalesces(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "a", 30, FromBottom) // 0..30
	mustAlloc(t, fb, "b", 30, FromBottom) // 30..60
	mustAlloc(t, fb, "c", 30, FromBottom) // 60..90
	if err := fb.Release("b"); err != nil {
		t.Fatal(err)
	}
	if got := len(fb.FreeBlocks()); got != 2 {
		t.Fatalf("free blocks = %d, want 2 (hole + tail)", got)
	}
	if err := fb.Release("a"); err != nil {
		t.Fatal(err)
	}
	// a's range must coalesce with b's hole: 0..60 plus 90..100.
	blocks := fb.FreeBlocks()
	if len(blocks) != 2 || blocks[0] != (Extent{0, 60}) || blocks[1] != (Extent{90, 10}) {
		t.Fatalf("free blocks = %+v, want [{0 60} {90 10}]", blocks)
	}
	if err := fb.Release("c"); err != nil {
		t.Fatal(err)
	}
	blocks = fb.FreeBlocks()
	if len(blocks) != 1 || blocks[0] != (Extent{0, 100}) {
		t.Fatalf("after releasing all: free = %+v, want [{0 100}]", blocks)
	}
	if err := fb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnknown(t *testing.T) {
	fb := New(10, false)
	if err := fb.Release("ghost"); err == nil {
		t.Fatal("Release(ghost) = nil, want error")
	}
}

func TestAllocDuplicateName(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "x", 10, FromTop)
	if _, err := fb.Alloc("x", 10, FromTop, -1); err == nil {
		t.Fatal("duplicate alloc succeeded")
	}
}

func TestAllocBadSize(t *testing.T) {
	fb := New(100, false)
	if _, err := fb.Alloc("z", 0, FromTop, -1); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
	if _, err := fb.Alloc("z", -3, FromTop, -1); err == nil {
		t.Fatal("negative-size alloc succeeded")
	}
}

func TestAllocNoSpace(t *testing.T) {
	fb := New(100, true)
	mustAlloc(t, fb, "big", 90, FromTop)
	_, err := fb.Alloc("more", 20, FromTop, -1)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestAllocWouldSplit(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "a", 40, FromBottom) // 0..40
	mustAlloc(t, fb, "b", 20, FromBottom) // 40..60
	mustAlloc(t, fb, "c", 40, FromBottom) // 60..100
	if err := fb.Release("a"); err != nil {
		t.Fatal(err)
	}
	if err := fb.Release("c"); err != nil {
		t.Fatal(err)
	}
	// Free: 0..40 and 60..100; 70 bytes only fits split.
	_, err := fb.Alloc("wide", 70, FromTop, -1)
	if !errors.Is(err, ErrWouldSplit) {
		t.Fatalf("err = %v, want ErrWouldSplit", err)
	}
}

func TestAllocSplit(t *testing.T) {
	fb := New(100, true)
	mustAlloc(t, fb, "a", 40, FromBottom)
	mustAlloc(t, fb, "b", 20, FromBottom)
	mustAlloc(t, fb, "c", 40, FromBottom)
	if err := fb.Release("a"); err != nil {
		t.Fatal(err)
	}
	if err := fb.Release("c"); err != nil {
		t.Fatal(err)
	}
	p, err := fb.Alloc("wide", 70, FromTop, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Split() || p.Bytes() != 70 {
		t.Fatalf("placement = %+v, want split totaling 70", p)
	}
	if fb.Splits() != 1 {
		t.Errorf("Splits = %d, want 1", fb.Splits())
	}
	if err := fb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Extents ascending.
	for i := 1; i < len(p.Extents); i++ {
		if p.Extents[i-1].Addr >= p.Extents[i].Addr {
			t.Errorf("extents not ascending: %+v", p.Extents)
		}
	}
	if err := fb.Release("wide"); err != nil {
		t.Fatal(err)
	}
	if err := fb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreferredAddressRegularity(t *testing.T) {
	fb := New(100, false)
	p1 := mustAlloc(t, fb, "d#0", 20, FromTop) // 80..100
	mustAlloc(t, fb, "x", 10, FromTop)         // 70..80
	if err := fb.Release("d#0"); err != nil {
		t.Fatal(err)
	}
	// Next iteration of d wants the same address even though first-fit
	// from top would also give 80.
	p2, err := fb.Alloc("d#1", 20, FromTop, p1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Addr() != p1.Addr() {
		t.Errorf("iteration 1 at %d, iteration 0 at %d: regularity broken", p2.Addr(), p1.Addr())
	}
	// When the preferred region is occupied, fall back to first-fit.
	p3, err := fb.Alloc("d#2", 20, FromTop, p1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if p3.Addr() == p1.Addr() {
		t.Error("two live objects share an address")
	}
}

func TestFirstFitSkipsSmallBlocks(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "a", 10, FromBottom)   // 0..10
	mustAlloc(t, fb, "b", 30, FromBottom)   // 10..40
	mustAlloc(t, fb, "c", 60, FromBottom)   // 40..100
	if err := fb.Release("a"); err != nil { // hole 0..10
		t.Fatal(err)
	}
	if err := fb.Release("c"); err != nil { // hole 40..100
		t.Fatal(err)
	}
	p := mustAlloc(t, fb, "d", 20, FromBottom)
	if p.Addr() != 40 {
		t.Errorf("first-fit from bottom chose %d, want 40 (skip the 10-byte hole)", p.Addr())
	}
}

func TestPeakUsedTracksHighWater(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "a", 60, FromTop)
	mustAlloc(t, fb, "b", 30, FromBottom)
	if err := fb.Release("a"); err != nil {
		t.Fatal(err)
	}
	if fb.PeakUsed() != 90 {
		t.Errorf("PeakUsed = %d, want 90", fb.PeakUsed())
	}
	if fb.Used() != 30 {
		t.Errorf("Used = %d, want 30", fb.Used())
	}
}

func TestLookupAndLive(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "b", 10, FromTop)
	mustAlloc(t, fb, "a", 10, FromTop)
	if _, ok := fb.Lookup("a"); !ok {
		t.Error("Lookup(a) missing")
	}
	if _, ok := fb.Lookup("zz"); ok {
		t.Error("Lookup(zz) found phantom")
	}
	live := fb.Live()
	if len(live) != 2 || live[0] != "a" || live[1] != "b" {
		t.Errorf("Live() = %v, want [a b]", live)
	}
}

func TestResetClears(t *testing.T) {
	fb := New(100, true)
	mustAlloc(t, fb, "a", 50, FromTop)
	fb.Reset()
	if fb.Used() != 0 || fb.PeakUsed() != 0 || fb.Allocs() != 0 {
		t.Error("Reset left statistics behind")
	}
	if len(fb.FreeBlocks()) != 1 {
		t.Error("Reset left a fragmented free list")
	}
}

func TestStringRendersSegments(t *testing.T) {
	fb := New(100, false)
	mustAlloc(t, fb, "r13", 20, FromBottom)
	mustAlloc(t, fb, "d37", 30, FromTop)
	s := fb.String()
	for _, want := range []string{"0:r13[20]", "70:d37[30]", "20:-[50]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestRandomizedInvariants drives random alloc/release sequences and
// checks the structural invariants after every operation.
func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		fb := New(1+rng.Intn(4096), rng.Intn(2) == 0)
		var names []string
		id := 0
		for op := 0; op < 300; op++ {
			if len(names) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(names))
				if err := fb.Release(names[i]); err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
				names = append(names[:i], names[i+1:]...)
			} else {
				name := fmt.Sprintf("o%d", id)
				id++
				size := 1 + rng.Intn(fb.Size()/2+1)
				dir := Dir(rng.Intn(2))
				prefer := -1
				if rng.Intn(4) == 0 {
					prefer = rng.Intn(fb.Size())
				}
				if _, err := fb.Alloc(name, size, dir, prefer); err == nil {
					names = append(names, name)
				}
			}
			if err := fb.CheckInvariants(); err != nil {
				t.Fatalf("trial %d op %d: %v\nFB: %s", trial, op, err, fb)
			}
		}
	}
}

// TestQuickAllocReleaseRoundTrip: allocating then releasing any object
// restores the exact free byte count.
func TestQuickAllocReleaseRoundTrip(t *testing.T) {
	f := func(szRaw uint16, dirRaw bool) bool {
		fb := New(4096, true)
		size := int(szRaw)%4096 + 1
		dir := FromTop
		if dirRaw {
			dir = FromBottom
		}
		before := fb.Free()
		if _, err := fb.Alloc("x", size, dir, -1); err != nil {
			return false
		}
		if fb.Free() != before-size {
			return false
		}
		if err := fb.Release("x"); err != nil {
			return false
		}
		return fb.Free() == before && len(fb.FreeBlocks()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
