package alloc

import (
	"fmt"
	"testing"
)

// BenchmarkAllocReleaseChurn measures steady-state alloc/release cycles
// with the two-sided discipline the schedulers use.
func BenchmarkAllocReleaseChurn(b *testing.B) {
	fb := New(8192, false)
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("o%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, n := range names {
			dir := FromTop
			if j%2 == 1 {
				dir = FromBottom
			}
			if _, err := fb.Alloc(n, 64+j*16, dir, -1); err != nil {
				b.Fatal(err)
			}
		}
		for _, n := range names {
			if err := fb.Release(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFirstFitFragmented measures fit search over a fragmented free
// list for each policy.
func BenchmarkFirstFitFragmented(b *testing.B) {
	for _, pol := range []FitPolicy{FirstFit, BestFit, WorstFit} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			fb := New(1<<16, false)
			fb.SetFitPolicy(pol)
			// Build fragmentation: allocate 128 blocks, free every other.
			for i := 0; i < 128; i++ {
				if _, err := fb.Alloc(fmt.Sprintf("f%d", i), 256, FromBottom, -1); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 128; i += 2 {
				if err := fb.Release(fmt.Sprintf("f%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fb.Alloc("probe", 128, FromTop, -1); err != nil {
					b.Fatal(err)
				}
				if err := fb.Release("probe"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
