package alloc

import (
	"fmt"
	"testing"
)

// FuzzAllocator drives the allocator with an op stream decoded from fuzz
// bytes and checks the structural invariants after every operation.
func FuzzAllocator(f *testing.F) {
	f.Add([]byte{10, 200, 3, 1, 130, 7})
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		fb := New(4096, len(ops)%2 == 0)
		if len(ops) > 0 {
			fb.SetFitPolicy(FitPolicy(int(ops[0]) % 3))
		}
		var live []string
		id := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch {
			case op%3 == 0 && len(live) > 0: // release
				idx := int(arg) % len(live)
				if err := fb.Release(live[idx]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:idx], live[idx+1:]...)
			default: // alloc
				name := fmt.Sprintf("o%d", id)
				id++
				size := int(arg)*16 + 1
				dir := FromTop
				if op%2 == 1 {
					dir = FromBottom
				}
				if _, err := fb.Alloc(name, size, dir, int(op)*13-1); err == nil {
					live = append(live, name)
				}
			}
			if err := fb.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
}
