// Package app models applications the way the MorphoSys compilation
// framework sees them: an ordered sequence of kernels (macro-tasks) that is
// executed iteratively over streaming input, where each kernel is
// characterized by its context words, its computation time and its input
// and output data. Kernel-to-kernel data flow is expressed by naming data
// objects; a datum produced by one kernel and consumed by a later one is an
// intermediate result, a datum with no producer is external input, and a
// datum with no consumer (or explicitly marked final) must be written back
// to external memory.
package app

import (
	"fmt"
	"sort"
)

// Datum is one data object moved between external memory, the Frame Buffer
// and kernels. Size is the per-iteration size in bytes.
type Datum struct {
	Name string
	Size int
	// Final forces the datum to be treated as a final result that must
	// be stored to external memory even if some kernel also consumes it.
	// Data with no consumers are final regardless of this flag.
	Final bool
	// Streamed marks an input that is brought into the Frame Buffer
	// just in time for its first consuming kernel instead of before the
	// cluster starts. Intra-kernel tiling (TileKernel) marks its input
	// slices streamed: that is where its footprint saving comes from.
	Streamed bool
}

// IsStreamed reports whether the named datum is loaded just in time.
func (a *App) IsStreamed(name string) bool {
	d, ok := a.DatumByName(name)
	return ok && d.Streamed
}

// Kernel is one macro-task mapped onto the RC array. At the scheduling
// abstraction level it is fully described by its context volume, its
// per-iteration computation time, and the names of the data it reads and
// writes.
type Kernel struct {
	Name          string
	ContextWords  int
	ComputeCycles int
	Inputs        []string
	Outputs       []string
	// ContextGroup names the configuration the kernel runs under; empty
	// means the kernel has its own ("Name"). Sub-kernels produced by
	// intra-kernel tiling share one group: their contexts are loaded
	// once and reused across the tiles.
	ContextGroup string
}

// CtxGroup returns the kernel's context group (its name by default).
func (k Kernel) CtxGroup() string {
	if k.ContextGroup != "" {
		return k.ContextGroup
	}
	return k.Name
}

// App is a validated application: a kernel sequence plus its data objects.
// Construct it with a Builder; a zero App is empty but safe to query.
type App struct {
	Name string
	// Iterations is the number of times the full kernel sequence must
	// run to consume the application's input stream (the paper's n).
	Iterations int

	Data    []Datum
	Kernels []Kernel

	dataIdx   map[string]int
	producer  map[string]int   // datum -> producing kernel index
	consumers map[string][]int // datum -> consuming kernel indices, ascending

	// Interned-ID tables, built by finalize (see intern.go). A datum's
	// dense ID is its index into Data; hot paths index these slices
	// instead of hashing names.
	kernelIn   [][]int32 // per kernel: input datum IDs in declared order
	kernelOut  [][]int32 // per kernel: output datum IDs in declared order
	producerID []int32   // per datum: producing kernel index, -1 if external
	lastUseID  []int32   // per datum: last consuming kernel index, -1 if none
}

// NumKernels returns the number of kernels in the sequence.
func (a *App) NumKernels() int { return len(a.Kernels) }

// DatumByName returns the datum with the given name.
func (a *App) DatumByName(name string) (Datum, bool) {
	i, ok := a.dataIdx[name]
	if !ok {
		return Datum{}, false
	}
	return a.Data[i], true
}

// SizeOf returns the per-iteration size of the named datum, or 0 if the
// datum does not exist.
func (a *App) SizeOf(name string) int {
	d, ok := a.DatumByName(name)
	if !ok {
		return 0
	}
	return d.Size
}

// Producer returns the index of the kernel that produces the named datum.
// ok is false for external inputs (and unknown names).
func (a *App) Producer(name string) (int, bool) {
	k, ok := a.producer[name]
	return k, ok
}

// Consumers returns the indices of the kernels that read the named datum,
// in execution order. The returned slice must not be modified.
func (a *App) Consumers(name string) []int { return a.consumers[name] }

// IsExternalInput reports whether the datum comes from external memory
// (has no producing kernel).
func (a *App) IsExternalInput(name string) bool {
	_, produced := a.producer[name]
	_, known := a.dataIdx[name]
	return known && !produced
}

// IsFinalResult reports whether the datum must be stored to external
// memory: it is produced by some kernel and either has no consumers or is
// explicitly marked Final.
func (a *App) IsFinalResult(name string) bool {
	_, produced := a.producer[name]
	if !produced {
		return false
	}
	d, _ := a.DatumByName(name)
	return d.Final || len(a.consumers[name]) == 0
}

// TotalDataBytes returns the sum of all datum sizes (the paper's TDS,
// total data and result sizes) per iteration.
func (a *App) TotalDataBytes() int {
	sum := 0
	for _, d := range a.Data {
		sum += d.Size
	}
	return sum
}

// TotalContextWords returns the sum of all kernels' context words.
func (a *App) TotalContextWords() int {
	sum := 0
	for _, k := range a.Kernels {
		sum += k.ContextWords
	}
	return sum
}

// KernelIndex returns the position of the named kernel in the sequence.
func (a *App) KernelIndex(name string) (int, bool) {
	for i, k := range a.Kernels {
		if k.Name == name {
			return i, true
		}
	}
	return 0, false
}

// LastConsumer returns the index of the last kernel that reads the named
// datum, or -1 if nothing consumes it.
func (a *App) LastConsumer(name string) int {
	cs := a.consumers[name]
	if len(cs) == 0 {
		return -1
	}
	return cs[len(cs)-1]
}

// Finalize validates a hand-assembled App and builds its lookup tables.
// Apps constructed through Builder never need it; deserializers (e.g. the
// JSON spec loader) do.
func (a *App) Finalize() error { return a.finalize() }

// finalize builds the derived lookup tables and checks structural
// invariants. It is called by Builder.Build.
func (a *App) finalize() error {
	if a.Iterations < 1 {
		return fmt.Errorf("app %q: Iterations must be >= 1, got %d", a.Name, a.Iterations)
	}
	if len(a.Kernels) == 0 {
		return fmt.Errorf("app %q: no kernels", a.Name)
	}
	a.dataIdx = make(map[string]int, len(a.Data))
	for i, d := range a.Data {
		if d.Name == "" {
			return fmt.Errorf("app %q: datum %d has empty name", a.Name, i)
		}
		if d.Size <= 0 {
			return fmt.Errorf("app %q: datum %q has non-positive size %d", a.Name, d.Name, d.Size)
		}
		if _, dup := a.dataIdx[d.Name]; dup {
			return fmt.Errorf("app %q: duplicate datum %q", a.Name, d.Name)
		}
		a.dataIdx[d.Name] = i
	}
	a.producer = make(map[string]int)
	a.consumers = make(map[string][]int)
	seenKernel := make(map[string]bool, len(a.Kernels))
	for ki, k := range a.Kernels {
		if k.Name == "" {
			return fmt.Errorf("app %q: kernel %d has empty name", a.Name, ki)
		}
		if seenKernel[k.Name] {
			return fmt.Errorf("app %q: duplicate kernel %q", a.Name, k.Name)
		}
		seenKernel[k.Name] = true
		if k.ContextWords <= 0 {
			return fmt.Errorf("app %q: kernel %q has non-positive context words %d", a.Name, k.Name, k.ContextWords)
		}
		if k.ComputeCycles <= 0 {
			return fmt.Errorf("app %q: kernel %q has non-positive compute cycles %d", a.Name, k.Name, k.ComputeCycles)
		}
		for _, in := range k.Inputs {
			if _, ok := a.dataIdx[in]; !ok {
				return fmt.Errorf("app %q: kernel %q reads unknown datum %q", a.Name, k.Name, in)
			}
			a.consumers[in] = append(a.consumers[in], ki)
		}
		for _, out := range k.Outputs {
			if _, ok := a.dataIdx[out]; !ok {
				return fmt.Errorf("app %q: kernel %q writes unknown datum %q", a.Name, k.Name, out)
			}
			if prev, dup := a.producer[out]; dup {
				return fmt.Errorf("app %q: datum %q produced by both %q and %q",
					a.Name, out, a.Kernels[prev].Name, k.Name)
			}
			a.producer[out] = ki
		}
	}
	// Data flow must follow the kernel sequence: a consumer may not run
	// before its producer (same kernel is also illegal: a kernel cannot
	// read its own output of the current iteration).
	for name, cs := range a.consumers {
		sort.Ints(cs)
		if p, produced := a.producer[name]; produced && cs[0] <= p {
			return fmt.Errorf("app %q: kernel %q consumes %q before (or while) kernel %q produces it",
				a.Name, a.Kernels[cs[0]].Name, name, a.Kernels[p].Name)
		}
	}
	// Every datum must be attached to at least one kernel.
	for _, d := range a.Data {
		if _, p := a.producer[d.Name]; !p && len(a.consumers[d.Name]) == 0 {
			return fmt.Errorf("app %q: datum %q is neither produced nor consumed", a.Name, d.Name)
		}
	}
	a.internIDs()
	return nil
}
