package app

import (
	"strings"
	"testing"
)

// chainApp builds k1 -> k2 -> k3 with one external input, one intermediate
// between each pair, and one final output.
func chainApp(t *testing.T) *App {
	t.Helper()
	return NewBuilder("chain", 4).
		Datum("in", 100).
		Datum("mid1", 80).
		Datum("mid2", 60).
		Datum("out", 40).
		KernelChain()
}

// KernelChain is a helper on Builder used only by tests in this package.
func (b *Builder) KernelChain() *App {
	b.Kernel("k1", 16, 100).In("in").Out("mid1")
	b.Kernel("k2", 16, 100).In("mid1").Out("mid2")
	b.Kernel("k3", 16, 100).In("mid2").Out("out")
	return b.MustBuild()
}

func TestBuilderHappyPath(t *testing.T) {
	a := chainApp(t)
	if a.NumKernels() != 3 {
		t.Fatalf("NumKernels = %d, want 3", a.NumKernels())
	}
	if !a.IsExternalInput("in") {
		t.Error("in should be an external input")
	}
	if a.IsExternalInput("mid1") {
		t.Error("mid1 is produced by k1, not external")
	}
	if !a.IsFinalResult("out") {
		t.Error("out has no consumers: should be final")
	}
	if a.IsFinalResult("mid1") {
		t.Error("mid1 is consumed by k2: not final")
	}
	if p, ok := a.Producer("mid2"); !ok || a.Kernels[p].Name != "k2" {
		t.Errorf("Producer(mid2) = %d,%v; want k2", p, ok)
	}
	if cs := a.Consumers("mid1"); len(cs) != 1 || a.Kernels[cs[0]].Name != "k2" {
		t.Errorf("Consumers(mid1) = %v, want [k2]", cs)
	}
	if a.TotalDataBytes() != 280 {
		t.Errorf("TotalDataBytes = %d, want 280", a.TotalDataBytes())
	}
	if a.TotalContextWords() != 48 {
		t.Errorf("TotalContextWords = %d, want 48", a.TotalContextWords())
	}
	if lc := a.LastConsumer("in"); lc != 0 {
		t.Errorf("LastConsumer(in) = %d, want 0", lc)
	}
	if lc := a.LastConsumer("out"); lc != -1 {
		t.Errorf("LastConsumer(out) = %d, want -1", lc)
	}
}

func TestFinalDatumFlag(t *testing.T) {
	a := NewBuilder("f", 1).
		Datum("in", 10).
		FinalDatum("shared", 20).
		Datum("out", 5)
	a.Kernel("p", 8, 10).In("in").Out("shared")
	a.Kernel("c", 8, 10).In("shared").Out("out")
	ap := a.MustBuild()
	if !ap.IsFinalResult("shared") {
		t.Error("shared is marked Final: IsFinalResult should be true even with consumers")
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*App, error)
		wantSub string
	}{
		{
			"zero iterations",
			func() (*App, error) {
				b := NewBuilder("x", 0).Datum("d", 1)
				b.Kernel("k", 1, 1).In("d")
				return b.Build()
			},
			"Iterations",
		},
		{
			"no kernels",
			func() (*App, error) { return NewBuilder("x", 1).Datum("d", 1).Build() },
			"no kernels",
		},
		{
			"duplicate datum",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1).Datum("d", 2)
				b.Kernel("k", 1, 1).In("d")
				return b.Build()
			},
			"duplicate datum",
		},
		{
			"zero-size datum",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 0)
				b.Kernel("k", 1, 1).In("d")
				return b.Build()
			},
			"non-positive size",
		},
		{
			"unknown input",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1)
				b.Kernel("k", 1, 1).In("ghost")
				return b.Build()
			},
			"unknown datum",
		},
		{
			"unknown output",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1)
				b.Kernel("k", 1, 1).In("d").Out("ghost")
				return b.Build()
			},
			"unknown datum",
		},
		{
			"two producers",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1).Datum("r", 1)
				b.Kernel("k1", 1, 1).In("d").Out("r")
				b.Kernel("k2", 1, 1).In("d").Out("r")
				return b.Build()
			},
			"produced by both",
		},
		{
			"consume before produce",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1).Datum("r", 1)
				b.Kernel("k1", 1, 1).In("r").Out("d")
				b.Kernel("k2", 1, 1).In("d").Out("r")
				return b.Build()
			},
			"before",
		},
		{
			"self loop",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1)
				b.Kernel("k", 1, 1).In("d").Out("d")
				return b.Build()
			},
			"before",
		},
		{
			"orphan datum",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1).Datum("orphan", 1)
				b.Kernel("k", 1, 1).In("d")
				return b.Build()
			},
			"neither produced nor consumed",
		},
		{
			"duplicate kernel",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1)
				b.Kernel("k", 1, 1).In("d")
				b.Kernel("k", 1, 1).In("d")
				return b.Build()
			},
			"duplicate kernel",
		},
		{
			"bad context words",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1)
				b.Kernel("k", 0, 1).In("d")
				return b.Build()
			},
			"context words",
		},
		{
			"bad compute cycles",
			func() (*App, error) {
				b := NewBuilder("x", 1).Datum("d", 1)
				b.Kernel("k", 1, 0).In("d")
				return b.Build()
			},
			"compute cycles",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("Build() = nil error, want failure")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestKernelIndex(t *testing.T) {
	a := chainApp(t)
	if i, ok := a.KernelIndex("k2"); !ok || i != 1 {
		t.Errorf("KernelIndex(k2) = %d,%v, want 1,true", i, ok)
	}
	if _, ok := a.KernelIndex("nope"); ok {
		t.Error("KernelIndex(nope) should not be found")
	}
}

func TestNewPartition(t *testing.T) {
	a := chainApp(t)
	p, err := NewPartition(a, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(p.Clusters))
	}
	if p.Clusters[0].Set != 0 || p.Clusters[1].Set != 1 {
		t.Errorf("sets = %d,%d, want alternating 0,1", p.Clusters[0].Set, p.Clusters[1].Set)
	}
	if p.ClusterOf(0) != 0 || p.ClusterOf(1) != 0 || p.ClusterOf(2) != 1 {
		t.Errorf("ClusterOf mapping wrong: %d %d %d", p.ClusterOf(0), p.ClusterOf(1), p.ClusterOf(2))
	}
	if p.ClusterOf(99) != -1 {
		t.Error("ClusterOf(out of range) should be -1")
	}
	if p.MaxKernelsPerCluster() != 2 {
		t.Errorf("MaxKernelsPerCluster = %d, want 2", p.MaxKernelsPerCluster())
	}
	if p.SameSet(0, 1) {
		t.Error("clusters 0 and 1 alternate sets")
	}
}

func TestNewPartitionSameSetEveryOther(t *testing.T) {
	a := NewBuilder("four", 1).
		Datum("d", 10)
	a.Kernel("k1", 1, 1).In("d")
	a.Kernel("k2", 1, 1).In("d")
	a.Kernel("k3", 1, 1).In("d")
	a.Kernel("k4", 1, 1).In("d")
	ap := a.MustBuild()
	p := MustPartition(ap, 2, 1, 1, 1, 1)
	if !p.SameSet(0, 2) || !p.SameSet(1, 3) || p.SameSet(0, 1) {
		t.Error("round-robin set assignment broken")
	}
}

func TestNewPartitionErrors(t *testing.T) {
	a := chainApp(t)
	if _, err := NewPartition(nil, 2, 3); err == nil {
		t.Error("nil app: want error")
	}
	if _, err := NewPartition(a, 0, 3); err == nil {
		t.Error("zero sets: want error")
	}
	if _, err := NewPartition(a, 2, 2); err == nil {
		t.Error("undercoverage: want error")
	}
	if _, err := NewPartition(a, 2, 2, 2); err == nil {
		t.Error("overcoverage: want error")
	}
	if _, err := NewPartition(a, 2, 0, 3); err == nil {
		t.Error("zero-size cluster: want error")
	}
}

func TestPartitionValidateCatchesHandAssembled(t *testing.T) {
	a := chainApp(t)
	p := &Partition{App: a, Clusters: []Cluster{
		{Index: 0, Set: 0, Kernels: []int{0, 2}}, // gap: not contiguous
		{Index: 1, Set: 1, Kernels: []int{1}},
	}}
	if err := p.Validate(); err == nil {
		t.Error("non-contiguous partition passed Validate")
	}
}
