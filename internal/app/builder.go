package app

// Builder assembles an App incrementally. It is the programmatic
// counterpart of the "application information extractor" input: the kernel
// library supplies kernels, the application code wires their data.
//
//	b := app.NewBuilder("mpeg", 64)
//	b.Datum("block", 512)
//	b.Datum("coef", 512)
//	b.Kernel("dct", 96, 1500).In("block").Out("coef")
//	a, err := b.Build()
type Builder struct {
	app App
}

// NewBuilder starts a new application with the given name and iteration
// count (how many times the kernel sequence runs over the input stream).
func NewBuilder(name string, iterations int) *Builder {
	return &Builder{app: App{Name: name, Iterations: iterations}}
}

// Datum declares a data object with its per-iteration size in bytes.
func (b *Builder) Datum(name string, size int) *Builder {
	b.app.Data = append(b.app.Data, Datum{Name: name, Size: size})
	return b
}

// FinalDatum declares a data object that must be written back to external
// memory even if later kernels also consume it.
func (b *Builder) FinalDatum(name string, size int) *Builder {
	b.app.Data = append(b.app.Data, Datum{Name: name, Size: size, Final: true})
	return b
}

// KernelBuilder adds inputs and outputs to a kernel under construction.
type KernelBuilder struct {
	b   *Builder
	idx int
}

// Kernel appends a kernel to the sequence with its context-word count and
// per-iteration compute cycles. Wire its data with In and Out.
func (b *Builder) Kernel(name string, contextWords, computeCycles int) *KernelBuilder {
	b.app.Kernels = append(b.app.Kernels, Kernel{
		Name:          name,
		ContextWords:  contextWords,
		ComputeCycles: computeCycles,
	})
	return &KernelBuilder{b: b, idx: len(b.app.Kernels) - 1}
}

// In declares data read by the kernel.
func (kb *KernelBuilder) In(names ...string) *KernelBuilder {
	k := &kb.b.app.Kernels[kb.idx]
	k.Inputs = append(k.Inputs, names...)
	return kb
}

// Out declares data written by the kernel.
func (kb *KernelBuilder) Out(names ...string) *KernelBuilder {
	k := &kb.b.app.Kernels[kb.idx]
	k.Outputs = append(k.Outputs, names...)
	return kb
}

// Build validates the application and returns it. The Builder must not be
// reused after Build.
func (b *Builder) Build() (*App, error) {
	a := b.app
	if err := a.finalize(); err != nil {
		return nil, err
	}
	return &a, nil
}

// MustBuild is Build for tests and static workload definitions: it panics
// on validation errors.
func (b *Builder) MustBuild() *App {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}
