package app

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
)

// Content fingerprinting. A Partition's fingerprint is a deterministic
// hash over its canonical spec — everything the schedulers read and
// nothing else — so structurally identical partitions hash equal no
// matter how or where they were built. Caches key on this instead of
// pointer identity.
//
// Canonicalization rules:
//   - Data are encoded sorted by name: declaration order of the data
//     table carries no meaning, so permuted-but-equal specs hash equal.
//   - Kernel sequence order and each kernel's input/output declaration
//     order ARE semantic (they fix execution order and load order) and
//     are encoded as declared.
//   - Every string is length-prefixed, so no two distinct specs share
//     an encoding by concatenation accident.

// fpWriter wraps a hash with the canonical primitive encoders.
type fpWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (w *fpWriter) num(v int) {
	n := binary.PutUvarint(w.buf[:], uint64(int64(v)))
	w.h.Write(w.buf[:n])
}

func (w *fpWriter) str(s string) {
	w.num(len(s))
	w.h.Write([]byte(s))
}

func (w *fpWriter) flag(b bool) {
	if b {
		w.h.Write([]byte{1})
	} else {
		w.h.Write([]byte{0})
	}
}

// writeApp encodes the application's canonical form.
func (w *fpWriter) writeApp(a *App) {
	w.str("cds/app/v1")
	w.str(a.Name)
	w.num(a.Iterations)

	order := make([]int, len(a.Data))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return a.Data[order[i]].Name < a.Data[order[j]].Name })
	w.num(len(a.Data))
	for _, i := range order {
		d := a.Data[i]
		w.str(d.Name)
		w.num(d.Size)
		w.flag(d.Final)
		w.flag(d.Streamed)
	}

	w.num(len(a.Kernels))
	for _, k := range a.Kernels {
		w.str(k.Name)
		w.num(k.ContextWords)
		w.num(k.ComputeCycles)
		w.str(k.CtxGroup())
		w.num(len(k.Inputs))
		for _, in := range k.Inputs {
			w.str(in)
		}
		w.num(len(k.Outputs))
		for _, out := range k.Outputs {
			w.str(out)
		}
	}
}

// Fingerprint returns the partition's content fingerprint: a SHA-256
// over the canonical encoding of the app spec plus the cluster
// decomposition. It is memoized; Partition contents must not change
// after the first call (they never do — partitions are sealed by
// construction).
func (p *Partition) Fingerprint() [32]byte {
	p.fpOnce.Do(func() {
		w := &fpWriter{h: sha256.New()}
		w.str("cds/partition/v1")
		w.writeApp(p.App)
		w.num(len(p.Clusters))
		for _, c := range p.Clusters {
			w.num(c.Index)
			w.num(c.Set)
			w.num(len(c.Kernels))
			for _, ki := range c.Kernels {
				w.num(ki)
			}
		}
		w.h.Sum(p.fp[:0])
	})
	return p.fp
}
