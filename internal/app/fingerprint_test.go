package app

import "testing"

// fpApp builds a small two-kernel app with the data table in the given
// order. The dataflow is identical regardless of declaration order.
func fpApp(t *testing.T, name string, dataOrder []string) *Partition {
	t.Helper()
	sizes := map[string]int{"in": 512, "mid": 256, "out": 128}
	b := NewBuilder(name, 8)
	for _, d := range dataOrder {
		b.Datum(d, sizes[d])
	}
	b.Kernel("k0", 64, 1000).In("in").Out("mid")
	b.Kernel("k1", 32, 800).In("mid").Out("out")
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(a, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	p := fpApp(t, "fp", []string{"in", "mid", "out"})
	q := fpApp(t, "fp", []string{"out", "in", "mid"})
	if p == q {
		t.Fatal("want distinct partitions")
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Error("permuting the data table changed the fingerprint; declaration order must be canonicalized away")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpApp(t, "fp", []string{"in", "mid", "out"})

	mutations := map[string]func() *Partition{
		"app name": func() *Partition { return fpApp(t, "fp2", []string{"in", "mid", "out"}) },
		"data size": func() *Partition {
			b := NewBuilder("fp", 8)
			b.Datum("in", 1024) // was 512
			b.Datum("mid", 256)
			b.Datum("out", 128)
			b.Kernel("k0", 64, 1000).In("in").Out("mid")
			b.Kernel("k1", 32, 800).In("mid").Out("out")
			a, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return MustPartition(a, 2, 1, 1)
		},
		"kernel context words": func() *Partition {
			b := NewBuilder("fp", 8)
			b.Datum("in", 512).Datum("mid", 256).Datum("out", 128)
			b.Kernel("k0", 96, 1000).In("in").Out("mid") // was 64 words
			b.Kernel("k1", 32, 800).In("mid").Out("out")
			a, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return MustPartition(a, 2, 1, 1)
		},
		"iterations": func() *Partition {
			b := NewBuilder("fp", 16)
			b.Datum("in", 512).Datum("mid", 256).Datum("out", 128)
			b.Kernel("k0", 64, 1000).In("in").Out("mid")
			b.Kernel("k1", 32, 800).In("mid").Out("out")
			a, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return MustPartition(a, 2, 1, 1)
		},
		"cluster split": func() *Partition {
			same := fpApp(t, "fp", []string{"in", "mid", "out"})
			return MustPartition(same.App, 2, 2) // one cluster instead of two
		},
		"streamed flag": func() *Partition {
			b := NewBuilder("fp", 8)
			b.app.Data = append(b.app.Data,
				Datum{Name: "in", Size: 512, Streamed: true},
				Datum{Name: "mid", Size: 256},
				Datum{Name: "out", Size: 128})
			b.Kernel("k0", 64, 1000).In("in").Out("mid")
			b.Kernel("k1", 32, 800).In("mid").Out("out")
			a, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return MustPartition(a, 2, 1, 1)
		},
	}
	for what, build := range mutations {
		if build().Fingerprint() == base.Fingerprint() {
			t.Errorf("changing %s did not change the fingerprint", what)
		}
	}
}

func TestFingerprintMemoized(t *testing.T) {
	p := fpApp(t, "fp", []string{"in", "mid", "out"})
	if a, b := p.Fingerprint(), p.Fingerprint(); a != b {
		t.Fatal("fingerprint not stable across calls")
	}
}

func TestInternedIDs(t *testing.T) {
	p := fpApp(t, "fp", []string{"out", "in", "mid"})
	a := p.App
	if a.NumData() != 3 {
		t.Fatalf("NumData = %d, want 3", a.NumData())
	}
	for _, name := range []string{"in", "mid", "out"} {
		id := a.DatumID(name)
		if id < 0 || a.DatumName(int32(id)) != name {
			t.Fatalf("DatumID/DatumName roundtrip failed for %q (id=%d)", name, id)
		}
		if got, want := a.SizeByID(int32(id)), a.SizeOf(name); got != want {
			t.Errorf("SizeByID(%q) = %d, want %d", name, got, want)
		}
	}
	if a.DatumID("nope") != -1 {
		t.Error("unknown datum should have ID -1")
	}
	mid := int32(a.DatumID("mid"))
	if got := a.ProducerID(mid); got != 0 {
		t.Errorf("ProducerID(mid) = %d, want 0", got)
	}
	if got := a.ProducerID(int32(a.DatumID("in"))); got != -1 {
		t.Errorf("ProducerID(in) = %d, want -1 (external)", got)
	}
	if got := a.LastUseID(mid); got != 1 {
		t.Errorf("LastUseID(mid) = %d, want 1", got)
	}
	if got := a.LastUseID(int32(a.DatumID("out"))); got != -1 {
		t.Errorf("LastUseID(out) = %d, want -1", got)
	}
	in0 := a.KernelInputIDs(0)
	if len(in0) != 1 || a.DatumName(in0[0]) != "in" {
		t.Errorf("KernelInputIDs(0) = %v, want [in]", in0)
	}
	out1 := a.KernelOutputIDs(1)
	if len(out1) != 1 || a.DatumName(out1[0]) != "out" {
		t.Errorf("KernelOutputIDs(1) = %v, want [out]", out1)
	}
}
