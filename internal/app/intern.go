package app

// Interned-ID view of the application, built once at Builder seal time
// (finalize). A datum's ID is its index into App.Data; the tables below
// give the hot paths (extract, the schedulers, verify) slice-indexed
// access to the dataflow so the inner loops never hash a string.

// internIDs builds the dense-ID tables. Called from finalize after the
// name-keyed maps are validated, so every name resolves.
func (a *App) internIDs() {
	a.kernelIn = make([][]int32, len(a.Kernels))
	a.kernelOut = make([][]int32, len(a.Kernels))
	a.producerID = make([]int32, len(a.Data))
	a.lastUseID = make([]int32, len(a.Data))
	for i := range a.Data {
		a.producerID[i] = -1
		a.lastUseID[i] = -1
	}
	for ki, k := range a.Kernels {
		in := make([]int32, len(k.Inputs))
		for j, name := range k.Inputs {
			in[j] = int32(a.dataIdx[name])
		}
		a.kernelIn[ki] = in
		out := make([]int32, len(k.Outputs))
		for j, name := range k.Outputs {
			out[j] = int32(a.dataIdx[name])
		}
		a.kernelOut[ki] = out
	}
	for name, ki := range a.producer {
		a.producerID[a.dataIdx[name]] = int32(ki)
	}
	for name, cs := range a.consumers {
		if len(cs) > 0 {
			a.lastUseID[a.dataIdx[name]] = int32(cs[len(cs)-1])
		}
	}
}

// NumData returns the number of data objects (the ID space is [0, NumData)).
func (a *App) NumData() int { return len(a.Data) }

// Finalized reports whether the interned-ID tables exist, i.e. the app
// went through Builder.Build or Finalize. The ID accessors below must
// only be used on finalized apps.
func (a *App) Finalized() bool { return a.kernelIn != nil }

// DatumID returns the dense ID of the named datum, or -1 if unknown.
func (a *App) DatumID(name string) int {
	i, ok := a.dataIdx[name]
	if !ok {
		return -1
	}
	return i
}

// DatumName returns the name of the datum with the given ID.
func (a *App) DatumName(id int32) string { return a.Data[id].Name }

// SizeByID returns the per-iteration size of the datum with the given ID.
func (a *App) SizeByID(id int32) int { return a.Data[id].Size }

// IsStreamedID reports whether the datum with the given ID is loaded just
// in time (see Datum.Streamed).
func (a *App) IsStreamedID(id int32) bool { return a.Data[id].Streamed }

// ProducerID returns the index of the kernel producing the datum with the
// given ID, or -1 for external inputs.
func (a *App) ProducerID(id int32) int32 { return a.producerID[id] }

// LastUseID returns the index of the last kernel reading the datum with
// the given ID, or -1 if nothing consumes it.
func (a *App) LastUseID(id int32) int32 { return a.lastUseID[id] }

// KernelInputIDs returns kernel ki's input datum IDs in declared order.
// The returned slice must not be modified.
func (a *App) KernelInputIDs(ki int) []int32 { return a.kernelIn[ki] }

// KernelOutputIDs returns kernel ki's output datum IDs in declared order.
// The returned slice must not be modified.
func (a *App) KernelOutputIDs(ki int) []int32 { return a.kernelOut[ki] }
