package app

import (
	"fmt"
	"sync"
)

// Cluster is a set of consecutive kernels assigned to the same Frame
// Buffer set and executed back to back. Clusters are the unit the data
// scheduler works on: while one cluster computes out of one FB set, the
// DMA fills the other set for the next cluster.
type Cluster struct {
	// Index is the cluster's position in execution order.
	Index int
	// Set is the FB set (0 or 1 on M1) the cluster's data live in.
	Set int
	// Kernels holds indices into App.Kernels, consecutive and ascending.
	Kernels []int
}

// Contains reports whether kernel index ki belongs to the cluster.
func (c Cluster) Contains(ki int) bool {
	return len(c.Kernels) > 0 && ki >= c.Kernels[0] && ki <= c.Kernels[len(c.Kernels)-1]
}

// Partition is an App together with its cluster decomposition, as produced
// by the kernel scheduler. Clusters alternate FB sets in execution order.
type Partition struct {
	App      *App
	Clusters []Cluster

	// Memoized content fingerprint (see Fingerprint). The zero value is
	// ready to use, so hand-assembled literals stay valid.
	fpOnce sync.Once
	fp     [32]byte
}

// NewPartition splits the app's kernel sequence into clusters of the given
// sizes (in kernel counts, in execution order) and assigns them to FB sets
// round-robin over numSets. Sizes must cover the kernel sequence exactly.
func NewPartition(a *App, numSets int, sizes ...int) (*Partition, error) {
	if a == nil {
		return nil, fmt.Errorf("app: nil App")
	}
	if numSets < 1 {
		return nil, fmt.Errorf("app %q: numSets must be >= 1, got %d", a.Name, numSets)
	}
	p := &Partition{App: a}
	next := 0
	for ci, sz := range sizes {
		if sz <= 0 {
			return nil, fmt.Errorf("app %q: cluster %d has non-positive size %d", a.Name, ci, sz)
		}
		if next+sz > len(a.Kernels) {
			return nil, fmt.Errorf("app %q: cluster sizes exceed %d kernels", a.Name, len(a.Kernels))
		}
		ks := make([]int, sz)
		for i := range ks {
			ks[i] = next + i
		}
		p.Clusters = append(p.Clusters, Cluster{Index: ci, Set: ci % numSets, Kernels: ks})
		next += sz
	}
	if next != len(a.Kernels) {
		return nil, fmt.Errorf("app %q: cluster sizes cover %d of %d kernels", a.Name, next, len(a.Kernels))
	}
	return p, nil
}

// MustPartition is NewPartition for tests and static workload definitions.
func MustPartition(a *App, numSets int, sizes ...int) *Partition {
	p, err := NewPartition(a, numSets, sizes...)
	if err != nil {
		panic(err)
	}
	return p
}

// ClusterOf returns the index of the cluster containing kernel ki.
func (p *Partition) ClusterOf(ki int) int {
	for _, c := range p.Clusters {
		if c.Contains(ki) {
			return c.Index
		}
	}
	return -1
}

// SameSet reports whether clusters i and j are assigned to the same FB set.
func (p *Partition) SameSet(i, j int) bool {
	return p.Clusters[i].Set == p.Clusters[j].Set
}

// MaxKernelsPerCluster returns the paper's Table 1 column n.
func (p *Partition) MaxKernelsPerCluster() int {
	max := 0
	for _, c := range p.Clusters {
		if len(c.Kernels) > max {
			max = len(c.Kernels)
		}
	}
	return max
}

// Validate re-checks the partition invariants (contiguity, coverage, set
// alternation consistency). Partitions built with NewPartition always
// pass; this guards hand-assembled ones.
func (p *Partition) Validate() error {
	if p.App == nil {
		return fmt.Errorf("partition: nil App")
	}
	next := 0
	for ci, c := range p.Clusters {
		if c.Index != ci {
			return fmt.Errorf("partition: cluster %d has Index %d", ci, c.Index)
		}
		if len(c.Kernels) == 0 {
			return fmt.Errorf("partition: cluster %d is empty", ci)
		}
		for i, ki := range c.Kernels {
			if ki != next {
				return fmt.Errorf("partition: cluster %d kernel %d is %d, want %d (contiguous coverage)", ci, i, ki, next)
			}
			next++
		}
		if c.Set < 0 {
			return fmt.Errorf("partition: cluster %d has negative set %d", ci, c.Set)
		}
	}
	if next != len(p.App.Kernels) {
		return fmt.Errorf("partition: covers %d of %d kernels", next, len(p.App.Kernels))
	}
	return nil
}
