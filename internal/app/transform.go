package app

import "fmt"

// TileKernel implements the paper's future-work item "data management
// within a kernel": it replaces one kernel with `tiles` sub-kernels that
// each process a slice of the kernel's data. Sub-kernels share one
// context group (the configuration is loaded once and reused across
// tiles), so tiling costs no extra context traffic; its benefit is a
// smaller per-step Frame Buffer footprint, which lets the data schedulers
// pick a higher reuse factor RF or retain more shared objects.
//
// Tiling rules:
//
//   - an external input consumed ONLY by the tiled kernel is split into
//     per-tile slices (tile t reads slice t);
//   - a final output with no other consumers is split the same way;
//   - every other datum (shared inputs like coefficient tables, and
//     results other kernels consume) is left whole: each sub-kernel reads
//     whole shared inputs, and the LAST sub-kernel is recorded as the
//     producer of whole outputs (the result is complete only then).
//
// The transform returns a new validated App; the original is untouched.
// Partitions built for the old App do not fit the new one — use
// TilePartition to carry a partition across.
func TileKernel(a *App, kernel string, tiles int) (*App, error) {
	if tiles < 2 {
		return nil, fmt.Errorf("app: TileKernel needs tiles >= 2, got %d", tiles)
	}
	ki, ok := a.KernelIndex(kernel)
	if !ok {
		return nil, fmt.Errorf("app: TileKernel: no kernel %q in %q", kernel, a.Name)
	}
	k := a.Kernels[ki]

	// Decide which data get sliced.
	sliceable := map[string]bool{}
	for _, in := range k.Inputs {
		if a.IsExternalInput(in) && soleConsumer(a, in, ki) {
			sliceable[in] = true
		}
	}
	for _, out := range k.Outputs {
		if len(a.Consumers(out)) == 0 {
			sliceable[out] = true
		}
	}

	slicedInput := map[string]bool{}
	for _, in := range k.Inputs {
		if sliceable[in] {
			slicedInput[in] = true
		}
	}

	nb := &App{Name: a.Name + "+tiled", Iterations: a.Iterations}
	for _, d := range a.Data {
		if sliceable[d.Name] {
			per := (d.Size + tiles - 1) / tiles
			for t := 0; t < tiles; t++ {
				nb.Data = append(nb.Data, Datum{
					Name: tileName(d.Name, t),
					Size: per,
					// Input slices stream in just before their tile
					// runs — the footprint saving of tiling.
					Streamed: slicedInput[d.Name],
					Final:    d.Final,
				})
			}
			continue
		}
		nb.Data = append(nb.Data, d)
	}

	perCycles := (k.ComputeCycles + tiles - 1) / tiles
	for i, kk := range a.Kernels {
		if i != ki {
			nb.Kernels = append(nb.Kernels, kk)
			continue
		}
		for t := 0; t < tiles; t++ {
			sub := Kernel{
				Name:          tileName(k.Name, t),
				ContextWords:  k.ContextWords,
				ComputeCycles: perCycles,
				ContextGroup:  k.Name,
			}
			for _, in := range k.Inputs {
				if sliceable[in] {
					sub.Inputs = append(sub.Inputs, tileName(in, t))
				} else {
					sub.Inputs = append(sub.Inputs, in)
				}
			}
			for _, out := range k.Outputs {
				switch {
				case sliceable[out]:
					sub.Outputs = append(sub.Outputs, tileName(out, t))
				case t == tiles-1:
					// Whole results are complete at the last tile.
					sub.Outputs = append(sub.Outputs, out)
				}
			}
			nb.Kernels = append(nb.Kernels, sub)
		}
	}
	if err := nb.finalize(); err != nil {
		return nil, fmt.Errorf("app: TileKernel(%s, %d): %w", kernel, tiles, err)
	}
	return nb, nil
}

// TilePartition applies TileKernel and rebuilds the partition: the
// cluster containing the kernel grows by tiles-1 positions, every other
// cluster keeps its kernels.
func TilePartition(p *Partition, kernel string, tiles int) (*Partition, error) {
	ki, ok := p.App.KernelIndex(kernel)
	if !ok {
		return nil, fmt.Errorf("app: TilePartition: no kernel %q", kernel)
	}
	na, err := TileKernel(p.App, kernel, tiles)
	if err != nil {
		return nil, err
	}
	home := p.ClusterOf(ki)
	sizes := make([]int, len(p.Clusters))
	numSets := 1
	for i, c := range p.Clusters {
		sizes[i] = len(c.Kernels)
		if c.Set+1 > numSets {
			numSets = c.Set + 1
		}
		if i == home {
			sizes[i] += tiles - 1
		}
	}
	return NewPartition(na, numSets, sizes...)
}

func tileName(name string, t int) string {
	return fmt.Sprintf("%s@t%d", name, t)
}

func soleConsumer(a *App, datum string, ki int) bool {
	cs := a.Consumers(datum)
	return len(cs) == 1 && cs[0] == ki
}
