package app

import (
	"strings"
	"testing"
)

// tilingApp: k1 reads a big private input and a shared table, writes an
// intermediate consumed by k2; k2 writes a big final output.
func tilingApp(t *testing.T) *App {
	t.Helper()
	b := NewBuilder("tile", 4).
		Datum("big", 400).
		Datum("tbl", 100).
		Datum("mid", 80).
		Datum("out", 300)
	b.Kernel("k1", 64, 200).In("big", "tbl").Out("mid")
	b.Kernel("k2", 64, 200).In("mid", "tbl").Out("out")
	return b.MustBuild()
}

func TestTileKernelSlicesPrivateData(t *testing.T) {
	a := tilingApp(t)
	ta, err := TileKernel(a, "k1", 4)
	if err != nil {
		t.Fatal(err)
	}
	// k1 becomes 4 sub-kernels; k2 unchanged.
	if ta.NumKernels() != 5 {
		t.Fatalf("kernels = %d, want 5", ta.NumKernels())
	}
	// big (sole consumer k1) is sliced into 4 x 100.
	if _, ok := ta.DatumByName("big"); ok {
		t.Error("big should be replaced by slices")
	}
	for tl := 0; tl < 4; tl++ {
		d, ok := ta.DatumByName(tileName("big", tl))
		if !ok || d.Size != 100 {
			t.Errorf("big@t%d = %+v, want 100-byte slice", tl, d)
		}
	}
	// tbl (shared with k2) stays whole and is read by every sub-kernel.
	if d, ok := ta.DatumByName("tbl"); !ok || d.Size != 100 {
		t.Errorf("tbl = %+v, want untouched", d)
	}
	if got := len(ta.Consumers("tbl")); got != 5 {
		t.Errorf("tbl consumers = %d, want 5 (4 tiles + k2)", got)
	}
	// mid (consumed by k2) stays whole, produced by the LAST sub-kernel.
	p, ok := ta.Producer("mid")
	if !ok || ta.Kernels[p].Name != tileName("k1", 3) {
		t.Errorf("mid produced by %v, want k1@t3", ta.Kernels[p].Name)
	}
	// Sub-kernels share the context group.
	for tl := 0; tl < 4; tl++ {
		ki, _ := ta.KernelIndex(tileName("k1", tl))
		if ta.Kernels[ki].CtxGroup() != "k1" {
			t.Errorf("sub-kernel %d group = %q, want k1", tl, ta.Kernels[ki].CtxGroup())
		}
		if ta.Kernels[ki].ComputeCycles != 50 {
			t.Errorf("sub-kernel %d cycles = %d, want 50", tl, ta.Kernels[ki].ComputeCycles)
		}
	}
}

func TestTileKernelFinalOutput(t *testing.T) {
	a := tilingApp(t)
	ta, err := TileKernel(a, "k2", 2)
	if err != nil {
		t.Fatal(err)
	}
	// out (final, no consumers) is sliced; mid stays whole and is read
	// by both sub-kernels.
	for tl := 0; tl < 2; tl++ {
		if d, ok := ta.DatumByName(tileName("out", tl)); !ok || d.Size != 150 {
			t.Errorf("out@t%d = %+v, want 150-byte slice", tl, d)
		}
	}
	if got := len(ta.Consumers("mid")); got != 2 {
		t.Errorf("mid consumers = %d, want both sub-kernels", got)
	}
}

func TestTileKernelErrors(t *testing.T) {
	a := tilingApp(t)
	if _, err := TileKernel(a, "k1", 1); err == nil {
		t.Error("tiles=1 accepted")
	}
	if _, err := TileKernel(a, "ghost", 2); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestTileKernelPreservesOriginal(t *testing.T) {
	a := tilingApp(t)
	if _, err := TileKernel(a, "k1", 3); err != nil {
		t.Fatal(err)
	}
	if a.NumKernels() != 2 {
		t.Error("TileKernel mutated the original app")
	}
	if _, ok := a.DatumByName("big"); !ok {
		t.Error("TileKernel mutated the original data")
	}
}

func TestTilePartition(t *testing.T) {
	a := tilingApp(t)
	p := MustPartition(a, 2, 1, 1)
	tp, err := TilePartition(p, "k1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tp.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(tp.Clusters))
	}
	if got := len(tp.Clusters[0].Kernels); got != 3 {
		t.Errorf("cluster 0 has %d kernels, want 3 (the tiles)", got)
	}
	if got := len(tp.Clusters[1].Kernels); got != 1 {
		t.Errorf("cluster 1 has %d kernels, want 1", got)
	}
	if !strings.Contains(tp.App.Name, "tiled") {
		t.Errorf("app name %q should mark the transform", tp.App.Name)
	}
}

func TestTilePartitionUnknownKernel(t *testing.T) {
	a := tilingApp(t)
	p := MustPartition(a, 2, 1, 1)
	if _, err := TilePartition(p, "ghost", 2); err == nil {
		t.Error("unknown kernel accepted")
	}
}
