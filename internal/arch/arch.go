// Package arch models the MorphoSys M1 multi-context reconfigurable
// architecture at the level the data scheduler needs: the Frame Buffer
// (double-buffered on-chip data memory), the Context Memory, the single
// shared DMA channel between external memory and the on-chip memories, and
// the reconfigurable-cell array geometry.
//
// All sizes are in bytes; all times are in RC-array clock cycles. The
// defaults follow the first MorphoSys implementation (M1) as described in
// Singh et al., DAC 2000, and the scheduling papers built on it.
package arch

import (
	"fmt"

	"cds/internal/scherr"
)

// Common byte-size multipliers. The scheduling papers quote memory sizes as
// "1K", "8K" etc., meaning binary kilobytes.
const (
	KiB = 1024
	MiB = 1024 * KiB
)

// Params describes one MorphoSys-class machine instance. The zero value is
// not usable; start from M1() or one of the preset constructors and adjust.
type Params struct {
	// Name identifies the configuration in reports.
	Name string

	// FBSetBytes is the capacity of ONE Frame Buffer set. M1's frame
	// buffer has two identical sets so that computation on one set
	// overlaps DMA traffic on the other.
	FBSetBytes int

	// FBSets is the number of Frame Buffer sets (2 on M1).
	FBSets int

	// CMWords is the Context Memory capacity in 32-bit context words.
	// M1 stores 32 context planes of 16 words for each of the row and
	// column blocks: 2 * 32 * 16 = 1024 words.
	CMWords int

	// BusBytes is the width of the external-memory/DMA bus in bytes
	// (4 on M1: 32-bit bus). One bus beat moves BusBytes bytes in one
	// cycle.
	BusBytes int

	// DMASetupCycles is the fixed per-transfer DMA programming overhead
	// charged to every burst (TinyRISC issues the DMA instructions).
	DMASetupCycles int

	// CtxWordBytes is the size of one context word (4 bytes on M1).
	CtxWordBytes int

	// Rows and Cols give the RC-array geometry (8x8 on M1).
	Rows, Cols int
}

// M1 returns the parameters of the first MorphoSys implementation.
func M1() Params {
	return Params{
		Name:           "M1",
		FBSetBytes:     2 * KiB,
		FBSets:         2,
		CMWords:        1024,
		BusBytes:       4,
		DMASetupCycles: 4,
		CtxWordBytes:   4,
		Rows:           8,
		Cols:           8,
	}
}

// WithFB returns a copy of p with the per-set Frame Buffer capacity set to
// fbSetBytes. The scheduling papers sweep this parameter (Table 1's "FB"
// column); having it as a one-liner keeps experiment definitions readable.
func (p Params) WithFB(fbSetBytes int) Params {
	p.FBSetBytes = fbSetBytes
	p.Name = fmt.Sprintf("%s/FB=%s", p.Name, FormatSize(fbSetBytes))
	return p
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.FBSetBytes <= 0:
		return fmt.Errorf("arch: FBSetBytes must be positive, got %d", p.FBSetBytes)
	case p.FBSets < 1:
		return fmt.Errorf("arch: FBSets must be >= 1, got %d", p.FBSets)
	case p.CMWords <= 0:
		return fmt.Errorf("arch: CMWords must be positive, got %d", p.CMWords)
	case p.BusBytes <= 0:
		return fmt.Errorf("arch: BusBytes must be positive, got %d", p.BusBytes)
	case p.DMASetupCycles < 0:
		return fmt.Errorf("arch: DMASetupCycles must be >= 0, got %d", p.DMASetupCycles)
	case p.CtxWordBytes <= 0:
		return fmt.Errorf("arch: CtxWordBytes must be positive, got %d", p.CtxWordBytes)
	case p.Rows <= 0 || p.Cols <= 0:
		return fmt.Errorf("arch: RC array must be non-empty, got %dx%d", p.Rows, p.Cols)
	}
	return nil
}

// ErrDoesNotFit is returned by capacity checks when a request exceeds the
// available on-chip storage under a given schedule. It also matches
// scherr.ErrCapacity under errors.Is.
var ErrDoesNotFit = scherr.Sentinel(scherr.ErrCapacity, "arch: request exceeds on-chip capacity")

// DataCycles returns the DMA cycles needed to move n bytes of frame-buffer
// data in one burst: the fixed setup cost plus one cycle per bus beat.
// Zero-byte transfers cost nothing (no burst is issued).
func (p Params) DataCycles(n int) int {
	if n <= 0 {
		return 0
	}
	beats := (n + p.BusBytes - 1) / p.BusBytes
	return p.DMASetupCycles + beats
}

// ContextCycles returns the DMA cycles needed to load n context words into
// the Context Memory. Context traffic shares the single DMA channel with
// data traffic, so these cycles serialize with DataCycles.
func (p Params) ContextCycles(n int) int {
	if n <= 0 {
		return 0
	}
	beats := (n*p.CtxWordBytes + p.BusBytes - 1) / p.BusBytes
	return p.DMASetupCycles + beats
}

// FormatSize renders a byte count the way the paper does: "0.8K", "2K",
// "14K". Exact multiples of KiB drop the fraction.
func FormatSize(n int) string {
	if n%KiB == 0 {
		return fmt.Sprintf("%dK", n/KiB)
	}
	return fmt.Sprintf("%.1fK", float64(n)/KiB)
}

// M1Quarter returns a cost-reduced M1 with half the frame buffer and half
// the context memory — the "small memory" design point the paper's FB
// sweeps explore.
func M1Quarter() Params {
	p := M1()
	p.Name = "M1/4"
	p.FBSetBytes = 1 * KiB
	p.CMWords = 512
	return p
}

// M2 returns a hypothetical second-generation machine: a 16x16 cell
// array, four times the frame buffer and double the context memory on a
// 64-bit bus. Used by the generation-scaling benchmark.
func M2() Params {
	return Params{
		Name:           "M2",
		FBSetBytes:     8 * KiB,
		FBSets:         2,
		CMWords:        2048,
		BusBytes:       8,
		DMASetupCycles: 4,
		CtxWordBytes:   4,
		Rows:           16,
		Cols:           16,
	}
}

// Presets returns the built-in machine configurations by name.
func Presets() map[string]Params {
	out := map[string]Params{}
	for _, p := range []Params{M1(), M1Quarter(), M2()} {
		out[p.Name] = p
	}
	return out
}
