package arch

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cds/internal/scherr"
)

func TestM1Defaults(t *testing.T) {
	p := M1()
	if err := p.Validate(); err != nil {
		t.Fatalf("M1() invalid: %v", err)
	}
	if p.FBSets != 2 {
		t.Errorf("M1 FBSets = %d, want 2 (double-buffered frame buffer)", p.FBSets)
	}
	if p.Rows != 8 || p.Cols != 8 {
		t.Errorf("M1 array = %dx%d, want 8x8", p.Rows, p.Cols)
	}
	if p.CMWords != 1024 {
		t.Errorf("M1 CMWords = %d, want 1024", p.CMWords)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero FB", func(p *Params) { p.FBSetBytes = 0 }},
		{"negative FB", func(p *Params) { p.FBSetBytes = -1 }},
		{"no sets", func(p *Params) { p.FBSets = 0 }},
		{"zero CM", func(p *Params) { p.CMWords = 0 }},
		{"zero bus", func(p *Params) { p.BusBytes = 0 }},
		{"negative setup", func(p *Params) { p.DMASetupCycles = -1 }},
		{"zero ctx word", func(p *Params) { p.CtxWordBytes = 0 }},
		{"empty array", func(p *Params) { p.Rows = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := M1()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error for %s", tt.name)
			}
		})
	}
}

func TestWithFB(t *testing.T) {
	p := M1().WithFB(8 * KiB)
	if p.FBSetBytes != 8*KiB {
		t.Fatalf("WithFB: FBSetBytes = %d, want %d", p.FBSetBytes, 8*KiB)
	}
	if !strings.Contains(p.Name, "8K") {
		t.Errorf("WithFB: Name = %q, want to mention 8K", p.Name)
	}
	if M1().FBSetBytes == p.FBSetBytes && 8*KiB == M1().FBSetBytes {
		t.Fatal("test misconfigured: pick a size different from the default")
	}
}

func TestDataCycles(t *testing.T) {
	p := M1() // BusBytes=4, DMASetupCycles=4
	tests := []struct {
		bytes, want int
	}{
		{0, 0},
		{-5, 0},
		{1, 5}, // 1 beat + setup
		{4, 5}, // exactly one beat
		{5, 6}, // two beats
		{8, 6}, // two beats
		{1024, 4 + 256},
	}
	for _, tt := range tests {
		if got := p.DataCycles(tt.bytes); got != tt.want {
			t.Errorf("DataCycles(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestContextCycles(t *testing.T) {
	p := M1() // CtxWordBytes=4, BusBytes=4 -> one cycle per word
	if got := p.ContextCycles(0); got != 0 {
		t.Errorf("ContextCycles(0) = %d, want 0", got)
	}
	if got := p.ContextCycles(16); got != 4+16 {
		t.Errorf("ContextCycles(16) = %d, want %d", got, 4+16)
	}
}

func TestDataCyclesMonotonic(t *testing.T) {
	p := M1()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.DataCycles(x) <= p.DataCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataCyclesSplitNeverCheaper(t *testing.T) {
	// Splitting one burst into two can never be cheaper than a single
	// burst: each extra burst pays the DMA setup again. The allocator
	// relies on this when deciding whether splitting a datum is harmful.
	p := M1()
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		return p.DataCycles(x)+p.DataCycles(y) >= p.DataCycles(x+y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatSize(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{1024, "1K"},
		{2048, "2K"},
		{8 * KiB, "8K"},
		{819, "0.8K"},
		{1536, "1.5K"},
	}
	for _, tt := range tests {
		if got := FormatSize(tt.n); got != tt.want {
			t.Errorf("FormatSize(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestContextMemoryLoadAndHit(t *testing.T) {
	cm := NewContextMemory(100)
	moved, err := cm.Load("dct", 40)
	if err != nil || moved != 40 {
		t.Fatalf("Load(dct) = (%d, %v), want (40, nil)", moved, err)
	}
	// Second load is a hit: no words move.
	moved, err = cm.Load("dct", 40)
	if err != nil || moved != 0 {
		t.Fatalf("reload of resident kernel = (%d, %v), want (0, nil)", moved, err)
	}
	if cm.Used() != 40 || cm.Free() != 60 {
		t.Errorf("Used/Free = %d/%d, want 40/60", cm.Used(), cm.Free())
	}
}

func TestContextMemoryFIFOEviction(t *testing.T) {
	cm := NewContextMemory(100)
	mustLoad(t, cm, "a", 40)
	mustLoad(t, cm, "b", 40)
	mustLoad(t, cm, "c", 40) // must evict a (oldest)
	if cm.Resident("a") {
		t.Error("kernel a still resident, want FIFO eviction")
	}
	if !cm.Resident("b") || !cm.Resident("c") {
		t.Error("kernels b and c should be resident")
	}
	if cm.Used() != 80 {
		t.Errorf("Used = %d, want 80", cm.Used())
	}
}

func TestContextMemoryTooLarge(t *testing.T) {
	cm := NewContextMemory(32)
	if _, err := cm.Load("huge", 33); !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("Load(huge) err = %v, want ErrDoesNotFit", err)
	}
	if _, err := cm.Load("neg", -1); err == nil {
		t.Fatal("Load with negative size: want error")
	}
}

func TestContextMemoryEvictAndReset(t *testing.T) {
	cm := NewContextMemory(64)
	mustLoad(t, cm, "a", 10)
	mustLoad(t, cm, "b", 20)
	cm.Evict("a")
	if cm.Resident("a") || cm.Used() != 20 {
		t.Errorf("after Evict(a): resident=%v used=%d, want false/20", cm.Resident("a"), cm.Used())
	}
	cm.Evict("a") // idempotent
	cm.Reset()
	if cm.Used() != 0 || cm.Resident("b") {
		t.Error("Reset did not clear the context memory")
	}
}

func TestContextMemoryAccountingInvariant(t *testing.T) {
	// Property: after any sequence of loads, used == sum of resident
	// sizes and never exceeds capacity.
	cm := NewContextMemory(128)
	names := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
	sizes := []int{16, 48, 64, 32, 128, 8}
	for step := 0; step < 200; step++ {
		n := names[step%len(names)]
		if _, err := cm.Load(n, sizes[step%len(sizes)]); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		sum := 0
		for _, name := range names {
			if cm.Resident(name) {
				sum += cm.resident[name]
			}
		}
		if sum != cm.Used() {
			t.Fatalf("step %d: used=%d but resident sum=%d", step, cm.Used(), sum)
		}
		if cm.Used() > cm.Capacity() {
			t.Fatalf("step %d: used=%d exceeds capacity=%d", step, cm.Used(), cm.Capacity())
		}
	}
}

// TestContextMemoryCorruptAccountingIsError: a CM whose accounting has
// broken (words counted used with nothing evictable) must report a typed
// error from the eviction path, not panic. The state is unreachable
// through the public API, so the test corrupts it directly; the error
// must match both ErrCMCorrupt and the taxonomy's ErrInternal so a long
// sweep can report the item and keep going.
func TestContextMemoryCorruptAccountingIsError(t *testing.T) {
	cm := NewContextMemory(64)
	mustLoad(t, cm, "a", 40)
	// Corrupt: drop the eviction order while words stay accounted used.
	cm.order = nil
	moved, err := cm.Load("b", 40) // needs eviction, nothing to evict
	if moved != 0 {
		t.Fatalf("corrupt Load moved %d words, want 0", moved)
	}
	if !errors.Is(err, ErrCMCorrupt) {
		t.Fatalf("err = %v, want ErrCMCorrupt", err)
	}
	if !errors.Is(err, scherr.ErrInternal) {
		t.Fatalf("err = %v does not match scherr.ErrInternal", err)
	}
	// The expected capacity outcome stays distinct from corruption.
	if errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("corruption error %v must not match ErrDoesNotFit", err)
	}
}

func mustLoad(t *testing.T, cm *ContextMemory, kernel string, words int) {
	t.Helper()
	if _, err := cm.Load(kernel, words); err != nil {
		t.Fatalf("Load(%s, %d): %v", kernel, words, err)
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d, want 3", len(ps))
	}
	for name, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("preset key %q has name %q", name, p.Name)
		}
	}
	if ps["M2"].Rows != 16 || ps["M2"].BusBytes != 8 {
		t.Errorf("M2 = %+v", ps["M2"])
	}
	if ps["M1/4"].FBSetBytes >= ps["M1"].FBSetBytes {
		t.Error("M1/4 should have a smaller FB than M1")
	}
}
