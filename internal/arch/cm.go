package arch

import (
	"fmt"

	"cds/internal/scherr"
)

// ErrCMCorrupt reports that the Context Memory's residency accounting has
// broken: words are counted as used but no resident group can be evicted
// to free them. It can only arise from a bug in this package (no public
// call sequence reaches it), so it joins the taxonomy as
// scherr.ErrInternal — an error the caller reports rather than a panic
// that takes down a whole fuzzing sweep or scheduling service.
var ErrCMCorrupt = scherr.Sentinel(scherr.ErrInternal, "arch: context memory accounting corrupted")

// ContextMemory tracks which kernels' context planes currently reside in
// the on-chip Context Memory. The context scheduler uses it to decide when
// a kernel's contexts must be (re)loaded and to enforce the CM capacity.
//
// The model is deliberately at the granularity the scheduling papers use:
// a kernel owns a contiguous group of context words; groups are loaded and
// evicted whole.
type ContextMemory struct {
	capacity int // words
	used     int
	resident map[string]int // kernel name -> context words held
	// order remembers load order for FIFO eviction, the policy the
	// MorphoSys compilation framework assumes when the CM overflows.
	order []string
}

// NewContextMemory returns an empty context memory with the given capacity
// in context words.
func NewContextMemory(capacityWords int) *ContextMemory {
	return &ContextMemory{
		capacity: capacityWords,
		resident: make(map[string]int),
	}
}

// Capacity returns the total capacity in context words.
func (cm *ContextMemory) Capacity() int { return cm.capacity }

// Used returns the number of context words currently occupied.
func (cm *ContextMemory) Used() int { return cm.used }

// Free returns the number of unoccupied context words.
func (cm *ContextMemory) Free() int { return cm.capacity - cm.used }

// Resident reports whether kernel's contexts are currently loaded.
func (cm *ContextMemory) Resident(kernel string) bool {
	_, ok := cm.resident[kernel]
	return ok
}

// Load brings words context words for kernel into the CM, evicting the
// least recently loaded kernels if needed (FIFO). It returns the number of
// context words actually transferred (0 if the kernel was already
// resident) and an error if the kernel alone exceeds the CM capacity.
func (cm *ContextMemory) Load(kernel string, words int) (int, error) {
	if words < 0 {
		return 0, fmt.Errorf("arch: negative context size %d for kernel %q", words, kernel)
	}
	if words > cm.capacity {
		return 0, fmt.Errorf("arch: kernel %q needs %d context words, CM holds %d: %w",
			kernel, words, cm.capacity, ErrDoesNotFit)
	}
	if cm.Resident(kernel) {
		return 0, nil
	}
	for cm.used+words > cm.capacity {
		if err := cm.evictOldest(); err != nil {
			return 0, err
		}
	}
	cm.resident[kernel] = words
	cm.order = append(cm.order, kernel)
	cm.used += words
	return words, nil
}

// Evict removes kernel's contexts from the CM if present.
func (cm *ContextMemory) Evict(kernel string) {
	words, ok := cm.resident[kernel]
	if !ok {
		return
	}
	delete(cm.resident, kernel)
	cm.used -= words
	for i, name := range cm.order {
		if name == kernel {
			cm.order = append(cm.order[:i], cm.order[i+1:]...)
			break
		}
	}
}

// Reset empties the context memory.
func (cm *ContextMemory) Reset() {
	cm.resident = make(map[string]int)
	cm.order = cm.order[:0]
	cm.used = 0
}

func (cm *ContextMemory) evictOldest() error {
	if len(cm.order) == 0 {
		return fmt.Errorf("arch: %d context words counted used but nothing to evict: %w",
			cm.used, ErrCMCorrupt)
	}
	cm.Evict(cm.order[0])
	return nil
}
