package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"cds/internal/journal"
	"cds/internal/retry"
	"cds/internal/schedclient"
	"cds/internal/serve"
	"cds/internal/sweep"
	"cds/internal/workloads"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives every fault schedule; (Seed, Plan) reproduces the run.
	Seed int64
	// Plan is a scenario name from PlanNames.
	Plan string
	// SchedCmd is the schedd binary to supervise; empty re-executes the
	// current binary through MaybeChild.
	SchedCmd string
	// Dir is the scratch directory (journals); empty creates a temp dir
	// that is removed when the run passes and kept when it fails.
	Dir string
	// Logf observes the run; nil disables.
	Logf func(format string, args ...any)
}

// Report is one scenario's reproducible verdict.
type Report struct {
	Plan    Plan           `json:"plan"`
	OK      bool           `json:"ok"`
	Oracles []OracleResult `json:"oracles"`
	// ProxyEvents and Probes carry the observed fault/probe timelines
	// for the scenarios that have them.
	ProxyEvents []ProxyEvent `json:"proxy_events,omitempty"`
	Probes      []ProbeEvent `json:"probes,omitempty"`
	// Dir is where the run's journals live (kept on failure).
	Dir string `json:"dir,omitempty"`
}

// Run executes one named scenario and returns its report. The error is
// a harness failure (could not start a child, scratch dir unusable);
// invariant violations are not errors — they are !OK oracle results.
func Run(cfg Config) (*Report, error) {
	plan, err := DerivePlan(cfg.Plan, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, logf: cfg.Logf}
	if r.logf == nil {
		r.logf = func(string, ...any) {}
	}
	r.dir = cfg.Dir
	owned := false
	if r.dir == "" {
		r.dir, err = os.MkdirTemp("", "chaos-"+plan.Name+"-")
		if err != nil {
			return nil, err
		}
		owned = true
	} else if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return nil, err
	}
	r.sup = &Supervisor{SchedCmd: cfg.SchedCmd, Logf: r.logf}
	r.logf("chaos: plan %s seed %d: start (dir %s)", plan.Name, plan.Seed, r.dir)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var rep *Report
	switch plan.Name {
	case "kill-resume":
		rep, err = r.killResume(ctx, plan)
	case "term-drain":
		rep, err = r.termDrain(ctx, plan)
	case "fs-faults":
		rep, err = r.fsFaults(ctx, plan)
	case "proxy":
		rep, err = r.proxy(ctx, plan)
	case "overload":
		rep, err = r.overload(ctx, plan)
	case "breaker":
		rep, err = r.breaker(ctx, plan)
	case "router-kill-worker":
		rep, err = r.routerKillWorker(ctx, plan)
	case "router-drain-rebalance":
		rep, err = r.routerDrainRebalance(ctx, plan)
	case "router-split-cache":
		rep, err = r.routerSplitCache(ctx, plan)
	default:
		err = fmt.Errorf("chaos: plan %q has no runner", plan.Name)
	}
	if err != nil {
		return nil, err
	}
	rep.Plan = plan
	rep.OK = AllOK(rep.Oracles)
	rep.Dir = r.dir
	for _, o := range rep.Oracles {
		mark := "ok  "
		if !o.OK {
			mark = "FAIL"
		}
		r.logf("chaos: %s %s %s: %s", plan.Name, mark, o.Name, o.Detail)
	}
	if rep.OK && owned {
		os.RemoveAll(r.dir)
		rep.Dir = ""
	}
	return rep, nil
}

// RunAll executes every scenario in PlanNames order with the same seed.
func RunAll(cfg Config) ([]*Report, error) {
	var reps []*Report
	for _, name := range PlanNames() {
		c := cfg
		c.Plan = name
		rep, err := Run(c)
		if err != nil {
			return reps, fmt.Errorf("chaos: plan %s: %w", name, err)
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

type runner struct {
	cfg  Config
	sup  *Supervisor
	dir  string
	logf func(string, ...any)
}

func (r *runner) policy(seed int64) retry.Policy {
	return retry.Policy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Seed: seed}
}

func (r *runner) client(addr string, seed int64) *schedclient.Client {
	return schedclient.New(schedclient.Config{
		BaseURL: "http://" + addr,
		Retry:   r.policy(seed),
		Seed:    seed,
		Logf:    r.logf,
	})
}

// start launches one schedd child on a fresh port and waits for it to
// answer /healthz.
func (r *runner) start(ctx context.Context, extra ...string) (*Child, error) {
	addr, err := FreeAddr()
	if err != nil {
		return nil, err
	}
	return r.startOn(ctx, addr, extra...)
}

func (r *runner) startOn(ctx context.Context, addr string, extra ...string) (*Child, error) {
	c, err := r.sup.Start(addr, extra...)
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := c.WaitReady(rctx); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

func points(p Plan) int { return len(p.Archs) * len(p.Workloads) }

func sweepReq(p Plan, journal string) serve.SweepRequest {
	return serve.SweepRequest{Archs: p.Archs, Workloads: p.Workloads, Workers: 2, Journal: journal}
}

// rawPost is the un-hardened HTTP path, for requests whose raw fate
// (connection error on kill, 429 on shed) is itself the observation.
func rawPost(ctx context.Context, url string, v any) (int, []byte, http.Header, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	return resp.StatusCode, data, resp.Header, nil
}

// killResume: SIGKILL a child mid-sweep at the plan's journal record
// count, restart against the same journal, and verify nothing durable
// was lost, nothing resumed was recomputed, and the final answer is
// byte-identical to an undisturbed run.
func (r *runner) killResume(ctx context.Context, p Plan) (*Report, error) {
	jpath := filepath.Join(r.dir, "chaos.jsonl")
	os.Remove(jpath) // a stale journal would resume instead of running
	flags := []string{
		"-journal-dir", r.dir,
		"-sweep-point-delay", p.PointDelay.String(),
	}
	c1, err := r.start(ctx, flags...)
	if err != nil {
		return nil, err
	}
	defer c1.Stop()

	// Fire the sweep; its connection dies with the child, which is fine —
	// the journal, not this response, is the durable record.
	go rawPost(ctx, "http://"+c1.Addr+"/v1/sweep", sweepReq(p, "chaos"))

	if _, err := WaitJournalRecords(ctx, c1, jpath, p.KillAtRecord); err != nil {
		return nil, err
	}
	r.logf("chaos: kill-resume: SIGKILL pid %d at >=%d journal records", c1.Pid(), p.KillAtRecord)
	if err := c1.Kill(); err != nil {
		return nil, err
	}
	c1.Stop()

	postCrash, err := os.ReadFile(jpath)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading post-crash journal: %w", err)
	}
	done, other := CountRecords(postCrash)

	// Restart on the SAME address: recovery includes winning the port back.
	c2, err := r.startOn(ctx, c1.Addr, flags...)
	if err != nil {
		return nil, err
	}
	defer c2.Stop()

	cl := r.client(c2.Addr, p.Seed)
	resp, serr := cl.Sweep(ctx, sweepReq(p, "chaos"))
	final, err := os.ReadFile(jpath)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading final journal: %w", err)
	}
	status, rz, rzErr := cl.Readyz(ctx)

	rep := &Report{}
	rep.Oracles = append(rep.Oracles,
		oracle("kill-landed", done >= 1 && done < points(p) && other == 0,
			"SIGKILL left %d done + %d other records of %d points", done, other, points(p)),
		oracle("resume-accepted", serr == nil, "re-POST after restart: err=%v", serr),
		ResumeIdentity(postCrash, final),
		NoLostAcceptedWork(done, resp, points(p)),
	)
	if serr == nil {
		rep.Oracles = append(rep.Oracles, RowsIdentity(resp.Rows, p.Archs, p.Workloads, 2))
	}
	if rzErr == nil {
		rep.Oracles = append(rep.Oracles, ReadyzTruthful("after-restart", status, rz, "ready"))
	} else {
		rep.Oracles = append(rep.Oracles, oracle("readyz-after-restart", false, "readyz probe failed: %v", rzErr))
	}
	return rep, nil
}

// termDrain: SIGTERM mid-sweep and verify the drain contract — readyz
// flips to a truthful 503 "draining" while the in-flight sweep runs to
// completion, the process exits 0, and a restart resumes every point
// from the journal without recomputing anything.
func (r *runner) termDrain(ctx context.Context, p Plan) (*Report, error) {
	jpath := filepath.Join(r.dir, "drain.jsonl")
	os.Remove(jpath)
	flags := []string{
		"-journal-dir", r.dir,
		"-sweep-point-delay", p.PointDelay.String(),
		"-drain-timeout", "20s",
		"-drain-grace", "2s",
	}
	c1, err := r.start(ctx, flags...)
	if err != nil {
		return nil, err
	}
	defer c1.Stop()

	type sweepAnswer struct {
		status int
		body   []byte
		err    error
	}
	ansc := make(chan sweepAnswer, 1)
	go func() {
		status, body, _, err := rawPost(ctx, "http://"+c1.Addr+"/v1/sweep", sweepReq(p, "drain"))
		ansc <- sweepAnswer{status, body, err}
	}()

	if _, err := WaitJournalRecords(ctx, c1, jpath, p.KillAtRecord); err != nil {
		return nil, err
	}
	r.logf("chaos: term-drain: SIGTERM pid %d mid-sweep", c1.Pid())
	if err := c1.Term(); err != nil {
		return nil, err
	}

	// Probe readiness inside the drain-grace window: the listener is
	// still up, the sweep is still running, readyz must already say so.
	drainRz := oracle("readyz-draining", false, "never observed a draining readyz before exit")
	probe := r.client(c1.Addr, p.Seed)
	for !c1.Exited() {
		status, rz, err := probe.Readyz(ctx)
		if err == nil && rz.Status != "ready" {
			drainRz = ReadyzTruthful("draining", status, rz, "draining")
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	code, _ := c1.WaitExit(wctx)
	ans := <-ansc

	var resp1 serve.SweepResponse
	sweepServed := ans.err == nil && ans.status == http.StatusOK &&
		json.Unmarshal(ans.body, &resp1) == nil && len(resp1.Rows) == points(p)

	postDrain, err := os.ReadFile(jpath)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading post-drain journal: %w", err)
	}
	done, other := CountRecords(postDrain)

	c2, err := r.startOn(ctx, c1.Addr, flags...)
	if err != nil {
		return nil, err
	}
	defer c2.Stop()
	cl := r.client(c2.Addr, p.Seed)
	resp2, serr := cl.Sweep(ctx, sweepReq(p, "drain"))
	final, err := os.ReadFile(jpath)
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	rep.Oracles = append(rep.Oracles,
		drainRz,
		oracle("drain-exit-clean", code == 0, "exit code %d after SIGTERM (want 0: everything drained)", code),
		oracle("inflight-sweep-served", sweepServed,
			"in-flight sweep during drain: err=%v status=%d rows=%d (want 200 with all %d points)",
			ans.err, ans.status, len(resp1.Rows), points(p)),
		oracle("drain-journal-complete", done == points(p) && other == 0,
			"journal after clean drain holds %d done + %d other records, want %d done", done, other, points(p)),
		oracle("resume-accepted", serr == nil, "re-POST after restart: err=%v", serr),
		ResumeIdentity(postDrain, final),
		NoLostAcceptedWork(done, resp2, points(p)),
	)
	if serr == nil {
		rep.Oracles = append(rep.Oracles, RowsIdentity(resp2.Rows, p.Archs, p.Workloads, 2))
	}
	return rep, nil
}

// fsFaults runs the journaled sweep in-process against a filesystem
// that fails on the plan's schedule (ENOSPC, torn writes, fsync
// errors), then resumes on a healthy filesystem and verifies bounded
// loss, prefix preservation and a byte-identical final answer.
func (r *runner) fsFaults(ctx context.Context, p Plan) (*Report, error) {
	jobs, err := buildJobs(p)
	if err != nil {
		return nil, err
	}
	jpath := filepath.Join(r.dir, "fsfaults.jsonl")
	os.Remove(jpath)

	fsys := journal.NewFaultFS(journal.OS, p.FSFaults...)
	j1, prior1, err := sweep.OpenJournalFS(fsys, jpath)
	if err != nil {
		return nil, fmt.Errorf("chaos: opening faulted journal: %w", err)
	}
	if len(prior1) != 0 {
		j1.Close()
		return nil, fmt.Errorf("chaos: fresh journal has %d prior records", len(prior1))
	}
	_, faultedErr := sweep.RunJournaled(ctx, j1, prior1, jobs, 2, nil)
	j1.Close()

	post, err := os.ReadFile(jpath)
	if err != nil {
		return nil, err
	}
	done, other := CountRecords(post)
	writeFaults := 0
	for _, f := range p.FSFaults {
		if f.Op == journal.OpWrite {
			writeFaults++
		}
	}

	j2, prior2, err := sweep.OpenJournal(jpath)
	reopenOK := err == nil
	var rows []sweep.Row
	var resumeErr error
	if reopenOK {
		rows, resumeErr = sweep.RunJournaled(ctx, j2, prior2, jobs, 2, nil)
		j2.Close()
	}
	final, err := os.ReadFile(jpath)
	if err != nil {
		return nil, err
	}
	fdone, _ := CountRecords(final)

	rep := &Report{}
	rep.Oracles = append(rep.Oracles,
		oracle("faults-fired", len(fsys.Fired) >= 1,
			"%d of %d scheduled faults fired (%d surfaced: %v)", len(fsys.Fired), len(p.FSFaults), len(p.FSFaults), faultedErr),
		oracle("fault-surfaced", faultedErr != nil,
			"faulted run's append error: %v (a silent journal failure would be a lie)", faultedErr),
		oracle("bounded-loss", other == 0 && points(p)-done <= writeFaults,
			"faulted journal holds %d/%d done records (+%d other); %d write faults may each lose at most one",
			done, points(p), other, writeFaults),
		oracle("healthy-reopen", reopenOK && resumeErr == nil,
			"reopen on a healthy filesystem: open err=%v, resume err=%v", err, resumeErr),
		ResumeIdentity(post, final),
		oracle("resume-completes", fdone == points(p),
			"final journal holds %d/%d done records", fdone, points(p)),
	)
	if reopenOK && resumeErr == nil {
		rep.Oracles = append(rep.Oracles,
			oracle("resumed-not-recomputed", len(prior2) == done,
				"resume read %d journal records, %d were durable", len(prior2), done),
			RowsIdentity(rows, p.Archs, p.Workloads, 2))
	}
	return rep, nil
}

func buildJobs(p Plan) ([]sweep.Job, error) {
	archs, skipped := sweep.PresetArchs(p.Archs...)
	if len(skipped) > 0 {
		return nil, fmt.Errorf("chaos: unknown arch presets %v", skipped)
	}
	exps := make([]workloads.Experiment, 0, len(p.Workloads))
	for _, name := range p.Workloads {
		e, err := workloads.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		exps = append(exps, e)
	}
	return sweep.Grid(archs, exps), nil
}

// proxy drives compare traffic through the fault-injecting proxy and
// verifies the hardened client plus the server's idempotency layer
// deliver exactly-once results despite resets, truncations, duplicates
// and latency.
func (r *runner) proxy(ctx context.Context, p Plan) (*Report, error) {
	c1, err := r.start(ctx)
	if err != nil {
		return nil, err
	}
	defer c1.Stop()

	px, err := StartProxy(c1.Addr, p.Proxy, r.logf)
	if err != nil {
		return nil, err
	}
	defer px.Close()

	cl := r.client(px.Addr(), p.Seed)
	failures := 0
	var firstErr error
	for i := 0; i < p.ProxyCalls; i++ {
		req := serve.CompareRequest{
			Workload: p.Workloads[i%len(p.Workloads)],
			Arch:     p.Archs[(i/len(p.Workloads))%len(p.Archs)],
		}
		if _, err := cl.Compare(ctx, req); err != nil {
			failures++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	st := cl.Stats()
	events := px.Events()

	rep := &Report{ProxyEvents: events}
	rep.Oracles = append(rep.Oracles,
		oracle("all-calls-answered", failures == 0,
			"%d of %d calls failed through the proxy (first: %v)", failures, p.ProxyCalls, firstErr),
		oracle("faults-injected", len(events) > 0, "%d proxy faults injected", len(events)),
		ExactlyOnce(st, events),
	)
	return rep, nil
}

// overload saturates a 1-worker, 1-deep admission queue with paced
// journaled sweeps and verifies readyz reports saturation truthfully,
// the overflow request is shed with 429 + Retry-After, and readiness
// recovers once the queue drains.
func (r *runner) overload(ctx context.Context, p Plan) (*Report, error) {
	if stale, _ := filepath.Glob(filepath.Join(r.dir, "ol-*.jsonl")); stale != nil {
		for _, path := range stale {
			os.Remove(path)
		}
	}
	flags := []string{
		"-journal-dir", r.dir,
		"-sweep-point-delay", p.PointDelay.String(),
		"-workers", "1",
		"-queue", "1",
	}
	c1, err := r.start(ctx, flags...)
	if err != nil {
		return nil, err
	}
	defer c1.Stop()
	base := "http://" + c1.Addr

	type ans struct {
		status int
		body   []byte
		err    error
	}
	post := func(journal string) chan ans {
		ch := make(chan ans, 1)
		go func() {
			status, body, _, err := rawPost(ctx, base+"/v1/sweep", sweepReq(p, journal))
			ch <- ans{status, body, err}
		}()
		return ch
	}

	// A takes the worker slot; wait until its journal proves it is running.
	ansA := post("ol-a")
	if _, err := WaitJournalRecords(ctx, c1, filepath.Join(r.dir, "ol-a.jsonl"), 1); err != nil {
		return nil, err
	}
	// B fills the one queue slot.
	ansB := post("ol-b")

	probe := r.client(c1.Addr, p.Seed)
	satRz := oracle("readyz-saturated", false, "never observed a saturated readyz")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		status, rz, err := probe.Readyz(ctx)
		if err == nil && rz.Status == "saturated" {
			satRz = ReadyzTruthful("saturated", status, rz, "saturated")
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// C must be shed while the slot and the queue are both taken.
	shed := oracle("load-shed", false, "overflow request was never shed with 429")
	for i := 0; i < 10; i++ {
		status, _, hdr, err := rawPost(ctx, base+"/v1/sweep", sweepReq(p, fmt.Sprintf("ol-c%d", i)))
		if err == nil && status == http.StatusTooManyRequests {
			shed = oracle("load-shed", hdr.Get("Retry-After") != "",
				"overflow request shed with 429, Retry-After=%q", hdr.Get("Retry-After"))
			break
		}
		if err == nil && status == http.StatusOK {
			// The queue drained under us; the accepted sweep proves it.
			shed = oracle("load-shed", false, "overflow request %d was accepted (200), queue never stayed full", i)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	a, b := <-ansA, <-ansB
	okSweep := func(x ans) bool {
		var resp serve.SweepResponse
		return x.err == nil && x.status == http.StatusOK &&
			json.Unmarshal(x.body, &resp) == nil && len(resp.Rows) == points(p)
	}

	readyRz := oracle("readyz-recovered", false, "readyz never returned to ready after the queue drained")
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		status, rz, err := probe.Readyz(ctx)
		if err == nil && rz.Status == "ready" {
			readyRz = ReadyzTruthful("recovered", status, rz, "ready")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	rep := &Report{}
	rep.Oracles = append(rep.Oracles,
		satRz,
		shed,
		oracle("admitted-sweeps-complete", okSweep(a) && okSweep(b),
			"sweep A: err=%v status=%d; sweep B: err=%v status=%d (want both 200 with %d rows)",
			a.err, a.status, b.err, b.status, points(p)),
		readyRz,
	)
	return rep, nil
}

// breaker runs a child whose functional machine fails every run inside
// a finite fault window, probes it until the per-target circuit opens
// and then recovers, and verifies the open/recover timeline respects
// the configured cooldown.
func (r *runner) breaker(ctx context.Context, p Plan) (*Report, error) {
	flags := []string{
		"-retry-attempts", "2",
		"-retry-base", "1ms",
		"-breaker-threshold", "2",
		"-breaker-cooldown", p.BreakerCooldown.String(),
		"-fault-seed", fmt.Sprint(p.Seed),
		"-fault-fail-every", "1",
		"-fault-fail-runs", fmt.Sprint(p.BreakerFailRuns),
	}
	c1, err := r.start(ctx, flags...)
	if err != nil {
		return nil, err
	}
	defer c1.Stop()

	var probes []ProbeEvent
	start := time.Now()
	sawOpen := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		status, body, _, err := rawPost(ctx, "http://"+c1.Addr+"/v1/compare", serve.CompareRequest{Workload: "E1"})
		if err != nil {
			return nil, fmt.Errorf("chaos: breaker probe: %w", err)
		}
		var env struct {
			Class string `json:"class"`
		}
		json.Unmarshal(body, &env)
		probes = append(probes, ProbeEvent{T: time.Since(start), Status: status, Class: env.Class})
		if env.Class == "circuit_open" {
			sawOpen = true
		}
		if sawOpen && status == http.StatusOK {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	rep := &Report{Probes: probes}
	rep.Oracles = append(rep.Oracles, BreakerRecovery(probes, p.BreakerCooldown))
	return rep, nil
}
