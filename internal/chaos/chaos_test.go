package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"cds/internal/schedclient"
	"cds/internal/serve"
	"cds/internal/sweep"
)

// TestMain makes this test binary double as the schedd daemon: when the
// supervisor re-executes it with daemon.ChildEnv set, MaybeChild runs
// the real daemon and never returns. That is what lets the scenario
// tests below supervise genuine child processes without building
// cmd/schedd first.
func TestMain(m *testing.M) {
	MaybeChild()
	os.Exit(m.Run())
}

func TestDerivePlanDeterministic(t *testing.T) {
	for _, name := range PlanNames() {
		a, err := DerivePlan(name, 42)
		if err != nil {
			t.Fatalf("DerivePlan(%s): %v", name, err)
		}
		b, err := DerivePlan(name, 42)
		if err != nil {
			t.Fatalf("DerivePlan(%s): %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plan %s is not deterministic:\n%+v\n%+v", name, a, b)
		}
		if got, _ := json.Marshal(a); len(got) == 0 {
			t.Errorf("plan %s does not marshal", name)
		}
	}
	if _, err := DerivePlan("no-such-plan", 1); err == nil {
		t.Fatal("unknown plan derived without error")
	}
}

func TestDerivePlanBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		kr, _ := DerivePlan("kill-resume", seed)
		if kr.KillAtRecord < 2 || kr.KillAtRecord > gridSize-4 {
			t.Errorf("seed %d: kill-resume KillAtRecord %d outside [2, %d]", seed, kr.KillAtRecord, gridSize-4)
		}
		ff, _ := DerivePlan("fs-faults", seed)
		if len(ff.FSFaults) < 1 || len(ff.FSFaults) > 3 {
			t.Errorf("seed %d: fs-faults has %d faults, want 1..3", seed, len(ff.FSFaults))
		}
		for _, f := range ff.FSFaults {
			if f.N < 2 || f.N > gridSize {
				t.Errorf("seed %d: fault %+v outside the first %d appends", seed, f, gridSize)
			}
		}
		px, _ := DerivePlan("proxy", seed)
		if px.Proxy.ResetEveryN < 3 || px.ProxyCalls < px.Proxy.DuplicateEveryN {
			t.Errorf("seed %d: proxy plan %+v cannot fire every fault class", seed, px)
		}
	}
}

func TestCompletePrefixAndCountRecords(t *testing.T) {
	rec := func(status, job string) string {
		return fmt.Sprintf(`{"status":%q,"row":{"job":%q,"fb_bytes":1}}`+"\n", status, job)
	}
	data := []byte(rec(sweep.StatusDone, "a") + rec("canceled", "b") + rec(sweep.StatusDone, "c") + `{"status":"done","torn`)
	prefix := CompletePrefix(data)
	if !bytes.HasSuffix(prefix, []byte("\n")) || bytes.Contains(prefix, []byte("torn")) {
		t.Fatalf("CompletePrefix kept the torn tail: %q", prefix)
	}
	done, other := CountRecords(data)
	if done != 2 || other != 1 {
		t.Fatalf("CountRecords = %d done, %d other; want 2, 1", done, other)
	}
	if got := CompletePrefix([]byte("no newline at all")); got != nil {
		t.Fatalf("CompletePrefix of a tail-only buffer = %q, want nil", got)
	}
}

func TestResumeIdentityOracle(t *testing.T) {
	pre := []byte("one\ntwo\nthree-torn")
	if r := ResumeIdentity(pre, []byte("one\ntwo\nthree\nfour\n")); !r.OK {
		t.Fatalf("prefix-preserving resume judged bad: %s", r.Detail)
	}
	if r := ResumeIdentity(pre, []byte("one\nTWO\nthree\n")); r.OK {
		t.Fatal("a rewritten record passed the resume-identity oracle")
	}
	if r := ResumeIdentity(pre, []byte("one\n")); r.OK {
		t.Fatal("a shrunken journal passed the resume-identity oracle")
	}
}

func TestNoLostAcceptedWorkOracle(t *testing.T) {
	rows := []sweep.Row{{Job: "a"}, {Job: "b"}}
	if r := NoLostAcceptedWork(1, &serve.SweepResponse{Rows: rows, Resumed: 1}, 2); !r.OK {
		t.Fatalf("good resume judged bad: %s", r.Detail)
	}
	if r := NoLostAcceptedWork(1, &serve.SweepResponse{Rows: rows, Resumed: 0}, 2); r.OK {
		t.Fatal("recomputed durable work passed the oracle")
	}
	if r := NoLostAcceptedWork(1, &serve.SweepResponse{Rows: rows[:1], Resumed: 1}, 2); r.OK {
		t.Fatal("a missing point passed the oracle")
	}
	if r := NoLostAcceptedWork(0, &serve.SweepResponse{Rows: []sweep.Row{{Job: "a", Err: "boom"}}, Resumed: 0}, 1); r.OK {
		t.Fatal("an errored point passed the oracle")
	}
	if r := NoLostAcceptedWork(0, nil, 1); r.OK {
		t.Fatal("a missing answer passed the oracle")
	}
}

func TestReadyzTruthfulOracle(t *testing.T) {
	ok := ReadyzTruthful("t", 200, serve.ReadyzResponse{Status: "ready", QueueCapacity: 8}, "ready")
	if !ok.OK {
		t.Fatalf("ready/200 judged bad: %s", ok.Detail)
	}
	if r := ReadyzTruthful("t", 200, serve.ReadyzResponse{Status: "draining"}, "draining"); r.OK {
		t.Fatal("a 200 draining answer passed: readyz lied to the load balancer")
	}
	if r := ReadyzTruthful("t", 503, serve.ReadyzResponse{Status: "saturated", QueueDepth: 3, QueueCapacity: 8}, "saturated"); r.OK {
		t.Fatal("saturated with a half-empty queue passed")
	}
}

func TestBreakerRecoveryOracle(t *testing.T) {
	cool := 200 * time.Millisecond
	good := []ProbeEvent{
		{T: 0, Status: 503, Class: "transient_fault"},
		{T: 20 * time.Millisecond, Status: 503, Class: "circuit_open"},
		{T: 120 * time.Millisecond, Status: 503, Class: "circuit_open"},
		{T: 260 * time.Millisecond, Status: 200},
	}
	if r := BreakerRecovery(good, cool); !r.OK {
		t.Fatalf("good timeline judged bad: %s", r.Detail)
	}
	if r := BreakerRecovery(good[:3], cool); r.OK {
		t.Fatal("a never-recovered timeline passed")
	}
	if r := BreakerRecovery([]ProbeEvent{{T: 0, Status: 200}}, cool); r.OK {
		t.Fatal("a timeline with no open passed")
	}
	early := []ProbeEvent{
		{T: 0, Status: 503, Class: "circuit_open"},
		{T: 10 * time.Millisecond, Status: 200},
	}
	if r := BreakerRecovery(early, cool); r.OK {
		t.Fatal("a recovery faster than the cooldown permits passed")
	}
}

func TestExactlyOnceOracle(t *testing.T) {
	ev := []ProxyEvent{{1, "reset"}, {2, "truncate"}, {3, "duplicate"}}
	good := schedclient.Stats{Calls: 5, Attempts: 7, Accepted: 5, Replayed: 2}
	if r := ExactlyOnce(good, ev); !r.OK {
		t.Fatalf("good ledger judged bad: %s", r.Detail)
	}
	if r := ExactlyOnce(schedclient.Stats{Calls: 5, Attempts: 7, Accepted: 4, Replayed: 2}, ev); r.OK {
		t.Fatal("a lost call passed")
	}
	if r := ExactlyOnce(schedclient.Stats{Calls: 5, Attempts: 5, Accepted: 5, Replayed: 2}, ev); r.OK {
		t.Fatal("truncations without a single retry passed")
	}
	if r := ExactlyOnce(schedclient.Stats{Calls: 5, Attempts: 7, Accepted: 5, Replayed: 0}, ev); r.OK {
		t.Fatal("resets and duplicates with zero replays passed — double-run work")
	}
}

// TestProxyFaultScheduleDeterministic drives a trivial backend through
// the proxy with a non-retrying client and checks the injected faults
// are exactly the pure function of the request index the plan promises.
func TestProxyFaultScheduleDeterministic(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true,"padding":"0123456789012345678901234567890123456789"}`))
	}))
	defer backend.Close()
	plan := ProxyPlan{ResetEveryN: 3, TruncateEveryN: 7, DuplicateEveryN: 5}

	run := func() []ProxyEvent {
		px, err := StartProxy(backend.Listener.Addr().String(), plan, t.Logf)
		if err != nil {
			t.Fatalf("StartProxy: %v", err)
		}
		defer px.Close()
		// A fresh connection per request: no pooled-connection retries,
		// so request i maps to proxy index i.
		client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		for i := 1; i <= 21; i++ {
			resp, err := client.Post("http://"+px.Addr(), "application/json", bytes.NewReader([]byte("{}")))
			if err != nil {
				if plan.ResetEveryN > 0 && i%plan.ResetEveryN == 0 {
					continue // the scheduled reset, seen as a transport error
				}
				t.Fatalf("request %d unexpectedly failed: %v", i, err)
			}
			_, rerr := io_ReadAll(resp.Body)
			resp.Body.Close()
			truncated := i%plan.TruncateEveryN == 0 && i%plan.ResetEveryN != 0
			if truncated && rerr == nil {
				t.Fatalf("request %d should have been truncated", i)
			}
			if !truncated && rerr != nil {
				t.Fatalf("request %d body read failed: %v", i, rerr)
			}
		}
		return px.Events()
	}

	first := run()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault schedule is not deterministic:\n%v\n%v", first, second)
	}
	var want []ProxyEvent
	for i := 1; i <= 21; i++ {
		switch {
		case i%plan.ResetEveryN == 0:
			want = append(want, ProxyEvent{i, "reset"})
		case i%plan.TruncateEveryN == 0:
			want = append(want, ProxyEvent{i, "truncate"})
		case i%plan.DuplicateEveryN == 0:
			want = append(want, ProxyEvent{i, "duplicate"})
		}
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("events = %v, want the plan's pure schedule %v", first, want)
	}
}

func io_ReadAll(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// TestSupervisorRunsRealChild exercises the re-exec seam end to end:
// start a real schedd child, see it become ready, drain it with
// SIGTERM, and get exit status 0 back.
func TestSupervisorRunsRealChild(t *testing.T) {
	sup := &Supervisor{Logf: t.Logf}
	addr, err := FreeAddr()
	if err != nil {
		t.Fatal(err)
	}
	c, err := sup.Start(addr, "-drain-timeout", "5s")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if err := c.Term(); err != nil {
		t.Fatalf("Term: %v", err)
	}
	code, err := c.WaitExit(ctx)
	if code != 0 || err != nil {
		t.Fatalf("exit = %d, %v; want clean 0 after SIGTERM drain (stderr:\n%s)", code, err, c.Stderr())
	}
}

// TestKillResumeScenario is the harness's own end-to-end check: the
// full kill-resume drill against real child processes must pass, and
// its report must be reproducible (same plan from the same seed).
func TestKillResumeScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos drill")
	}
	rep, err := Run(Config{Seed: 1, Plan: "kill-resume", Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, o := range rep.Oracles {
		if !o.OK {
			t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
		}
	}
	if !rep.OK {
		t.Fatal("kill-resume drill failed")
	}
	again, err := DerivePlan("kill-resume", 1)
	if err != nil || !reflect.DeepEqual(rep.Plan, again) {
		t.Fatalf("report plan %+v does not rederive from its seed (%+v, %v)", rep.Plan, again, err)
	}
}

// TestFSFaultsScenario runs the in-process filesystem-fault drill.
func TestFSFaultsScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep chaos drill")
	}
	rep, err := Run(Config{Seed: 3, Plan: "fs-faults", Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, o := range rep.Oracles {
		if !o.OK {
			t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
		}
	}
}
