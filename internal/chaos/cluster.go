package chaos

// Fleet drills: a schedrouter child fronting N schedd worker children,
// all real processes supervised through the same re-exec seam as the
// single-daemon scenarios. The router-* plans verify the cluster-level
// recovery contracts — failover absorbs a SIGKILLed owner, draining
// workers leave the ring without dropping in-flight work, and one
// worker's result cache serves the whole fleet — with the same
// reproducibility rule as everything else here: (plan, seed) derives
// the entire fault schedule, and the harness predicts routing from its
// own copy of the ring, so a disagreement between prediction and
// observation is itself a finding.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cds/internal/cluster"
	"cds/internal/serve"
	"cds/internal/workloads"
)

// fleetHarness is one running fleet: N schedd workers plus the router.
type fleetHarness struct {
	r       *runner
	ids     []string // "w0".."wN-1"
	addrs   []string // worker addresses, same order
	dirs    []string // per-worker journal dirs, same order
	wflags  [][]string
	workers []*Child
	router  *Child
	// ring is the harness's own copy of the router's ring (same IDs,
	// same vnodes): routing predictions come from here.
	ring  *cluster.Ring
	peers string
}

// startFleet launches p.FleetWorkers schedd children (each with its own
// journal dir, a worker identity and the full peer list for cache
// fills) plus a schedrouter child, then waits until the router reports
// every worker as a routing candidate.
func (r *runner) startFleet(ctx context.Context, p Plan, workerExtra []string) (*fleetHarness, error) {
	if p.FleetWorkers <= 0 {
		return nil, fmt.Errorf("chaos: plan %s has no fleet size", p.Name)
	}
	fl := &fleetHarness{r: r}
	for i := 0; i < p.FleetWorkers; i++ {
		id := fmt.Sprintf("w%d", i)
		addr, err := FreeAddr()
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(r.dir, id)
		// A stale journal from an earlier run would resume instead of
		// running; fleet drills always start from clean worker dirs.
		os.RemoveAll(dir)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		fl.ids = append(fl.ids, id)
		fl.addrs = append(fl.addrs, addr)
		fl.dirs = append(fl.dirs, dir)
	}
	parts := make([]string, len(fl.ids))
	for i := range fl.ids {
		parts[i] = fl.ids[i] + "=" + fl.addrs[i]
	}
	fl.peers = strings.Join(parts, ",")
	fl.ring = cluster.NewRing(cluster.DefaultVnodes, fl.ids...)

	ok := false
	defer func() {
		if !ok {
			fl.Stop()
		}
	}()
	for i := range fl.ids {
		flags := append([]string{
			"-journal-dir", fl.dirs[i],
			"-worker-id", fl.ids[i],
			"-peers", fl.peers,
		}, workerExtra...)
		fl.wflags = append(fl.wflags, flags)
		c, err := r.startOn(ctx, fl.addrs[i], flags...)
		if err != nil {
			return nil, err
		}
		fl.workers = append(fl.workers, c)
	}

	// The router always re-executes the current binary (cluster.ChildEnv
	// → cluster.Main), even when -schedd points workers at an external
	// daemon build.
	raddr, err := FreeAddr()
	if err != nil {
		return nil, err
	}
	rsup := &Supervisor{ChildEnvVar: cluster.ChildEnv, Logf: r.logf}
	rc, err := rsup.Start(raddr,
		"-workers", fl.peers,
		"-probe-interval", "25ms",
		"-probe-timeout", "500ms",
		"-eject-threshold", "2",
		"-readmit-cooldown", "250ms",
		"-failover-attempts", "0",
		"-seed", fmt.Sprint(p.Seed),
		"-drain-timeout", "5s",
	)
	if err != nil {
		return nil, err
	}
	fl.router = rc
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := rc.WaitReady(rctx); err != nil {
		return nil, err
	}
	if err := fl.waitEligible(ctx, len(fl.ids), 10*time.Second); err != nil {
		return nil, err
	}
	ok = true
	return fl, nil
}

// Stop SIGKILLs and reaps every fleet process.
func (fl *fleetHarness) Stop() {
	if fl.router != nil {
		fl.router.Stop()
	}
	for _, c := range fl.workers {
		if c != nil {
			c.Stop()
		}
	}
}

// restart relaunches worker i on its original address with its original
// flags — same identity, same journal dir, fresh process.
func (fl *fleetHarness) restart(ctx context.Context, i int) (*Child, error) {
	c, err := fl.r.startOn(ctx, fl.addrs[i], fl.wflags[i]...)
	if err != nil {
		return nil, err
	}
	fl.workers[i] = c
	return c, nil
}

func (fl *fleetHarness) base() string { return "http://" + fl.router.Addr }

func (fl *fleetHarness) index(id string) int {
	for i, x := range fl.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// snapshot reads the router's /v1/ring fleet view.
func (fl *fleetHarness) snapshot(ctx context.Context) (cluster.RingStatus, error) {
	var snap cluster.RingStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fl.base()+"/v1/ring", nil)
	if err != nil {
		return snap, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

func workerState(snap cluster.RingStatus, id string) cluster.WorkerStatus {
	for _, ws := range snap.Workers {
		if ws.ID == id {
			return ws
		}
	}
	return cluster.WorkerStatus{}
}

// waitEligible polls the router until n workers are routing candidates.
func (fl *fleetHarness) waitEligible(ctx context.Context, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		snap, err := fl.snapshot(ctx)
		if err == nil && snap.Eligible == n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap, _ := fl.snapshot(ctx)
	return fmt.Errorf("chaos: router never saw %d eligible workers (last: %d of %d)",
		n, snap.Eligible, len(snap.Workers))
}

// waitWorkerStatus polls the router's fleet view until worker id is in
// the wanted state, returning the matching snapshot row.
func (fl *fleetHarness) waitWorkerStatus(ctx context.Context, id, want string, timeout time.Duration) (cluster.WorkerStatus, error) {
	deadline := time.Now().Add(timeout)
	var last cluster.WorkerStatus
	for time.Now().Before(deadline) {
		snap, err := fl.snapshot(ctx)
		if err == nil {
			last = workerState(snap, id)
			if last.State == want {
				return last, nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return last, fmt.Errorf("chaos: worker %s never became %q at the router (last %q)", id, want, last.State)
}

// compareKeyFor resolves a workload name to its router routing key —
// the partition fingerprint, exactly as compareRoutingKey does.
func compareKeyFor(name string) ([]byte, error) {
	e, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return cluster.CompareKey(e.Part.Fingerprint()), nil
}

// firstOther returns the first worker on key's ring walk that is not
// excluded — the exact replica a single ejection must shift keys to.
func (fl *fleetHarness) firstOther(key []byte, exclude string) string {
	for _, id := range fl.ring.Lookup(key, 0) {
		if id != exclude {
			return id
		}
	}
	return ""
}

// postCompareVia POSTs one compare (optionally idempotency-keyed) and
// decodes the answer when it is a 200.
func postCompareVia(ctx context.Context, base string, creq serve.CompareRequest, idemKey string) (int, http.Header, serve.CompareResponse, error) {
	var out serve.CompareResponse
	body, err := json.Marshal(creq)
	if err != nil {
		return 0, nil, out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/compare", bytes.NewReader(body))
	if err != nil {
		return 0, nil, out, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, out, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return resp.StatusCode, resp.Header, out, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			return resp.StatusCode, resp.Header, out, fmt.Errorf("chaos: decoding compare answer: %w", err)
		}
	}
	return resp.StatusCode, resp.Header, out, nil
}

func rowsClean(resp serve.SweepResponse) bool {
	for _, row := range resp.Rows {
		if row.Err != "" {
			return false
		}
	}
	return true
}

// routerKillWorker: route traffic through the fleet, SIGKILL the ring
// owner of an in-flight journaled sweep, and verify the cluster
// contracts — the sweep is absorbed by failover to the exact next
// replica, the dead worker is ejected and only its keys move, a restart
// readmits the same identity under a new PID, and a re-posted sweep
// resumes the dead worker's journal byte-identically.
func (r *runner) routerKillWorker(ctx context.Context, p Plan) (*Report, error) {
	fl, err := r.startFleet(ctx, p, []string{"-sweep-point-delay", p.PointDelay.String()})
	if err != nil {
		return nil, err
	}
	defer fl.Stop()
	rep := &Report{}

	// Warm routing: every workload's compare answered by the exact
	// worker the harness's own ring predicts, in one attempt. This is
	// the cross-process determinism oracle — the router and the harness
	// compute the ring independently and must agree.
	warm := oracle("warm-routing", true, "all %d workloads routed to their predicted ring owners in one attempt", len(p.Workloads))
	for _, name := range p.Workloads {
		key, err := compareKeyFor(name)
		if err != nil {
			return nil, err
		}
		want, _ := fl.ring.Owner(key)
		status, hdr, cresp, err := postCompareVia(ctx, fl.base(), serve.CompareRequest{Workload: name}, "")
		switch {
		case err != nil || status != http.StatusOK:
			warm = oracle("warm-routing", false, "compare %s: status=%d err=%v", name, status, err)
		case cresp.WorkerID != want:
			warm = oracle("warm-routing", false, "compare %s answered by %s, ring predicts %s", name, cresp.WorkerID, want)
		case hdr.Get(cluster.AttemptsHeader) != "1":
			warm = oracle("warm-routing", false, "compare %s took %s attempts with a healthy fleet", name, hdr.Get(cluster.AttemptsHeader))
		}
		if !warm.OK {
			break
		}
	}
	rep.Oracles = append(rep.Oracles, warm)

	// Exactly-once through the router: the same Idempotency-Key twice
	// lands on the same ring owner, and the second answer must be the
	// replay store's, not a second run.
	idemKey := fmt.Sprintf("chaos-fleet-%d", p.Seed)
	_, _, _, err1 := postCompareVia(ctx, fl.base(), serve.CompareRequest{Workload: p.Workloads[0]}, idemKey)
	_, hdr2, _, err2 := postCompareVia(ctx, fl.base(), serve.CompareRequest{Workload: p.Workloads[0]}, idemKey)
	rep.Oracles = append(rep.Oracles, oracle("idempotent-replay-via-router",
		err1 == nil && err2 == nil && hdr2.Get("Idempotency-Replayed") == "true",
		"double POST with one key through the router: errs=%v/%v replayed=%q",
		err1, err2, hdr2.Get("Idempotency-Replayed")))

	// A journaled sweep routed to its ring owner; the kill lands there.
	const jname = "rk"
	skey := cluster.SweepKey(jname, nil)
	walk := fl.ring.Lookup(skey, 2)
	ownerID, replicaID := walk[0], walk[1]
	oIdx := fl.index(ownerID)
	jpath := filepath.Join(fl.dirs[oIdx], jname+".jsonl")

	type ans struct {
		status int
		body   []byte
		hdr    http.Header
		err    error
	}
	ansc := make(chan ans, 1)
	go func() {
		status, body, hdr, err := rawPost(ctx, fl.base()+"/v1/sweep", sweepReq(p, jname))
		ansc <- ans{status, body, hdr, err}
	}()
	if _, err := WaitJournalRecords(ctx, fl.workers[oIdx], jpath, p.KillAtRecord); err != nil {
		return nil, err
	}
	oldPID := fl.workers[oIdx].Pid()
	r.logf("chaos: router-kill-worker: SIGKILL owner %s (pid %d) at >=%d journal records", ownerID, oldPID, p.KillAtRecord)
	if err := fl.workers[oIdx].Kill(); err != nil {
		return nil, err
	}
	fl.workers[oIdx].Stop()

	// The client's sweep must still be answered — in full, by the next
	// replica on the ring, on the second attempt, fresh (the replica has
	// no journal to resume).
	a := <-ansc
	var sresp serve.SweepResponse
	sweepOK := a.err == nil && a.status == http.StatusOK &&
		json.Unmarshal(a.body, &sresp) == nil &&
		len(sresp.Rows) == points(p) && sresp.Resumed == 0 && rowsClean(sresp)
	rep.Oracles = append(rep.Oracles, oracle("sweep-failover-served",
		sweepOK && a.hdr.Get(serve.WorkerHeader) == replicaID && a.hdr.Get(cluster.AttemptsHeader) == "2",
		"sweep under owner SIGKILL: err=%v status=%d rows=%d resumed=%d worker=%q attempts=%q (want 200, %d fresh rows from %s in 2 attempts)",
		a.err, a.status, len(sresp.Rows), sresp.Resumed, a.hdr.Get(serve.WorkerHeader),
		a.hdr.Get(cluster.AttemptsHeader), points(p), replicaID))

	postCrash, err := os.ReadFile(jpath)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading post-crash journal: %w", err)
	}
	done, other := CountRecords(postCrash)
	rep.Oracles = append(rep.Oracles, oracle("kill-landed",
		done >= 1 && done < points(p) && other == 0,
		"SIGKILL left %d done + %d other records of %d points on %s", done, other, points(p), ownerID))

	_, ejErr := fl.waitWorkerStatus(ctx, ownerID, "ejected", 5*time.Second)
	rep.Oracles = append(rep.Oracles, oracle("owner-ejected", ejErr == nil,
		"dead owner at the router: %v", ejErr))

	// Ring affinity after one ejection: keys owned by survivors stay
	// put; only the dead owner's keys move, and they move to the exact
	// next replica on their walk.
	aff := oracle("ring-affinity", true, "after ejecting %s every key stayed with its predicted worker (moved keys went to their next replica)", ownerID)
	for _, name := range p.Workloads {
		key, err := compareKeyFor(name)
		if err != nil {
			return nil, err
		}
		want, _ := fl.ring.Owner(key)
		if want == ownerID {
			want = fl.firstOther(key, ownerID)
		}
		status, hdr, cresp, err := postCompareVia(ctx, fl.base(), serve.CompareRequest{Workload: name}, "")
		if err != nil || status != http.StatusOK || cresp.WorkerID != want || hdr.Get(cluster.AttemptsHeader) != "1" {
			aff = oracle("ring-affinity", false,
				"compare %s after ejection: status=%d err=%v worker=%q attempts=%q, want %s in 1 attempt",
				name, status, err, cresp.WorkerID, hdr.Get(cluster.AttemptsHeader), want)
			break
		}
	}
	rep.Oracles = append(rep.Oracles, aff)

	// Restart the dead owner on its old address: same worker identity,
	// new process, readmitted by the half-open probe after the cooldown.
	c2, err := fl.restart(ctx, oIdx)
	if err != nil {
		return nil, err
	}
	ws, rmErr := fl.waitWorkerStatus(ctx, ownerID, "ready", 5*time.Second)
	rep.Oracles = append(rep.Oracles, oracle("readmit-restart-identity",
		rmErr == nil && ws.PID == c2.Pid() && ws.PID != oldPID,
		"restarted owner at the router: err=%v state=%q pid=%d (want ready as %s, pid %d != killed pid %d)",
		rmErr, ws.State, ws.PID, ownerID, c2.Pid(), oldPID))

	// Re-post the sweep: ring affinity routes it home to the readmitted
	// owner, which must resume its own crash journal — the fleet-level
	// no-lost-accepted-work proof.
	cl := r.client(fl.router.Addr, p.Seed)
	resp2, serr := cl.Sweep(ctx, sweepReq(p, jname))
	final, err := os.ReadFile(jpath)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading final journal: %w", err)
	}
	rep.Oracles = append(rep.Oracles,
		oracle("resume-accepted", serr == nil, "re-POST through the router after restart: err=%v", serr),
		ResumeIdentity(postCrash, final),
		NoLostAcceptedWork(done, resp2, points(p)),
	)
	if serr == nil {
		rep.Oracles = append(rep.Oracles, RowsIdentity(resp2.Rows, p.Archs, p.Workloads, 2))
	}
	return rep, nil
}

// routerDrainRebalance: SIGTERM one worker mid-sweep and verify the
// fleet-level drain contract — the router marks it draining (off the
// candidate list) while its in-flight sweep runs to completion and is
// relayed intact, the worker exits 0, nothing re-ran elsewhere, and
// exactly its keys rebalance to their next replicas.
func (r *runner) routerDrainRebalance(ctx context.Context, p Plan) (*Report, error) {
	fl, err := r.startFleet(ctx, p, []string{
		"-sweep-point-delay", p.PointDelay.String(),
		"-drain-timeout", "20s",
		"-drain-grace", "2s",
	})
	if err != nil {
		return nil, err
	}
	defer fl.Stop()
	rep := &Report{}

	drainID := fmt.Sprintf("w%d", p.DrainWorker)
	dIdx := p.DrainWorker
	// A journal name the drain target owns, so the in-flight sweep is
	// the drain target's to finish.
	jname := ""
	for i := 0; ; i++ {
		if i > 1000 {
			return nil, fmt.Errorf("chaos: no journal name owned by %s in 1000 tries", drainID)
		}
		jname = fmt.Sprintf("dr-%d", i)
		if owner, _ := fl.ring.Owner(cluster.SweepKey(jname, nil)); owner == drainID {
			break
		}
	}
	jpath := filepath.Join(fl.dirs[dIdx], jname+".jsonl")

	type ans struct {
		status int
		body   []byte
		hdr    http.Header
		err    error
	}
	ansc := make(chan ans, 1)
	go func() {
		status, body, hdr, err := rawPost(ctx, fl.base()+"/v1/sweep", sweepReq(p, jname))
		ansc <- ans{status, body, hdr, err}
	}()
	if _, err := WaitJournalRecords(ctx, fl.workers[dIdx], jpath, p.KillAtRecord); err != nil {
		return nil, err
	}
	r.logf("chaos: router-drain-rebalance: SIGTERM %s (pid %d) mid-sweep", drainID, fl.workers[dIdx].Pid())
	if err := fl.workers[dIdx].Term(); err != nil {
		return nil, err
	}

	// The router must observe the drain while the worker still lives:
	// its probes read the truthful 503 "draining" readyz.
	drainSeen := oracle("drain-visible-at-router", false,
		"router never marked %s draining before it exited", drainID)
	for !fl.workers[dIdx].Exited() {
		snap, err := fl.snapshot(ctx)
		if err == nil && workerState(snap, drainID).State == "draining" {
			drainSeen = oracle("drain-visible-at-router", true,
				"router marked %s draining (%d candidates left) while its sweep was still in flight",
				drainID, snap.Eligible)
			break
		}
		time.Sleep(3 * time.Millisecond)
	}
	rep.Oracles = append(rep.Oracles, drainSeen)

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	code, _ := fl.workers[dIdx].WaitExit(wctx)
	cancel()
	a := <-ansc

	var sresp serve.SweepResponse
	served := a.err == nil && a.status == http.StatusOK &&
		json.Unmarshal(a.body, &sresp) == nil &&
		len(sresp.Rows) == points(p) && rowsClean(sresp)
	rep.Oracles = append(rep.Oracles,
		oracle("inflight-sweep-served",
			served && a.hdr.Get(serve.WorkerHeader) == drainID && a.hdr.Get(cluster.AttemptsHeader) == "1",
			"in-flight sweep during drain: err=%v status=%d rows=%d worker=%q attempts=%q (want 200 with all %d points from %s, no failover)",
			a.err, a.status, len(sresp.Rows), a.hdr.Get(serve.WorkerHeader), a.hdr.Get(cluster.AttemptsHeader), points(p), drainID),
		oracle("drain-exit-clean", code == 0, "exit code %d after SIGTERM (want 0: everything drained)", code),
	)

	// No shadow re-run: the drained sweep's journal exists only in the
	// drained worker's dir — failover did not duplicate accepted work.
	shadow := ""
	for i := range fl.dirs {
		if i == dIdx {
			continue
		}
		if _, err := os.Stat(filepath.Join(fl.dirs[i], jname+".jsonl")); err == nil {
			shadow = fl.ids[i]
			break
		}
	}
	rep.Oracles = append(rep.Oracles, oracle("no-shadow-rerun", shadow == "",
		"journal %s re-ran on %q (want: only on the draining worker)", jname, shadow))

	// Rebalance is exact: the drained worker's keys move to the next
	// replica on their walks; everyone else's keys stay home.
	reb := oracle("rebalance-exact", true,
		"after draining %s only its keys moved, each to its next replica", drainID)
	for _, name := range p.Workloads {
		key, err := compareKeyFor(name)
		if err != nil {
			return nil, err
		}
		want, _ := fl.ring.Owner(key)
		if want == drainID {
			want = fl.firstOther(key, drainID)
		}
		status, hdr, cresp, err := postCompareVia(ctx, fl.base(), serve.CompareRequest{Workload: name}, "")
		if err != nil || status != http.StatusOK || cresp.WorkerID != want || hdr.Get(cluster.AttemptsHeader) != "1" {
			reb = oracle("rebalance-exact", false,
				"compare %s after drain: status=%d err=%v worker=%q attempts=%q, want %s in 1 attempt",
				name, status, err, cresp.WorkerID, hdr.Get(cluster.AttemptsHeader), want)
			break
		}
	}
	rep.Oracles = append(rep.Oracles, reb)
	return rep, nil
}

// routerSplitCache: compute one comparison on its ring owner, then ask
// every other worker for the same point directly and verify they serve
// it from the owner's cache over GET /v1/cache/{key} — one worker's
// computation, fleet-wide answers, all byte-equal.
func (r *runner) routerSplitCache(ctx context.Context, p Plan) (*Report, error) {
	fl, err := r.startFleet(ctx, p, nil)
	if err != nil {
		return nil, err
	}
	defer fl.Stop()
	rep := &Report{}

	creq := serve.CompareRequest{Workload: p.CacheWorkload, Arch: p.CacheArch}
	key, err := compareKeyFor(p.CacheWorkload)
	if err != nil {
		return nil, err
	}
	ownerID, _ := fl.ring.Owner(key)

	// core is the scheduler-comparison payload that must be identical no
	// matter which worker answered.
	type core struct {
		Basic, DS, CDS serve.SchedulerResult
		RF             int
		DTBytes        int
	}
	coreOf := func(cr serve.CompareResponse) core {
		return core{cr.Basic, cr.DS, cr.CDS, cr.RF, cr.DTBytes}
	}

	status, _, r1, err := postCompareVia(ctx, fl.base(), creq, "")
	rep.Oracles = append(rep.Oracles, oracle("computed-at-owner",
		err == nil && status == http.StatusOK && r1.WorkerID == ownerID && !r1.Cached,
		"first compare via router: status=%d err=%v worker=%q cached=%v source=%q (want fresh compute on owner %s)",
		status, err, r1.WorkerID, r1.Cached, r1.CacheSource, ownerID))

	// Every non-owner, asked DIRECTLY (bypassing the router), must fill
	// from the owner's cache: a local miss, a peer hit, no recompute.
	for i, id := range fl.ids {
		if id == ownerID {
			continue
		}
		status, hdr, ri, err := postCompareVia(ctx, "http://"+fl.addrs[i], creq, "")
		rep.Oracles = append(rep.Oracles, oracle("peer-fill-"+id,
			err == nil && status == http.StatusOK && ri.Cached &&
				ri.CacheSource == "peer" && ri.CacheWorker == ownerID && ri.WorkerID == id &&
				hdr.Get("Server-Timing") == "cache;desc=peer" && coreOf(ri) == coreOf(r1),
			"direct compare on %s: status=%d err=%v cached=%v source=%q cache_worker=%q timing=%q identical=%v (want a peer fill from %s)",
			id, status, err, ri.Cached, ri.CacheSource, ri.CacheWorker,
			hdr.Get("Server-Timing"), coreOf(ri) == coreOf(r1), ownerID))
	}

	// The owner itself answers from its local cache — the peer fills did
	// not disturb it.
	status3, _, r3, err := postCompareVia(ctx, "http://"+fl.addrs[fl.index(ownerID)], creq, "")
	rep.Oracles = append(rep.Oracles, oracle("owner-local-hit",
		err == nil && status3 == http.StatusOK && r3.Cached && r3.CacheSource == "local" &&
			r3.WorkerID == ownerID && coreOf(r3) == coreOf(r1),
		"direct compare on owner %s: status=%d err=%v cached=%v source=%q identical=%v (want a local hit)",
		ownerID, status3, err, r3.Cached, r3.CacheSource, coreOf(r3) == coreOf(r1)))
	return rep, nil
}
