package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cds/internal/serve"
)

// TestRouterKillWorkerScenario runs the headline fleet drill end to
// end against real processes: a router child fronting three schedd
// children, the ring owner of an in-flight sweep SIGKILLed, and every
// cluster oracle (failover, ejection, affinity, readmission,
// byte-identical resume) must pass.
func TestRouterKillWorkerScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet drill")
	}
	rep, err := Run(Config{Seed: 1, Plan: "router-kill-worker", Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, o := range rep.Oracles {
		if !o.OK {
			t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
		}
	}
	if !rep.OK {
		t.Fatal("router-kill-worker drill failed")
	}
	again, err := DerivePlan("router-kill-worker", 1)
	if err != nil || !reflect.DeepEqual(rep.Plan, again) {
		t.Fatalf("report plan %+v does not rederive from its seed (%+v, %v)", rep.Plan, again, err)
	}
}

// TestRouterSplitCacheScenario proves the peer cache fill across real
// process boundaries: one worker computes, the other two serve the
// identical answer from its cache over GET /v1/cache/{key}.
func TestRouterSplitCacheScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet drill")
	}
	rep, err := Run(Config{Seed: 1, Plan: "router-split-cache", Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, o := range rep.Oracles {
		if !o.OK {
			t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
		}
	}
}

// TestFleetSoak is the cluster burn-in: 200 concurrent clients hammer
// the router with compares while one worker is SIGKILLed, ejected,
// restarted and readmitted mid-burst. The router contract under that
// churn: zero transport errors at the client, and nothing but 200
// (served, possibly via failover), 429 (truthful shedding) or 503
// (truthful unavailability) on the wire.
func TestFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet soak")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	r := &runner{cfg: Config{Seed: 7}, dir: t.TempDir(), logf: t.Logf}
	r.sup = &Supervisor{Logf: t.Logf}
	p := Plan{Name: "soak", Seed: 7, FleetWorkers: 3, Archs: planArchs, Workloads: planWorkloads}
	fl, err := r.startFleet(ctx, p, nil)
	if err != nil {
		t.Fatalf("startFleet: %v", err)
	}
	defer fl.Stop()
	base := fl.base()

	// A pooled client: 200 lanes through the default transport's two
	// idle conns per host would measure port churn, not the router.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
	}}

	var stop atomic.Bool
	var mu sync.Mutex
	codes := map[int]int{}
	var reqs, failovers int
	var transportErrs []string

	post := func(lane, i int) {
		creq := serve.CompareRequest{
			Workload: planWorkloads[(lane+i)%len(planWorkloads)],
			Arch:     planArchs[(lane*7+i)%len(planArchs)],
		}
		body, _ := json.Marshal(creq)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/compare", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		status, attempts := 0, ""
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status, attempts = resp.StatusCode, resp.Header.Get("Router-Attempts")
		}
		mu.Lock()
		defer mu.Unlock()
		reqs++
		if err != nil {
			if len(transportErrs) < 5 {
				transportErrs = append(transportErrs, err.Error())
			}
			return
		}
		codes[status]++
		if attempts != "" && attempts != "1" {
			failovers++
		}
	}

	const lanes = 200
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				post(lane, i)
				time.Sleep(5 * time.Millisecond)
			}
		}(lane)
	}

	// Mid-burst: kill one worker, watch the router eject it, bring it
	// back, watch it readmit — all while the 200 lanes keep firing.
	time.Sleep(100 * time.Millisecond)
	victim := 1
	oldPID := fl.workers[victim].Pid()
	if err := fl.workers[victim].Kill(); err != nil {
		t.Fatalf("killing %s: %v", fl.ids[victim], err)
	}
	fl.workers[victim].Stop()
	if _, err := fl.waitWorkerStatus(ctx, fl.ids[victim], "ejected", 10*time.Second); err != nil {
		t.Errorf("ejection under load: %v", err)
	}
	c2, err := fl.restart(ctx, victim)
	if err != nil {
		t.Fatalf("restarting %s: %v", fl.ids[victim], err)
	}
	ws, err := fl.waitWorkerStatus(ctx, fl.ids[victim], "ready", 10*time.Second)
	if err != nil {
		t.Errorf("readmission under load: %v", err)
	} else if ws.PID != c2.Pid() || ws.PID == oldPID {
		t.Errorf("readmitted pid %d, want restarted pid %d (killed pid was %d)", ws.PID, c2.Pid(), oldPID)
	}
	time.Sleep(200 * time.Millisecond) // keep bursting against the healed fleet
	stop.Store(true)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(transportErrs) > 0 {
		t.Errorf("router dropped connections under soak: %v", transportErrs)
	}
	for status := range codes {
		switch status {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("soak saw status %d (%d times); only 200/429/503 are truthful under churn",
				status, codes[status])
		}
	}
	if codes[http.StatusOK] == 0 {
		t.Error("soak produced no successful answers at all")
	}
	t.Logf("soak: %d clients, %d requests, %d failovers, codes %v (worker %s killed and readmitted mid-burst)",
		lanes, reqs, failovers, codes, fl.ids[victim])
}
