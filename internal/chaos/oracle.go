package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cds/internal/schedclient"
	"cds/internal/serve"
	"cds/internal/sweep"
	"cds/internal/workloads"
)

// OracleResult is one recovery invariant's verdict. A chaos run passes
// only when every oracle is OK; Detail carries the evidence either way,
// so a failing report is diagnosable without a re-run.
type OracleResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

func oracle(name string, ok bool, format string, args ...any) OracleResult {
	return OracleResult{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}

// CompletePrefix trims b to its last newline: the durable,
// complete-record prefix that journal recovery guarantees to preserve.
// A crash may leave a torn tail after it; nothing before it may change.
func CompletePrefix(b []byte) []byte {
	i := bytes.LastIndexByte(b, '\n')
	if i < 0 {
		return nil
	}
	return b[:i+1]
}

// CountRecords parses a journal's bytes and counts complete records by
// status: done points (resumable) and everything else (canceled,
// failed). A torn tail is ignored, exactly as recovery ignores it.
func CountRecords(data []byte) (done, other int) {
	for _, line := range bytes.Split(CompletePrefix(data), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec sweep.Record
		if json.Unmarshal(line, &rec) != nil {
			continue // corrupt line: recovery rejects it, don't count it
		}
		if rec.Status == sweep.StatusDone {
			done++
		} else {
			other++
		}
	}
	return done, other
}

// ResumeIdentity asserts the journal's core crash contract: every
// complete record that was on disk when the process died is still
// there, byte for byte, after recovery ran and the sweep finished.
func ResumeIdentity(postCrash, final []byte) OracleResult {
	prefix := CompletePrefix(postCrash)
	if !bytes.HasPrefix(final, prefix) {
		n := len(prefix)
		if len(final) < n {
			n = len(final)
		}
		div := 0
		for div < n && prefix[div] == final[div] {
			div++
		}
		return oracle("resume-identity", false,
			"final journal diverges from the pre-crash prefix at byte %d (prefix %d bytes, final %d bytes)",
			div, len(prefix), len(final))
	}
	return oracle("resume-identity", true,
		"pre-crash prefix (%d bytes, torn tail of %d bytes discarded) is byte-identical in the final journal (%d bytes)",
		len(prefix), len(postCrash)-len(prefix), len(final))
}

// NoLostAcceptedWork asserts the harness's headline invariant for
// sweeps: after a crash and resume, the answer covers every grid point,
// none report errors, and exactly the journaled done points were
// resumed instead of re-run — accepted work survived, and surviving
// work was not silently recomputed.
func NoLostAcceptedWork(preDone int, resp *serve.SweepResponse, wantPoints int) OracleResult {
	if resp == nil {
		return oracle("no-lost-accepted-work", false, "no sweep answer at all")
	}
	if len(resp.Rows) != wantPoints {
		return oracle("no-lost-accepted-work", false, "answer has %d rows, want %d", len(resp.Rows), wantPoints)
	}
	for _, row := range resp.Rows {
		if row.Err != "" {
			return oracle("no-lost-accepted-work", false, "point %s resumed with error %q", row.Job, row.Err)
		}
	}
	if resp.Resumed != preDone {
		return oracle("no-lost-accepted-work", false,
			"%d points resumed from the journal, want the %d completed before the crash", resp.Resumed, preDone)
	}
	return oracle("no-lost-accepted-work", true,
		"all %d points answered, %d resumed from the pre-crash journal, %d re-run", wantPoints, preDone, wantPoints-preDone)
}

// RowsIdentity recomputes the grid in-process — no daemon, no journal,
// no faults — and asserts the recovered answer is byte-identical JSON.
// This is the end-to-end correctness oracle: recovery must not just
// answer, it must answer exactly what an undisturbed run answers.
func RowsIdentity(rows []sweep.Row, archNames, wlNames []string, workers int) OracleResult {
	archs, skipped := sweep.PresetArchs(archNames...)
	if len(skipped) > 0 {
		return oracle("rows-identity", false, "unknown arch presets %v", skipped)
	}
	exps := make([]workloads.Experiment, 0, len(wlNames))
	for _, name := range wlNames {
		e, err := workloads.ByName(name)
		if err != nil {
			return oracle("rows-identity", false, "unknown workload %q", name)
		}
		exps = append(exps, e)
	}
	ref := sweep.Rows(sweep.Batch(sweep.Grid(archs, exps), workers))
	got, err1 := json.Marshal(rows)
	want, err2 := json.Marshal(ref)
	if err1 != nil || err2 != nil {
		return oracle("rows-identity", false, "marshal: %v / %v", err1, err2)
	}
	if !bytes.Equal(got, want) {
		return oracle("rows-identity", false,
			"recovered rows differ from the undisturbed in-process reference:\n got: %s\nwant: %s", got, want)
	}
	return oracle("rows-identity", true,
		"%d recovered rows byte-identical to the undisturbed in-process reference", len(rows))
}

// ReadyzTruthful asserts one readiness observation: the JSON status
// matches expectation and the HTTP status tells the same story (200
// exactly for "ready"), with a sane queue gauge.
func ReadyzTruthful(when string, status int, r serve.ReadyzResponse, want string) OracleResult {
	name := "readyz-" + when
	if r.Status != want {
		return oracle(name, false, "readyz says %q (%d, queue %d/%d), want %q",
			r.Status, status, r.QueueDepth, r.QueueCapacity, want)
	}
	wantHTTP := http.StatusServiceUnavailable
	if want == "ready" {
		wantHTTP = http.StatusOK
	}
	if status != wantHTTP {
		return oracle(name, false, "readyz status %q came with HTTP %d, want %d", want, status, wantHTTP)
	}
	if r.QueueDepth < 0 || r.QueueDepth > r.QueueCapacity {
		return oracle(name, false, "impossible queue gauge %d/%d", r.QueueDepth, r.QueueCapacity)
	}
	if want == "saturated" && r.QueueDepth < r.QueueCapacity {
		return oracle(name, false, "saturated with queue %d/%d", r.QueueDepth, r.QueueCapacity)
	}
	return oracle(name, true, "readyz truthfully %q (HTTP %d, queue %d/%d)", want, status, r.QueueDepth, r.QueueCapacity)
}

// ExactlyOnce asserts the proxy scenario's invariant from the client's
// ledger: every logical call was accepted despite the faults, truncated
// answers forced application-level retries, and resets and duplicates
// were answered from the server's idempotency store rather than re-run.
// (A reset before response bytes is retried by net/http's transport
// itself — it treats Idempotency-Key requests as replayable — so resets
// surface as replays, not as extra application attempts; a truncated
// body arrives after the headers, which only the schedclient retry loop
// can recover.)
func ExactlyOnce(st schedclient.Stats, events []ProxyEvent) OracleResult {
	var resets, dups, truncs int
	for _, e := range events {
		switch e.Fault {
		case "reset":
			resets++
		case "duplicate":
			dups++
		case "truncate":
			truncs++
		}
	}
	if st.Accepted != st.Calls {
		return oracle("exactly-once", false, "%d of %d calls accepted (faults: %d resets, %d truncates, %d duplicates)",
			st.Accepted, st.Calls, resets, truncs, dups)
	}
	if truncs > 0 && st.Attempts <= st.Calls {
		return oracle("exactly-once", false, "%d truncated answers injected but no call retried (%d attempts / %d calls)",
			truncs, st.Attempts, st.Calls)
	}
	if resets+dups > 0 && st.Replayed == 0 {
		return oracle("exactly-once", false,
			"%d resets and %d duplicates injected but no answer was an idempotent replay — the work ran twice",
			resets, dups)
	}
	return oracle("exactly-once", true,
		"%d/%d calls accepted through %d attempts; %d replayed (faults: %d resets, %d truncates, %d duplicates)",
		st.Accepted, st.Calls, st.Attempts, st.Replayed, resets, truncs, dups)
}

// ProbeEvent is one timestamped answer of the breaker probe loop.
type ProbeEvent struct {
	T      time.Duration `json:"t"`
	Status int           `json:"status"`
	Class  string        `json:"class,omitempty"`
}

// BreakerRecovery asserts the open-then-recover timeline: the breaker
// actually opened (503 circuit_open answers observed), the service
// recovered (a 200 after the last open), and recovery respected the
// cooldown — the first success comes no sooner than about one cooldown
// after the breaker first opened (half tolerance for probe timing).
func BreakerRecovery(events []ProbeEvent, cooldown time.Duration) OracleResult {
	firstOpen, lastOpen := time.Duration(-1), time.Duration(-1)
	firstOKAfterOpen := time.Duration(-1)
	lastStatus := 0
	for _, e := range events {
		lastStatus = e.Status
		if e.Class == "circuit_open" {
			if firstOpen < 0 {
				firstOpen = e.T
			}
			lastOpen = e.T
		}
		if e.Status == http.StatusOK && firstOpen >= 0 && firstOKAfterOpen < 0 {
			firstOKAfterOpen = e.T
		}
	}
	if firstOpen < 0 {
		return oracle("breaker-recovery", false, "breaker never opened across %d probes", len(events))
	}
	if firstOKAfterOpen < 0 || lastStatus != http.StatusOK {
		return oracle("breaker-recovery", false,
			"breaker opened at %s but the service never settled recovered (last status %d)", firstOpen, lastStatus)
	}
	if gap := firstOKAfterOpen - firstOpen; gap < cooldown/2 {
		return oracle("breaker-recovery", false,
			"first success only %s after the breaker opened — shorter than the %s cooldown allows", gap, cooldown)
	}
	return oracle("breaker-recovery", true,
		"opened at %s, last open at %s, recovered at %s (cooldown %s, %d probes)",
		firstOpen, lastOpen, firstOKAfterOpen, cooldown, len(events))
}

// AllOK folds oracle verdicts.
func AllOK(results []OracleResult) bool {
	for _, r := range results {
		if !r.OK {
			return false
		}
	}
	return true
}
