// Package chaos is the failure harness for schedd: it orchestrates real
// daemon processes and verifies that they recover. Where
// internal/faultmachine injects faults into the DMA model in-process,
// this package injects them around the process — SIGKILL mid-sweep,
// torn writes on the journal's filesystem, a flaky network between
// client and server — and asserts the recovery invariants the service
// documents, chief among them no-lost-accepted-work: every request the
// server accepted (answered 2xx) is completed or journaled, never
// silently lost.
//
// Three injection seams:
//
//   - a process supervisor (supervisor.go) that launches schedd children
//     and executes a seeded fault plan: SIGKILL at a chosen journal
//     record count, SIGTERM mid-drain, restart against the same journal;
//   - the journal filesystem seam (journal.FaultFS), producing ENOSPC,
//     short writes and fsync errors on the plan's schedule;
//   - a fault-injecting HTTP proxy (proxy.go) between a
//     schedclient-driven load generator and the daemon: latency,
//     connection resets, truncated answers, duplicated submissions.
//
// Every run is reproducible from (plan name, seed): DerivePlan is a
// pure function, and all fault schedules (which record to kill at,
// which request indices the proxy disturbs, which filesystem operation
// fails) come from its output. Wall-clock timing varies between runs;
// the fault schedule does not.
package chaos

import (
	"fmt"
	"time"

	"cds/internal/journal"
)

// PlanNames lists the scenarios, in the order "all" runs them. The
// router-* plans drill a whole fleet — N schedd workers behind a
// schedrouter — instead of a single daemon.
func PlanNames() []string {
	return []string{
		"kill-resume", "term-drain", "fs-faults", "proxy", "overload", "breaker",
		"router-kill-worker", "router-drain-rebalance", "router-split-cache",
	}
}

// Plan is one fully-derived chaos scenario: everything a run needs, so
// that (Name, Seed) reproduces the identical fault schedule.
type Plan struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	// The sweep grid the scenarios drive (kill-resume, term-drain,
	// overload, fs-faults).
	Archs     []string `json:"archs,omitempty"`
	Workloads []string `json:"workloads,omitempty"`

	// PointDelay paces journaled sweep points in the child
	// (-sweep-point-delay), widening the kill window.
	PointDelay time.Duration `json:"point_delay,omitempty"`

	// KillAtRecord: SIGKILL (or SIGTERM for term-drain) the child once
	// the journal holds at least this many records.
	KillAtRecord int `json:"kill_at_record,omitempty"`

	// Proxy is the network fault schedule (proxy scenario).
	Proxy ProxyPlan `json:"proxy,omitempty"`
	// ProxyCalls is how many logical compare calls the load generator
	// issues through the proxy.
	ProxyCalls int `json:"proxy_calls,omitempty"`

	// FSFaults is the filesystem fault schedule (fs-faults scenario).
	FSFaults []journal.Fault `json:"fs_faults,omitempty"`

	// Breaker scenario knobs: the child's fault window (in functional
	// machine runs) and the breaker cooldown.
	BreakerFailRuns int           `json:"breaker_fail_runs,omitempty"`
	BreakerCooldown time.Duration `json:"breaker_cooldown,omitempty"`

	// Fleet scenario knobs (router-* plans): how many schedd workers the
	// schedrouter fronts, which worker index the drain drill SIGTERMs,
	// and which (workload, arch) point the split-cache drill computes.
	FleetWorkers  int    `json:"fleet_workers,omitempty"`
	DrainWorker   int    `json:"drain_worker,omitempty"`
	CacheWorkload string `json:"cache_workload,omitempty"`
	CacheArch     string `json:"cache_arch,omitempty"`
}

// planGrid is the sweep grid shared by the process scenarios: small
// enough to finish in seconds, big enough that a kill lands mid-sweep.
var planArchs = []string{"M1/4", "M1", "M2"}
var planWorkloads = []string{"E1", "E2", "E3", "MPEG"}

// gridSize is len(planArchs) * len(planWorkloads).
const gridSize = 12

// DerivePlan expands (name, seed) into a fully-specified Plan. It is a
// pure function: equal inputs yield equal plans, which is what makes a
// failing chaos run reproducible from its report alone.
func DerivePlan(name string, seed int64) (Plan, error) {
	r := newRNG(seed)
	p := Plan{Name: name, Seed: seed, Archs: planArchs, Workloads: planWorkloads}
	switch name {
	case "kill-resume":
		// Kill somewhere strictly inside the sweep: after at least two
		// records, with at least three still to run.
		p.KillAtRecord = 2 + r.intn(gridSize-5)
		p.PointDelay = 40 * time.Millisecond
	case "term-drain":
		p.KillAtRecord = 2 + r.intn(gridSize/2)
		p.PointDelay = 30 * time.Millisecond
	case "fs-faults":
		// One to three faults over the first gridSize journal appends,
		// mixing clean ENOSPC, torn short writes and fsync errors.
		n := 1 + r.intn(3)
		used := map[int]bool{}
		for len(p.FSFaults) < n {
			// Fault the i-th write/sync, i in [2, gridSize]: never the
			// first append, so recovery always has a durable prefix.
			i := 2 + r.intn(gridSize-1)
			if used[i] {
				continue
			}
			used[i] = true
			switch r.intn(3) {
			case 0:
				p.FSFaults = append(p.FSFaults, journal.Fault{Op: journal.OpWrite, N: i})
			case 1:
				p.FSFaults = append(p.FSFaults, journal.Fault{Op: journal.OpWrite, N: i, ShortBytes: 1 + r.intn(20)})
			default:
				p.FSFaults = append(p.FSFaults, journal.Fault{Op: journal.OpSync, N: i})
			}
		}
	case "proxy":
		p.ProxyCalls = 22 + r.intn(8)
		// Truncate and duplicate periods are fixed primes above the reset
		// range so no fault class is eclipsed by reset's precedence at
		// shared indices (see ProxyPlan).
		p.Proxy = ProxyPlan{
			LatencyEveryN:   2,
			Latency:         time.Duration(5+r.intn(20)) * time.Millisecond,
			ResetEveryN:     3 + r.intn(3),
			TruncateEveryN:  7,
			DuplicateEveryN: 11,
		}
	case "overload":
		// The full grid paced slowly, so concurrent sweeps hold the
		// admission slot long enough to observe queue saturation.
		p.PointDelay = 50 * time.Millisecond
	case "breaker":
		p.BreakerFailRuns = 8 + 2*r.intn(3)
		p.BreakerCooldown = time.Duration(200+50*r.intn(3)) * time.Millisecond
	case "router-kill-worker":
		// SIGKILL the ring owner of a routed sweep strictly mid-sweep,
		// like kill-resume, but the loss must be absorbed by failover.
		p.FleetWorkers = 3
		p.KillAtRecord = 2 + r.intn(gridSize-5)
		p.PointDelay = 40 * time.Millisecond
	case "router-drain-rebalance":
		p.FleetWorkers = 3
		p.DrainWorker = r.intn(3)
		p.KillAtRecord = 2 + r.intn(gridSize/2)
		p.PointDelay = 30 * time.Millisecond
	case "router-split-cache":
		p.FleetWorkers = 3
		p.CacheWorkload = planWorkloads[r.intn(len(planWorkloads))]
		p.CacheArch = planArchs[r.intn(len(planArchs))]
	default:
		return Plan{}, fmt.Errorf("chaos: unknown plan %q (known: %v)", name, PlanNames())
	}
	return p, nil
}

// rng is the same xorshift64 construction as internal/retry's jitter
// stream: deterministic, seed-0-safe.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if s == 0 {
		s = 1
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
