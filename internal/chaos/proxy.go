package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyPlan is the deterministic fault schedule of a Proxy, expressed
// per request index (1-based): every ResetEveryN-th request has its
// client connection reset AFTER the backend processed it, every
// TruncateEveryN-th answer is cut short mid-body, every
// DuplicateEveryN-th request is submitted to the backend twice, and
// every LatencyEveryN-th is delayed by Latency. Zero disables a fault.
// Precedence when several divide the same index: reset, truncate,
// duplicate (latency stacks on top of any of them).
type ProxyPlan struct {
	LatencyEveryN   int           `json:"latency_every_n,omitempty"`
	Latency         time.Duration `json:"latency,omitempty"`
	ResetEveryN     int           `json:"reset_every_n,omitempty"`
	TruncateEveryN  int           `json:"truncate_every_n,omitempty"`
	DuplicateEveryN int           `json:"duplicate_every_n,omitempty"`
}

// ProxyEvent records one injected fault, for the run report.
type ProxyEvent struct {
	Index int    `json:"index"` // request index the fault hit
	Fault string `json:"fault"` // "latency", "reset", "truncate", "duplicate"
}

// Proxy is a fault-injecting HTTP proxy in front of one backend. The
// faults it injects are exactly the ones a hardened client must absorb:
// a reset after the server did the work (the retry must replay, not
// re-run), a truncated answer (the retry must not trust a parse
// failure), a duplicated submission (the server's idempotency layer
// must collapse it).
type Proxy struct {
	backend string
	plan    ProxyPlan
	logf    func(string, ...any)

	l     net.Listener
	srv   *http.Server
	index atomic.Int64

	mu     sync.Mutex
	events []ProxyEvent
}

// StartProxy listens on a fresh loopback port and forwards to backend
// (host:port) under the plan's fault schedule.
func StartProxy(backend string, plan ProxyPlan, logf func(string, ...any)) (*Proxy, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{backend: backend, plan: plan, logf: logf, l: l}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.handle)}
	go p.srv.Serve(l)
	return p, nil
}

// Addr is the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Events snapshots the injected-fault log in arrival order.
func (p *Proxy) Events() []ProxyEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProxyEvent(nil), p.events...)
}

// Close stops accepting and tears the proxy down.
func (p *Proxy) Close() error { return p.srv.Close() }

func (p *Proxy) record(idx int, fault string) {
	p.mu.Lock()
	p.events = append(p.events, ProxyEvent{Index: idx, Fault: fault})
	p.mu.Unlock()
	p.logf("chaos: proxy request %d: %s", idx, fault)
}

func divides(n int, idx int) bool { return n > 0 && idx%n == 0 }

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	idx := int(p.index.Add(1))
	if divides(p.plan.LatencyEveryN, idx) && p.plan.Latency > 0 {
		p.record(idx, "latency")
		time.Sleep(p.plan.Latency)
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		http.Error(w, "proxy: reading request", http.StatusBadGateway)
		return
	}

	switch {
	case divides(p.plan.ResetEveryN, idx):
		// Let the backend do the work, then reset the client connection
		// before the answer escapes: the cruelest fault for exactly-once.
		if resp, err := p.forward(r, body); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		p.record(idx, "reset")
		p.reset(w)
		return
	case divides(p.plan.TruncateEveryN, idx):
		resp, err := p.forward(r, body)
		if err != nil {
			http.Error(w, "proxy: "+err.Error(), http.StatusBadGateway)
			return
		}
		full, _ := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		resp.Body.Close()
		p.record(idx, "truncate")
		p.truncate(w, resp, full)
		return
	case divides(p.plan.DuplicateEveryN, idx):
		// Submit twice — a retrying middlebox — and relay the SECOND
		// answer, so the client sees the duplicate's fate.
		if first, err := p.forward(r, body); err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		p.record(idx, "duplicate")
	}

	resp, err := p.forward(r, body)
	if err != nil {
		http.Error(w, "proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

const maxProxyBody = 16 << 20

func (p *Proxy) forward(r *http.Request, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+p.backend+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return http.DefaultTransport.RoundTrip(req)
}

// reset hijacks the client connection and closes it with linger 0,
// turning the close into a TCP RST: the client sees "connection reset
// by peer" with no HTTP response at all.
func (p *Proxy) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: proxy ResponseWriter is not a Hijacker")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// truncate hijacks the connection and writes a response that PROMISES
// the full Content-Length but delivers only half the body before
// closing: the client's read ends in an unexpected EOF.
func (p *Proxy) truncate(w http.ResponseWriter, resp *http.Response, full []byte) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: proxy ResponseWriter is not a Hijacker")
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	fmt.Fprintf(buf, "Content-Type: %s\r\n", resp.Header.Get("Content-Type"))
	fmt.Fprintf(buf, "Content-Length: %d\r\n", len(full))
	fmt.Fprintf(buf, "Connection: close\r\n\r\n")
	buf.Write(full[:len(full)/2])
	buf.Flush()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}
