package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"cds/internal/cluster"
	"cds/internal/daemon"
)

// MaybeChild dispatches to the real schedd daemon (daemon.ChildEnv set)
// or the real schedrouter (cluster.ChildEnv set) when this process was
// re-executed as a supervised child. Binaries that embed the harness —
// cmd/chaos, and the chaos package's test binary via TestMain — must
// call it before doing anything else; it does not return in a child.
func MaybeChild() {
	if os.Getenv(cluster.ChildEnv) != "" {
		os.Exit(cluster.Main(os.Args[1:], os.Stderr))
	}
	if os.Getenv(daemon.ChildEnv) == "" {
		return
	}
	os.Exit(daemon.Main(os.Args[1:], os.Stderr))
}

// FreeAddr reserves a loopback TCP address for a child to bind. The
// port is released before the child starts, so a reuse race is
// possible in principle; in practice the immediate rebind wins.
func FreeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// Child is one supervised schedd process.
type Child struct {
	// Addr is the service address the child was told to bind.
	Addr string

	cmd    *exec.Cmd
	logf   func(string, ...any)
	stderr bytes.Buffer
	mu     sync.Mutex // guards stderr reads vs the copier

	waitOnce sync.Once
	waitErr  error
	exited   chan struct{}
}

// Supervisor launches schedd children. SchedCmd is the daemon binary;
// empty means re-execute the current binary (os.Args[0]) with
// ChildEnvVar set, which runs the identical process through MaybeChild.
type Supervisor struct {
	SchedCmd string
	// ChildEnvVar selects what a re-executed child becomes:
	// daemon.ChildEnv (the default) runs schedd, cluster.ChildEnv runs
	// schedrouter. Ignored when SchedCmd names an external binary.
	ChildEnvVar string
	Logf        func(format string, args ...any)
}

// Start launches one schedd child on addr with the extra flags
// appended after -addr.
func (s *Supervisor) Start(addr string, extra ...string) (*Child, error) {
	logf := s.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bin := s.SchedCmd
	env := os.Environ()
	if bin == "" {
		bin = os.Args[0]
		childVar := s.ChildEnvVar
		if childVar == "" {
			childVar = daemon.ChildEnv
		}
		env = append(env, childVar+"=1")
	}
	args := append([]string{"-addr", addr}, extra...)
	c := &Child{Addr: addr, logf: logf, exited: make(chan struct{})}
	c.cmd = exec.Command(bin, args...)
	c.cmd.Env = env
	c.cmd.Stderr = &lockedWriter{mu: &c.mu, w: &c.stderr}
	if err := c.cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: starting schedd child: %w", err)
	}
	logf("chaos: started child pid %d on %s (args %v)", c.cmd.Process.Pid, addr, args)
	go func() {
		c.waitOnce.Do(func() { c.waitErr = c.cmd.Wait() })
		close(c.exited)
	}()
	return c, nil
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// Pid returns the child's process id.
func (c *Child) Pid() int { return c.cmd.Process.Pid }

// Stderr snapshots everything the child wrote to stderr so far.
func (c *Child) Stderr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stderr.String()
}

// Kill delivers SIGKILL: the crash the harness recovers from.
func (c *Child) Kill() error { return c.cmd.Process.Kill() }

// Term delivers SIGTERM: the graceful-drain path.
func (c *Child) Term() error { return c.cmd.Process.Signal(syscall.SIGTERM) }

// WaitExit blocks until the child exits and returns its exit code
// (-1 for a signal death, with the signal in err via exec.ExitError).
func (c *Child) WaitExit(ctx context.Context) (int, error) {
	select {
	case <-c.exited:
	case <-ctx.Done():
		return 0, fmt.Errorf("chaos: child pid %d did not exit: %w", c.Pid(), ctx.Err())
	}
	if c.waitErr == nil {
		return 0, nil
	}
	var ee *exec.ExitError
	if ok := asExitError(c.waitErr, &ee); ok {
		return ee.ExitCode(), c.waitErr
	}
	return -1, c.waitErr
}

func asExitError(err error, out **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*out = ee
	}
	return ok
}

// Exited reports (non-blocking) whether the child has exited.
func (c *Child) Exited() bool {
	select {
	case <-c.exited:
		return true
	default:
		return false
	}
}

// Stop SIGKILLs the child if still alive and reaps it. Safe on an
// already-dead child; always returns once the process is gone.
func (c *Child) Stop() {
	if !c.Exited() {
		_ = c.Kill()
	}
	<-c.exited
}

// WaitReady polls GET /healthz until the child answers 200, its
// process exits, or ctx expires.
func (c *Child) WaitReady(ctx context.Context) error {
	url := "http://" + c.Addr + "/healthz"
	for {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if c.Exited() {
			return fmt.Errorf("chaos: child pid %d exited before becoming ready; stderr:\n%s", c.Pid(), c.Stderr())
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("chaos: child on %s never became ready: %w; stderr:\n%s", c.Addr, ctx.Err(), c.Stderr())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// JournalRecords counts complete (newline-terminated) records in a
// journal file. A missing file counts zero: the sweep has not created
// it yet.
func JournalRecords(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return bytes.Count(data, []byte("\n")), nil
}

// WaitJournalRecords polls path until it holds at least n complete
// records, returning the observed count. It fails if ctx expires or
// the child exits first (the sweep died before reaching the trigger).
func WaitJournalRecords(ctx context.Context, c *Child, path string, n int) (int, error) {
	for {
		got, err := JournalRecords(path)
		if err != nil {
			return 0, err
		}
		if got >= n {
			return got, nil
		}
		if c != nil && c.Exited() {
			return got, fmt.Errorf("chaos: child exited with %d/%d journal records; stderr:\n%s", got, n, c.Stderr())
		}
		select {
		case <-ctx.Done():
			return got, fmt.Errorf("chaos: journal %s reached only %d/%d records: %w", path, got, n, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
