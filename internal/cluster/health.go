package cluster

// Fleet membership and health. Every worker gets its own jittered probe
// loop against the worker's truthful /readyz, and its own
// internal/retry breaker as the ejection state machine:
//
//	probe ok (ready/saturated)  -> Record(true)   (closed = in the ring)
//	probe fails / connect error -> Record(false)  (threshold opens = ejected)
//	breaker open                -> skip probes until the cooldown admits
//	                               a half-open probe; one success readmits
//
// "Draining" is deliberately NOT a breaker failure: a worker answering
// readyz 503/"draining" is healthy and finishing its in-flight work —
// it leaves the routing candidates immediately but keeps its breaker
// closed, so a restart on the same address readmits it on the first
// successful probe with no cooldown penalty.
//
// "Saturated" (503 with a full admission queue) keeps the worker in the
// ring: it is alive and truthfully shedding; routing away from it would
// move the overload to its neighbors and flap the ring. The router
// relays its 429/503 answers instead.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cds/internal/retry"
	"cds/internal/serve"
)

// FleetConfig parameterizes fleet health tracking.
type FleetConfig struct {
	// Workers is the initial membership (-workers flag or the first read
	// of -workers-file); SetMembers replaces it at runtime.
	Workers []Member
	// Vnodes per member on the ring (DefaultVnodes when <= 0).
	Vnodes int
	// ProbeInterval is the mean time between readyz probes per worker
	// (default 500ms); each wait is jittered to half..full interval so a
	// fleet's probes do not phase-lock.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe HTTP call (default 1s).
	ProbeTimeout time.Duration
	// EjectThreshold is how many consecutive failed probes (or reported
	// forward failures) eject a worker (default 3).
	EjectThreshold int
	// ReadmitCooldown is how long an ejected worker waits before a
	// half-open readmission probe (default 2s).
	ReadmitCooldown time.Duration
	// Seed makes the probe jitter deterministic.
	Seed int64
	// HTTP substitutes the probe transport (tests); nil builds a client
	// with ProbeTimeout.
	HTTP *http.Client
	// Logf observes state transitions; nil disables.
	Logf func(format string, args ...any)
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EjectThreshold <= 0 {
		c.EjectThreshold = 3
	}
	if c.ReadmitCooldown <= 0 {
		c.ReadmitCooldown = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// workerState is one member's health record.
type workerState struct {
	// member is atomic because a probe loop reads the address while
	// SetMembers may be swapping it (a kept worker that moved ports).
	member   atomic.Pointer[Member]
	br       *retry.Breaker
	draining atomic.Bool
	// lastPID/lastUptimeMS snapshot the worker's most recent identity
	// report (surfaced on /v1/ring; oracles use PID flips to prove a
	// restart happened).
	lastPID      atomic.Int64
	lastUptimeMS atomic.Int64
	// stop closes when the member leaves the fleet (SetMembers removal),
	// ending its probe loop without touching the others.
	stop chan struct{}
}

// Fleet tracks a worker set's health and owns the routing ring. The
// membership is dynamic: SetMembers swaps in a new worker list (the
// router's -workers-file + SIGHUP reload), starting probe loops for
// joiners and stopping them for leavers, while kept workers carry their
// breaker state across the change. Construct with NewFleet, then Start
// the probe loops; Stop before discarding.
type Fleet struct {
	cfg  FleetConfig
	http *http.Client
	stop chan struct{}
	wg   sync.WaitGroup

	// mu guards the membership view: the member list, the ring built
	// from it, and the health-state map. Probe loops and request paths
	// read under RLock; only SetMembers writes.
	mu      sync.RWMutex
	members []Member
	ring    *Ring
	workers map[string]*workerState
	started bool
	// laneSeq deals each probe loop (including late joiners) a distinct
	// jitter stream.
	laneSeq int64
}

// NewFleet builds the fleet state (no probes yet; call Start).
func NewFleet(cfg FleetConfig) *Fleet {
	cfg = cfg.withDefaults()
	h := cfg.HTTP
	if h == nil {
		h = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	f := &Fleet{
		cfg:     cfg,
		http:    h,
		stop:    make(chan struct{}),
		workers: map[string]*workerState{},
		ring:    NewRing(cfg.Vnodes),
	}
	f.SetMembers(cfg.Workers)
	return f
}

// Ring exposes the current consistent-hash ring.
func (f *Fleet) Ring() *Ring {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring
}

// Members returns the current membership in configuration order.
func (f *Fleet) Members() []Member {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]Member(nil), f.members...)
}

// Start launches one probe goroutine per current worker. Each loop
// probes immediately, so the fleet view converges within one probe
// round of startup. Workers joining later (SetMembers) get their loops
// started on arrival.
func (f *Fleet) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	for _, m := range f.members {
		f.startProbe(f.workers[m.ID])
	}
}

// startProbe (mu held) launches one worker's probe loop.
func (f *Fleet) startProbe(st *workerState) {
	rng := newJitter(f.cfg.Seed, f.laneSeq)
	f.laneSeq++
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			f.probe(st)
			// Jitter to [interval/2, interval): steady cadence, no
			// phase lock across workers.
			d := f.cfg.ProbeInterval/2 + time.Duration(rng.next()%uint64(f.cfg.ProbeInterval/2+1))
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-st.stop:
				t.Stop()
				return
			case <-f.stop:
				t.Stop()
				return
			}
		}
	}()
}

// SetMembers replaces the fleet membership. Kept workers (matched by
// ID) carry their breaker and drain state — and their running probe
// loop — across the change, with only their address updated; removed
// workers' probe loops stop; added workers start fresh (and, once Start
// has run, probing immediately). The ring rebuilds from the new ID set,
// so only the keys owned by leavers move. Returns the joined and left
// worker IDs.
func (f *Fleet) SetMembers(members []Member) (added, removed []string) {
	f.mu.Lock()
	keep := make(map[string]bool, len(members))
	ids := make([]string, len(members))
	for i, m := range members {
		keep[m.ID] = true
		ids[i] = m.ID
		m := m
		if st, ok := f.workers[m.ID]; ok {
			st.member.Store(&m) // the address may have moved
			continue
		}
		st := &workerState{
			br:   retry.NewBreaker(f.cfg.EjectThreshold, f.cfg.ReadmitCooldown, nil),
			stop: make(chan struct{}),
		}
		st.member.Store(&m)
		f.workers[m.ID] = st
		added = append(added, m.ID)
		if f.started {
			f.startProbe(st)
		}
	}
	for id, st := range f.workers {
		if !keep[id] {
			close(st.stop)
			delete(f.workers, id)
			removed = append(removed, id)
		}
	}
	f.members = append([]Member(nil), members...)
	f.ring = NewRing(f.cfg.Vnodes, ids...)
	f.mu.Unlock()
	for _, id := range added {
		f.cfg.Logf("cluster: worker %s joined the fleet", id)
	}
	for _, id := range removed {
		f.cfg.Logf("cluster: worker %s left the fleet", id)
	}
	return added, removed
}

// Stop terminates the probe loops and waits for them.
func (f *Fleet) Stop() {
	close(f.stop)
	f.wg.Wait()
}

// probe runs one readyz check against a worker, paced by its breaker:
// an open circuit (ejected worker mid-cooldown) skips the HTTP call
// entirely; the half-open probe the cooldown admits is the readmission
// check.
func (f *Fleet) probe(st *workerState) {
	if err := st.br.Allow(); err != nil {
		return // ejected, cooldown still running
	}
	m := st.member.Load()
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+m.Addr+"/readyz", nil)
	if err != nil {
		st.br.Abort()
		return
	}
	resp, err := f.http.Do(req)
	if err != nil {
		wasIn := st.br.State() == retry.Closed
		st.br.Record(false)
		if wasIn && st.br.State() == retry.Open {
			f.cfg.Logf("cluster: worker %s ejected (probe: %v)", m.ID, err)
		}
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	var rz serve.ReadyzResponse
	_ = json.Unmarshal(body, &rz)
	if rz.PID > 0 {
		st.lastPID.Store(int64(rz.PID))
		st.lastUptimeMS.Store(rz.UptimeMS)
	}

	wasDraining, wasOut := st.draining.Load(), st.br.State() != retry.Closed
	switch {
	case resp.StatusCode == http.StatusOK:
		st.draining.Store(false)
		st.br.Record(true)
	case rz.Status == "draining":
		// Healthy but leaving: out of the candidates, breaker untouched
		// closed so the restarted worker readmits instantly.
		st.draining.Store(true)
		st.br.Record(true)
	case rz.Status == "saturated":
		// Alive and truthfully shedding: stays in the ring.
		st.draining.Store(false)
		st.br.Record(true)
	default:
		// A 503 with no recognizable story, or any other status: count
		// against health like a failed probe.
		st.br.Record(false)
	}
	if wasOut && st.br.State() == retry.Closed {
		f.cfg.Logf("cluster: worker %s readmitted (pid %d)", m.ID, rz.PID)
	}
	if !wasDraining && st.draining.Load() {
		f.cfg.Logf("cluster: worker %s draining, removed from candidates", m.ID)
	}
}

// ReportForwardFailure records a forwarding transport failure against a
// worker's breaker, so a dead worker is ejected after threshold real
// requests even between probe ticks.
func (f *Fleet) ReportForwardFailure(id string) {
	f.mu.RLock()
	st, ok := f.workers[id]
	f.mu.RUnlock()
	if !ok {
		return
	}
	wasIn := st.br.State() == retry.Closed
	st.br.Record(false)
	if wasIn && st.br.State() == retry.Open {
		f.cfg.Logf("cluster: worker %s ejected (forward failures)", id)
	}
}

// eligible reports whether a worker is a routing candidate: breaker
// closed (healthy) and not draining.
func (f *Fleet) eligible(id string) bool {
	f.mu.RLock()
	st, ok := f.workers[id]
	f.mu.RUnlock()
	return ok && st.br.State() == retry.Closed && !st.draining.Load()
}

// Addr returns a member's address.
func (f *Fleet) Addr(id string) (string, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	st, ok := f.workers[id]
	if !ok {
		return "", false
	}
	return st.member.Load().Addr, true
}

// Candidates returns up to max eligible workers for key, in ring walk
// order (owner first). When NO worker is eligible the full walk is
// returned instead: with the whole fleet ejected, trying a possibly
// recovered worker beats refusing outright — the forward itself is the
// cheapest possible probe.
func (f *Fleet) Candidates(key []byte, max int) []string {
	walk := f.Ring().Lookup(key, 0)
	var out []string
	for _, id := range walk {
		if f.eligible(id) {
			out = append(out, id)
		}
	}
	if out == nil {
		out = walk
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// EligibleCount reports how many workers are currently routing
// candidates (router readiness).
func (f *Fleet) EligibleCount() int {
	f.mu.RLock()
	states := make([]*workerState, 0, len(f.workers))
	for _, st := range f.workers {
		states = append(states, st)
	}
	f.mu.RUnlock()
	n := 0
	for _, st := range states {
		if st.br.State() == retry.Closed && !st.draining.Load() {
			n++
		}
	}
	return n
}

// WorkerStatus is one member's row in a fleet snapshot (/v1/ring).
type WorkerStatus struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	State    string `json:"state"` // ready | draining | ejected
	PID      int    `json:"pid,omitempty"`
	UptimeMS int64  `json:"uptime_ms,omitempty"`
}

// RingStatus is the /v1/ring answer: membership, health, and ring
// geometry.
type RingStatus struct {
	Vnodes   int            `json:"vnodes"`
	Eligible int            `json:"eligible"`
	Workers  []WorkerStatus `json:"workers"`
}

// Snapshot reports every member's current state, in membership order.
func (f *Fleet) Snapshot() RingStatus {
	out := RingStatus{Vnodes: f.cfg.Vnodes, Eligible: f.EligibleCount()}
	f.mu.RLock()
	members := append([]Member(nil), f.members...)
	states := make([]*workerState, len(members))
	for i, m := range members {
		states[i] = f.workers[m.ID]
	}
	f.mu.RUnlock()
	for i, m := range members {
		st := states[i]
		ws := WorkerStatus{
			ID:       m.ID,
			Addr:     m.Addr,
			State:    "ready",
			PID:      int(st.lastPID.Load()),
			UptimeMS: st.lastUptimeMS.Load(),
		}
		switch {
		case st.draining.Load():
			ws.State = "draining"
		case st.br.State() != retry.Closed:
			ws.State = "ejected"
		}
		out.Workers = append(out.Workers, ws)
	}
	return out
}

// jitter is a tiny seeded xorshift64* used only for probe spacing.
type jitter struct{ s uint64 }

func newJitter(seed, lane int64) *jitter {
	s := uint64(seed)*0x9e3779b97f4a7c15 + uint64(lane)*0xbf58476d1ce4e5b9 + 0x2545f4914f6cdd1d
	return &jitter{s: s}
}

func (j *jitter) next() uint64 {
	j.s ^= j.s << 13
	j.s ^= j.s >> 7
	j.s ^= j.s << 17
	return j.s * 0x2545f4914f6cdd1d
}
