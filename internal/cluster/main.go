package cluster

// The schedrouter process entry point (cmd/schedrouter is a thin
// wrapper). It lives here — mirroring internal/daemon for schedd — so
// the chaos harness can re-exec the REAL router as a supervised child:
// same flags, same drain discipline, same exit statuses.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ChildEnv marks a re-executed schedrouter child process: harness
// binaries call Main when it is set, before anything else (see
// chaos.MaybeChild).
const ChildEnv = "CHAOS_SCHEDROUTER_CHILD"

// Main runs the router with the given argument list (without the
// program name) and returns the process exit status: 0 after a clean
// drain, 1 on any error, 2 on a flag error.
func Main(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8079", "listen address")
	workers := fs.String("workers", "", "comma-separated fleet members, id=host:port")
	workersFile := fs.String("workers-file", "", "file with fleet members, one id=host:port per line (# comments); SIGHUP re-reads it")
	vnodes := fs.Int("vnodes", DefaultVnodes, "virtual nodes per worker on the hash ring")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "mean readyz probe spacing per worker (jittered)")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "per-probe HTTP deadline")
	ejectThreshold := fs.Int("eject-threshold", 3, "consecutive probe/forward failures that eject a worker")
	readmitCooldown := fs.Duration("readmit-cooldown", 2*time.Second, "ejection cooldown before a half-open readmission probe")
	failover := fs.Int("failover-attempts", 0, "max distinct replicas per request (0 = all candidates)")
	seed := fs.Int64("seed", 1, "seed for probe jitter (minted idempotency keys carry a per-boot random nonce)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var members []Member
	var err error
	switch {
	case *workers != "" && *workersFile != "":
		fmt.Fprintln(stderr, "schedrouter: -workers and -workers-file are mutually exclusive")
		return 2
	case *workersFile != "":
		members, err = LoadMembersFile(*workersFile)
	case *workers != "":
		members, err = ParseMembers(*workers)
	default:
		fmt.Fprintln(stderr, "schedrouter: need -workers or -workers-file")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "schedrouter: %v\n", err)
		return 2
	}

	fleet := NewFleet(FleetConfig{
		Workers:         members,
		Vnodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		EjectThreshold:  *ejectThreshold,
		ReadmitCooldown: *readmitCooldown,
		Seed:            *seed,
		Logf:            log.Printf,
	})
	router := NewRouter(RouterConfig{
		Fleet:            fleet,
		FailoverAttempts: *failover,
		Logf:             log.Printf,
	})

	var reload func()
	if *workersFile != "" {
		reload = func() { reloadWorkers(*workersFile, fleet, log.Printf) }
	}
	if err := run(*addr, fleet, router, *drainTimeout, reload); err != nil {
		fmt.Fprintf(stderr, "schedrouter: %v\n", err)
		return 1
	}
	return 0
}

// reloadWorkers re-reads a -workers-file and swaps the fleet membership
// (the SIGHUP handler). A file that fails to load keeps the current
// membership — a half-edited file must never empty the fleet.
func reloadWorkers(path string, fleet *Fleet, logf func(format string, args ...any)) {
	members, err := LoadMembersFile(path)
	if err != nil {
		logf("schedrouter: reload %s: %v (keeping %d workers)", path, err, len(fleet.Members()))
		return
	}
	added, removed := fleet.SetMembers(members)
	logf("schedrouter: reloaded %s: %d workers (+%d -%d)", path, len(members), len(added), len(removed))
}

func run(addr string, fleet *Fleet, router *Router, drainTimeout time.Duration, reload func()) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fleet.Start()
	defer fleet.Stop()

	srv := &http.Server{Handler: router, ReadHeaderTimeout: 5 * time.Second}
	log.Printf("schedrouter: listening on %s (%d workers)", l.Addr(), len(fleet.Members()))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	hupc := make(chan os.Signal, 1)
	if reload != nil {
		signal.Notify(hupc, syscall.SIGHUP)
		defer signal.Stop(hupc)
	}

	var sig os.Signal
drain:
	for {
		select {
		case err := <-errc:
			return err // listener died before any signal
		case <-hupc:
			reload()
		case sig = <-sigc:
			break drain
		}
	}
	log.Printf("schedrouter: %v: draining (deadline %s)", sig, drainTimeout)
	signal.Stop(sigc)

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("schedrouter: drain deadline expired: %w", err)
	}
	served, failed, failovers := router.Stats()
	log.Printf("schedrouter: drained cleanly (served=%d failed=%d failovers=%d)", served, failed, failovers)
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
