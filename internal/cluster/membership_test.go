package cluster

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoadMembersFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workers.txt")
	content := `# the fleet
w1=localhost:9001
w2=localhost:9002   # staging box

localhost:9003
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMembersFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "w1", Addr: "localhost:9001"},
		{ID: "w2", Addr: "localhost:9002"},
		{ID: "localhost:9003", Addr: "localhost:9003"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LoadMembersFile = %+v, want %+v", got, want)
	}

	for name, bad := range map[string]string{
		"empty":      "# nothing here\n",
		"dup":        "w1=a:1\nw1=b:2\n",
		"malformed":  "=missing-id\n",
		"no-address": "w1=\n",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadMembersFile(p); err == nil {
			t.Errorf("%s: LoadMembersFile accepted %q", name, bad)
		}
	}

	if _, err := LoadMembersFile(filepath.Join(dir, "absent")); err == nil {
		t.Error("LoadMembersFile accepted a missing file")
	}
}

// TestSetMembers pins the dynamic-membership contract: joiners enter
// the ring and the candidate walks, leavers drop out everywhere, and a
// kept worker carries its health state (an open breaker) across the
// swap.
func TestSetMembers(t *testing.T) {
	f := NewFleet(FleetConfig{
		Workers: []Member{{ID: "w1", Addr: "h1:1"}, {ID: "w2", Addr: "h2:2"}},
	})

	added, removed := f.SetMembers([]Member{
		{ID: "w1", Addr: "h1:1"},
		{ID: "w3", Addr: "h3:3"},
	})
	if !reflect.DeepEqual(added, []string{"w3"}) || !reflect.DeepEqual(removed, []string{"w2"}) {
		t.Fatalf("added=%v removed=%v, want [w3]/[w2]", added, removed)
	}
	if got := f.Ring().Members(); !reflect.DeepEqual(got, []string{"w1", "w3"}) {
		t.Fatalf("ring members = %v, want [w1 w3]", got)
	}
	if _, ok := f.Addr("w2"); ok {
		t.Fatal("removed worker w2 still resolves an address")
	}
	if addr, ok := f.Addr("w3"); !ok || addr != "h3:3" {
		t.Fatalf("Addr(w3) = %q/%v, want h3:3/true", addr, ok)
	}
	for _, id := range f.Candidates([]byte("key"), 0) {
		if id == "w2" {
			t.Fatal("removed worker w2 still a routing candidate")
		}
	}

	// Ejected state survives a membership swap that keeps the worker.
	for i := 0; i < 5; i++ {
		f.ReportForwardFailure("w1")
	}
	if f.eligible("w1") {
		t.Fatal("w1 should be ejected after repeated forward failures")
	}
	f.SetMembers([]Member{{ID: "w1", Addr: "h1:99"}, {ID: "w3", Addr: "h3:3"}})
	if f.eligible("w1") {
		t.Fatal("membership swap reset w1's breaker")
	}
	if addr, _ := f.Addr("w1"); addr != "h1:99" {
		t.Fatalf("kept worker's address not updated: %q", addr)
	}
}

// TestSetMembersProbeLifecycle: on a started fleet, a joiner's probe
// loop begins immediately and a leaver's stops — its readyz endpoint
// goes quiet instead of being probed forever.
func TestSetMembersProbeLifecycle(t *testing.T) {
	w1, w2 := newFakeWorker(t, "w1"), newFakeWorker(t, "w2")
	var w2Probes atomic.Int64
	w2.setReady(func() (int, string) {
		w2Probes.Add(1)
		return http.StatusOK, `{"status":"ready","worker_id":"w2","pid":2}`
	})

	f := fastFleet(t, w1)
	waitFor(t, "w1 probed", 2*time.Second, func() bool { return f.EligibleCount() == 1 })

	// w2 joins: its probe loop starts and it becomes a candidate.
	f.SetMembers([]Member{w1.member(), w2.member()})
	waitFor(t, "w2 probed after join", 2*time.Second, func() bool {
		return w2Probes.Load() > 0 && f.EligibleCount() == 2
	})

	// w2 leaves: probes stop (modulo one in flight at removal time).
	f.SetMembers([]Member{w1.member()})
	waitFor(t, "w2 out of the candidates", 2*time.Second, func() bool { return f.EligibleCount() == 1 })
	settled := w2Probes.Load()
	time.Sleep(100 * time.Millisecond) // ~10 probe intervals
	if n := w2Probes.Load(); n > settled+1 {
		t.Fatalf("removed worker still probed: %d probes after removal", n-settled)
	}
	snap := f.Snapshot()
	if len(snap.Workers) != 1 || snap.Workers[0].ID != "w1" {
		t.Fatalf("snapshot after removal = %+v, want only w1", snap.Workers)
	}
}

// TestReloadWorkersFile drives the SIGHUP path's function directly: a
// good file swaps the membership, a bad one keeps it.
func TestReloadWorkersFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workers.txt")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("w1=h1:1\n")
	members, err := LoadMembersFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(FleetConfig{Workers: members})

	write("w1=h1:1\nw2=h2:2\n")
	reloadWorkers(path, f, t.Logf)
	if got := f.Ring().Members(); !reflect.DeepEqual(got, []string{"w1", "w2"}) {
		t.Fatalf("after good reload: %v, want [w1 w2]", got)
	}

	// A half-edited file must not empty the fleet.
	write("w1=h1:1\nw1=h1:1\n")
	reloadWorkers(path, f, t.Logf)
	if got := f.Ring().Members(); !reflect.DeepEqual(got, []string{"w1", "w2"}) {
		t.Fatalf("bad reload changed membership: %v", got)
	}
}
