package cluster

// Worker-side peer cache fill. Each worker knows the full static fleet
// and the same ring the router uses; on a local compare-cache miss it
// asks ONE ring peer — the first walk member that is not itself — for
// the memoized answer (GET /v1/cache/{key}) before paying to compute.
//
// Why one peer and not a broadcast: the ring owner of a fingerprint is
// where the router lands that fingerprint's traffic, so the owner's
// cache is overwhelmingly the one that has it. A worker asked directly
// (bypassing the router) walks to the owner in one hop; the owner
// itself walks to its first replica, which catches results computed
// during a failover window. Anything beyond that is latency spent on a
// miss that local compute would beat.
//
// The filled answer is deliberately NOT inserted into the local cache:
// a peer's JSON answer carries the response, not the *Comparison the
// cache stores, and re-deriving one from the other would duplicate the
// scheduler's output schema here. The trade: repeated off-owner misses
// re-ask the peer — one cheap HTTP GET each — while cache residency
// stays exactly "what this worker computed", which keeps the rows-
// identity chaos oracle byte-exact.

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"cds/internal/rescache"
	"cds/internal/serve"
)

// PeerFill implements serve.Config.PeerFill over a static fleet.
type PeerFill struct {
	self  string
	ring  *Ring
	addrs map[string]string
	http  *http.Client
	logf  func(format string, args ...any)
}

// NewPeerFill builds the fill client for the worker named self (its
// WorkerID) inside members. vnodes MUST match the router's ring setting
// (DefaultVnodes when <= 0) — a disagreeing ring would walk to a
// non-owner peer and mostly miss. timeout bounds one peer lookup
// (default 250ms — a peer slower than that loses to just computing);
// logf may be nil.
func NewPeerFill(self string, members []Member, vnodes int, timeout time.Duration, logf func(string, ...any)) *PeerFill {
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ids := make([]string, len(members))
	addrs := make(map[string]string, len(members))
	for i, m := range members {
		ids[i] = m.ID
		addrs[m.ID] = m.Addr
	}
	return &PeerFill{
		self:  self,
		ring:  NewRing(vnodes, ids...),
		addrs: addrs,
		http:  &http.Client{Timeout: timeout},
		logf:  logf,
	}
}

// Fill asks the fingerprint's first non-self ring member for the cached
// comparison under key. ok=false on any miss, error, or timeout — the
// caller computes locally and nothing is retried.
func (p *PeerFill) Fill(ctx context.Context, fp [32]byte, key rescache.Key) (*serve.CompareResponse, bool) {
	var peer string
	for _, id := range p.ring.Lookup(CompareKey(fp), 0) {
		if id != p.self {
			peer = id
			break
		}
	}
	if peer == "" {
		return nil, false // single-worker fleet
	}
	url := "http://" + p.addrs[peer] + "/v1/cache/" + hex.EncodeToString(key[:])
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, false
	}
	var out serve.CompareResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, false
	}
	p.logf("cluster: peer fill from %s", peer)
	return &out, true
}
