// Package cluster is the fleet layer of the scheduling service: a
// failure-aware consistent-hash router (cmd/schedrouter) in front of N
// schedd workers, plus the worker-side peer cache fill that lets one
// worker's rescache hit serve the whole fleet.
//
// Routing is by content, not by connection: /v1/compare requests hash by
// the partition's canonical fingerprint (internal/app) and /v1/sweep
// requests by their journal name, so a given spec always lands on the
// same worker while the membership holds — that worker's result cache
// and journal directory stay warm across calls, which is the run-time
// prefetch framing (Resano et al.) applied to a fleet: keep the working
// set where it already is.
//
// Membership is ID-stable: the ring hashes worker IDs, not addresses,
// so a worker restarted on the same (or a different) port keeps its key
// range, and a fleet of three always partitions the key space the same
// way from run to run. Failure handling is layered:
//
//   - a jittered probe loop health-checks every worker's truthful
//     /readyz; consecutive probe failures open a per-worker
//     internal/retry breaker, ejecting the worker from the ring, and the
//     breaker's half-open cooldown paces readmission probes;
//   - a worker answering "draining" (503 on /readyz during SIGTERM
//     drain) leaves the ring immediately WITHOUT breaker penalty — it is
//     healthy, just leaving — and its in-flight requests are untouched;
//   - a forward that dies on the wire (connect error, mid-body EOF)
//     fails over to the next ring replica with the SAME Idempotency-Key,
//     so the worker-side replay store dedupes any double submission.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Member is one fleet worker: a stable logical ID (what the ring
// hashes) and the address it currently serves on.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// parseMember parses one "id=host:port" (or bare "host:port") entry.
func parseMember(s string) (Member, error) {
	m := Member{ID: s, Addr: s}
	if i := strings.IndexByte(s, '='); i >= 0 {
		m.ID, m.Addr = s[:i], s[i+1:]
	}
	if m.ID == "" || m.Addr == "" {
		return Member{}, fmt.Errorf("cluster: bad worker %q (want id=host:port or host:port)", s)
	}
	return m, nil
}

// ParseMembers parses a comma-separated "-workers" flag value: each
// element is "id=host:port" or a bare "host:port" (whose ID is the
// address itself). IDs must be unique; order is preserved.
func ParseMembers(s string) ([]Member, error) {
	var ms []Member
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := parseMember(part)
		if err != nil {
			return nil, err
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate worker id %q", m.ID)
		}
		seen[m.ID] = true
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: no workers in %q", s)
	}
	return ms, nil
}

// LoadMembersFile reads a fleet membership file (-workers-file): one
// "id=host:port" (or bare "host:port") per line, blank lines and
// #-comments ignored. The router re-reads it on SIGHUP, so operators
// can resize the fleet without a restart.
func LoadMembersFile(path string) ([]Member, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []Member
	seen := map[string]bool{}
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		m, err := parseMember(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("%s:%d: duplicate worker id %q", path, ln+1, m.ID)
		}
		seen[m.ID] = true
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: no workers in %s", path)
	}
	return ms, nil
}

// DefaultVnodes is the virtual-node count per member: enough that a
// 3-worker fleet splits the key space within a few percent of evenly,
// small enough that ring construction stays microseconds.
const DefaultVnodes = 64

// ringPoint is one virtual node: a position on the hash circle owned by
// a member ID.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over member IDs. Lookup
// order is a pure function of (member set, key): equal inputs yield
// equal walks no matter the construction order, and removing a member
// moves only the keys that member owned (the defining property the
// ring tests pin).
type Ring struct {
	vnodes int
	points []ringPoint
	ids    []string
}

// NewRing builds a ring with vnodes virtual nodes per member
// (DefaultVnodes when <= 0). Duplicate IDs collapse; input order is
// irrelevant.
func NewRing(vnodes int, ids ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	set := map[string]bool{}
	var uniq []string
	for _, id := range ids {
		if id == "" || set[id] {
			continue
		}
		set[id] = true
		uniq = append(uniq, id)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, ids: uniq}
	r.points = make([]ringPoint, 0, vnodes*len(uniq))
	for _, id := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, i), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between two members' virtual nodes is
		// effectively impossible, but the tie-break keeps construction
		// deterministic even then.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Members returns the member IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.ids) }

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key []byte) (id string, ok bool) {
	w := r.Lookup(key, 1)
	if len(w) == 0 {
		return "", false
	}
	return w[0], true
}

// Lookup returns the first n DISTINCT members encountered walking
// clockwise from the key's position: the owner first, then the failover
// replicas in deterministic order. n <= 0 (or n > members) returns the
// full walk.
func (r *Ring) Lookup(key []byte, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.ids) {
		n = len(r.ids)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		out = append(out, p.id)
	}
	return out
}

// pointHash positions the i-th virtual node of a member: the first 8
// bytes of a domain-separated SHA-256, so member IDs of any shape
// spread uniformly.
func pointHash(id string, i int) uint64 {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	h.Write([]byte("cds/ring/point/v1\x00"))
	h.Write([]byte(id))
	h.Write([]byte{0})
	n := binary.PutUvarint(buf[:], uint64(i))
	h.Write(buf[:n])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a routing key on the circle, domain-separated from
// the virtual-node hashes.
func keyHash(key []byte) uint64 {
	h := sha256.New()
	h.Write([]byte("cds/ring/key/v1\x00"))
	h.Write(key)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// CompareKey is the routing key of a compare request: the partition's
// canonical content fingerprint. Every architecture variant of one
// partition routes to the same worker, so its cached comparisons pile
// up in one rescache instead of spreading thinly across the fleet.
func CompareKey(fp [32]byte) []byte {
	return append([]byte("compare/"), fp[:]...)
}

// SweepKey is the routing key of a sweep request: the journal name when
// the request has one — a resumed sweep MUST land on the worker holding
// the journal file — else a hash of the request body, so identical
// unjournaled sweeps at least share a worker's warm caches.
func SweepKey(journal string, body []byte) []byte {
	if journal != "" {
		return append([]byte("sweep/journal/"), journal...)
	}
	sum := sha256.Sum256(body)
	return append([]byte("sweep/body/"), sum[:]...)
}
