package cluster

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// testKeys returns n distinct routing keys shaped like real compare
// keys (fingerprint-derived).
func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		fp := sha256.Sum256([]byte(fmt.Sprintf("partition-%d", i)))
		keys[i] = CompareKey(fp)
	}
	return keys
}

func TestParseMembers(t *testing.T) {
	t.Parallel()
	ms, err := ParseMembers("w0=127.0.0.1:7100, w1=127.0.0.1:7101,127.0.0.1:7102")
	if err != nil {
		t.Fatalf("ParseMembers: %v", err)
	}
	want := []Member{
		{ID: "w0", Addr: "127.0.0.1:7100"},
		{ID: "w1", Addr: "127.0.0.1:7101"},
		{ID: "127.0.0.1:7102", Addr: "127.0.0.1:7102"},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("ParseMembers = %+v, want %+v", ms, want)
	}
	for _, bad := range []string{"", " , ", "w0=", "=addr", "w0=a,w0=b"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q): want error", bad)
		}
	}
}

func TestRingDeterminism(t *testing.T) {
	t.Parallel()
	keys := testKeys(200)
	// Same member set in any insertion order must produce identical
	// ownership and identical full replica walks.
	a := NewRing(0, "w0", "w1", "w2")
	b := NewRing(0, "w2", "w0", "w1", "w0") // shuffled + duplicate
	if !reflect.DeepEqual(a.Members(), []string{"w0", "w1", "w2"}) {
		t.Fatalf("Members = %v", a.Members())
	}
	for _, k := range keys {
		wa, wb := a.Lookup(k, 0), b.Lookup(k, 0)
		if !reflect.DeepEqual(wa, wb) {
			t.Fatalf("walk differs for %x: %v vs %v", k[:8], wa, wb)
		}
		if len(wa) != 3 {
			t.Fatalf("full walk has %d members, want 3", len(wa))
		}
	}
}

func TestRingLookupWalk(t *testing.T) {
	t.Parallel()
	r := NewRing(0, "w0", "w1", "w2", "w3")
	for _, k := range testKeys(100) {
		full := r.Lookup(k, 0)
		if len(full) != 4 {
			t.Fatalf("full walk = %v", full)
		}
		// Distinct members, prefix-consistent for every n.
		seen := map[string]bool{}
		for _, id := range full {
			if seen[id] {
				t.Fatalf("duplicate member %s in walk %v", id, full)
			}
			seen[id] = true
		}
		for n := 1; n <= 4; n++ {
			if got := r.Lookup(k, n); !reflect.DeepEqual(got, full[:n]) {
				t.Fatalf("Lookup(k,%d) = %v, want prefix %v", n, got, full[:n])
			}
		}
		owner, ok := r.Owner(k)
		if !ok || owner != full[0] {
			t.Fatalf("Owner = %q/%v, walk head %q", owner, ok, full[0])
		}
	}
	empty := NewRing(0)
	if _, ok := empty.Owner(testKeys(1)[0]); ok {
		t.Fatal("empty ring claims an owner")
	}
	if w := empty.Lookup(testKeys(1)[0], 3); w != nil {
		t.Fatalf("empty ring walk = %v", w)
	}
}

// TestRingLeaveMovesOnlyRemovedKeys pins the defining consistent-hash
// property: removing one member relocates exactly the keys that member
// owned; every other key keeps its owner.
func TestRingLeaveMovesOnlyRemovedKeys(t *testing.T) {
	t.Parallel()
	keys := testKeys(500)
	before := NewRing(0, "w0", "w1", "w2")
	after := NewRing(0, "w0", "w2") // w1 leaves
	moved, owned := 0, 0
	for _, k := range keys {
		a, _ := before.Owner(k)
		b, _ := after.Owner(k)
		if a == "w1" {
			owned++
			if b == "w1" {
				t.Fatalf("removed member still owns %x", k[:8])
			}
			// The key must fall to w1's failover replica from the old
			// ring — that is what makes router failover hit the same
			// worker a future ring rebuild would pick.
			if want := before.Lookup(k, 2)[1]; b != want {
				t.Fatalf("key %x moved to %s, want old replica %s", k[:8], b, want)
			}
			continue
		}
		if a != b {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member moved", moved)
	}
	if owned == 0 {
		t.Fatal("test vacuous: removed member owned no keys")
	}
}

// TestRingJoinMovementBounded pins that a join steals keys only for the
// new member and not many more than its fair share 1/n.
func TestRingJoinMovementBounded(t *testing.T) {
	t.Parallel()
	keys := testKeys(2000)
	before := NewRing(0, "w0", "w1", "w2")
	after := NewRing(0, "w0", "w1", "w2", "w3") // w3 joins
	moved := 0
	for _, k := range keys {
		a, _ := before.Owner(k)
		b, _ := after.Owner(k)
		if a != b {
			if b != "w3" {
				t.Fatalf("key %x moved %s→%s, not to the joiner", k[:8], a, b)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Fair share is 1/4; allow 2× for vnode placement variance.
	if frac == 0 || frac > 0.5 {
		t.Fatalf("join moved %.1f%% of keys, want (0%%, 50%%]", 100*frac)
	}
}

// TestRingBalance sanity-checks that vnodes spread ownership: no member
// of a 3-ring owns more than 60% or less than 10% of keys.
func TestRingBalance(t *testing.T) {
	t.Parallel()
	r := NewRing(0, "w0", "w1", "w2")
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		id, _ := r.Owner(k)
		counts[id]++
	}
	for id, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.10 || frac > 0.60 {
			t.Fatalf("member %s owns %.1f%% of keys: %v", id, 100*frac, counts)
		}
	}
}

func TestRoutingKeys(t *testing.T) {
	t.Parallel()
	var fp1, fp2 [32]byte
	fp1[0], fp2[0] = 1, 2
	if string(CompareKey(fp1)) == string(CompareKey(fp2)) {
		t.Fatal("distinct fingerprints share a compare key")
	}
	if string(CompareKey(fp1)) != string(CompareKey(fp1)) {
		t.Fatal("compare key not deterministic")
	}
	// Journal name dominates body for sweeps; bodies only matter when
	// unjournaled.
	if string(SweepKey("j1", []byte("a"))) != string(SweepKey("j1", []byte("b"))) {
		t.Fatal("journaled sweep key depends on body")
	}
	if string(SweepKey("j1", nil)) == string(SweepKey("j2", nil)) {
		t.Fatal("distinct journals share a sweep key")
	}
	if string(SweepKey("", []byte("a"))) == string(SweepKey("", []byte("b"))) {
		t.Fatal("unjournaled sweeps with distinct bodies share a key")
	}
}

// FuzzRing churns membership and checks structural invariants: walks
// are duplicate-free, cover min(n, members), and ownership of keys not
// adjacent to the change survives single-member removal.
func FuzzRing(f *testing.F) {
	f.Add(uint64(1), 3, 5)
	f.Add(uint64(42), 1, 1)
	f.Add(uint64(7), 8, 16)
	f.Fuzz(func(t *testing.T, seed uint64, members, nkeys int) {
		if members < 1 {
			members = 1
		}
		if members > 12 {
			members = 12
		}
		if nkeys < 1 {
			nkeys = 1
		}
		if nkeys > 64 {
			nkeys = 64
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		ids := make([]string, members)
		for i := range ids {
			ids[i] = fmt.Sprintf("m%d-%d", i, rng.Intn(1000))
		}
		r := NewRing(16, ids...)
		keys := testKeys(nkeys)
		for _, k := range keys {
			walk := r.Lookup(k, 0)
			if len(walk) != r.Len() {
				t.Fatalf("walk %v covers %d of %d members", walk, len(walk), r.Len())
			}
			seen := map[string]bool{}
			for _, id := range walk {
				if seen[id] {
					t.Fatalf("duplicate %s in walk %v", id, walk)
				}
				seen[id] = true
			}
		}
		if r.Len() < 2 {
			return
		}
		// Remove a random member: survivors' keys must not move.
		gone := r.Members()[rng.Intn(r.Len())]
		var rest []string
		for _, id := range r.Members() {
			if id != gone {
				rest = append(rest, id)
			}
		}
		shrunk := NewRing(16, rest...)
		for _, k := range keys {
			a, _ := r.Owner(k)
			if a == gone {
				continue
			}
			if b, _ := shrunk.Owner(k); a != b {
				t.Fatalf("key %x moved %s→%s though %s left", k[:8], a, b, gone)
			}
		}
	})
}
