package cluster

// The router: a thin, stateless HTTP front for a schedd fleet. It
// forwards /v1/compare and /v1/sweep to the ring owner of the request's
// routing key and fails over along the replica walk when a worker dies
// under the request. The router holds no scheduling state of its own —
// every correctness guarantee (idempotent replay, journal locking,
// crash-safe resume) lives in the workers; the router's job is only to
// pick them well and to never turn a surviving fleet into an outage.
//
// Failover discipline:
//
//   - Transport failures (connect refused, reset, truncated body) move
//     to the next distinct replica and count against the worker's
//     breaker (ReportForwardFailure).
//   - 500/502/503/504 worker answers fail over too; if every candidate
//     answers 5xx the LAST such answer is relayed verbatim — the worker
//     verdict (circuit_open, transient_fault...) is more informative
//     than anything the router could synthesize.
//   - Everything else (2xx, 4xx including 429) relays immediately: a
//     request error will not get better on a different replica, and a
//     truthful 429 must reach the client's backoff.
//   - Every forwarded attempt of one request carries the SAME
//     Idempotency-Key — the client's if present, a router-minted one
//     otherwise — so a failover after a worker accepted-but-couldn't-
//     answer is deduped by the replay store when it lands back on that
//     worker. Minted keys carry a per-process random nonce: a restarted
//     router (or a second router in front of the same fleet) must never
//     re-issue a key some earlier request already burned, or the
//     worker's replay store would answer the OLD request's result.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"cds/internal/spec"
	"cds/internal/workloads"
)

// maxForwardBody bounds request and response bodies the router buffers.
// Responses are buffered in full before relaying so a worker dying
// mid-answer is a failover, not a truncated 200 at the client.
const maxForwardBody = 16 << 20

// AttemptsHeader reports how many workers a request visited.
const AttemptsHeader = "Router-Attempts"

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Fleet supplies membership, health and the ring. Required.
	Fleet *Fleet
	// FailoverAttempts caps how many distinct replicas one request may
	// visit (0 = every candidate).
	FailoverAttempts int
	// HTTP substitutes the forwarding transport; nil means a plain
	// client (no client-side timeout: forwards inherit the request
	// context, and long journaled sweeps legitimately run for minutes).
	HTTP *http.Client
	// Logf observes routing decisions; nil disables.
	Logf func(format string, args ...any)
}

// Router is the http.Handler. Construct with NewRouter.
type Router struct {
	cfg   RouterConfig
	fleet *Fleet
	http  *http.Client
	mux   *http.ServeMux
	// nonce namespaces minted idempotency keys to this router process:
	// the minted counter restarts at zero with the process, and only the
	// nonce keeps a rebooted router's key stream disjoint from the one it
	// issued before the restart.
	nonce   string
	minted  atomic.Int64
	served  atomic.Int64
	failed  atomic.Int64
	reroute atomic.Int64
}

// NewRouter builds the router over a fleet.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := cfg.HTTP
	if h == nil {
		// A deep idle pool per worker: the router multiplexes every
		// client onto a few upstreams, so the default two idle conns per
		// host would churn ports under any concurrent burst.
		h = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{cfg: cfg, fleet: cfg.Fleet, http: h, mux: http.NewServeMux(), nonce: bootNonce()}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /v1/ring", rt.handleRing)
	rt.mux.HandleFunc("POST /v1/compare", rt.handleCompare)
	rt.mux.HandleFunc("POST /v1/sweep", rt.handleSweep)
	return rt
}

// bootNonce draws the per-process key namespace. The crypto/rand
// failure path (exotic: no urandom) falls back to the boot clock —
// still distinct across restarts, which is all the nonce must be.
func bootNonce() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: the router is ready while at least one worker is a
// routing candidate. With zero, load balancers should stop sending — a
// 503 here is the fleet-level analogue of a worker's truthful readyz.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := rt.fleet.Snapshot()
	status := http.StatusOK
	state := "ready"
	if snap.Eligible == 0 {
		status, state = http.StatusServiceUnavailable, "no_workers"
		w.Header().Set("Retry-After", "1")
	}
	writeRouterJSON(w, status, map[string]any{
		"status":   state,
		"eligible": snap.Eligible,
		"workers":  len(snap.Workers),
	})
}

func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, rt.fleet.Snapshot())
}

// compareRoutingKey resolves a compare request body to its partition
// fingerprint — the SAME fingerprint the worker's result cache keys on,
// resolved the same way (workload table or embedded spec). Requests the
// router cannot resolve (unknown workload, bad spec) hash by raw body:
// they still route deterministically, and the worker stays the single
// authority for the 400.
func compareRoutingKey(body []byte) []byte {
	var req struct {
		Workload string          `json:"workload"`
		Spec     json.RawMessage `json:"spec"`
	}
	if err := json.Unmarshal(body, &req); err == nil {
		if req.Workload != "" {
			if e, err := workloads.ByName(req.Workload); err == nil {
				return CompareKey(e.Part.Fingerprint())
			}
		} else if len(req.Spec) > 0 {
			if part, _, err := spec.Parse(req.Spec); err == nil {
				return CompareKey(part.Fingerprint())
			}
		}
	}
	return SweepKey("", body) // content-hash fallback
}

func (rt *Router) handleCompare(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
	if err != nil {
		writeRouterErr(w, http.StatusBadRequest, "reading request body: "+err.Error(), "invalid_spec")
		return
	}
	// One idempotency key per request, minted here when the client sent
	// none, reused verbatim across every failover attempt.
	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey == "" {
		idemKey = fmt.Sprintf("rt-%s-%d", rt.nonce, rt.minted.Add(1))
	}
	rt.forward(w, r, compareRoutingKey(body), body, idemKey)
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
	if err != nil {
		writeRouterErr(w, http.StatusBadRequest, "reading request body: "+err.Error(), "invalid_spec")
		return
	}
	var req struct {
		Journal string `json:"journal"`
	}
	_ = json.Unmarshal(body, &req)
	// Sweeps carry no Idempotency-Key: their exactly-once story is the
	// journal (name lock + resume), which is also the routing key.
	rt.forward(w, r, SweepKey(req.Journal, body), body, r.Header.Get("Idempotency-Key"))
}

// forward tries the key's candidates in ring order until one produces a
// relayable answer.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key, body []byte, idemKey string) {
	candidates := rt.fleet.Candidates(key, rt.cfg.FailoverAttempts)
	if len(candidates) == 0 {
		rt.failed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeRouterErr(w, http.StatusServiceUnavailable, "no workers in the fleet", "no_upstream")
		return
	}
	var lastResp *bufferedResponse
	var transportErrs []string
	for i, id := range candidates {
		addr, ok := rt.fleet.Addr(id)
		if !ok {
			continue
		}
		resp, err := rt.tryWorker(r, addr, body, idemKey)
		if err != nil {
			if r.Context().Err() != nil {
				// The CLIENT vanished (disconnect or deadline) while the
				// forward was in flight. That is not the worker's fault —
				// a breaker penalty here would let a burst of impatient
				// clients eject a healthy worker pinned to a hot key —
				// and the failover walk is pointless: every further
				// attempt dies the same way. Answer best-effort and stop.
				rt.failed.Add(1)
				rt.cfg.Logf("cluster: %s %s: client gone during forward to %s (%v)", r.Method, r.URL.Path, id, err)
				writeRouterErr(w, http.StatusServiceUnavailable, "client canceled while forwarding: "+err.Error(), "canceled")
				return
			}
			// Dead on the wire: count it against the worker and move on.
			rt.fleet.ReportForwardFailure(id)
			transportErrs = append(transportErrs, fmt.Sprintf("%s: %v", id, err))
			rt.cfg.Logf("cluster: %s %s: worker %s failed (%v), failing over", r.Method, r.URL.Path, id, err)
			continue
		}
		if isFailoverStatus(resp.status) && i < len(candidates)-1 {
			rt.reroute.Add(1)
			rt.cfg.Logf("cluster: %s %s: worker %s answered %d, failing over", r.Method, r.URL.Path, id, resp.status)
			lastResp = resp
			continue
		}
		rt.served.Add(1)
		resp.relay(w, i+1)
		return
	}
	// Candidates exhausted. A worker's 5xx verdict beats a synthetic
	// error; with only transport failures, answer 503 (retryable — the
	// fleet may be mid-recovery) rather than 502, so well-behaved
	// clients back off and re-pose.
	rt.failed.Add(1)
	if lastResp != nil {
		lastResp.relay(w, len(candidates))
		return
	}
	w.Header().Set("Retry-After", "1")
	writeRouterErr(w, http.StatusServiceUnavailable,
		"no upstream answered: "+strings.Join(transportErrs, "; "), "no_upstream")
}

// isFailoverStatus reports worker answers worth trying elsewhere:
// server-side trouble. 429 is excluded on purpose (truthful shedding
// must reach the client), as is every 4xx.
func isFailoverStatus(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// bufferedResponse is one worker's complete answer, safe to relay or
// discard.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// relayHeaders are the worker headers worth forwarding to the client.
var relayHeaders = []string{
	"Content-Type", "Retry-After", "Idempotency-Replayed", "Server-Timing", "Schedd-Worker",
}

func (b *bufferedResponse) relay(w http.ResponseWriter, attempts int) {
	for _, h := range relayHeaders {
		if v := b.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(AttemptsHeader, fmt.Sprintf("%d", attempts))
	w.WriteHeader(b.status)
	w.Write(b.body)
}

// tryWorker forwards the request to one worker and buffers the full
// answer. Any transport error — including one that strikes after the
// status line, mid-body — returns err, making worker death at ANY point
// a failover instead of a garbled client answer.
func (rt *Router) tryWorker(r *http.Request, addr string, body []byte, idemKey string) (*bufferedResponse, error) {
	url := "http://" + addr + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := rt.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// Read one byte past the relay budget: an answer that overflows it is
	// a forward failure (fail over, or 503 when candidates run out), never
	// a silently truncated 200 relayed as if complete.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody+1))
	if err != nil {
		return nil, fmt.Errorf("reading worker answer: %w", err)
	}
	if len(data) > maxForwardBody {
		return nil, fmt.Errorf("worker answer exceeds the %d-byte relay budget", maxForwardBody)
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// Stats reports the router's cumulative counters.
func (rt *Router) Stats() (served, failed, failovers int64) {
	return rt.served.Load(), rt.failed.Load(), rt.reroute.Load()
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeRouterErr(w http.ResponseWriter, status int, msg, class string) {
	writeRouterJSON(w, status, map[string]string{"error": msg, "class": class})
}
