package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cds/internal/rescache"
	"cds/internal/serve"
	"cds/internal/workloads"
)

// fakeWorker is an in-process stand-in for one schedd worker: a real
// HTTP listener with a scripted /readyz and recordable work endpoints.
type fakeWorker struct {
	id  string
	srv *httptest.Server

	mu       sync.Mutex
	ready    func() (int, string) // status, body for /readyz
	work     func(w http.ResponseWriter, r *http.Request)
	hits     int
	idemKeys []string
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	f := &fakeWorker{id: id}
	f.ready = func() (int, string) {
		return http.StatusOK, fmt.Sprintf(`{"status":"ready","worker_id":%q,"pid":1}`, id)
	}
	f.work = func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"target":"MPEG","basic":{},"ds":{},"cds":{},"attempts":1,"worker_id":%q}`, id)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		status, body := f.ready()
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		io.WriteString(w, body)
	})
	handle := func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.hits++
		f.idemKeys = append(f.idemKeys, r.Header.Get("Idempotency-Key"))
		work := f.work
		f.mu.Unlock()
		w.Header().Set(serve.WorkerHeader, f.id)
		work(w, r)
	}
	mux.HandleFunc("POST /v1/compare", handle)
	mux.HandleFunc("POST /v1/sweep", handle)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeWorker) member() Member {
	return Member{ID: f.id, Addr: strings.TrimPrefix(f.srv.URL, "http://")}
}

func (f *fakeWorker) setReady(fn func() (int, string)) {
	f.mu.Lock()
	f.ready = fn
	f.mu.Unlock()
}

func (f *fakeWorker) setWork(fn func(w http.ResponseWriter, r *http.Request)) {
	f.mu.Lock()
	f.work = fn
	f.mu.Unlock()
}

func (f *fakeWorker) snapshot() (hits int, keys []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits, append([]string(nil), f.idemKeys...)
}

// fastFleet builds a fleet with test-speed probes over the workers and
// starts it.
func fastFleet(t *testing.T, ws ...*fakeWorker) *Fleet {
	t.Helper()
	members := make([]Member, len(ws))
	for i, w := range ws {
		members[i] = w.member()
	}
	f := NewFleet(FleetConfig{
		Workers:         members,
		ProbeInterval:   10 * time.Millisecond,
		ProbeTimeout:    200 * time.Millisecond,
		EjectThreshold:  2,
		ReadmitCooldown: 50 * time.Millisecond,
		Seed:            1,
	})
	f.Start()
	t.Cleanup(f.Stop)
	return f
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func routerFor(t *testing.T, fleet *Fleet) *httptest.Server {
	t.Helper()
	rt := NewRouter(RouterConfig{Fleet: fleet})
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// mpegOwner computes which of ids owns the MPEG compare key — the same
// math the router runs.
func mpegOwner(t *testing.T, ring *Ring) string {
	t.Helper()
	e, err := workloads.ByName("MPEG")
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := ring.Owner(CompareKey(e.Part.Fingerprint()))
	if !ok {
		t.Fatal("empty ring")
	}
	return owner
}

func TestRouterRoutesToRingOwner(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w0"), newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	fleet := fastFleet(t, ws...)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 3 })
	srv := routerFor(t, fleet)

	owner := mpegOwner(t, fleet.Ring())
	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compare = %d: %s", resp.StatusCode, data)
		}
		if got := resp.Header.Get(serve.WorkerHeader); got != owner {
			t.Fatalf("request %d served by %q, want ring owner %q", i, got, owner)
		}
		if got := resp.Header.Get(AttemptsHeader); got != "1" {
			t.Fatalf("attempts = %q, want 1", got)
		}
	}
	for _, w := range ws {
		hits, _ := w.snapshot()
		if w.id == owner && hits != 5 {
			t.Fatalf("owner %s saw %d hits, want 5", w.id, hits)
		}
		if w.id != owner && hits != 0 {
			t.Fatalf("non-owner %s saw %d hits, want 0", w.id, hits)
		}
	}
}

func TestRouterFailoverReusesIdempotencyKey(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w0"), newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	fleet := fastFleet(t, ws...)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 3 })
	srv := routerFor(t, fleet)
	owner := mpegOwner(t, fleet.Ring())

	// The owner answers 503: the router must fail over to the next
	// replica with the same key.
	for _, w := range ws {
		if w.id == owner {
			w.setWork(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"mid-crash","class":"transient_fault"}`)
			})
		}
	}
	resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, map[string]string{
		"Idempotency-Key": "client-key-1",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover answer = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(AttemptsHeader); got != "2" {
		t.Fatalf("attempts = %q, want 2", got)
	}
	replica := fleet.Ring().Lookup(CompareKey(mustFingerprint(t)), 2)[1]
	if got := resp.Header.Get(serve.WorkerHeader); got != replica {
		t.Fatalf("served by %q, want first replica %q", got, replica)
	}
	var sawOwner, sawReplica []string
	for _, w := range ws {
		_, keys := w.snapshot()
		switch w.id {
		case owner:
			sawOwner = keys
		case replica:
			sawReplica = keys
		}
	}
	if len(sawOwner) != 1 || len(sawReplica) != 1 {
		t.Fatalf("key spread owner=%v replica=%v, want one attempt each", sawOwner, sawReplica)
	}
	if sawOwner[0] != "client-key-1" || sawReplica[0] != "client-key-1" {
		t.Fatalf("failover changed the key: owner saw %q, replica saw %q", sawOwner[0], sawReplica[0])
	}
}

func mustFingerprint(t *testing.T) [32]byte {
	t.Helper()
	e, err := workloads.ByName("MPEG")
	if err != nil {
		t.Fatal(err)
	}
	return e.Part.Fingerprint()
}

func TestRouterMintsKeysWhenClientSendsNone(t *testing.T) {
	w0 := newFakeWorker(t, "w0")
	fleet := fastFleet(t, w0)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 1 })
	srv := routerFor(t, fleet)

	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compare = %d: %s", resp.StatusCode, data)
		}
	}
	_, keys := w0.snapshot()
	if len(keys) != 2 || keys[0] == "" || keys[0] == keys[1] {
		t.Fatalf("minted keys = %v, want two distinct non-empty keys", keys)
	}
	if !strings.HasPrefix(keys[0], "rt-") {
		t.Fatalf("minted key %q missing router prefix", keys[0])
	}

	// A second router over the same fleet — the restart scenario, where
	// the minted counter restarts at zero — must mint from a DISJOINT key
	// stream, or the workers' replay store would answer the old router's
	// request N to the new router's unrelated request N.
	srv2 := routerFor(t, fleet)
	resp, data := postJSON(t, srv2.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare via second router = %d: %s", resp.StatusCode, data)
	}
	_, keys = w0.snapshot()
	if len(keys) != 3 || keys[2] == keys[0] || keys[2] == keys[1] {
		t.Fatalf("minted keys = %v, want the second router's key distinct from the first's", keys)
	}
}

func TestRouterClientCancelDoesNotPenalizeWorker(t *testing.T) {
	w0 := newFakeWorker(t, "w0")
	w0.setWork(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body first (as the real daemon does): the net/http
		// server only watches for a client disconnect — which is what
		// cancels r.Context() — once the request body is drained.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // a slow sweep, outlived by the client
	})
	fleet := fastFleet(t, w0)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 1 })
	srv := routerFor(t, fleet)

	// fastFleet ejects at 2 consecutive failures: if client cancellations
	// counted against the breaker, these three would eject w0.
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/compare", strings.NewReader(`{"workload":"MPEG"}`))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
		cancel()
	}
	if n := fleet.EligibleCount(); n != 1 {
		t.Fatalf("eligible workers after client cancellations = %d, want 1 (impatient clients must not eject a healthy worker)", n)
	}
	w0.setWork(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"target":"MPEG","basic":{},"ds":{},"cds":{},"attempts":1,"worker_id":"w0"}`)
	})
	resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare after cancellations = %d: %s", resp.StatusCode, data)
	}
}

func TestRouterOversizedWorkerAnswerFailsOver(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w0"), newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	fleet := fastFleet(t, ws...)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 3 })
	srv := routerFor(t, fleet)
	owner := mpegOwner(t, fleet.Ring())

	// The owner answers 200 with a body past the relay budget: relaying a
	// truncated prefix as a complete 200 would be a silent wrong answer,
	// so the router must treat it as a forward failure and walk on.
	huge := bytes.Repeat([]byte("x"), maxForwardBody+1)
	for _, w := range ws {
		if w.id == owner {
			w.setWork(func(w http.ResponseWriter, r *http.Request) {
				w.Write(huge)
			})
		}
	}
	resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer = %d: %s", resp.StatusCode, data[:min(len(data), 200)])
	}
	if got := resp.Header.Get(serve.WorkerHeader); got == owner || got == "" {
		t.Fatalf("served by %q, want a replica (oversized answers must not be relayed)", got)
	}
	if got := resp.Header.Get(AttemptsHeader); got != "2" {
		t.Fatalf("attempts = %q, want 2", got)
	}
	if len(data) > maxForwardBody {
		t.Fatalf("relayed body is %d bytes, past the budget", len(data))
	}
}

// TestPeerFillRingMatchesRouterVnodes pins the vnodes plumbing: a
// worker-side peer-fill ring built with the router's (non-default)
// vnode count must pick the same owner the router's ring does for
// every fingerprint.
func TestPeerFillRingMatchesRouterVnodes(t *testing.T) {
	members := []Member{
		{ID: "w0", Addr: "127.0.0.1:1"},
		{ID: "w1", Addr: "127.0.0.1:2"},
		{ID: "w2", Addr: "127.0.0.1:3"},
	}
	const vnodes = 7 // deliberately not DefaultVnodes
	routerRing := NewRing(vnodes, "w0", "w1", "w2")
	pf := NewPeerFill("w1", members, vnodes, time.Second, nil)
	for i := 0; i < 64; i++ {
		key := CompareKey([32]byte{byte(i), byte(i >> 8)})
		want, _ := routerRing.Owner(key)
		got, _ := pf.ring.Owner(key)
		if got != want {
			t.Fatalf("key %d: peer-fill ring owner = %q, router ring owner = %q (vnodes disagreement)", i, got, want)
		}
	}
}

func TestRouterDeadWorkerTransportFailover(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w0"), newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	fleet := fastFleet(t, ws...)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 3 })
	srv := routerFor(t, fleet)
	owner := mpegOwner(t, fleet.Ring())

	// Kill the owner outright: connection refused, not a 5xx.
	for _, w := range ws {
		if w.id == owner {
			w.srv.Close()
		}
	}
	resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer with dead owner = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(serve.WorkerHeader); got == owner || got == "" {
		t.Fatalf("served by %q, want a surviving replica", got)
	}
	// The dead worker is ejected once forward failures reach the
	// threshold; the next request then routes straight to the successor.
	postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	waitFor(t, "dead owner ejected", 2*time.Second, func() bool { return fleet.EligibleCount() == 2 })
	resp, _ = postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if got := resp.Header.Get(AttemptsHeader); got != "1" {
		t.Fatalf("post-ejection attempts = %q, want 1 (no more probing the corpse)", got)
	}
}

func TestRouterClientErrorsDoNotFailOver(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w0"), newFakeWorker(t, "w1")}
	for _, w := range ws {
		w.setWork(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusBadRequest)
			io.WriteString(w, `{"error":"bad","class":"invalid_spec"}`)
		})
	}
	fleet := fastFleet(t, ws...)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 2 })
	srv := routerFor(t, fleet)

	resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("answer = %d: %s", resp.StatusCode, data)
	}
	total := 0
	for _, w := range ws {
		hits, _ := w.snapshot()
		total += hits
	}
	if total != 1 {
		t.Fatalf("a 400 visited %d workers, want 1 (request errors never fail over)", total)
	}
}

func TestRouterAllWorkersDead(t *testing.T) {
	w0 := newFakeWorker(t, "w0")
	fleet := fastFleet(t, w0)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 1 })
	srv := routerFor(t, fleet)
	w0.srv.Close()

	resp, data := postJSON(t, srv.URL+"/v1/compare", `{"workload":"MPEG"}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("answer = %d: %s, want 503", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "no_upstream") {
		t.Fatalf("body %s missing no_upstream class", data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	// Router readiness turns truthful once every worker is ejected.
	waitFor(t, "router not ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 0 })
	r, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router readyz = %d with zero workers, want 503", r.StatusCode)
	}
}

func TestFleetEjectsDeadAndReadmitsRestartedWorker(t *testing.T) {
	// A worker on a listener we control, so it can die and come back on
	// the SAME address (the chaos restart scenario).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ready","worker_id":"w0","pid":1}`)
	})
	hs := &http.Server{Handler: mux}
	go hs.Serve(l)

	fleet := NewFleet(FleetConfig{
		Workers:         []Member{{ID: "w0", Addr: addr}},
		ProbeInterval:   10 * time.Millisecond,
		ProbeTimeout:    200 * time.Millisecond,
		EjectThreshold:  2,
		ReadmitCooldown: 50 * time.Millisecond,
		Seed:            7,
	})
	fleet.Start()
	defer fleet.Stop()
	waitFor(t, "initial admission", 2*time.Second, func() bool { return fleet.EligibleCount() == 1 })

	hs.Close()
	waitFor(t, "ejection after death", 2*time.Second, func() bool { return fleet.EligibleCount() == 0 })
	if st := fleet.Snapshot().Workers[0].State; st != "ejected" {
		t.Fatalf("state = %q, want ejected", st)
	}

	// Restart on the same address: the cooldown's half-open probe must
	// readmit it.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: mux}
	go hs2.Serve(l2)
	defer hs2.Close()
	waitFor(t, "readmission after restart", 3*time.Second, func() bool { return fleet.EligibleCount() == 1 })
}

func TestFleetDrainingWorkerLeavesCandidatesWithoutPenalty(t *testing.T) {
	wa, wb := newFakeWorker(t, "wa"), newFakeWorker(t, "wb")
	fleet := fastFleet(t, wa, wb)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 2 })

	wa.setReady(func() (int, string) {
		return http.StatusServiceUnavailable, `{"status":"draining","worker_id":"wa","pid":1}`
	})
	waitFor(t, "draining removal", 2*time.Second, func() bool { return fleet.EligibleCount() == 1 })
	snap := fleet.Snapshot()
	for _, w := range snap.Workers {
		if w.ID == "wa" && w.State != "draining" {
			t.Fatalf("wa state = %q, want draining", w.State)
		}
	}
	// Every key now routes to wb only.
	for i := 0; i < 10; i++ {
		key := CompareKey([32]byte{byte(i)})
		if c := fleet.Candidates(key, 0); len(c) != 1 || c[0] != "wb" {
			t.Fatalf("candidates = %v, want [wb]", c)
		}
	}

	// Coming back (a restart finished, or drain aborted) readmits on the
	// FIRST ready probe — no breaker cooldown for a clean drain.
	wa.setReady(func() (int, string) {
		return http.StatusOK, `{"status":"ready","worker_id":"wa","pid":2}`
	})
	waitFor(t, "instant readmission", time.Second, func() bool { return fleet.EligibleCount() == 2 })
}

func TestFleetSaturatedWorkerStaysRouted(t *testing.T) {
	w0 := newFakeWorker(t, "w0")
	fleet := fastFleet(t, w0)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 1 })
	w0.setReady(func() (int, string) {
		return http.StatusServiceUnavailable, `{"status":"saturated","worker_id":"w0","pid":1,"queue_depth":8,"queue_capacity":8}`
	})
	// Saturation must NOT eject: give the probes a few rounds, then
	// check the worker is still a candidate.
	time.Sleep(60 * time.Millisecond)
	if fleet.EligibleCount() != 1 {
		t.Fatal("saturated worker was ejected; overload must stay routed (it sheds truthfully itself)")
	}
}

func TestRouterSweepRoutesByJournal(t *testing.T) {
	ws := []*fakeWorker{newFakeWorker(t, "w0"), newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	fleet := fastFleet(t, ws...)
	waitFor(t, "fleet ready", 2*time.Second, func() bool { return fleet.EligibleCount() == 3 })
	srv := routerFor(t, fleet)

	body := `{"archs":["M1"],"journal":"night-7"}`
	owner, _ := fleet.Ring().Owner(SweepKey("night-7", []byte(body)))
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, srv.URL+"/v1/sweep", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep = %d: %s", resp.StatusCode, data)
		}
		if got := resp.Header.Get(serve.WorkerHeader); got != owner {
			t.Fatalf("sweep served by %q, want journal owner %q", got, owner)
		}
	}
}

func TestPeerFillWalksRingAndDecodes(t *testing.T) {
	// A peer that has the answer under any key.
	canned := serve.CompareResponse{WorkerID: "w-owner", RF: 2, CDS: serve.SchedulerResult{TotalCycles: 777}}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/cache/") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(canned)
	}))
	defer peer.Close()
	peerAddr := strings.TrimPrefix(peer.URL, "http://")

	members := []Member{{ID: "w-owner", Addr: peerAddr}, {ID: "w-self", Addr: "127.0.0.1:1"}}
	pf := NewPeerFill("w-self", members, DefaultVnodes, time.Second, nil)

	var fp [32]byte
	fp[0] = 9
	var key rescache.Key
	key[0] = 9
	got, ok := pf.Fill(context.Background(), fp, key)
	if !ok {
		t.Fatal("Fill missed against a serving peer")
	}
	if got.WorkerID != "w-owner" || got.CDS.TotalCycles != 777 {
		t.Fatalf("filled = %+v, want the peer's canned answer", got)
	}

	// Single-member fleet: no peer to ask.
	solo := NewPeerFill("w-self", []Member{{ID: "w-self", Addr: "127.0.0.1:1"}}, DefaultVnodes, time.Second, nil)
	if _, ok := solo.Fill(context.Background(), fp, key); ok {
		t.Fatal("solo fleet found a peer")
	}

	// Dead peer: a miss, never an error.
	deadFirst := NewPeerFill("w-self", []Member{{ID: "w-owner", Addr: "127.0.0.1:1"}, {ID: "w-self", Addr: peerAddr}}, DefaultVnodes, 100*time.Millisecond, nil)
	if _, ok := deadFirst.Fill(context.Background(), fp, key); ok {
		t.Fatal("dead peer produced a fill")
	}
}
