package codegen

import (
	"fmt"

	"cds/internal/arch"
	"cds/internal/core"
)

// CheckReport summarizes a successful replay of a program against the
// machine's transfer discipline.
type CheckReport struct {
	// LoadBytes, StoreBytes, CtxWords are the volumes the program
	// moves; they must match the schedule it was generated from.
	LoadBytes, StoreBytes, CtxWords int
	// Execs counts kernel invocations.
	Execs int
}

// Check replays the program and enforces the MorphoSys transfer rules:
//
//   - LDCTXT must fit the Context Memory (FIFO eviction applies);
//   - EXEC requires the kernel's contexts to be resident;
//   - LDFB/STFB regions must lie inside the Frame Buffer set;
//   - STFB may only drain an object some EXEC produced in the same visit
//     (a kernel of the executing cluster writes that datum), or that a
//     prior LDFB brought in (re-store of pass-through data is rejected —
//     the schedulers never generate it).
//
// When sched is non-nil, the program's transfer volumes are also required
// to match the schedule's totals exactly.
func Check(p *Program, sched *core.Schedule) (*CheckReport, error) {
	if p == nil {
		return nil, fmt.Errorf("codegen: nil program")
	}
	if err := p.Arch.Validate(); err != nil {
		return nil, err
	}
	rep := &CheckReport{}
	cm := arch.NewContextMemory(p.Arch.CMWords)

	// kernelCtxWords (keyed by context group) and producers come from
	// the schedule when present.
	kernelWords := map[string]int{}
	kernelGroup := map[string]string{}
	producesDatum := map[string]map[string]bool{} // kernel -> datums it outputs
	if sched != nil {
		for _, k := range sched.P.App.Kernels {
			kernelWords[k.CtxGroup()] = k.ContextWords
			kernelGroup[k.Name] = k.CtxGroup()
			set := map[string]bool{}
			for _, out := range k.Outputs {
				set[out] = true
			}
			producesDatum[k.Name] = set
		}
	}

	// produced tracks objects written by an EXEC'd kernel and still
	// storable; loaded tracks objects brought in by LDFB.
	produced := map[string]bool{}
	executed := map[string]bool{} // kernels run at least once

	for idx, in := range p.Instrs {
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("codegen: instr %d (%s): %s", idx, in, fmt.Sprintf(format, args...))
		}
		switch in.Op {
		case OpLdCtxt:
			if in.Words <= 0 {
				return nil, fail("non-positive context words")
			}
			want := in.Words
			if sched != nil {
				if w, ok := kernelWords[in.Kernel]; ok && in.Words > w {
					return nil, fail("loads %d words but kernel has %d", in.Words, w)
				}
				want = kernelWords[in.Kernel]
			}
			if want <= p.Arch.CMWords {
				if _, err := cm.Load(in.Kernel, want); err != nil {
					return nil, fail("context memory: %v", err)
				}
			}
			// Kernels larger than the whole CM stream their contexts
			// every visit; the residency check is skipped for them.
			rep.CtxWords += in.Words
		case OpLdFB:
			if err := fbRange(p.Arch, in); err != nil {
				return nil, fail("%v", err)
			}
			rep.LoadBytes += in.Bytes
		case OpStFB:
			if err := fbRange(p.Arch, in); err != nil {
				return nil, fail("%v", err)
			}
			if sched != nil && !produced[in.Object] {
				return nil, fail("stores %s which no executed kernel produced", in.Object)
			}
			delete(produced, in.Object)
			rep.StoreBytes += in.Bytes
		case OpExec:
			group := in.Kernel
			if g, ok := kernelGroup[in.Kernel]; ok {
				group = g
			}
			if sched != nil && !cm.Resident(group) && kernelWords[group] <= p.Arch.CMWords {
				return nil, fail("kernel %s has no contexts resident", in.Kernel)
			}
			executed[in.Kernel] = true
			for out := range producesDatum[in.Kernel] {
				produced[instanceName(out, in.Iter)] = true
			}
			rep.Execs++
		default:
			return nil, fail("unknown op")
		}
	}

	if sched != nil {
		if rep.LoadBytes != sched.TotalLoadBytes() {
			return nil, fmt.Errorf("codegen: program loads %d bytes, schedule says %d",
				rep.LoadBytes, sched.TotalLoadBytes())
		}
		if rep.StoreBytes != sched.TotalStoreBytes() {
			return nil, fmt.Errorf("codegen: program stores %d bytes, schedule says %d",
				rep.StoreBytes, sched.TotalStoreBytes())
		}
		if rep.CtxWords != sched.TotalCtxWords() {
			return nil, fmt.Errorf("codegen: program loads %d context words, schedule says %d",
				rep.CtxWords, sched.TotalCtxWords())
		}
		wantExecs := 0
		for _, v := range sched.Visits {
			wantExecs += v.Iters * len(sched.P.Clusters[v.Cluster].Kernels)
		}
		if rep.Execs != wantExecs {
			return nil, fmt.Errorf("codegen: program has %d EXECs, schedule implies %d", rep.Execs, wantExecs)
		}
	}
	return rep, nil
}

func fbRange(pa arch.Params, in Instr) error {
	if in.Bytes <= 0 {
		return fmt.Errorf("non-positive transfer size %d", in.Bytes)
	}
	if in.Addr < 0 || in.Addr+in.Bytes > pa.FBSetBytes {
		return fmt.Errorf("FB region [%d,%d) outside set of %d bytes", in.Addr, in.Addr+in.Bytes, pa.FBSetBytes)
	}
	if in.Set < 0 || in.Set >= pa.FBSets {
		return fmt.Errorf("FB set %d out of range (%d sets)", in.Set, pa.FBSets)
	}
	return nil
}
