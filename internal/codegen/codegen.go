// Package codegen lowers a data schedule into the TinyRISC-level
// instruction stream the MorphoSys code generator emits: DMA programming
// for context loads (LDCTXT), frame-buffer fills and drains (LDFB/STFB)
// with the exact addresses chosen by the allocation algorithm, and kernel
// invocations (EXEC). A replay checker validates the stream against the
// machine's transfer discipline: contexts must be resident before a kernel
// runs, FB transfers must stay in bounds, and a store may only drain data
// some kernel actually produced.
//
// Spatial non-overlap of placements is guaranteed upstream by
// core.Allocate (whose allocator invariants are checked per visit); the
// checker here focuses on the control/transfer rules.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"cds/internal/arch"
	"cds/internal/core"
)

// Op is a TinyRISC-level operation.
type Op int

const (
	// OpLdCtxt loads a kernel's context words into the Context Memory.
	OpLdCtxt Op = iota
	// OpLdFB DMAs a datum from external memory into a Frame Buffer set.
	OpLdFB
	// OpStFB DMAs a result from a Frame Buffer set to external memory.
	OpStFB
	// OpExec runs one kernel iteration on the RC array.
	OpExec
)

var opNames = [...]string{OpLdCtxt: "LDCTXT", OpLdFB: "LDFB", OpStFB: "STFB", OpExec: "EXEC"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction of the generated program.
type Instr struct {
	Op Op
	// Kernel names the kernel for LDCTXT and EXEC.
	Kernel string
	// Words is the context volume for LDCTXT.
	Words int
	// Object names the FB-resident instance for LDFB/STFB; Datum the
	// underlying application datum.
	Object, Datum string
	// Set, Addr, Bytes give the FB target of LDFB/STFB.
	Set, Addr, Bytes int
	// ExtAddr is the external-memory address of the transfer (-1 until
	// AnnotateExternal assigns it).
	ExtAddr int
	// Cluster, Block, Iter locate the instruction in the schedule
	// (Iter is -1 for pre-visit work).
	Cluster, Block, Iter int
}

// String renders the instruction in the assembly-like form the CLI prints.
func (i Instr) String() string {
	switch i.Op {
	case OpLdCtxt:
		return fmt.Sprintf("LDCTXT  %-12s %4d words", i.Kernel, i.Words)
	case OpLdFB:
		return fmt.Sprintf("LDFB    %-12s set%d @%-5d %4d bytes", i.Object, i.Set, i.Addr, i.Bytes)
	case OpStFB:
		return fmt.Sprintf("STFB    %-12s set%d @%-5d %4d bytes", i.Object, i.Set, i.Addr, i.Bytes)
	case OpExec:
		return fmt.Sprintf("EXEC    %-12s iter %d", i.Kernel, i.Iter)
	}
	return "???"
}

// Program is the generated instruction stream.
type Program struct {
	Arch   arch.Params
	Instrs []Instr
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, i := range p.Instrs {
		b.WriteString(i.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Count returns the number of instructions with the given op.
func (p *Program) Count(op Op) int {
	n := 0
	for _, i := range p.Instrs {
		if i.Op == op {
			n++
		}
	}
	return n
}

// Generate lowers the schedule. It replays the allocation algorithm to
// learn every instance's address, then emits per visit: LDCTXT for each
// kernel whose contexts move, LDFB for each input instance, EXEC per
// kernel per iteration, and STFB for each result instance the schedule
// stores (using the address the instance occupied when produced).
func Generate(s *core.Schedule) (*Program, error) {
	rep, err := core.Allocate(s, true)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}

	// Group allocation events by visit (block, cluster); they were
	// produced in visit order, so a simple cursor suffices.
	type visitKey struct{ block, cluster int }
	eventsByVisit := map[visitKey][]core.AllocEvent{}
	for _, ev := range rep.Events {
		k := visitKey{ev.Block, ev.Cluster}
		eventsByVisit[k] = append(eventsByVisit[k], ev)
	}

	prog := &Program{Arch: s.Arch}
	a := s.P.App

	// live tracks current placements of instances per set.
	type liveKey struct {
		set  int
		inst string
	}
	live := map[liveKey]core.AllocEvent{}

	for _, v := range s.Visits {
		evs := eventsByVisit[visitKey{v.Block, v.Cluster}]
		base := Instr{Cluster: v.Cluster, Block: v.Block, Iter: -1, ExtAddr: -1}

		// Pending stores: every iteration instance of every stored
		// datum.
		pending := map[string]bool{}
		for _, m := range v.Stores {
			for iter := 0; iter < v.Iters; iter++ {
				pending[instanceName(m.Datum, iter)] = true
			}
		}

		// Walk the visit's allocation events: input allocs become
		// LDFB; releases of pending stores become STFB just before
		// the space is reclaimed.
		emitStore := func(ev core.AllocEvent, placed core.AllocEvent) {
			in := base
			in.Op = OpStFB
			in.Object = ev.Object
			in.Datum = placed.Datum
			in.Set = placed.Set
			in.Addr = placed.Addr
			in.Bytes = placed.Bytes
			in.Iter = ev.Iter
			prog.Instrs = append(prog.Instrs, in)
		}
		// Pre-visit allocation events (Iter == -1) establish the input
		// placements; the LDFB stream itself is driven by the
		// schedule's movement list so that the Basic Scheduler's
		// duplicate per-kernel loads are emitted faithfully (they
		// reload into the one placed copy).
		evRest := evs
		for len(evRest) > 0 && evRest[0].Iter == -1 {
			ev := evRest[0]
			evRest = evRest[1:]
			if ev.Op != core.OpAlloc {
				return nil, fmt.Errorf("codegen: unexpected pre-visit %s of %s", ev.Op, ev.Object)
			}
			live[liveKey{ev.Set, ev.Object}] = ev
		}
		for _, m := range v.Loads {
			per := m.Bytes / v.Iters
			for iter := 0; iter < v.Iters; iter++ {
				inst := instanceName(m.Datum, iter)
				placed, ok := live[liveKey{v.Set, inst}]
				if !ok {
					if a.IsStreamed(m.Datum) {
						// Arrives just in time for its first
						// consumer; emitted when its in-visit
						// placement event arrives. A streamed
						// datum that is RETAINED is instead
						// placed pre-visit (phase 1 of the
						// allocator), so it is already live here
						// and its one charged load is emitted
						// below like any resident input.
						continue
					}
					return nil, fmt.Errorf("codegen: load of unplaced %s (visit c%d b%d)", inst, v.Cluster, v.Block)
				}
				in := base
				in.Op = OpLdFB
				in.Object = inst
				in.Datum = m.Datum
				in.Set = placed.Set
				in.Addr = placed.Addr
				in.Bytes = per
				prog.Instrs = append(prog.Instrs, in)
			}
		}
		// Execution follows the paper's loop fission (Figure 3): each
		// kernel's contexts are loaded once and the kernel runs all of
		// the visit's iterations back to back, so the Context Memory
		// never needs more than the executing kernel (plus whatever
		// prefetch fits). Context loads are omitted for kernels still
		// resident from an earlier visit.
		// CtxLoads is ordered like the cluster's kernels (kernels whose
		// group was a Context Memory hit contribute no entry; a group
		// larger than the whole CM streams once per kernel). Walk both
		// in lockstep so every charged load is emitted exactly once.
		ctxCursor := 0
		for _, ki := range s.P.Clusters[v.Cluster].Kernels {
			k := a.Kernels[ki]
			if ctxCursor < len(v.CtxLoads) && v.CtxLoads[ctxCursor].Datum == k.CtxGroup() {
				in := base
				in.Op = OpLdCtxt
				in.Kernel = k.CtxGroup()
				in.Words = v.CtxLoads[ctxCursor].Bytes
				prog.Instrs = append(prog.Instrs, in)
				ctxCursor++
			}
			for iter := 0; iter < v.Iters; iter++ {
				in := base
				in.Op = OpExec
				in.Kernel = k.Name
				in.Iter = iter
				prog.Instrs = append(prog.Instrs, in)
			}
		}
		if ctxCursor != len(v.CtxLoads) {
			return nil, fmt.Errorf("codegen: visit c%d b%d: %d context loads not attributable to kernels",
				v.Cluster, v.Block, len(v.CtxLoads)-ctxCursor)
		}
		// Result placements and releases follow; stores are emitted
		// just before their space is reclaimed.
		for _, ev := range evRest {
			switch ev.Op {
			case core.OpAlloc:
				live[liveKey{ev.Set, ev.Object}] = ev
				if a.IsStreamed(ev.Datum) {
					// A just-in-time tile load.
					in := base
					in.Op = OpLdFB
					in.Object = ev.Object
					in.Datum = ev.Datum
					in.Set = ev.Set
					in.Addr = ev.Addr
					in.Bytes = ev.Bytes
					in.Iter = ev.Iter
					prog.Instrs = append(prog.Instrs, in)
				}
			case core.OpRelease:
				k := liveKey{ev.Set, ev.Object}
				placed, ok := live[k]
				if !ok {
					return nil, fmt.Errorf("codegen: release of untracked %s (set %d)", ev.Object, ev.Set)
				}
				if pending[ev.Object] {
					emitStore(ev, placed)
					delete(pending, ev.Object)
				}
				delete(live, k)
			}
		}
		// Stores whose instances stay resident (retained final
		// results): drain them from their live placement, in
		// deterministic order.
		rest := make([]string, 0, len(pending))
		for inst := range pending {
			rest = append(rest, inst)
		}
		sort.Strings(rest)
		for _, inst := range rest {
			placed, ok := live[liveKey{v.Set, inst}]
			if !ok {
				return nil, fmt.Errorf("codegen: store of absent %s (visit c%d b%d)", inst, v.Cluster, v.Block)
			}
			ev := core.AllocEvent{Object: inst, Iter: -1}
			emitStore(ev, placed)
		}
	}
	return prog, nil
}

func instanceName(datum string, iter int) string {
	return fmt.Sprintf("%s#i%d", datum, iter)
}

// externalAddresser resolves a (datum, absolute iteration) pair to an
// external-memory address; internal/extmem.Map implements it.
type externalAddresser interface {
	Addr(datum string, absIter int) (int, error)
}

// AnnotateExternal fills the ExtAddr field of every LDFB/STFB instruction
// from an external-memory layout. rf is the schedule's reuse factor (the
// absolute iteration of an instance is block*rf + slot).
func AnnotateExternal(p *Program, rf int, mem externalAddresser) error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op != OpLdFB && in.Op != OpStFB {
			continue
		}
		slot, err := parseSlot(in.Object)
		if err != nil {
			return err
		}
		addr, err := mem.Addr(in.Datum, in.Block*rf+slot)
		if err != nil {
			return fmt.Errorf("codegen: annotating %s: %w", in.Object, err)
		}
		in.ExtAddr = addr
	}
	return nil
}

// parseSlot extracts the iteration slot from an instance name.
func parseSlot(inst string) (int, error) {
	i := strings.LastIndex(inst, "#i")
	if i < 0 || i+2 >= len(inst) {
		return 0, fmt.Errorf("codegen: malformed instance name %q", inst)
	}
	n := 0
	for _, c := range inst[i+2:] {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("codegen: malformed instance name %q", inst)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}
