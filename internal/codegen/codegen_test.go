package codegen

import (
	"errors"
	"strings"
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
)

// pipePartition mirrors the canonical core test application.
func pipePartition(iterations int) *app.Partition {
	b := app.NewBuilder("pipe", iterations).
		Datum("inA", 100).
		Datum("x", 50).
		Datum("m", 30).
		Datum("r2", 60).
		Datum("rB", 40).
		Datum("out1", 20).
		Datum("out2", 20)
	b.Kernel("k1", 16, 1000).In("inA", "x").Out("m")
	b.Kernel("k2", 16, 1000).In("m").Out("r2", "rB")
	b.Kernel("k3", 16, 1000).In("r2").Out("out1")
	b.Kernel("k4", 16, 1000).In("inA", "rB").Out("out2")
	return app.MustPartition(b.MustBuild(), 2, 2, 1, 1)
}

func testArch(fb int) arch.Params {
	p := arch.M1()
	p.FBSetBytes = fb
	p.CMWords = 32
	return p
}

func generate(t *testing.T, sched core.Scheduler, fb, iters int) (*Program, *core.Schedule) {
	t.Helper()
	part := pipePartition(iters)
	s, err := sched.Schedule(testArch(fb), part)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestGenerateAndCheckAllSchedulers(t *testing.T) {
	for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
		t.Run(sched.Name(), func(t *testing.T) {
			p, s := generate(t, sched, 400, 4)
			rep, err := Check(p, s)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if rep.LoadBytes != s.TotalLoadBytes() || rep.StoreBytes != s.TotalStoreBytes() {
				t.Errorf("volumes drifted: %+v", rep)
			}
			if rep.Execs == 0 {
				t.Error("no EXEC instructions")
			}
		})
	}
}

func TestGenerateCDSSkipsRetainedTraffic(t *testing.T) {
	pBasic, _ := generate(t, core.Basic{}, 400, 4)
	pCDS, sCDS := generate(t, core.CompleteDataScheduler{}, 400, 4)
	if len(sCDS.Retained) == 0 {
		t.Fatal("CDS retained nothing; test needs retention")
	}
	// Retained result rB must never be stored or loaded by CDS.
	for _, in := range pCDS.Instrs {
		if (in.Op == OpLdFB || in.Op == OpStFB) && in.Datum == "rB" {
			t.Errorf("CDS program still transfers rB: %s", in)
		}
	}
	// Basic transfers it.
	found := false
	for _, in := range pBasic.Instrs {
		if in.Op == OpStFB && in.Datum == "rB" {
			found = true
		}
	}
	if !found {
		t.Error("basic program should store rB")
	}
}

func TestGenerateExecCounts(t *testing.T) {
	p, s := generate(t, core.DataScheduler{}, 400, 4)
	wantExecs := 0
	for _, v := range s.Visits {
		wantExecs += v.Iters * len(s.P.Clusters[v.Cluster].Kernels)
	}
	if got := p.Count(OpExec); got != wantExecs {
		t.Errorf("EXEC count = %d, want %d", got, wantExecs)
	}
	// 4 iterations x 4 kernels = 16 kernel invocations total.
	if wantExecs != 16 {
		t.Errorf("schedule implies %d execs, want 16", wantExecs)
	}
}

func TestProgramString(t *testing.T) {
	p, _ := generate(t, core.CompleteDataScheduler{}, 400, 2)
	s := p.String()
	for _, want := range []string{"LDCTXT", "LDFB", "STFB", "EXEC"} {
		if !strings.Contains(s, want) {
			t.Errorf("program rendering missing %s:\n%s", want, s)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpLdCtxt.String() != "LDCTXT" || OpExec.String() != "EXEC" {
		t.Error("Op names broken")
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("unknown op should render numerically")
	}
}

func TestCheckRejectsCorruptedPrograms(t *testing.T) {
	p, s := generate(t, core.DataScheduler{}, 400, 2)

	corrupt := func(mutate func(q *Program)) error {
		q := &Program{Arch: p.Arch, Instrs: append([]Instr(nil), p.Instrs...)}
		mutate(q)
		_, err := Check(q, s)
		return err
	}

	// Out-of-bounds store.
	if err := corrupt(func(q *Program) {
		for i := range q.Instrs {
			if q.Instrs[i].Op == OpStFB {
				q.Instrs[i].Addr = 1 << 20
				return
			}
		}
	}); err == nil {
		t.Error("out-of-bounds STFB accepted")
	}

	// Store of something never produced.
	if err := corrupt(func(q *Program) {
		for i := range q.Instrs {
			if q.Instrs[i].Op == OpStFB {
				q.Instrs[i].Object = "ghost#i0"
				return
			}
		}
	}); err == nil {
		t.Error("STFB of unproduced object accepted")
	}

	// EXEC without contexts: drop all LDCTXT.
	if err := corrupt(func(q *Program) {
		var kept []Instr
		for _, in := range q.Instrs {
			if in.Op != OpLdCtxt {
				kept = append(kept, in)
			}
		}
		q.Instrs = kept
	}); err == nil {
		t.Error("EXEC without resident contexts accepted")
	}

	// Volume mismatch: drop one LDFB.
	if err := corrupt(func(q *Program) {
		for i, in := range q.Instrs {
			if in.Op == OpLdFB {
				q.Instrs = append(q.Instrs[:i], q.Instrs[i+1:]...)
				return
			}
		}
	}); err == nil {
		t.Error("load-volume mismatch accepted")
	}

	// Negative-size transfer.
	if err := corrupt(func(q *Program) {
		for i := range q.Instrs {
			if q.Instrs[i].Op == OpLdFB {
				q.Instrs[i].Bytes = -1
				return
			}
		}
	}); err == nil {
		t.Error("negative transfer accepted")
	}
}

func TestCheckNilAndSchedleless(t *testing.T) {
	if _, err := Check(nil, nil); err == nil {
		t.Error("nil program accepted")
	}
	// Without a schedule, only structural rules apply.
	p, _ := generate(t, core.DataScheduler{}, 400, 2)
	if _, err := Check(p, nil); err != nil {
		t.Errorf("schedule-less check failed: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1, _ := generate(t, core.CompleteDataScheduler{}, 400, 4)
	p2, _ := generate(t, core.CompleteDataScheduler{}, 400, 4)
	if p1.String() != p2.String() {
		t.Error("Generate is not deterministic")
	}
}

func TestGenerateTiledApp(t *testing.T) {
	// Intra-kernel tiling introduces streamed inputs (just-in-time tile
	// loads); the generated program must still pass every check.
	b := app.NewBuilder("tiled", 6).
		Datum("bigIn", 600).
		Datum("tbl", 64).
		Datum("feat", 64).
		Datum("out", 64)
	b.Kernel("extract", 128, 240).In("bigIn", "tbl").Out("feat")
	b.Kernel("classify", 96, 120).In("feat", "tbl").Out("out")
	part := app.MustPartition(b.MustBuild(), 2, 1, 1)
	tp, err := app.TilePartition(part, "extract", 4)
	if err != nil {
		t.Fatal(err)
	}
	// A CM large enough for the shared context group: the tiles reuse
	// one load. (With a CM smaller than the group, the configuration
	// streams once per tile instead — also checked below.)
	pa := testArch(1024)
	pa.CMWords = 192
	for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
		s, err := sched.Schedule(pa, tp)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		p, err := Generate(s)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if _, err := Check(p, s); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		// Exactly one LDCTXT per context group per visit at most: the
		// four sub-kernels must not each load contexts.
		perVisit := map[[3]int]int{}
		for _, in := range p.Instrs {
			if in.Op == OpLdCtxt && in.Kernel == "extract" {
				perVisit[[3]int{in.Block, in.Cluster, 0}]++
			}
		}
		for k, n := range perVisit {
			if n != 1 {
				t.Errorf("%s: visit %v loads extract contexts %d times", sched.Name(), k, n)
			}
		}
	}

	// With a CM smaller than the group, the configuration streams once
	// per tile; the program must still check out.
	tiny := testArch(1024) // CMWords = 32 < 128
	s, err := (core.DataScheduler{}).Schedule(tiny, tp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(p, s); err != nil {
		t.Fatalf("streaming-context program failed check: %v", err)
	}
}

type fakeMem map[string]int

func (m fakeMem) Addr(datum string, absIter int) (int, error) {
	base, ok := m[datum]
	if !ok {
		return 0, errFakeMem
	}
	return base + absIter, nil
}

var errFakeMem = errors.New("fake: unknown datum")

func TestAnnotateExternalLocal(t *testing.T) {
	p, s := generate(t, core.DataScheduler{}, 400, 2)
	mem := fakeMem{}
	for _, d := range s.P.App.Data {
		mem[d.Name] = len(mem) * 10000
	}
	if err := AnnotateExternal(p, s.RF, mem); err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Instrs {
		switch in.Op {
		case OpLdFB, OpStFB:
			if in.ExtAddr < 0 {
				t.Fatalf("%v not annotated", in)
			}
		default:
			if in.ExtAddr != -1 {
				t.Fatalf("%v has spurious ExtAddr", in)
			}
		}
	}
	// Unknown datum fails.
	q, _ := generate(t, core.DataScheduler{}, 400, 2)
	if err := AnnotateExternal(q, 1, fakeMem{}); err == nil {
		t.Error("unknown datum accepted")
	}
	// Malformed instance name fails.
	r, _ := generate(t, core.DataScheduler{}, 400, 2)
	for i := range r.Instrs {
		if r.Instrs[i].Op == OpLdFB {
			r.Instrs[i].Object = "broken"
			break
		}
	}
	if err := AnnotateExternal(r, 1, mem); err == nil {
		t.Error("malformed instance accepted")
	}
}

func TestParseSlot(t *testing.T) {
	if n, err := parseSlot("x#i7"); err != nil || n != 7 {
		t.Errorf("parseSlot = %d, %v", n, err)
	}
	if n, err := parseSlot("a#i12"); err != nil || n != 12 {
		t.Errorf("parseSlot = %d, %v", n, err)
	}
	for _, bad := range []string{"x", "x#i", "x#iq2"} {
		if _, err := parseSlot(bad); err == nil {
			t.Errorf("parseSlot(%q) accepted", bad)
		}
	}
}
