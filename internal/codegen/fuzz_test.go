package codegen

import (
	"strings"
	"testing"
)

// FuzzParseProgram: arbitrary program text must never panic; accepted
// programs must re-marshal.
func FuzzParseProgram(f *testing.F) {
	f.Add(okHeader + "LDCTXT k 16\nEXEC k iter=0\n")
	f.Add(okHeader + "LDFB x#i0 x set=0 addr=0 bytes=8 iter=0\nSTFB x#i0 x set=0 addr=0 bytes=8 iter=0\n")
	f.Add(".arch fb=1 sets=1 cm=1 bus=1 setup=0 ctxw=1 rows=1 cols=1\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(strings.NewReader(text))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := Marshal(&b, p); err != nil {
			t.Fatalf("accepted program failed to marshal: %v", err)
		}
		if _, err := Parse(strings.NewReader(b.String())); err != nil {
			t.Fatalf("re-marshaled program failed to parse: %v", err)
		}
	})
}
