package codegen

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cds/internal/arch"
)

// Marshal writes the program in its textual assembly form, prefixed by a
// machine-description header, so programs can be saved, diffed and
// reloaded. Parse reads the same format back.
//
//	.arch fb=2048 sets=2 cm=512 bus=4 setup=4 ctxw=4 rows=8 cols=8
//	.visit cluster=0 block=0
//	LDCTXT sad 224
//	LDFB curMB#i0 set=0 addr=832 bytes=224 iter=0
//	EXEC sad iter=0
//	STFB mv#i0 set=0 addr=0 bytes=64 iter=0
func Marshal(w io.Writer, p *Program) error {
	if p == nil {
		return fmt.Errorf("codegen: nil program")
	}
	a := p.Arch
	if _, err := fmt.Fprintf(w, ".arch fb=%d sets=%d cm=%d bus=%d setup=%d ctxw=%d rows=%d cols=%d\n",
		a.FBSetBytes, a.FBSets, a.CMWords, a.BusBytes, a.DMASetupCycles, a.CtxWordBytes, a.Rows, a.Cols); err != nil {
		return err
	}
	curCluster, curBlock := -1, -1
	for _, in := range p.Instrs {
		if in.Cluster != curCluster || in.Block != curBlock {
			curCluster, curBlock = in.Cluster, in.Block
			if _, err := fmt.Fprintf(w, ".visit cluster=%d block=%d\n", curCluster, curBlock); err != nil {
				return err
			}
		}
		var err error
		switch in.Op {
		case OpLdCtxt:
			_, err = fmt.Fprintf(w, "LDCTXT %s %d\n", in.Kernel, in.Words)
		case OpLdFB:
			_, err = fmt.Fprintf(w, "LDFB %s %s set=%d addr=%d bytes=%d iter=%d ext=%d\n",
				in.Object, in.Datum, in.Set, in.Addr, in.Bytes, in.Iter, in.ExtAddr)
		case OpStFB:
			_, err = fmt.Fprintf(w, "STFB %s %s set=%d addr=%d bytes=%d iter=%d ext=%d\n",
				in.Object, in.Datum, in.Set, in.Addr, in.Bytes, in.Iter, in.ExtAddr)
		case OpExec:
			_, err = fmt.Fprintf(w, "EXEC %s iter=%d\n", in.Kernel, in.Iter)
		default:
			err = fmt.Errorf("codegen: cannot marshal op %v", in.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Parse reads a program in the Marshal format.
func Parse(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	p := &Program{}
	cluster, block := -1, -1
	sawArch := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("codegen: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case ".arch":
			kv, err := parseKVs(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			p.Arch = arch.Params{
				Name:           "parsed",
				FBSetBytes:     kv["fb"],
				FBSets:         kv["sets"],
				CMWords:        kv["cm"],
				BusBytes:       kv["bus"],
				DMASetupCycles: kv["setup"],
				CtxWordBytes:   kv["ctxw"],
				Rows:           kv["rows"],
				Cols:           kv["cols"],
			}
			if err := p.Arch.Validate(); err != nil {
				return nil, fail("%v", err)
			}
			sawArch = true
		case ".visit":
			kv, err := parseKVs(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			cluster, block = kv["cluster"], kv["block"]
		case "LDCTXT":
			if len(fields) != 3 {
				return nil, fail("LDCTXT wants kernel and words")
			}
			var words int
			if _, err := fmt.Sscanf(fields[2], "%d", &words); err != nil {
				return nil, fail("bad word count %q", fields[2])
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpLdCtxt, Kernel: fields[1], Words: words,
				Cluster: cluster, Block: block, Iter: -1, ExtAddr: -1})
		case "LDFB", "STFB":
			if len(fields) != 7 && len(fields) != 8 {
				return nil, fail("%s wants object, datum and 4-5 fields", fields[0])
			}
			kv, err := parseKVs(fields[3:])
			if err != nil {
				return nil, fail("%v", err)
			}
			op := OpLdFB
			if fields[0] == "STFB" {
				op = OpStFB
			}
			ext := -1
			if v, ok := kv["ext"]; ok {
				ext = v
			}
			p.Instrs = append(p.Instrs, Instr{Op: op, Object: fields[1], Datum: fields[2],
				Set: kv["set"], Addr: kv["addr"], Bytes: kv["bytes"], Iter: kv["iter"],
				ExtAddr: ext, Cluster: cluster, Block: block})
		case "EXEC":
			if len(fields) != 3 {
				return nil, fail("EXEC wants kernel and iter")
			}
			kv, err := parseKVs(fields[2:])
			if err != nil {
				return nil, fail("%v", err)
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpExec, Kernel: fields[1], Iter: kv["iter"],
				Cluster: cluster, Block: block, ExtAddr: -1})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawArch {
		return nil, fmt.Errorf("codegen: missing .arch header")
	}
	return p, nil
}

func parseKVs(fields []string) (map[string]int, error) {
	kv := map[string]int{}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed field %q", f)
		}
		var v int
		if _, err := fmt.Sscanf(f[eq+1:], "%d", &v); err != nil {
			return nil, fmt.Errorf("malformed value in %q", f)
		}
		kv[f[:eq]] = v
	}
	return kv, nil
}
