package codegen

import (
	"strings"
	"testing"

	"cds/internal/core"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	for _, sched := range []core.Scheduler{core.Basic{}, core.CompleteDataScheduler{}} {
		p, s := generate(t, sched, 400, 4)
		var b strings.Builder
		if err := Marshal(&b, p); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		q, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("%s: %d instrs after round trip, want %d", sched.Name(), len(q.Instrs), len(p.Instrs))
		}
		for i := range p.Instrs {
			a, bI := p.Instrs[i], q.Instrs[i]
			if a.Op != bI.Op || a.Kernel != bI.Kernel || a.Object != bI.Object ||
				a.Datum != bI.Datum || a.Set != bI.Set || a.Addr != bI.Addr ||
				a.Bytes != bI.Bytes || a.Words != bI.Words || a.ExtAddr != bI.ExtAddr ||
				a.Cluster != bI.Cluster || a.Block != bI.Block {
				t.Fatalf("%s: instr %d differs:\n got %+v\nwant %+v", sched.Name(), i, bI, a)
			}
		}
		// The parsed program still passes the machine-discipline check
		// against the original schedule.
		if _, err := Check(q, s); err != nil {
			t.Fatalf("%s: parsed program failed check: %v", sched.Name(), err)
		}
		// Arch fields survive.
		if q.Arch.FBSetBytes != p.Arch.FBSetBytes || q.Arch.CMWords != p.Arch.CMWords {
			t.Errorf("%s: arch header lost: %+v", sched.Name(), q.Arch)
		}
	}
}

func TestMarshalNil(t *testing.T) {
	if err := Marshal(&strings.Builder{}, nil); err == nil {
		t.Error("nil program marshaled")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, text string
	}{
		{"no header", "EXEC k iter=0\n"},
		{"bad arch", ".arch fb=0 sets=2 cm=1 bus=4 setup=4 ctxw=4 rows=8 cols=8\n"},
		{"garbage directive", ".arch fb=64 sets=2 cm=1 bus=4 setup=4 ctxw=4 rows=8 cols=8\nFROB x\n"},
		{"short LDCTXT", okHeader + "LDCTXT k\n"},
		{"bad words", okHeader + "LDCTXT k ten\n"},
		{"short LDFB", okHeader + "LDFB x#i0 x set=0\n"},
		{"malformed kv", okHeader + "EXEC k iter\n"},
		{"bad kv value", okHeader + "EXEC k iter=x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.text)); err == nil {
				t.Errorf("Parse accepted %q", tt.text)
			}
		})
	}
}

const okHeader = ".arch fb=1024 sets=2 cm=512 bus=4 setup=4 ctxw=4 rows=8 cols=8\n.visit cluster=0 block=0\n"

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	text := okHeader + "# a comment\n\nEXEC k iter=0\n"
	p, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 || p.Instrs[0].Op != OpExec {
		t.Errorf("parsed %+v", p.Instrs)
	}
}
