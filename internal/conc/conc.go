// Package conc holds the small concurrency primitives the scheduling
// stack shares: bounded-parallelism fan-out with deterministic
// first-error propagation, cooperative cancellation and panic
// containment. The schedulers, cds.CompareAll and the sweep batch runner
// all fan out over it, so the concurrency policy (worker caps, error
// semantics, recover discipline) lives in exactly one place.
package conc

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cds/internal/scherr"
)

// DefaultLimit returns the default fan-out width: one worker per
// available CPU. Callers pass it (or any positive cap) to ForEach.
func DefaultLimit() int { return runtime.GOMAXPROCS(0) }

// PanicError is a worker panic converted into an ordinary error: the
// recovered value plus the goroutine stack at the panic site. A panic in
// one job never kills sibling workers or the caller's process; it
// propagates through ForEach with the same deterministic lowest-index
// semantics as any other error.
type PanicError struct {
	// Value is the value the job panicked with.
	Value any
	// Index is the ForEach index (or Safe call) the panic came from.
	Index int
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("conc: job %d panicked: %v", e.Index, e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through a recovered panic(err).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Safe runs fn, converting a panic into a *PanicError. It is the recover
// discipline every worker path of the stack shares; callers that fan out
// by hand (rather than through ForEach) wrap their job bodies in it.
func Safe(fn func() error) error { return safeCall(0, func(int) error { return fn() }) }

func safeCall(i int, fn func(int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Index: i, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ForEach runs fn(i) for every i in [0, n) across at most limit
// concurrent goroutines (n when limit <= 0) and waits for all started
// work to finish before returning — it never leaks a goroutine.
//
// Error semantics are deterministic: indices are claimed in ascending
// order, a failure stops NEW indices from starting (claimed ones run to
// completion), and the returned error is the one from the LOWEST failed
// index — the same error a serial loop over [0, n) would have returned
// first. With limit == 1 the loop degenerates to exactly that serial
// loop. A panicking fn is recovered into a *PanicError and propagates
// the same way; sibling workers are unaffected.
//
// Cancellation is cooperative: once ctx is done, no new index starts,
// and if any index was thereby skipped ForEach returns an error matching
// both scherr.ErrCanceled and ctx.Err(). A job error at a lower index
// still wins over cancellation (determinism first); a cancellation that
// arrives after every index completed is not an error.
func ForEach(ctx context.Context, limit, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return scherr.FromContext(ctx)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	if limit == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return scherr.Canceled(err)
			}
			if err := safeCall(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var (
		next atomic.Int64
		done atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check stop (and the context) BEFORE claiming so a
				// claimed index always runs; that is what makes the
				// lowest recorded error deterministic (see below).
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := safeCall(i, fn); err != nil {
					errs[i] = err
					stop.Store(true)
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	// Every index below a failed one was claimed before it (ascending
	// claim order) and ran to completion, so the lowest recorded error
	// is the serial loop's first error.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// No job failed: if cancellation skipped any index, report it.
	if int(done.Load()) < n {
		return scherr.Canceled(ctx.Err())
	}
	return nil
}
