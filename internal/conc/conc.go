// Package conc holds the small concurrency primitives the scheduling
// stack shares: bounded-parallelism fan-out with deterministic
// first-error propagation. The schedulers, cds.CompareAll and the sweep
// batch runner all fan out over it, so the concurrency policy (worker
// caps, error semantics) lives in exactly one place.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultLimit returns the default fan-out width: one worker per
// available CPU. Callers pass it (or any positive cap) to ForEach.
func DefaultLimit() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) across at most limit
// concurrent goroutines (n when limit <= 0) and waits for all started
// work to finish.
//
// Error semantics are deterministic: indices are claimed in ascending
// order, a failure stops NEW indices from starting (claimed ones run to
// completion), and the returned error is the one from the LOWEST failed
// index — the same error a serial loop over [0, n) would have returned
// first. With limit == 1 the loop degenerates to exactly that serial
// loop.
func ForEach(limit, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	if limit == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check stop BEFORE claiming so a claimed index always
				// runs; that is what makes the lowest recorded error
				// deterministic (see below).
				if stop.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Every index below a failed one was claimed before it (ascending
	// claim order) and ran to completion, so the lowest recorded error
	// is the serial loop's first error.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
