package conc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 7, 100} {
		const n = 50
		var seen [n]atomic.Int32
		if err := ForEach(context.Background(), limit, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("limit=%d: index %d ran %d times", limit, i, got)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(context.Background(), 4, 1, func(int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("single item: ran=%v err=%v", ran, err)
	}
}

// TestForEachFirstError pins the deterministic error contract: the error
// of the LOWEST failed index comes back, exactly as a serial loop's
// first error, no matter how the workers interleave.
func TestForEachFirstError(t *testing.T) {
	fail := map[int]bool{3: true, 7: true, 12: true}
	for _, limit := range []int{1, 2, 4, 16} {
		for round := 0; round < 20; round++ {
			err := ForEach(context.Background(), limit, 16, func(i int) error {
				if fail[i] {
					return fmt.Errorf("boom at %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "boom at 3" {
				t.Fatalf("limit=%d round=%d: err = %v, want boom at 3", limit, round, err)
			}
		}
	}
}

// TestForEachStopsDispatch checks a failure prevents later indices from
// STARTING (already-claimed ones run to completion): with a serial
// limit, nothing after the failing index runs at all.
func TestForEachStopsDispatch(t *testing.T) {
	var maxSeen atomic.Int32
	boom := errors.New("boom")
	err := ForEach(context.Background(), 1, 100, func(i int) error {
		maxSeen.Store(int32(i))
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := maxSeen.Load(); got != 5 {
		t.Fatalf("serial run reached index %d, want stop at 5", got)
	}
}

func TestDefaultLimit(t *testing.T) {
	if DefaultLimit() < 1 {
		t.Fatalf("DefaultLimit() = %d", DefaultLimit())
	}
}
