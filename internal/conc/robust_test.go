package conc

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cds/internal/scherr"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing the test if it never does. Polling (instead of a single
// snapshot) keeps the check robust to the runtime's own bookkeeping
// goroutines winding down.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestForEachCancelPrompt pins the cancellation contract: once the
// context is canceled no NEW index starts, the pool drains, the error
// matches both scherr.ErrCanceled and context.Canceled, and every worker
// goroutine exits.
func TestForEachCancelPrompt(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, limit := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		err := ForEach(ctx, limit, 1000, func(i int) error {
			if started.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, scherr.ErrCanceled) {
			t.Fatalf("limit=%d: err = %v, want scherr.ErrCanceled", limit, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("limit=%d: err = %v, must still match context.Canceled", limit, err)
		}
		// "Promptly": each worker can be mid-job at cancel time and slip
		// at most one more claim past the pre-claim check; nothing close
		// to the full range of 1000 runs.
		if n := started.Load(); int(n) > 3+2*limit {
			t.Fatalf("limit=%d: %d jobs started after cancel, want <= %d", limit, n, 3+2*limit)
		}
	}
	waitGoroutines(t, base)
}

// TestForEachPreCanceled pins the fast path: an already-dead context
// runs nothing at all.
func TestForEachPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 50, func(i int) error {
		t.Error("job ran under a pre-canceled context")
		return nil
	})
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("err = %v, want scherr.ErrCanceled", err)
	}
}

// TestForEachDeadline covers the timeout flavor of cancellation: the
// returned error matches the taxonomy class and context.DeadlineExceeded.
func TestForEachDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForEach(ctx, 2, 1<<20, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, scherr.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestForEachPanicContained pins panic safety: a panicking job comes
// back as a *PanicError carrying the panic value, the index and a
// non-empty stack — and sibling jobs are NOT killed by it.
func TestForEachPanicContained(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, limit := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(context.Background(), limit, 8, func(i int) error {
			ran.Add(1)
			if i == 0 {
				panic("kaboom")
			}
			time.Sleep(time.Millisecond) // give siblings time to be mid-flight
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("limit=%d: err = %v, want *PanicError", limit, err)
		}
		if pe.Value != "kaboom" || pe.Index != 0 {
			t.Fatalf("limit=%d: PanicError = %+v, want value kaboom at index 0", limit, pe)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("limit=%d: PanicError carries no stack", limit)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("limit=%d: rendered error %q hides the panic value", limit, err)
		}
		// The panic stops dispatch like any error, but workers already
		// holding an index complete: at least one job ran, none crashed
		// the process.
		if ran.Load() < 1 {
			t.Fatalf("limit=%d: no jobs ran", limit)
		}
	}
	waitGoroutines(t, base)
}

// TestForEachPanicSiblingsComplete drives the concurrent case hard: the
// panic lands at the highest index so every sibling has already been
// claimed; all of them must run to completion.
func TestForEachPanicSiblingsComplete(t *testing.T) {
	const n = 8
	var done atomic.Int32
	err := ForEach(context.Background(), n, n, func(i int) error {
		if i == n-1 {
			time.Sleep(5 * time.Millisecond) // let siblings claim first
			panic(i)
		}
		time.Sleep(10 * time.Millisecond)
		done.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != n-1 {
		t.Fatalf("err = %v, want *PanicError at index %d", err, n-1)
	}
	if got := done.Load(); got != n-1 {
		t.Fatalf("%d siblings completed, want %d — the panic killed workers", got, n-1)
	}
}

// TestPanicErrorUnwrap pins the errors.Is/As bridge: a panic with an
// error value stays matchable through the PanicError wrapper.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("typed panic")
	err := ForEach(context.Background(), 2, 4, func(i int) error {
		if i == 0 {
			panic(sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, does not unwrap to the panicked error value", err)
	}
	pe := &PanicError{Value: "not an error"}
	if pe.Unwrap() != nil {
		t.Fatal("non-error panic value must not unwrap")
	}
}

// TestSafeConvertsPanics covers the exported Safe helper used by the
// comparison and batch layers.
func TestSafeConvertsPanics(t *testing.T) {
	if err := Safe(func() error { return nil }); err != nil {
		t.Fatalf("Safe(nil fn) = %v", err)
	}
	boom := errors.New("boom")
	if err := Safe(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Safe passes errors through, got %v", err)
	}
	err := Safe(func() error { panic("argh") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "argh" || len(pe.Stack) == 0 {
		t.Fatalf("Safe(panic) = %v, want *PanicError with stack", err)
	}
}
