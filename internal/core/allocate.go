package core

import (
	"fmt"
	"sort"

	"cds/internal/alloc"
)

// AllocOp is the kind of one allocation-trace event.
type AllocOp int

const (
	// OpAlloc places an object instance in the Frame Buffer.
	OpAlloc AllocOp = iota
	// OpRelease frees an object instance.
	OpRelease
)

func (o AllocOp) String() string {
	if o == OpAlloc {
		return "alloc"
	}
	return "release"
}

// AllocEvent is one step of the Frame Buffer allocation replay. The
// sequence of events reproduces the paper's Figure 5 timelines.
type AllocEvent struct {
	Op  AllocOp
	Set int
	// Object is the placed instance name ("<datum>#b<block>i<iter>");
	// Datum is the underlying application datum.
	Object string
	Datum  string
	// Addr is the first extent's address; Bytes the full size; Split
	// whether the instance had to be split across free blocks.
	Addr, Bytes int
	Split       bool
	// Cluster, Block, Iter locate the event in the schedule. Iter is -1
	// for the pre-visit input loading phase.
	Cluster, Block, Iter int
	// Kernel is the kernel index (into App.Kernels) whose execution
	// step this event belongs to, or -1 for pre-visit loading and
	// end-of-visit releases.
	Kernel int
}

// AllocationReport summarizes the full allocation replay of a schedule.
type AllocationReport struct {
	// Events lists every alloc/release in replay order.
	Events []AllocEvent
	// PeakUsed gives the high-water occupancy of each FB set.
	PeakUsed map[int]int
	// Splits counts instances that had to be split across free blocks
	// (the paper reports zero for all its experiments).
	Splits int
	// Regular reports whether every object instance kept the same
	// address across all RF blocks (the paper's regularity goal).
	Regular bool
	// IrregularObjects lists the instances that moved between blocks.
	IrregularObjects []string
}

// instance names the per-iteration copy of a datum within a block.
func instance(datum string, iter int) string {
	return fmt.Sprintf("%s#i%d", datum, iter)
}

// AllocOptions tunes the allocation replay; the zero value is the paper's
// configuration except for splitting, which Allocate exposes directly.
type AllocOptions struct {
	// AllowSplit enables the paper's last-resort splitting across free
	// blocks.
	AllowSplit bool
	// FitPolicy selects the free-block choice (first-fit by default;
	// best/worst-fit exist for the ablation).
	FitPolicy alloc.FitPolicy
	// OneSided disables the paper's two-sided placement: results are
	// allocated from the top like everything else. Exists to measure
	// what the data-top/results-bottom discipline buys.
	OneSided bool
}

// Allocate replays the schedule through the Frame Buffer allocator of
// section 5 (first-fit, shared objects and input data from the top,
// results from the bottom, release at last use, address regularity across
// blocks) and verifies that every visit's working set actually fits.
// allowSplit enables the paper's last-resort splitting.
func Allocate(s *Schedule, allowSplit bool) (*AllocationReport, error) {
	return AllocateWithOptions(s, AllocOptions{AllowSplit: allowSplit})
}

// AllocateWithOptions is Allocate with an explicit allocator policy.
func AllocateWithOptions(s *Schedule, opts AllocOptions) (*AllocationReport, error) {
	rep := &AllocationReport{PeakUsed: map[int]int{}, Regular: true}
	a := s.P.App

	// One allocator per FB set.
	fbs := map[int]*alloc.FB{}
	for _, c := range s.P.Clusters {
		if _, ok := fbs[c.Set]; !ok {
			fb := alloc.New(s.Arch.FBSetBytes, opts.AllowSplit)
			fb.SetFitPolicy(opts.FitPolicy)
			fbs[c.Set] = fb
		}
	}

	// prefer remembers each instance's address from the previous block.
	// The key includes the allocating cluster: two clusters on one set
	// may each load their own copy of the same datum, at different
	// addresses.
	type prefKey struct {
		set      int
		cluster  int
		instance string
	}
	prefer := map[prefKey]int{}
	irregular := map[string]bool{}

	place := func(fb *alloc.FB, set int, datum, inst string, dir alloc.Dir, ev AllocEvent) error {
		pk := prefKey{set, ev.Cluster, inst}
		want, hadPref := prefer[pk]
		if !hadPref {
			want = -1
		}
		p, err := fb.Alloc(inst, a.SizeOf(datum), dir, want)
		if err != nil {
			return fmt.Errorf("core: allocation replay failed for %s (cluster %d block %d): %w",
				inst, ev.Cluster, ev.Block, err)
		}
		if hadPref && p.Addr() != want {
			irregular[inst] = true
		}
		prefer[pk] = p.Addr()
		ev.Op = OpAlloc
		ev.Set = set
		ev.Object = inst
		ev.Datum = datum
		ev.Addr = p.Addr()
		ev.Bytes = p.Bytes()
		ev.Split = p.Split()
		rep.Events = append(rep.Events, ev)
		return nil
	}
	free := func(fb *alloc.FB, set int, inst string, ev AllocEvent) error {
		p, ok := fb.Lookup(inst)
		if !ok {
			return fmt.Errorf("core: allocation replay: release of absent %s (cluster %d block %d)",
				inst, ev.Cluster, ev.Block)
		}
		if err := fb.Release(inst); err != nil {
			return err
		}
		ev.Op = OpRelease
		ev.Set = set
		ev.Object = inst
		ev.Addr = p.Addr()
		ev.Bytes = p.Bytes()
		rep.Events = append(rep.Events, ev)
		return nil
	}

	// Retention lookups; cross-set retained objects register for every
	// set so consumers anywhere skip re-allocation.
	setsInUse := map[int]bool{}
	for _, c := range s.P.Clusters {
		setsInUse[c.Set] = true
	}
	retainedByKey := map[retKey]Retained{}
	for _, r := range s.Retained {
		retainedByKey[retKey{r.Name, r.Set}] = r
		if r.CrossSet {
			for set := range setsInUse {
				retainedByKey[retKey{r.Name, set}] = r
			}
		}
	}

	resultDir := alloc.FromBottom
	if opts.OneSided {
		resultDir = alloc.FromTop
	}

	for _, v := range s.Visits {
		ci := s.Info.Clusters[v.Cluster]
		c := ci.Cluster
		fb := fbs[c.Set]
		pinned := pinnedFor(s.Retained, c)
		remote := remoteFor(s.Retained, c)
		ev := AllocEvent{Cluster: c.Index, Block: v.Block, Iter: -1, Kernel: -1}

		// Phase 1: shared data this cluster loads, farthest-reaching
		// first (Figure 4: for v = last cluster down to c+2).
		var sharedHere []Retained
		for _, r := range s.Retained {
			if r.Kind == RetainedData && r.Set == c.Set && r.From == c.Index {
				sharedHere = append(sharedHere, r)
			}
		}
		sort.Slice(sharedHere, func(i, j int) bool {
			if sharedHere[i].To != sharedHere[j].To {
				return sharedHere[i].To > sharedHere[j].To
			}
			return sharedHere[i].Name < sharedHere[j].Name
		})
		for _, r := range sharedHere {
			for iter := 0; iter < v.Iters; iter++ {
				if err := place(fb, c.Set, r.Name, instance(r.Name, iter), alloc.FromTop, ev); err != nil {
					return rep, err
				}
			}
		}

		// Phase 2: per-kernel input data, last kernel first
		// (Figure 4: for k = last kernel down to first). Streamed
		// inputs are deferred to phase 3.
		for i := len(ci.PerKernel) - 1; i >= 0; i-- {
			for _, d := range ci.PerKernel[i].D {
				if _, resident := retainedByKey[retKey{d, c.Set}]; resident {
					// Retained object: either loaded in phase 1
					// by this cluster or still resident from an
					// earlier cluster of the block.
					continue
				}
				if a.IsStreamed(d) {
					continue
				}
				for iter := 0; iter < v.Iters; iter++ {
					if err := place(fb, c.Set, d, instance(d, iter), alloc.FromTop, ev); err != nil {
						return rep, err
					}
				}
			}
		}

		// releaseAfter[k] lists intermediates whose last consumer is
		// kernel k.
		releaseAfter := map[int][]string{}
		for _, kc := range ci.PerKernel {
			for out, t := range kc.R {
				releaseAfter[t] = append(releaseAfter[t], out)
			}
		}
		for _, names := range releaseAfter {
			sort.Strings(names)
		}

		// Phase 3: execution. The paper's Figure 4 pseudo-code walks
		// iteration-major, but its execution model (Figure 3's loop
		// fission) runs each kernel for all RF iterations back to
		// back; releases must follow the EXECUTION order or reused
		// space would be overwritten while a later kernel still needs
		// it. We therefore walk kernel-major: for k, for iter.
		for _, kc := range ci.PerKernel {
			k := a.Kernels[kc.Kernel]
			for iter := 0; iter < v.Iters; iter++ {
				ev := ev
				ev.Iter = iter
				ev.Kernel = kc.Kernel
				// Streamed inputs arrive just before their first
				// consuming kernel of this iteration.
				for _, in := range k.Inputs {
					if !a.IsStreamed(in) || remote[in] {
						continue
					}
					if _, already := fb.Lookup(instance(in, iter)); already {
						continue
					}
					if err := place(fb, c.Set, in, instance(in, iter), alloc.FromTop, ev); err != nil {
						return rep, err
					}
				}
				for _, out := range k.Outputs {
					dir := resultDir
					if _, isRetained := retainedByKey[retKey{out, c.Set}]; isRetained {
						// Shared results go to the top: they are
						// data for the next clusters.
						dir = alloc.FromTop
					}
					if err := place(fb, c.Set, out, instance(out, iter), dir, ev); err != nil {
						return rep, err
					}
				}
				if !s.InPlaceRelease {
					continue
				}
				for _, d := range kc.D {
					if pinned[d] || remote[d] {
						continue
					}
					if err := free(fb, c.Set, instance(d, iter), ev); err != nil {
						return rep, err
					}
				}
				for _, out := range releaseAfter[kc.Kernel] {
					if pinned[out] || remote[out] {
						continue
					}
					if err := free(fb, c.Set, instance(out, iter), ev); err != nil {
						return rep, err
					}
				}
			}
		}

		// Phase 4: end of visit. Persistent results leave once their
		// store completes; without in-place release everything else
		// leaves too; retained objects whose span ends here leave.
		for iter := 0; iter < v.Iters; iter++ {
			ev := ev
			ev.Iter = iter
			for _, out := range ci.PersistentOut {
				if pinned[out] || remote[out] {
					continue
				}
				if err := free(fb, c.Set, instance(out, iter), ev); err != nil {
					return rep, err
				}
			}
			if !s.InPlaceRelease {
				for _, kc := range ci.PerKernel {
					for _, d := range kc.D {
						if pinned[d] || remote[d] {
							continue
						}
						if err := free(fb, c.Set, instance(d, iter), ev); err != nil {
							return rep, err
						}
					}
					for out := range kc.R {
						if pinned[out] || remote[out] {
							continue
						}
						if err := free(fb, c.Set, instance(out, iter), ev); err != nil {
							return rep, err
						}
					}
				}
			}
			for _, r := range s.Retained {
				if r.To != c.Index {
					continue
				}
				// The object lives in its home set's FB even when
				// the final consumer runs on another set.
				if r.Set == c.Set || r.CrossSet {
					if err := free(fbs[r.Set], r.Set, instance(r.Name, iter), ev); err != nil {
						return rep, err
					}
				}
			}
		}

		if err := fb.CheckInvariants(); err != nil {
			return rep, fmt.Errorf("core: allocator invariants after cluster %d block %d: %w",
				c.Index, v.Block, err)
		}
	}

	// Every FB set must be empty at the end: all lifetimes matched.
	for set, fb := range fbs {
		if fb.Used() != 0 {
			return rep, fmt.Errorf("core: %d bytes leaked in FB set %d: %v", fb.Used(), set, fb.Live())
		}
		rep.PeakUsed[set] = fb.PeakUsed()
		rep.Splits += fb.Splits()
	}
	for inst := range irregular {
		rep.IrregularObjects = append(rep.IrregularObjects, inst)
	}
	sort.Strings(rep.IrregularObjects)
	rep.Regular = len(rep.IrregularObjects) == 0
	return rep, nil
}
