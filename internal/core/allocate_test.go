package core

import (
	"testing"

	"cds/internal/app"
)

func scheduleOrFatal(t *testing.T, s Scheduler, fb int, part *app.Partition) *Schedule {
	t.Helper()
	sched, err := s.Schedule(testArch(fb), part)
	if err != nil {
		t.Fatalf("%s.Schedule: %v", s.Name(), err)
	}
	return sched
}

func TestAllocateCDSPipe(t *testing.T) {
	part := pipeApp(t, 4)
	s := scheduleOrFatal(t, CompleteDataScheduler{}, 360, part)
	rep, err := Allocate(s, false)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if rep.Splits != 0 {
		t.Errorf("splits = %d, want 0", rep.Splits)
	}
	if !rep.Regular {
		t.Errorf("irregular objects: %v", rep.IrregularObjects)
	}
	for set, peak := range rep.PeakUsed {
		if peak > 360 {
			t.Errorf("set %d peak = %d exceeds FB size 360", set, peak)
		}
	}
	if len(rep.Events) == 0 {
		t.Fatal("no allocation events recorded")
	}
	// Every alloc is matched by a release (the Allocate leak check
	// passed), and counts must be even and balanced.
	allocs, releases := 0, 0
	for _, ev := range rep.Events {
		switch ev.Op {
		case OpAlloc:
			allocs++
		case OpRelease:
			releases++
		}
	}
	if allocs != releases {
		t.Errorf("allocs = %d, releases = %d, want equal", allocs, releases)
	}
}

func TestAllocatePeakWithinAnalyticBound(t *testing.T) {
	part := pipeApp(t, 4)
	for _, sched := range []Scheduler{Basic{}, DataScheduler{}, CompleteDataScheduler{}} {
		s := scheduleOrFatal(t, sched, 400, part)
		rep, err := Allocate(s, true)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		// The analytic feasibility bound is RF * max footprint with
		// retention pinned; the replayed peak must never exceed it.
		for _, ci := range s.Info.Clusters {
			opts := FootprintOpts{
				InPlaceRelease: s.InPlaceRelease,
				Pinned:         pinnedFor(s.Retained, ci.Cluster),
			}
			bound := s.RF * ClusterFootprint(s.Info, ci.Cluster.Index, opts)
			if peak := rep.PeakUsed[ci.Cluster.Set]; peak > 400 {
				t.Errorf("%s: set %d peak %d exceeds FB", sched.Name(), ci.Cluster.Set, peak)
			}
			_ = bound
		}
		maxBound := 0
		for set := range rep.PeakUsed {
			bound := 0
			for _, ci := range s.Info.Clusters {
				if ci.Cluster.Set != set {
					continue
				}
				opts := FootprintOpts{
					InPlaceRelease: s.InPlaceRelease,
					Pinned:         pinnedFor(s.Retained, ci.Cluster),
				}
				if b := s.RF * ClusterFootprint(s.Info, ci.Cluster.Index, opts); b > bound {
					bound = b
				}
			}
			if rep.PeakUsed[set] > bound {
				t.Errorf("%s: set %d peak %d exceeds analytic bound %d",
					sched.Name(), set, rep.PeakUsed[set], bound)
			}
			if bound > maxBound {
				maxBound = bound
			}
		}
	}
}

func TestAllocateSharedOnTopResultsOnBottom(t *testing.T) {
	part := pipeApp(t, 4)
	s := scheduleOrFatal(t, CompleteDataScheduler{}, 2048, part)
	rep, err := Allocate(s, false)
	if err != nil {
		t.Fatal(err)
	}
	// inA (retained shared datum) must sit above out2 (final result) on
	// set 0, and rB (retained shared result) must also go to the top.
	var inAAddr, out2Addr, rBAddr = -1, -1, -1
	for _, ev := range rep.Events {
		if ev.Op != OpAlloc || ev.Set != 0 {
			continue
		}
		switch ev.Datum {
		case "inA":
			inAAddr = ev.Addr
		case "out2":
			out2Addr = ev.Addr
		case "rB":
			rBAddr = ev.Addr
		}
	}
	if inAAddr < 0 || out2Addr < 0 || rBAddr < 0 {
		t.Fatalf("missing events: inA=%d out2=%d rB=%d", inAAddr, out2Addr, rBAddr)
	}
	if inAAddr <= out2Addr {
		t.Errorf("shared datum inA at %d should be above final result out2 at %d", inAAddr, out2Addr)
	}
	if rBAddr <= out2Addr {
		t.Errorf("shared result rB at %d should be above final result out2 at %d", rBAddr, out2Addr)
	}
}

func TestAllocateBasicAndDS(t *testing.T) {
	part := pipeApp(t, 5) // odd iterations: exercises the remainder block
	for _, sched := range []Scheduler{Basic{}, DataScheduler{}} {
		s := scheduleOrFatal(t, sched, 400, part)
		rep, err := Allocate(s, false)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if !rep.Regular {
			t.Errorf("%s: irregular objects %v", sched.Name(), rep.IrregularObjects)
		}
		if rep.Splits != 0 {
			t.Errorf("%s: splits = %d, want 0", sched.Name(), rep.Splits)
		}
	}
}

func TestAllocateRegularAcrossBlocks(t *testing.T) {
	part := pipeApp(t, 8) // 4 blocks at RF=2
	s := scheduleOrFatal(t, CompleteDataScheduler{}, 360, part)
	rep, err := Allocate(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Regular {
		t.Errorf("allocation not regular across blocks: %v", rep.IrregularObjects)
	}
	// The same datum+iteration instance, allocated by the same cluster,
	// must land on the same address in every block.
	type key struct {
		set, cluster int
		object       string
	}
	addrs := map[key]int{}
	for _, ev := range rep.Events {
		if ev.Op != OpAlloc {
			continue
		}
		k := key{ev.Set, ev.Cluster, ev.Object}
		if prev, seen := addrs[k]; seen && prev != ev.Addr {
			t.Errorf("%s (cluster %d) moved from %d to %d between blocks", ev.Object, ev.Cluster, prev, ev.Addr)
		}
		addrs[k] = ev.Addr
	}
}

func TestAllocOpString(t *testing.T) {
	if OpAlloc.String() != "alloc" || OpRelease.String() != "release" {
		t.Error("AllocOp.String broken")
	}
}
