package core

import (
	"testing"
)

// TestBasicContextTrafficIsFullReload pins the DATE'99 baseline's
// context behavior: the Basic Scheduler reloads every kernel's contexts
// on every cluster iteration, so on a workload whose contexts all fit
// the Context Memory its context traffic is EXACTLY
// iterations x sum(ContextWords) — the CM replay must not let groups
// that survive across visits skip their recharge (the bug this test
// regresses: visits after the first came back nearly context-free).
func TestBasicContextTrafficIsFullReload(t *testing.T) {
	const iterations = 6
	part := pipeApp(t, iterations)
	pa := testArch(1 << 16)
	// A CM holding every kernel's contexts at once: with reuse allowed
	// everything would stay resident after the first pass.
	pa.CMWords = part.App.TotalContextWords() + 1

	s, err := (Basic{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	want := iterations * part.App.TotalContextWords()
	if got := s.TotalCtxWords(); got != want {
		t.Fatalf("basic context traffic = %d words, want iterations x sum(ContextWords) = %d", got, want)
	}
	// Every visit recharges its cluster's full volume — none comes back
	// lighter because a group survived in the CM.
	for _, v := range s.Visits {
		sum := 0
		for _, ki := range part.Clusters[v.Cluster].Kernels {
			sum += part.App.Kernels[ki].ContextWords
		}
		if v.CtxWords != sum {
			t.Errorf("visit (block %d, cluster %d): %d context words, want full reload %d",
				v.Block, v.Cluster, v.CtxWords, sum)
		}
	}

	// Contrast: the Data Scheduler on the same workload DOES reuse
	// resident contexts, so its traffic must stay strictly below the
	// baseline's — that is the RF mechanism the paper builds on.
	ds, err := (DataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalCtxWords() >= want {
		t.Errorf("ds context traffic %d not below basic's %d", ds.TotalCtxWords(), want)
	}
}
