package core

import (
	"errors"
	"strings"
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/extract"
)

// pipeApp is the canonical three-cluster test application:
//
//	cluster 0 (set 0): k1(inA,x -> m), k2(m -> r2, rB)
//	cluster 1 (set 1): k3(r2 -> out1)
//	cluster 2 (set 0): k4(inA, rB -> out2)
//
// inA is shared data between clusters 0 and 2 (same set); rB is a shared
// result from cluster 0 to cluster 2 (same set); r2 crosses sets.
func pipeApp(t testing.TB, iterations int) *app.Partition {
	t.Helper()
	b := app.NewBuilder("pipe", iterations).
		Datum("inA", 100).
		Datum("x", 50).
		Datum("m", 30).
		Datum("r2", 60).
		Datum("rB", 40).
		Datum("out1", 20).
		Datum("out2", 20)
	b.Kernel("k1", 16, 1000).In("inA", "x").Out("m")
	b.Kernel("k2", 16, 1000).In("m").Out("r2", "rB")
	b.Kernel("k3", 16, 1000).In("r2").Out("out1")
	b.Kernel("k4", 16, 1000).In("inA", "rB").Out("out2")
	return app.MustPartition(b.MustBuild(), 2, 2, 1, 1)
}

func testArch(fb int) arch.Params {
	p := arch.M1()
	p.FBSetBytes = fb
	// Shrink the context memory to two kernels' worth so visits evict
	// each other and the RF effect on context traffic is visible.
	p.CMWords = 32
	return p
}

func TestClusterFootprintInPlace(t *testing.T) {
	p := pipeApp(t, 4)
	info := extract.Analyze(p)
	opts := FootprintOpts{InPlaceRelease: true}
	// Cluster 0: peak while k1 runs: inA+x+m = 180.
	if got := ClusterFootprint(info, 0, opts); got != 180 {
		t.Errorf("cluster 0 footprint = %d, want 180", got)
	}
	// Cluster 1: r2 + out1 = 80.
	if got := ClusterFootprint(info, 1, opts); got != 80 {
		t.Errorf("cluster 1 footprint = %d, want 80", got)
	}
	// Cluster 2: inA + rB + out2 = 160.
	if got := ClusterFootprint(info, 2, opts); got != 160 {
		t.Errorf("cluster 2 footprint = %d, want 160", got)
	}
}

func TestClusterFootprintBasic(t *testing.T) {
	p := pipeApp(t, 4)
	info := extract.Analyze(p)
	opts := FootprintOpts{InPlaceRelease: false}
	// Everything the cluster touches stays live: 100+50+30+60+40 = 280.
	if got := ClusterFootprint(info, 0, opts); got != 280 {
		t.Errorf("cluster 0 basic footprint = %d, want 280", got)
	}
	if got := MaxClusterFootprint(info, -1, opts); got != 280 {
		t.Errorf("max footprint = %d, want 280", got)
	}
	if got := MaxClusterFootprint(info, 1, opts); got != 80 {
		t.Errorf("set-1 max footprint = %d, want 80", got)
	}
}

func TestClusterFootprintPinned(t *testing.T) {
	p := pipeApp(t, 4)
	info := extract.Analyze(p)
	// Pinning inA prevents its release after k1: peak moves to k2's
	// execution: inA + m + r2 + rB = 230.
	opts := FootprintOpts{InPlaceRelease: true, Pinned: map[string]bool{"inA": true}}
	if got := ClusterFootprint(info, 0, opts); got != 230 {
		t.Errorf("cluster 0 pinned footprint = %d, want 230", got)
	}
	// A pinned object the cluster never touches still occupies space.
	opts = FootprintOpts{InPlaceRelease: true, Pinned: map[string]bool{"rB": true}}
	if got := ClusterFootprint(info, 1, opts); got != 80+40 {
		t.Errorf("cluster 1 with foreign pin = %d, want 120", got)
	}
}

func TestCommonRF(t *testing.T) {
	p := pipeApp(t, 4)
	info := extract.Analyze(p)
	// Max in-place footprint is 180 (cluster 0): FBS=360 allows RF=2.
	if got := CommonRF(360, info, true, nil); got != 2 {
		t.Errorf("CommonRF(360) = %d, want 2", got)
	}
	// FBS=180 allows exactly RF=1. Below that the raw division yields 0,
	// but CommonRF clamps to the documented >= 1 floor: callers only
	// reach it after feasibleRF has proven RF=1 viable, so 0 would just
	// desynchronize them from blocks()'s rf<1 guard.
	if got := CommonRF(180, info, true, nil); got != 1 {
		t.Errorf("CommonRF(180) = %d, want 1", got)
	}
	if got := CommonRF(179, info, true, nil); got != 1 {
		t.Errorf("CommonRF(179) = %d, want 1 (clamped floor)", got)
	}
	// Iteration cap: a huge FB cannot push RF past Iterations.
	if got := CommonRF(1<<20, info, true, nil); got != 4 {
		t.Errorf("CommonRF(huge) = %d, want 4 (iteration cap)", got)
	}
}

func TestBlocks(t *testing.T) {
	tests := []struct {
		iters, rf int
		want      []int
	}{
		{4, 2, []int{2, 2}},
		{5, 2, []int{2, 2, 1}}, // tail block shorter than RF
		{7, 3, []int{3, 3, 1}}, // iterations not divisible by RF
		{3, 1, []int{1, 1, 1}},
		{2, 10, []int{2}},       // rf >= iterations: one block
		{5, 5, []int{5}},        // rf == iterations exactly
		{1, 0, []int{1}},        // rf clamped to 1
		{3, -2, []int{1, 1, 1}}, // negative rf clamped to 1
		{0, 3, nil},             // nothing to execute
	}
	for _, tt := range tests {
		got := blocks(tt.iters, tt.rf)
		if len(got) != len(tt.want) {
			t.Errorf("blocks(%d,%d) = %v, want %v", tt.iters, tt.rf, got, tt.want)
			continue
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != tt.want[i] {
				t.Errorf("blocks(%d,%d) = %v, want %v", tt.iters, tt.rf, got, tt.want)
				break
			}
		}
		if sum != tt.iters {
			t.Errorf("blocks(%d,%d) covers %d iterations", tt.iters, tt.rf, sum)
		}
	}
}

func TestTFFormulas(t *testing.T) {
	// TF(D) = D*(N-1)/TDS; TF(R) = R*(N+1)/TDS.
	if got := TFData(100, 2, 320); got != 100.0/320.0 {
		t.Errorf("TFData = %v, want %v", got, 100.0/320.0)
	}
	if got := TFResult(40, 1, 320); got != 80.0/320.0 {
		t.Errorf("TFResult = %v, want %v", got, 80.0/320.0)
	}
	// The result bonus: equal size and N, a result outranks a datum
	// (it additionally avoids the store).
	if TFResult(50, 2, 100) <= TFData(50, 2, 100) {
		t.Error("TFResult should exceed TFData at equal size and N")
	}
}

func TestSelectRetentionTFOrder(t *testing.T) {
	p := pipeApp(t, 4)
	info := extract.Analyze(p)
	// At RF=2 with FBS=360, retaining inA is infeasible (cluster 0
	// would need 2*230=460) but retaining rB fits exactly (2*180=360).
	kept := selectRetention(360, info, 2, RankTF)
	if len(kept) != 1 || kept[0].Name != "rB" || kept[0].Kind != RetainedResult {
		t.Fatalf("kept = %+v, want only result rB", kept)
	}
	if kept[0].From != 0 || kept[0].To != 2 {
		t.Errorf("rB span = %d..%d, want 0..2", kept[0].From, kept[0].To)
	}
	// rB is neither final nor cross-set: store+reload avoided = 80/iter.
	if kept[0].AvoidedBytesPerIter != 80 {
		t.Errorf("avoided = %d, want 80", kept[0].AvoidedBytesPerIter)
	}
	// With a roomier FB both candidates fit.
	kept = selectRetention(1000, info, 2, RankTF)
	if len(kept) != 2 {
		t.Fatalf("kept = %+v, want both inA and rB", kept)
	}
}

func TestBasicScheduler(t *testing.T) {
	part := pipeApp(t, 4)
	s, err := Basic{}.Schedule(testArch(360), part)
	if err != nil {
		t.Fatal(err)
	}
	if s.RF != 1 {
		t.Errorf("basic RF = %d, want 1", s.RF)
	}
	if len(s.Visits) != 4*3 {
		t.Fatalf("visits = %d, want 12 (4 iterations x 3 clusters)", len(s.Visits))
	}
	// Per iteration: loads inA+x (c0) + r2 (c1) + inA+rB (c2) = 350;
	// stores r2+rB (c0) + out1 (c1) + out2 (c2) = 140.
	if got := s.TotalLoadBytes(); got != 4*350 {
		t.Errorf("loads = %d, want %d", got, 4*350)
	}
	if got := s.TotalStoreBytes(); got != 4*140 {
		t.Errorf("stores = %d, want %d", got, 4*140)
	}
	if len(s.Retained) != 0 {
		t.Error("basic scheduler must not retain anything")
	}
}

func TestBasicInfeasible(t *testing.T) {
	part := pipeApp(t, 4)
	// Basic needs 280 bytes for cluster 0; DS needs only 180.
	_, err := Basic{}.Schedule(testArch(200), part)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InfeasibleError", err)
	}
	if ie.Cluster != 0 || ie.Need != 280 || ie.Have != 200 {
		t.Errorf("InfeasibleError = %+v, want cluster 0 need 280 have 200", ie)
	}
	if _, err := (DataScheduler{}).Schedule(testArch(200), part); err != nil {
		t.Errorf("DS should fit in 200 bytes: %v", err)
	}
}

func TestDataScheduler(t *testing.T) {
	part := pipeApp(t, 4)
	s, err := DataScheduler{}.Schedule(testArch(360), part)
	if err != nil {
		t.Fatal(err)
	}
	if s.RF != 2 {
		t.Errorf("DS RF = %d, want 2", s.RF)
	}
	if len(s.Visits) != 2*3 {
		t.Fatalf("visits = %d, want 6 (2 blocks x 3 clusters)", len(s.Visits))
	}
	// Same data traffic as basic (no retention), just batched.
	if got := s.TotalLoadBytes(); got != 4*350 {
		t.Errorf("loads = %d, want %d", got, 4*350)
	}
	// Context traffic halves versus basic (2 visits instead of 4 per
	// cluster; CM thrashing makes every visit a full reload here).
	basicS, err := Basic{}.Schedule(testArch(360), part)
	if err != nil {
		t.Fatal(err)
	}
	if 2*s.TotalCtxWords() != basicS.TotalCtxWords() {
		t.Errorf("ctx words: ds=%d basic=%d, want exactly half", s.TotalCtxWords(), basicS.TotalCtxWords())
	}
}

func TestCompleteDataScheduler(t *testing.T) {
	part := pipeApp(t, 4)
	s, err := CompleteDataScheduler{}.Schedule(testArch(360), part)
	if err != nil {
		t.Fatal(err)
	}
	if s.RF != 2 {
		t.Errorf("CDS RF = %d, want 2", s.RF)
	}
	if len(s.Retained) != 1 || s.Retained[0].Name != "rB" {
		t.Fatalf("retained = %+v, want rB only", s.Retained)
	}
	// rB retention removes its store at cluster 0 and its load at
	// cluster 2: per iteration 350-40=310 loaded, 140-40=100 stored.
	if got := s.TotalLoadBytes(); got != 4*310 {
		t.Errorf("loads = %d, want %d", got, 4*310)
	}
	if got := s.TotalStoreBytes(); got != 4*100 {
		t.Errorf("stores = %d, want %d", got, 4*100)
	}
	if got := s.AvoidedBytesPerIter(); got != 80 {
		t.Errorf("avoided/iter = %d, want 80", got)
	}
}

func TestCDSRetainsSharedDataWhenRoomy(t *testing.T) {
	part := pipeApp(t, 4)
	s, err := CompleteDataScheduler{}.Schedule(testArch(2048), part)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range s.Retained {
		names[r.Name] = true
	}
	if !names["inA"] || !names["rB"] {
		t.Fatalf("retained = %+v, want inA and rB", s.Retained)
	}
	// inA loaded only by cluster 0 now: per iteration loads =
	// inA+x (c0) + r2 (c1) + nothing (c2) = 210.
	perIter := s.TotalLoadBytes() / 4
	if perIter != 210 {
		t.Errorf("loads/iter = %d, want 210", perIter)
	}
}

func TestCrossSetResultNotRetained(t *testing.T) {
	part := pipeApp(t, 4)
	s, err := CompleteDataScheduler{}.Schedule(testArch(1<<20), part)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Retained {
		if r.Name == "r2" {
			t.Fatal("r2 crosses FB sets and must not be retained")
		}
	}
	// r2 is still stored and loaded.
	found := false
	for _, v := range s.Visits {
		for _, m := range v.Loads {
			if m.Datum == "r2" {
				found = true
			}
		}
	}
	if !found {
		t.Error("r2 must still be loaded by cluster 1")
	}
}

func TestSchedulerValidatesInputs(t *testing.T) {
	part := pipeApp(t, 4)
	bad := testArch(360)
	bad.BusBytes = 0
	if _, err := (Basic{}).Schedule(bad, part); err == nil {
		t.Error("invalid arch accepted")
	}
	badPart := &app.Partition{App: part.App} // no clusters
	if _, err := (Basic{}).Schedule(testArch(360), badPart); err == nil {
		t.Error("invalid partition accepted")
	}
}

func TestVisitAccessors(t *testing.T) {
	v := Visit{
		Loads:  []Movement{{Datum: "a", Bytes: 10}, {Datum: "b", Bytes: 20}},
		Stores: []Movement{{Datum: "c", Bytes: 5}},
	}
	if v.LoadBytes() != 30 || v.StoreBytes() != 5 {
		t.Errorf("LoadBytes/StoreBytes = %d/%d, want 30/5", v.LoadBytes(), v.StoreBytes())
	}
}

func TestRankingFunctions(t *testing.T) {
	cands := []Candidate{
		{Retained: Retained{Name: "small-hot", Size: 10, TF: 0.9}},
		{Retained: Retained{Name: "big-cold", Size: 100, TF: 0.1}},
		{Retained: Retained{Name: "mid", Size: 50, TF: 0.5}},
	}
	tf := append([]Candidate(nil), cands...)
	RankTF(tf)
	if tf[0].Name != "small-hot" || tf[2].Name != "big-cold" {
		t.Errorf("RankTF order = %v", []string{tf[0].Name, tf[1].Name, tf[2].Name})
	}
	bySize := append([]Candidate(nil), cands...)
	RankBySize(bySize)
	if bySize[0].Name != "big-cold" || bySize[2].Name != "small-hot" {
		t.Errorf("RankBySize order = %v", []string{bySize[0].Name, bySize[1].Name, bySize[2].Name})
	}
	fifo := append([]Candidate(nil), cands...)
	RankFIFO(fifo)
	if fifo[0].Name != "small-hot" || fifo[1].Name != "big-cold" {
		t.Error("RankFIFO must preserve order")
	}
}

func TestRetainedKindString(t *testing.T) {
	if RetainedData.String() != "data" || RetainedResult.String() != "result" {
		t.Error("RetainedKind.String broken")
	}
}

func TestInfeasibleErrorMessage(t *testing.T) {
	e := &InfeasibleError{Scheduler: "basic", Cluster: 3, Need: 100, Have: 50}
	msg := e.Error()
	for _, want := range []string{"basic", "3", "100", "50"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
