package core

import (
	"testing"

	"cds/internal/app"
	"cds/internal/extract"
)

// crossSetPartition builds an app whose only sharing crosses FB sets:
// datum "tbl" is read by clusters 0 (set 0) and 1 (set 1); result "r" is
// produced by cluster 0 and consumed by cluster 1.
func crossSetPartition(t *testing.T) *app.Partition {
	t.Helper()
	b := app.NewBuilder("xset", 8).
		Datum("tbl", 200).
		Datum("in0", 80).
		Datum("r", 120).
		Datum("out1", 60)
	b.Kernel("k0", 64, 200).In("in0", "tbl").Out("r")
	b.Kernel("k1", 64, 200).In("r", "tbl").Out("out1")
	return app.MustPartition(b.MustBuild(), 2, 1, 1)
}

func TestAnalyzeCrossSetOption(t *testing.T) {
	p := crossSetPartition(t)

	plain := extract.Analyze(p)
	if len(plain.SharedData) != 0 {
		t.Errorf("same-set analysis found shared data %v on a cross-set app", plain.SharedData)
	}
	if len(plain.SharedResults) != 0 {
		t.Errorf("same-set analysis found shared results %v", plain.SharedResults)
	}

	cross := extract.AnalyzeWithOpts(p, extract.Opts{CrossSetReuse: true})
	if len(cross.SharedData) != 1 || cross.SharedData[0].Name != "tbl" {
		t.Fatalf("cross-set shared data = %+v, want tbl", cross.SharedData)
	}
	if cross.SharedData[0].Set != 0 {
		t.Errorf("tbl homed on set %d, want first consumer's set 0", cross.SharedData[0].Set)
	}
	if len(cross.SharedResults) != 1 || cross.SharedResults[0].Name != "r" {
		t.Fatalf("cross-set shared results = %+v, want r", cross.SharedResults)
	}
	if !cross.SharedResults[0].StoreAvoidable() {
		t.Error("r is reachable by every consumer under cross-set reuse: store should be avoidable")
	}
}

func TestCrossSetReuseSchedulerGains(t *testing.T) {
	part := crossSetPartition(t)
	pa := testArch(600)

	plain, err := (CompleteDataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Retained) != 0 {
		t.Fatalf("paper-mode CDS retained %v on a purely cross-set app", plain.Retained)
	}

	cross, err := (CompleteDataScheduler{CrossSetReuse: true}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(cross.Retained) == 0 {
		t.Fatal("cross-set CDS retained nothing")
	}
	for _, r := range cross.Retained {
		if !r.CrossSet {
			t.Errorf("retained %s not marked CrossSet", r.Name)
		}
	}
	// Cross-set retention must strictly reduce external traffic.
	if cross.TotalLoadBytes() >= plain.TotalLoadBytes() {
		t.Errorf("cross-set loads %d, plain %d: no saving", cross.TotalLoadBytes(), plain.TotalLoadBytes())
	}
	if cross.TotalStoreBytes() >= plain.TotalStoreBytes() {
		t.Errorf("cross-set stores %d, plain %d: r's store not avoided",
			cross.TotalStoreBytes(), plain.TotalStoreBytes())
	}
}

func TestCrossSetReuseAllocates(t *testing.T) {
	part := crossSetPartition(t)
	s, err := (CompleteDataScheduler{CrossSetReuse: true}).Schedule(testArch(600), part)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Allocate(s, false)
	if err != nil {
		t.Fatalf("allocation replay with cross-set retention: %v", err)
	}
	if rep.Splits != 0 || !rep.Regular {
		t.Errorf("cross-set allocation degraded: splits=%d regular=%v", rep.Splits, rep.Regular)
	}
	// The retained objects live in their home set (set 0): its peak
	// carries them; set 1's peak only carries cluster 1's private work.
	if rep.PeakUsed[0] <= rep.PeakUsed[1] {
		t.Errorf("peaks = %v: home set 0 should carry the retained objects", rep.PeakUsed)
	}
}

func TestCrossSetVolumesAreConsistent(t *testing.T) {
	// Every load/store the schedule claims must replay through codegen's
	// volume checks implicitly via the totals here: loads at cluster 0
	// include tbl once; cluster 1 loads nothing (tbl and r resident).
	part := crossSetPartition(t)
	s, err := (CompleteDataScheduler{CrossSetReuse: true}).Schedule(testArch(600), part)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: loads = in0 + tbl = 280; stores = out1 = 60 (r's
	// store avoided).
	iters := part.App.Iterations
	if got := s.TotalLoadBytes(); got != iters*280 {
		t.Errorf("loads = %d, want %d", got, iters*280)
	}
	if got := s.TotalStoreBytes(); got != iters*60 {
		t.Errorf("stores = %d, want %d", got, iters*60)
	}
}
