package core

import (
	"cds/internal/app"
	"cds/internal/extract"
)

// FootprintOpts controls the per-iteration Frame Buffer footprint model.
type FootprintOpts struct {
	// InPlaceRelease enables the Data Scheduler's space reuse: data and
	// intermediate results are released at their last in-cluster use so
	// later results can take their place. The Basic Scheduler keeps
	// everything live until the cluster ends.
	InPlaceRelease bool
	// Pinned names inter-cluster objects retained in the FB. Pinned
	// objects occupy space for the whole cluster execution (they are
	// never released early), and pinned objects merely passing through
	// (neither produced nor consumed by the cluster) still count.
	Pinned map[string]bool
	// Remote names objects this cluster reads from ANOTHER FB set
	// (cross-set retention): they occupy no space here and are neither
	// loaded nor released by this cluster.
	Remote map[string]bool
}

// ClusterFootprint returns the paper's DS(C): the peak Frame Buffer bytes
// one iteration of cluster c needs under the given options. Multiply by RF
// for a visit executing RF iterations.
//
// The walk mirrors cluster execution: all external inputs are resident at
// the start; each kernel's outputs materialize while its inputs are still
// live; dead objects are released after the kernel (when InPlaceRelease).
func ClusterFootprint(info *extract.Info, c int, opts FootprintOpts) int {
	a := info.P.App
	ci := info.Clusters[c]

	// live tracks resident bytes by object name.
	live := map[string]int{}
	cur := 0
	add := func(name string) {
		if _, ok := live[name]; ok {
			return
		}
		sz := a.SizeOf(name)
		live[name] = sz
		cur += sz
	}
	drop := func(name string) {
		if sz, ok := live[name]; ok {
			delete(live, name)
			cur -= sz
		}
	}

	// Pinned objects spanning the cluster occupy space from the start,
	// even if the cluster never touches them — unless this cluster is
	// the one that produces them, in which case they materialize at
	// their producing kernel like any other output.
	producedHere := map[string]bool{}
	for _, ki := range ci.Cluster.Kernels {
		for _, out := range a.Kernels[ki].Outputs {
			producedHere[out] = true
		}
	}
	for name := range opts.Pinned {
		if !producedHere[name] {
			add(name)
		}
	}
	// External inputs are loaded before the cluster starts — except
	// remote ones (which stay in their home set) and streamed ones
	// (which arrive just before their first consuming kernel).
	for _, name := range ci.ExternalIn {
		if !opts.Remote[name] && !a.IsStreamed(name) {
			add(name)
		}
	}
	peak := cur

	// lastUse maps each object to the kernel position after which it
	// may be released.
	lastUse := map[string]int{}
	for ki, kc := range ci.PerKernel {
		_ = ki
		for _, d := range kc.D {
			lastUse[d] = kc.Kernel
		}
		for out, t := range kc.R {
			lastUse[out] = t
		}
	}

	for _, kc := range ci.PerKernel {
		k := a.Kernels[kc.Kernel]
		// Streamed inputs arrive just in time for their first
		// consumer.
		for _, in := range k.Inputs {
			if a.IsStreamed(in) && !opts.Remote[in] {
				add(in)
			}
		}
		// Outputs materialize during the kernel's execution, while
		// its inputs are still resident.
		for _, out := range k.Outputs {
			add(out)
		}
		if cur > peak {
			peak = cur
		}
		if !opts.InPlaceRelease {
			continue
		}
		for name, last := range lastUse {
			if last == kc.Kernel && !opts.Pinned[name] && !opts.Remote[name] {
				drop(name)
			}
		}
	}
	return peak
}

// MaxClusterFootprint returns the largest ClusterFootprint over the
// clusters assigned to the given FB set (set < 0 means all clusters).
func MaxClusterFootprint(info *extract.Info, set int, opts FootprintOpts) int {
	max := 0
	for _, ci := range info.Clusters {
		if set >= 0 && ci.Cluster.Set != set {
			continue
		}
		if fp := ClusterFootprint(info, ci.Cluster.Index, opts); fp > max {
			max = fp
		}
	}
	return max
}

// pinnedFor returns the set of retained object names whose residency span
// covers cluster c ON ITS OWN SET. Retained objects live on one FB set;
// clusters on other sets see them as remote (see remoteFor).
func pinnedFor(retained []Retained, c app.Cluster) map[string]bool {
	pinned := map[string]bool{}
	for _, r := range retained {
		if r.Set == c.Set && r.From <= c.Index && c.Index <= r.To {
			pinned[r.Name] = true
		}
	}
	return pinned
}

// remoteFor returns the retained objects cluster c accesses in ANOTHER
// set's FB under the cross-set reuse extension: they cost c no space, no
// loads and no releases.
func remoteFor(retained []Retained, c app.Cluster) map[string]bool {
	remote := map[string]bool{}
	for _, r := range retained {
		if r.CrossSet && r.Set != c.Set && r.From <= c.Index && c.Index <= r.To {
			remote[r.Name] = true
		}
	}
	return remote
}

// feasibleRF reports whether every cluster fits its FB set when executing
// rf iterations per visit with the given retained objects.
func feasibleRF(fbSetBytes int, info *extract.Info, rf int, inPlace bool, retained []Retained) (bool, *InfeasibleError) {
	sc := getScratch(info.P.App.NumData())
	defer putScratch(sc)
	return feasibleRFScratch(fbSetBytes, info, rf, inPlace, retained, sc)
}

// feasibleRFScratch is feasibleRF against a caller-leased scratch, so
// tight trial loops (selectRetention) skip the pool round-trip.
func feasibleRFScratch(fbSetBytes int, info *extract.Info, rf int, inPlace bool, retained []Retained, sc *fpScratch) (bool, *InfeasibleError) {
	for _, ci := range info.Clusters {
		need := rf * clusterFootprintFast(info, ci.Cluster.Index, inPlace, retained, sc)
		if need > fbSetBytes {
			return false, &InfeasibleError{
				Cluster: ci.Cluster.Index,
				Need:    need,
				Have:    fbSetBytes,
			}
		}
	}
	return true, nil
}
