package core

import (
	"sync"

	"cds/internal/app"
	"cds/internal/extract"
)

// Fast footprint evaluation over the extractor's compiled walks
// (extract.FootprintWalk): the retention pass evaluates the paper's
// DS(C) model O(candidates² × clusters) times, so the inner loop must
// not hash strings or allocate. The walker indexes epoch-stamped
// scratch arrays by interned datum ID; bumping the epoch empties every
// set in O(1), and a sync.Pool recycles the arrays across scheduler
// runs and sweep points. ClusterFootprint keeps the readable map-based
// model; TestFootprintFastMatchesSlow pins the two to identical results.

// fpScratch is one goroutine's footprint evaluation state.
type fpScratch struct {
	epoch    uint32
	live     []uint32 // live[id] == epoch -> resident
	pinned   []uint32 // pinned[id] == epoch -> retained on this cluster's set
	remote   []uint32 // remote[id] == epoch -> read from the other set
	produced []uint32 // produced[id] == epoch -> written by this cluster

	pinnedList []int32 // IDs pinned in the current epoch
}

var fpPool = sync.Pool{New: func() any { return &fpScratch{} }}

// getScratch leases a scratch sized for n datum IDs.
func getScratch(n int) *fpScratch {
	sc := fpPool.Get().(*fpScratch)
	if len(sc.live) < n {
		sc.live = make([]uint32, n)
		sc.pinned = make([]uint32, n)
		sc.remote = make([]uint32, n)
		sc.produced = make([]uint32, n)
		sc.epoch = 0
	}
	return sc
}

func putScratch(sc *fpScratch) { fpPool.Put(sc) }

// begin opens a fresh evaluation epoch: all four sets become empty.
func (sc *fpScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped after 2^32 evaluations: hard reset
		clear(sc.live)
		clear(sc.pinned)
		clear(sc.remote)
		clear(sc.produced)
		sc.epoch = 1
	}
	sc.pinnedList = sc.pinnedList[:0]
}

// stampRetention marks the retained objects as pinned or remote for
// cluster c, mirroring pinnedFor/remoteFor exactly.
func (sc *fpScratch) stampRetention(a *app.App, retained []Retained, c app.Cluster) {
	for i := range retained {
		r := &retained[i]
		if r.From > c.Index || c.Index > r.To {
			continue
		}
		id := a.DatumID(r.Name)
		if id < 0 {
			continue
		}
		if r.Set == c.Set {
			if sc.pinned[id] != sc.epoch {
				sc.pinned[id] = sc.epoch
				sc.pinnedList = append(sc.pinnedList, int32(id))
			}
		} else if r.CrossSet {
			sc.remote[id] = sc.epoch
		}
	}
}

// walkFootprint replays cluster walk w and returns the peak resident
// bytes: the same model as ClusterFootprint, on interned IDs. begin and
// stampRetention must have run for the current epoch.
func (sc *fpScratch) walkFootprint(a *app.App, w *extract.FootprintWalk, inPlace bool) int {
	ep := sc.epoch
	cur := 0

	// Pinned objects occupy space from the start unless this cluster
	// produces them (then they materialize at their producing kernel).
	for _, id := range w.Produced {
		sc.produced[id] = ep
	}
	for _, id := range sc.pinnedList {
		if sc.produced[id] != ep && sc.live[id] != ep {
			sc.live[id] = ep
			cur += a.SizeByID(id)
		}
	}
	// Non-streamed external inputs are resident before the cluster
	// starts, except remote ones (they stay in their home set).
	for _, id := range w.Preload {
		if sc.remote[id] != ep && sc.live[id] != ep {
			sc.live[id] = ep
			cur += a.SizeByID(id)
		}
	}
	peak := cur

	for si := range w.Steps {
		st := &w.Steps[si]
		for _, id := range st.StreamIn {
			if sc.remote[id] != ep && sc.live[id] != ep {
				sc.live[id] = ep
				cur += a.SizeByID(id)
			}
		}
		for _, id := range st.Out {
			if sc.live[id] != ep {
				sc.live[id] = ep
				cur += a.SizeByID(id)
			}
		}
		if cur > peak {
			peak = cur
		}
		if !inPlace {
			continue
		}
		for _, id := range st.Release {
			if sc.pinned[id] != ep && sc.remote[id] != ep && sc.live[id] == ep {
				sc.live[id] = 0
				cur -= a.SizeByID(id)
			}
		}
	}
	return peak
}

// clusterFootprintFast evaluates cluster c's footprint through the
// compiled walk, or falls back to ClusterFootprint when the Info has no
// walks (hand-assembled in tests).
func clusterFootprintFast(info *extract.Info, c int, inPlace bool, retained []Retained, sc *fpScratch) int {
	w := info.Walk(c)
	if w == nil {
		return ClusterFootprint(info, c, FootprintOpts{
			InPlaceRelease: inPlace,
			Pinned:         pinnedFor(retained, info.Clusters[c].Cluster),
			Remote:         remoteFor(retained, info.Clusters[c].Cluster),
		})
	}
	a := info.P.App
	sc.begin()
	sc.stampRetention(a, retained, info.Clusters[c].Cluster)
	return sc.walkFootprint(a, w, inPlace)
}
