package core

import (
	"testing"

	"cds/internal/extract"
	"cds/internal/workloads"
)

// TestFootprintFastMatchesSlow pins the compiled-walk footprint engine
// to the readable map-based model over every workload, both release
// modes, and every retention set the CDS would actually try (each
// prefix of the TF ranking).
func TestFootprintFastMatchesSlow(t *testing.T) {
	for _, e := range workloads.All() {
		for _, crossSet := range []bool{false, true} {
			info := extract.AnalyzeCached(e.Part, extract.Opts{CrossSetReuse: crossSet})
			cands := collectCandidates(info)
			RankTF(cands)
			retainedSets := [][]Retained{nil}
			prefix := []Retained{}
			for _, c := range cands {
				prefix = append(prefix, c.Retained)
				retainedSets = append(retainedSets, append([]Retained(nil), prefix...))
			}
			sc := getScratch(e.Part.App.NumData())
			for _, retained := range retainedSets {
				for _, inPlace := range []bool{false, true} {
					for c := range info.Clusters {
						slow := ClusterFootprint(info, c, FootprintOpts{
							InPlaceRelease: inPlace,
							Pinned:         pinnedFor(retained, info.Clusters[c].Cluster),
							Remote:         remoteFor(retained, info.Clusters[c].Cluster),
						})
						fast := clusterFootprintFast(info, c, inPlace, retained, sc)
						if fast != slow {
							t.Fatalf("%s crossSet=%v cluster %d inPlace=%v retained=%d: fast=%d slow=%d",
								e.Name, crossSet, c, inPlace, len(retained), fast, slow)
						}
					}
				}
			}
			putScratch(sc)
		}
	}
}

// TestFootprintFastFallback: an Info without compiled walks (hand-made)
// must still evaluate through the map model.
func TestFootprintFastFallback(t *testing.T) {
	e := workloads.MPEG()
	info := extract.Analyze(e.Part)
	bare := &extract.Info{P: info.P, Clusters: info.Clusters, TDS: info.TDS}
	sc := getScratch(e.Part.App.NumData())
	defer putScratch(sc)
	for c := range bare.Clusters {
		want := ClusterFootprint(bare, c, FootprintOpts{InPlaceRelease: true})
		if got := clusterFootprintFast(bare, c, true, nil, sc); got != want {
			t.Fatalf("cluster %d: fallback=%d, want %d", c, got, want)
		}
	}
}
