package core

import (
	"math/rand"
	"testing"

	"cds/internal/app"
	"cds/internal/extract"
)

// randomInfo builds a random partitioned application's extractor output.
func randomInfo(rng *rand.Rand) *extract.Info {
	nk := 2 + rng.Intn(6)
	b := app.NewBuilder("mono", 2+rng.Intn(6))
	nIn := 1 + rng.Intn(3)
	if nIn > nk {
		nIn = nk
	}
	for i := 0; i < nIn; i++ {
		b.Datum(mname("in", i), 20+rng.Intn(200))
	}
	for k := 0; k < nk; k++ {
		b.Datum(mname("r", k), 20+rng.Intn(200))
	}
	for k := 0; k < nk; k++ {
		kb := b.Kernel(mname("k", k), 16+rng.Intn(128), 50+rng.Intn(300))
		kb.In(mname("in", k%nIn))
		if k > 0 && rng.Intn(2) == 0 {
			kb.In(mname("r", rng.Intn(k)))
		}
		kb.Out(mname("r", k))
	}
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	var sizes []int
	left := nk
	for left > 0 {
		s := 1 + rng.Intn(left)
		sizes = append(sizes, s)
		left -= s
	}
	return extract.Analyze(app.MustPartition(a, 2, sizes...))
}

func mname(p string, i int) string { return p + string(rune('a'+i)) }

// TestPropertyRFMonotoneInFB: more frame buffer never lowers the common
// reuse factor.
func TestPropertyRFMonotoneInFB(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		info := randomInfo(rng)
		prev := 0
		for fb := 256; fb <= 8192; fb *= 2 {
			rf := CommonRF(fb, info, true, nil)
			if rf < prev {
				t.Fatalf("trial %d: RF dropped from %d to %d when FB grew to %d", trial, prev, rf, fb)
			}
			prev = rf
		}
	}
}

// TestPropertyFootprintMonotoneInPins: pinning more objects never shrinks
// a cluster's footprint.
func TestPropertyFootprintMonotoneInPins(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		info := randomInfo(rng)
		for c := range info.Clusters {
			base := ClusterFootprint(info, c, FootprintOpts{InPlaceRelease: true})
			pinned := map[string]bool{}
			for _, name := range info.Clusters[c].ExternalIn {
				pinned[name] = true
				fp := ClusterFootprint(info, c, FootprintOpts{InPlaceRelease: true, Pinned: copyset(pinned)})
				if fp < base {
					t.Fatalf("trial %d cluster %d: footprint dropped from %d to %d after pinning %s",
						trial, c, base, fp, name)
				}
				base = fp
			}
		}
	}
}

// TestPropertyBasicFootprintDominates: the no-release footprint is always
// at least the in-place-release footprint.
func TestPropertyBasicFootprintDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		info := randomInfo(rng)
		for c := range info.Clusters {
			inPlace := ClusterFootprint(info, c, FootprintOpts{InPlaceRelease: true})
			noRelease := ClusterFootprint(info, c, FootprintOpts{InPlaceRelease: false})
			if noRelease < inPlace {
				t.Fatalf("trial %d cluster %d: basic footprint %d below DS footprint %d",
					trial, c, noRelease, inPlace)
			}
		}
	}
}

// TestPropertyRetentionNeverIncreasesTraffic: on random workloads, CDS
// schedules never move more data than DS schedules.
func TestPropertyRetentionNeverIncreasesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		info := randomInfo(rng)
		part := info.P
		pa := testArch(1 << (9 + rng.Intn(4))) // 512..4096
		ds, err := (DataScheduler{}).Schedule(pa, part)
		if err != nil {
			continue // may not fit; fine
		}
		cdsS, err := (CompleteDataScheduler{}).Schedule(pa, part)
		if err != nil {
			t.Fatalf("trial %d: CDS failed where DS fit: %v", trial, err)
		}
		if cdsS.TotalLoadBytes() > ds.TotalLoadBytes() {
			t.Fatalf("trial %d: CDS loads %d > DS %d", trial, cdsS.TotalLoadBytes(), ds.TotalLoadBytes())
		}
		if cdsS.TotalStoreBytes() > ds.TotalStoreBytes() {
			t.Fatalf("trial %d: CDS stores %d > DS %d", trial, cdsS.TotalStoreBytes(), ds.TotalStoreBytes())
		}
		if cdsS.TotalCtxWords() > ds.TotalCtxWords() {
			t.Fatalf("trial %d: CDS contexts %d > DS %d", trial, cdsS.TotalCtxWords(), ds.TotalCtxWords())
		}
	}
}

func copyset(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
