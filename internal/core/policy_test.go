package core

import (
	"context"
	"errors"
	"testing"

	"cds/internal/alloc"
	"cds/internal/app"
)

func TestRFSweepNeverWorseInDMACost(t *testing.T) {
	part := pipeApp(t, 8)
	for _, fb := range []int{360, 512, 1024, 2048} {
		mx, err := (CompleteDataScheduler{}).Schedule(testArch(fb), part)
		if err != nil {
			t.Fatalf("FB=%d: %v", fb, err)
		}
		sw, err := (CompleteDataScheduler{RF: RFSweep}).Schedule(testArch(fb), part)
		if err != nil {
			t.Fatalf("FB=%d: %v", fb, err)
		}
		if dmaCost(sw) > dmaCost(mx) {
			t.Errorf("FB=%d: sweep DMA cost %d exceeds max-policy %d", fb, dmaCost(sw), dmaCost(mx))
		}
		if sw.RF > mx.RF {
			t.Errorf("FB=%d: sweep RF %d above the feasible max %d", fb, sw.RF, mx.RF)
		}
	}
}

func TestRFSweepCanPreferLowerRF(t *testing.T) {
	// Clusters 0 and 4 (set 0) share a 400-byte table; cluster 2 sits
	// between them with a 300-byte private input. At the maximum RF=2
	// the pinned table does not fit past the pass-through cluster
	// (2 * (380+400) > 1400), so the paper's policy drops retention. At
	// RF=1 retention fits. With a huge CM the RF buys no context
	// savings, so the sweep should trade RF down for the retention.
	b := app.NewBuilder("rf-vs-ret", 8).
		Datum("tbl", 400).
		Datum("in0", 100).
		Datum("in2", 300).
		Datum("in4", 100)
	for _, c := range []int{0, 1, 2, 3, 4} {
		b.Datum(fmtOut(c), 80)
	}
	b.Kernel("k0", 32, 100).In("in0", "tbl").Out(fmtOut(0))
	b.Kernel("k1", 32, 100).In(fmtOut(0)).Out(fmtOut(1))
	b.Kernel("k2", 32, 100).In("in2").Out(fmtOut(2))
	b.Kernel("k3", 32, 100).In(fmtOut(2)).Out(fmtOut(3))
	b.Kernel("k4", 32, 100).In("in4", "tbl").Out(fmtOut(4))
	part := app.MustPartition(b.MustBuild(), 2, 1, 1, 1, 1, 1)

	pa := testArch(1400)
	pa.CMWords = 4096 // contexts stay resident: RF buys nothing

	mx, err := (CompleteDataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := (CompleteDataScheduler{RF: RFSweep}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	if mx.RF != 2 || len(mx.Retained) != 0 {
		t.Fatalf("max policy: RF=%d retained=%d, want RF=2 with no retention (rebalance the test)",
			mx.RF, len(mx.Retained))
	}
	if sw.RF != 1 || len(sw.Retained) != 1 {
		t.Fatalf("sweep: RF=%d retained=%d, want RF=1 with the table retained", sw.RF, len(sw.Retained))
	}
	if dmaCost(sw) >= dmaCost(mx) {
		t.Errorf("sweep cost %d >= max cost %d: the trade did not pay", dmaCost(sw), dmaCost(mx))
	}
}

func fmtOut(c int) string { return "out" + string(rune('0'+c)) }

// TestRFSweepPropagatesErrors pins the sweep's error contract: only the
// expected infeasible-RF outcome is skipped; genuine failures (here:
// invalid architecture parameters) surface instead of being silently
// papered over by the base schedule.
func TestRFSweepPropagatesErrors(t *testing.T) {
	part := pipeApp(t, 8)
	bad := testArch(1024)
	bad.FBSetBytes = -1
	if _, err := (CompleteDataScheduler{RF: RFSweep}).Schedule(bad, part); err == nil {
		t.Error("sweep with invalid arch params succeeded")
	}
	// An infeasible partition is an InfeasibleError, not a swallow.
	tiny := testArch(64)
	_, err := (CompleteDataScheduler{RF: RFSweep}).Schedule(tiny, part)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Errorf("sweep on a too-small FB: err = %v, want InfeasibleError", err)
	}
}

func TestForcedRFValidation(t *testing.T) {
	part := pipeApp(t, 4)
	_, err := schedule(context.Background(), "cds", testArch(360), part, scheduleOpts{
		rfEnabled:      true,
		inPlaceRelease: true,
		retention:      true,
		ranking:        RankTF,
		forcedRF:       99,
	})
	if err == nil {
		t.Error("forced RF beyond the feasible maximum accepted")
	}
}

func TestAllocateFitPolicies(t *testing.T) {
	part := pipeApp(t, 4)
	s := scheduleOrFatal(t, CompleteDataScheduler{}, 512, part)
	for _, pol := range []alloc.FitPolicy{alloc.FirstFit, alloc.BestFit, alloc.WorstFit} {
		rep, err := AllocateWithOptions(s, AllocOptions{AllowSplit: true, FitPolicy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for set, peak := range rep.PeakUsed {
			if peak > 512 {
				t.Errorf("%v: set %d peak %d over FB", pol, set, peak)
			}
		}
	}
}

func TestAllocateOneSided(t *testing.T) {
	part := pipeApp(t, 4)
	s := scheduleOrFatal(t, CompleteDataScheduler{}, 512, part)
	rep, err := AllocateWithOptions(s, AllocOptions{AllowSplit: true, OneSided: true})
	if err != nil {
		t.Fatalf("one-sided allocation: %v", err)
	}
	// One-sided placement must still be leak-free (Allocate checks) and
	// in bounds; quality (splits) may be worse, never checked here.
	for set, peak := range rep.PeakUsed {
		if peak > 512 {
			t.Errorf("set %d peak %d over FB", set, peak)
		}
	}
}

func TestRFPolicyString(t *testing.T) {
	if RFMax.String() != "max" || RFSweep.String() != "sweep" {
		t.Error("RFPolicy names broken")
	}
}

func TestFitPolicyString(t *testing.T) {
	if alloc.FirstFit.String() != "first-fit" || alloc.BestFit.String() != "best-fit" ||
		alloc.WorstFit.String() != "worst-fit" {
		t.Error("FitPolicy names broken")
	}
}
