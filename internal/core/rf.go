package core

import "cds/internal/extract"

// CommonRF returns the highest context reuse factor usable by EVERY
// cluster: the largest rf such that rf consecutive iterations of each
// cluster fit its Frame Buffer set alongside the retained objects. The
// result is capped by the application's iteration count and is at least 1
// when the clusters fit at all (rf=0 means infeasible even for a single
// iteration).
//
// The paper picks this common value first — reusing contexts for RF
// iterations divides the number of context loads by RF — and only then
// spends leftover FB space on inter-cluster retention.
//
// Invariant: the result is always >= 1. Callers reach CommonRF only
// after feasibleRF has proven a single iteration fits (schedule() checks
// RF=1 before picking RF), so a cluster footprint larger than the FB set
// — which would make the raw division yield 0 — cannot mean "infeasible"
// here; it can only arise when retention pinning inflates a footprint
// past the set size, and then RF=1 is still the established floor.
// Returning 0 would silently make downstream consumers (blocks()
// defensively treats rf < 1 as 1) disagree about the block structure.
func CommonRF(fbSetBytes int, info *extract.Info, inPlace bool, retained []Retained) int {
	iters := info.P.App.Iterations
	rf := iters
	sc := getScratch(info.P.App.NumData())
	defer putScratch(sc)
	for _, ci := range info.Clusters {
		fp := clusterFootprintFast(info, ci.Cluster.Index, inPlace, retained, sc)
		if fp == 0 {
			continue
		}
		c := fbSetBytes / fp
		if c < rf {
			rf = c
		}
	}
	if rf > iters {
		rf = iters
	}
	if rf < 1 {
		rf = 1
	}
	return rf
}

// blocks splits the application's iterations into visits of rf iterations
// (the last block may be shorter) and returns the per-block iteration
// counts.
func blocks(iterations, rf int) []int {
	if rf < 1 {
		rf = 1
	}
	var out []int
	for done := 0; done < iterations; done += rf {
		n := rf
		if iterations-done < n {
			n = iterations - done
		}
		out = append(out, n)
	}
	return out
}
