package core

import (
	"context"
	"errors"
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/extract"
	"cds/internal/scherr"
)

// Basic is the reference scheduler of Maestre et al. (DATE'99): every
// cluster iteration loads all contexts and stores all results; data are
// handled per kernel, so a datum read by several kernels of the cluster is
// transferred once per reading kernel; nothing is reused across iterations
// or clusters, and no Frame Buffer space is reclaimed during cluster
// execution.
type Basic struct{}

// Name implements Scheduler.
func (Basic) Name() string { return "basic" }

// Schedule implements Scheduler.
func (b Basic) Schedule(pa arch.Params, part *app.Partition) (*Schedule, error) {
	return b.ScheduleCtx(context.Background(), pa, part)
}

// ScheduleCtx implements Scheduler.
func (Basic) ScheduleCtx(ctx context.Context, pa arch.Params, part *app.Partition) (*Schedule, error) {
	return schedule(ctx, "basic", pa, part, scheduleOpts{
		rfEnabled:      false,
		inPlaceRelease: false,
		retention:      false,
		perKernelLoads: true,
	})
}

// TimingEvaluator scores a candidate schedule, returning its estimated
// execution time in cycles. The schedulers that pick a reuse factor accept
// one so the choice can be checked against the machine's timing model
// (internal/sim, wired in by the top-level cds package — core itself
// cannot import the simulator) instead of assuming more context reuse is
// always at least as fast. See the RF guard note on DataScheduler.
type TimingEvaluator func(*Schedule) (int, error)

// DataScheduler is the ISSS'01 Data Scheduler: within-cluster space reuse
// (in-place replacement of dead data) and loop fission with the highest
// common context reuse factor RF, but no inter-cluster retention.
//
// The paper picks the highest RF the Frame Buffer permits, arguing more
// context reuse can only reduce DMA traffic. That is true of traffic but
// not of execution time: batching RF iterations into one visit also
// batches the final visit's stores into one burst that cannot overlap any
// computation, so a corner-case workload can run slower at a higher RF
// (found by differential fuzzing; see internal/workloads regression
// "regress/rf-tail-store"). When Eval is set, the scheduler therefore
// sweeps the feasible reuse factors, scores each candidate schedule with
// the timing model, and keeps the fastest — preferring the paper's higher
// RF on ties. A nil Eval keeps the paper's literal RF-max policy.
type DataScheduler struct {
	// Eval, when non-nil, guards the RF choice with a timing model.
	Eval TimingEvaluator
}

// Name implements Scheduler.
func (DataScheduler) Name() string { return "ds" }

// Schedule implements Scheduler.
func (d DataScheduler) Schedule(pa arch.Params, part *app.Partition) (*Schedule, error) {
	return d.ScheduleCtx(context.Background(), pa, part)
}

// ScheduleCtx implements Scheduler.
func (d DataScheduler) ScheduleCtx(ctx context.Context, pa arch.Params, part *app.Partition) (*Schedule, error) {
	return schedule(ctx, "ds", pa, part, scheduleOpts{
		rfEnabled:      true,
		inPlaceRelease: true,
		retention:      false,
		evaluate:       d.Eval,
	})
}

// RFPolicy selects how the Complete Data Scheduler picks the reuse factor.
type RFPolicy int

const (
	// RFMax is the paper's policy: take the highest common RF the FB
	// permits, then spend whatever space remains on retention.
	RFMax RFPolicy = iota
	// RFSweep jointly optimizes RF and retention: every feasible RF is
	// tried with its own retention selection and the variant with the
	// lowest estimated DMA time wins. Exists for the common-RF ablation;
	// the sweep can trade context reuse for more retention.
	RFSweep
)

func (p RFPolicy) String() string {
	if p == RFSweep {
		return "sweep"
	}
	return "max"
}

// CompleteDataScheduler is the paper's contribution: the Data Scheduler
// plus TF-ranked retention of inter-cluster shared data and results.
type CompleteDataScheduler struct {
	// Ranking overrides the retention candidate ordering; nil selects
	// the paper's TF ranking. See RankTF, RankBySize, RankFIFO.
	Ranking RankFunc
	// CrossSetReuse enables the paper's future-work extension: data and
	// results shared among clusters on DIFFERENT FB sets also become
	// retention candidates (the architecture is assumed to let the RC
	// array read both sets). Off by default, matching the paper.
	CrossSetReuse bool
	// RF selects the reuse-factor policy (the paper's RFMax by default).
	RF RFPolicy
	// Eval, when non-nil, guards the RF choice with a timing model —
	// see the note on DataScheduler. Ignored under RFSweep, which runs
	// its own joint RF/retention sweep.
	Eval TimingEvaluator
}

// Name implements Scheduler.
func (CompleteDataScheduler) Name() string { return "cds" }

// Schedule implements Scheduler.
func (c CompleteDataScheduler) Schedule(pa arch.Params, part *app.Partition) (*Schedule, error) {
	return c.ScheduleCtx(context.Background(), pa, part)
}

// ScheduleCtx implements Scheduler.
func (c CompleteDataScheduler) ScheduleCtx(ctx context.Context, pa arch.Params, part *app.Partition) (*Schedule, error) {
	ranking := c.Ranking
	if ranking == nil {
		ranking = RankTF
	}
	opts := scheduleOpts{
		rfEnabled:      true,
		inPlaceRelease: true,
		retention:      true,
		ranking:        ranking,
		crossSet:       c.CrossSetReuse,
	}
	if c.RF != RFSweep {
		opts.evaluate = c.Eval
		return schedule(ctx, "cds", pa, part, opts)
	}
	// Sweep: build one schedule per feasible RF and keep the one with
	// the lowest serialized DMA time (a lower bound on execution time
	// that orders schedules the same way when compute is fixed).
	base, err := schedule(ctx, "cds", pa, part, opts)
	if err != nil {
		return nil, err
	}
	// The candidates are independent, so build them across a bounded
	// worker pool; they share the base schedule's memoized analysis.
	// Results land in rf order, keeping the winner selection below
	// identical to the serial loop's. The pool inherits ctx: a canceled
	// sweep stops claiming RFs and reports scherr.ErrCanceled.
	cands := make([]*Schedule, base.RF-1)
	err = conc.ForEach(ctx, conc.DefaultLimit(), len(cands), func(i int) error {
		opts := opts
		opts.forcedRF = i + 1
		cand, err := schedule(ctx, "cds", pa, part, opts)
		if err != nil {
			// An RF the footprint model rejects is an expected sweep
			// outcome, recognized by TYPE via the taxonomy; anything
			// else (bad arch params, invalid partition, cancellation)
			// is a genuine failure that must surface instead of
			// silently falling back to the base schedule.
			if errors.Is(err, scherr.ErrInfeasible) {
				return nil
			}
			return fmt.Errorf("core: rf sweep at RF=%d: %w", i+1, err)
		}
		cands[i] = cand
		return nil
	})
	if err != nil {
		return nil, err
	}
	best, bestCost := base, dmaCost(base)
	for _, cand := range cands {
		if cand == nil {
			continue // infeasible RF, skipped above
		}
		if cost := dmaCost(cand); cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best, nil
}

// dmaCost estimates a schedule's DMA channel demand in cycles.
func dmaCost(s *Schedule) int {
	p := s.Arch
	cost := p.ContextCycles(s.TotalCtxWords())
	for _, v := range s.Visits {
		for _, m := range v.Loads {
			cost += p.DataCycles(m.Bytes)
		}
		for _, m := range v.Stores {
			cost += p.DataCycles(m.Bytes)
		}
	}
	return cost
}

type scheduleOpts struct {
	rfEnabled      bool
	inPlaceRelease bool
	retention      bool
	// perKernelLoads makes every kernel load its own copy of its
	// cluster-external inputs (the Basic Scheduler's behavior); the
	// data schedulers load each datum once per cluster visit.
	perKernelLoads bool
	// crossSet enables cross-FB-set retention (future-work extension).
	crossSet bool
	// forcedRF overrides the reuse factor when > 0 (RF sweep).
	forcedRF int
	ranking  RankFunc
	// evaluate, when non-nil, guards the RF choice with a timing model
	// (see DataScheduler.Eval).
	evaluate TimingEvaluator
}

// schedule is the shared pipeline: analyze, check feasibility, pick RF,
// pick retention, and emit the visit sequence with exact transfer volumes.
func schedule(ctx context.Context, name string, pa arch.Params, part *app.Partition, opts scheduleOpts) (*Schedule, error) {
	if err := scherr.FromContext(ctx); err != nil {
		return nil, fmt.Errorf("core: %s scheduler: %w", name, err)
	}
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	// The analysis depends only on (partition, cross-set flag), so all
	// three schedulers, every RF-sweep variant and every FB-sweep point
	// share one memoized Info; it is immutable from here on.
	info := extract.AnalyzeCached(part, extract.Opts{CrossSetReuse: opts.crossSet})

	// Feasibility at RF=1 with no retention is the baseline requirement.
	if ok, ierr := feasibleRF(pa.FBSetBytes, info, 1, opts.inPlaceRelease, nil); !ok {
		ierr.Scheduler = name
		return nil, ierr
	}

	rf := 1
	if opts.rfEnabled {
		rf = CommonRF(pa.FBSetBytes, info, opts.inPlaceRelease, nil)
	}
	if opts.forcedRF > 0 {
		if opts.forcedRF > rf {
			return nil, fmt.Errorf("core: forced RF %d exceeds the feasible maximum %d", opts.forcedRF, rf)
		}
		rf = opts.forcedRF
	}

	build := func(rf int) (*Schedule, error) {
		var retained []Retained
		if opts.retention {
			retained = selectRetention(pa.FBSetBytes, info, rf, opts.ranking)
		}
		s := &Schedule{
			Scheduler:      name,
			Arch:           pa,
			P:              part,
			Info:           info,
			RF:             rf,
			Retained:       retained,
			InPlaceRelease: opts.inPlaceRelease,
		}
		if err := buildVisits(s, pa, info, rf, retained, opts.perKernelLoads); err != nil {
			return nil, fmt.Errorf("core: %s scheduler: %w", name, err)
		}
		return s, nil
	}
	s, err := build(rf)
	if err != nil {
		return nil, err
	}
	if opts.evaluate == nil || opts.forcedRF > 0 || rf <= 1 {
		return s, nil
	}
	// RF guard: more context reuse always cuts DMA traffic, but a higher
	// RF also batches the last visit's stores into one burst the RC array
	// can never overlap, so RF-max can lose wall-clock time in corner
	// cases. Score every feasible RF (retention re-selected per RF) with
	// the timing model and keep the fastest, walking downward from the
	// paper's choice so ties keep the higher RF.
	best, err := opts.evaluate(s)
	if err != nil {
		return nil, fmt.Errorf("core: %s scheduler: rf guard: %w", name, err)
	}
	for r := rf - 1; r >= 1; r-- {
		if ok, _ := feasibleRF(pa.FBSetBytes, info, r, opts.inPlaceRelease, nil); !ok {
			continue // footprint holes are possible below the common RF
		}
		cand, err := build(r)
		if err != nil {
			return nil, err
		}
		t, err := opts.evaluate(cand)
		if err != nil {
			return nil, fmt.Errorf("core: %s scheduler: rf guard: %w", name, err)
		}
		if t < best {
			s, best = cand, t
		}
	}
	return s, nil
}

// retKey scopes a retained object to its FB set: the same datum can be
// independently shared (and retained) on both sets.
type retKey struct {
	name string
	set  int
}

// retainedLookups precomputes, per retained object, who loads it and
// whether its store is skipped. All effects are scoped to the object's FB
// set: consumers on the other set keep their loads and force stores.
type retainedLookups struct {
	// loaderCluster maps a retained object to the single cluster that
	// still loads it (first consumer of retained data; -1 for retained
	// results, which are never loaded on their set).
	loaderCluster map[retKey]int
	// skipStore marks retained results whose external store is avoided.
	skipStore map[retKey]bool
}

func buildRetainedLookups(retained []Retained, info *extract.Info) retainedLookups {
	rl := retainedLookups{
		loaderCluster: map[retKey]int{},
		skipStore:     map[retKey]bool{},
	}
	shared := map[retKey]extract.SharedResult{}
	for _, sr := range info.SharedResults {
		shared[retKey{sr.Name, sr.Set}] = sr
	}
	// Collect the FB sets in use so cross-set retention can register
	// its effect for consumers on every set.
	setsInUse := map[int]bool{}
	for _, c := range info.P.Clusters {
		setsInUse[c.Set] = true
	}
	for _, r := range retained {
		key := retKey{r.Name, r.Set}
		keys := []retKey{key}
		if r.CrossSet {
			keys = keys[:0]
			for set := range setsInUse {
				keys = append(keys, retKey{r.Name, set})
			}
		}
		switch r.Kind {
		case RetainedData:
			for _, k := range keys {
				rl.loaderCluster[k] = r.From
			}
		case RetainedResult:
			for _, k := range keys {
				rl.loaderCluster[k] = -1
			}
			if sr, ok := shared[key]; ok && sr.StoreAvoidable() {
				rl.skipStore[key] = true
			}
		}
	}
	return rl
}

// buildVisits fills s.Visits: one visit per (block, cluster), in execution
// order, with context traffic counted by replaying the Context Memory.
// The replay can only fail on a broken Context Memory invariant
// (scherr.ErrInternal); the expected arch.ErrDoesNotFit outcome for a
// kernel bigger than the whole CM is absorbed as a full reload per visit.
func buildVisits(s *Schedule, pa arch.Params, info *extract.Info, rf int, retained []Retained, perKernelLoads bool) error {
	a := info.P.App
	rl := buildRetainedLookups(retained, info)
	cm := arch.NewContextMemory(pa.CMWords)

	for b, iters := range blocks(a.Iterations, rf) {
		for _, ci := range info.Clusters {
			c := ci.Cluster
			v := Visit{
				Cluster: c.Index,
				Set:     c.Set,
				Block:   b,
				Iters:   iters,
			}
			// Data loads.
			if perKernelLoads {
				// Basic Scheduler: each kernel transfers its own
				// copy of its cluster-external inputs. Streamed
				// inputs are the exception even here: a streamed
				// datum arrives just in time for its first consumer
				// and stays placed for the rest of the visit, so a
				// second consumer reads the resident copy rather
				// than transferring its own.
				streamedCharged := map[string]bool{}
				for _, ki := range c.Kernels {
					for _, name := range a.Kernels[ki].Inputs {
						if p, produced := a.Producer(name); produced && c.Contains(p) {
							continue // intra-cluster intermediate
						}
						if a.IsStreamed(name) {
							if streamedCharged[name] {
								continue
							}
							streamedCharged[name] = true
						}
						v.Loads = append(v.Loads, Movement{Datum: name, Bytes: iters * a.SizeOf(name)})
					}
				}
			} else {
				for _, name := range ci.ExternalIn {
					if loader, ok := rl.loaderCluster[retKey{name, c.Set}]; ok && loader != c.Index {
						continue // resident: retained by an earlier cluster or kept since production
					}
					v.Loads = append(v.Loads, Movement{Datum: name, Bytes: iters * a.SizeOf(name)})
				}
			}
			// Result stores.
			for _, name := range ci.PersistentOut {
				if rl.skipStore[retKey{name, c.Set}] {
					continue
				}
				v.Stores = append(v.Stores, Movement{Datum: name, Bytes: iters * a.SizeOf(name)})
			}
			// Context loads: once per visit per context group at
			// most, fewer if the group survived in the CM. The Basic
			// Scheduler (perKernelLoads) is the DATE'99 baseline with
			// NO context reuse across cluster iterations: the CM is
			// reset at every visit boundary so each visit recharges
			// its full context volume even when the groups would
			// still be resident — pinning its traffic to
			// iterations x sum(ContextWords) (per-visit group sharing
			// from intra-kernel tiling still deduplicates).
			if perKernelLoads {
				cm.Reset()
			}
			for _, ki := range c.Kernels {
				k := a.Kernels[ki]
				moved, err := cm.Load(k.CtxGroup(), k.ContextWords)
				if err != nil {
					if !errors.Is(err, arch.ErrDoesNotFit) {
						// Anything but the expected
						// too-big-for-the-CM outcome means the
						// replay state itself broke; surface it
						// instead of mis-charging traffic.
						return fmt.Errorf("core: context memory replay (cluster %d block %d): %w",
							c.Index, b, err)
					}
					// A kernel whose contexts exceed the whole
					// CM reloads in pieces every visit; charge
					// the full volume.
					moved = k.ContextWords
				}
				if moved > 0 {
					v.CtxLoads = append(v.CtxLoads, Movement{Datum: k.CtxGroup(), Bytes: moved})
				}
				v.CtxWords += moved
				v.ComputeCycles += iters * k.ComputeCycles
			}
			s.Visits = append(s.Visits, v)
		}
	}
	return nil
}
