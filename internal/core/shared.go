package core

import (
	"sort"

	"cds/internal/extract"
)

// Candidate is one inter-cluster reuse opportunity under consideration by
// the Complete Data Scheduler's retention pass.
type Candidate struct {
	Retained
	// StoreAvoidable is carried from the extractor for results.
	StoreAvoidable bool
}

// RankFunc orders retention candidates; the scheduler tries to keep them
// in the returned order, best first. The paper uses RankTF.
type RankFunc func(cands []Candidate)

// TFData returns the paper's time factor for a shared datum used by n
// clusters: TF(D) = D*(N-1)/TDS. Keeping the datum avoids n-1 of its n
// loads.
func TFData(size, n, tds int) float64 {
	return float64(size) * float64(n-1) / float64(tds)
}

// TFResult returns the paper's time factor for a shared result consumed
// by n later clusters: TF(R) = R*(N+1)/TDS. Keeping the result avoids its
// store and all n reloads.
func TFResult(size, n, tds int) float64 {
	return float64(size) * float64(n+1) / float64(tds)
}

// RankTF sorts candidates by decreasing time factor (the paper's policy),
// breaking ties deterministically by kind then name.
func RankTF(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].TF != cands[j].TF {
			return cands[i].TF > cands[j].TF
		}
		if cands[i].Kind != cands[j].Kind {
			return cands[i].Kind > cands[j].Kind // results before data on ties
		}
		return cands[i].Name < cands[j].Name
	})
}

// RankBySize sorts candidates by decreasing raw size, ignoring how many
// transfers retention saves. Used by the ranking ablation.
func RankBySize(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Size != cands[j].Size {
			return cands[i].Size > cands[j].Size
		}
		return cands[i].Name < cands[j].Name
	})
}

// RankFIFO keeps the extractor's discovery order (data first, then
// results, each in application declaration order). Used by the ranking
// ablation as the "no ranking" baseline.
func RankFIFO(cands []Candidate) {}

// collectCandidates turns the extractor's sharing structures into ranked
// retention candidates.
func collectCandidates(info *extract.Info) []Candidate {
	var cands []Candidate
	for _, sd := range info.SharedData {
		from, to := sd.Span()
		cross := false
		for _, c := range sd.Clusters {
			if info.P.Clusters[c].Set != sd.Set {
				cross = true
			}
		}
		cands = append(cands, Candidate{
			Retained: Retained{
				Kind:     RetainedData,
				Name:     sd.Name,
				Size:     sd.Size,
				Set:      sd.Set,
				From:     from,
				To:       to,
				CrossSet: cross,
				TF:       TFData(sd.Size, sd.N(), info.TDS),
				// n consumers -> n-1 loads avoided per iteration.
				AvoidedBytesPerIter: (sd.N() - 1) * sd.Size,
			},
			StoreAvoidable: false,
		})
	}
	for _, sr := range info.SharedResults {
		from, to := sr.Span()
		cross := false
		for _, c := range sr.Consumers {
			if info.P.Clusters[c].Set != sr.Set {
				cross = true
			}
		}
		avoided := sr.N() * sr.Size // reloads avoided
		if sr.StoreAvoidable() {
			avoided += sr.Size // the store too
		}
		cands = append(cands, Candidate{
			Retained: Retained{
				Kind:                RetainedResult,
				Name:                sr.Name,
				Size:                sr.Size,
				Set:                 sr.Set,
				From:                from,
				To:                  to,
				CrossSet:            cross,
				TF:                  TFResult(sr.Size, sr.N(), info.TDS),
				AvoidedBytesPerIter: avoided,
			},
			StoreAvoidable: sr.StoreAvoidable(),
		})
	}
	return cands
}

// selectRetention greedily keeps the highest-ranked candidates for which
// every cluster still fits its FB set at the chosen RF (the paper's
// "scheduling continues with shared data or results with less TF; if
// DS(Cc) > FBS for some shared data or results, these are not kept").
func selectRetention(fbSetBytes int, info *extract.Info, rf int, rank RankFunc) []Retained {
	cands := collectCandidates(info)
	if len(cands) == 0 {
		return nil
	}
	rank(cands)
	// Grow the kept set in place: append the candidate, test, and pop it
	// again on failure. One backing array serves every trial.
	sc := getScratch(info.P.App.NumData())
	defer putScratch(sc)
	kept := make([]Retained, 0, len(cands))
	for _, cand := range cands {
		kept = append(kept, cand.Retained)
		if ok, _ := feasibleRFScratch(fbSetBytes, info, rf, true, kept, sc); !ok {
			kept = kept[:len(kept)-1]
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}
