package core

import (
	"testing"

	"cds/internal/app"
)

// tiledWorkload: one cluster dominated by a big private input, one small
// downstream cluster. Tiling the big kernel's input shrinks the dominant
// footprint and unlocks a higher RF.
func tiledWorkload(t *testing.T) *app.Partition {
	t.Helper()
	b := app.NewBuilder("tilebench", 12).
		Datum("bigIn", 600).
		Datum("tbl", 64).
		Datum("feat", 64).
		Datum("out", 64)
	b.Kernel("extract", 128, 240).In("bigIn", "tbl").Out("feat")
	b.Kernel("classify", 96, 120).In("feat", "tbl").Out("out")
	return app.MustPartition(b.MustBuild(), 2, 1, 1)
}

func TestTilingRaisesRF(t *testing.T) {
	part := tiledWorkload(t)
	pa := testArch(1024)

	before, err := (DataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	// Footprint before: bigIn+tbl+feat = 728 -> RF 1.
	if before.RF != 1 {
		t.Fatalf("untiled RF = %d, want 1 (test needs a tight FB)", before.RF)
	}

	tp, err := app.TilePartition(part, "extract", 4)
	if err != nil {
		t.Fatal(err)
	}
	after, err := (DataScheduler{}).Schedule(pa, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Footprint after: one 150-byte slice at a time + tbl + feat = 278
	// -> RF should at least double.
	if after.RF < 2*before.RF {
		t.Errorf("tiled RF = %d, want at least %d", after.RF, 2*before.RF)
	}
	// Context traffic must not explode: sub-kernels share one group, so
	// the per-visit context volume is unchanged while visits shrink in
	// number — total context words must strictly drop.
	if after.TotalCtxWords() >= before.TotalCtxWords() {
		t.Errorf("ctx words: tiled %d, untiled %d — tiling should cut context reloads",
			after.TotalCtxWords(), before.TotalCtxWords())
	}
	// Data volume stays (within slice rounding).
	if diff := after.TotalLoadBytes() - before.TotalLoadBytes(); diff < 0 || diff > 12*16 {
		t.Errorf("load bytes drifted by %d", diff)
	}
}

func TestTilingFootprint(t *testing.T) {
	part := tiledWorkload(t)
	tp, err := app.TilePartition(part, "extract", 4)
	if err != nil {
		t.Fatal(err)
	}
	sBefore, err := (DataScheduler{}).Schedule(testArch(1024), part)
	if err != nil {
		t.Fatal(err)
	}
	sAfter, err := (DataScheduler{}).Schedule(testArch(1024), tp)
	if err != nil {
		t.Fatal(err)
	}
	fpBefore := ClusterFootprint(sBefore.Info, 0, FootprintOpts{InPlaceRelease: true})
	fpAfter := ClusterFootprint(sAfter.Info, 0, FootprintOpts{InPlaceRelease: true})
	if fpAfter >= fpBefore {
		t.Errorf("tiled footprint %d, untiled %d: streaming gave nothing", fpAfter, fpBefore)
	}
	if fpAfter > 300 {
		t.Errorf("tiled footprint %d, want ~278 (slice+tbl+feat)", fpAfter)
	}
}

func TestTilingAllocatesAndGeneratesCleanly(t *testing.T) {
	part := tiledWorkload(t)
	tp, err := app.TilePartition(part, "extract", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{Basic{}, DataScheduler{}, CompleteDataScheduler{}} {
		s, err := sched.Schedule(testArch(1024), tp)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		rep, err := Allocate(s, false)
		if err != nil {
			t.Fatalf("%s: allocation of tiled app: %v", sched.Name(), err)
		}
		if rep.Splits != 0 || !rep.Regular {
			t.Errorf("%s: tiled allocation degraded: %+v", sched.Name(), rep)
		}
	}
}
