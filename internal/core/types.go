// Package core implements the scheduling stack the paper compares:
//
//   - Basic Scheduler (Maestre et al., DATE'99): no data reuse — every
//     cluster iteration reloads its contexts and inputs and stores all its
//     results.
//   - Data Scheduler (Sanchez-Elez et al., ISSS'01): within-cluster reuse —
//     dead data are replaced in place, minimizing the per-iteration Frame
//     Buffer footprint DS(C); the freed space holds data for RF consecutive
//     iterations so contexts are reloaded only once per RF iterations.
//   - Complete Data Scheduler (this paper, DATE'02): additionally retains
//     data and results shared among clusters of the same FB set, chosen by
//     the time factor TF, to avoid external-memory transfers altogether.
//
// All three produce a Schedule: the per-visit transfer and compute volumes
// that the timing simulator (internal/sim), the allocator replay
// (Allocate) and the code generator (internal/codegen) consume.
package core

import (
	"context"
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/extract"
	"cds/internal/scherr"
)

// Movement is one datum's traffic within a visit, already multiplied by
// the visit's iteration count.
type Movement struct {
	Datum string
	Bytes int
}

// Visit is one execution of one cluster for a block of consecutive
// iterations (RF of them, fewer on the last block). Visits are listed in
// execution order; the simulator overlaps visit v+1's transfers with visit
// v's computation.
type Visit struct {
	// Cluster and Set identify the cluster and its FB set.
	Cluster, Set int
	// Block is the RF-block index; Iters is how many application
	// iterations this visit executes (RF, or the remainder on the last
	// block).
	Block, Iters int

	// Loads and Stores detail the external-memory data traffic of the
	// visit.
	Loads  []Movement
	Stores []Movement
	// CtxLoads details the context traffic per kernel (Datum holds the
	// kernel name, Bytes the context words actually transferred; 0-word
	// hits are omitted).
	CtxLoads []Movement
	// CtxWords counts context words loaded before the visit computes.
	CtxWords int
	// ComputeCycles is the RC-array busy time of the visit.
	ComputeCycles int
}

// LoadBytes returns the total data bytes loaded for the visit.
func (v Visit) LoadBytes() int { return sumMovements(v.Loads) }

// StoreBytes returns the total data bytes stored after the visit.
func (v Visit) StoreBytes() int { return sumMovements(v.Stores) }

func sumMovements(ms []Movement) int {
	n := 0
	for _, m := range ms {
		n += m.Bytes
	}
	return n
}

// RetainedKind distinguishes the two kinds of inter-cluster reuse the
// Complete Data Scheduler can exploit.
type RetainedKind int

const (
	// RetainedData is the paper's D_i..j: external data kept in the FB
	// across the clusters that read it (avoids N-1 loads).
	RetainedData RetainedKind = iota
	// RetainedResult is the paper's R_i,j..k: a result kept in the FB
	// from its producing cluster to its last consuming cluster (avoids
	// one store and N loads when not final).
	RetainedResult
)

func (k RetainedKind) String() string {
	if k == RetainedData {
		return "data"
	}
	return "result"
}

// Retained is one shared object the Complete Data Scheduler decided to
// keep in the Frame Buffer.
type Retained struct {
	Kind RetainedKind
	Name string
	Size int
	Set  int
	// From and To give the cluster-index span the object stays resident
	// for (producer/first consumer through last consumer).
	From, To int
	// CrossSet marks objects whose consumers sit on other FB sets than
	// the home set (only possible with the CrossSetReuse extension).
	CrossSet bool
	// TF is the paper's time factor used to rank the candidate.
	TF float64
	// AvoidedBytesPerIter is the external traffic saved per application
	// iteration by retaining the object.
	AvoidedBytesPerIter int
}

// Schedule is the complete output of one scheduler run on one partitioned
// application: enough to simulate timing, replay allocation and generate
// code.
type Schedule struct {
	// Scheduler names the policy that produced the schedule ("basic",
	// "ds", "cds").
	Scheduler string
	Arch      arch.Params
	P         *app.Partition
	Info      *extract.Info

	// RF is the context reuse factor: consecutive iterations executed
	// per cluster visit.
	RF int
	// Retained lists the inter-cluster objects kept in the FB (empty
	// for basic and ds).
	Retained []Retained
	// Visits is the execution order.
	Visits []Visit

	// InPlaceRelease records whether the footprint model releases dead
	// data during cluster execution (false only for the basic
	// scheduler); the allocator replay needs it.
	InPlaceRelease bool
}

// TotalLoadBytes returns the external-memory data bytes loaded across the
// whole schedule.
func (s *Schedule) TotalLoadBytes() int {
	n := 0
	for _, v := range s.Visits {
		n += v.LoadBytes()
	}
	return n
}

// TotalStoreBytes returns the external-memory data bytes stored across
// the whole schedule.
func (s *Schedule) TotalStoreBytes() int {
	n := 0
	for _, v := range s.Visits {
		n += v.StoreBytes()
	}
	return n
}

// TotalCtxWords returns the context words loaded across the whole
// schedule.
func (s *Schedule) TotalCtxWords() int {
	n := 0
	for _, v := range s.Visits {
		n += v.CtxWords
	}
	return n
}

// TotalComputeCycles returns the RC-array busy cycles across the whole
// schedule.
func (s *Schedule) TotalComputeCycles() int {
	n := 0
	for _, v := range s.Visits {
		n += v.ComputeCycles
	}
	return n
}

// AvoidedBytesPerIter sums the per-iteration external traffic saved by
// retention (the paper's DT column).
func (s *Schedule) AvoidedBytesPerIter() int {
	n := 0
	for _, r := range s.Retained {
		n += r.AvoidedBytesPerIter
	}
	return n
}

// InfeasibleError reports that a scheduler cannot fit a cluster into the
// Frame Buffer set (e.g. the Basic Scheduler on MPEG with a 1K FB).
type InfeasibleError struct {
	Scheduler string
	Cluster   int
	Need      int
	Have      int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("%s: cluster %d needs %d bytes of frame buffer, set holds %d",
		e.Scheduler, e.Cluster, e.Need, e.Have)
}

// Is makes every InfeasibleError match the taxonomy class
// scherr.ErrInfeasible under errors.Is, so callers can branch on the
// kind of failure without naming this concrete type.
func (e *InfeasibleError) Is(target error) bool { return target == scherr.ErrInfeasible }

// Scheduler is the common interface of the three policies.
type Scheduler interface {
	// Name returns the policy's short name.
	Name() string
	// Schedule builds the transfer/compute schedule for the partition
	// on the given architecture. It is ScheduleCtx with a background
	// context.
	Schedule(p arch.Params, part *app.Partition) (*Schedule, error)
	// ScheduleCtx is Schedule with cooperative cancellation: once ctx
	// is done the scheduler returns an error matching
	// scherr.ErrCanceled instead of finishing its work.
	ScheduleCtx(ctx context.Context, p arch.Params, part *app.Partition) (*Schedule, error)
}
