package core

import (
	"fmt"
)

// ValidateSchedule checks the internal consistency of a schedule against
// its application and architecture. The schedulers always produce valid
// schedules; this guards hand-modified ones and serves as the fuzzing
// oracle.
//
// Checked invariants:
//
//  1. visits cover every (block, cluster) pair exactly once, in block-major
//     cluster order, and their iteration counts sum to App.Iterations per
//     cluster;
//  2. every load names a datum the cluster actually consumes from outside
//     itself, with volume = iters * size;
//  3. every store names a persistent output of the cluster, with volume =
//     iters * size;
//  4. context loads never exceed the kernel's context volume and name
//     kernels (context groups) of the cluster;
//  5. compute equals iters * the cluster's kernel cycles;
//  6. retained objects have sane spans and live on a set that exists.
func ValidateSchedule(s *Schedule) error {
	if s == nil {
		return fmt.Errorf("core: nil schedule")
	}
	if err := s.Arch.Validate(); err != nil {
		return err
	}
	if err := s.P.Validate(); err != nil {
		return err
	}
	a := s.P.App
	numClusters := len(s.P.Clusters)
	if s.RF < 1 {
		return fmt.Errorf("core: RF = %d", s.RF)
	}

	blockSizes := blocks(a.Iterations, s.RF)
	wantVisits := len(blockSizes) * numClusters
	if len(s.Visits) != wantVisits {
		return fmt.Errorf("core: %d visits, want %d (%d blocks x %d clusters)",
			len(s.Visits), wantVisits, len(blockSizes), numClusters)
	}

	iterPerCluster := make([]int, numClusters)
	for vi, v := range s.Visits {
		wantBlock := vi / numClusters
		wantCluster := vi % numClusters
		if v.Block != wantBlock || v.Cluster != wantCluster {
			return fmt.Errorf("core: visit %d is (block %d, cluster %d), want (%d, %d)",
				vi, v.Block, v.Cluster, wantBlock, wantCluster)
		}
		c := s.P.Clusters[v.Cluster]
		if v.Set != c.Set {
			return fmt.Errorf("core: visit %d set %d, cluster says %d", vi, v.Set, c.Set)
		}
		if v.Iters != blockSizes[v.Block] {
			return fmt.Errorf("core: visit %d iters %d, block size %d", vi, v.Iters, blockSizes[v.Block])
		}
		iterPerCluster[v.Cluster] += v.Iters

		ci := s.Info.Clusters[v.Cluster]
		externalIn := map[string]bool{}
		for _, name := range ci.ExternalIn {
			externalIn[name] = true
		}
		for _, m := range v.Loads {
			if !externalIn[m.Datum] {
				return fmt.Errorf("core: visit %d loads %q which cluster %d does not consume externally",
					vi, m.Datum, v.Cluster)
			}
			if m.Bytes != v.Iters*a.SizeOf(m.Datum) {
				return fmt.Errorf("core: visit %d load of %q is %d bytes, want %d",
					vi, m.Datum, m.Bytes, v.Iters*a.SizeOf(m.Datum))
			}
		}
		persistent := map[string]bool{}
		for _, name := range ci.PersistentOut {
			persistent[name] = true
		}
		for _, m := range v.Stores {
			if !persistent[m.Datum] {
				return fmt.Errorf("core: visit %d stores %q which is not a persistent output of cluster %d",
					vi, m.Datum, v.Cluster)
			}
			if m.Bytes != v.Iters*a.SizeOf(m.Datum) {
				return fmt.Errorf("core: visit %d store of %q is %d bytes, want %d",
					vi, m.Datum, m.Bytes, v.Iters*a.SizeOf(m.Datum))
			}
		}

		groups := map[string]int{}
		compute := 0
		for _, ki := range c.Kernels {
			k := a.Kernels[ki]
			if w, seen := groups[k.CtxGroup()]; !seen || k.ContextWords > w {
				groups[k.CtxGroup()] = k.ContextWords
			}
			compute += v.Iters * k.ComputeCycles
		}
		ctxSum := 0
		for _, m := range v.CtxLoads {
			max, ok := groups[m.Datum]
			if !ok {
				return fmt.Errorf("core: visit %d loads contexts for %q, not a group of cluster %d",
					vi, m.Datum, v.Cluster)
			}
			if m.Bytes <= 0 || m.Bytes > max {
				return fmt.Errorf("core: visit %d context load %q of %d words (group holds %d)",
					vi, m.Datum, m.Bytes, max)
			}
			ctxSum += m.Bytes
		}
		if ctxSum != v.CtxWords {
			return fmt.Errorf("core: visit %d CtxWords %d != sum of loads %d", vi, v.CtxWords, ctxSum)
		}
		if v.ComputeCycles != compute {
			return fmt.Errorf("core: visit %d compute %d, want %d", vi, v.ComputeCycles, compute)
		}
	}
	for c, n := range iterPerCluster {
		if n != a.Iterations {
			return fmt.Errorf("core: cluster %d executes %d iterations, want %d", c, n, a.Iterations)
		}
	}

	setsInUse := map[int]bool{}
	for _, c := range s.P.Clusters {
		setsInUse[c.Set] = true
	}
	for _, r := range s.Retained {
		if !setsInUse[r.Set] {
			return fmt.Errorf("core: retained %q homed on unused set %d", r.Name, r.Set)
		}
		if r.From < 0 || r.To >= numClusters || r.From > r.To {
			return fmt.Errorf("core: retained %q has span %d..%d", r.Name, r.From, r.To)
		}
		if a.SizeOf(r.Name) != r.Size {
			return fmt.Errorf("core: retained %q size %d, app says %d", r.Name, r.Size, a.SizeOf(r.Name))
		}
	}
	return nil
}
