package core

import (
	"strings"
	"testing"
)

func TestValidateScheduleAcceptsAllSchedulers(t *testing.T) {
	part := pipeApp(t, 5)
	for _, sched := range []Scheduler{Basic{}, DataScheduler{}, CompleteDataScheduler{}, CompleteDataScheduler{CrossSetReuse: true}} {
		s, err := sched.Schedule(testArch(400), part)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if err := ValidateSchedule(s); err != nil {
			t.Errorf("%s: %v", sched.Name(), err)
		}
	}
}

func TestValidateScheduleRejectsCorruption(t *testing.T) {
	part := pipeApp(t, 4)
	fresh := func() *Schedule {
		s, err := (CompleteDataScheduler{}).Schedule(testArch(400), part)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	tests := []struct {
		name    string
		mutate  func(*Schedule)
		wantSub string
	}{
		{"nil", nil, "nil"},
		{"zero RF", func(s *Schedule) { s.RF = 0 }, "RF"},
		{"dropped visit", func(s *Schedule) { s.Visits = s.Visits[1:] }, "visits"},
		{"swapped visits", func(s *Schedule) {
			s.Visits[0], s.Visits[1] = s.Visits[1], s.Visits[0]
		}, "visit"},
		{"phantom load", func(s *Schedule) {
			s.Visits[0].Loads = append(s.Visits[0].Loads, Movement{Datum: "out1", Bytes: 40})
		}, "loads"},
		{"wrong load volume", func(s *Schedule) {
			s.Visits[0].Loads[0].Bytes++
		}, "bytes"},
		{"phantom store", func(s *Schedule) {
			s.Visits[0].Stores = append(s.Visits[0].Stores, Movement{Datum: "inA", Bytes: 200})
		}, "stores"},
		{"oversized ctx load", func(s *Schedule) {
			for vi := range s.Visits {
				if len(s.Visits[vi].CtxLoads) > 0 {
					s.Visits[vi].CtxLoads[0].Bytes += 1000
					s.Visits[vi].CtxWords += 1000
					return
				}
			}
		}, "context load"},
		{"ctx sum mismatch", func(s *Schedule) {
			s.Visits[0].CtxWords++
		}, "CtxWords"},
		{"wrong compute", func(s *Schedule) {
			s.Visits[0].ComputeCycles++
		}, "compute"},
		{"bad retained span", func(s *Schedule) {
			if len(s.Retained) == 0 {
				t.Skip("no retention on this config")
			}
			s.Retained[0].To = 99
		}, "span"},
		{"bad retained size", func(s *Schedule) {
			if len(s.Retained) == 0 {
				t.Skip("no retention on this config")
			}
			s.Retained[0].Size++
		}, "size"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var s *Schedule
			if tt.mutate != nil {
				s = fresh()
				tt.mutate(s)
			}
			err := ValidateSchedule(s)
			if err == nil {
				t.Fatal("corrupted schedule accepted")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}
