// Package csched is the context scheduler of the MorphoSys compilation
// framework (Maestre et al., ISSS'99): given a data schedule, it decides
// when each kernel's context words are transferred so that as few context
// loads as possible are exposed (i.e. fail to overlap with computation).
//
// The mechanism on M1: while one cluster computes, the DMA may fill the
// Context Memory for the next cluster, provided the CM has room for both
// clusters' contexts at once. The context scheduler verifies that
// double-buffering condition and classifies each visit's context traffic
// as overlapped or exposed, using the same timing model as internal/sim.
package csched

import (
	"fmt"

	"cds/internal/core"
)

// VisitPlan describes the placement of one visit's context loads.
type VisitPlan struct {
	// Visit indexes into Schedule.Visits.
	Visit int
	// Words is the context volume the visit loads.
	Words int
	// Cycles is its DMA cost.
	Cycles int
	// OverlappedCycles is the part hidden under the previous visit's
	// computation; ExposedCycles the part the RC array waits for.
	OverlappedCycles, ExposedCycles int
}

// Plan is the context schedule for a whole data schedule.
type Plan struct {
	Visits []VisitPlan
	// TotalWords, TotalCycles summarize the context traffic.
	TotalWords, TotalCycles int
	// ExposedCycles is the context time on the application's critical
	// path; the context scheduler's objective is to minimize it.
	ExposedCycles int
	// DoubleBuffered reports whether every adjacent pair of clusters
	// fits the CM together, enabling full prefetch.
	DoubleBuffered bool
}

// Build computes the context-load placement for a schedule.
//
// Placement rule: a visit's context words are prefetched during the
// previous visit's compute window. The overlap achieved is bounded by that
// window's length minus the data traffic already claiming the DMA (data
// loads for the same visit share the channel; the simulator gives data
// priority ordering ctx-then-data, so exposure is computed conservatively
// from the window remaining after earlier DMA work).
func Build(s *core.Schedule) (*Plan, error) {
	if s == nil {
		return nil, fmt.Errorf("csched: nil schedule")
	}
	p := s.Arch
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{DoubleBuffered: true}

	// CM double-buffering check: each adjacent pair of clusters in visit
	// order must fit the CM together for full prefetch.
	a := s.P.App
	clusterWords := make([]int, len(s.P.Clusters))
	for i, c := range s.P.Clusters {
		seen := map[string]bool{}
		for _, ki := range c.Kernels {
			k := a.Kernels[ki]
			if seen[k.CtxGroup()] {
				continue // tiled sub-kernels share one configuration
			}
			seen[k.CtxGroup()] = true
			clusterWords[i] += k.ContextWords
		}
	}
	for vi := 1; vi < len(s.Visits); vi++ {
		prev, cur := s.Visits[vi-1].Cluster, s.Visits[vi].Cluster
		if clusterWords[prev]+clusterWords[cur] > p.CMWords {
			plan.DoubleBuffered = false
			break
		}
	}

	// Walk the visits with the sim's two-timeline model, attributing to
	// each visit's context load the share that fits before the previous
	// visit's compute ends.
	dmaFree, rcFree := 0, 0
	prevComputeEnd := 0
	for vi := range s.Visits {
		v := &s.Visits[vi]
		ctxCycles := p.ContextCycles(v.CtxWords)
		vp := VisitPlan{Visit: vi, Words: v.CtxWords, Cycles: ctxCycles}

		start := dmaFree
		end := start + ctxCycles
		// The portion of [start, end) lying before prevComputeEnd is
		// hidden; the rest delays the RC array (if the RC would
		// otherwise be ready).
		hiddenUntil := prevComputeEnd
		if hiddenUntil > end {
			hiddenUntil = end
		}
		if hiddenUntil > start {
			vp.OverlappedCycles = hiddenUntil - start
		}
		vp.ExposedCycles = ctxCycles - vp.OverlappedCycles
		dmaFree = end

		// Account the data loads too so later visits see a realistic
		// DMA horizon.
		for _, m := range v.Loads {
			dmaFree += p.DataCycles(m.Bytes)
		}
		computeStart := dmaFree
		if rcFree > computeStart {
			computeStart = rcFree
		}
		rcFree = computeStart + v.ComputeCycles
		prevComputeEnd = rcFree

		plan.Visits = append(plan.Visits, vp)
		plan.TotalWords += vp.Words
		plan.TotalCycles += vp.Cycles
		plan.ExposedCycles += vp.ExposedCycles
	}
	return plan, nil
}

// OverlapRatio returns the fraction of context cycles hidden under
// computation (1.0 when every context load is free).
func (p *Plan) OverlapRatio() float64 {
	if p.TotalCycles == 0 {
		return 1
	}
	return float64(p.TotalCycles-p.ExposedCycles) / float64(p.TotalCycles)
}
