package csched

import (
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
)

func testSchedule(t *testing.T, fb, cm, computeCycles int) *core.Schedule {
	t.Helper()
	b := app.NewBuilder("cs", 16).
		Datum("in", 200).
		Datum("mid", 100).
		Datum("out", 50)
	b.Kernel("k1", 64, computeCycles).In("in").Out("mid")
	b.Kernel("k2", 64, computeCycles).In("mid").Out("out")
	part := app.MustPartition(b.MustBuild(), 2, 1, 1)
	pa := arch.M1()
	pa.FBSetBytes = fb
	pa.CMWords = cm
	s, err := (core.DataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildOverlapsWithLongCompute(t *testing.T) {
	// Long compute windows hide every context load except the first.
	s := testSchedule(t, 2048, 96, 100000)
	plan, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Visits) != len(s.Visits) {
		t.Fatalf("plan has %d visits, want %d", len(plan.Visits), len(s.Visits))
	}
	if plan.Visits[0].OverlappedCycles != 0 {
		t.Error("first visit has nothing to overlap with")
	}
	for i := 1; i < len(plan.Visits); i++ {
		vp := plan.Visits[i]
		if vp.Words > 0 && vp.ExposedCycles != 0 {
			t.Errorf("visit %d: %d exposed cycles despite huge compute window", i, vp.ExposedCycles)
		}
	}
	if plan.OverlapRatio() <= 0.5 {
		t.Errorf("overlap ratio = %v, want > 0.5", plan.OverlapRatio())
	}
}

func TestBuildExposedWithTinyCompute(t *testing.T) {
	// With 1-cycle kernels nothing can hide: all context time exposed.
	s := testSchedule(t, 2048, 96, 1)
	plan, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExposedCycles == 0 {
		t.Error("expected exposed context cycles with tiny compute")
	}
	if plan.OverlapRatio() > 0.5 {
		t.Errorf("overlap ratio = %v, want small", plan.OverlapRatio())
	}
}

func TestBuildDoubleBufferedFlag(t *testing.T) {
	// CM holds both clusters' contexts (64+64 <= 192): double-buffered.
	s := testSchedule(t, 2048, 192, 1000)
	plan, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.DoubleBuffered {
		t.Error("CM fits both clusters: want DoubleBuffered")
	}
	// CM too small for both (64+64 > 96): not double-buffered.
	s = testSchedule(t, 2048, 96, 1000)
	plan, err = Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DoubleBuffered {
		t.Error("CM cannot fit adjacent clusters: want !DoubleBuffered")
	}
}

func TestBuildTotals(t *testing.T) {
	s := testSchedule(t, 2048, 96, 1000)
	plan, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	wantWords := s.TotalCtxWords()
	if plan.TotalWords != wantWords {
		t.Errorf("TotalWords = %d, want %d", plan.TotalWords, wantWords)
	}
	sumExp, sumOv := 0, 0
	for _, vp := range plan.Visits {
		if vp.ExposedCycles < 0 || vp.OverlappedCycles < 0 {
			t.Errorf("negative cycle classification: %+v", vp)
		}
		if vp.ExposedCycles+vp.OverlappedCycles != vp.Cycles {
			t.Errorf("visit %d: exposed+overlapped != total (%d+%d != %d)",
				vp.Visit, vp.ExposedCycles, vp.OverlappedCycles, vp.Cycles)
		}
		sumExp += vp.ExposedCycles
		sumOv += vp.OverlappedCycles
	}
	if sumExp != plan.ExposedCycles {
		t.Errorf("ExposedCycles = %d, visits sum to %d", plan.ExposedCycles, sumExp)
	}
	if sumExp+sumOv != plan.TotalCycles {
		t.Errorf("TotalCycles = %d, visits sum to %d", plan.TotalCycles, sumExp+sumOv)
	}
}

func TestBuildNilAndInvalid(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("nil schedule accepted")
	}
	s := testSchedule(t, 2048, 96, 1000)
	s.Arch.BusBytes = 0
	if _, err := Build(s); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestOverlapRatioEmptyPlan(t *testing.T) {
	p := &Plan{}
	if p.OverlapRatio() != 1 {
		t.Error("empty plan should report full overlap")
	}
}
