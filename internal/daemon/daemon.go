// Package daemon is the schedd process entry point behind cmd/schedd:
// flag parsing, listener setup, signal handling and graceful drain
// around an internal/serve Server. It lives here rather than in the cmd
// package so the chaos harness (internal/chaos, cmd/chaos) can run the
// REAL daemon — same flags, same drain discipline, same exit statuses —
// as a re-executed child process without shelling out to go build.
package daemon

import (
	"context"
	_ "expvar" // /debug/vars on the debug listener
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the debug listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"cds/internal/cluster"
	"cds/internal/faultmachine"
	"cds/internal/retry"
	"cds/internal/serve"
)

// ChildEnv is the environment variable that marks a process as a
// re-executed schedd child: binaries that embed the harness (cmd/chaos,
// the chaos test binary) call Main when it is set, before doing
// anything else.
const ChildEnv = "CHAOS_SCHEDD_CHILD"

// Main runs the schedd daemon with the given argument list (not
// including the program name) and returns the process exit status: 0
// after a clean drain, 1 on any error, 2 on a flag error. stderr
// receives error reports; logs go through the standard logger.
func Main(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	debugAddr := fs.String("debug-addr", "", "optional debug listener for /debug/pprof and /debug/vars (empty disables; bind to localhost)")
	workers := fs.Int("workers", 2, "concurrent execution slots")
	queue := fs.Int("queue", 8, "admission queue bound beyond the slots (load shed past it)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	drainGrace := fs.Duration("drain-grace", 0, "503-on-/readyz window before the listener closes (for load balancers)")
	journalDir := fs.String("journal-dir", "", "directory for sweep journals (empty disables journaling)")
	retryAttempts := fs.Int("retry-attempts", 4, "total attempts per compare request")
	retryBase := fs.Duration("retry-base", 10*time.Millisecond, "base backoff delay")
	retrySeed := fs.Int64("retry-seed", 1, "seed of the deterministic backoff jitter")
	brThreshold := fs.Int("breaker-threshold", 5, "consecutive transient failures that open a target's circuit")
	brCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	faultSeed := fs.Int64("fault-seed", 0, "chaos mode: fault-injection seed")
	faultStallPct := fs.Int("fault-stall-pct", 0, "chaos mode: per-transfer DMA stall probability (percent)")
	faultFailEvery := fs.Int("fault-fail-every", 0, "chaos mode: fail every Nth transfer while the fault window is open")
	faultFailRuns := fs.Int("fault-fail-runs", 0, "chaos mode: width of the transient fault window in runs (<0 = persistent)")
	pointDelay := fs.Duration("sweep-point-delay", 0, "chaos mode: pause after each journaled sweep point (widens the kill window)")
	streamMemo := fs.Int("stream-memo", 0, "segment schedules memoized for /v1/stream delta replanning (0 = default)")
	traceEntries := fs.Int("trace-ring-entries", 32, "max traced comparisons kept for /debug/traces")
	traceBytes := fs.Int("trace-ring-bytes", 1<<20, "byte budget of the /debug/traces ring's Chrome payloads")
	traceSample := fs.Int("trace-sample-every", 1, "keep every Nth ?trace=1 answer's full trace in the ring")
	tenants := fs.String("tenants", "", `multi-tenant admission: "id:weight=N,budget=N;id2;..." (empty = single shared queue)`)
	workerID := fs.String("worker-id", "", "fleet mode: this worker's stable identity on the router's hash ring (reported on /readyz)")
	peers := fs.String("peers", "", "fleet mode: full member list (id=host:port,...) for peer cache fill; requires -worker-id")
	peerVnodes := fs.Int("peer-vnodes", cluster.DefaultVnodes, "fleet mode: virtual nodes per worker on the peer-fill ring (must match the router's -vnodes)")
	peerTimeout := fs.Duration("peer-timeout", 250*time.Millisecond, "fleet mode: per-peer cache lookup deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		RequestTimeout: *reqTimeout,
		DrainGrace:     *drainGrace,
		JournalDir:     *journalDir,
		Retry: retry.Policy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			Seed:        *retrySeed,
		},
		BreakerThreshold:   *brThreshold,
		BreakerCooldown:    *brCooldown,
		SweepPointDelay:    *pointDelay,
		StreamMemoSegments: *streamMemo,
		TraceRingEntries:   *traceEntries,
		TraceRingBytes:     *traceBytes,
		TraceSampleEvery:   *traceSample,
		WorkerID:           *workerID,
		Logf:               log.Printf,
	}
	if *tenants != "" {
		specs, err := serve.ParseTenants(*tenants)
		if err != nil {
			fmt.Fprintf(stderr, "schedd: -tenants: %v\n", err)
			return 2
		}
		cfg.Tenants = specs
	}
	if *peers != "" {
		if *workerID == "" {
			fmt.Fprintln(stderr, "schedd: -peers requires -worker-id")
			return 2
		}
		members, err := cluster.ParseMembers(*peers)
		if err != nil {
			fmt.Fprintf(stderr, "schedd: %v\n", err)
			return 2
		}
		pf := cluster.NewPeerFill(*workerID, members, *peerVnodes, *peerTimeout, log.Printf)
		cfg.PeerFill = pf.Fill
	}
	if *faultStallPct > 0 || *faultFailEvery > 0 {
		cfg.Machine = faultmachine.NewRunner(faultmachine.Config{
			Seed:         *faultSeed,
			StallProbPct: *faultStallPct,
			FailEvery:    *faultFailEvery,
		}, *faultFailRuns)
		cfg.MachineSeed = *faultSeed
	}

	if *debugAddr != "" {
		// Profiling and counters (including the "rescache" hit/miss
		// expvar) live on their own listener so they never share a port —
		// or an ACL — with the service traffic.
		go func() {
			log.Printf("schedd: debug listener on %s (/debug/pprof, /debug/vars)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("schedd: debug listener: %v", err)
			}
		}()
	}

	if err := run(*addr, cfg, *drainTimeout); err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	return 0
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	srv := serve.New(cfg)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-errc:
		return err // listener died before any signal
	case sig := <-sigc:
		log.Printf("schedd: %v: draining (deadline %s)", sig, drainTimeout)
	}
	signal.Stop(sigc) // a second signal kills the process the hard way

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
