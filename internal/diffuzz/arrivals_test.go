package diffuzz

import (
	"context"
	"testing"
)

// The arrival-soundness oracle over a slice of the bursty corpus: no
// counterexamples, deterministic results, and at least one scenario
// actually planned.
func TestArrivalOracleClean(t *testing.T) {
	cfg := Config{Seed: 5, N: 8}
	results, err := RunArrivals(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, r := range results {
		if r.Counterexample() {
			t.Errorf("%s: %s: %s", r.Name, r.Verdict, r.Detail)
		}
		if r.Verdict == VerdictOK {
			ok++
			if r.CDSCycles > r.DSCycles {
				t.Errorf("%s: prefetch %d beats serialized %d the wrong way",
					r.Name, r.CDSCycles, r.DSCycles)
			}
		}
	}
	if ok == 0 {
		t.Error("no arrival scenario planned successfully")
	}

	again, err := RunArrivals(context.Background(), Config{Seed: 5, N: 8, Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != again[i] {
			t.Errorf("scenario %d differs across runs: %+v vs %+v", i, results[i], again[i])
		}
	}
}

func TestCheckArrivalsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := CheckArrivals(ctx, 5, 0)
	if r.Verdict != VerdictCanceled {
		t.Errorf("verdict = %s, want canceled", r.Verdict)
	}
}
