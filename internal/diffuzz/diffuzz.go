// Package diffuzz is the differential fuzzing harness for the three
// schedulers: it runs Basic, DS and CDS over generated workload specs
// (internal/workloads' corpus generator), audits every produced schedule
// with the post-hoc invariant verifier (internal/verify) and asserts the
// paper's dominance claims as machine-checked invariants:
//
//   - verification — every schedule any scheduler emits passes all
//     invariant families (structure, capacity, liveness, serialization,
//     timeline, residency);
//   - cycle dominance — CDS is never slower than DS, DS is never slower
//     than Basic (the central claim of the paper's evaluation);
//   - feasibility monotonicity — a workload the Basic Scheduler can run,
//     the data schedulers can run too (in-place release and retention
//     only relax the footprint).
//
// A spec that breaks any of these is a counterexample: the harness
// delta-minimizes it (see Minimize) while the failure signature
// reproduces and emits the shrunken spec as a committable regression
// workload.
package diffuzz

import (
	"context"
	"errors"
	"fmt"

	"cds"
	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/verify"
)

// Verdict classes. Anything outside ok/infeasible/canceled is a failure
// signature and marks a counterexample.
const (
	// VerdictOK: every produced schedule verified and dominance held.
	VerdictOK = "ok"
	// VerdictInfeasible: no scheduler could run the spec — an expected
	// corpus outcome (the generator probes the infeasibility frontier).
	VerdictInfeasible = "infeasible"
	// VerdictCanceled: the check was abandoned by cancellation; the
	// point carries no information and a resumed run re-checks it.
	VerdictCanceled = "canceled"
)

// Failure signature prefixes. The signature is the minimization target:
// shrinking steps must reproduce the same signature, so a counterexample
// never morphs into a different bug while shrinking.
const (
	SigInvalidSpec = "invalid-spec" // generator emitted an unbuildable spec
	SigVerify      = "verify"       // verify:<scheduler>:<invariant>
	SigDominance   = "dominance"    // dominance:ds>basic | dominance:cds>ds
	SigFeasibility = "feasibility"  // feasibility:<scheduler> — basic ran, data scheduler refused
	SigError       = "error"        // error:<scheduler> — a non-taxonomy failure
	SigStream      = "stream"       // stream:<oracle> — online scheduler disagrees with static CDS
	SigTenant      = "tenant"       // tenant:<oracle> — multi-tenant plan breaks fairness or solo equivalence
)

// Result is one corpus point's differential outcome. It is
// JSON-serializable so the journal can persist it and a resumed run can
// rebuild the summary without re-checking.
type Result struct {
	// Name keys the point (workloads.SpecName) in journals and reports.
	Name string `json:"name"`
	// Index is the point's position in the seed's corpus stream; with
	// the seed it regenerates the exact spec (minimization needs this).
	Index int `json:"index"`
	// Class is the generator structure class the point came from.
	Class string `json:"class"`
	// Verdict is VerdictOK, VerdictInfeasible, VerdictCanceled or a
	// failure signature ("verify:cds:capacity", "dominance:ds>basic").
	Verdict string `json:"verdict"`
	// Detail is the human-readable failure description ("" when ok).
	Detail string `json:"detail,omitempty"`
	// Cycles per scheduler (0 when that scheduler did not run).
	BasicCycles int `json:"basic_cycles,omitempty"`
	DSCycles    int `json:"ds_cycles,omitempty"`
	CDSCycles   int `json:"cds_cycles,omitempty"`
	// RF is the reuse factor CDS settled on.
	RF int `json:"rf,omitempty"`
}

// Counterexample reports whether the verdict is a failure signature.
func (r Result) Counterexample() bool {
	switch r.Verdict {
	case VerdictOK, VerdictInfeasible, VerdictCanceled:
		return false
	}
	return true
}

// Check runs the full differential oracle on one spec: build, compare
// the three schedulers, verify every produced schedule and assert the
// dominance invariants. It never returns an error — every outcome,
// including harness-level surprises, is encoded in the Result's verdict
// so batch runs treat failures as data.
func Check(ctx context.Context, sp *spec.Spec) Result {
	res := Result{Name: sp.Name}
	part, pa, err := sp.Build()
	if err != nil {
		res.Verdict = SigInvalidSpec
		res.Detail = err.Error()
		return res
	}

	cmp, _ := cds.CompareAllCtx(ctx, pa, part)
	if scherr.FromContext(ctx) != nil || cmp == nil {
		res.Verdict = VerdictCanceled
		return res
	}

	// Classify the per-scheduler outcomes first: an unexpected error
	// class (not infeasible, not canceled) is itself a counterexample.
	basicFeasible := cmp.BasicErr == nil && cmp.Basic != nil
	if cmp.BasicErr != nil && !errors.Is(cmp.BasicErr, scherr.ErrInfeasible) {
		return fail(res, "error:basic", cmp.BasicErr)
	}
	infeasible := map[string]bool{}
	for _, s := range []struct {
		name string
		res  *cds.Result
		err  error
	}{
		{"ds", cmp.DS, cmp.DSErr},
		{"cds", cmp.CDS, cmp.CDSErr},
	} {
		if s.err == nil {
			continue
		}
		if errors.Is(s.err, scherr.ErrCanceled) {
			res.Verdict = VerdictCanceled
			return res
		}
		if !errors.Is(s.err, scherr.ErrInfeasible) {
			return fail(res, "error:"+s.name, s.err)
		}
		infeasible[s.name] = true
		// Infeasible data scheduler: legal only if Basic is infeasible
		// too — in-place release and retention never shrink the set of
		// schedulable workloads.
		if basicFeasible {
			return fail(res, "feasibility:"+s.name, fmt.Errorf(
				"basic runs the workload but the %s scheduler reports: %w", s.name, s.err))
		}
	}
	// DS and CDS share the same RF=1 feasibility baseline, so exactly
	// one of them refusing the workload is a bug in whichever disagrees.
	if infeasible["ds"] != infeasible["cds"] {
		return fail(res, "feasibility:ds-vs-cds", fmt.Errorf(
			"ds infeasible=%v but cds infeasible=%v on the same workload",
			infeasible["ds"], infeasible["cds"]))
	}
	// Static equivalence: a one-segment stream arriving at t=0 is the
	// offline problem, so the online planner must agree with static CDS
	// on feasibility and on the schedule itself, visit for visit.
	if out, bad := checkStream(ctx, sp, res, cmp.CDS); bad {
		return out
	}
	if !basicFeasible && cmp.DS == nil && cmp.CDS == nil {
		res.Verdict = VerdictInfeasible
		return res
	}

	// Verify every schedule that was produced.
	for _, s := range []struct {
		name string
		res  *cds.Result
	}{{"basic", cmp.Basic}, {"ds", cmp.DS}, {"cds", cmp.CDS}} {
		if s.res == nil {
			continue
		}
		if err := verify.Schedule(s.res.Schedule); err != nil {
			sig := SigVerify + ":" + s.name
			var verr *verify.Error
			if errors.As(err, &verr) {
				sig += ":" + verr.Invariant
			}
			return fail(res, sig, err)
		}
	}

	// Dominance: the paper's ordering, as strict cycle inequalities.
	if cmp.Basic != nil {
		res.BasicCycles = cmp.Basic.Timing.TotalCycles
	}
	if cmp.DS != nil {
		res.DSCycles = cmp.DS.Timing.TotalCycles
	}
	if cmp.CDS != nil {
		res.CDSCycles = cmp.CDS.Timing.TotalCycles
		res.RF = cmp.RF
	}
	if cmp.Basic != nil && cmp.DS != nil && res.DSCycles > res.BasicCycles {
		return fail(res, "dominance:ds>basic", fmt.Errorf(
			"ds takes %d cycles, basic %d", res.DSCycles, res.BasicCycles))
	}
	if cmp.DS != nil && cmp.CDS != nil && res.CDSCycles > res.DSCycles {
		return fail(res, "dominance:cds>ds", fmt.Errorf(
			"cds takes %d cycles, ds %d", res.CDSCycles, res.DSCycles))
	}

	res.Verdict = VerdictOK
	return res
}

func fail(res Result, sig string, err error) Result {
	res.Verdict = sig
	res.Detail = err.Error()
	return res
}
