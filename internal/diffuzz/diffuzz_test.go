package diffuzz

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"cds/internal/spec"
	"cds/internal/workloads"
)

// TestRegressionsPinned: every minimized counterexample the fuzzer has
// found (and whose bug has since been fixed) must check clean forever.
// A regression here means a fixed scheduler bug came back.
func TestRegressionsPinned(t *testing.T) {
	for _, sp := range workloads.Regressions() {
		r := Check(context.Background(), sp)
		if r.Verdict != VerdictOK {
			t.Errorf("%s: verdict %q (%s), want %q", sp.Name, r.Verdict, r.Detail, VerdictOK)
		}
	}
}

// TestCheckOKOnPaperWorkloads: the differential check must pass on every
// Table 1 workload (they are the calibrated ground truth).
func TestCheckOKOnPaperWorkloads(t *testing.T) {
	for _, e := range workloads.All() {
		sp := spec.FromPartition(e.Part, e.Arch)
		sp.Name = e.Name
		r := Check(context.Background(), sp)
		if r.Verdict != VerdictOK {
			t.Errorf("%s: verdict %q (%s)", e.Name, r.Verdict, r.Detail)
		}
	}
}

// TestCheckFlagsInvalidSpec: an unbuildable spec is a generator bug and
// must surface as a counterexample, not be skipped.
func TestCheckFlagsInvalidSpec(t *testing.T) {
	sp := &spec.Spec{Name: "bad", Iterations: 0}
	r := Check(context.Background(), sp)
	if r.Verdict != SigInvalidSpec {
		t.Fatalf("verdict %q, want %q", r.Verdict, SigInvalidSpec)
	}
	if !r.Counterexample() {
		t.Fatal("invalid-spec result not classed as a counterexample")
	}
}

// TestCheckCanceled: a canceled context yields a canceled verdict that is
// NOT a counterexample (the point was never decided).
func TestCheckCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Check(ctx, workloads.GenSpec(1, 0))
	if r.Verdict != VerdictCanceled {
		t.Fatalf("verdict %q, want %q", r.Verdict, VerdictCanceled)
	}
	if r.Counterexample() {
		t.Fatal("canceled result classed as a counterexample")
	}
}

// TestMinimizeShrinksToPredicateKernel: with a synthetic predicate the
// minimizer must find the smallest spec that still satisfies it, without
// mutating the input.
func TestMinimizeShrinksToPredicateKernel(t *testing.T) {
	sp := workloads.GenSpec(3, 7) // arbitrary multi-kernel corpus point
	if len(sp.Kernels) < 3 {
		t.Fatalf("test wants a multi-kernel spec, got %d kernels", len(sp.Kernels))
	}
	orig, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	target := sp.Kernels[0].Name
	keep := func(cand *spec.Spec) bool {
		for _, k := range cand.Kernels {
			if k.Name == target {
				return true
			}
		}
		return false
	}
	min, evals := Minimize(sp, keep, 0)
	if evals <= 0 || evals > DefaultMinimizeBudget {
		t.Fatalf("evals = %d, want within (0, %d]", evals, DefaultMinimizeBudget)
	}
	if len(min.Kernels) != 1 || min.Kernels[0].Name != target {
		t.Fatalf("minimized to %d kernels (%v), want just %q", len(min.Kernels), min.Kernels, target)
	}
	if len(min.Clusters) != 1 || min.Clusters[0] != 1 {
		t.Fatalf("minimized clusters = %v, want [1]", min.Clusters)
	}
	// Scalars halve toward 1 under an always-true-for-target predicate.
	if min.Iterations != 1 {
		t.Fatalf("minimized iterations = %d, want 1", min.Iterations)
	}
	after, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, after) {
		t.Fatal("Minimize mutated its input spec")
	}
}

// TestMinimizeRespectsBudget: a tiny budget bounds the evaluation count.
func TestMinimizeRespectsBudget(t *testing.T) {
	sp := workloads.GenSpec(3, 7)
	calls := 0
	_, evals := Minimize(sp, func(*spec.Spec) bool { calls++; return true }, 5)
	if evals != 5 || calls != 5 {
		t.Fatalf("evals = %d, calls = %d, want both 5", evals, calls)
	}
}

// TestRunSummaryIdenticalAcrossWorkers: the fuzzing loop must produce a
// byte-identical summary no matter how the work is spread over workers.
func TestRunSummaryIdenticalAcrossWorkers(t *testing.T) {
	const n = 24
	var texts []string
	for _, workers := range []int{1, 4, 13} {
		results, err := Run(context.Background(), Config{Seed: 5, N: n, Workers: workers}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		Summarize(5, results).WriteText(&buf)
		var csv bytes.Buffer
		if err := WriteCSV(&csv, results); err != nil {
			t.Fatal(err)
		}
		texts = append(texts, buf.String()+csv.String())
	}
	for i := 1; i < len(texts); i++ {
		if texts[i] != texts[0] {
			t.Fatalf("summary/CSV differs between worker counts:\n%s\nvs\n%s", texts[0], texts[i])
		}
	}
}

// TestRunJournaledResumes: a journaled run that stops partway must resume
// from the journal — already-checked points are not re-run, and the final
// result set is identical to an uninterrupted run.
func TestRunJournaledResumes(t *testing.T) {
	const n = 12
	cfg := Config{Seed: 9, N: n, Workers: 2}
	path := filepath.Join(t.TempDir(), "diffuzz.journal")

	// Pass 1: journal only the first few points by canceling after 4.
	ctx, cancel := context.WithCancel(context.Background())
	j, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal has %d records", len(prior))
	}
	// The progress callback runs from the worker pool: counters it
	// touches must be atomic.
	var seen atomic.Int32
	_, runErr := RunJournaled(ctx, j, prior, cfg, func(Result) {
		if seen.Add(1) == 4 {
			cancel()
		}
	})
	j.Close()
	if runErr == nil {
		t.Fatal("canceled run reported no error")
	}

	// Pass 2: resume. The journaled points must come back as done and
	// must not be re-checked.
	j, prior, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	done := Completed(prior)
	if len(done) == 0 {
		t.Fatal("no completed records journaled before cancellation")
	}
	var rechecked atomic.Int32
	results, err := RunJournaled(context.Background(), j, prior, cfg, func(r Result) {
		if _, ok := done[r.Name]; ok {
			rechecked.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rechecked.Load() != 0 {
		t.Fatalf("%d journaled points were re-checked on resume", rechecked.Load())
	}

	// The merged result set matches an uninterrupted run byte for byte.
	plain, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteCSV(&a, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, plain); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("resumed run differs from uninterrupted run:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestMinimizeCounterexamplesOnCleanRun: nothing to minimize on a clean
// sweep.
func TestMinimizeCounterexamplesOnCleanRun(t *testing.T) {
	results, err := Run(context.Background(), Config{Seed: 1, N: 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cexs := MinimizeCounterexamples(context.Background(), Config{Seed: 1, N: 12}, results); len(cexs) != 0 {
		t.Fatalf("clean run produced %d counterexamples", len(cexs))
	}
	if !Summarize(1, results).Clean() {
		t.Fatal("summary of clean run not Clean()")
	}
}
