package diffuzz

// Delta minimization: shrink a counterexample spec while the failure
// keeps reproducing, so the committed regression workload is the small
// kernel of the bug rather than a 16-kernel random tangle. The algorithm
// is a deterministic greedy fixed point over structural and scalar
// reduction passes:
//
//	1. drop whole clusters       (coarse structure)
//	2. drop single kernels       (fine structure)
//	3. drop kernel inputs        (dependency edges)
//	4. shrink iterations, datum sizes, context words, compute cycles
//	   (scalars, halving toward 1)
//
// Every candidate is validated by the caller-supplied predicate — in
// production, "Check still returns the same failure signature" — so a
// shrinking step can never morph one bug into another. Candidates that
// no longer build are skipped (unless the signature IS invalid-spec, in
// which case rebuildability is exactly what the predicate tests). The
// loop re-runs the pass list until a full sweep makes no progress or the
// evaluation budget is exhausted.

import (
	"context"

	"cds/internal/spec"
)

// DefaultMinimizeBudget bounds how many candidate evaluations one
// minimization may spend. Each evaluation is a full three-scheduler
// comparison plus verification, so the budget is the knob that keeps a
// pathological counterexample from stalling the whole fuzzing run.
const DefaultMinimizeBudget = 500

// Minimize shrinks sp while keep(candidate) stays true, spending at most
// budget predicate evaluations (DefaultMinimizeBudget when <= 0). It
// returns the smallest reproducing spec found and the number of
// evaluations spent. sp itself is never mutated.
func Minimize(sp *spec.Spec, keep func(*spec.Spec) bool, budget int) (*spec.Spec, int) {
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	cur := cloneSpec(sp)
	spent := 0
	try := func(cand *spec.Spec) bool {
		if spent >= budget {
			return false
		}
		spent++
		if keep(cand) {
			cur = cand
			return true
		}
		return false
	}

	for progress := true; progress && spent < budget; {
		progress = false

		// Pass 1: drop whole clusters, largest index first so the
		// surviving kernel indices stay stable within a sweep.
		for c := len(cur.Clusters) - 1; c >= 0 && len(cur.Clusters) > 1; c-- {
			if try(dropCluster(cur, c)) {
				progress = true
			}
		}
		// Pass 2: drop single kernels.
		for k := len(cur.Kernels) - 1; k >= 0 && len(cur.Kernels) > 1; k-- {
			if try(dropKernel(cur, k)) {
				progress = true
			}
		}
		// Pass 3: drop dependency edges (kernel inputs).
		for k := len(cur.Kernels) - 1; k >= 0; k-- {
			for i := len(cur.Kernels[k].Inputs) - 1; i >= 0; i-- {
				if try(dropInput(cur, k, i)) {
					progress = true
				}
			}
		}
		// Pass 4: scalar shrinking, halving toward 1.
		if cur.Iterations > 1 {
			cand := cloneSpec(cur)
			cand.Iterations = cand.Iterations / 2
			if try(cand) {
				progress = true
			}
		}
		for d := range cur.Data {
			if cur.Data[d].Size > 1 {
				cand := cloneSpec(cur)
				cand.Data[d].Size = cand.Data[d].Size / 2
				if try(cand) {
					progress = true
				}
			}
		}
		for k := range cur.Kernels {
			if cur.Kernels[k].ContextWords > 1 {
				cand := cloneSpec(cur)
				cand.Kernels[k].ContextWords = cand.Kernels[k].ContextWords / 2
				if try(cand) {
					progress = true
				}
			}
			if cur.Kernels[k].ComputeCycles > 1 {
				cand := cloneSpec(cur)
				cand.Kernels[k].ComputeCycles = cand.Kernels[k].ComputeCycles / 2
				if try(cand) {
					progress = true
				}
			}
		}
	}
	return cur, spent
}

// MinimizeResult is the production entry point: shrink a counterexample
// while Check keeps returning the same failure signature. The context
// bounds the whole minimization; a cancellation mid-way returns the
// smallest reproducer found so far.
func MinimizeResult(ctx context.Context, sp *spec.Spec, signature string, budget int) (*spec.Spec, int) {
	return Minimize(sp, func(cand *spec.Spec) bool {
		if ctx.Err() != nil {
			return false
		}
		r := Check(ctx, cand)
		return r.Verdict == signature
	}, budget)
}

// cloneSpec deep-copies a spec so candidate surgery never aliases the
// original's slices.
func cloneSpec(sp *spec.Spec) *spec.Spec {
	out := &spec.Spec{
		Name:       sp.Name,
		Iterations: sp.Iterations,
		Data:       append([]spec.Datum(nil), sp.Data...),
		Clusters:   append([]int(nil), sp.Clusters...),
	}
	if sp.Arch != nil {
		a := *sp.Arch
		out.Arch = &a
	}
	out.Kernels = make([]spec.Kernel, len(sp.Kernels))
	for i, k := range sp.Kernels {
		k.Inputs = append([]string(nil), k.Inputs...)
		k.Outputs = append([]string(nil), k.Outputs...)
		out.Kernels[i] = k
	}
	return out
}

// kernelRange returns the [lo, hi) kernel index range of cluster c.
func kernelRange(sp *spec.Spec, c int) (lo, hi int) {
	for i := 0; i < c; i++ {
		lo += sp.Clusters[i]
	}
	return lo, lo + sp.Clusters[c]
}

// dropCluster removes cluster c and all its kernels.
func dropCluster(sp *spec.Spec, c int) *spec.Spec {
	out := cloneSpec(sp)
	lo, hi := kernelRange(out, c)
	out.Kernels = append(out.Kernels[:lo], out.Kernels[hi:]...)
	out.Clusters = append(out.Clusters[:c], out.Clusters[c+1:]...)
	pruneOrphans(out)
	return out
}

// dropKernel removes kernel k, shrinking (or dropping) its cluster.
func dropKernel(sp *spec.Spec, k int) *spec.Spec {
	out := cloneSpec(sp)
	out.Kernels = append(out.Kernels[:k], out.Kernels[k+1:]...)
	lo := 0
	for c := range out.Clusters {
		if k < lo+out.Clusters[c] {
			out.Clusters[c]--
			if out.Clusters[c] == 0 {
				out.Clusters = append(out.Clusters[:c], out.Clusters[c+1:]...)
			}
			break
		}
		lo += out.Clusters[c]
	}
	pruneOrphans(out)
	return out
}

// dropInput removes input i of kernel k.
func dropInput(sp *spec.Spec, k, i int) *spec.Spec {
	out := cloneSpec(sp)
	ins := out.Kernels[k].Inputs
	out.Kernels[k].Inputs = append(ins[:i], ins[i+1:]...)
	pruneOrphans(out)
	return out
}

// pruneOrphans removes data no kernel references: a datum that is
// neither produced nor consumed fails validation, and keeping unused
// declarations around defeats the point of minimizing.
func pruneOrphans(sp *spec.Spec) { sp.PruneOrphanData() }
