package diffuzz

import (
	"context"
	"fmt"
	"sync"

	"cds/internal/conc"
	"cds/internal/journal"
	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/workloads"
)

// Config parameterizes one fuzzing run.
type Config struct {
	// Seed selects the corpus stream; N is how many points to check.
	Seed int64
	N    int
	// Workers bounds the pool (<= 0: one per CPU).
	Workers int
	// MinimizeBudget caps predicate evaluations per counterexample
	// minimization (<= 0: DefaultMinimizeBudget).
	MinimizeBudget int
}

// Record is one journal line: a corpus point's result plus whether the
// check actually ran. Status reuses the sweep journal vocabulary: "done"
// for any completed check (ok, infeasible or counterexample — all three
// are outcomes) and "canceled" for points a shutdown abandoned, which a
// resumed run re-checks.
type Record struct {
	Status string `json:"status"`
	Result Result `json:"result"`
}

// Journal statuses (matching the sweep journal vocabulary).
const (
	StatusDone     = "done"
	StatusCanceled = "canceled"
)

// Journal is the fuzzer's crash-safe checkpoint file.
type Journal = journal.Journal[Record]

// OpenJournal opens (creating if missing) and replays a diffuzz journal;
// see internal/journal for the durability rules.
func OpenJournal(path string) (*Journal, []Record, error) {
	j, recs, err := journal.Open[Record](path)
	if err != nil {
		return nil, nil, fmt.Errorf("diffuzz: %w", err)
	}
	return j, recs, nil
}

// Completed indexes replayed records a resumed run must not re-check:
// done outcomes keyed by point name. Canceled records are absent — an
// abandoned point carries no information.
func Completed(recs []Record) map[string]Result {
	done := make(map[string]Result, len(recs))
	for _, rec := range recs {
		if rec.Status == StatusDone {
			done[rec.Result.Name] = rec.Result
		}
	}
	return done
}

// Run checks corpus points [0, cfg.N) of cfg.Seed's stream across a
// bounded worker pool and returns one Result per point, in index order
// regardless of completion order — the summary over the returned slice
// is therefore deterministic for a given (seed, n), independent of
// worker count. A canceled run still returns every slot; unchecked
// points carry VerdictCanceled. onResult, when non-nil, observes each
// completed result from the worker goroutine that produced it.
func Run(ctx context.Context, cfg Config, onResult func(Result)) ([]Result, error) {
	return run(ctx, cfg, nil, onResult)
}

// RunJournaled is Run with crash-safe checkpointing: points whose
// outcome the journal already holds are not re-checked (their journaled
// results fill the slots), fresh outcomes are fsync'd to the journal the
// moment they complete, and abandoned points are journaled as canceled.
// The merged result slice is identical to an uninterrupted run's.
func RunJournaled(ctx context.Context, j *Journal, prior []Record, cfg Config, onResult func(Result)) ([]Result, error) {
	return run(ctx, cfg, &journaled{j: j, done: Completed(prior)}, onResult)
}

type journaled struct {
	j    *Journal
	done map[string]Result
	mu   sync.Mutex
	err  error
}

func (jn *journaled) append(rec Record) {
	if err := jn.j.Append(rec); err != nil {
		jn.mu.Lock()
		if jn.err == nil {
			jn.err = err
		}
		jn.mu.Unlock()
	}
}

func run(ctx context.Context, cfg Config, jn *journaled, onResult func(Result)) ([]Result, error) {
	results := make([]Result, cfg.N)
	classes := workloads.Classes()
	// Pre-fill every slot with its identity and a canceled verdict, so
	// abandoned points are self-describing in reports and journals.
	for i := range results {
		results[i] = Result{
			Name:    workloads.SpecName(cfg.Seed, i),
			Index:   i,
			Class:   string(classes[i%len(classes)]),
			Verdict: VerdictCanceled,
		}
	}

	todo := make([]int, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if jn != nil {
			if r, ok := jn.done[results[i].Name]; ok {
				results[i] = r
				continue
			}
		}
		todo = append(todo, i)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = conc.DefaultLimit()
	}
	ran := make([]bool, cfg.N)
	_ = conc.ForEach(ctx, workers, len(todo), func(ti int) error {
		i := todo[ti]
		sp := workloads.GenSpec(cfg.Seed, i)
		r := Check(ctx, sp)
		r.Index = i
		r.Class = results[i].Class
		if r.Verdict == VerdictCanceled {
			// Abandoned mid-check: keep the pre-filled canceled slot so
			// a resumed run re-checks it.
			return nil
		}
		results[i] = r
		ran[i] = true
		if jn != nil {
			jn.append(Record{Status: StatusDone, Result: r})
		}
		if onResult != nil {
			onResult(r)
		}
		return nil
	})

	if jn != nil {
		// Journal the abandonments so an operator sees what a shutdown
		// left behind; resume re-checks them.
		for _, i := range todo {
			if !ran[i] {
				jn.append(Record{Status: StatusCanceled, Result: results[i]})
			}
		}
	}
	if err := scherr.FromContext(ctx); err != nil {
		return results, err
	}
	if jn != nil {
		jn.mu.Lock()
		defer jn.mu.Unlock()
		return results, jn.err
	}
	return results, nil
}

// Counterexample pairs a failing corpus point with its minimized
// reproducer.
type Counterexample struct {
	Result Result
	// Spec is the original generated spec; Minimized the smallest
	// reproducer found within the budget (equal to Spec when no
	// shrinking step kept the signature).
	Spec, Minimized *spec.Spec
	// Evals is how many predicate evaluations minimization spent.
	Evals int
}

// MinimizeCounterexamples regenerates and delta-minimizes every
// counterexample in results, serially and in index order (counterexamples
// should be rare; determinism of the emitted reproducers matters more
// than latency). The minimized spec keeps the corpus point's name plus a
// "-min" suffix so the committed regression names its origin.
func MinimizeCounterexamples(ctx context.Context, cfg Config, results []Result) []Counterexample {
	var out []Counterexample
	for _, r := range results {
		if !r.Counterexample() {
			continue
		}
		sp := workloads.GenSpec(cfg.Seed, r.Index)
		min, evals := MinimizeResult(ctx, sp, r.Verdict, cfg.MinimizeBudget)
		min.Name = sp.Name + "-min"
		out = append(out, Counterexample{Result: r, Spec: sp, Minimized: min, Evals: evals})
	}
	return out
}
