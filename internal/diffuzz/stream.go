package diffuzz

// The streaming oracles. Two differential claims tie the online
// scheduler (internal/stream) to the static CDS ground truth:
//
//   - static equivalence — a fully-known-in-advance stream (one segment
//     arriving at t=0) must reproduce the static CDS schedule
//     visit-for-visit, and must be infeasible exactly when static CDS
//     is. Check runs this oracle on every corpus point alongside the
//     scheduler comparison.
//
//   - arrival soundness — over the bursty-arrival corpus
//     (workloads.GenArrivals), replanning an unchanged log with a warm
//     memo must be a pure memo walk producing byte-identical output,
//     every streamed execution must pass the prefetch invariant family,
//     and prefetch must never lose to the serialized baseline.
//     CheckArrivals/RunArrivals drive this for the nightly sweep.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"

	"cds"
	"cds/internal/conc"
	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/stream"
	"cds/internal/verify"
	"cds/internal/workloads"
)

// checkStream asserts the static-equivalence oracle for one corpus
// point. cdsRes is the static CDS outcome (nil when infeasible); the
// returned Result is zero-verdict when the oracle holds.
func checkStream(ctx context.Context, sp *spec.Spec, res Result, cdsRes *cds.Result) (Result, bool) {
	plan, err := stream.NewPlanner(0).Plan(ctx, stream.FromSpec(sp, 0))
	if err != nil {
		if errors.Is(err, scherr.ErrCanceled) {
			res.Verdict = VerdictCanceled
			return res, true
		}
		if cdsRes == nil && errors.Is(err, scherr.ErrInfeasible) {
			return res, false // both sides refuse the workload — consistent
		}
		if cdsRes == nil {
			return fail(res, SigStream+":error", err), true
		}
		return fail(res, SigStream+":feasibility", fmt.Errorf(
			"static CDS schedules the workload but the stream planner reports: %w", err)), true
	}
	if cdsRes == nil {
		return fail(res, SigStream+":feasibility", fmt.Errorf(
			"stream planner schedules the workload but static CDS refused it")), true
	}
	if plan.Segments[0].RF != cdsRes.Schedule.RF {
		return fail(res, SigStream+":static-diverges", fmt.Errorf(
			"stream RF %d, static CDS RF %d", plan.Segments[0].RF, cdsRes.Schedule.RF)), true
	}
	if !reflect.DeepEqual(plan.Schedule.Visits, cdsRes.Schedule.Visits) {
		return fail(res, SigStream+":static-diverges", fmt.Errorf(
			"single-segment stream plan differs from the static CDS schedule (%d vs %d visits)",
			len(plan.Schedule.Visits), len(cdsRes.Schedule.Visits))), true
	}
	return res, false
}

// CheckArrivals runs the arrival-soundness oracle on scenario index of
// seed's bursty-arrival stream.
func CheckArrivals(ctx context.Context, seed int64, index int) Result {
	a := workloads.GenArrivals(seed, index)
	res := Result{Name: a.Name, Index: index, Class: "arrivals"}
	lg, err := stream.Split(a.Spec, a.SegClusters, a.ArriveAt)
	if err != nil {
		return fail(res, SigInvalidSpec, err)
	}

	pl := stream.NewPlanner(0)
	plan, err := pl.Plan(ctx, lg)
	if err != nil {
		if errors.Is(err, scherr.ErrCanceled) {
			res.Verdict = VerdictCanceled
			return res
		}
		if errors.Is(err, scherr.ErrInfeasible) {
			res.Verdict = VerdictInfeasible
			return res
		}
		return fail(res, SigStream+":error", err)
	}

	// Delta identity: replanning the unchanged log against the warm memo
	// must replan nothing and reproduce the plan byte-for-byte.
	again, err := pl.Plan(ctx, lg)
	if err != nil {
		if errors.Is(err, scherr.ErrCanceled) {
			res.Verdict = VerdictCanceled
			return res
		}
		return fail(res, SigStream+":error", err)
	}
	if again.Replanned != 0 {
		return fail(res, SigStream+":memo-miss", fmt.Errorf(
			"replanning an unchanged %d-segment log re-ran CDS for %d segments",
			len(lg.Segments), again.Replanned))
	}
	b1, err := plan.MarshalCanonical()
	if err != nil {
		return fail(res, SigStream+":error", err)
	}
	b2, err := again.MarshalCanonical()
	if err != nil {
		return fail(res, SigStream+":error", err)
	}
	if !bytes.Equal(b1, b2) {
		return fail(res, SigStream+":delta-diverges", errors.New(
			"warm-memo replan of an unchanged log is not byte-identical"))
	}

	// Every streamed execution verifies, and prefetch never loses.
	for _, prefetch := range []bool{false, true} {
		if err := verify.Stream(plan.Schedule, plan.Opts(prefetch)); err != nil {
			sig := SigVerify + ":stream"
			var verr *verify.Error
			if errors.As(err, &verr) {
				sig = SigVerify + ":stream:" + verr.Invariant
			}
			return fail(res, sig, err)
		}
	}
	serial, err := plan.Run(false)
	if err != nil {
		return fail(res, SigStream+":error", err)
	}
	pre, err := plan.Run(true)
	if err != nil {
		return fail(res, SigStream+":error", err)
	}
	if pre.TotalCycles > serial.TotalCycles {
		return fail(res, SigStream+":prefetch-regression", fmt.Errorf(
			"prefetch makespan %d exceeds the serialized baseline %d",
			pre.TotalCycles, serial.TotalCycles))
	}
	res.CDSCycles = pre.TotalCycles
	res.DSCycles = serial.TotalCycles
	res.Verdict = VerdictOK
	return res
}

// RunArrivals checks arrival scenarios [0, cfg.N) of cfg.Seed's stream
// across a bounded worker pool, mirroring Run's result-ordering
// contract. Arrival scenarios are not journaled — the oracle is cheap
// enough to re-run whole.
func RunArrivals(ctx context.Context, cfg Config, onResult func(Result)) ([]Result, error) {
	results := make([]Result, cfg.N)
	for i := range results {
		results[i] = Result{
			Name:    workloads.ArrivalName(cfg.Seed, i),
			Index:   i,
			Class:   "arrivals",
			Verdict: VerdictCanceled,
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = conc.DefaultLimit()
	}
	_ = conc.ForEach(ctx, workers, cfg.N, func(i int) error {
		r := CheckArrivals(ctx, cfg.Seed, i)
		if r.Verdict == VerdictCanceled {
			return nil
		}
		results[i] = r
		if onResult != nil {
			onResult(r)
		}
		return nil
	})
	return results, scherr.FromContext(ctx)
}
