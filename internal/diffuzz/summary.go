package diffuzz

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cds/internal/workloads"
)

// Summary aggregates one fuzzing run: per-class outcome counts plus the
// list of counterexamples. It is built from the index-ordered result
// slice only, so for a given (seed, n) the summary — and its rendered
// text — is byte-identical across worker counts, resumes and reruns.
type Summary struct {
	Seed int64 `json:"seed"`
	N    int   `json:"n"`
	// PerClass maps each structure class to its outcome tally.
	PerClass map[string]*Tally `json:"per_class"`
	// Total is the whole-corpus tally.
	Total Tally `json:"total"`
	// Counterexamples lists every failing point in index order.
	Counterexamples []Result `json:"counterexamples,omitempty"`
}

// Tally counts outcomes of one bucket.
type Tally struct {
	OK              int `json:"ok"`
	Infeasible      int `json:"infeasible"`
	Counterexamples int `json:"counterexamples"`
	Canceled        int `json:"canceled"`
}

func (t *Tally) add(r Result) {
	switch {
	case r.Verdict == VerdictOK:
		t.OK++
	case r.Verdict == VerdictInfeasible:
		t.Infeasible++
	case r.Verdict == VerdictCanceled:
		t.Canceled++
	default:
		t.Counterexamples++
	}
}

// Summarize builds the run summary from index-ordered results.
func Summarize(seed int64, results []Result) *Summary {
	s := &Summary{Seed: seed, N: len(results), PerClass: map[string]*Tally{}}
	for _, cls := range workloads.Classes() {
		s.PerClass[string(cls)] = &Tally{}
	}
	for _, r := range results {
		s.Total.add(r)
		t, ok := s.PerClass[r.Class]
		if !ok {
			t = &Tally{}
			s.PerClass[r.Class] = t
		}
		t.add(r)
		if r.Counterexample() {
			s.Counterexamples = append(s.Counterexamples, r)
		}
	}
	return s
}

// Clean reports whether the run finished fully (nothing canceled) and
// found no counterexample.
func (s *Summary) Clean() bool {
	return s.Total.Counterexamples == 0 && s.Total.Canceled == 0
}

// WriteText renders the corpus-summary table. Classes print in their
// stream rotation order, so the layout is stable.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "diffuzz corpus: seed=%d n=%d\n", s.Seed, s.N)
	fmt.Fprintf(w, "%-12s %6s %12s %16s %10s\n", "class", "ok", "infeasible", "counterexamples", "canceled")
	for _, cls := range workloads.Classes() {
		t := s.PerClass[string(cls)]
		if t == nil {
			t = &Tally{}
		}
		fmt.Fprintf(w, "%-12s %6d %12d %16d %10d\n", cls, t.OK, t.Infeasible, t.Counterexamples, t.Canceled)
	}
	fmt.Fprintf(w, "%-12s %6d %12d %16d %10d\n", "total", s.Total.OK, s.Total.Infeasible, s.Total.Counterexamples, s.Total.Canceled)
	for _, r := range s.Counterexamples {
		fmt.Fprintf(w, "COUNTEREXAMPLE %s: %s (%s)\n", r.Name, r.Verdict, r.Detail)
	}
}

// WriteCSV renders one row per corpus point (index order) through
// encoding/csv, so hostile detail strings stay one field.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "index", "class", "verdict", "basic_cycles", "ds_cycles", "cds_cycles", "rf", "detail"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Name,
			strconv.Itoa(r.Index),
			r.Class,
			r.Verdict,
			strconv.Itoa(r.BasicCycles),
			strconv.Itoa(r.DSCycles),
			strconv.Itoa(r.CDSCycles),
			strconv.Itoa(r.RF),
			r.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
