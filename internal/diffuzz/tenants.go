package diffuzz

// The multi-tenant oracles. Over the K-tenant mix corpus
// (workloads.GenTenantMix) each point asserts:
//
//   - admission soundness — a mix either schedules whole or is refused
//     with the scherr taxonomy (infeasible-under-quota is an expected
//     corpus outcome, any other error class is a counterexample);
//   - fairness — the stitched plan passes the verifier's fairness
//     family: quotas respected, preemption only at cluster boundaries,
//     strict priority, bounded weighted-share lag, and the execution
//     dominance facts (verify.Fairness re-derives everything from the
//     raw parts);
//   - solo equivalence — every tenant's schedule in the plan is
//     byte-identical to a fresh solo CDS run under the same quota view
//     (tenant.SoloEquivalence);
//   - lag accounting — the interleaver's own recorded MaxLag stays
//     within the plan's advertised LagBound.

import (
	"context"
	"errors"
	"fmt"

	"cds/internal/conc"
	"cds/internal/scherr"
	"cds/internal/tenant"
	"cds/internal/verify"
	"cds/internal/workloads"
)

// CheckTenantMix runs the multi-tenant oracle on mix index of seed's
// stream.
func CheckTenantMix(ctx context.Context, seed int64, index int) Result {
	mix := workloads.GenTenantMix(seed, index)
	res := Result{Name: mix.Name, Index: index, Class: "tenants"}

	tenants := make([]tenant.Tenant, len(mix.Tenants))
	for i, ts := range mix.Tenants {
		part, _, err := ts.Spec.Build()
		if err != nil {
			return fail(res, SigInvalidSpec, fmt.Errorf("tenant %s: %w", ts.ID, err))
		}
		tenants[i] = tenant.Tenant{
			ID:       ts.ID,
			Weight:   ts.Weight,
			Priority: ts.Priority,
			Arrive:   ts.Arrive,
			Quota:    tenant.Quota{FBBytes: ts.Spec.Arch.FBSetBytes, CMWords: ts.Spec.Arch.CMWords},
			Part:     part,
		}
	}

	plan, err := tenant.Schedule(ctx, mix.Base, tenants)
	if err != nil {
		switch {
		case errors.Is(err, scherr.ErrCanceled):
			res.Verdict = VerdictCanceled
			return res
		case errors.Is(err, scherr.ErrInfeasible):
			// A tenant that cannot run under its quota is an expected
			// corpus outcome: the generator probes the quota frontier.
			res.Verdict = VerdictInfeasible
			return res
		default:
			return fail(res, "error:tenant", err)
		}
	}

	if plan.MaxLag > plan.LagBound() {
		return fail(res, SigTenant+":lag", fmt.Errorf(
			"interleaver reports lag %.0f over its own bound %.0f", plan.MaxLag, plan.LagBound()))
	}
	if err := verify.Fairness(mix.Base, plan.VerifyLanes(), plan.Order); err != nil {
		sig := SigTenant + ":fairness"
		var verr *verify.Error
		if errors.As(err, &verr) {
			sig = SigTenant + ":" + verr.Invariant
		}
		return fail(res, sig, err)
	}
	if err := tenant.SoloEquivalence(ctx, plan); err != nil {
		if errors.Is(err, scherr.ErrCanceled) {
			res.Verdict = VerdictCanceled
			return res
		}
		if errors.Is(err, scherr.ErrVerify) {
			return fail(res, SigTenant+":solo-equivalence", err)
		}
		return fail(res, "error:tenant", err)
	}

	res.CDSCycles = plan.Exec.TotalCycles
	res.Verdict = VerdictOK
	return res
}

// RunTenantMixes checks tenant mixes [0, cfg.N) of cfg.Seed's stream
// across a bounded worker pool, mirroring RunArrivals' result-ordering
// contract. Mixes are not journaled — the oracle re-runs whole.
func RunTenantMixes(ctx context.Context, cfg Config, onResult func(Result)) ([]Result, error) {
	results := make([]Result, cfg.N)
	for i := range results {
		results[i] = Result{
			Name:    workloads.TenantMixName(cfg.Seed, i),
			Index:   i,
			Class:   "tenants",
			Verdict: VerdictCanceled,
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = conc.DefaultLimit()
	}
	_ = conc.ForEach(ctx, workers, cfg.N, func(i int) error {
		r := CheckTenantMix(ctx, cfg.Seed, i)
		if r.Verdict == VerdictCanceled {
			return nil
		}
		results[i] = r
		if onResult != nil {
			onResult(r)
		}
		return nil
	})
	return results, scherr.FromContext(ctx)
}
