package diffuzz

import (
	"context"
	"testing"
)

// The multi-tenant oracle over a slice of the mix corpus: no
// counterexamples, deterministic results, and at least one mix actually
// scheduled end to end.
func TestTenantOracleClean(t *testing.T) {
	cfg := Config{Seed: 9, N: 8}
	results, err := RunTenantMixes(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, r := range results {
		if r.Counterexample() {
			t.Errorf("%s: %s: %s", r.Name, r.Verdict, r.Detail)
		}
		if r.Verdict == VerdictOK {
			ok++
			if r.CDSCycles <= 0 {
				t.Errorf("%s: scheduled mix reports %d cycles", r.Name, r.CDSCycles)
			}
		}
	}
	if ok == 0 {
		t.Error("no tenant mix scheduled successfully")
	}

	again, err := RunTenantMixes(context.Background(), Config{Seed: 9, N: 8, Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != again[i] {
			t.Errorf("mix %d differs across runs: %+v vs %+v", i, results[i], again[i])
		}
	}
}

func TestCheckTenantMixCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := CheckTenantMix(ctx, 9, 0)
	if r.Verdict != VerdictCanceled {
		t.Errorf("verdict = %s, want canceled", r.Verdict)
	}
}
