// Package extmem lays out the application's data in external (off-chip)
// memory: every datum gets a contiguous region holding one instance per
// application iteration, so each (datum, iteration) pair has a concrete
// source/destination address. The code generator annotates its LDFB/STFB
// instructions with these addresses, completing the transfer picture (the
// FB side comes from the allocator, the external side from here).
package extmem

import (
	"fmt"
	"sort"

	"cds/internal/app"
)

// Map is the external memory layout for one application.
type Map struct {
	base  map[string]int
	size  map[string]int
	iters int
	total int
}

// Layout assigns addresses: data are placed in declaration order, each
// occupying size * iterations bytes. Intermediates that never touch
// external memory still get regions (the Basic Scheduler spills nothing,
// but a debugger wants stable addresses for everything).
func Layout(a *app.App) *Map {
	m := &Map{
		base:  make(map[string]int, len(a.Data)),
		size:  make(map[string]int, len(a.Data)),
		iters: a.Iterations,
	}
	addr := 0
	for _, d := range a.Data {
		m.base[d.Name] = addr
		m.size[d.Name] = d.Size
		addr += d.Size * a.Iterations
	}
	m.total = addr
	return m
}

// Addr returns the external address of one datum instance.
func (m *Map) Addr(datum string, absIter int) (int, error) {
	base, ok := m.base[datum]
	if !ok {
		return 0, fmt.Errorf("extmem: unknown datum %q", datum)
	}
	if absIter < 0 || absIter >= m.iters {
		return 0, fmt.Errorf("extmem: iteration %d out of range [0, %d)", absIter, m.iters)
	}
	return base + absIter*m.size[datum], nil
}

// Region returns the base address and per-instance size of a datum's
// region.
func (m *Map) Region(datum string) (base, size int, err error) {
	b, ok := m.base[datum]
	if !ok {
		return 0, 0, fmt.Errorf("extmem: unknown datum %q", datum)
	}
	return b, m.size[datum], nil
}

// Total returns the external memory footprint in bytes.
func (m *Map) Total() int { return m.total }

// Data returns the laid-out datum names sorted by base address.
func (m *Map) Data() []string {
	names := make([]string, 0, len(m.base))
	for n := range m.base {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return m.base[names[i]] < m.base[names[j]] })
	return names
}
