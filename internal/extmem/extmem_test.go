package extmem

import (
	"testing"

	"cds/internal/app"
	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/workloads"
)

func layoutApp(t *testing.T) *app.App {
	t.Helper()
	b := app.NewBuilder("lay", 3).
		Datum("a", 100).
		Datum("b", 50).
		Datum("out", 20)
	b.Kernel("k", 8, 10).In("a", "b").Out("out")
	return b.MustBuild()
}

func TestLayoutAddresses(t *testing.T) {
	a := layoutApp(t)
	m := Layout(a)
	// a: [0, 300); b: [300, 450); out: [450, 510).
	if m.Total() != 510 {
		t.Fatalf("Total = %d, want 510", m.Total())
	}
	tests := []struct {
		datum      string
		iter, want int
	}{
		{"a", 0, 0},
		{"a", 2, 200},
		{"b", 0, 300},
		{"b", 1, 350},
		{"out", 2, 490},
	}
	for _, tt := range tests {
		got, err := m.Addr(tt.datum, tt.iter)
		if err != nil {
			t.Fatalf("Addr(%s, %d): %v", tt.datum, tt.iter, err)
		}
		if got != tt.want {
			t.Errorf("Addr(%s, %d) = %d, want %d", tt.datum, tt.iter, got, tt.want)
		}
	}
	if _, err := m.Addr("ghost", 0); err == nil {
		t.Error("unknown datum accepted")
	}
	if _, err := m.Addr("a", 3); err == nil {
		t.Error("out-of-range iteration accepted")
	}
	if names := m.Data(); len(names) != 3 || names[0] != "a" || names[2] != "out" {
		t.Errorf("Data() = %v", names)
	}
	if base, size, err := m.Region("b"); err != nil || base != 300 || size != 50 {
		t.Errorf("Region(b) = %d,%d,%v", base, size, err)
	}
}

func TestAnnotateExternalOnRealSchedule(t *testing.T) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	m := Layout(e.Part.App)
	if err := codegen.AnnotateExternal(prog, s.RF, m); err != nil {
		t.Fatal(err)
	}
	// Every transfer instruction now has a valid external address, and
	// distinct iterations of a datum never collide.
	seen := map[int]string{}
	for _, in := range prog.Instrs {
		switch in.Op {
		case codegen.OpLdFB, codegen.OpStFB:
			if in.ExtAddr < 0 || in.ExtAddr+in.Bytes > m.Total() {
				t.Fatalf("%v: external region [%d, %d) out of [0, %d)", in, in.ExtAddr, in.ExtAddr+in.Bytes, m.Total())
			}
			if prev, ok := seen[in.ExtAddr]; ok && prev != in.Datum {
				t.Fatalf("external address %d used by both %s and %s", in.ExtAddr, prev, in.Datum)
			}
			seen[in.ExtAddr] = in.Datum
		}
	}
	if len(seen) == 0 {
		t.Fatal("no transfers annotated")
	}
}
