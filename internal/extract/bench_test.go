package extract

import (
	"math/rand"
	"testing"
)

// BenchmarkAnalyze measures the information extractor on randomized
// applications.
func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(randomPartition(rng))
	}
}

// BenchmarkAnalyzeCrossSet measures the extended sharing analysis.
func BenchmarkAnalyzeCrossSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AnalyzeWithOpts(randomPartition(rng), Opts{CrossSetReuse: true})
	}
}
