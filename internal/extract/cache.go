package extract

// The analysis cache memoizes AnalyzeWithOpts results so the three
// schedulers, every RF-sweep variant and every point of a frame-buffer
// sweep share ONE Info per (partition, Opts) pair instead of re-deriving
// it. An Info is immutable after Analyze returns — nothing in this module
// writes to it — which is what makes sharing it across goroutines safe;
// the race-detector tests in cds exercise exactly that.
//
// The key is the partition's content fingerprint (app.Partition.
// Fingerprint): a deterministic hash over the canonical spec. Two
// structurally identical partitions — same app, same cluster split,
// regardless of where or how they were built — share one cache entry.
// Analysis is a pure function of the spec, so content addressing is
// sound where the previous pointer-identity key merely happened to work.

import (
	"container/list"
	"expvar"
	"sync"
	"sync/atomic"

	"cds/internal/app"
)

// cacheKey identifies one analysis: the partition's content fingerprint
// plus the extractor options (Opts is a comparable struct).
type cacheKey struct {
	fp   [32]byte
	opts Opts
}

// cacheEntry carries the memoized Info behind a sync.Once so concurrent
// first callers of the same key share a single computation
// (singleflight) instead of racing to analyze N times.
type cacheEntry struct {
	once sync.Once
	info *Info
}

// analysisCache is a bounded memoization table with FIFO eviction. The
// bound keeps long-lived processes that sweep over many generated
// partitions from pinning every partition ever analyzed.
type analysisCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	order   *list.List // of cacheKey, oldest first

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// defaultCacheSize is generous for any realistic design-space run: a
// sweep touches one partition per workload, not thousands.
const defaultCacheSize = 512

var cache = &analysisCache{
	max:     defaultCacheSize,
	entries: make(map[cacheKey]*cacheEntry),
	order:   list.New(),
}

func init() {
	// One process-wide snapshot under /debug/vars; expvar.Publish panics
	// on duplicate names, so this must happen exactly once (package init).
	expvar.Publish("extract.analysis_cache", expvar.Func(func() any {
		hits, misses, evictions := CacheStats()
		return map[string]int64{
			"hits":      hits,
			"misses":    misses,
			"evictions": evictions,
			"entries":   int64(CacheLen()),
		}
	}))
}

func (c *analysisCache) get(p *app.Partition, opts Opts) *Info {
	key := cacheKey{p.Fingerprint(), opts}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		e = &cacheEntry{}
		c.entries[key] = e
		c.order.PushBack(key)
		for c.order.Len() > c.max {
			oldest := c.order.Remove(c.order.Front()).(cacheKey)
			delete(c.entries, oldest)
			c.evictions.Add(1)
		}
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	// Compute outside the lock: other keys proceed concurrently, and
	// concurrent callers of THIS key block only on its Once.
	e.once.Do(func() { e.info = AnalyzeWithOpts(p, opts) })
	return e.info
}

// AnalyzeCached returns the memoized analysis for the partition under the
// given options, computing it at most once per (fingerprint, Opts) pair.
// The returned Info is shared: treat it as read-only (every Info already
// is — see the package comment above).
func AnalyzeCached(p *app.Partition, opts Opts) *Info {
	return cache.get(p, opts)
}

// CacheLen reports how many analyses are currently memoized (tests).
func CacheLen() int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return len(cache.entries)
}

// CacheStats reports cumulative hit/miss/eviction counts. Also exported
// to expvar as "extract.analysis_cache".
func CacheStats() (hits, misses, evictions int64) {
	return cache.hits.Load(), cache.misses.Load(), cache.evictions.Load()
}
