package extract

import (
	"container/list"
	"fmt"
	"sync"
	"testing"

	"cds/internal/app"
)

func cachePart(t testing.TB, name string) *app.Partition {
	t.Helper()
	b := app.NewBuilder(name, 4).
		Datum("in", 100).
		Datum("mid", 40).
		Datum("out", 20)
	b.Kernel("ka", 16, 100).In("in").Out("mid")
	b.Kernel("kb", 16, 100).In("mid").Out("out")
	return app.MustPartition(b.MustBuild(), 2, 1, 1)
}

func TestAnalyzeCachedMemoizes(t *testing.T) {
	p := cachePart(t, "memo")
	a := AnalyzeCached(p, Opts{})
	b := AnalyzeCached(p, Opts{})
	if a != b {
		t.Error("same (partition, opts) produced distinct Infos")
	}
	// Different options are a different analysis.
	c := AnalyzeCached(p, Opts{CrossSetReuse: true})
	if c == a {
		t.Error("CrossSetReuse shares the same-set analysis")
	}
	// A different partition of the same shape is a different key.
	q := cachePart(t, "memo2")
	if AnalyzeCached(q, Opts{}) == a {
		t.Error("distinct partitions share one Info")
	}
	// The memoized result matches a fresh analysis structurally.
	fresh := AnalyzeWithOpts(p, Opts{})
	if len(a.Clusters) != len(fresh.Clusters) || a.TDS != fresh.TDS ||
		len(a.SharedData) != len(fresh.SharedData) || len(a.SharedResults) != len(fresh.SharedResults) {
		t.Error("cached Info differs from a fresh analysis")
	}
}

// TestAnalyzeCachedSingleflight checks concurrent first callers share
// one computation and one result. Run under -race this also proves the
// cache (and the shared Info) is safe to hit from many goroutines.
func TestAnalyzeCachedSingleflight(t *testing.T) {
	p := cachePart(t, "flight")
	const goroutines = 16
	results := make([]*Info, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = AnalyzeCached(p, Opts{})
			// Read through the Info the way schedulers do, so the
			// race detector sees concurrent shared reads.
			for _, ci := range results[g].Clusters {
				_ = ci.ExternalInBytes(p.App)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different Info", g)
		}
	}
}

// TestCacheEviction exercises the FIFO bound on a small private cache:
// old entries fall out, the table never exceeds max.
func TestCacheEviction(t *testing.T) {
	c := &analysisCache{
		max:     2,
		entries: make(map[cacheKey]*cacheEntry),
		order:   list.New(),
	}
	parts := make([]*app.Partition, 4)
	infos := make([]*Info, 4)
	for i := range parts {
		parts[i] = cachePart(t, fmt.Sprintf("evict%d", i))
		infos[i] = c.get(parts[i], Opts{})
	}
	if n := len(c.entries); n != 2 {
		t.Fatalf("cache holds %d entries, want max 2", n)
	}
	// The two oldest were evicted: re-getting computes a fresh Info.
	if c.get(parts[0], Opts{}) == infos[0] {
		t.Error("evicted entry still memoized")
	}
	// The newest survives: same pointer comes back.
	if c.get(parts[3], Opts{}) != infos[3] {
		t.Error("resident entry recomputed")
	}
}

// TestAnalyzeCachedContentKey: the cache keys on the content
// fingerprint, so two structurally identical partitions — distinct
// pointers, same spec — share ONE entry and one Info.
func TestAnalyzeCachedContentKey(t *testing.T) {
	p := cachePart(t, "content-key")
	q := cachePart(t, "content-key")
	if p == q {
		t.Fatal("want distinct partition pointers")
	}
	before := CacheLen()
	h0, _, _ := CacheStats()
	a := AnalyzeCached(p, Opts{})
	b := AnalyzeCached(q, Opts{})
	if a != b {
		t.Error("structurally identical partitions did not share one Info")
	}
	if grown := CacheLen() - before; grown > 1 {
		t.Errorf("two identical partitions grew the cache by %d entries, want <= 1", grown)
	}
	if h1, _, _ := CacheStats(); h1 != h0+1 {
		t.Errorf("hit counter moved %d, want exactly 1 (second partition is a content hit)", h1-h0)
	}
}
