// Package extract is the "information extractor" of the MorphoSys
// compilation framework: from an application and its cluster partition it
// derives everything the data schedulers consume — the per-kernel data
// classification of the ISSS'01 Data Scheduler (d_j, rout_j, r_jt), the
// per-cluster external inputs and persistent results, and the
// inter-cluster sharing structures of the Complete Data Scheduler
// (shared data D_i..j and shared results R_i,j..k restricted to clusters
// on the same Frame Buffer set).
package extract

import (
	"sort"

	"cds/internal/app"
)

// Role describes how one datum is used relative to one cluster.
type Role int

const (
	// RoleExternalInput: consumed by the cluster, produced outside it.
	RoleExternalInput Role = iota
	// RoleIntermediate: produced and fully consumed inside the cluster.
	RoleIntermediate
	// RolePersistentResult: produced by the cluster and needed after it
	// ends (final result or consumed by a later cluster).
	RolePersistentResult
)

// KernelClass is the Data Scheduler's view of one kernel within its
// cluster, following the paper's notation.
type KernelClass struct {
	// Kernel is the index into App.Kernels.
	Kernel int
	// D lists the cluster-external inputs whose last consumer inside
	// the cluster is this kernel (the paper's d_j: inputs of k_j except
	// those shared with later kernels of the cluster).
	D []string
	// Rout lists the outputs of this kernel that persist past the
	// cluster's end: final results and results consumed by later
	// clusters (the paper's rout_j).
	Rout []string
	// R maps each intermediate output of this kernel to the index of
	// its last consuming kernel inside the cluster (the paper's r_jt:
	// result of k_j that is data for k_t and no kernel after k_t).
	R map[string]int
}

// DBytes returns the total size of D.
func (kc KernelClass) DBytes(a *app.App) int { return sumSizes(a, kc.D) }

// RoutBytes returns the total size of Rout.
func (kc KernelClass) RoutBytes(a *app.App) int { return sumSizes(a, kc.Rout) }

// ClusterInfo aggregates the extractor's results for one cluster.
type ClusterInfo struct {
	Cluster app.Cluster
	// ExternalIn lists every datum consumed by the cluster but produced
	// outside it (application inputs and earlier clusters' results), in
	// deterministic (first-use) order.
	ExternalIn []string
	// PersistentOut lists every datum produced by the cluster that must
	// survive it (final results and inputs of later clusters).
	PersistentOut []string
	// Intermediates lists data produced and fully consumed inside the
	// cluster.
	Intermediates []string
	// PerKernel holds one KernelClass per kernel, in execution order.
	PerKernel []KernelClass
}

// ExternalInBytes returns the total size of ExternalIn.
func (ci ClusterInfo) ExternalInBytes(a *app.App) int { return sumSizes(a, ci.ExternalIn) }

// PersistentOutBytes returns the total size of PersistentOut.
func (ci ClusterInfo) PersistentOutBytes(a *app.App) int { return sumSizes(a, ci.PersistentOut) }

// SharedDatum is the paper's D_i..j: an external-input datum consumed by
// two or more clusters assigned to the same FB set. Keeping it in the FB
// saves N-1 loads per iteration.
type SharedDatum struct {
	Name string
	Size int
	// Set is the FB set shared use happens on.
	Set int
	// Clusters lists the consuming clusters on Set, ascending. N is its
	// length.
	Clusters []int
}

// N returns the number of clusters using the datum.
func (sd SharedDatum) N() int { return len(sd.Clusters) }

// Span returns the first and last cluster index the datum must stay
// resident for if retained.
func (sd SharedDatum) Span() (from, to int) {
	return sd.Clusters[0], sd.Clusters[len(sd.Clusters)-1]
}

// SharedResult is the paper's R_i,j..k: a result of cluster i consumed by
// later clusters on the same FB set. Keeping it in the FB saves the store
// after cluster i plus one load per consuming cluster (N+1 transfers for a
// non-final result).
type SharedResult struct {
	Name string
	Size int
	Set  int
	// Producer is the cluster that writes the result.
	Producer int
	// Consumers lists the consuming clusters on Set, ascending; all are
	// greater than Producer. N is its length.
	Consumers []int
	// Final marks results that must be stored to external memory even
	// if retained (the store cannot be avoided, only the reloads).
	Final bool
	// CrossSetConsumed marks results also consumed by clusters on the
	// OTHER FB set; those consumers read from external memory, so the
	// store cannot be avoided by same-set retention either.
	CrossSetConsumed bool
}

// StoreAvoidable reports whether retaining the result eliminates its store
// to external memory (false when the result is final or has cross-set
// consumers).
func (sr SharedResult) StoreAvoidable() bool { return !sr.Final && !sr.CrossSetConsumed }

// N returns the number of clusters consuming the result.
func (sr SharedResult) N() int { return len(sr.Consumers) }

// Span returns the first and last cluster index the result must stay
// resident for if retained.
func (sr SharedResult) Span() (from, to int) {
	return sr.Producer, sr.Consumers[len(sr.Consumers)-1]
}

// Info is the full extractor output for one partitioned application.
type Info struct {
	P *app.Partition
	// Clusters holds one ClusterInfo per cluster, in execution order.
	Clusters []ClusterInfo
	// SharedData and SharedResults list the inter-cluster reuse
	// opportunities on each FB set, in deterministic order.
	SharedData    []SharedDatum
	SharedResults []SharedResult
	// TDS is the paper's total data and result size per iteration.
	TDS int

	// walks holds the compiled per-cluster footprint walks (see
	// walk.go); nil for hand-assembled Infos.
	walks []FootprintWalk
}

// Opts tunes the extractor.
type Opts struct {
	// CrossSetReuse lifts the same-FB-set restriction on sharing
	// detection: data and results shared among clusters on DIFFERENT
	// sets become retention candidates too. This models the paper's
	// future-work architecture in which the RC array can read both FB
	// sets; the retained object still lives in one home set (the first
	// consumer's / the producer's).
	CrossSetReuse bool
}

// Analyze runs the extractor over a partitioned application with the
// paper's same-set sharing rule.
func Analyze(p *app.Partition) *Info {
	return AnalyzeWithOpts(p, Opts{})
}

// AnalyzeWithOpts runs the extractor with explicit options.
func AnalyzeWithOpts(p *app.Partition, opts Opts) *Info {
	a := p.App
	info := &Info{P: p, TDS: a.TotalDataBytes()}

	producerCluster := make(map[string]int) // datum -> producing cluster
	for _, d := range a.Data {
		if ki, ok := a.Producer(d.Name); ok {
			producerCluster[d.Name] = p.ClusterOf(ki)
		}
	}
	consumerClusters := func(name string) []int {
		seen := map[int]bool{}
		var cs []int
		for _, ki := range a.Consumers(name) {
			c := p.ClusterOf(ki)
			if !seen[c] {
				seen[c] = true
				cs = append(cs, c)
			}
		}
		sort.Ints(cs)
		return cs
	}

	for _, c := range p.Clusters {
		info.Clusters = append(info.Clusters, analyzeCluster(a, p, c, producerCluster))
	}

	// Inter-cluster shared data: external inputs (no producing kernel)
	// consumed by >= 2 clusters on one set — or on any set with
	// CrossSetReuse, homed on the first consumer's set.
	for _, d := range a.Data {
		if !a.IsExternalInput(d.Name) {
			continue
		}
		if opts.CrossSetReuse {
			cs := consumerClusters(d.Name)
			if len(cs) >= 2 {
				info.SharedData = append(info.SharedData, SharedDatum{
					Name: d.Name, Size: d.Size,
					Set: p.Clusters[cs[0]].Set, Clusters: cs,
				})
			}
			continue
		}
		bySet := map[int][]int{}
		for _, c := range consumerClusters(d.Name) {
			set := p.Clusters[c].Set
			bySet[set] = append(bySet[set], c)
		}
		for _, set := range sortedKeys(bySet) {
			cs := bySet[set]
			if len(cs) >= 2 {
				info.SharedData = append(info.SharedData, SharedDatum{
					Name: d.Name, Size: d.Size, Set: set, Clusters: cs,
				})
			}
		}
	}

	// Inter-cluster shared results: produced in cluster i, consumed by
	// later clusters on the same set as i (any set with CrossSetReuse).
	for _, d := range a.Data {
		pc, produced := producerCluster[d.Name]
		if !produced {
			continue
		}
		set := p.Clusters[pc].Set
		var reachable []int
		crossSet := false
		for _, c := range consumerClusters(d.Name) {
			switch {
			case c == pc:
			case p.Clusters[c].Set == set || opts.CrossSetReuse:
				reachable = append(reachable, c)
			default:
				crossSet = true
			}
		}
		if len(reachable) >= 1 {
			info.SharedResults = append(info.SharedResults, SharedResult{
				Name: d.Name, Size: d.Size, Set: set,
				Producer: pc, Consumers: reachable,
				Final:            a.IsFinalResult(d.Name),
				CrossSetConsumed: crossSet,
			})
		}
	}
	info.compileWalks()
	return info
}

func analyzeCluster(a *app.App, p *app.Partition, c app.Cluster, producerCluster map[string]int) ClusterInfo {
	ci := ClusterInfo{Cluster: c}
	inCluster := func(ki int) bool { return c.Contains(ki) }

	// lastUseIn maps a datum to the last kernel inside the cluster that
	// consumes it, or -1.
	lastUseIn := func(name string) int {
		last := -1
		for _, ki := range a.Consumers(name) {
			if inCluster(ki) && ki > last {
				last = ki
			}
		}
		return last
	}
	// usedLater reports whether the datum is consumed by a kernel of a
	// later cluster.
	usedLater := func(name string) bool {
		for _, ki := range a.Consumers(name) {
			if p.ClusterOf(ki) > c.Index {
				return true
			}
		}
		return false
	}

	seenIn := map[string]bool{}
	for _, ki := range c.Kernels {
		kc := KernelClass{Kernel: ki, R: map[string]int{}}
		k := a.Kernels[ki]
		seenHere := map[string]bool{}
		for _, in := range k.Inputs {
			if seenHere[in] {
				continue // a kernel may list an operand twice
			}
			seenHere[in] = true
			pk, produced := a.Producer(in)
			external := !produced || !inCluster(pk)
			if external && !seenIn[in] {
				seenIn[in] = true
				ci.ExternalIn = append(ci.ExternalIn, in)
			}
			// d_j attribution: the LAST in-cluster consumer owns
			// the datum (earlier consumers share it forward).
			if external && lastUseIn(in) == ki {
				kc.D = append(kc.D, in)
			}
		}
		for _, out := range k.Outputs {
			persistent := a.IsFinalResult(out) || usedLater(out)
			if persistent {
				kc.Rout = append(kc.Rout, out)
				ci.PersistentOut = append(ci.PersistentOut, out)
				continue
			}
			last := lastUseIn(out)
			if last >= 0 {
				kc.R[out] = last
				ci.Intermediates = append(ci.Intermediates, out)
			} else {
				// Produced, never consumed, not final: cannot
				// happen after app validation (no consumers =>
				// final), but keep it persistent to be safe.
				kc.Rout = append(kc.Rout, out)
				ci.PersistentOut = append(ci.PersistentOut, out)
			}
		}
		ci.PerKernel = append(ci.PerKernel, kc)
	}
	return ci
}

func sumSizes(a *app.App, names []string) int {
	sum := 0
	for _, n := range names {
		sum += a.SizeOf(n)
	}
	return sum
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
