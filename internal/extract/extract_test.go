package extract

import (
	"reflect"
	"testing"

	"cds/internal/app"
)

// testApp builds the paper's running example shape: five kernels in two
// clusters Cl1={k1,k2} (set 0) and Cl2={k3,k4,k5} (set 1), plus a third
// cluster on set 0 again to exercise same-set sharing.
//
//	in1 -> k1 -> m12 -> k2 -> r2(out to cluster 2)
//	in1 also read by k5 (cluster 2: different set, no SharedDatum)
//	inA read by k1 and k6 (cluster 3: same set 0 => SharedDatum)
//	r2 read by k3 (cluster 2, set 1: cross-set, not a same-set SharedResult)
//	rB produced by k2 (cluster 1, set 0), read by k6 (cluster 3, set 0)
//	  => SharedResult
func testPartition(t *testing.T) (*app.App, *app.Partition) {
	t.Helper()
	b := app.NewBuilder("ex", 8).
		Datum("in1", 100).
		Datum("inA", 50).
		Datum("m12", 30).
		Datum("r2", 40).
		Datum("rB", 20).
		Datum("m34", 10).
		Datum("out5", 60).
		Datum("out6", 70)
	b.Kernel("k1", 16, 100).In("in1", "inA").Out("m12")
	b.Kernel("k2", 16, 100).In("m12").Out("r2", "rB")
	b.Kernel("k3", 16, 100).In("r2").Out("m34")
	b.Kernel("k4", 16, 100).In("m34").Out()
	b.Kernel("k5", 16, 100).In("in1").Out("out5")
	b.Kernel("k6", 16, 100).In("inA", "rB").Out("out6")
	a := b.MustBuild()
	p := app.MustPartition(a, 2, 2, 3, 1)
	return a, p
}

func TestAnalyzeClusterRoles(t *testing.T) {
	_, p := testPartition(t)
	info := Analyze(p)
	if len(info.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(info.Clusters))
	}

	c0 := info.Clusters[0]
	if !reflect.DeepEqual(c0.ExternalIn, []string{"in1", "inA"}) {
		t.Errorf("c0 ExternalIn = %v, want [in1 inA]", c0.ExternalIn)
	}
	// r2 and rB persist (consumed by later clusters); m12 is an
	// intermediate k1->k2.
	if !reflect.DeepEqual(c0.PersistentOut, []string{"r2", "rB"}) {
		t.Errorf("c0 PersistentOut = %v, want [r2 rB]", c0.PersistentOut)
	}
	if !reflect.DeepEqual(c0.Intermediates, []string{"m12"}) {
		t.Errorf("c0 Intermediates = %v, want [m12]", c0.Intermediates)
	}
	// d_j attribution: k1 is the last in-cluster consumer of in1 and inA.
	if !reflect.DeepEqual(c0.PerKernel[0].D, []string{"in1", "inA"}) {
		t.Errorf("k1 D = %v, want [in1 inA]", c0.PerKernel[0].D)
	}
	if got := c0.PerKernel[0].R["m12"]; got != 1 {
		t.Errorf("k1 R[m12] = %d, want last consumer k2 (index 1)", got)
	}
	if !reflect.DeepEqual(c0.PerKernel[1].Rout, []string{"r2", "rB"}) {
		t.Errorf("k2 Rout = %v, want [r2 rB]", c0.PerKernel[1].Rout)
	}

	// Cluster 2 (set 1): r2 is an external input even though another
	// cluster produced it.
	c1 := info.Clusters[1]
	if !reflect.DeepEqual(c1.ExternalIn, []string{"r2", "in1"}) {
		t.Errorf("c1 ExternalIn = %v, want [r2 in1]", c1.ExternalIn)
	}
	if !reflect.DeepEqual(c1.Intermediates, []string{"m34"}) {
		t.Errorf("c1 Intermediates = %v, want [m34]", c1.Intermediates)
	}
	if !reflect.DeepEqual(c1.PersistentOut, []string{"out5"}) {
		t.Errorf("c1 PersistentOut = %v, want [out5]", c1.PersistentOut)
	}
}

func TestAnalyzeSharedData(t *testing.T) {
	_, p := testPartition(t)
	info := Analyze(p)

	// inA: clusters 0 and 2, both set 0 => shared datum, N=2.
	// in1: clusters 0 (set 0) and 1 (set 1) => different sets, NOT shared.
	if len(info.SharedData) != 1 {
		t.Fatalf("SharedData = %+v, want exactly one entry (inA)", info.SharedData)
	}
	sd := info.SharedData[0]
	if sd.Name != "inA" || sd.Set != 0 || !reflect.DeepEqual(sd.Clusters, []int{0, 2}) {
		t.Errorf("SharedData[0] = %+v, want inA on set 0 in clusters [0 2]", sd)
	}
	if sd.N() != 2 {
		t.Errorf("N = %d, want 2", sd.N())
	}
	if from, to := sd.Span(); from != 0 || to != 2 {
		t.Errorf("Span = %d..%d, want 0..2", from, to)
	}
}

func TestAnalyzeSharedResults(t *testing.T) {
	_, p := testPartition(t)
	info := Analyze(p)

	// rB: produced cluster 0 (set 0), consumed cluster 2 (set 0) =>
	// shared result. r2: produced cluster 0 (set 0), consumed cluster 1
	// (set 1) => cross-set, excluded.
	if len(info.SharedResults) != 1 {
		t.Fatalf("SharedResults = %+v, want exactly one entry (rB)", info.SharedResults)
	}
	sr := info.SharedResults[0]
	if sr.Name != "rB" || sr.Producer != 0 || !reflect.DeepEqual(sr.Consumers, []int{2}) {
		t.Errorf("SharedResults[0] = %+v, want rB produced by 0 consumed by [2]", sr)
	}
	if sr.Final {
		t.Error("rB is fully consumed: not final")
	}
	if from, to := sr.Span(); from != 0 || to != 2 {
		t.Errorf("Span = %d..%d, want 0..2", from, to)
	}
}

func TestAnalyzeFinalSharedResult(t *testing.T) {
	// A result consumed by a later same-set cluster AND marked final
	// must carry Final=true (its store cannot be avoided by retention).
	b := app.NewBuilder("fin", 2).
		Datum("in", 10)
	b.FinalDatum("r", 20)
	b.Datum("out", 5)
	b.Kernel("k1", 4, 10).In("in").Out("r")
	b.Kernel("k2", 4, 10).In("in")
	b.Kernel("k3", 4, 10).In("r").Out("out")
	a := b.MustBuild()
	p := app.MustPartition(a, 2, 1, 1, 1) // k1 set0, k2 set1, k3 set0
	info := Analyze(p)
	if len(info.SharedResults) != 1 || !info.SharedResults[0].Final {
		t.Fatalf("SharedResults = %+v, want one Final entry for r", info.SharedResults)
	}
}

func TestAnalyzeTDS(t *testing.T) {
	a, p := testPartition(t)
	info := Analyze(p)
	if info.TDS != a.TotalDataBytes() {
		t.Errorf("TDS = %d, want %d", info.TDS, a.TotalDataBytes())
	}
}

func TestDAttributionToLastConsumer(t *testing.T) {
	// Datum consumed by two kernels of the same cluster must be charged
	// to the later one only.
	b := app.NewBuilder("d2", 1).
		Datum("x", 100).
		Datum("o1", 1).
		Datum("o2", 1)
	b.Kernel("k1", 4, 10).In("x").Out("o1")
	b.Kernel("k2", 4, 10).In("x").Out("o2")
	a := b.MustBuild()
	p := app.MustPartition(a, 2, 2)
	info := Analyze(p)
	c := info.Clusters[0]
	if len(c.PerKernel[0].D) != 0 {
		t.Errorf("k1 D = %v, want empty (x shared with later kernel)", c.PerKernel[0].D)
	}
	if !reflect.DeepEqual(c.PerKernel[1].D, []string{"x"}) {
		t.Errorf("k2 D = %v, want [x]", c.PerKernel[1].D)
	}
	if got := c.ExternalInBytes(a); got != 100 {
		t.Errorf("ExternalInBytes = %d, want 100 (x counted once)", got)
	}
}

func TestByteHelpers(t *testing.T) {
	a, p := testPartition(t)
	info := Analyze(p)
	c0 := info.Clusters[0]
	if got := c0.ExternalInBytes(a); got != 150 {
		t.Errorf("c0 ExternalInBytes = %d, want 150", got)
	}
	if got := c0.PersistentOutBytes(a); got != 60 {
		t.Errorf("c0 PersistentOutBytes = %d, want 60 (r2+rB)", got)
	}
	if got := c0.PerKernel[0].DBytes(a); got != 150 {
		t.Errorf("k1 DBytes = %d, want 150", got)
	}
	if got := c0.PerKernel[1].RoutBytes(a); got != 60 {
		t.Errorf("k2 RoutBytes = %d, want 60", got)
	}
}
