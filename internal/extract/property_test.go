package extract

import (
	"math/rand"
	"testing"

	"cds/internal/app"
)

// randomPartition generates a random valid partitioned application.
func randomPartition(rng *rand.Rand) *app.Partition {
	nk := 2 + rng.Intn(8)
	b := app.NewBuilder("prop", 1+rng.Intn(6))
	// External inputs; no more than kernels, so each gets a consumer.
	nIn := 1 + rng.Intn(4)
	if nIn > nk {
		nIn = nk
	}
	for i := 0; i < nIn; i++ {
		b.Datum(name("in", i), 10+rng.Intn(200))
	}
	for k := 0; k < nk; k++ {
		b.Datum(name("r", k), 10+rng.Intn(200))
	}
	for k := 0; k < nk; k++ {
		kb := b.Kernel(name("k", k), 8+rng.Intn(64), 50+rng.Intn(200))
		// A guaranteed input keeps every datum attached; extra inputs
		// are random external or earlier-result reads.
		kb.In(name("in", k%nIn))
		for n := 0; n < rng.Intn(3); n++ {
			if k > 0 && rng.Intn(2) == 0 {
				kb.In(name("r", rng.Intn(k)))
			} else {
				kb.In(name("in", rng.Intn(nIn)))
			}
		}
		kb.Out(name("r", k))
	}
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	// Random contiguous partition.
	var sizes []int
	left := nk
	for left > 0 {
		s := 1 + rng.Intn(left)
		sizes = append(sizes, s)
		left -= s
	}
	return app.MustPartition(a, 2, sizes...)
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// TestPropertyDPartition: within each cluster, the per-kernel D lists
// partition the cluster's external inputs — every external input appears
// in exactly one kernel's D (its last in-cluster consumer).
func TestPropertyDPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := randomPartition(rng)
		info := Analyze(p)
		for _, ci := range info.Clusters {
			counts := map[string]int{}
			for _, kc := range ci.PerKernel {
				for _, d := range kc.D {
					counts[d]++
				}
			}
			if len(counts) != len(ci.ExternalIn) {
				t.Fatalf("trial %d cluster %d: D covers %d data, ExternalIn has %d",
					trial, ci.Cluster.Index, len(counts), len(ci.ExternalIn))
			}
			for _, in := range ci.ExternalIn {
				if counts[in] != 1 {
					t.Fatalf("trial %d cluster %d: %q appears %d times in D lists",
						trial, ci.Cluster.Index, in, counts[in])
				}
			}
		}
	}
}

// TestPropertyOutputClassification: every kernel output is exactly one of
// persistent or intermediate within its cluster.
func TestPropertyOutputClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		p := randomPartition(rng)
		info := Analyze(p)
		a := p.App
		for _, ci := range info.Clusters {
			persistent := map[string]bool{}
			for _, o := range ci.PersistentOut {
				persistent[o] = true
			}
			intermediate := map[string]bool{}
			for _, o := range ci.Intermediates {
				intermediate[o] = true
			}
			for _, ki := range ci.Cluster.Kernels {
				for _, out := range a.Kernels[ki].Outputs {
					if persistent[out] == intermediate[out] {
						t.Fatalf("trial %d: output %q classified persistent=%v intermediate=%v",
							trial, out, persistent[out], intermediate[out])
					}
				}
			}
		}
	}
}

// TestPropertySharedSpansValid: every shared datum/result span lies within
// cluster bounds, consumers are sorted and on the declared set, and the
// cross-set analysis is a superset of the same-set one.
func TestPropertySharedSpansValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		p := randomPartition(rng)
		same := Analyze(p)
		cross := AnalyzeWithOpts(p, Opts{CrossSetReuse: true})

		for _, sd := range same.SharedData {
			for _, c := range sd.Clusters {
				if p.Clusters[c].Set != sd.Set {
					t.Fatalf("trial %d: shared datum %q lists cluster %d off its set", trial, sd.Name, c)
				}
			}
			from, to := sd.Span()
			if from > to || to >= len(p.Clusters) {
				t.Fatalf("trial %d: bad span %d..%d", trial, from, to)
			}
		}
		for _, sr := range same.SharedResults {
			for _, c := range sr.Consumers {
				if c <= sr.Producer {
					t.Fatalf("trial %d: result %q consumed at %d before producer %d",
						trial, sr.Name, c, sr.Producer)
				}
			}
		}
		// Cross-set coverage dominates: every (datum, cluster) pair the
		// same-set analysis found is also covered cross-set (entries for
		// the two sets merge into one there, so counts may differ).
		crossCover := map[string]map[int]bool{}
		for _, sd := range cross.SharedData {
			m := crossCover[sd.Name]
			if m == nil {
				m = map[int]bool{}
				crossCover[sd.Name] = m
			}
			for _, c := range sd.Clusters {
				m[c] = true
			}
		}
		for _, sd := range same.SharedData {
			for _, c := range sd.Clusters {
				if !crossCover[sd.Name][c] {
					t.Fatalf("trial %d: cross-set lost coverage of %q at cluster %d", trial, sd.Name, c)
				}
			}
		}
		crossRes := map[string]map[int]bool{}
		for _, sr := range cross.SharedResults {
			m := crossRes[sr.Name]
			if m == nil {
				m = map[int]bool{}
				crossRes[sr.Name] = m
			}
			for _, c := range sr.Consumers {
				m[c] = true
			}
		}
		for _, sr := range same.SharedResults {
			for _, c := range sr.Consumers {
				if !crossRes[sr.Name][c] {
					t.Fatalf("trial %d: cross-set lost result coverage of %q at cluster %d", trial, sr.Name, c)
				}
			}
		}
	}
}

// TestPropertyExternalInBytes: the sum of per-kernel D bytes equals the
// cluster's external input bytes.
func TestPropertyExternalInBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		p := randomPartition(rng)
		info := Analyze(p)
		for _, ci := range info.Clusters {
			sum := 0
			for _, kc := range ci.PerKernel {
				sum += kc.DBytes(p.App)
			}
			if sum != ci.ExternalInBytes(p.App) {
				t.Fatalf("trial %d: D bytes %d != ExternalIn bytes %d",
					trial, sum, ci.ExternalInBytes(p.App))
			}
		}
	}
}
