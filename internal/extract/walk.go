package extract

// Compiled footprint walks. The schedulers evaluate the paper's DS(C)
// footprint model O(candidates² × clusters) times while selecting a
// retention set; deriving the walk order from strings and maps on every
// evaluation dominated their profile. The extractor therefore compiles,
// once per analysis, a per-cluster walk over interned datum IDs that the
// core footprint engine replays against epoch-stamped scratch arrays —
// no map, no string hash, no allocation per evaluation.

// FootprintStep is one kernel's effect on the resident set, in interned
// datum IDs.
type FootprintStep struct {
	// StreamIn lists the kernel's streamed inputs: they arrive just in
	// time for this kernel instead of before the cluster starts. May
	// repeat IDs (a kernel may list an operand twice); the walker
	// dedupes against the live set.
	StreamIn []int32
	// Out lists the kernel's outputs, which materialize while its
	// inputs are still resident.
	Out []int32
	// Release lists the objects whose last in-cluster use is this
	// kernel: external inputs owned by it (the paper's d_j) and
	// intermediates it is the last consumer of. Applied only under
	// InPlaceRelease, and never to pinned or remote objects.
	Release []int32
}

// FootprintWalk is the compiled footprint model of one cluster.
type FootprintWalk struct {
	// Preload lists the non-streamed external inputs resident before
	// the cluster starts, in first-use order.
	Preload []int32
	// Produced lists every datum written by the cluster's kernels.
	// Pinned objects produced here materialize at their producing
	// kernel, not at cluster start.
	Produced []int32
	// Steps holds one entry per cluster kernel, in execution order.
	Steps []FootprintStep
}

// Walk returns cluster c's compiled walk, or nil for hand-assembled
// Infos that never went through AnalyzeWithOpts (callers fall back to
// the string-keyed model).
func (info *Info) Walk(c int) *FootprintWalk {
	if info.walks == nil {
		return nil
	}
	return &info.walks[c]
}

// compileWalks builds the per-cluster walks from the finished analysis.
func (info *Info) compileWalks() {
	a := info.P.App
	if !a.Finalized() {
		// Unfinalized hand-assembled App: no interned tables. Leave
		// walks nil; footprint evaluation takes the string path.
		return
	}
	info.walks = make([]FootprintWalk, len(info.Clusters))
	for c := range info.Clusters {
		ci := &info.Clusters[c]
		w := &info.walks[c]

		for _, name := range ci.ExternalIn {
			if !a.IsStreamed(name) {
				w.Preload = append(w.Preload, int32(a.DatumID(name)))
			}
		}
		for _, ki := range ci.Cluster.Kernels {
			w.Produced = append(w.Produced, a.KernelOutputIDs(ki)...)
		}

		// releaseAt maps an app kernel index to the IDs released after
		// it: the kernel's own d_j plus every intermediate whose last
		// in-cluster consumer it is.
		releaseAt := make(map[int][]int32)
		for _, kc := range ci.PerKernel {
			for _, d := range kc.D {
				releaseAt[kc.Kernel] = append(releaseAt[kc.Kernel], int32(a.DatumID(d)))
			}
			for out, t := range kc.R {
				releaseAt[t] = append(releaseAt[t], int32(a.DatumID(out)))
			}
		}

		w.Steps = make([]FootprintStep, len(ci.PerKernel))
		for i, kc := range ci.PerKernel {
			st := &w.Steps[i]
			for _, id := range a.KernelInputIDs(kc.Kernel) {
				if a.IsStreamedID(id) {
					st.StreamIn = append(st.StreamIn, id)
				}
			}
			st.Out = a.KernelOutputIDs(kc.Kernel)
			st.Release = releaseAt[kc.Kernel]
		}
	}
}
