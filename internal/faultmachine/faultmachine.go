// Package faultmachine is the fault-injection harness for the functional
// machine simulator: it wraps internal/machine with deterministic,
// seed-driven DMA faults and reports what the schedule did under them.
//
// Two fault kinds exist, mirroring what a real DMA channel does when the
// external memory misbehaves:
//
//   - STALLS delay a transfer but deliver the right bytes. A schedule
//     must SURVIVE them: the run completes and the final outputs are
//     byte-identical to a fault-free run (the schedule encodes no timing
//     assumptions about external memory).
//   - TRANSFER FAILURES lose the transfer entirely. A run must FAIL
//     LOUDLY: it stops with a typed *FaultError (matching ErrFault under
//     errors.Is) naming the exact transfer, never with silently corrupt
//     outputs.
//
// Fault placement is a pure function of (Config, transfer sequence), so
// every run with the same schedule and config injects the identical
// faults — a failing test reproduces byte-for-byte.
package faultmachine

import (
	"errors"
	"fmt"
	"sync"

	"cds/internal/core"
	"cds/internal/machine"
)

// ErrFault classifies all injected faults that abort a run. Use
// errors.Is(err, faultmachine.ErrFault) to distinguish an injected
// failure from a genuine machine error, and errors.As with *FaultError
// for the transfer identity.
var ErrFault = errors.New("faultmachine: injected fault")

// FaultError identifies one injected transfer failure.
type FaultError struct {
	// Op is "load" or "store".
	Op string
	// Datum and AbsIter identify the transfer that was failed.
	Datum   string
	AbsIter int
	// N is the 1-based index of the transfer in DMA order.
	N int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("faultmachine: injected %s failure on %s@%d (transfer %d)", e.Op, e.Datum, e.AbsIter, e.N)
}

// Is makes every FaultError match ErrFault.
func (e *FaultError) Is(target error) bool { return target == ErrFault }

// Config selects which transfers fault. The zero value injects nothing.
type Config struct {
	// Seed drives the deterministic fault picker; two runs with equal
	// seeds (and equal transfer sequences) inject identical faults.
	Seed int64
	// StallProbPct is the per-transfer probability, in percent [0,100],
	// of injecting a DMA stall of StallCycles.
	StallProbPct int
	// StallCycles is the length of one injected stall (default 32).
	StallCycles int
	// FailEvery fails every Nth transfer (1-based count over loads and
	// stores in DMA order); 0 never fails.
	FailEvery int
	// FailLoadsOnly restricts injected failures to loads.
	FailLoadsOnly bool
}

// Stats reports what the harness injected during one run.
type Stats struct {
	// Transfers counts the external transfers observed (loads+stores).
	Transfers int
	// Stalls counts injected stalls; StallCycles sums their length.
	Stalls, StallCycles int
}

// injector carries the mutable fault state behind the machine hooks.
type injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   uint64
	stats Stats
}

func newInjector(cfg Config) *injector {
	if cfg.StallCycles == 0 {
		cfg.StallCycles = 32
	}
	state := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if state == 0 {
		state = 1
	}
	return &injector{cfg: cfg, rng: state}
}

// roll advances the xorshift64 state and returns a value in [0, 100).
func (in *injector) roll() int {
	in.rng ^= in.rng << 13
	in.rng ^= in.rng >> 7
	in.rng ^= in.rng << 17
	return int(in.rng % 100)
}

func (in *injector) transfer(op, datum string, absIter int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Transfers++
	n := in.stats.Transfers
	if in.roll() < in.cfg.StallProbPct {
		in.stats.Stalls++
		in.stats.StallCycles += in.cfg.StallCycles
	}
	if in.cfg.FailEvery > 0 && n%in.cfg.FailEvery == 0 {
		if !(in.cfg.FailLoadsOnly && op == "store") {
			return &FaultError{Op: op, Datum: datum, AbsIter: absIter, N: n}
		}
	}
	return nil
}

// Hooks returns machine hooks that inject the configured faults; the
// returned Stats pointer is filled as the run progresses.
func (in *injector) hooks() *machine.Hooks {
	return &machine.Hooks{
		OnLoad: func(datum string, absIter, size int) error {
			return in.transfer("load", datum, absIter)
		},
		OnStore: func(datum string, absIter, size int) error {
			return in.transfer("store", datum, absIter)
		},
	}
}

// Run executes the schedule on the functional machine under fault
// injection. On success the outputs are exactly those of a fault-free
// run (stalls do not corrupt data); on an injected failure the error
// matches ErrFault and carries a *FaultError naming the transfer.
func Run(s *core.Schedule, seed int64, sem machine.Semantics, cfg Config) (*machine.Result, Stats, error) {
	in := newInjector(cfg)
	res, err := machine.RunWithHooks(s, seed, sem, in.hooks())
	return res, in.stats, err
}
