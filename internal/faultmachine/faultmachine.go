// Package faultmachine is the fault-injection harness for the functional
// machine simulator: it wraps internal/machine with deterministic,
// seed-driven DMA faults and reports what the schedule did under them.
//
// Two fault kinds exist, mirroring what a real DMA channel does when the
// external memory misbehaves:
//
//   - STALLS delay a transfer but deliver the right bytes. A schedule
//     must SURVIVE them: the run completes and the final outputs are
//     byte-identical to a fault-free run (the schedule encodes no timing
//     assumptions about external memory).
//   - TRANSFER FAILURES lose the transfer entirely. A run must FAIL
//     LOUDLY: it stops with a typed *FaultError (matching ErrFault under
//     errors.Is) naming the exact transfer, never with silently corrupt
//     outputs.
//
// Fault placement is a pure function of (Config, transfer sequence), so
// every run with the same schedule and config injects the identical
// faults — a failing test reproduces byte-for-byte.
package faultmachine

import (
	"errors"
	"fmt"
	"sync"

	"cds/internal/core"
	"cds/internal/machine"
	"cds/internal/scherr"
)

// ErrFault classifies all injected faults that abort a run. Use
// errors.Is(err, faultmachine.ErrFault) to distinguish an injected
// failure from a genuine machine error, and errors.As with *FaultError
// for the transfer identity.
var ErrFault = errors.New("faultmachine: injected fault")

// FaultError identifies one injected transfer failure.
type FaultError struct {
	// Op is "load" or "store".
	Op string
	// Datum and AbsIter identify the transfer that was failed.
	Datum   string
	AbsIter int
	// N is the 1-based index of the transfer in DMA order.
	N int
	// Permanent marks a hard fault (a dead channel, not a glitched
	// transfer): the error does NOT match scherr.ErrTransient, so the
	// retry layer fails fast instead of re-running the schedule.
	Permanent bool
}

func (e *FaultError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("faultmachine: injected %s %s failure on %s@%d (transfer %d)", kind, e.Op, e.Datum, e.AbsIter, e.N)
}

// Is makes every FaultError match ErrFault, and the transient ones (the
// default) additionally match scherr.ErrTransient — the class the retry
// layer (internal/retry) re-attempts.
func (e *FaultError) Is(target error) bool {
	if target == ErrFault {
		return true
	}
	return target == scherr.ErrTransient && !e.Permanent
}

// Config selects which transfers fault. The zero value injects nothing.
type Config struct {
	// Seed drives the deterministic fault picker; two runs with equal
	// seeds (and equal transfer sequences) inject identical faults.
	Seed int64
	// StallProbPct is the per-transfer probability, in percent [0,100],
	// of injecting a DMA stall of StallCycles.
	StallProbPct int
	// StallCycles is the length of one injected stall (default 32).
	StallCycles int
	// FailEvery fails every Nth transfer (1-based count over loads and
	// stores in DMA order); 0 never fails.
	FailEvery int
	// FailLoadsOnly restricts injected failures to loads.
	FailLoadsOnly bool
	// FailPermanent marks injected failures as permanent (hard) faults:
	// the resulting *FaultError does not match scherr.ErrTransient and
	// must not be retried.
	FailPermanent bool
	// Observe, when non-nil, fires once per attempted transfer — in DMA
	// order, before the fault decision, including a transfer the harness
	// then fails. It lets tests record the exact hook sequence the
	// machine drives under injection without stacking a second set of
	// machine.Hooks. Observe runs under the injector lock: keep it cheap
	// and do not call back into the harness.
	Observe func(op, datum string, absIter, size int)
}

// Stats reports what the harness injected during one run.
type Stats struct {
	// Transfers counts the external transfers observed (loads+stores).
	Transfers int
	// Stalls counts injected stalls; StallCycles sums their length.
	Stalls, StallCycles int
}

// injector carries the mutable fault state behind the machine hooks.
type injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   uint64
	stats Stats
}

func newInjector(cfg Config) *injector {
	if cfg.StallCycles == 0 {
		cfg.StallCycles = 32
	}
	state := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if state == 0 {
		state = 1
	}
	return &injector{cfg: cfg, rng: state}
}

// roll advances the xorshift64 state and returns a value in [0, 100).
func (in *injector) roll() int {
	in.rng ^= in.rng << 13
	in.rng ^= in.rng >> 7
	in.rng ^= in.rng << 17
	return int(in.rng % 100)
}

func (in *injector) transfer(op, datum string, absIter, size int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Transfers++
	n := in.stats.Transfers
	if in.cfg.Observe != nil {
		in.cfg.Observe(op, datum, absIter, size)
	}
	if in.roll() < in.cfg.StallProbPct {
		in.stats.Stalls++
		in.stats.StallCycles += in.cfg.StallCycles
	}
	if in.cfg.FailEvery > 0 && n%in.cfg.FailEvery == 0 {
		if !(in.cfg.FailLoadsOnly && op == "store") {
			return &FaultError{Op: op, Datum: datum, AbsIter: absIter, N: n, Permanent: in.cfg.FailPermanent}
		}
	}
	return nil
}

// Hooks returns machine hooks that inject the configured faults; the
// returned Stats pointer is filled as the run progresses.
func (in *injector) hooks() *machine.Hooks {
	return &machine.Hooks{
		OnLoad: func(datum string, absIter, size int) error {
			return in.transfer("load", datum, absIter, size)
		},
		OnStore: func(datum string, absIter, size int) error {
			return in.transfer("store", datum, absIter, size)
		},
	}
}

// Run executes the schedule on the functional machine under fault
// injection. On success the outputs are exactly those of a fault-free
// run (stalls do not corrupt data); on an injected failure the error
// matches ErrFault and carries a *FaultError naming the transfer.
func Run(s *core.Schedule, seed int64, sem machine.Semantics, cfg Config) (*machine.Result, Stats, error) {
	in := newInjector(cfg)
	res, err := machine.RunWithHooks(s, seed, sem, in.hooks())
	return res, in.stats, err
}

// Runner executes schedules under a bounded transient-fault window: the
// first FailRuns executions inject the configured transfer failures,
// later executions inject only the stalls. It models an external-memory
// fault that clears after a few attempts — exactly the shape the retry
// layer (internal/retry) is designed to absorb: a request that arrives
// during the window fails, is retried, and succeeds once the window has
// passed, with outputs byte-identical to a fault-free run.
//
// A Runner is safe for concurrent use; the run counter is shared across
// all goroutines so the window is global, like the fault it models.
type Runner struct {
	mu  sync.Mutex
	cfg Config
	// failRuns is the width of the fault window; negative keeps it open
	// forever (a persistent fault that retries never clear).
	failRuns int
	runs     int
}

// NewRunner returns a Runner whose first failRuns executions inject the
// configured failures (failRuns < 0: every execution does). Stalls are
// injected on every run regardless — they are survivable by design.
func NewRunner(cfg Config, failRuns int) *Runner {
	return &Runner{cfg: cfg, failRuns: failRuns}
}

// Run executes one schedule under the runner's current window position.
func (r *Runner) Run(s *core.Schedule, seed int64, sem machine.Semantics) (*machine.Result, Stats, error) {
	r.mu.Lock()
	cfg := r.cfg
	r.runs++
	if r.failRuns >= 0 && r.runs > r.failRuns {
		cfg.FailEvery = 0 // window passed: stalls only
	}
	r.mu.Unlock()
	return Run(s, seed, sem, cfg)
}

// Runs reports how many executions the runner has performed.
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}
