package faultmachine

import (
	"bytes"
	"errors"
	"testing"

	"cds/internal/core"
	"cds/internal/machine"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

func mpegSchedule(t *testing.T, sched core.Scheduler) *core.Schedule {
	t.Helper()
	e, err := workloads.ByName("MPEG")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStallsSurvive pins the harness's survival property: injected DMA
// stalls delay transfers but the observable outputs stay byte-identical
// to a fault-free run, for every scheduler.
func TestStallsSurvive(t *testing.T) {
	for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
		s := mpegSchedule(t, sched)
		clean, err := machine.Run(s, 7, nil)
		if err != nil {
			t.Fatalf("%s: clean run: %v", sched.Name(), err)
		}
		faulty, stats, err := Run(s, 7, nil, Config{Seed: 3, StallProbPct: 60})
		if err != nil {
			t.Fatalf("%s: stalls must not abort the run: %v", sched.Name(), err)
		}
		if stats.Stalls == 0 || stats.Transfers == 0 {
			t.Fatalf("%s: no faults injected (stats %+v)", sched.Name(), stats)
		}
		if len(faulty.Ext) != len(clean.Ext) {
			t.Fatalf("%s: %d ext entries under stalls, want %d", sched.Name(), len(faulty.Ext), len(clean.Ext))
		}
		for k, want := range clean.Ext {
			if !bytes.Equal(faulty.Ext[k], want) {
				t.Fatalf("%s: %s differs under stalls", sched.Name(), k)
			}
		}
	}
}

// TestTransferFailureIsTyped pins the fail-loudly property: a lost
// transfer aborts the run with a *FaultError that matches ErrFault and
// names the exact transfer, instead of completing with corrupt outputs.
func TestTransferFailureIsTyped(t *testing.T) {
	s := mpegSchedule(t, core.CompleteDataScheduler{})
	res, stats, err := Run(s, 7, nil, Config{Seed: 3, FailEvery: 5})
	if err == nil {
		t.Fatalf("injected failure did not surface (res=%v stats=%+v)", res != nil, stats)
	}
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, does not match ErrFault", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, not a *FaultError", err)
	}
	if fe.N != 5 || fe.Datum == "" || (fe.Op != "load" && fe.Op != "store") {
		t.Fatalf("fault identity not filled: %+v", fe)
	}
	// An injected fault is a fault, not an infeasibility or a capacity
	// overflow — the taxonomy keeps the classes disjoint.
	if errors.Is(err, scherr.ErrInfeasible) || errors.Is(err, scherr.ErrCapacity) {
		t.Fatalf("fault error leaked into another taxonomy class: %v", err)
	}
}

// TestDeterministicInjection pins reproducibility: equal (schedule,
// seed, config) inject byte-identical fault sequences.
func TestDeterministicInjection(t *testing.T) {
	s := mpegSchedule(t, core.DataScheduler{})
	_, stats1, err1 := Run(s, 7, nil, Config{Seed: 11, StallProbPct: 30, FailEvery: 17})
	_, stats2, err2 := Run(s, 7, nil, Config{Seed: 11, StallProbPct: 30, FailEvery: 17})
	if stats1 != stats2 {
		t.Fatalf("stats diverged: %+v vs %+v", stats1, stats2)
	}
	if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
		t.Fatalf("errors diverged: %v vs %v", err1, err2)
	}
	_, stats3, _ := Run(s, 7, nil, Config{Seed: 12, StallProbPct: 30})
	if stats3.Stalls == stats1.Stalls && stats3.StallCycles == stats1.StallCycles && stats1.Stalls > 0 {
		// Different seeds picking the exact same stall set is possible
		// but wildly unlikely with 30% per-transfer probability; treat
		// equality as a seed-plumbing bug.
		t.Fatalf("seed change did not change injection (stats %+v)", stats3)
	}
}

// TestLoadsOnlyFilter pins the FailLoadsOnly knob: store transfers pass
// untouched.
func TestLoadsOnlyFilter(t *testing.T) {
	s := mpegSchedule(t, core.Basic{})
	_, _, err := Run(s, 7, nil, Config{Seed: 1, FailEvery: 1, FailLoadsOnly: true})
	var fe *FaultError
	if err == nil || !errors.As(err, &fe) {
		t.Fatalf("expected an injected load failure, got %v", err)
	}
	if fe.Op != "load" {
		t.Fatalf("FailLoadsOnly produced a %s failure: %+v", fe.Op, fe)
	}
}
