package journal

// The filesystem seam: every file operation the journal performs goes
// through the FS interface, so the chaos harness (internal/chaos) can
// inject the failures a real disk produces — ENOSPC, short writes, fsync
// errors — on a deterministic schedule instead of hand-crafting corrupt
// files. Production code never notices: Open uses OS, which delegates
// straight to package os.

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// File is the slice of *os.File the journal needs. Fd exposes the
// descriptor for the advisory lock; fault wrappers forward it to the
// real file underneath.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Fd() uintptr
}

// FS abstracts the filesystem operations behind a journal. OS is the
// production implementation; FaultFS injects failures for chaos tests.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// SyncDir fsyncs the directory itself, making a just-created file's
	// directory entry durable: without it a crash immediately after
	// create can lose the file even though the create returned.
	SyncDir(dir string) error
}

// OS is the production filesystem: package os, plus a real directory
// fsync.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// OpKind names one class of filesystem operation a Fault can target.
type OpKind string

const (
	OpOpen    OpKind = "open"
	OpWrite   OpKind = "write"
	OpSync    OpKind = "sync"
	OpSyncDir OpKind = "syncdir"
)

// Fault is one scheduled filesystem failure: the N'th operation of the
// given kind (1-based, counted per kind across the FaultFS's lifetime)
// fails with Err. For OpWrite, ShortBytes > 0 makes it a torn write
// instead of a clean failure: that many bytes reach the file before the
// error returns — exactly what a crash mid-write leaves behind.
type Fault struct {
	Op OpKind `json:"op"`
	N  int    `json:"n"`
	// Err is the injected error; nil defaults to ENOSPC for writes and
	// EIO for syncs.
	Err error `json:"-"`
	// ShortBytes, for OpWrite, is how many bytes land before the error.
	ShortBytes int `json:"short_bytes,omitempty"`
}

func (f Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	if f.Op == OpWrite {
		return syscall.ENOSPC
	}
	return syscall.EIO
}

// FaultFS wraps an inner FS (usually OS: faults are injected on top of
// real files, so recovery is exercised against what is actually on
// disk) and fails scheduled operations. Operations are counted per
// kind; a Fault fires once, when its kind's counter reaches N. The
// zero-fault FaultFS is transparent. Not safe for concurrent use by
// multiple journals — each chaos run builds its own.
type FaultFS struct {
	Inner  FS
	faults []Fault
	counts map[OpKind]int
	// Fired records the faults that have triggered, in order (tests and
	// chaos reports read it back).
	Fired []Fault
}

// NewFaultFS builds a fault-injecting filesystem over inner (nil means
// OS) firing the given faults.
func NewFaultFS(inner FS, faults ...Fault) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{Inner: inner, faults: faults, counts: map[OpKind]int{}}
}

// trip advances kind's counter and returns the fault scheduled for this
// occurrence, if any.
func (ff *FaultFS) trip(kind OpKind) *Fault {
	ff.counts[kind]++
	n := ff.counts[kind]
	for _, f := range ff.faults {
		if f.Op == kind && f.N == n {
			ff.Fired = append(ff.Fired, f)
			return &f
		}
	}
	return nil
}

func (ff *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := ff.trip(OpOpen); f != nil {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, f.err())
	}
	inner, err := ff.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: ff}, nil
}

func (ff *FaultFS) SyncDir(dir string) error {
	if f := ff.trip(OpSyncDir); f != nil {
		return fmt.Errorf("faultfs: syncdir %s: %w", dir, f.err())
	}
	return ff.Inner.SyncDir(dir)
}

// faultFile intercepts writes and syncs on an open file.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if ft := f.fs.trip(OpWrite); ft != nil {
		short := ft.ShortBytes
		if short > len(p) {
			short = len(p)
		}
		n := 0
		if short > 0 {
			// A torn write: part of the record reaches the disk before
			// the failure, leaving a tail with no terminating newline.
			n, _ = f.File.Write(p[:short])
		}
		return n, fmt.Errorf("faultfs: write: %w", ft.err())
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if ft := f.fs.trip(OpSync); ft != nil {
		return fmt.Errorf("faultfs: sync: %w", ft.err())
	}
	return f.File.Sync()
}
