package journal

// Fault-filesystem tests: the durability rules exercised by injected
// failures — torn writes rolled back, fsync errors surfaced, the parent
// directory fsync'd on create — instead of hand-crafted corrupt files.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

type rec struct {
	ID int    `json:"id"`
	S  string `json:"s"`
}

func openT(t *testing.T, fsys FS, path string) (*Journal[rec], []rec) {
	t.Helper()
	j, recs, err := OpenFS[rec](fsys, path)
	if err != nil {
		t.Fatalf("OpenFS(%s): %v", path, err)
	}
	return j, recs
}

func TestFaultFSTransparentWithoutFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	ff := NewFaultFS(nil)
	j, recs := openT(t, ff, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec{ID: i, S: "x"}); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	j.Close()
	_, recs = openT(t, OS, path)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
}

func TestCreateSyncsParentDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	ff := NewFaultFS(nil)
	j, _ := openT(t, ff, path)
	defer j.Close()
	var kinds []OpKind
	for k := range ff.counts {
		kinds = append(kinds, k)
	}
	if ff.counts[OpSyncDir] != 1 {
		t.Fatalf("creating a journal performed %d dir syncs (ops seen: %v), want 1", ff.counts[OpSyncDir], kinds)
	}
}

func TestCreateDirSyncFailureFailsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	ff := NewFaultFS(nil, Fault{Op: OpSyncDir, N: 1})
	if _, _, err := OpenFS[rec](ff, path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("open with failing dir sync = %v, want EIO", err)
	}
	// The failed open must not leave the lock held.
	j, _ := openT(t, OS, path)
	j.Close()
}

func TestExistingJournalSkipsDirSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _ := openT(t, OS, path)
	if err := j.Append(rec{ID: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A non-empty journal's directory entry is already durable; a
	// scheduled syncdir fault must never fire.
	ff := NewFaultFS(nil, Fault{Op: OpSyncDir, N: 1})
	j2, recs := openT(t, ff, path)
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	if len(ff.Fired) != 0 {
		t.Fatalf("dir-sync fault fired on existing journal: %v", ff.Fired)
	}
}

func TestAppendENOSPCCleanFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	// Write #1 is the first Append (opening performs no writes).
	ff := NewFaultFS(nil, Fault{Op: OpWrite, N: 2})
	j, _ := openT(t, ff, path)
	if err := j.Append(rec{ID: 1, S: "ok"}); err != nil {
		t.Fatalf("Append #1: %v", err)
	}
	if err := j.Append(rec{ID: 2, S: "lost"}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Append under ENOSPC = %v, want ENOSPC", err)
	}
	// The journal stays appendable: the failed write left nothing behind.
	if err := j.Append(rec{ID: 3, S: "after"}); err != nil {
		t.Fatalf("Append after ENOSPC: %v", err)
	}
	j.Close()
	_, recs := openT(t, OS, path)
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 3 {
		t.Fatalf("replayed %+v, want records 1 and 3", recs)
	}
}

func TestAppendShortWriteRolledBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	ff := NewFaultFS(nil, Fault{Op: OpWrite, N: 2, ShortBytes: 5})
	j, _ := openT(t, ff, path)
	if err := j.Append(rec{ID: 1, S: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{ID: 2, S: "torn"}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn Append = %v, want ENOSPC", err)
	}
	// The rollback truncated the 5 torn bytes: the next append starts a
	// clean line and a reopen sees no corruption.
	if err := j.Append(rec{ID: 3, S: "after"}); err != nil {
		t.Fatalf("Append after torn write: %v", err)
	}
	j.Close()
	_, recs := openT(t, OS, path)
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 3 {
		t.Fatalf("replayed %+v, want records 1 and 3", recs)
	}
}

func TestAppendShortWriteCrashRecoversOnReopen(t *testing.T) {
	// A torn write followed by a crash (no rollback possible — simulate
	// by failing the rollback's truncate... simplest: close without
	// rollback by writing the torn bytes directly).
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _ := openT(t, OS, path)
	if err := j.Append(rec{ID: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":2,`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Reopen: the torn tail (no newline) is truncated away.
	j2, recs := openT(t, OS, path)
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("replayed %+v, want just record 1", recs)
	}
	if err := j2.Append(rec{ID: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = openT(t, OS, path)
	if len(recs) != 2 || recs[1].ID != 3 {
		t.Fatalf("replayed %+v, want records 1 and 3", recs)
	}
}

func TestAppendFsyncErrorSurfacesButKeepsLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	// Sync #1 is Append #1's fsync (open syncs only the directory).
	ff := NewFaultFS(nil, Fault{Op: OpSync, N: 1})
	j, _ := openT(t, ff, path)
	if err := j.Append(rec{ID: 1, S: "unsynced"}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Append under fsync error = %v, want EIO", err)
	}
	// The record's durability is unknown — the caller treats it as not
	// journaled — but the file keeps a clean, complete line, so further
	// appends (and the reopen) are unaffected.
	if err := j.Append(rec{ID: 2, S: "ok"}); err != nil {
		t.Fatalf("Append after fsync error: %v", err)
	}
	j.Close()
	_, recs := openT(t, OS, path)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (unsynced line intact on a live fs)", len(recs))
	}
}

func TestBrokenJournalRefusesAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	// Fail write #1 as a torn write AND fail the rollback's sync (sync
	// #1 under this schedule is the rollback's, since the append never
	// reached its own fsync).
	ff := NewFaultFS(nil,
		Fault{Op: OpWrite, N: 1, ShortBytes: 3},
		Fault{Op: OpSync, N: 1},
	)
	j, _ := openT(t, ff, path)
	err := j.Append(rec{ID: 1})
	if err == nil || !strings.Contains(err.Error(), "rollback") {
		t.Fatalf("torn Append with failed rollback = %v, want rollback failure", err)
	}
	if err := j.Append(rec{ID: 2}); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("Append on broken journal = %v, want broken", err)
	}
	j.Close()
}

func TestCorruptCompleteLineFailsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"id\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFS[rec](OS, path); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("open over corrupt complete line = %v, want corrupt-record failure", err)
	}
}
