// Package journal is the crash-safe JSONL checkpoint layer shared by the
// long-running batch runners (grid sweeps, the differential fuzzer): an
// append-only file of one JSON record per line, each record fsync'd the
// moment it is written, opened under an exclusive advisory lock and
// replayed on open with torn-tail recovery.
//
// The record type is a caller-supplied type parameter, so each runner
// journals its own schema (sweep.Record, diffuzz.Record) through one
// implementation of the durability rules:
//
//   - a torn final line (no terminating newline — the signature of a
//     crash mid-append) is truncated away so the next append starts a
//     clean line;
//   - any newline-terminated line that does not parse is corruption and
//     fails the open rather than silently dropping an fsync'd record;
//   - the exclusive lock lives on the open file description, so a second
//     opener — another process or this one — fails instead of
//     interleaving appends.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal is an append-only, fsync-per-record JSONL checkpoint file over
// records of type T. Appends are serialized internally, so a worker pool
// may share one Journal.
type Journal[T any] struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if missing) the journal at path, locks it and
// replays its records. See the package comment for the recovery rules.
func Open[T any](path string) (*Journal[T], []T, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	var recs []T
	valid := 0 // byte offset just past the last fully-parsed record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[off : off+nl]
		var rec T
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal %s: corrupt record at byte %d: %w", path, off, jerr)
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = off
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: truncating torn tail: %w", path, err)
	}
	return &Journal[T]{f: f, path: path}, recs, nil
}

// Append writes one record and syncs it to disk before returning, so a
// crash after Append never loses the record.
func (j *Journal[T]) Append(rec T) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(raw); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal[T]) Path() string { return j.path }

// Close closes (and thereby unlocks) the underlying file.
func (j *Journal[T]) Close() error { return j.f.Close() }
