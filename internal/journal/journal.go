// Package journal is the crash-safe JSONL checkpoint layer shared by the
// long-running batch runners (grid sweeps, the differential fuzzer): an
// append-only file of one JSON record per line, each record fsync'd the
// moment it is written, opened under an exclusive advisory lock and
// replayed on open with torn-tail recovery.
//
// The record type is a caller-supplied type parameter, so each runner
// journals its own schema (sweep.Record, diffuzz.Record) through one
// implementation of the durability rules:
//
//   - a torn final line (no terminating newline — the signature of a
//     crash mid-append) is truncated away so the next append starts a
//     clean line;
//   - any newline-terminated line that does not parse is corruption and
//     fails the open rather than silently dropping an fsync'd record;
//   - the exclusive lock lives on the open file description, so a second
//     opener — another process or this one — fails instead of
//     interleaving appends;
//   - creating the journal fsyncs the parent directory, so a crash
//     immediately after create cannot lose the file itself;
//   - a short (torn) write during Append is rolled back by truncating
//     the partial bytes, so the next append starts a clean line; if the
//     rollback itself fails the journal marks itself broken and refuses
//     further appends rather than risk corrupting a durable record.
//
// Every file operation goes through the FS seam (fs.go), so the chaos
// harness injects ENOSPC, short writes and fsync failures on a
// deterministic schedule and these rules are exercised by real injected
// faults instead of hand-crafted files.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Journal is an append-only, fsync-per-record JSONL checkpoint file over
// records of type T. Appends are serialized internally, so a worker pool
// may share one Journal.
type Journal[T any] struct {
	mu     sync.Mutex
	f      File
	path   string
	broken error // set when a failed torn-write rollback left an unclean tail
}

// Open opens (creating if missing) the journal at path on the real
// filesystem, locks it and replays its records. See the package comment
// for the recovery rules.
func Open[T any](path string) (*Journal[T], []T, error) {
	return OpenFS[T](OS, path)
}

// OpenFS is Open through an explicit filesystem seam; chaos tests pass a
// FaultFS to drive the recovery rules with injected failures.
func OpenFS[T any](fsys FS, path string) (*Journal[T], []T, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if st.Size() == 0 {
		// Freshly created (or never written): fsync the parent directory
		// so a crash right after create cannot lose the file's directory
		// entry — the file would otherwise exist only in cache.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal %s: syncing parent dir: %w", path, err)
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	var recs []T
	valid := 0 // byte offset just past the last fully-parsed record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[off : off+nl]
		var rec T
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal %s: corrupt record at byte %d: %w", path, off, jerr)
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = off
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: truncating torn tail: %w", path, err)
	}
	return &Journal[T]{f: f, path: path}, recs, nil
}

// Append writes one record and syncs it to disk before returning, so a
// crash after Append never loses the record. A failed write that left
// partial bytes (a torn write, e.g. ENOSPC mid-record) is rolled back by
// truncating them away, so the journal stays appendable; if the rollback
// itself fails the journal is broken and every further Append returns
// the rollback error — reopening the file applies the torn-tail
// recovery rules.
func (j *Journal[T]) Append(rec T) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("journal %s: broken by earlier failed rollback: %w", j.path, j.broken)
	}
	n, err := j.f.Write(raw)
	if err != nil {
		if n > 0 {
			// Torn write: n bytes of this record reached the file. Roll
			// them back so the next append starts a clean line.
			if rerr := j.rollback(int64(n)); rerr != nil {
				j.broken = rerr
				return fmt.Errorf("journal %s: %w (rollback of %d torn bytes failed: %v)", j.path, err, n, rerr)
			}
		}
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		// The line is complete on the file but its durability is unknown;
		// the caller must treat the record as not durably journaled. The
		// file itself stays clean for further appends.
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	return nil
}

// rollback truncates the last n appended bytes (the torn part of a
// failed write) and syncs the truncation.
func (j *Journal[T]) rollback(n int64) error {
	st, err := j.f.Stat()
	if err != nil {
		return err
	}
	if err := j.f.Truncate(st.Size() - n); err != nil {
		return err
	}
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal[T]) Path() string { return j.path }

// Close closes (and thereby unlocks) the underlying file.
func (j *Journal[T]) Close() error { return j.f.Close() }
