//go:build !unix

package journal

// lockFile is a no-op where advisory file locks are unavailable; callers
// that serialize journal writers at a higher layer (e.g. the schedd
// per-name sweep serialization) still protect journals within one
// process.
func lockFile(File) error { return nil }
