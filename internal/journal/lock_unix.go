//go:build unix

package journal

import (
	"fmt"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f. The lock
// lives on the open file description, so a concurrent Open — from another
// process or from this one — fails instead of interleaving appends. It is
// released automatically when the file is closed.
func lockFile(f File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("locked by another journal writer: %w", err)
	}
	return nil
}
