package kernels

import (
	"testing"

	"cds/internal/rcarray"
)

// BenchmarkKernels measures each library kernel's functional execution on
// the 8x8 array.
func BenchmarkKernels(b *testing.B) {
	for _, name := range []string{"vecadd", "fir4", "sad8", "dct8", "maxpool8"} {
		name := name
		k := Library()[name]
		b.Run(name, func(b *testing.B) {
			a := rcarray.M1Array()
			in := make([]int16, k.InWords)
			for i := range in {
				in[i] = int16(i % 120)
			}
			if err := a.LoadFB(0, in); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(a, 0, k.InWords); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
