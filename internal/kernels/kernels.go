// Package kernels is the kernel library of the compilation framework: the
// macro-tasks applications are written in terms of. Each library kernel
// carries two faces:
//
//   - scheduling metadata (context words, per-iteration compute cycles,
//     input/output data sizes) consumed by the information extractor and
//     the schedulers, and
//   - a functional implementation as RC-array context programs, runnable
//     on internal/rcarray and verified against pure-Go references.
//
// The mapping of computation to the array is done once per kernel, exactly
// as the paper describes ("the kernel programming is equivalent to
// specifying the mapping of computation to the target architecture, and is
// done only once").
package kernels

import (
	"fmt"

	"cds/internal/rcarray"
)

// Kernel is one library entry.
type Kernel struct {
	// Name identifies the kernel in applications and reports.
	Name string
	// Description says what the kernel computes.
	Description string
	// InWords and OutWords are the 16-bit data words consumed and
	// produced per invocation (per 8x8 block / 64-element stripe).
	InWords, OutWords int
	// Program builds the context-step program given the FB word offsets
	// of the kernel's input(s) and output.
	Program func(inBase, outBase int) []rcarray.Step
	// Reference computes the same function in pure Go for verification.
	Reference func(in []int16) []int16
}

// ContextWords returns the kernel's context volume in 32-bit words: one
// context word per broadcast lane per step (M1 loads a full row/column
// context plane per step).
func (k *Kernel) ContextWords() int {
	steps := k.Program(0, k.InWords)
	words := 0
	for _, st := range steps {
		words += len(st.Ctx)
	}
	return words
}

// ComputeCycles estimates the kernel's per-invocation execution time: one
// cycle per array step (the array is fully pipelined at the step level).
func (k *Kernel) ComputeCycles() int {
	return len(k.Program(0, k.InWords))
}

// Run executes the kernel on the array: input must already be in the FB at
// inBase; the result appears at outBase. It returns the output words.
func (k *Kernel) Run(a *rcarray.Array, inBase, outBase int) ([]int16, error) {
	if err := a.Execute(k.Program(inBase, outBase)); err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	return a.ReadFB(outBase, k.OutWords)
}

// Library returns the built-in kernels, keyed by name.
func Library() map[string]*Kernel {
	ks := []*Kernel{
		VecAdd(),
		Scale(3, 1),
		Threshold(100),
		FIR4([4]int16{1, 2, 2, 1}),
		SAD8(),
		DCT8(),
		MaxPool8(),
		AbsDiff(),
	}
	m := make(map[string]*Kernel, len(ks))
	for _, k := range ks {
		m[k.Name] = k
	}
	return m
}

// broadcast returns eight copies of one context (a full row/col plane).
func broadcast(c rcarray.Context) []rcarray.Context {
	ctxs := make([]rcarray.Context, 8)
	for i := range ctxs {
		ctxs[i] = c
	}
	return ctxs
}

// VecAdd adds two 64-element vectors laid out back to back:
// out[i] = in[i] + in[64+i].
func VecAdd() *Kernel {
	return &Kernel{
		Name:        "vecadd",
		Description: "64-element vector addition",
		InWords:     128,
		OutWords:    64,
		Program: func(inBase, outBase int) []rcarray.Step {
			return []rcarray.Step{
				{Mode: rcarray.RowMode, FBLoadBase: inBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 0})},
				{Mode: rcarray.RowMode, FBLoadBase: inBase + 64, FBStoreBase: outBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpAdd, A: rcarray.SrcReg0, B: rcarray.SrcFB, Dest: 1, WriteFB: true})},
			}
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 64)
			for i := range out {
				out[i] = in[i] + in[64+i]
			}
			return out
		},
	}
}

// Scale multiplies each of 64 elements by q and arithmetic-shifts right by
// sh — the quantization step of image codecs.
func Scale(q int16, sh int16) *Kernel {
	return &Kernel{
		Name:        "scale",
		Description: fmt.Sprintf("per-element multiply by %d, >> %d (quantization)", q, sh),
		InWords:     64,
		OutWords:    64,
		Program: func(inBase, outBase int) []rcarray.Step {
			return []rcarray.Step{
				{Mode: rcarray.RowMode, FBLoadBase: inBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpMul, A: rcarray.SrcFB, B: rcarray.SrcImm, Imm: q, Dest: 0})},
				{Mode: rcarray.RowMode, FBStoreBase: outBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpShr, A: rcarray.SrcReg0, B: rcarray.SrcImm, Imm: sh, Dest: 1, WriteFB: true})},
			}
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 64)
			for i := range out {
				out[i] = (in[i] * q) >> uint16(sh)
			}
			return out
		},
	}
}

// Threshold produces 1 where in[i] > t, else 0 — the detection step of
// automatic target recognition pipelines.
func Threshold(t int16) *Kernel {
	return &Kernel{
		Name:        "threshold",
		Description: fmt.Sprintf("binary threshold at %d", t),
		InWords:     64,
		OutWords:    64,
		Program: func(inBase, outBase int) []rcarray.Step {
			return []rcarray.Step{
				// r0 = in - t  (positive iff in > t, since > is strict
				// we subtract t and test sign of (in - t - ... )):
				// in > t  <=>  in - t >= 1  <=>  (in - t - 1) >= 0.
				{Mode: rcarray.RowMode, FBLoadBase: inBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpSub, A: rcarray.SrcFB, B: rcarray.SrcImm, Imm: t + 1, Dest: 0})},
				// r1 = r0 >> 15: 0 for non-negative, -1 for negative.
				{Mode: rcarray.RowMode,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpShr, A: rcarray.SrcReg0, B: rcarray.SrcImm, Imm: 15, Dest: 1})},
				// out = (r1 + 1): 1 when in > t, 0 otherwise.
				{Mode: rcarray.RowMode, FBStoreBase: outBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpAdd, A: rcarray.SrcReg1, B: rcarray.SrcImm, Imm: 1, Dest: 2, WriteFB: true})},
			}
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 64)
			for i := range out {
				if in[i] > t {
					out[i] = 1
				}
			}
			return out
		},
	}
}

// FIR4 computes a 4-tap circular FIR over each 8-element row:
// out[r][c] = sum_k h[k] * in[r][(c-k) mod 8]. The torus interconnect of
// the array makes the convolution circular per row.
func FIR4(h [4]int16) *Kernel {
	return &Kernel{
		Name:        "fir4",
		Description: "4-tap circular FIR per 8-element row",
		InWords:     64,
		OutWords:    64,
		Program: func(inBase, outBase int) []rcarray.Step {
			steps := []rcarray.Step{
				// r0 = x (current sample), r1 = accumulator seed h0*x.
				{Mode: rcarray.RowMode, FBLoadBase: inBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 0})},
				{Mode: rcarray.RowMode,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpMul, A: rcarray.SrcReg0, B: rcarray.SrcImm, Imm: h[0], Dest: 1})},
			}
			for k := 1; k < 4; k++ {
				steps = append(steps,
					// Re-expose the sample on the output register
					// (the previous MUL/MAC left the sum there) so
					// the rotation shifts samples, not sums.
					rcarray.Step{Mode: rcarray.RowMode,
						Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcReg0, Dest: 0})},
					// Rotate samples east: r0 = west.out.
					rcarray.Step{Mode: rcarray.RowMode,
						Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcWest, Dest: 0})},
					// r1 += h[k] * r0.
					rcarray.Step{Mode: rcarray.RowMode,
						Ctx: broadcast(rcarray.Context{Op: rcarray.OpMac, A: rcarray.SrcReg0, B: rcarray.SrcImm, Imm: h[k], Dest: 1})},
				)
			}
			steps = append(steps, rcarray.Step{Mode: rcarray.RowMode, FBStoreBase: outBase,
				Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcReg1, Dest: 2, WriteFB: true})})
			return steps
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 64)
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					var acc int16
					for k := 0; k < 4; k++ {
						acc += h[k] * in[r*8+(c-k+8)%8]
					}
					out[r*8+c] = acc
				}
			}
			return out
		},
	}
}

// SAD8 computes the per-row sum of absolute differences of two 64-element
// blocks laid out back to back. Row r's SAD lands at out[r*8] (column 0),
// the layout the motion-estimation pipeline consumes.
func SAD8() *Kernel {
	return &Kernel{
		Name:        "sad8",
		Description: "per-row sum of absolute differences of two 8x8 blocks",
		InWords:     128,
		OutWords:    57, // last value at word 56 (row 7, column 0)
		Program: func(inBase, outBase int) []rcarray.Step {
			col0 := func(c rcarray.Context) []rcarray.Context {
				// Only column 0 works; other columns idle.
				return []rcarray.Context{c}
			}
			// Zero the accumulator: the array may carry state from a
			// previous kernel.
			steps := []rcarray.Step{{Mode: rcarray.ColMode,
				Ctx: col0(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcImm, Imm: 0, Dest: 1})}}
			for j := 0; j < 8; j++ {
				steps = append(steps,
					// r2 = a[r][j]: cell (r,0) reads FB[inBase+j + r*8].
					rcarray.Step{Mode: rcarray.ColMode, FBLoadBase: inBase + j,
						Ctx: col0(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 2})},
					// r3 = |r2 - b[r][j]|.
					rcarray.Step{Mode: rcarray.ColMode, FBLoadBase: inBase + 64 + j,
						Ctx: col0(rcarray.Context{Op: rcarray.OpAbsd, A: rcarray.SrcReg2, B: rcarray.SrcFB, Dest: 3})},
					// r1 += r3 * 1.
					rcarray.Step{Mode: rcarray.ColMode,
						Ctx: col0(rcarray.Context{Op: rcarray.OpMac, A: rcarray.SrcReg3, B: rcarray.SrcImm, Imm: 1, Dest: 1})},
				)
			}
			steps = append(steps, rcarray.Step{Mode: rcarray.ColMode, FBStoreBase: outBase,
				Ctx: col0(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcReg1, Dest: 1, WriteFB: true})})
			return steps
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 57)
			for r := 0; r < 8; r++ {
				var acc int16
				for j := 0; j < 8; j++ {
					d := in[r*8+j] - in[64+r*8+j]
					if d < 0 {
						d = -d
					}
					acc += d
				}
				out[r*8] = acc
			}
			return out
		},
	}
}

// dctMatrix is an 8x8 integer approximation of the DCT-II basis (scaled by
// 32), the kind of fixed-point matrix hardware DCTs use.
var dctMatrix = [8][8]int16{
	{23, 23, 23, 23, 23, 23, 23, 23},
	{32, 27, 18, 6, -6, -18, -27, -32},
	{30, 12, -12, -30, -30, -12, 12, 30},
	{27, -6, -32, -18, 18, 32, 6, -27},
	{23, -23, -23, 23, 23, -23, -23, 23},
	{18, -32, 6, 27, -27, -6, 32, -18},
	{12, -30, 30, -12, -12, 30, -30, 12},
	{6, -18, 27, -32, 32, -27, 18, -6},
}

// DCT8 computes an 8-point one-dimensional integer DCT on each row of an
// 8x8 block: out[r][k] = sum_j dctMatrix[k][j] * in[r][j]. The systolic
// schedule rotates samples eastward and MACs each against the coefficient
// the destination column needs.
func DCT8() *Kernel {
	return &Kernel{
		Name:        "dct8",
		Description: "8-point 1-D integer DCT per row (systolic matvec)",
		InWords:     64,
		OutWords:    64,
		Program: func(inBase, outBase int) []rcarray.Step {
			steps := []rcarray.Step{
				// Zero the accumulator (the array may carry state).
				{Mode: rcarray.RowMode,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcImm, Imm: 0, Dest: 1})},
				// r0 = x_c; the output register tracks it for shifting.
				{Mode: rcarray.RowMode, FBLoadBase: inBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 0})},
			}
			for t := 0; t < 8; t++ {
				// After t rotations, column k holds x_{(k-t) mod 8}:
				// MAC with coefficient dctMatrix[k][(k-t) mod 8].
				ctx := make([]rcarray.Context, 8)
				for k := 0; k < 8; k++ {
					j := ((k-t)%8 + 8) % 8
					ctx[k] = rcarray.Context{Op: rcarray.OpMac, A: rcarray.SrcReg0, B: rcarray.SrcImm,
						Imm: dctMatrix[k][j], Dest: 1}
				}
				steps = append(steps, rcarray.Step{Mode: rcarray.ColMode, Ctx: ctx})
				if t < 7 {
					steps = append(steps,
						// Re-expose the sample, then rotate east.
						rcarray.Step{Mode: rcarray.RowMode,
							Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcReg0, Dest: 0})},
						rcarray.Step{Mode: rcarray.RowMode,
							Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcWest, Dest: 0})},
					)
				}
			}
			steps = append(steps, rcarray.Step{Mode: rcarray.RowMode, FBStoreBase: outBase,
				Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcReg1, Dest: 2, WriteFB: true})})
			return steps
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 64)
			for r := 0; r < 8; r++ {
				for k := 0; k < 8; k++ {
					var acc int16
					for j := 0; j < 8; j++ {
						acc += dctMatrix[k][j] * in[r*8+j]
					}
					out[r*8+k] = acc
				}
			}
			return out
		},
	}
}

// MaxPool8 reduces each 8-element row to its maximum — the peak-detection
// step of the ATR pipelines. Row r's maximum lands at out[r*8] (column 0),
// like SAD8's layout.
func MaxPool8() *Kernel {
	return &Kernel{
		Name:        "maxpool8",
		Description: "per-row maximum of an 8x8 block (peak detection)",
		InWords:     64,
		OutWords:    57,
		Program: func(inBase, outBase int) []rcarray.Step {
			col0 := func(c rcarray.Context) []rcarray.Context {
				return []rcarray.Context{c}
			}
			// Seed the running maximum with the row's first element.
			steps := []rcarray.Step{{Mode: rcarray.ColMode, FBLoadBase: inBase,
				Ctx: col0(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 1})}}
			for j := 1; j < 8; j++ {
				steps = append(steps,
					rcarray.Step{Mode: rcarray.ColMode, FBLoadBase: inBase + j,
						Ctx: col0(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 2})},
					rcarray.Step{Mode: rcarray.ColMode,
						Ctx: col0(rcarray.Context{Op: rcarray.OpMax, A: rcarray.SrcReg1, B: rcarray.SrcReg2, Dest: 1})},
				)
			}
			steps = append(steps, rcarray.Step{Mode: rcarray.ColMode, FBStoreBase: outBase,
				Ctx: col0(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcReg1, Dest: 1, WriteFB: true})})
			return steps
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 57)
			for r := 0; r < 8; r++ {
				max := in[r*8]
				for j := 1; j < 8; j++ {
					if in[r*8+j] > max {
						max = in[r*8+j]
					}
				}
				out[r*8] = max
			}
			return out
		},
	}
}

// AbsDiff computes the elementwise absolute difference of two 64-element
// blocks laid out back to back — the residual step of motion compensation.
func AbsDiff() *Kernel {
	return &Kernel{
		Name:        "absdiff",
		Description: "elementwise |a-b| of two 8x8 blocks",
		InWords:     128,
		OutWords:    64,
		Program: func(inBase, outBase int) []rcarray.Step {
			return []rcarray.Step{
				{Mode: rcarray.RowMode, FBLoadBase: inBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpPass, A: rcarray.SrcFB, Dest: 0})},
				{Mode: rcarray.RowMode, FBLoadBase: inBase + 64, FBStoreBase: outBase,
					Ctx: broadcast(rcarray.Context{Op: rcarray.OpAbsd, A: rcarray.SrcReg0, B: rcarray.SrcFB, Dest: 1, WriteFB: true})},
			}
		},
		Reference: func(in []int16) []int16 {
			out := make([]int16, 64)
			for i := range out {
				d := in[i] - in[64+i]
				if d < 0 {
					d = -d
				}
				out[i] = d
			}
			return out
		},
	}
}
