package kernels

import (
	"math/rand"
	"testing"

	"cds/internal/rcarray"
)

// runKernel loads random input, runs the kernel on a fresh M1 array with
// dirty register state, and compares against the reference.
func runKernel(t *testing.T, k *Kernel, rng *rand.Rand) {
	t.Helper()
	a := rcarray.M1Array()
	// Dirty the register file: kernels must not depend on zeroed state.
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			for d := uint8(0); d < 4; d++ {
				a.SetReg(r, c, d, int16(rng.Intn(1<<12)-1<<11))
			}
		}
	}
	in := make([]int16, k.InWords)
	for i := range in {
		in[i] = int16(rng.Intn(256) - 128)
	}
	if err := a.LoadFB(0, in); err != nil {
		t.Fatal(err)
	}
	outBase := k.InWords
	got, err := k.Run(a, 0, outBase)
	if err != nil {
		t.Fatal(err)
	}
	want := k.Reference(in)
	if len(got) != len(want) {
		t.Fatalf("%s: output length %d, want %d", k.Name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: out[%d] = %d, want %d (input %v...)", k.Name, i, got[i], want[i], in[:8])
		}
	}
}

func TestKernelsMatchReferences(t *testing.T) {
	for name, k := range Library() {
		k := k
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				runKernel(t, k, rng)
			}
		})
	}
}

func TestSAD8KnownValue(t *testing.T) {
	k := SAD8()
	in := make([]int16, 128)
	for i := 0; i < 64; i++ {
		in[i] = int16(i)        // a
		in[64+i] = int16(2 * i) // b: |a-b| = i
	}
	want := k.Reference(in)
	// Row r: sum_{j} (r*8+j) = 8*8r + 28.
	for r := 0; r < 8; r++ {
		if want[r*8] != int16(64*r+28) {
			t.Fatalf("reference row %d = %d, want %d", r, want[r*8], 64*r+28)
		}
	}
	a := rcarray.M1Array()
	if err := a.LoadFB(0, in); err != nil {
		t.Fatal(err)
	}
	got, err := k.Run(a, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if got[r*8] != want[r*8] {
			t.Fatalf("SAD row %d = %d, want %d", r, got[r*8], want[r*8])
		}
	}
}

func TestDCT8ConstantInput(t *testing.T) {
	// A constant row has energy only in the DC coefficient.
	k := DCT8()
	in := make([]int16, 64)
	for i := range in {
		in[i] = 10
	}
	a := rcarray.M1Array()
	if err := a.LoadFB(0, in); err != nil {
		t.Fatal(err)
	}
	got, err := k.Run(a, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if got[r*8] != 8*23*10 {
			t.Errorf("row %d DC = %d, want %d", r, got[r*8], 8*23*10)
		}
		for c := 1; c < 8; c++ {
			if got[r*8+c] != 0 {
				t.Errorf("row %d AC[%d] = %d, want 0", r, c, got[r*8+c])
			}
		}
	}
}

func TestThresholdEdges(t *testing.T) {
	k := Threshold(5)
	in := make([]int16, 64)
	in[0], in[1], in[2], in[3] = 5, 6, -100, 32000
	want := k.Reference(in)
	if want[0] != 0 || want[1] != 1 || want[2] != 0 || want[3] != 1 {
		t.Fatalf("reference wrong at edges: %v", want[:4])
	}
	a := rcarray.M1Array()
	if err := a.LoadFB(0, in); err != nil {
		t.Fatal(err)
	}
	got, err := k.Run(a, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got[i] != want[i] {
			t.Errorf("threshold[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMetadataPositive(t *testing.T) {
	for name, k := range Library() {
		if k.ContextWords() <= 0 {
			t.Errorf("%s: non-positive context words", name)
		}
		if k.ComputeCycles() <= 0 {
			t.Errorf("%s: non-positive compute cycles", name)
		}
		if k.InWords <= 0 || k.OutWords <= 0 {
			t.Errorf("%s: non-positive data sizes", name)
		}
		if k.Description == "" {
			t.Errorf("%s: missing description", name)
		}
	}
}

func TestLibraryNamesUnique(t *testing.T) {
	lib := Library()
	if len(lib) != 8 {
		t.Errorf("library has %d kernels, want 8", len(lib))
	}
	for name, k := range lib {
		if k.Name != name {
			t.Errorf("library key %q maps to kernel named %q", name, k.Name)
		}
	}
}

func TestRunErrorsOnBadBase(t *testing.T) {
	k := VecAdd()
	a := rcarray.New(8, 8, 100) // too small for out at 128
	if _, err := k.Run(a, 0, 90); err == nil {
		t.Error("Run with out-of-range output base should fail")
	}
}

func TestMaxPool8KnownValues(t *testing.T) {
	k := MaxPool8()
	in := make([]int16, 64)
	for r := 0; r < 8; r++ {
		for j := 0; j < 8; j++ {
			in[r*8+j] = int16(-50 + j)
		}
		in[r*8+(r%8)] = int16(100 + r) // plant a peak per row
	}
	a := rcarray.M1Array()
	if err := a.LoadFB(0, in); err != nil {
		t.Fatal(err)
	}
	got, err := k.Run(a, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if got[r*8] != int16(100+r) {
			t.Errorf("row %d max = %d, want %d", r, got[r*8], 100+r)
		}
	}
}

func TestAbsDiffIdentityIsZero(t *testing.T) {
	k := AbsDiff()
	in := make([]int16, 128)
	for i := 0; i < 64; i++ {
		in[i] = int16(i * 3)
		in[64+i] = int16(i * 3)
	}
	a := rcarray.M1Array()
	if err := a.LoadFB(0, in); err != nil {
		t.Fatal(err)
	}
	got, err := k.Run(a, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("|x-x|[%d] = %d, want 0", i, v)
		}
	}
}
