package ksched

import (
	"fmt"
	"testing"

	"cds/internal/core"
)

// BenchmarkExplore measures design-space exploration cost as the kernel
// count (and hence the 2^(n-1) candidate space) grows.
func BenchmarkExplore(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		n := n
		b.Run(fmt.Sprintf("kernels=%d", n), func(b *testing.B) {
			a := chain(n, 4, 80, 32, 200)
			pa := testArch(4096, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Explore(pa, a, Options{Scheduler: core.DataScheduler{}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
