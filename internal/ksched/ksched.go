// Package ksched is the kernel scheduler of the MorphoSys compilation
// framework (Maestre et al., DATE'99/ICCD'00): it explores the design
// space of cluster decompositions of a kernel sequence and picks the one
// that minimizes the estimated overall execution time.
//
// A decomposition assigns consecutive kernels to clusters; clusters
// alternate Frame Buffer sets. The estimator runs a data scheduler and the
// timing simulator on each candidate, so the kernel scheduler and the data
// scheduler cooperate exactly as in the paper's framework (the kernel
// scheduler "estimates the execution time through tentative context and
// data schedules").
package ksched

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/sim"
)

// Options tunes the exploration.
type Options struct {
	// Scheduler estimates each candidate's execution time; nil means
	// core.DataScheduler{} (the tentative data schedule of the paper).
	Scheduler core.Scheduler
	// MaxKernelsPerCluster bounds cluster size (0 = unbounded).
	MaxKernelsPerCluster int
	// MaxClusters bounds the cluster count (0 = unbounded).
	MaxClusters int
	// ExhaustiveLimit is the largest kernel count explored exhaustively
	// (2^(n-1) candidates); beyond it a greedy merge heuristic runs.
	// 0 means the default of 16.
	ExhaustiveLimit int
	// NumSets is the number of FB sets to alternate over (0 means the
	// architecture's FBSets).
	NumSets int
	// Parallel evaluates candidates on this many goroutines when the
	// exhaustive path runs (0 or 1 = sequential). The result is
	// identical either way: reduction happens in enumeration order.
	Parallel int
}

// Result is the outcome of the exploration.
type Result struct {
	// Best is the winning partition.
	Best *app.Partition
	// Sizes is the winning cluster-size vector.
	Sizes []int
	// Cycles is the estimated execution time of the winner.
	Cycles int
	// Explored counts candidate partitions whose schedules were
	// simulated; Infeasible counts candidates rejected by the data
	// scheduler (cluster does not fit the FB).
	Explored, Infeasible int
}

// evaluation is one candidate's outcome.
type evaluation struct {
	sizes      []int
	part       *app.Partition
	cycles     int
	infeasible bool
	skipped    bool
	err        error
}

// Explore searches cluster decompositions of the application and returns
// the fastest feasible one.
func Explore(pa arch.Params, a *app.App, opts Options) (*Result, error) {
	if a == nil || a.NumKernels() == 0 {
		return nil, fmt.Errorf("ksched: empty application")
	}
	sched := opts.Scheduler
	if sched == nil {
		sched = core.DataScheduler{}
	}
	numSets := opts.NumSets
	if numSets == 0 {
		numSets = pa.FBSets
	}
	limit := opts.ExhaustiveLimit
	if limit == 0 {
		limit = 16
	}

	evaluate := func(sizes []int) evaluation {
		ev := evaluation{sizes: append([]int(nil), sizes...)}
		if opts.MaxClusters > 0 && len(sizes) > opts.MaxClusters {
			ev.skipped = true
			return ev
		}
		part, err := app.NewPartition(a, numSets, sizes...)
		if err != nil {
			ev.err = err
			return ev
		}
		s, err := sched.Schedule(pa, part)
		if err != nil {
			if errors.Is(err, scherr.ErrInfeasible) {
				ev.infeasible = true
				return ev
			}
			ev.err = err
			return ev
		}
		r, err := sim.Run(s)
		if err != nil {
			ev.err = err
			return ev
		}
		ev.part = part
		ev.cycles = r.TotalCycles
		return ev
	}

	res := &Result{Cycles: math.MaxInt}
	record := func(ev evaluation) error {
		switch {
		case ev.err != nil:
			return ev.err
		case ev.skipped:
		case ev.infeasible:
			res.Infeasible++
		default:
			res.Explored++
			if ev.cycles < res.Cycles {
				res.Cycles = ev.cycles
				res.Best = ev.part
				res.Sizes = ev.sizes
			}
		}
		return nil
	}
	try := func(sizes []int) error { return record(evaluate(sizes)) }

	n := a.NumKernels()
	switch {
	case n <= limit && opts.Parallel > 1:
		if err := exploreParallel(n, opts, evaluate, record); err != nil {
			return nil, err
		}
	case n <= limit:
		if err := enumerate(n, opts.MaxKernelsPerCluster, try); err != nil {
			return nil, err
		}
	default:
		if err := greedy(n, opts.MaxKernelsPerCluster, try); err != nil {
			return nil, err
		}
	}
	if res.Best == nil {
		return nil, fmt.Errorf("ksched: no feasible cluster decomposition for %q on %s", a.Name, pa.Name)
	}
	return res, nil
}

// exploreParallel enumerates all compositions up front, evaluates them on
// a bounded worker pool, and reduces in enumeration order so tie-breaking
// matches the sequential path exactly.
func exploreParallel(n int, opts Options, evaluate func([]int) evaluation, record func(evaluation) error) error {
	var cands [][]int
	if err := enumerate(n, opts.MaxKernelsPerCluster, func(sizes []int) error {
		cands = append(cands, append([]int(nil), sizes...))
		return nil
	}); err != nil {
		return err
	}
	results := make([]evaluation, len(cands))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Parallel)
	for i := range cands {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = evaluate(cands[i])
		}()
	}
	wg.Wait()
	for _, ev := range results {
		if err := record(ev); err != nil {
			return err
		}
	}
	return nil
}

// enumerate visits every composition of n into positive parts (cut or not
// after each kernel), optionally bounded by maxPart.
func enumerate(n, maxPart int, try func([]int) error) error {
	sizes := make([]int, 0, n)
	var rec func(remaining int) error
	rec = func(remaining int) error {
		if remaining == 0 {
			return try(sizes)
		}
		max := remaining
		if maxPart > 0 && maxPart < max {
			max = maxPart
		}
		for take := 1; take <= max; take++ {
			sizes = append(sizes, take)
			if err := rec(remaining - take); err != nil {
				return err
			}
			sizes = sizes[:len(sizes)-1]
		}
		return nil
	}
	return rec(n)
}

// greedy starts from singleton clusters and repeatedly merges the adjacent
// pair that most reduces the estimated time, re-evaluating through try
// (which records the best candidate seen).
func greedy(n, maxPart int, try func([]int) error) error {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 1
	}
	if err := try(sizes); err != nil {
		return err
	}
	for len(sizes) > 1 {
		merged := false
		for i := 0; i+1 < len(sizes); i++ {
			if maxPart > 0 && sizes[i]+sizes[i+1] > maxPart {
				continue
			}
			cand := make([]int, 0, len(sizes)-1)
			cand = append(cand, sizes[:i]...)
			cand = append(cand, sizes[i]+sizes[i+1])
			cand = append(cand, sizes[i+2:]...)
			if err := try(cand); err != nil {
				return err
			}
			// Merge unconditionally left-to-right once per round;
			// try() keeps the global best so the walk only needs
			// to cover the neighborhood.
			if !merged {
				sizes = cand
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	return nil
}
