package ksched

import (
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
	"cds/internal/sim"
)

// chain builds an n-kernel pipeline with one external input, intermediates
// between stages, and one final output.
func chain(n, iterations, dataSize, ctxWords, cycles int) *app.App {
	b := app.NewBuilder("chain", iterations)
	b.Datum("d0", dataSize)
	for i := 1; i <= n; i++ {
		b.Datum(dname(i), dataSize)
	}
	for i := 0; i < n; i++ {
		b.Kernel(kname(i), ctxWords, cycles).In(dname(i)).Out(dname(i + 1))
	}
	return b.MustBuild()
}

func dname(i int) string { return "d" + string(rune('0'+i)) }
func kname(i int) string { return "k" + string(rune('0'+i)) }

func testArch(fb, cm int) arch.Params {
	p := arch.M1()
	p.FBSetBytes = fb
	p.CMWords = cm
	return p
}

func TestExploreFindsFeasiblePartition(t *testing.T) {
	a := chain(4, 8, 100, 32, 500)
	pa := testArch(1024, 64)
	res, err := Explore(pa, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Sizes) == 0 {
		t.Fatal("no winner returned")
	}
	if res.Explored == 0 {
		t.Error("nothing explored")
	}
	// The winner must validate and cover the app.
	if err := res.Best.Validate(); err != nil {
		t.Errorf("winning partition invalid: %v", err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 4 {
		t.Errorf("sizes %v cover %d kernels, want 4", res.Sizes, total)
	}
}

func TestExploreBeatsWorstPartition(t *testing.T) {
	a := chain(6, 8, 120, 32, 400)
	pa := testArch(2048, 64)
	res, err := Explore(pa, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The exhaustive winner must be at least as fast as the two
	// extremes: all-singleton and one-big-cluster.
	for _, sizes := range [][]int{{1, 1, 1, 1, 1, 1}, {6}} {
		part, err := app.NewPartition(a, pa.FBSets, sizes...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := (core.DataScheduler{}).Schedule(pa, part)
		if err != nil {
			continue // infeasible extreme is fine
		}
		r, err := sim.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles > r.TotalCycles {
			t.Errorf("explorer (%d cycles, sizes %v) lost to %v (%d cycles)",
				res.Cycles, res.Sizes, sizes, r.TotalCycles)
		}
	}
}

func TestExploreRespectsBounds(t *testing.T) {
	a := chain(5, 4, 80, 16, 300)
	pa := testArch(2048, 64)
	res, err := Explore(pa, a, Options{MaxKernelsPerCluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sizes {
		if s > 2 {
			t.Errorf("cluster size %d exceeds bound 2", s)
		}
	}
	res, err = Explore(pa, a, Options{MaxClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) > 2 {
		t.Errorf("cluster count %d exceeds bound 2", len(res.Sizes))
	}
}

func TestExploreCountsInfeasible(t *testing.T) {
	// Kernels with final outputs make large clusters accumulate
	// results: a modest FB rules those partitions out, and the explorer
	// must skip them, not fail.
	b := app.NewBuilder("fat", 4)
	b.Datum("d0", 200)
	for i := 1; i <= 4; i++ {
		b.Datum(dname(i), 200)
		b.Datum("f"+string(rune('0'+i)), 150)
	}
	for i := 0; i < 4; i++ {
		b.Kernel(kname(i), 16, 300).In(dname(i)).Out(dname(i+1), "f"+string(rune('1'+i)))
	}
	// d4 is consumed by nothing: final as well.
	a := b.MustBuild()
	pa := testArch(600, 64)
	res, err := Explore(pa, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible == 0 {
		t.Error("expected some infeasible candidates at FB=450")
	}
}

func TestExploreAllInfeasible(t *testing.T) {
	a := chain(3, 2, 500, 16, 100)
	pa := testArch(600, 64) // even singletons need 1000 (in+out)
	if _, err := Explore(pa, a, Options{}); err == nil {
		t.Error("expected failure when nothing fits")
	}
}

func TestExploreEmptyApp(t *testing.T) {
	if _, err := Explore(testArch(1024, 64), nil, Options{}); err == nil {
		t.Error("nil app accepted")
	}
}

func TestExploreGreedyPath(t *testing.T) {
	// Force the heuristic with a low exhaustive limit; it must still
	// produce a feasible result.
	a := chain(6, 4, 60, 16, 200)
	pa := testArch(2048, 64)
	res, err := Explore(pa, a, Options{ExhaustiveLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("greedy path found nothing")
	}
	// Compare against exhaustive: greedy may be worse but never better.
	exh, err := Explore(pa, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < exh.Cycles {
		t.Errorf("greedy (%d) beat exhaustive (%d): exhaustive search is broken", res.Cycles, exh.Cycles)
	}
}

func TestEnumerateCoversCompositions(t *testing.T) {
	var got [][]int
	err := enumerate(4, 0, func(sizes []int) error {
		cp := append([]int(nil), sizes...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 { // 2^(4-1)
		t.Fatalf("enumerate(4) yielded %d compositions, want 8", len(got))
	}
	for _, sizes := range got {
		sum := 0
		for _, s := range sizes {
			sum += s
		}
		if sum != 4 {
			t.Errorf("composition %v does not sum to 4", sizes)
		}
	}
}

func TestEnumerateMaxPart(t *testing.T) {
	count := 0
	err := enumerate(4, 2, func(sizes []int) error {
		for _, s := range sizes {
			if s > 2 {
				t.Errorf("part %d exceeds 2 in %v", s, sizes)
			}
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 { // compositions of 4 with parts <= 2: 1111,112,121,211,22
		t.Errorf("count = %d, want 5", count)
	}
}

func TestExploreParallelMatchesSequential(t *testing.T) {
	a := chain(6, 8, 120, 32, 400)
	pa := testArch(2048, 64)
	seq, err := Explore(pa, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(pa, a, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cycles != par.Cycles {
		t.Errorf("cycles differ: seq %d, par %d", seq.Cycles, par.Cycles)
	}
	if len(seq.Sizes) != len(par.Sizes) {
		t.Fatalf("sizes differ: %v vs %v", seq.Sizes, par.Sizes)
	}
	for i := range seq.Sizes {
		if seq.Sizes[i] != par.Sizes[i] {
			t.Fatalf("sizes differ: %v vs %v (tie-breaking must match)", seq.Sizes, par.Sizes)
		}
	}
	if seq.Explored != par.Explored || seq.Infeasible != par.Infeasible {
		t.Errorf("counters differ: %d/%d vs %d/%d", seq.Explored, seq.Infeasible, par.Explored, par.Infeasible)
	}
}
