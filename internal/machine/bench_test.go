package machine

import (
	"testing"

	"cds/internal/core"
	"cds/internal/workloads"
)

// BenchmarkRunMPEG measures the functional executor on the MPEG schedule.
func BenchmarkRunMPEG(b *testing.B) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
