package machine

import (
	"bytes"
	"testing"

	"cds/internal/app"
	"cds/internal/codegen"
	"cds/internal/core"
)

// finalSharedPartition: datum "rep" is BOTH a final result (must reach
// external memory) and an input of a later same-set cluster. Retaining it
// avoids the reload but not the store — the paper's Final-result corner.
func finalSharedPartition() *app.Partition {
	b := app.NewBuilder("finshared", 6).
		Datum("in0", 120)
	b.FinalDatum("rep", 100)
	b.Datum("mid1", 40).
		Datum("out2", 60)
	b.Kernel("k0", 32, 120).In("in0").Out("rep")
	b.Kernel("k1", 32, 120).In("in0").Out("mid1")
	b.Kernel("k2", 32, 120).In("rep", "mid1").Out("out2")
	return app.MustPartition(b.MustBuild(), 2, 1, 1, 1)
}

func TestFinalSharedResultRetention(t *testing.T) {
	part := finalSharedPartition()
	pa := testArch(1024, 128)

	s, err := (core.CompleteDataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	// rep must be retained (clusters 0 and 2 share set 0)...
	found := false
	for _, r := range s.Retained {
		if r.Name == "rep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rep not retained: %+v", s.Retained)
	}
	// ...its STORE must still happen (it is final)...
	stored := false
	for _, v := range s.Visits {
		for _, m := range v.Stores {
			if m.Datum == "rep" {
				stored = true
			}
		}
		// ...but no LOAD anywhere (cluster 2 reads it in place).
		for _, m := range v.Loads {
			if m.Datum == "rep" {
				t.Fatalf("rep loaded despite retention")
			}
		}
	}
	if !stored {
		t.Fatal("final result rep never stored")
	}

	// The generated program must carry the STFB (from the resident
	// placement) and pass the checker.
	prog, err := codegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.Check(prog, s); err != nil {
		t.Fatal(err)
	}
	stfb := 0
	for _, in := range prog.Instrs {
		if in.Op == codegen.OpStFB && in.Datum == "rep" {
			stfb++
		}
	}
	if stfb != part.App.Iterations {
		t.Errorf("rep stored %d times, want %d (once per iteration)", stfb, part.App.Iterations)
	}

	// Functionally, the stored bytes must match what the Basic
	// Scheduler (which reloads rep) exposes.
	basicS, err := (core.Basic{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	rBasic, err := Run(basicS, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	rCDS, err := Run(s, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range rBasic.FinalOutputs(basicS) {
		if !bytes.Equal(rCDS.Ext[key], want) {
			t.Fatalf("final output %s differs", key)
		}
	}
	// rep itself appears in external memory under both schedulers.
	for iter := 0; iter < part.App.Iterations; iter++ {
		key := "rep@" + string(rune('0'+iter))
		if _, ok := rCDS.Ext[key]; !ok {
			t.Errorf("rep@%d missing from CDS external memory", iter)
		}
	}
}
