// Hook-ordering coverage for RunWithHooks: the machine drives its
// load/store hooks in program order — visits in schedule order, loads
// before stores within a visit, exactly one hook call per scheduled
// transfer — and fault injection (internal/faultmachine) observes that
// same sequence: stalls leave it untouched, a transfer failure truncates
// it exactly at the faulted transfer.
//
// This lives in an external test package because faultmachine imports
// machine; the package under test is still machine.
package machine_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cds/internal/core"
	"cds/internal/faultmachine"
	"cds/internal/machine"
	"cds/internal/workloads"
)

// xfer is one observed hook invocation.
type xfer struct {
	Op      string
	Datum   string
	AbsIter int
	Size    int
}

func (x xfer) String() string {
	return fmt.Sprintf("%s %s@%d (%dB)", x.Op, x.Datum, x.AbsIter, x.Size)
}

// recordingHooks appends every hook invocation to seq and never faults.
func recordingHooks(seq *[]xfer) *machine.Hooks {
	return &machine.Hooks{
		OnLoad: func(datum string, absIter, size int) error {
			*seq = append(*seq, xfer{"load", datum, absIter, size})
			return nil
		},
		OnStore: func(datum string, absIter, size int) error {
			*seq = append(*seq, xfer{"store", datum, absIter, size})
			return nil
		},
	}
}

func mpegSchedule(t *testing.T, sched core.Scheduler) *core.Schedule {
	t.Helper()
	e, err := workloads.ByName("MPEG")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatalf("%s: %v", sched.Name(), err)
	}
	return s
}

// visitXfers expands one visit's movements into the multiset of hook
// calls the machine must make for it: one store per (store movement,
// slot), and one load per (datum, slot) the visit transfers. Loads
// dedup by datum because the Basic scheduler's v.Loads counts a datum
// once per consuming kernel — that duplication is its traffic-accounting
// story, while the machine places (and loads) each instance exactly
// once.
func visitXfers(s *core.Schedule, v core.Visit, op string, moves []core.Movement) []xfer {
	var out []xfer
	seen := map[string]bool{}
	for _, m := range moves {
		if op == "load" {
			if seen[m.Datum] {
				continue
			}
			seen[m.Datum] = true
		}
		for slot := 0; slot < v.Iters; slot++ {
			out = append(out, xfer{op, m.Datum, v.Block*s.RF + slot, s.P.App.SizeOf(m.Datum)})
		}
	}
	return out
}

func sortXfers(xs []xfer) {
	sort.Slice(xs, func(i, j int) bool {
		a, b := xs[i], xs[j]
		if a.Datum != b.Datum {
			return a.Datum < b.Datum
		}
		return a.AbsIter < b.AbsIter
	})
}

// checkProgramOrder verifies seq against the schedule: the stream
// partitions into contiguous per-visit groups in schedule order; within
// a visit every load precedes every store; and each group is exactly the
// visit's scheduled transfer multiset — nothing missing, nothing
// duplicated, nothing out of place.
func checkProgramOrder(t *testing.T, s *core.Schedule, seq []xfer) {
	t.Helper()
	at := 0
	take := func(vi int, want []xfer, phase string) {
		t.Helper()
		if at+len(want) > len(seq) {
			t.Fatalf("visit %d: stream ends after %d transfers, want %d more %ss",
				vi, len(seq)-at, at+len(want)-len(seq), phase)
		}
		got := append([]xfer(nil), seq[at:at+len(want)]...)
		at += len(want)
		for _, x := range got {
			if x.Op != phase {
				t.Fatalf("visit %d: %v arrived during the %s phase", vi, x, phase)
			}
		}
		sortXfers(got)
		sortXfers(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("visit %d %ss:\n got %v\nwant %v", vi, phase, got, want)
		}
	}
	for vi, v := range s.Visits {
		take(vi, visitXfers(s, v, "load", v.Loads), "load")
		take(vi, visitXfers(s, v, "store", v.Stores), "store")
	}
	if at != len(seq) {
		t.Fatalf("%d hook calls beyond the last visit: %v", len(seq)-at, seq[at:])
	}
}

// TestHookProgramOrder pins the ordering guarantee on the fault-free
// machine for all three schedulers.
func TestHookProgramOrder(t *testing.T) {
	for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
		t.Run(sched.Name(), func(t *testing.T) {
			s := mpegSchedule(t, sched)
			var seq []xfer
			if _, err := machine.RunWithHooks(s, 11, nil, recordingHooks(&seq)); err != nil {
				t.Fatal(err)
			}
			if len(seq) == 0 {
				t.Fatal("no hook calls recorded")
			}
			checkProgramOrder(t, s, seq)
		})
	}
}

// TestHookOrderUnderStalls pins that injected stalls neither reorder,
// drop nor duplicate hook events: the observed sequence is identical to
// the fault-free one and the outputs stay byte-for-byte equal.
func TestHookOrderUnderStalls(t *testing.T) {
	s := mpegSchedule(t, core.CompleteDataScheduler{})

	var ref []xfer
	clean, err := machine.RunWithHooks(s, 11, nil, recordingHooks(&ref))
	if err != nil {
		t.Fatal(err)
	}

	var seq []xfer
	res, st, err := faultmachine.Run(s, 11, nil, faultmachine.Config{
		Seed:         3,
		StallProbPct: 75,
		Observe:      func(op, datum string, absIter, size int) { seq = append(seq, xfer{op, datum, absIter, size}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stalls == 0 {
		t.Fatal("vacuous: no stalls injected at 75%")
	}
	if !reflect.DeepEqual(seq, ref) {
		t.Fatalf("stalled sequence diverged: %d events vs %d fault-free", len(seq), len(ref))
	}
	checkProgramOrder(t, s, seq)
	for key, want := range clean.FinalOutputs(s) {
		if !bytes.Equal(res.Ext[key], want) {
			t.Fatalf("output %s differs under stalls", key)
		}
	}
}

// TestHookOrderUnderFailure pins exactly-once semantics through an
// injected transfer failure: the observed sequence is a strict prefix of
// the fault-free one, cut precisely at the faulted transfer — the failed
// transfer is observed once (it was attempted) and nothing runs after it.
func TestHookOrderUnderFailure(t *testing.T) {
	s := mpegSchedule(t, core.DataScheduler{})

	var ref []xfer
	if _, err := machine.RunWithHooks(s, 11, nil, recordingHooks(&ref)); err != nil {
		t.Fatal(err)
	}

	const failAt = 7
	var seq []xfer
	_, _, err := faultmachine.Run(s, 11, nil, faultmachine.Config{
		FailEvery: failAt,
		Observe:   func(op, datum string, absIter, size int) { seq = append(seq, xfer{op, datum, absIter, size}) },
	})
	var fe *faultmachine.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FaultError", err)
	}
	if fe.N != failAt {
		t.Fatalf("fault hit transfer %d, want %d", fe.N, failAt)
	}
	if !reflect.DeepEqual(seq, ref[:failAt]) {
		t.Fatalf("failed run observed %d events, want the %d-event prefix of the fault-free order", len(seq), failAt)
	}
	last := seq[len(seq)-1]
	if fe.Op != last.Op || fe.Datum != last.Datum || fe.AbsIter != last.AbsIter {
		t.Fatalf("fault names %s %s@%d, last observed transfer was %v", fe.Op, fe.Datum, fe.AbsIter, last)
	}
}
