// Package machine executes a data schedule FUNCTIONALLY: external memory,
// the Frame Buffer sets and every transfer move real bytes, and kernels
// compute real (pluggable) functions over their operands. It exists to
// prove the schedulers' headline safety property end to end:
//
//	whatever the scheduler does — reuse factors, in-place replacement,
//	retention, cross-set reads, tiling — the observable outputs (the
//	final results written to external memory) are byte-identical.
//
// The Basic Scheduler moves ~2x the data of the Complete Data Scheduler
// on some workloads; this package shows they still compute the same
// thing.
package machine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"cds/internal/core"
)

// Semantics computes one kernel invocation: given the kernel name, the
// absolute iteration and the input bytes (keyed by datum name), it
// returns the output bytes (keyed by datum name; sizes must match the
// application's declared sizes, which are given in outputs).
type Semantics func(kernel string, absIter int, inputs map[string][]byte, outputs map[string]int) (map[string][]byte, error)

// DefaultSemantics returns a deterministic mixing function: every output
// byte depends on the kernel name, the output datum, the absolute
// iteration and every input byte. Two executions agree if and only if
// their (kernel, iteration, inputs) agree — exactly what the equivalence
// tests need.
func DefaultSemantics() Semantics {
	return func(kernel string, absIter int, inputs map[string][]byte, outputs map[string]int) (map[string][]byte, error) {
		// Hash all inputs in deterministic (sorted) order.
		names := make([]string, 0, len(inputs))
		for n := range inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		h := fnv.New64a()
		h.Write([]byte(kernel))
		var ib [8]byte
		binary.LittleEndian.PutUint64(ib[:], uint64(absIter))
		h.Write(ib[:])
		for _, n := range names {
			h.Write([]byte(n))
			h.Write(inputs[n])
		}
		seed := h.Sum64()

		out := make(map[string][]byte, len(outputs))
		for name, size := range outputs {
			buf := make([]byte, size)
			state := seed ^ fnvString(name)
			for i := range buf {
				// xorshift64 keeps it cheap and deterministic.
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				buf[i] = byte(state)
			}
			out[name] = buf
		}
		return out, nil
	}
}

func fnvString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// InputBytes deterministically generates the external input data for one
// datum at one absolute iteration.
func InputBytes(seed int64, datum string, absIter, size int) []byte {
	buf := make([]byte, size)
	state := uint64(seed)*0x9e3779b97f4a7c15 ^ fnvString(datum) ^ uint64(absIter)*0xbf58476d1ce4e5b9
	if state == 0 {
		state = 1
	}
	for i := range buf {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf[i] = byte(state)
	}
	return buf
}

// extKey addresses external memory: one datum instance per absolute
// iteration.
type extKey struct {
	datum   string
	absIter int
}

// Result is the outcome of a functional run.
type Result struct {
	// Ext is the final external memory: every stored result (and the
	// untouched inputs), keyed "datum@iteration".
	Ext map[string][]byte
	// LoadedBytes/StoredBytes/KernelRuns count the functional activity.
	LoadedBytes, StoredBytes, KernelRuns int
}

// FinalOutputs extracts only the application's final results, the
// observable behavior that must match across schedulers.
func (r *Result) FinalOutputs(s *core.Schedule) map[string][]byte {
	out := map[string][]byte{}
	a := s.P.App
	for key, data := range r.Ext {
		name := key[:strings.LastIndex(key, "@")]
		if a.IsFinalResult(name) {
			out[key] = data
		}
	}
	return out
}

// Hooks intercept the machine's external-memory transfers before the
// bytes move. A non-nil return aborts the run with that error (wrapped
// with the transfer's identity), which is how the fault-injection
// harness (internal/faultmachine) models DMA transfer failures; a nil
// return lets the transfer proceed untouched. Either hook may be nil.
type Hooks struct {
	// OnLoad fires before a datum instance is read from external
	// memory into the Frame Buffer.
	OnLoad func(datum string, absIter, size int) error
	// OnStore fires before a result instance is written back to
	// external memory.
	OnStore func(datum string, absIter, size int) error
}

// Run executes the schedule functionally with the given input seed and
// kernel semantics (nil means DefaultSemantics).
func Run(s *core.Schedule, seed int64, sem Semantics) (*Result, error) {
	return RunWithHooks(s, seed, sem, nil)
}

// RunWithHooks is Run with transfer interception (see Hooks).
func RunWithHooks(s *core.Schedule, seed int64, sem Semantics, hooks *Hooks) (*Result, error) {
	if sem == nil {
		sem = DefaultSemantics()
	}
	if hooks == nil {
		hooks = &Hooks{}
	}
	a := s.P.App

	rep, err := core.Allocate(s, true)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	type visitKey struct{ block, cluster int }
	eventsByVisit := map[visitKey][]core.AllocEvent{}
	for _, ev := range rep.Events {
		k := visitKey{ev.Block, ev.Cluster}
		eventsByVisit[k] = append(eventsByVisit[k], ev)
	}

	// External memory: inputs are generated lazily; results appear when
	// stored.
	ext := map[extKey][]byte{}
	extRead := func(datum string, absIter int) ([]byte, error) {
		if hooks.OnLoad != nil {
			if err := hooks.OnLoad(datum, absIter, a.SizeOf(datum)); err != nil {
				return nil, fmt.Errorf("machine: load of %s@%d: %w", datum, absIter, err)
			}
		}
		key := extKey{datum, absIter}
		if data, ok := ext[key]; ok {
			return data, nil
		}
		if !a.IsExternalInput(datum) {
			return nil, fmt.Errorf("machine: load of %s@%d which was never stored", datum, absIter)
		}
		data := InputBytes(seed, datum, absIter, a.SizeOf(datum))
		ext[key] = data
		return data, nil
	}

	// Frame buffer sets and the placement map.
	fbs := map[int][]byte{}
	for _, c := range s.P.Clusters {
		if _, ok := fbs[c.Set]; !ok {
			fbs[c.Set] = make([]byte, s.Arch.FBSetBytes)
		}
	}
	type placeKey struct {
		set  int
		inst string
	}
	placed := map[placeKey]core.AllocEvent{}
	// findPlacement locates an instance, preferring the home set and
	// falling back to any set (cross-set remote reads).
	findPlacement := func(set int, inst string) (core.AllocEvent, bool) {
		if ev, ok := placed[placeKey{set, inst}]; ok {
			return ev, true
		}
		for otherSet := range fbs {
			if ev, ok := placed[placeKey{otherSet, inst}]; ok {
				return ev, true
			}
		}
		return core.AllocEvent{}, false
	}

	res := &Result{}

	for _, v := range s.Visits {
		evs := eventsByVisit[visitKey{v.Block, v.Cluster}]
		loadsDatum := map[string]bool{}
		for _, m := range v.Loads {
			loadsDatum[m.Datum] = true
		}

		// applyEvent mirrors the allocator replay: placements appear
		// (with loaded data copied in) and disappear in the exact order
		// the allocator decided — a later allocation may legally reuse a
		// released address, so order matters for the bytes.
		applyEvent := func(ev core.AllocEvent) error {
			switch ev.Op {
			case core.OpAlloc:
				placed[placeKey{ev.Set, ev.Object}] = ev
				if !loadsDatum[ev.Datum] {
					return nil
				}
				slot, err := instanceSlot(ev.Object)
				if err != nil {
					return err
				}
				data, err := extRead(ev.Datum, v.Block*s.RF+slot)
				if err != nil {
					return err
				}
				if len(data) != ev.Bytes {
					return fmt.Errorf("machine: %s: external size %d != placement %d", ev.Object, len(data), ev.Bytes)
				}
				copy(fbs[ev.Set][ev.Addr:ev.Addr+ev.Bytes], data)
				res.LoadedBytes += ev.Bytes
			case core.OpRelease:
				delete(placed, placeKey{ev.Set, ev.Object})
			}
			return nil
		}

		// Group the execution-phase events by (kernel, slot); pre-visit
		// loading (Kernel == -1, Iter == -1) applies now, end-of-visit
		// releases (Kernel == -1, Iter >= 0) apply after the stores.
		type stepKey struct{ kernel, slot int }
		stepEvents := map[stepKey][]core.AllocEvent{}
		var post []core.AllocEvent
		for _, ev := range evs {
			switch {
			case ev.Kernel >= 0:
				k := stepKey{ev.Kernel, ev.Iter}
				stepEvents[k] = append(stepEvents[k], ev)
			case ev.Iter == -1:
				if err := applyEvent(ev); err != nil {
					return nil, err
				}
			default:
				post = append(post, ev)
			}
		}

		// Execute: loop fission order (each kernel runs all the
		// visit's iterations back to back), with each step's
		// placements and releases applied around it in replay order.
		for _, ki := range s.P.Clusters[v.Cluster].Kernels {
			k := a.Kernels[ki]
			for slot := 0; slot < v.Iters; slot++ {
				absIter := v.Block*s.RF + slot
				// Allocations of this step (streamed inputs and the
				// kernel's outputs) appear before it runs...
				var stepReleases []core.AllocEvent
				for _, ev := range stepEvents[stepKey{ki, slot}] {
					if ev.Op == core.OpRelease {
						stepReleases = append(stepReleases, ev)
						continue
					}
					if err := applyEvent(ev); err != nil {
						return nil, err
					}
				}
				inputs := map[string][]byte{}
				for _, in := range k.Inputs {
					ev, ok := findPlacement(v.Set, instanceName(in, slot))
					if !ok {
						return nil, fmt.Errorf("machine: kernel %s misses input %s (visit c%d b%d)",
							k.Name, instanceName(in, slot), v.Cluster, v.Block)
					}
					buf := make([]byte, ev.Bytes)
					copy(buf, fbs[ev.Set][ev.Addr:ev.Addr+ev.Bytes])
					inputs[in] = buf
				}
				outSizes := map[string]int{}
				for _, out := range k.Outputs {
					outSizes[out] = a.SizeOf(out)
				}
				outs, err := sem(k.Name, absIter, inputs, outSizes)
				if err != nil {
					return nil, fmt.Errorf("machine: kernel %s: %w", k.Name, err)
				}
				for _, out := range k.Outputs {
					data, ok := outs[out]
					if !ok || len(data) != a.SizeOf(out) {
						return nil, fmt.Errorf("machine: kernel %s produced %d bytes for %s, want %d",
							k.Name, len(data), out, a.SizeOf(out))
					}
					ev, ok := findPlacement(v.Set, instanceName(out, slot))
					if !ok {
						return nil, fmt.Errorf("machine: no placement for output %s", instanceName(out, slot))
					}
					copy(fbs[ev.Set][ev.Addr:ev.Addr+ev.Bytes], data)
				}
				res.KernelRuns++
				// ...and its releases free space afterwards.
				for _, ev := range stepReleases {
					if err := applyEvent(ev); err != nil {
						return nil, err
					}
				}
			}
		}

		// Stores: copy results back to external memory.
		for _, m := range v.Stores {
			for slot := 0; slot < v.Iters; slot++ {
				inst := instanceName(m.Datum, slot)
				if hooks.OnStore != nil {
					if err := hooks.OnStore(m.Datum, v.Block*s.RF+slot, a.SizeOf(m.Datum)); err != nil {
						return nil, fmt.Errorf("machine: store of %s@%d: %w", m.Datum, v.Block*s.RF+slot, err)
					}
				}
				ev, ok := findPlacement(v.Set, inst)
				if !ok {
					return nil, fmt.Errorf("machine: store of unplaced %s", inst)
				}
				data := make([]byte, ev.Bytes)
				copy(data, fbs[ev.Set][ev.Addr:ev.Addr+ev.Bytes])
				ext[extKey{m.Datum, v.Block*s.RF + slot}] = data
				res.StoredBytes += ev.Bytes
			}
		}

		// End-of-visit releases (persistent results, retained spans).
		for _, ev := range post {
			if err := applyEvent(ev); err != nil {
				return nil, err
			}
		}
	}

	res.Ext = make(map[string][]byte, len(ext))
	for key, data := range ext {
		res.Ext[fmt.Sprintf("%s@%d", key.datum, key.absIter)] = data
	}
	return res, nil
}

func instanceName(datum string, slot int) string {
	return fmt.Sprintf("%s#i%d", datum, slot)
}

// instanceSlot parses the iteration slot out of an instance name.
func instanceSlot(inst string) (int, error) {
	i := strings.LastIndex(inst, "#i")
	if i < 0 {
		return 0, fmt.Errorf("machine: malformed instance name %q", inst)
	}
	slot, err := strconv.Atoi(inst[i+2:])
	if err != nil {
		return 0, fmt.Errorf("machine: malformed instance name %q: %v", inst, err)
	}
	return slot, nil
}
