package machine

import (
	"bytes"
	"fmt"
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
	"cds/internal/workloads"
)

func testArch(fb, cm int) arch.Params {
	p := arch.M1()
	p.FBSetBytes = fb
	p.CMWords = cm
	return p
}

// pipe is the canonical test app with intra-cluster intermediates,
// same-set shared data, a shared result and a cross-set result.
func pipe(iters int) *app.Partition {
	b := app.NewBuilder("pipe", iters).
		Datum("inA", 100).
		Datum("x", 50).
		Datum("m", 30).
		Datum("r2", 60).
		Datum("rB", 40).
		Datum("out1", 20).
		Datum("out2", 20)
	b.Kernel("k1", 16, 100).In("inA", "x").Out("m")
	b.Kernel("k2", 16, 100).In("m").Out("r2", "rB")
	b.Kernel("k3", 16, 100).In("r2").Out("out1")
	b.Kernel("k4", 16, 100).In("inA", "rB").Out("out2")
	return app.MustPartition(b.MustBuild(), 2, 2, 1, 1)
}

func mustRun(t *testing.T, sched core.Scheduler, pa arch.Params, part *app.Partition, seed int64) (*Result, *core.Schedule) {
	t.Helper()
	s, err := sched.Schedule(pa, part)
	if err != nil {
		t.Fatalf("%s: %v", sched.Name(), err)
	}
	res, err := Run(s, seed, nil)
	if err != nil {
		t.Fatalf("%s: %v", sched.Name(), err)
	}
	return res, s
}

// TestSchedulersComputeTheSameThing is the headline functional property:
// Basic, DS and CDS move very different amounts of data but must produce
// byte-identical final outputs.
func TestSchedulersComputeTheSameThing(t *testing.T) {
	part := pipe(6)
	pa := testArch(400, 32)

	basicRes, basicS := mustRun(t, core.Basic{}, pa, part, 7)
	dsRes, _ := mustRun(t, core.DataScheduler{}, pa, part, 7)
	cdsRes, cdsS := mustRun(t, core.CompleteDataScheduler{}, pa, part, 7)

	basicOut := basicRes.FinalOutputs(basicS)
	dsOut := dsRes.FinalOutputs(basicS)
	cdsOut := cdsRes.FinalOutputs(cdsS)
	if len(basicOut) == 0 {
		t.Fatal("no final outputs recorded")
	}
	// 2 final datums x 6 iterations.
	if len(basicOut) != 12 {
		t.Fatalf("final outputs = %d, want 12", len(basicOut))
	}
	assertSameOutputs(t, "ds", basicOut, dsOut)
	assertSameOutputs(t, "cds", basicOut, cdsOut)

	// The traffic really differed (otherwise the test proves nothing).
	if cdsRes.LoadedBytes >= basicRes.LoadedBytes {
		t.Errorf("CDS loaded %d, basic %d: expected less traffic", cdsRes.LoadedBytes, basicRes.LoadedBytes)
	}
	if cdsRes.KernelRuns != basicRes.KernelRuns {
		t.Errorf("kernel runs differ: %d vs %d", cdsRes.KernelRuns, basicRes.KernelRuns)
	}
}

func assertSameOutputs(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for key, data := range want {
		if !bytes.Equal(got[key], data) {
			t.Fatalf("%s: output %s differs", label, key)
		}
	}
}

// TestEquivalenceOnPaperExperiments runs the functional equivalence check
// over every Table 1 workload.
func TestEquivalenceOnPaperExperiments(t *testing.T) {
	for _, e := range workloads.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			basicRes, basicS := mustRun(t, core.Basic{}, e.Arch, e.Part, 3)
			cdsRes, cdsS := mustRun(t, core.CompleteDataScheduler{}, e.Arch, e.Part, 3)
			assertSameOutputs(t, e.Name, basicRes.FinalOutputs(basicS), cdsRes.FinalOutputs(cdsS))
			_ = cdsRes
		})
	}
}

// TestEquivalenceWithCrossSetAndTiling covers the two future-work
// extensions: cross-set retention and intra-kernel tiling must preserve
// observable outputs of the schedulers that use them.
func TestEquivalenceWithCrossSet(t *testing.T) {
	part := pipe(6)
	pa := testArch(600, 64)
	plainRes, plainS := mustRun(t, core.CompleteDataScheduler{}, pa, part, 11)
	crossRes, crossS := mustRun(t, core.CompleteDataScheduler{CrossSetReuse: true}, pa, part, 11)
	if len(crossS.Retained) <= len(plainS.Retained) {
		t.Fatalf("cross-set retained %d <= plain %d: extension inactive", len(crossS.Retained), len(plainS.Retained))
	}
	assertSameOutputs(t, "cross-set", plainRes.FinalOutputs(plainS), crossRes.FinalOutputs(crossS))
}

// TestDeterminism: same seed, same outputs; different seed, different
// outputs.
func TestDeterminism(t *testing.T) {
	part := pipe(4)
	pa := testArch(400, 64)
	r1, s1 := mustRun(t, core.DataScheduler{}, pa, part, 5)
	r2, _ := mustRun(t, core.DataScheduler{}, pa, part, 5)
	r3, _ := mustRun(t, core.DataScheduler{}, pa, part, 6)
	assertSameOutputs(t, "repeat", r1.FinalOutputs(s1), r2.FinalOutputs(s1))
	same := true
	for key, data := range r1.FinalOutputs(s1) {
		if !bytes.Equal(r3.Ext[key], data) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical outputs")
	}
}

// TestSemanticsContract: a semantics returning wrong sizes is rejected.
func TestSemanticsContract(t *testing.T) {
	part := pipe(2)
	pa := testArch(400, 64)
	s, err := (core.DataScheduler{}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(kernel string, absIter int, in map[string][]byte, out map[string]int) (map[string][]byte, error) {
		res := map[string][]byte{}
		for name := range out {
			res[name] = []byte{1} // wrong size
		}
		return res, nil
	}
	if _, err := Run(s, 1, bad); err == nil {
		t.Error("wrong-size semantics accepted")
	}
	failing := func(kernel string, absIter int, in map[string][]byte, out map[string]int) (map[string][]byte, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := Run(s, 1, failing); err == nil {
		t.Error("failing semantics not propagated")
	}
}

// TestInputBytesDeterministic: generation is stable and size-correct.
func TestInputBytesDeterministic(t *testing.T) {
	a := InputBytes(1, "x", 3, 64)
	b := InputBytes(1, "x", 3, 64)
	if !bytes.Equal(a, b) {
		t.Error("InputBytes not deterministic")
	}
	if bytes.Equal(a, InputBytes(1, "x", 4, 64)) {
		t.Error("iterations should differ")
	}
	if bytes.Equal(a, InputBytes(2, "x", 3, 64)) {
		t.Error("seeds should differ")
	}
	if len(InputBytes(0, "y", 0, 17)) != 17 {
		t.Error("size wrong")
	}
}

// TestInstanceSlot parses canonical and malformed names.
func TestInstanceSlot(t *testing.T) {
	if s, err := instanceSlot("x#i12"); err != nil || s != 12 {
		t.Errorf("instanceSlot(x#i12) = %d, %v", s, err)
	}
	if _, err := instanceSlot("nope"); err == nil {
		t.Error("malformed name accepted")
	}
	if _, err := instanceSlot("x#ifoo"); err == nil {
		t.Error("non-numeric slot accepted")
	}
}

// TestEquivalenceOnSyntheticSeeds fuzzes the equivalence property.
func TestEquivalenceOnSyntheticSeeds(t *testing.T) {
	cfg := workloads.DefaultSynthetic()
	pa := workloads.SyntheticArch(cfg)
	for seed := int64(0); seed < 12; seed++ {
		part, err := workloads.Synthetic(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		dsS, err := (core.DataScheduler{}).Schedule(pa, part)
		if err != nil {
			continue // tight seeds may not fit; fine
		}
		cdsS, err := (core.CompleteDataScheduler{}).Schedule(pa, part)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dsRes, err := Run(dsS, seed, nil)
		if err != nil {
			t.Fatalf("seed %d ds: %v", seed, err)
		}
		cdsRes, err := Run(cdsS, seed, nil)
		if err != nil {
			t.Fatalf("seed %d cds: %v", seed, err)
		}
		assertSameOutputs(t, "synthetic", dsRes.FinalOutputs(dsS), cdsRes.FinalOutputs(cdsS))
	}
}

func TestZeroSeed(t *testing.T) {
	// Seed 0 must still generate nonzero, deterministic inputs (the
	// xorshift state is guarded against the zero fixed point).
	a := InputBytes(0, "x", 0, 32)
	allZero := true
	for _, v := range a {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("seed 0 produced all-zero data")
	}
	if !bytes.Equal(a, InputBytes(0, "x", 0, 32)) {
		t.Error("seed 0 not deterministic")
	}
}
