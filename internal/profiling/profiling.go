// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the one-shot CLIs, so any sweep or evaluation run can feed
// `go tool pprof` directly. The long-lived daemon exposes the same data
// over HTTP instead (schedd's -debug-addr).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (empty = none) and returns a
// stop function that ends it and writes a heap profile to memPath
// (empty = none). The caller must run stop before exiting — including
// on error paths, where deferred calls after os.Exit never run.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
