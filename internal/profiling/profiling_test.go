package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("Start into a missing directory succeeded")
	}
}
