package rcarray

import "fmt"

// Mode selects how a step's context words are broadcast across the array.
type Mode uint8

const (
	// RowMode broadcasts context i to every cell of row i (all cells of
	// a row perform the same operation — M1's row context block).
	RowMode Mode = iota
	// ColMode broadcasts context i to every cell of column i.
	ColMode
)

func (m Mode) String() string {
	if m == RowMode {
		return "row"
	}
	return "col"
}

// Step is one array-wide execution step: a broadcast mode, one context per
// row (or column), and the frame-buffer operand/result windows.
type Step struct {
	Mode Mode
	// Ctx holds one context per broadcast lane (row or column). Lanes
	// without an entry execute OpNop.
	Ctx []Context
	// FBLoadBase is the FB word index cell (r,c) reads when a source is
	// SrcFB: base + r*Cols + c.
	FBLoadBase int
	// FBStoreBase is the FB word index cell (r,c) writes when its
	// context has WriteFB: base + r*Cols + c.
	FBStoreBase int
}

// Array is the functional RC array state.
type Array struct {
	Rows, Cols int

	regs [][4]int16 // per cell, row-major
	out  []int16    // per cell: output register visible to neighbors next step
	fb   []int16    // frame buffer, 16-bit words

	// Steps counts executed steps (a cheap cycle proxy for tests).
	Steps int
}

// New returns an array of the given geometry with a frame buffer of
// fbWords 16-bit words.
func New(rows, cols, fbWords int) *Array {
	if rows <= 0 || cols <= 0 || fbWords < 0 {
		panic(fmt.Sprintf("rcarray: bad geometry %dx%d fb=%d", rows, cols, fbWords))
	}
	return &Array{
		Rows: rows,
		Cols: cols,
		regs: make([][4]int16, rows*cols),
		out:  make([]int16, rows*cols),
		fb:   make([]int16, fbWords),
	}
}

// M1Array returns the 8x8 M1 geometry with one 1K-word FB set.
func M1Array() *Array { return New(8, 8, 1024) }

func (a *Array) idx(r, c int) int { return r*a.Cols + c }

// LoadFB copies data into the frame buffer at the given word offset.
func (a *Array) LoadFB(offset int, data []int16) error {
	if offset < 0 || offset+len(data) > len(a.fb) {
		return fmt.Errorf("rcarray: LoadFB [%d,%d) outside FB of %d words", offset, offset+len(data), len(a.fb))
	}
	copy(a.fb[offset:], data)
	return nil
}

// ReadFB copies n words from the frame buffer starting at offset.
func (a *Array) ReadFB(offset, n int) ([]int16, error) {
	if offset < 0 || offset+n > len(a.fb) {
		return nil, fmt.Errorf("rcarray: ReadFB [%d,%d) outside FB of %d words", offset, offset+n, len(a.fb))
	}
	out := make([]int16, n)
	copy(out, a.fb[offset:])
	return out, nil
}

// Reg returns register d of cell (r, c).
func (a *Array) Reg(r, c int, d uint8) int16 { return a.regs[a.idx(r, c)][d&3] }

// SetReg sets register d of cell (r, c) — useful to preload coefficients.
func (a *Array) SetReg(r, c int, d uint8, v int16) { a.regs[a.idx(r, c)][d&3] = v }

// Out returns the output register of cell (r, c) after the last step.
func (a *Array) Out(r, c int) int16 { return a.out[a.idx(r, c)] }

// Reset clears all cell state and the frame buffer.
func (a *Array) Reset() {
	for i := range a.regs {
		a.regs[i] = [4]int16{}
		a.out[i] = 0
	}
	for i := range a.fb {
		a.fb[i] = 0
	}
	a.Steps = 0
}

// Execute runs the steps in order. All cells of a step update
// synchronously: neighbor reads (SrcNorth/SrcWest) observe the PREVIOUS
// step's outputs.
func (a *Array) Execute(steps []Step) error {
	for si, st := range steps {
		if err := a.executeStep(st); err != nil {
			return fmt.Errorf("rcarray: step %d: %w", si, err)
		}
	}
	return nil
}

// ExecuteEncoded decodes raw 32-bit context words (one lane each) and runs
// them as a step sequence — the path the code generator exercises.
func (a *Array) ExecuteEncoded(mode Mode, words [][]uint32, loadBase, storeBase int) error {
	steps := make([]Step, len(words))
	for i, lane := range words {
		ctxs := make([]Context, len(lane))
		for j, w := range lane {
			c, err := Decode(w)
			if err != nil {
				return err
			}
			ctxs[j] = c
		}
		steps[i] = Step{Mode: mode, Ctx: ctxs, FBLoadBase: loadBase, FBStoreBase: storeBase}
	}
	return a.Execute(steps)
}

func (a *Array) executeStep(st Step) error {
	lanes := a.Rows
	if st.Mode == ColMode {
		lanes = a.Cols
	}
	if len(st.Ctx) > lanes {
		return fmt.Errorf("%d contexts for %d lanes", len(st.Ctx), lanes)
	}

	newRegs := make([][4]int16, len(a.regs))
	copy(newRegs, a.regs)
	newOut := make([]int16, len(a.out))
	copy(newOut, a.out)
	fbWrites := map[int]int16{}

	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			lane := r
			if st.Mode == ColMode {
				lane = c
			}
			if lane >= len(st.Ctx) {
				continue
			}
			ctx := st.Ctx[lane]
			if ctx.Op == OpNop {
				continue
			}
			i := a.idx(r, c)
			av, err := a.operand(ctx.A, ctx, r, c, st)
			if err != nil {
				return err
			}
			bv, err := a.operand(ctx.B, ctx, r, c, st)
			if err != nil {
				return err
			}
			res := alu(ctx.Op, av, bv, a.regs[i][ctx.Dest&3])
			newRegs[i][ctx.Dest&3] = res
			newOut[i] = res
			if ctx.WriteFB {
				addr := st.FBStoreBase + i
				if addr < 0 || addr >= len(a.fb) {
					return fmt.Errorf("FB store at %d outside FB of %d words", addr, len(a.fb))
				}
				fbWrites[addr] = res
			}
		}
	}
	a.regs = newRegs
	a.out = newOut
	for addr, v := range fbWrites {
		a.fb[addr] = v
	}
	a.Steps++
	return nil
}

func (a *Array) operand(s Src, ctx Context, r, c int, st Step) (int16, error) {
	switch s {
	case SrcReg0, SrcReg1, SrcReg2, SrcReg3:
		return a.regs[a.idx(r, c)][s], nil
	case SrcImm:
		return ctx.Imm, nil
	case SrcFB:
		addr := st.FBLoadBase + a.idx(r, c)
		if addr < 0 || addr >= len(a.fb) {
			return 0, fmt.Errorf("FB load at %d outside FB of %d words", addr, len(a.fb))
		}
		return a.fb[addr], nil
	case SrcNorth:
		return a.out[a.idx((r-1+a.Rows)%a.Rows, c)], nil
	case SrcWest:
		return a.out[a.idx(r, (c-1+a.Cols)%a.Cols)], nil
	case SrcEast:
		return a.out[a.idx(r, (c+1)%a.Cols)], nil
	case SrcSouth:
		return a.out[a.idx((r+1)%a.Rows, c)], nil
	}
	return 0, fmt.Errorf("invalid source %v", s)
}

func alu(op Opcode, x, y, acc int16) int16 {
	switch op {
	case OpAdd:
		return x + y
	case OpSub:
		return x - y
	case OpMul:
		return x * y
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		return x << (uint16(y) & 15)
	case OpShr:
		return x >> (uint16(y) & 15)
	case OpAbs:
		if x < 0 {
			return -x
		}
		return x
	case OpMin:
		if x < y {
			return x
		}
		return y
	case OpMax:
		if x > y {
			return x
		}
		return y
	case OpMac:
		return acc + x*y
	case OpPass:
		return x
	case OpAbsd:
		d := x - y
		if d < 0 {
			return -d
		}
		return d
	}
	return 0
}
