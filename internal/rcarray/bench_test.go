package rcarray

import "testing"

// BenchmarkStepRowBroadcast measures one full-array synchronous step.
func BenchmarkStepRowBroadcast(b *testing.B) {
	a := M1Array()
	ctx := make([]Context, 8)
	for i := range ctx {
		ctx[i] = Context{Op: OpMac, A: SrcReg0, B: SrcImm, Imm: 3, Dest: 1}
	}
	steps := []Step{{Mode: RowMode, Ctx: ctx}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Execute(steps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecode measures context word packing.
func BenchmarkEncodeDecode(b *testing.B) {
	c := Context{Op: OpMac, A: SrcFB, B: SrcImm, Imm: -1234, Dest: 2, WriteFB: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := c.Encode()
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}
