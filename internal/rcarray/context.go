// Package rcarray is a functional simulator of the MorphoSys RC array:
// an 8x8 grid of 16-bit reconfigurable cells driven by 32-bit context
// words broadcast per row or per column. It exists so that the kernels the
// data scheduler moves data for are real programs with verifiable output,
// not opaque cost numbers: internal/kernels maps DSP micro-kernels onto
// this array and tests them against pure-Go references.
package rcarray

import "fmt"

// Opcode selects the ALU function of a cell for one context.
type Opcode uint8

// ALU operations. OpMac accumulates into the destination register
// (dest += a*b); all others overwrite it.
const (
	OpNop Opcode = iota
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right
	OpAbs // |a|
	OpMin
	OpMax
	OpMac  // dest += a*b
	OpPass // dest = a
	OpAbsd // |a-b| (sum-of-absolute-differences building block)
	numOpcodes
)

var opcodeNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpAbs: "abs", OpMin: "min", OpMax: "max",
	OpMac: "mac", OpPass: "pass", OpAbsd: "absd",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Src selects an ALU operand source.
type Src uint8

// Operand sources. The neighbor sources read the adjacent cell's output
// register from the PREVIOUS step (torus wrap in all four directions),
// giving systolic data movement. SrcFB reads the frame-buffer operand bus
// (one 16-bit word per cell, selected by the step's FB base and the cell
// position).
const (
	SrcReg0 Src = iota
	SrcReg1
	SrcReg2
	SrcReg3
	SrcImm
	SrcFB
	SrcNorth
	SrcWest
	SrcEast
	SrcSouth
	numSrcs
)

var srcNames = [...]string{
	SrcReg0: "r0", SrcReg1: "r1", SrcReg2: "r2", SrcReg3: "r3",
	SrcImm: "imm", SrcFB: "fb",
	SrcNorth: "north", SrcWest: "west", SrcEast: "east", SrcSouth: "south",
}

func (s Src) String() string {
	if int(s) < len(srcNames) {
		return srcNames[s]
	}
	return fmt.Sprintf("src(%d)", uint8(s))
}

// Context is one decoded 32-bit context word: it fully configures a cell
// for one execution step.
type Context struct {
	Op      Opcode
	A, B    Src
	Dest    uint8 // destination register 0..3
	Imm     int16 // immediate operand for SrcImm
	WriteFB bool  // drive the cell's result onto the FB write bus
}

// Bit layout of the 32-bit context word: 5+4+4+2+1+16 = 32 bits exactly.
const (
	opShift   = 0  // 5 bits
	aShift    = 5  // 4 bits
	bShift    = 9  // 4 bits
	destShift = 13 // 2 bits
	wfbShift  = 15 // 1 bit
	immShift  = 16 // 16 bits
)

// Encode packs the context into its 32-bit word.
func (c Context) Encode() uint32 {
	w := uint32(c.Op) << opShift
	w |= uint32(c.A) << aShift
	w |= uint32(c.B) << bShift
	w |= uint32(c.Dest&3) << destShift
	if c.WriteFB {
		w |= 1 << wfbShift
	}
	w |= uint32(uint16(c.Imm)) << immShift
	return w
}

// Decode unpacks a 32-bit context word. It fails on out-of-range opcode or
// source fields (a corrupted context must not execute silently).
func Decode(w uint32) (Context, error) {
	c := Context{
		Op:      Opcode(w >> opShift & 0x1f),
		A:       Src(w >> aShift & 0xf),
		B:       Src(w >> bShift & 0xf),
		Dest:    uint8(w >> destShift & 0x3),
		WriteFB: w>>wfbShift&1 == 1,
		Imm:     int16(uint16(w >> immShift)),
	}
	if c.Op >= numOpcodes {
		return Context{}, fmt.Errorf("rcarray: invalid opcode %d in context %#x", c.Op, w)
	}
	if c.A >= numSrcs || c.B >= numSrcs {
		return Context{}, fmt.Errorf("rcarray: invalid operand source in context %#x", w)
	}
	return c, nil
}
