package rcarray

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestContextEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op, a, b, dest uint8, imm int16, wfb bool) bool {
		c := Context{
			Op:      Opcode(op % uint8(numOpcodes)),
			A:       Src(a % uint8(numSrcs)),
			B:       Src(b % uint8(numSrcs)),
			Dest:    dest & 3,
			Imm:     imm,
			WriteFB: wfb,
		}
		got, err := Decode(c.Encode())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// Opcode field beyond numOpcodes.
	bad := uint32(numOpcodes) << opShift
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
}

func TestOpcodeAndSrcStrings(t *testing.T) {
	if OpMac.String() != "mac" || SrcWest.String() != "west" {
		t.Error("String() names broken")
	}
	if !strings.Contains(Opcode(31).String(), "31") {
		t.Error("out-of-range opcode should render numerically")
	}
	if RowMode.String() != "row" || ColMode.String() != "col" {
		t.Error("Mode strings broken")
	}
}

func TestVectorAddViaFB(t *testing.T) {
	// FB[0..63] + FB[64..127] -> FB[128..191], all 64 cells in one
	// load/add/store pipeline of two steps.
	a := M1Array()
	x := make([]int16, 64)
	y := make([]int16, 64)
	for i := range x {
		x[i] = int16(i)
		y[i] = int16(1000 - i)
	}
	if err := a.LoadFB(0, x); err != nil {
		t.Fatal(err)
	}
	if err := a.LoadFB(64, y); err != nil {
		t.Fatal(err)
	}
	rowCtx := func(c Context) []Context {
		ctxs := make([]Context, 8)
		for i := range ctxs {
			ctxs[i] = c
		}
		return ctxs
	}
	steps := []Step{
		// r0 = FB[x]
		{Mode: RowMode, Ctx: rowCtx(Context{Op: OpPass, A: SrcFB, Dest: 0}), FBLoadBase: 0},
		// out = r0 + FB[y], write FB.
		{Mode: RowMode, Ctx: rowCtx(Context{Op: OpAdd, A: SrcReg0, B: SrcFB, Dest: 1, WriteFB: true}),
			FBLoadBase: 64, FBStoreBase: 128},
	}
	if err := a.Execute(steps); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadFB(128, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 1000 {
			t.Fatalf("FB[128+%d] = %d, want 1000", i, got[i])
		}
	}
	if a.Steps != 2 {
		t.Errorf("Steps = %d, want 2", a.Steps)
	}
}

func TestImmediateAndMac(t *testing.T) {
	a := New(2, 2, 16)
	ctx := []Context{
		{Op: OpPass, A: SrcImm, Imm: 7, Dest: 0},
		{Op: OpPass, A: SrcImm, Imm: 3, Dest: 0},
	}
	if err := a.Execute([]Step{{Mode: RowMode, Ctx: ctx}}); err != nil {
		t.Fatal(err)
	}
	if a.Reg(0, 0, 0) != 7 || a.Reg(1, 1, 0) != 3 {
		t.Fatalf("row broadcast failed: %d %d", a.Reg(0, 0, 0), a.Reg(1, 1, 0))
	}
	// MAC accumulates into dest: r1 += r0 * 2, twice.
	mac := []Context{
		{Op: OpMac, A: SrcReg0, B: SrcImm, Imm: 2, Dest: 1},
		{Op: OpMac, A: SrcReg0, B: SrcImm, Imm: 2, Dest: 1},
	}
	for i := 0; i < 2; i++ {
		if err := a.Execute([]Step{{Mode: RowMode, Ctx: mac}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Reg(0, 1, 1); got != 28 { // 7*2 + 7*2
		t.Errorf("MAC accumulator = %d, want 28", got)
	}
}

func TestColumnBroadcast(t *testing.T) {
	a := New(4, 4, 0)
	ctx := make([]Context, 4)
	for i := range ctx {
		ctx[i] = Context{Op: OpPass, A: SrcImm, Imm: int16(10 * i), Dest: 2}
	}
	if err := a.Execute([]Step{{Mode: ColMode, Ctx: ctx}}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got := a.Reg(r, c, 2); got != int16(10*c) {
				t.Fatalf("cell(%d,%d) r2 = %d, want %d", r, c, got, 10*c)
			}
		}
	}
}

func TestNeighborReadsPreviousStep(t *testing.T) {
	// West neighbor communication: a ripple of PASS from column 0.
	a := New(1, 4, 0)
	seed := []Step{{Mode: RowMode, Ctx: []Context{{Op: OpPass, A: SrcImm, Imm: 42, Dest: 0}}}}
	if err := a.Execute(seed); err != nil {
		t.Fatal(err)
	}
	// All four cells now output 42 (broadcast). Reset only cell state to
	// construct a distinguishable wavefront: use a targeted check on
	// synchronous semantics instead — cell reads WEST's output from the
	// previous step, so after one shift step every cell holds its west
	// neighbor's old 42, including wraparound.
	shift := []Step{{Mode: RowMode, Ctx: []Context{{Op: OpPass, A: SrcWest, Dest: 1}}}}
	if err := a.Execute(shift); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if got := a.Reg(0, c, 1); got != 42 {
			t.Fatalf("cell(0,%d) r1 = %d, want 42", c, got)
		}
	}
}

func TestSynchronousShiftIsNotSequential(t *testing.T) {
	// Load distinct values, shift west->east once: each cell must see
	// the OLD value of its west neighbor, not the freshly shifted one.
	a := New(1, 4, 8)
	vals := []int16{1, 2, 3, 4}
	if err := a.LoadFB(0, vals); err != nil {
		t.Fatal(err)
	}
	load := []Step{{Mode: RowMode, Ctx: []Context{{Op: OpPass, A: SrcFB, Dest: 0}}, FBLoadBase: 0}}
	if err := a.Execute(load); err != nil {
		t.Fatal(err)
	}
	shift := []Step{{Mode: RowMode, Ctx: []Context{{Op: OpPass, A: SrcWest, Dest: 0}}}}
	if err := a.Execute(shift); err != nil {
		t.Fatal(err)
	}
	want := []int16{4, 1, 2, 3} // torus wrap
	for c := 0; c < 4; c++ {
		if got := a.Reg(0, c, 0); got != want[c] {
			t.Fatalf("after shift, cell %d = %d, want %d", c, got, want[c])
		}
	}
}

func TestALUOps(t *testing.T) {
	tests := []struct {
		op   Opcode
		x, y int16
		acc  int16
		want int16
	}{
		{OpAdd, 3, 4, 0, 7},
		{OpSub, 3, 4, 0, -1},
		{OpMul, -3, 4, 0, -12},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpShl, 1, 4, 0, 16},
		{OpShr, -16, 2, 0, -4},
		{OpAbs, -9, 0, 0, 9},
		{OpAbs, 9, 0, 0, 9},
		{OpMin, 3, -4, 0, -4},
		{OpMax, 3, -4, 0, 3},
		{OpMac, 3, 4, 10, 22},
		{OpPass, 5, 9, 0, 5},
		{OpAbsd, 3, 10, 0, 7},
		{OpAbsd, 10, 3, 0, 7},
		{OpNop, 1, 2, 3, 0},
	}
	for _, tt := range tests {
		if got := alu(tt.op, tt.x, tt.y, tt.acc); got != tt.want {
			t.Errorf("alu(%v, %d, %d, %d) = %d, want %d", tt.op, tt.x, tt.y, tt.acc, got, tt.want)
		}
	}
}

func TestFBBoundsChecks(t *testing.T) {
	a := New(2, 2, 4)
	if err := a.LoadFB(2, []int16{1, 2, 3}); err == nil {
		t.Error("LoadFB out of range accepted")
	}
	if _, err := a.ReadFB(-1, 2); err == nil {
		t.Error("ReadFB negative offset accepted")
	}
	// SrcFB with a base that sends cell 3 out of range.
	st := Step{Mode: RowMode, Ctx: []Context{
		{Op: OpPass, A: SrcFB, Dest: 0},
		{Op: OpPass, A: SrcFB, Dest: 0},
	}, FBLoadBase: 2}
	if err := a.Execute([]Step{st}); err == nil {
		t.Error("FB load out of range accepted")
	}
	// WriteFB out of range.
	st2 := Step{Mode: RowMode, Ctx: []Context{
		{Op: OpPass, A: SrcImm, Imm: 1, Dest: 0, WriteFB: true},
		{Op: OpPass, A: SrcImm, Imm: 1, Dest: 0, WriteFB: true},
	}, FBStoreBase: 3}
	if err := a.Execute([]Step{st2}); err == nil {
		t.Error("FB store out of range accepted")
	}
}

func TestExecuteEncoded(t *testing.T) {
	a := New(2, 2, 8)
	if err := a.LoadFB(0, []int16{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	w := Context{Op: OpAdd, A: SrcFB, B: SrcImm, Imm: 1, Dest: 0, WriteFB: true}.Encode()
	if err := a.ExecuteEncoded(RowMode, [][]uint32{{w, w}}, 0, 4); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadFB(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int16{6, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FB[4+%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Corrupted word must be rejected.
	if err := a.ExecuteEncoded(RowMode, [][]uint32{{uint32(numOpcodes)}}, 0, 4); err == nil {
		t.Error("ExecuteEncoded accepted a corrupted context word")
	}
}

func TestTooManyLanes(t *testing.T) {
	a := New(2, 2, 0)
	st := Step{Mode: RowMode, Ctx: make([]Context, 3)}
	if err := a.Execute([]Step{st}); err == nil {
		t.Error("3 contexts for 2 rows accepted")
	}
}

func TestReset(t *testing.T) {
	a := New(2, 2, 4)
	a.SetReg(0, 0, 0, 99)
	if err := a.LoadFB(0, []int16{1}); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.Reg(0, 0, 0) != 0 || a.Steps != 0 {
		t.Error("Reset incomplete")
	}
	got, _ := a.ReadFB(0, 1)
	if got[0] != 0 {
		t.Error("Reset left FB data")
	}
}

func TestEastAndSouthNeighbors(t *testing.T) {
	a := New(2, 2, 8)
	if err := a.LoadFB(0, []int16{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	load := []Step{{Mode: RowMode, Ctx: []Context{
		{Op: OpPass, A: SrcFB, Dest: 0},
		{Op: OpPass, A: SrcFB, Dest: 0},
	}, FBLoadBase: 0}}
	if err := a.Execute(load); err != nil {
		t.Fatal(err)
	}
	// Shift east->west: each cell reads its EAST neighbor's old value.
	east := []Step{{Mode: RowMode, Ctx: []Context{
		{Op: OpPass, A: SrcEast, Dest: 1},
		{Op: OpPass, A: SrcEast, Dest: 1},
	}}}
	if err := a.Execute(east); err != nil {
		t.Fatal(err)
	}
	// Layout: (0,0)=1 (0,1)=2 / (1,0)=3 (1,1)=4; east of (0,0) is (0,1).
	wantEast := [][2]int16{{2, 1}, {4, 3}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if got := a.Reg(r, c, 1); got != wantEast[r][c] {
				t.Errorf("east: cell(%d,%d) = %d, want %d", r, c, got, wantEast[r][c])
			}
		}
	}
	// South: cell reads the row below (torus).
	south := []Step{{Mode: RowMode, Ctx: []Context{
		{Op: OpPass, A: SrcSouth, Dest: 2},
		{Op: OpPass, A: SrcSouth, Dest: 2},
	}}}
	// Refresh outputs to the original values first.
	refresh := []Step{{Mode: RowMode, Ctx: []Context{
		{Op: OpPass, A: SrcReg0, Dest: 0},
		{Op: OpPass, A: SrcReg0, Dest: 0},
	}}}
	if err := a.Execute(refresh); err != nil {
		t.Fatal(err)
	}
	if err := a.Execute(south); err != nil {
		t.Fatal(err)
	}
	wantSouth := [][2]int16{{3, 4}, {1, 2}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if got := a.Reg(r, c, 2); got != wantSouth[r][c] {
				t.Errorf("south: cell(%d,%d) = %d, want %d", r, c, got, wantSouth[r][c])
			}
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Any 32-bit word either decodes cleanly or errors; re-encoding an
	// accepted word's context reproduces the meaningful bits.
	f := func(w uint32) bool {
		c, err := Decode(w)
		if err != nil {
			return true
		}
		back, err := Decode(c.Encode())
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
