package report

import (
	"fmt"
	"io"
	"strings"

	"cds/internal/core"
)

// Occupancy renders the paper's Figure 5 view as an address-time map: the
// vertical axis is the Frame Buffer address space of one set (top
// addresses up, like the figure), the horizontal axis is allocation-event
// time, and each cell shows the object resident there (first letter of
// the datum, '.' when free). Shared data sit in the top band, results
// grow from the bottom — the two-sided discipline is visible at a glance.
func Occupancy(w io.Writer, events []core.AllocEvent, set, fbBytes, cols int) {
	if cols <= 0 {
		cols = 64
	}
	const rows = 16
	rowBytes := (fbBytes + rows - 1) / rows

	// Collect the live intervals after each event on the set.
	type interval struct {
		addr, size int
		datum      string
	}
	live := map[string]interval{}
	var snapshots [][]interval
	for _, ev := range events {
		if ev.Set != set {
			continue
		}
		switch ev.Op {
		case core.OpAlloc:
			live[ev.Object] = interval{addr: ev.Addr, size: ev.Bytes, datum: ev.Datum}
		case core.OpRelease:
			delete(live, ev.Object)
		}
		snap := make([]interval, 0, len(live))
		for _, iv := range live {
			snap = append(snap, iv)
		}
		snapshots = append(snapshots, snap)
	}
	if len(snapshots) == 0 {
		fmt.Fprintf(w, "no events on set %d\n", set)
		return
	}

	// Sample the snapshot sequence down to the column budget.
	step := 1
	if len(snapshots) > cols {
		step = (len(snapshots) + cols - 1) / cols
	}
	var sampled [][]interval
	for i := 0; i < len(snapshots); i += step {
		sampled = append(sampled, snapshots[i])
	}

	fmt.Fprintf(w, "FB set %d occupancy (top = high addresses; %d B per row; %d events per column)\n",
		set, rowBytes, step)
	for row := rows - 1; row >= 0; row-- {
		lo, hi := row*rowBytes, (row+1)*rowBytes
		var b strings.Builder
		fmt.Fprintf(&b, "%5d |", lo)
		for _, snap := range sampled {
			ch := byte('.')
			for _, iv := range snap {
				if iv.addr < hi && lo < iv.addr+iv.size {
					ch = glyph(iv.datum)
					break
				}
			}
			b.WriteByte(ch)
		}
		fmt.Fprintln(w, b.String())
	}
}

// glyph picks a stable display character for a datum.
func glyph(datum string) byte {
	for i := 0; i < len(datum); i++ {
		c := datum[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			return c
		}
	}
	return '#'
}

// Legend lists the data appearing in the events with their glyphs.
func Legend(w io.Writer, events []core.AllocEvent, set int) {
	seen := map[string]bool{}
	fmt.Fprint(w, "legend:")
	for _, ev := range events {
		if ev.Set != set || ev.Op != core.OpAlloc || seen[ev.Datum] {
			continue
		}
		seen[ev.Datum] = true
		fmt.Fprintf(w, " %c=%s", glyph(ev.Datum), ev.Datum)
	}
	fmt.Fprintln(w)
}
