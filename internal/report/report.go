// Package report renders the paper's evaluation artifacts: Table 1 (the
// per-experiment parameter/result table) and Figure 6 (the relative
// execution improvement bar chart), plus CSV output for downstream
// plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Row is one experiment's measured results alongside the paper's numbers.
type Row struct {
	Name string
	// N and NMax are the cluster count and max kernels per cluster
	// (Table 1's N and n).
	N, NMax int
	// DSBytes is the total data size per iteration (Table 1's DS).
	DSBytes int
	// DTBytes is the data transfer volume avoided per iteration by
	// retention (Table 1's DT).
	DTBytes int
	// RF is the measured context reuse factor; PaperRF the published
	// one (0 = unpublished).
	RF, PaperRF int
	// FBBytes is the frame buffer set size.
	FBBytes int
	// DSImp and CDSImp are the measured relative improvements (%);
	// PaperDS/PaperCDS the published ones (negative = unpublished).
	DSImp, CDSImp     float64
	PaperDS, PaperCDS float64
	// BasicFailed marks rows where the Basic Scheduler cannot run.
	BasicFailed bool
}

func formatSize(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dK", n/1024)
	case n >= 100:
		return fmt.Sprintf("%.1fK", float64(n)/1024)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Table1 renders the rows in the paper's Table 1 layout, with measured
// and published values side by side.
func Table1(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-10s %3s %3s %6s %6s %8s %5s %14s %14s\n",
		"exp", "N", "n", "DS", "DT", "RF", "FB", "DS impr", "CDS impr")
	fmt.Fprintf(w, "%-10s %3s %3s %6s %6s %8s %5s %14s %14s\n",
		"", "", "", "", "", "got/ppr", "", "got/ppr", "got/ppr")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, r := range rows {
		rf := fmt.Sprintf("%d/%s", r.RF, orDash(r.PaperRF))
		ds := fmt.Sprintf("%4.0f%%/%s", r.DSImp, orDashPct(r.PaperDS))
		cdsCol := fmt.Sprintf("%4.0f%%/%s", r.CDSImp, orDashPct(r.PaperCDS))
		if r.BasicFailed {
			ds = "basic: n/a"
			cdsCol = "basic: n/a"
		}
		fmt.Fprintf(w, "%-10s %3d %3d %6s %6s %8s %5s %14s %14s\n",
			r.Name, r.N, r.NMax, formatSize(r.DSBytes), formatSize(r.DTBytes),
			rf, formatSize(r.FBBytes), ds, cdsCol)
	}
}

func orDash(v int) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func orDashPct(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", v)
}

// Figure6 renders the relative-improvement bar chart as ASCII, one pair
// of bars (CDS above DS) per experiment, matching the paper's figure.
func Figure6(w io.Writer, rows []Row) {
	const scale = 1.25 // columns per percent point
	fmt.Fprintln(w, "Relative execution improvement over the Basic Scheduler (%)")
	fmt.Fprintln(w, strings.Repeat("-", 70))
	for _, r := range rows {
		if r.BasicFailed {
			fmt.Fprintf(w, "%-10s basic scheduler cannot execute this configuration\n", r.Name)
			continue
		}
		fmt.Fprintf(w, "%-10s CDS %s %.0f%%\n", r.Name, bar(r.CDSImp, scale), r.CDSImp)
		fmt.Fprintf(w, "%-10s DS  %s %.0f%%\n", "", bar(r.DSImp, scale), r.DSImp)
	}
}

func bar(pct, scale float64) string {
	n := int(pct * scale)
	if n < 0 {
		n = 0
	}
	if n > 100 {
		n = 100
	}
	return strings.Repeat("#", n)
}

// CSV writes the rows as comma-separated values with a header.
func CSV(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "experiment,clusters,max_kernels,ds_bytes,dt_bytes,rf,paper_rf,fb_bytes,ds_improvement,cds_improvement,paper_ds,paper_cds,basic_failed")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%v\n",
			r.Name, r.N, r.NMax, r.DSBytes, r.DTBytes, r.RF, r.PaperRF,
			r.FBBytes, r.DSImp, r.CDSImp, r.PaperDS, r.PaperCDS, r.BasicFailed)
	}
}

// Markdown renders the rows as a GitHub-flavored markdown table, the form
// EXPERIMENTS.md embeds; `cmd/experiments -markdown` regenerates it.
func Markdown(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "| exp | N | n | RF got/paper | FB | DS impr got/paper | CDS impr got/paper |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, r := range rows {
		if r.BasicFailed {
			fmt.Fprintf(w, "| %s | %d | %d | %d/%s | %s | basic: n/a | basic: n/a |\n",
				r.Name, r.N, r.NMax, r.RF, orDash(r.PaperRF), formatSize(r.FBBytes))
			continue
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d/%s | %s | %.0f%% / %s | %.0f%% / %s |\n",
			r.Name, r.N, r.NMax, r.RF, orDash(r.PaperRF), formatSize(r.FBBytes),
			r.DSImp, orDashPct(r.PaperDS), r.CDSImp, orDashPct(r.PaperCDS))
	}
}
