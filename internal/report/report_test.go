package report

import (
	"strings"
	"testing"

	"cds/internal/core"
)

func sampleRows() []Row {
	return []Row{
		{
			Name: "E1", N: 4, NMax: 2, DSBytes: 2048, DTBytes: 1152,
			RF: 1, PaperRF: 1, FBBytes: 1024,
			DSImp: 0, CDSImp: 16.6, PaperDS: 0, PaperCDS: 19,
		},
		{
			Name: "MPEG@1K", N: 4, NMax: 3, DSBytes: 1800, DTBytes: 0,
			RF: 1, PaperRF: 0, FBBytes: 1024,
			BasicFailed: true, PaperDS: -1, PaperCDS: -1,
		},
	}
}

func TestTable1Rendering(t *testing.T) {
	var b strings.Builder
	Table1(&b, sampleRows())
	out := b.String()
	for _, want := range []string{"E1", "2K", "1.1K", "1/1", "0%/0%", "17%/19%", "MPEG@1K", "basic: n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6Rendering(t *testing.T) {
	var b strings.Builder
	Figure6(&b, sampleRows())
	out := b.String()
	if !strings.Contains(out, "CDS ####") {
		t.Errorf("Figure6 missing CDS bar:\n%s", out)
	}
	if !strings.Contains(out, "cannot execute") {
		t.Errorf("Figure6 missing basic-failed note:\n%s", out)
	}
	// The DS bar for E1 is zero-length.
	if strings.Contains(out, "DS  #") {
		t.Errorf("Figure6 shows a bar for a 0%% improvement:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	CSV(&b, sampleRows())
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "E1,4,2,2048,1152,1,1,1024,0.00,16.60") {
		t.Errorf("CSV row wrong: %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], "true") {
		t.Errorf("CSV basic_failed flag missing: %q", lines[2])
	}
}

func TestBarClamping(t *testing.T) {
	if bar(-5, 1) != "" {
		t.Error("negative bar should be empty")
	}
	if len(bar(1000, 1)) != 100 {
		t.Error("bar should clamp at 100 columns")
	}
}

func TestFormatSize(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{2048, "2K"},
		{1152, "1.1K"},
		{64, "64"},
		{0, "0"},
	}
	for _, tt := range tests {
		if got := formatSize(tt.n); got != tt.want {
			t.Errorf("formatSize(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestOccupancyRendering(t *testing.T) {
	events := []core.AllocEvent{
		{Op: core.OpAlloc, Set: 0, Object: "d#i0", Datum: "d", Addr: 900, Bytes: 100},
		{Op: core.OpAlloc, Set: 0, Object: "r#i0", Datum: "r", Addr: 0, Bytes: 64},
		{Op: core.OpRelease, Set: 0, Object: "d#i0", Datum: "d", Addr: 900, Bytes: 100},
		{Op: core.OpAlloc, Set: 1, Object: "x#i0", Datum: "x", Addr: 0, Bytes: 10},
	}
	var b strings.Builder
	Occupancy(&b, events, 0, 1024, 8)
	out := b.String()
	if !strings.Contains(out, "FB set 0") {
		t.Errorf("missing header:\n%s", out)
	}
	// d occupies the top band in early columns, r the bottom band.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	top := lines[1] // highest address row
	bottom := lines[len(lines)-1]
	if !strings.Contains(top, "d") {
		t.Errorf("top band missing d:\n%s", out)
	}
	if !strings.Contains(bottom, "r") {
		t.Errorf("bottom band missing r:\n%s", out)
	}
	if strings.Contains(out, "x") {
		t.Errorf("set-1 object leaked into set-0 view:\n%s", out)
	}

	var lg strings.Builder
	Legend(&lg, events, 0)
	if !strings.Contains(lg.String(), "d=d") || !strings.Contains(lg.String(), "r=r") {
		t.Errorf("legend wrong: %s", lg.String())
	}

	var empty strings.Builder
	Occupancy(&empty, nil, 3, 1024, 8)
	if !strings.Contains(empty.String(), "no events") {
		t.Error("empty set not reported")
	}
}

func TestGlyph(t *testing.T) {
	if glyph("curMB") != 'c' || glyph("##") != '#' || glyph("9lives") != '9' {
		t.Error("glyph selection broken")
	}
}

func TestMarkdown(t *testing.T) {
	var b strings.Builder
	Markdown(&b, sampleRows())
	out := b.String()
	if !strings.Contains(out, "| E1 | 4 | 2 | 1/1 | 1K | 0% / 0% | 17% / 19% |") {
		t.Errorf("markdown row wrong:\n%s", out)
	}
	if !strings.Contains(out, "basic: n/a") {
		t.Errorf("markdown missing infeasible marker:\n%s", out)
	}
}
