package rescache

import (
	"expvar"
	"strings"
	"testing"

	"cds/internal/arch"
)

// TestExpvarOncePerProcess pins the registration discipline: the
// "rescache" var publishes lazily on the first New and never again —
// constructing many caches (two servers in one process, tests building
// caches repeatedly) must not panic on a duplicate expvar.Publish, and
// every cache must appear in the published snapshot.
func TestExpvarOncePerProcess(t *testing.T) {
	// Each New would panic the process here if it re-Published.
	a := New("expvar.a", 4)
	b := New("expvar.b", 4)

	v := expvar.Get("rescache")
	if v == nil {
		t.Fatal("rescache expvar not published after New")
	}

	key := KeyOf(arch.M1(), testPart(t, "expvar", 64), "expvar-test")
	a.Do(key, func() (any, bool) { return 1, true })
	a.Do(key, func() (any, bool) { return 2, true })
	b.Do(key, func() (any, bool) { return 3, true })

	out := v.String()
	for _, want := range []string{`"expvar.a"`, `"expvar.b"`, "hits", "misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("expvar snapshot missing %s: %s", want, out)
		}
	}
	if hits, misses, _ := a.Stats(); hits != 1 || misses != 1 {
		t.Errorf("cache a stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}
