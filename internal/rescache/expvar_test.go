package rescache

import (
	"expvar"
	"strings"
	"testing"

	"cds/internal/arch"
)

// TestExpvarOncePerProcess pins the registration discipline: the
// "rescache" var publishes lazily on the first New and never again —
// constructing many caches (two servers in one process, tests building
// caches repeatedly) must not panic on a duplicate expvar.Publish, and
// every cache must appear in the published snapshot.
func TestExpvarOncePerProcess(t *testing.T) {
	// Each New would panic the process here if it re-Published.
	a := New("expvar.a", 4)
	b := New("expvar.b", 4)

	v := expvar.Get("rescache")
	if v == nil {
		t.Fatal("rescache expvar not published after New")
	}

	key := KeyOf(arch.M1(), testPart(t, "expvar", 64), "expvar-test")
	a.Do(key, func() (any, bool) { return 1, true })
	a.Do(key, func() (any, bool) { return 2, true })
	b.Do(key, func() (any, bool) { return 3, true })

	out := v.String()
	for _, want := range []string{`"expvar.a"`, `"expvar.b"`, "hits", "misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("expvar snapshot missing %s: %s", want, out)
		}
	}
	if hits, misses, _ := a.Stats(); hits != 1 || misses != 1 {
		t.Errorf("cache a stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestPeerFillAccounting pins the per-source split: a miss answered by a
// fleet peer counts under peer_fills, never as a local hit — the local
// hit/miss counters keep describing only this cache's own contents.
func TestPeerFillAccounting(t *testing.T) {
	c := New("expvar.peer", 4)
	key := KeyOf(arch.M1(), testPart(t, "peer", 64), "peer-test")

	// A local lookup that misses, then is satisfied by a peer.
	if _, ok := c.Get(key); ok {
		t.Fatal("fresh cache reports a hit")
	}
	c.NotePeerFill()

	hits, misses, _ := c.Stats()
	if hits != 0 {
		t.Errorf("peer fill double-counted as a local hit: hits=%d", hits)
	}
	if misses != 1 {
		t.Errorf("misses=%d, want 1 (the local lookup that preceded the fill)", misses)
	}
	if got := c.PeerFills(); got != 1 {
		t.Errorf("PeerFills=%d, want 1", got)
	}

	// The expvar snapshot carries the new counter.
	out := expvar.Get("rescache").String()
	if !strings.Contains(out, "peer_fills") {
		t.Errorf("expvar snapshot missing peer_fills: %s", out)
	}
}
