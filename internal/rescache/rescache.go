// Package rescache is a fingerprint-keyed result cache for full
// scheduler outcomes. The paper's evaluation — and the ROADMAP's schedd
// workload — re-runs identical (arch, partition) comparison points by
// construction: design-space sweeps revisit grid points, retried
// requests re-pose the same spec, and batch grids cross few archs with
// few workloads. Every scheduler in this module is a pure function of
// the spec, so a comparison computed once is a comparison computed
// forever; this cache keys on deterministic content fingerprints (see
// KeyOf) and makes re-posing a solved point O(hash).
//
// Each cache combines a bounded LRU with per-key singleflight:
// concurrent first requesters of one key share a single computation,
// and the bound keeps long-lived daemons from pinning every spec ever
// seen. A process-wide expvar ("rescache") snapshots hit/miss/eviction
// counters for every cache.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"expvar"
	"sync"
	"sync/atomic"

	"cds/internal/app"
	"cds/internal/arch"
)

// Key is a content fingerprint: what a cached value is a pure function
// of. Build it with KeyOf.
type Key [32]byte

// KeyOf fingerprints a (machine, partition) pair plus a caller tag that
// names (and versions) the computation, e.g. "compare-all/v1". Distinct
// tags never collide, so many result kinds can share one cache.
//
// Every Params field enters the hash: any machine change — FB set size,
// CM capacity, bus width, geometry — is a different key. The partition
// contributes its canonical content fingerprint, so structurally equal
// specs hit regardless of pointer identity.
func KeyOf(pa arch.Params, part *app.Partition, tag string) Key {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	num := func(v int) {
		n := binary.PutUvarint(buf[:], uint64(int64(v)))
		h.Write(buf[:n])
	}
	str := func(s string) {
		num(len(s))
		h.Write([]byte(s))
	}
	str("cds/rescache/v1")
	str(tag)
	str(pa.Name)
	num(pa.FBSetBytes)
	num(pa.FBSets)
	num(pa.CMWords)
	num(pa.BusBytes)
	num(pa.DMASetupCycles)
	num(pa.CtxWordBytes)
	num(pa.Rows)
	num(pa.Cols)
	fp := part.Fingerprint()
	h.Write(fp[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// enabled gates every cache in the process. Benchmarks and golden tests
// flip it off to measure/verify the uncached pipeline.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns result caching on or off process-wide and returns
// the previous setting. Disabling does not drop existing entries; it
// only bypasses them.
func SetEnabled(on bool) (prev bool) { return enabled.Swap(on) }

// Enabled reports whether result caching is active.
func Enabled() bool { return enabled.Load() }

// entry is one cached computation. done flips after compute finishes;
// keep records whether the outcome was cacheable (non-cacheable entries
// are removed once computed, after the in-flight sharers drain).
type entry struct {
	once sync.Once
	val  any
	keep bool
	done atomic.Bool
	elem *list.Element // position in Cache.order; guarded by Cache.mu
}

// Cache is one bounded LRU + singleflight table.
type Cache struct {
	name string
	max  int

	mu      sync.Mutex
	entries map[Key]*entry
	order   *list.List // of Key, least recently used first

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// peerFills counts values obtained from a fleet peer's cache after a
	// local miss (cluster peer fill). A peer fill is accounted on top of
	// the local miss that triggered it — never as a local hit — so
	// hits/misses keep describing THIS cache's contents truthfully.
	peerFills atomic.Int64
}

var (
	registryMu  sync.Mutex
	registry    []*Cache
	publishOnce sync.Once
)

// publishExpvar registers the process-wide "rescache" var lazily, on
// the first New. One expvar serves every cache: Publish panics on
// duplicate names, so per-Cache vars would forbid multiple caches (and
// re-registration in tests), and the sync.Once guard makes New safe to
// call any number of times — two servers in one process, tests
// constructing caches repeatedly — where a second Publish would crash
// the process. A single Func snapshots the registry on demand.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("rescache", expvar.Func(func() any {
			registryMu.Lock()
			defer registryMu.Unlock()
			out := make(map[string]map[string]int64, len(registry))
			for _, c := range registry {
				hits, misses, evictions := c.Stats()
				out[c.name] = map[string]int64{
					"hits":       hits,
					"misses":     misses,
					"evictions":  evictions,
					"peer_fills": c.PeerFills(),
					"entries":    int64(c.Len()),
				}
			}
			return out
		}))
	})
}

// Counters is one cache's cumulative accounting, as surfaced by
// Snapshot (and mirrored by the "rescache" expvar).
type Counters struct {
	Hits      int64
	Misses    int64
	Evictions int64
	PeerFills int64
	Entries   int64
}

// Snapshot reports every registered cache's counters keyed by cache
// name. It backs plain-text metrics endpoints (schedd's /metrics) the
// same way the expvar backs /debug/vars; caches sharing a name collapse
// to the last registered, matching the expvar's behavior.
func Snapshot() map[string]Counters {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make(map[string]Counters, len(registry))
	for _, c := range registry {
		hits, misses, evictions := c.Stats()
		out[c.name] = Counters{
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
			PeerFills: c.PeerFills(),
			Entries:   int64(c.Len()),
		}
	}
	return out
}

// New returns a cache holding at most max entries, registered under
// name in the process-wide "rescache" expvar.
func New(name string, max int) *Cache {
	publishExpvar()
	if max < 1 {
		max = 1
	}
	c := &Cache{
		name:    name,
		max:     max,
		entries: make(map[Key]*entry),
		order:   list.New(),
	}
	registryMu.Lock()
	registry = append(registry, c)
	registryMu.Unlock()
	return c
}

// Do returns the cached value for key, computing it at most once across
// concurrent callers. compute reports whether its outcome is cacheable;
// non-cacheable outcomes (cancellations, transient failures) are handed
// to their in-flight sharers but not kept, so a later call recomputes.
// When the cache is disabled process-wide, compute runs directly.
func (c *Cache) Do(key Key, compute func() (val any, cacheable bool)) any {
	if !enabled.Load() {
		v, _ := compute()
		return v
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits.Add(1)
		c.order.MoveToBack(e.elem)
	} else {
		c.misses.Add(1)
		e = &entry{}
		e.elem = c.order.PushBack(key)
		c.entries[key] = e
		for c.order.Len() > c.max {
			oldest := c.order.Remove(c.order.Front()).(Key)
			delete(c.entries, oldest)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.val, e.keep = compute()
		e.done.Store(true)
		if !e.keep {
			c.remove(key, e)
		}
	})
	return e.val
}

// Get returns the completed cached value for key without computing
// anything. It misses while a computation is still in flight.
func (c *Cache) Get(key Key) (any, bool) {
	if !enabled.Load() {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && e.done.Load() {
		c.hits.Add(1)
		c.order.MoveToBack(e.elem)
		c.mu.Unlock()
		return e.val, true
	}
	c.misses.Add(1)
	c.mu.Unlock()
	return nil, false
}

// remove drops an entry if it still maps to e (the key may have been
// evicted — and even re-inserted by a successor — while e computed).
func (c *Cache) remove(key Key, e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
		c.order.Remove(e.elem)
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// NotePeerFill records that a local miss on this cache was answered by a
// fleet peer's cache instead of a recomputation. It does not touch the
// hit/miss counters: the lookup that preceded it already counted as a
// local miss, and counting the peer's answer as a local hit would make
// local hit rates lie. Per-source accounting is the point — "local"
// effectiveness is hits/(hits+misses), "peer" effectiveness is
// peer_fills/misses.
func (c *Cache) NotePeerFill() { c.peerFills.Add(1) }

// PeerFills reports how many local misses were answered by a peer.
func (c *Cache) PeerFills() int64 { return c.peerFills.Load() }
