package rescache

import (
	"sync"
	"sync/atomic"
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
)

func testPart(t testing.TB, name string, inSize int) *app.Partition {
	t.Helper()
	b := app.NewBuilder(name, 4).
		Datum("in", inSize).
		Datum("out", 32)
	b.Kernel("k", 16, 100).In("in").Out("out")
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := app.NewPartition(a, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyOfContentAddressing(t *testing.T) {
	pa := arch.M1()
	p := testPart(t, "key", 128)
	q := testPart(t, "key", 128) // distinct pointer, same content
	if KeyOf(pa, p, "t") != KeyOf(pa, q, "t") {
		t.Error("structurally identical partitions produced different keys")
	}

	distinct := map[string]Key{
		"base":              KeyOf(pa, p, "t"),
		"other tag":         KeyOf(pa, p, "t2"),
		"FB size":           KeyOf(pa.WithFB(4096), p, "t"),
		"CM words":          keyWith(pa, p, func(m *arch.Params) { m.CMWords = 2048 }),
		"bus bytes":         keyWith(pa, p, func(m *arch.Params) { m.BusBytes = 8 }),
		"DMA setup":         keyWith(pa, p, func(m *arch.Params) { m.DMASetupCycles = 8 }),
		"geometry":          keyWith(pa, p, func(m *arch.Params) { m.Rows = 16 }),
		"datum size":        KeyOf(pa, testPart(t, "key", 256), "t"),
		"partition content": KeyOf(pa, testPart(t, "key2", 128), "t"),
	}
	seen := map[Key]string{}
	for what, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s share a key; every spec field must enter the fingerprint", what, prev)
		}
		seen[k] = what
	}
}

func keyWith(pa arch.Params, p *app.Partition, mut func(*arch.Params)) Key {
	mut(&pa)
	return KeyOf(pa, p, "t")
}

// TestSingleflightHammer drives one key from 32 goroutines under -race:
// exactly one computation, everyone sees its value, and the counters
// add up.
func TestSingleflightHammer(t *testing.T) {
	c := New("test.hammer", 16)
	key := KeyOf(arch.M1(), testPart(t, "hammer", 64), "hammer")
	var computations atomic.Int64
	const goroutines = 32
	results := make([]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = c.Do(key, func() (any, bool) {
				computations.Add(1)
				return "value", true
			})
		}(g)
	}
	wg.Wait()
	if n := computations.Load(); n != 1 {
		t.Errorf("computed %d times, want 1 (singleflight)", n)
	}
	for g, r := range results {
		if r != "value" {
			t.Fatalf("goroutine %d got %v", g, r)
		}
	}
	hits, misses, _ := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
}

func TestNonCacheableOutcomesRecompute(t *testing.T) {
	c := New("test.noncacheable", 16)
	key := KeyOf(arch.M1(), testPart(t, "nc", 64), "nc")
	var n atomic.Int64
	compute := func() (any, bool) {
		return n.Add(1), false // e.g. a canceled computation
	}
	if v := c.Do(key, compute); v != int64(1) {
		t.Fatalf("first Do = %v", v)
	}
	if v := c.Do(key, compute); v != int64(2) {
		t.Errorf("non-cacheable outcome was served from cache: %v", v)
	}
	if c.Len() != 0 {
		t.Errorf("non-cacheable entries linger: Len=%d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("test.lru", 2)
	pa := arch.M1()
	p := testPart(t, "lru", 64)
	k1, k2, k3 := KeyOf(pa, p, "1"), KeyOf(pa, p, "2"), KeyOf(pa, p, "3")
	val := func(s string) func() (any, bool) { return func() (any, bool) { return s, true } }
	c.Do(k1, val("a"))
	c.Do(k2, val("b"))
	c.Do(k1, val("a")) // touch k1: k2 is now least recently used
	c.Do(k3, val("c")) // evicts k2
	if _, ok := c.Get(k2); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if v, ok := c.Get(k1); !ok || v != "a" {
		t.Error("recently-used entry was evicted")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestDisableBypassesCache(t *testing.T) {
	c := New("test.disable", 16)
	key := KeyOf(arch.M1(), testPart(t, "dis", 64), "dis")
	var n atomic.Int64
	compute := func() (any, bool) { return n.Add(1), true }
	c.Do(key, compute)
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if v := c.Do(key, compute); v != int64(2) {
		t.Errorf("disabled cache still served a hit: %v", v)
	}
	if _, ok := c.Get(key); ok {
		t.Error("disabled cache answered Get")
	}
}
