package retry

// The circuit breaker protects a repeatedly-failing target from retry
// amplification: once a target has failed threshold consecutive times,
// further calls fail immediately (with a Retry-After hint) instead of
// burning backend work, until a cooldown passes and a single half-open
// probe decides whether to close the circuit again. Time is a seam
// (now func) so tests drive the state machine on a seeded fake clock.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen classifies calls rejected by an open circuit. Match with
// errors.Is; the concrete *OpenError carries the Retry-After hint.
var ErrOpen = errors.New("retry: circuit open")

// OpenError is the typed rejection of an open circuit.
type OpenError struct {
	// RetryAfter is how long until the breaker will next admit a probe.
	RetryAfter time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("retry: circuit open, retry after %s", e.RetryAfter)
}

// Is makes every OpenError match ErrOpen.
func (e *OpenError) Is(target error) bool { return target == ErrOpen }

// State is a breaker's position in the closed -> open -> half-open cycle.
type State int

const (
	// Closed admits every call (the healthy state).
	Closed State = iota
	// Open rejects every call until the cooldown elapses.
	Open
	// HalfOpen has admitted one probe and rejects everything else until
	// the probe's outcome is recorded.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Breaker is a consecutive-failure circuit breaker. The zero value is
// not usable; construct with NewBreaker. All methods are safe for
// concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	state     State
	fails     int
	openedAt  time.Time
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures (default 5 when <= 0) and half-opens one probe after cooldown
// (default 5s when <= 0). now substitutes the clock; nil means
// time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed: nil from a closed breaker or
// for the single half-open probe, an error matching ErrOpen otherwise.
// Every allowed call MUST be settled by exactly one Record or Abort —
// otherwise a half-open probe stays in flight forever and the breaker
// rejects every future call.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		elapsed := b.now().Sub(b.openedAt)
		if elapsed >= b.cooldown {
			b.state = HalfOpen // admit exactly one probe
			return nil
		}
		return &OpenError{RetryAfter: b.cooldown - elapsed}
	default: // HalfOpen: a probe is already in flight
		return &OpenError{RetryAfter: b.cooldown}
	}
}

// Record reports an allowed call's outcome. Successes close the circuit
// and reset the failure run; failures extend it and (re)open the circuit
// at the threshold. Callers should record only successes and
// TRANSIENT failures — a client's invalid spec says nothing about the
// target's health.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = Closed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == HalfOpen || b.fails >= b.threshold {
		b.state = Open
		b.openedAt = b.now()
	}
}

// Abort settles an allowed call that produced no verdict about the
// target's health: the caller canceled, the deadline expired, or the
// request failed for a reason of its own (invalid spec, infeasible). A
// half-open probe that ends this way proved nothing, so the breaker
// returns to Open with a fresh cooldown — the failure run is NOT
// extended — and the next probe waits its turn. A closed breaker is
// untouched.
func (b *Breaker) Abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.state = Open
		b.openedAt = b.now()
	}
}

// State returns the breaker's current position (for tests and metrics).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet lazily keys breakers by target name so each workload (or
// backend) trips independently: one poisoned target must not open the
// circuit for its healthy siblings.
type BreakerSet struct {
	mu        sync.Mutex
	m         map[string]*Breaker
	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

// NewBreakerSet returns a set whose breakers share the given
// configuration (same defaulting as NewBreaker).
func NewBreakerSet(threshold int, cooldown time.Duration, now func() time.Time) *BreakerSet {
	return &BreakerSet{m: map[string]*Breaker{}, threshold: threshold, cooldown: cooldown, now: now}
}

// Get returns the target's breaker, creating it closed on first use.
func (s *BreakerSet) Get(target string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[target]
	if !ok {
		b = NewBreaker(s.threshold, s.cooldown, s.now)
		s.m[target] = b
	}
	return b
}
