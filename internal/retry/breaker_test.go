package retry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is the seeded clock the breaker tests drive by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerOpensAfterFailureRun(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, 10*time.Second, clk.Now)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after 2 failures, want closed (threshold 3)", b.State())
	}
	b.Allow()
	b.Record(false) // third consecutive failure: open
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	err := b.Allow()
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	var oe *OpenError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 || oe.RetryAfter > 10*time.Second {
		t.Fatalf("OpenError.RetryAfter = %v, want (0, 10s]", oe.RetryAfter)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, 10*time.Second, clk.Now)
	// Failures interleaved with successes never reach the threshold:
	// only CONSECUTIVE failures open the circuit.
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("call %d rejected: %v", i, err)
		}
		b.Record(i%2 == 0)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, 10*time.Second, clk.Now)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatal("breaker not open")
	}

	clk.Advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("breaker admitted a call before the cooldown: %v", err)
	}

	clk.Advance(2 * time.Second) // past the cooldown: one probe
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker rejected the probe: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("half-open breaker admitted a second concurrent call: %v", err)
	}

	// Probe failure reopens with a fresh cooldown.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	clk.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after fresh cooldown rejected: %v", err)
	}
	// Probe success closes the circuit completely.
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	for i := 0; i < 5; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(true)
	}
}

// TestBreakerAbortSettlesProbe pins the anti-wedge contract: a
// half-open probe whose call ends without a health verdict (canceled,
// deadline, deterministic request error) is settled by Abort — the
// breaker returns to Open with a fresh cooldown instead of rejecting
// every future call forever — and the failure run is not extended.
func TestBreakerAbortSettlesProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, 10*time.Second, clk.Now)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatal("breaker not open")
	}

	clk.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	b.Abort() // the probe's call was canceled: no verdict
	if b.State() != Open {
		t.Fatalf("state = %v after aborted probe, want open", b.State())
	}

	// The cooldown restarted; the next probe is admitted after it and a
	// success closes the circuit — the breaker never wedged.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("probe admitted immediately after an abort: %v", err)
	}
	clk.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after aborted-probe cooldown rejected: %v", err)
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	// Abort on a closed breaker is a no-op and does not count as failure.
	b.Allow()
	b.Abort()
	if b.State() != Closed {
		t.Fatalf("state = %v after closed-state abort, want closed", b.State())
	}
}

func TestBreakerSetIsolatesTargets(t *testing.T) {
	clk := newFakeClock()
	set := NewBreakerSet(1, 10*time.Second, clk.Now)
	set.Get("poisoned").Record(false)
	if set.Get("poisoned").State() != Open {
		t.Fatal("poisoned target's breaker did not open")
	}
	if err := set.Get("healthy").Allow(); err != nil {
		t.Fatalf("healthy target rejected because a sibling tripped: %v", err)
	}
	if got := set.Get("poisoned"); got.State() != Open {
		t.Fatalf("Get returned a fresh breaker instead of the tripped one: %v", got.State())
	}
}
