package retry

// Integration of the retry layer with the fault-injection harness: the
// exact failure shapes schedd absorbs in production. A transient fault
// window clears after k retries with byte-identical outputs; a permanent
// fault is never retried; a persistent transient fault walks the circuit
// breaker through open -> half-open -> closed on the seeded clock.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"cds/internal/core"
	"cds/internal/faultmachine"
	"cds/internal/machine"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

func mpegCDSSchedule(t *testing.T) *core.Schedule {
	t.Helper()
	e, err := workloads.ByName("MPEG")
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.CompleteDataScheduler{}.Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTransientFaultClearsUnderRetry pins the end-to-end survival story:
// a seeded fault window (DMA stalls every run, transfer failures for the
// first k runs) costs exactly k retries, and the run that succeeds
// produces outputs byte-identical to a fault-free execution.
func TestTransientFaultClearsUnderRetry(t *testing.T) {
	s := mpegCDSSchedule(t)
	clean, err := machine.Run(s, 7, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	const window = 2 // the first two executions fail
	runner := faultmachine.NewRunner(faultmachine.Config{Seed: 3, StallProbPct: 50, FailEvery: 4}, window)
	var delays []time.Duration
	var res *machine.Result
	attempts := 0
	p := Policy{MaxAttempts: 5, Seed: 11, Sleep: recordingSleep(&delays)}
	err = p.Do(context.Background(), func(context.Context) error {
		attempts++
		r, _, rerr := runner.Run(s, 7, nil)
		if rerr != nil {
			return rerr
		}
		res = r
		return nil
	})
	if err != nil {
		t.Fatalf("retry did not absorb the fault window: %v", err)
	}
	if attempts != window+1 {
		t.Fatalf("attempts = %d, want %d (window %d + the clean run)", attempts, window+1, window)
	}
	if runner.Runs() != window+1 {
		t.Fatalf("runner executed %d times, want %d", runner.Runs(), window+1)
	}
	if len(res.Ext) != len(clean.Ext) {
		t.Fatalf("%d ext entries after retries, want %d", len(res.Ext), len(clean.Ext))
	}
	for k, want := range clean.Ext {
		if !bytes.Equal(res.Ext[k], want) {
			t.Fatalf("output %s differs from the fault-free run", k)
		}
	}
}

// TestPermanentFaultNeverRetried pins fail-fast: a permanent *FaultError
// (a dead channel, not a glitch) does not match scherr.ErrTransient and
// must cost exactly one attempt.
func TestPermanentFaultNeverRetried(t *testing.T) {
	s := mpegCDSSchedule(t)
	runner := faultmachine.NewRunner(faultmachine.Config{Seed: 3, FailEvery: 4, FailPermanent: true}, -1)
	var delays []time.Duration
	attempts := 0
	p := Policy{MaxAttempts: 5, Sleep: recordingSleep(&delays)}
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		_, _, rerr := runner.Run(s, 7, nil)
		return rerr
	})
	if attempts != 1 || len(delays) != 0 {
		t.Fatalf("permanent fault retried: attempts=%d sleeps=%d, want 1/0", attempts, len(delays))
	}
	var fe *faultmachine.FaultError
	if !errors.As(err, &fe) || !fe.Permanent {
		t.Fatalf("err = %v, want a permanent *FaultError", err)
	}
	if !errors.Is(err, faultmachine.ErrFault) {
		t.Fatalf("err = %v, must still match ErrFault", err)
	}
	if errors.Is(err, scherr.ErrTransient) {
		t.Fatalf("permanent fault classified transient: %v", err)
	}
}

// TestBreakerCycleUnderPersistentFault drives the serving loop's breaker
// discipline against a persistent transient fault: the configured run of
// failures opens the circuit, the seeded clock half-opens it after the
// cooldown, and the probe (issued after the fault window passed) closes
// it again.
func TestBreakerCycleUnderPersistentFault(t *testing.T) {
	s := mpegCDSSchedule(t)
	const threshold = 3
	// The window is exactly the failure run that opens the breaker: the
	// half-open probe is the first clean execution.
	runner := faultmachine.NewRunner(faultmachine.Config{Seed: 3, FailEvery: 4}, threshold)
	clk := newFakeClock()
	b := NewBreaker(threshold, 10*time.Second, clk.Now)
	p := Policy{MaxAttempts: 1, Sleep: recordingSleep(&[]time.Duration{})}

	request := func() error {
		if err := b.Allow(); err != nil {
			return err
		}
		err := p.Do(context.Background(), func(context.Context) error {
			_, _, rerr := runner.Run(s, 7, nil)
			return rerr
		})
		if err == nil {
			b.Record(true)
		} else if errors.Is(err, scherr.ErrTransient) {
			b.Record(false)
		}
		return err
	}

	for i := 0; i < threshold; i++ {
		if err := request(); !errors.Is(err, faultmachine.ErrFault) {
			t.Fatalf("request %d: err = %v, want an injected fault", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("breaker state = %v after %d transient failures, want open", b.State(), threshold)
	}
	if err := request(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker let a request through: %v", err)
	}
	if runner.Runs() != threshold {
		t.Fatalf("runner ran %d times, want %d — the open circuit must not burn backend work", runner.Runs(), threshold)
	}

	clk.Advance(10 * time.Second) // cooldown: half-open probe
	if err := request(); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("breaker state = %v after successful probe, want closed", b.State())
	}
}
