package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cds/internal/scherr"
)

// hintedErr is a transient failure carrying a server Retry-After hint.
type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string                 { return fmt.Sprintf("throttled, retry after %s", e.after) }
func (e *hintedErr) Unwrap() error                 { return scherr.ErrTransient }
func (e *hintedErr) RetryAfterHint() time.Duration { return e.after }

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return &hintedErr{after: 200 * time.Millisecond}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d != 200*time.Millisecond {
			t.Fatalf("sleep %d = %s, want the 200ms hint (computed backoff is shorter)", i, d)
		}
	}
}

func TestDoClampsHintToMaxDelay(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 2,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return &hintedErr{after: time.Hour}
		}
		return nil
	})
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want exactly MaxDelay (hint clamped)", slept)
	}
}

func TestDoIgnoresShorterHint(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 2,
		BaseDelay:   40 * time.Millisecond,
		MaxDelay:    time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return &hintedErr{after: time.Millisecond}
		}
		return nil
	})
	// Equal jitter keeps the computed delay in [20ms, 40ms]; a 1ms hint
	// must not shrink it below the backoff floor.
	if len(slept) != 1 || slept[0] < 20*time.Millisecond {
		t.Fatalf("slept %v, want computed backoff >= 20ms", slept)
	}
}

func TestOpenErrorCarriesHint(t *testing.T) {
	var h AfterHinter
	err := error(&OpenError{RetryAfter: 3 * time.Second})
	if !errors.As(err, &h) || h.RetryAfterHint() != 3*time.Second {
		t.Fatalf("OpenError hint = %v, want 3s", h)
	}
}
