// Package retry is the fault-absorption layer of the scheduling stack:
// exponential backoff with deterministic seeded jitter, error
// classification over the scherr taxonomy, and a per-target circuit
// breaker. The serving daemon (cmd/schedd via internal/serve) wraps every
// backend call in it so a transient DMA fault costs the client a few
// milliseconds of backoff instead of a failed request.
//
// Classification is by TYPE, not by message: an error is retried exactly
// when it matches scherr.ErrTransient (an injected DMA glitch, a
// momentary external-memory fault). Everything else in the taxonomy —
// ErrInvalidSpec, ErrInfeasible, ErrCapacity, ErrVerify — is a
// deterministic property of the request and fails fast; ErrCanceled
// stops the loop immediately because the caller has already left.
//
// Determinism: the jitter stream is a pure function of Policy.Seed, so a
// test (or an incident replay) sees the identical backoff sequence every
// run. Policies are values; Do re-derives the stream per call, which also
// makes a shared Policy safe for concurrent use.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cds/internal/scherr"
)

// Class is the retry layer's verdict on one error.
type Class int

const (
	// Transient errors may clear on a re-attempt; retry with backoff.
	Transient Class = iota
	// Permanent errors are deterministic; fail fast, never retry.
	Permanent
)

// Classifier maps an error to its retry class. A nil error never reaches
// the classifier.
type Classifier func(error) Class

// Classify is the stack's default classifier: transient exactly when the
// error matches scherr.ErrTransient, permanent otherwise. Cancellation is
// handled before classification by Do itself.
func Classify(err error) Class {
	if errors.Is(err, scherr.ErrTransient) {
		return Transient
	}
	return Permanent
}

// Policy configures one retry loop. The zero value is usable: it becomes
// 4 attempts, 10ms base delay doubling to a 1s cap, seed 0, Classify as
// the classifier and a context-aware timer sleep.
type Policy struct {
	// MaxAttempts is the total number of tries, first attempt included.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure; each
	// further failure multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay, MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Seed drives the deterministic jitter stream: equal seeds yield
	// byte-identical backoff sequences.
	Seed int64
	// Classify decides which errors are worth another attempt.
	Classify Classifier
	// Sleep is the backoff seam; tests substitute a recording no-op. It
	// must return a non-nil error (matching scherr.ErrCanceled) if ctx
	// ends before the delay elapses.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Classify == nil {
		p.Classify = Classify
	}
	if p.Sleep == nil {
		p.Sleep = SleepCtx
	}
	return p
}

// Do runs op until it succeeds, fails permanently, exhausts MaxAttempts,
// or ctx ends. Transient failures back off exponentially with seeded
// jitter between attempts. The returned error preserves the last op
// error in its Is/As chain, so callers still branch on the scherr
// taxonomy (and errors.As against *faultmachine.FaultError) through it.
func (p Policy) Do(ctx context.Context, op func(context.Context) error) error {
	p = p.withDefaults()
	rng := jitterState(p.Seed)
	for attempt := 1; ; attempt++ {
		if cerr := scherr.FromContext(ctx); cerr != nil {
			return cerr
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		if errors.Is(err, scherr.ErrCanceled) || ctx.Err() != nil {
			return err
		}
		if p.Classify(err) != Transient {
			return err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempt, err)
		}
		delay := p.delay(&rng, attempt)
		// A server that answered with an explicit Retry-After knows more
		// about its own recovery than our backoff curve does: honor the
		// hint when it exceeds the computed delay, capped at MaxDelay so
		// a hostile or confused server cannot park the client forever.
		if hint := hintOf(err); hint > delay {
			if hint > p.MaxDelay {
				hint = p.MaxDelay
			}
			if hint > delay {
				delay = hint
			}
		}
		if serr := p.Sleep(ctx, delay); serr != nil {
			return fmt.Errorf("retry: backoff after attempt %d interrupted: %w (last error: %w)", attempt, serr, err)
		}
	}
}

// AfterHinter is implemented by errors carrying a server-supplied
// Retry-After hint (an HTTP 429/503 answer, an open circuit). Do sleeps
// the hint instead of the computed backoff when the hint is longer,
// clamped to the policy's MaxDelay.
type AfterHinter interface {
	RetryAfterHint() time.Duration
}

func hintOf(err error) time.Duration {
	var h AfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

// RetryAfterHint makes an open circuit's rejection carry its cooldown as
// a hint, so a retry loop wrapped around a breaker-guarded call waits
// out the cooldown instead of burning attempts against an open circuit.
func (e *OpenError) RetryAfterHint() time.Duration { return e.RetryAfter }

// delay computes the post-jitter backoff for the given 1-based attempt:
// exponential growth capped at MaxDelay, then "equal jitter" — half the
// window fixed, half drawn from the seeded stream — so delays spread
// without ever collapsing to zero.
func (p Policy) delay(rng *uint64, attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	half := time.Duration(d) / 2
	if half <= 0 {
		return time.Duration(d)
	}
	return half + time.Duration(nextRand(rng)%uint64(half))
}

// jitterState seeds the xorshift64 stream (same construction as
// faultmachine's injector, so seed 0 is safe).
func jitterState(seed int64) uint64 {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if state == 0 {
		state = 1
	}
	return state
}

func nextRand(state *uint64) uint64 {
	*state ^= *state << 13
	*state ^= *state >> 7
	*state ^= *state << 17
	return *state
}

// SleepCtx is the default backoff sleep: a timer that loses to ctx. It
// returns nil after d, or an error matching scherr.ErrCanceled if ctx
// ends first.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return scherr.FromContext(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return scherr.Canceled(ctx.Err())
	}
}
