package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cds/internal/scherr"
)

// recordingSleep returns a no-op Sleep that records the requested delays.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func transientErr(msg string) error {
	return fmt.Errorf("%s: %w", msg, scherr.ErrTransient)
}

func TestTransientRetriesUntilSuccess(t *testing.T) {
	var delays []time.Duration
	attempts := 0
	p := Policy{MaxAttempts: 5, Seed: 3, Sleep: recordingSleep(&delays)}
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts < 3 {
			return transientErr("glitch")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2 (between attempts only)", len(delays))
	}
}

func TestPermanentFailsFast(t *testing.T) {
	for _, perm := range []error{scherr.ErrInvalidSpec, scherr.ErrInfeasible, scherr.ErrCapacity, scherr.ErrVerify} {
		attempts := 0
		var delays []time.Duration
		p := Policy{MaxAttempts: 5, Sleep: recordingSleep(&delays)}
		err := p.Do(context.Background(), func(context.Context) error {
			attempts++
			return fmt.Errorf("deterministic: %w", perm)
		})
		if attempts != 1 || len(delays) != 0 {
			t.Fatalf("%v: attempts = %d, sleeps = %d; permanent errors must fail fast", perm, attempts, len(delays))
		}
		if !errors.Is(err, perm) {
			t.Fatalf("error lost its class: %v", err)
		}
	}
}

func TestExhaustionKeepsErrorChain(t *testing.T) {
	attempts := 0
	var delays []time.Duration
	p := Policy{MaxAttempts: 4, Sleep: recordingSleep(&delays)}
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return transientErr("never clears")
	})
	if attempts != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts=4", attempts)
	}
	if len(delays) != 3 {
		t.Fatalf("slept %d times, want 3", len(delays))
	}
	if !errors.Is(err, scherr.ErrTransient) {
		t.Fatalf("exhausted error lost the transient class: %v", err)
	}
}

// TestJitterDeterministic pins the seeded jitter: equal seeds produce the
// identical backoff sequence, different seeds do not.
func TestJitterDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := Policy{MaxAttempts: 6, Seed: seed, Sleep: recordingSleep(&delays)}
		p.Do(context.Background(), func(context.Context) error { return transientErr("x") })
		return delays
	}
	a, b, c := run(7), run(7), run(8)
	if len(a) != 5 {
		t.Fatalf("want 5 delays, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter sequence")
	}
}

// TestBackoffGrowsAndCaps pins the exponential envelope: every delay sits
// in [half, full] of its pre-jitter value, growth is monotone up to the
// cap, and the cap holds.
func TestBackoffGrowsAndCaps(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	var delays []time.Duration
	p := Policy{MaxAttempts: 8, BaseDelay: base, MaxDelay: max, Seed: 1, Sleep: recordingSleep(&delays)}
	p.Do(context.Background(), func(context.Context) error { return transientErr("x") })
	want := base
	for i, d := range delays {
		if d < want/2 || d > want {
			t.Fatalf("delay %d = %v outside equal-jitter window [%v, %v]", i, d, want/2, want)
		}
		if want < max {
			want *= 2
			if want > max {
				want = max
			}
		}
	}
	if last := delays[len(delays)-1]; last > max {
		t.Fatalf("cap violated: %v > %v", last, max)
	}
}

func TestCanceledContextStopsLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts := 0
	err := Policy{MaxAttempts: 5, Sleep: recordingSleep(&[]time.Duration{})}.Do(ctx, func(context.Context) error {
		attempts++
		return transientErr("x")
	})
	if attempts != 0 {
		t.Fatalf("op ran %d times on a dead context, want 0", attempts)
	}
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestCancellationDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	p := Policy{MaxAttempts: 5, Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel() // the caller leaves while we back off
		return scherr.Canceled(context.Canceled)
	}}
	err := p.Do(ctx, func(context.Context) error {
		attempts++
		return transientErr("x")
	})
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no attempt after interrupted backoff)", attempts)
	}
	if !errors.Is(err, scherr.ErrCanceled) || !errors.Is(err, scherr.ErrTransient) {
		t.Fatalf("err = %v, want both the cancellation and the last transient error in the chain", err)
	}
}

func TestSleepCtxHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, time.Hour); !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("SleepCtx on dead ctx = %v, want ErrCanceled", err)
	}
	if err := SleepCtx(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("SleepCtx: %v", err)
	}
}
