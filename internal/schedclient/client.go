// Package schedclient is the hardened Go client for schedd: the piece a
// router or load generator talks through when the network between it
// and the daemon cannot be trusted. It is the client half of the chaos
// harness's proxy seam, and the client the ROADMAP's sharded-schedd
// router will reuse.
//
//   - Every call runs under internal/retry: transport errors, truncated
//     or garbled responses and retryable statuses (408, 429, 5xx, and
//     409 journal_busy) are classed scherr.ErrTransient and backed off;
//     4xx request errors map onto the scherr taxonomy and fail fast.
//
//   - Retry-After is honored: an HTTPError carries the server's hint and
//     retry.Policy.Do sleeps it (clamped to MaxDelay) instead of the
//     shorter computed backoff.
//
//   - Compare calls are idempotency-keyed: one logical call keeps one
//     key across every retry, so a duplicated or retried submission
//     (a proxy that dropped the response, a reset mid-answer) replays
//     the server's stored answer instead of double-running the work.
//     Keys are deterministic in (Seed, call index), keeping chaos runs
//     reproducible. Sweeps are idempotent by journal name instead:
//     re-POSTing resumes, and a concurrent duplicate's 409 is retried
//     until the first copy finishes.
package schedclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"cds/internal/retry"
	"cds/internal/scherr"
	"cds/internal/serve"
)

// maxBody bounds how much of any response the client will read.
const maxBody = 8 << 20

// Config parameterizes a Client. BaseURL is required; the zero value of
// everything else is usable (default retry policy, a plain http.Client,
// seed 0).
type Config struct {
	// BaseURL is the server (or fault proxy) root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs, when set, lists failover targets: attempt n of a logical
	// call goes to BaseURLs[(n-1) % len], so a retry after a dead or
	// failing server walks the replica list instead of hammering one
	// address. Every attempt of one logical Compare reuses the SAME
	// Idempotency-Key across targets, so a failover that lands on a
	// worker that already saw the submission replays instead of
	// re-running. Overrides BaseURL.
	BaseURLs []string
	// HTTP substitutes the transport; nil means a fresh http.Client.
	HTTP *http.Client
	// Retry wraps every call. Its MaxDelay caps honored Retry-After hints.
	Retry retry.Policy
	// Seed makes the idempotency-key stream deterministic; equal seeds
	// yield equal key sequences (chaos reproducibility).
	Seed int64
	// Logf observes retries and replays; nil disables.
	Logf func(format string, args ...any)
}

// Stats are the client's cumulative counters (atomic snapshots).
type Stats struct {
	// Calls counts logical API calls; Attempts counts HTTP attempts, so
	// Attempts-Calls is how many retries the faults cost.
	Calls, Attempts int64
	// Accepted counts logical calls that ended in a 2xx answer.
	Accepted int64
	// Replayed counts 2xx answers served from the server's idempotency
	// store (Idempotency-Replayed: true) — work that did NOT run twice.
	Replayed int64
}

// Client is safe for concurrent use.
type Client struct {
	cfg      Config
	targets  []string
	http     *http.Client
	calls    atomic.Int64
	attempts atomic.Int64
	accepted atomic.Int64
	replayed atomic.Int64
}

// New builds a client; see Config.
func New(cfg Config) *Client {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := cfg.HTTP
	if h == nil {
		h = &http.Client{}
	}
	targets := cfg.BaseURLs
	if len(targets) == 0 {
		targets = []string{cfg.BaseURL}
	}
	return &Client{cfg: cfg, targets: targets, http: h}
}

// Stats snapshots the counters.
func (c *Client) Stats() Stats {
	return Stats{
		Calls:    c.calls.Load(),
		Attempts: c.attempts.Load(),
		Accepted: c.accepted.Load(),
		Replayed: c.replayed.Load(),
	}
}

// HTTPError is a non-2xx answer (or a well-formed error envelope): the
// status, the server's error class and message, and its Retry-After
// hint. Unwrap places it in the scherr taxonomy, so errors.Is works the
// same against local and remote failures.
type HTTPError struct {
	Status     int
	Class      string
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("schedclient: server answered %d (%s): %s", e.Status, e.Class, e.Msg)
}

// Unwrap classifies the status for the retry layer: retryable statuses
// are transient, request errors map to their taxonomy class.
func (e *HTTPError) Unwrap() error {
	switch e.Status {
	case http.StatusRequestTimeout, http.StatusConflict, http.StatusTooManyRequests,
		http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return scherr.ErrTransient
	case http.StatusBadRequest:
		return scherr.ErrInvalidSpec
	case http.StatusUnprocessableEntity:
		return scherr.ErrInfeasible
	}
	return nil
}

// RetryAfterHint surfaces the server's Retry-After to retry.Policy.Do.
func (e *HTTPError) RetryAfterHint() time.Duration { return e.RetryAfter }

// IdemKey returns the deterministic idempotency key for the n-th
// logical call of a client with the given seed (exported so chaos
// oracles can reconstruct the key stream).
func IdemKey(seed int64, n int64) string {
	return fmt.Sprintf("sc-%x-%d", uint64(seed)*0x9e3779b97f4a7c15+1, n)
}

// Compare runs one comparison. Retries reuse one idempotency key, so
// the work runs at most once server-side no matter how often the
// network forces a resubmission.
func (c *Client) Compare(ctx context.Context, req serve.CompareRequest) (*serve.CompareResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("schedclient: encoding request: %w", err)
	}
	key := IdemKey(c.cfg.Seed, c.calls.Add(1))
	var resp serve.CompareResponse
	if err := c.do(ctx, "/v1/compare", body, key, &resp); err != nil {
		return nil, err
	}
	c.accepted.Add(1)
	return &resp, nil
}

// Sweep runs one grid sweep. Idempotency comes from the journal name:
// the server serializes concurrent sweeps per journal (409, retried
// here as transient) and resumes completed points on re-POST, so a
// duplicated submission re-runs nothing.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest) (*serve.SweepResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("schedclient: encoding request: %w", err)
	}
	c.calls.Add(1)
	var resp serve.SweepResponse
	if err := c.do(ctx, "/v1/sweep", body, "", &resp); err != nil {
		return nil, err
	}
	c.accepted.Add(1)
	return &resp, nil
}

// Readyz probes readiness WITHOUT retry — a truthfulness oracle needs
// the raw answer, 503s included — though a target that cannot even be
// reached yields to the next replica in BaseURLs. The response body is
// decoded best-effort (older servers answered plain text).
func (c *Client) Readyz(ctx context.Context) (int, serve.ReadyzResponse, error) {
	var r serve.ReadyzResponse
	status, data, err := c.get(ctx, "/readyz")
	if err != nil {
		return 0, r, err
	}
	_ = json.Unmarshal(data, &r)
	return status, r, nil
}

// Healthz probes liveness without retry.
func (c *Client) Healthz(ctx context.Context) (int, error) {
	status, _, err := c.get(ctx, "/healthz")
	return status, err
}

// get walks the replica list like do does, but without the retry
// policy: one pass, first target that ANSWERS wins — any status, 503s
// included, so readiness probes stay truthful — while a dead first
// replica no longer blinds every GET helper. Exhausting the targets
// joins the per-target errors.
func (c *Client) get(ctx context.Context, path string) (int, []byte, error) {
	var targetErrs []error
	for _, target := range c.targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+path, nil)
		if err != nil {
			return 0, nil, fmt.Errorf("schedclient: %w", err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			targetErrs = append(targetErrs, fmt.Errorf("%s: %w", target, err))
			if ctx.Err() != nil {
				break // canceled: the remaining targets would fail the same way
			}
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
		if rerr != nil {
			return resp.StatusCode, nil, fmt.Errorf("schedclient: reading %s: %w", path, rerr)
		}
		return resp.StatusCode, data, nil
	}
	if len(targetErrs) == 1 {
		return 0, nil, fmt.Errorf("schedclient: %w", targetErrs[0])
	}
	return 0, nil, fmt.Errorf("schedclient: %s: all %d targets failed: %w",
		path, len(targetErrs), errors.Join(targetErrs...))
}

// do POSTs body to path under the retry policy, decoding a 2xx answer
// into out. A transport failure, a response that cannot be read or
// parsed (truncation), and every retryable status are transient; the
// rest fail fast with their taxonomy class. With multiple targets
// configured, attempt n walks the replica list; when every attempt is
// exhausted the returned error joins the per-attempt errors
// (errors.Join), so a caller sees what happened at EVERY replica, not
// just the last one.
func (c *Client) do(ctx context.Context, path string, body []byte, idemKey string, out any) error {
	attempt := 0
	var attemptErrs []error
	err := c.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		attempt++
		c.attempts.Add(1)
		target := c.targets[(attempt-1)%len(c.targets)]
		if attempt > 1 {
			c.cfg.Logf("schedclient: %s attempt %d (target %s)", path, attempt, target)
		}
		aerr := c.post(ctx, target, path, body, idemKey, out)
		if aerr != nil {
			attemptErrs = append(attemptErrs, fmt.Errorf("%s: %w", target, aerr))
		}
		return aerr
	})
	if err != nil && len(attemptErrs) > 1 &&
		errors.Is(err, scherr.ErrTransient) && !errors.Is(err, scherr.ErrCanceled) {
		// Replicas exhausted: surface the whole per-attempt chain. The
		// join keeps every attempt reachable through errors.Is/As, so the
		// transient classification (and any HTTPError) still matches.
		return fmt.Errorf("schedclient: %s: all %d attempts failed: %w",
			path, len(attemptErrs), errors.Join(attemptErrs...))
	}
	return err
}

// post is one HTTP attempt against one target.
func (c *Client) post(ctx context.Context, target, path string, body []byte, idemKey string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("schedclient: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if cerr := scherr.FromContext(ctx); cerr != nil {
			return cerr
		}
		// Connection refused, reset mid-request, proxy dropped us:
		// all worth a retry against a recovering server.
		return fmt.Errorf("schedclient: %s: %v: %w", path, err, scherr.ErrTransient)
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if rerr != nil {
		return fmt.Errorf("schedclient: reading %s response: %v: %w", path, rerr, scherr.ErrTransient)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return newHTTPError(resp, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		// A 2xx that does not parse is a truncated or mangled answer,
		// not a server verdict: retry it.
		return fmt.Errorf("schedclient: decoding %s answer (%d bytes): %v: %w", path, len(data), err, scherr.ErrTransient)
	}
	if resp.Header.Get("Idempotency-Replayed") == "true" {
		c.replayed.Add(1)
	}
	return nil
}

// newHTTPError decodes the server's error envelope (best effort) and
// Retry-After header into an HTTPError.
func newHTTPError(resp *http.Response, data []byte) error {
	e := &HTTPError{Status: resp.StatusCode, Msg: string(data)}
	var envelope struct {
		Error string `json:"error"`
		Class string `json:"class"`
	}
	if json.Unmarshal(data, &envelope) == nil && envelope.Class != "" {
		e.Class, e.Msg = envelope.Class, envelope.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// IsTransient reports whether err would be retried by this client's
// classification (exported for oracles and callers branching on it).
func IsTransient(err error) bool { return errors.Is(err, scherr.ErrTransient) }
