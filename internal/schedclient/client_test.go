package schedclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cds/internal/retry"
	"cds/internal/scherr"
	"cds/internal/serve"
)

func fastPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

func TestCompareRetriesTransientStatusesWithOneKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		remaining := fails
		fails--
		mu.Unlock()
		if remaining > 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"warming up","class":"transient_fault"}`))
			return
		}
		w.Write([]byte(`{"target":"MPEG","basic":{},"ds":{},"cds":{},"attempts":1}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	p := fastPolicy()
	p.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	p.MaxDelay = 2 * time.Second
	c := New(Config{BaseURL: srv.URL, Retry: p, Seed: 7})
	resp, err := c.Compare(context.Background(), serve.CompareRequest{Workload: "MPEG"})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if resp.Target != "MPEG" {
		t.Fatalf("target = %q", resp.Target)
	}
	if len(keys) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(keys))
	}
	for i, k := range keys {
		if k == "" || k != keys[0] {
			t.Fatalf("attempt %d used key %q, want the same non-empty key across retries (%q)", i, k, keys[0])
		}
	}
	if want := IdemKey(7, 1); keys[0] != want {
		t.Fatalf("key = %q, want deterministic %q", keys[0], want)
	}
	// Retry-After: 1s beats the millisecond backoff; both sleeps honor it.
	for i, d := range slept {
		if d != time.Second {
			t.Fatalf("sleep %d = %s, want the 1s Retry-After hint", i, d)
		}
	}
	st := c.Stats()
	if st.Calls != 1 || st.Attempts != 3 || st.Accepted != 1 {
		t.Fatalf("stats = %+v, want 1 call, 3 attempts, 1 accepted", st)
	}
}

func TestCompareFailsFastOnRequestErrors(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec","class":"invalid_spec"}`))
	}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL, Retry: fastPolicy()})
	_, err := c.Compare(context.Background(), serve.CompareRequest{})
	if !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 400 || he.Class != "invalid_spec" {
		t.Fatalf("err = %v, want HTTPError{400, invalid_spec}", err)
	}
	if hits != 1 {
		t.Fatalf("server hit %d times, want 1 (no retries on 400)", hits)
	}
}

func TestCompareRetriesTruncatedAnswer(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			// A truncated 200: half a JSON object.
			w.Write([]byte(`{"target":"MP`))
			return
		}
		w.Write([]byte(`{"target":"MPEG","basic":{},"ds":{},"cds":{},"attempts":1}`))
	}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL, Retry: fastPolicy()})
	resp, err := c.Compare(context.Background(), serve.CompareRequest{Workload: "MPEG"})
	if err != nil || resp.Target != "MPEG" {
		t.Fatalf("Compare = %v, %v; want recovered answer", resp, err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2 (truncated answer retried)", hits)
	}
}

func TestCompareRetriesConnectionFailure(t *testing.T) {
	// A server that dies after the first accept: the retry must survive
	// a connection error and succeed against the restarted listener.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"target":"MPEG","basic":{},"ds":{},"cds":{},"attempts":1}`))
	}))
	addr := srv.URL
	srv.Close() // connection refused now
	c := New(Config{BaseURL: addr, Retry: retry.Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}})
	_, err := c.Compare(context.Background(), serve.CompareRequest{Workload: "MPEG"})
	if !errors.Is(err, scherr.ErrTransient) {
		t.Fatalf("err against dead server = %v, want transient classification", err)
	}
}

func TestSweepRetries409JournalBusy(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"journal busy","class":"journal_busy"}`))
			return
		}
		w.Write([]byte(`{"rows":[{"job":"M1/MPEG","fb_bytes":512}],"resumed":1}`))
	}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL, Retry: fastPolicy()})
	resp, err := c.Sweep(context.Background(), serve.SweepRequest{Archs: []string{"M1"}, Journal: "j"})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(resp.Rows) != 1 || resp.Resumed != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2 (409 retried as the duplicate waits for the first copy)", hits)
	}
}

// TestCompareFailoverKeepsOneKeyAcrossTargets pins the cross-worker
// dedup contract: when a logical call fails over to another replica,
// the second target sees the SAME non-empty Idempotency-Key as the
// first — that key is what lets the fleet's replay stores dedupe a
// double submission.
func TestCompareFailoverKeepsOneKeyAcrossTargets(t *testing.T) {
	var mu sync.Mutex
	keysByTarget := map[string][]string{}
	record := func(name string, r *http.Request) {
		mu.Lock()
		keysByTarget[name] = append(keysByTarget[name], r.Header.Get("Idempotency-Key"))
		mu.Unlock()
	}
	// Target A always fails transiently; target B answers.
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		record("a", r)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"dying","class":"transient_fault"}`))
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		record("b", r)
		w.Write([]byte(`{"target":"MPEG","basic":{},"ds":{},"cds":{},"attempts":1}`))
	}))
	defer b.Close()

	c := New(Config{BaseURLs: []string{a.URL, b.URL}, Retry: fastPolicy(), Seed: 11})
	resp, err := c.Compare(context.Background(), serve.CompareRequest{Workload: "MPEG"})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if resp.Target != "MPEG" {
		t.Fatalf("target = %q", resp.Target)
	}
	if len(keysByTarget["a"]) != 1 || len(keysByTarget["b"]) != 1 {
		t.Fatalf("attempt spread = %v, want one attempt per target", keysByTarget)
	}
	ka, kb := keysByTarget["a"][0], keysByTarget["b"][0]
	if ka == "" || ka != kb {
		t.Fatalf("failover changed the idempotency key: %q at a, %q at b", ka, kb)
	}
	if want := IdemKey(11, 1); ka != want {
		t.Fatalf("key = %q, want deterministic %q", ka, want)
	}
}

// TestCompareExhaustionJoinsPerAttemptErrors pins that exhausting every
// replica surfaces the whole error chain: each target's failure is
// reachable through errors.Is/As on the returned error, not just the
// last one.
func TestCompareExhaustionJoinsPerAttemptErrors(t *testing.T) {
	// Target A answers a transient 503; target B is a dead listener, so
	// the two attempts fail in structurally different ways.
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"overloaded","class":"transient_fault"}`))
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := b.URL
	b.Close()

	c := New(Config{BaseURLs: []string{a.URL, deadURL}, Retry: retry.Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}})
	_, err := c.Compare(context.Background(), serve.CompareRequest{Workload: "MPEG"})
	if err == nil {
		t.Fatal("Compare succeeded against a 503 + a dead listener")
	}
	if !errors.Is(err, scherr.ErrTransient) {
		t.Fatalf("joined error lost its transient classification: %v", err)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 503 {
		t.Fatalf("target a's HTTPError not reachable through the join: %v", err)
	}
	// Both targets' stories appear in the message.
	msg := err.Error()
	for _, want := range []string{"all 2 attempts failed", a.URL, deadURL} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

// TestCompareSingleAttemptErrorUnchanged pins that fail-fast request
// errors keep their original shape: no join wrapper for a single
// attempt, so existing callers' error handling is untouched.
func TestCompareSingleAttemptErrorUnchanged(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad","class":"invalid_spec"}`))
	}))
	defer srv.Close()
	c := New(Config{BaseURLs: []string{srv.URL, "http://127.0.0.1:1"}, Retry: fastPolicy()})
	_, err := c.Compare(context.Background(), serve.CompareRequest{})
	if !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
	if strings.Contains(err.Error(), "attempts failed") {
		t.Fatalf("fail-fast error wrapped in a join: %v", err)
	}
}

// TestGetWalksTargetsOnTransportFailure pins that the GET helpers fail
// over across BaseURLs like POSTs do: a dead first replica must not
// blind health probes to the healthy rest of the fleet — while an
// ANSWER from any target, 503s included, is still returned raw.
func TestGetWalksTargetsOnTransportFailure(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"draining"}`))
			return
		}
		w.Write([]byte("ok"))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	c := New(Config{BaseURLs: []string{deadURL, live.URL}, Retry: fastPolicy()})
	status, err := c.Healthz(context.Background())
	if err != nil || status != http.StatusOK {
		t.Fatalf("Healthz = %d, %v; want 200 from the second target", status, err)
	}
	// The walk stops at the first ANSWER: a truthful 503 is a verdict,
	// not a reason to keep walking.
	status, r, err := c.Readyz(context.Background())
	if err != nil || status != http.StatusServiceUnavailable || r.Status != "draining" {
		t.Fatalf("Readyz = %d %+v, %v; want the live target's raw 503", status, r, err)
	}

	// Every target dead: the error names them all.
	allDead := New(Config{BaseURLs: []string{deadURL, "http://127.0.0.1:1"}, Retry: fastPolicy()})
	if _, err := allDead.Healthz(context.Background()); err == nil {
		t.Fatal("Healthz succeeded with every target dead")
	} else if !strings.Contains(err.Error(), "all 2 targets failed") {
		t.Fatalf("error %q missing the per-target join", err)
	}
}

func TestReadyzRawAnswer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"saturated","queue_depth":8,"queue_capacity":8}`))
	}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL, Retry: fastPolicy()})
	status, r, err := c.Readyz(context.Background())
	if err != nil {
		t.Fatalf("Readyz: %v", err)
	}
	if status != 503 || r.Status != "saturated" || r.QueueDepth != 8 {
		t.Fatalf("readyz = %d %+v, want raw 503 saturated", status, r)
	}
}
