// Package scherr defines the scheduling stack's error taxonomy: a small
// set of sentinel classes that callers branch on with errors.Is instead of
// matching message strings or concrete types. Every package of the stack
// (core, alloc, spec, sweep, the cds facade) wraps its failures so that
// exactly one of these classes answers "what kind of failure was this?":
//
//	errors.Is(err, scherr.ErrInfeasible)  // the workload does not fit
//	errors.Is(err, scherr.ErrInvalidSpec) // the input was malformed
//	errors.Is(err, scherr.ErrCapacity)    // an on-chip resource overflowed
//	errors.Is(err, scherr.ErrCanceled)    // the caller's context ended it
//	errors.Is(err, scherr.ErrVerify)      // a schedule broke an invariant
//	errors.Is(err, scherr.ErrTransient)   // a fault worth retrying
//	errors.Is(err, scherr.ErrInternal)    // a broken internal invariant (a bug here)
//
// The sentinels deliberately carry no state; rich detail lives in the
// concrete error types that wrap them (core.InfeasibleError,
// verify.Error, conc.PanicError, ...).
package scherr

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrInfeasible classifies scheduling failures where the workload
	// cannot fit the machine (e.g. a cluster exceeds the Frame Buffer
	// set). An expected outcome for sweeps probing the memory floor.
	ErrInfeasible = errors.New("infeasible")

	// ErrInvalidSpec classifies malformed input: a JSON spec, an App or
	// a Partition that fails structural validation.
	ErrInvalidSpec = errors.New("invalid spec")

	// ErrCapacity classifies on-chip resource overflows discovered
	// during replay or simulation: Frame Buffer allocation failures,
	// Context Memory overflows and the like.
	ErrCapacity = errors.New("capacity exceeded")

	// ErrCanceled classifies failures caused by the caller's context
	// being canceled or timing out. Errors carrying it also match
	// context.Canceled or context.DeadlineExceeded as appropriate.
	ErrCanceled = errors.New("canceled")

	// ErrVerify classifies post-hoc invariant violations found by the
	// schedule verifier (internal/verify).
	ErrVerify = errors.New("verification failed")

	// ErrTransient classifies faults that a retry may clear: a glitched
	// DMA transfer, a momentary external-memory fault. The retry layer
	// (internal/retry) retries exactly the errors matching this class;
	// everything else in the taxonomy is deterministic and fails fast.
	ErrTransient = errors.New("transient fault")

	// ErrInternal classifies broken internal invariants: states that no
	// input should be able to reach (corrupted accounting, impossible
	// replay states). Unlike the classes above it always indicates a bug
	// in this codebase, but it is still an error, not a panic: a long
	// fuzzing sweep or the scheduling service must be able to report the
	// failed work item and keep going.
	ErrInternal = errors.New("internal invariant violated")
)

// Canceled wraps a context error (context.Canceled or
// context.DeadlineExceeded) so the result matches both ErrCanceled and
// the original cause under errors.Is. A nil cause yields nil.
func Canceled(cause error) error {
	if cause == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Sentinel returns a new sentinel error whose Is chain also matches the
// given class. Packages use it to keep their own identity-comparable
// sentinels (alloc.ErrNoSpace, arch.ErrDoesNotFit) while joining the
// taxonomy: errors.Is matches both the returned value and class.
func Sentinel(class error, msg string) error {
	return &sentinel{class: class, msg: msg}
}

type sentinel struct {
	class error
	msg   string
}

func (s *sentinel) Error() string { return s.msg }
func (s *sentinel) Unwrap() error { return s.class }

// FromContext converts a context's status into a taxonomy error: nil
// while the context is live, a Canceled-wrapped error once it is done.
func FromContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return Canceled(ctx.Err())
}
