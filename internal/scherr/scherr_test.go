package scherr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelJoinsClass(t *testing.T) {
	s := Sentinel(ErrCapacity, "alloc: no space")
	if s.Error() != "alloc: no space" {
		t.Fatalf("Error() = %q", s.Error())
	}
	if !errors.Is(s, ErrCapacity) {
		t.Fatal("sentinel does not match its class")
	}
	if errors.Is(s, ErrInfeasible) {
		t.Fatal("sentinel leaked into another class")
	}
	// Identity survives wrapping — the point of a sentinel.
	wrapped := fmt.Errorf("cluster 3: %w", s)
	if !errors.Is(wrapped, s) || !errors.Is(wrapped, ErrCapacity) {
		t.Fatal("wrapping lost sentinel identity or class")
	}
}

func TestCanceled(t *testing.T) {
	if Canceled(nil) != nil {
		t.Fatal("Canceled(nil) must be nil")
	}
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Canceled(DeadlineExceeded) = %v, must match both", err)
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: %v", err)
	}
}

func TestClassesAreDistinct(t *testing.T) {
	classes := []error{ErrInfeasible, ErrInvalidSpec, ErrCapacity, ErrCanceled, ErrVerify}
	for i, a := range classes {
		for j, b := range classes {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("class %d vs %d: Is = %v", i, j, errors.Is(a, b))
			}
		}
	}
}
