package serve

// Fleet-facing surface of one worker (see internal/cluster for the
// router side): worker attribution on every answer, and the peer
// cache-lookup endpoint that lets one worker's rescache hit serve the
// whole fleet.

import (
	"encoding/hex"
	"fmt"
	"net/http"

	"cds"
	"cds/internal/faultmachine"
	"cds/internal/rescache"
	"cds/internal/scherr"
)

// WorkerHeader is the response header naming the worker that produced
// an answer. The router relays it; chaos oracles use it to attribute
// responses to fleet members without trusting addresses.
const WorkerHeader = "Schedd-Worker"

// withWorkerHeader stamps every response with this worker's fleet
// identity. A no-op outside a fleet (no WorkerID configured).
func (s *Server) withWorkerHeader(h http.Handler) http.Handler {
	if s.cfg.WorkerID == "" {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(WorkerHeader, s.cfg.WorkerID)
		h.ServeHTTP(w, r)
	})
}

// PeerHits reports how many /v1/compare answers were filled from a
// fleet peer's cache after a local miss.
func (s *Server) PeerHits() int64 { return s.peerHits.Load() }

// handleCacheLookup answers GET /v1/cache/{key}: the comparison
// memoized under the hex-encoded rescache key, or 404 (class
// "cache_miss") when nothing clean is resident. It never computes and
// never queues — a peer asking is about to compute anyway, so this
// endpoint must cost at most a map lookup. The served JSON is a full
// CompareResponse minus the request-specific fields (Target is the
// ASKER's to fill in; this worker only knows the key).
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	raw, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(raw) != len(rescache.Key{}) {
		s.writeErr(w, fmt.Errorf("bad cache key %q (want %d hex bytes): %w",
			r.PathValue("key"), len(rescache.Key{}), scherr.ErrInvalidSpec))
		return
	}
	var key rescache.Key
	copy(key[:], raw)
	cmp, ok := cds.LookupComparisonByKey(key)
	if !ok {
		writeJSONError(w, http.StatusNotFound, "no resident comparison for key", "cache_miss")
		return
	}
	s.cfg.Logf("serve: cache lookup hit for %s", r.PathValue("key")[:8])
	s.writeCompare(w, "", cmp, faultmachine.Stats{}, 1, "local", nil)
}
