package serve

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"cds"
	"cds/internal/rescache"
	"cds/internal/workloads"
)

// postCompare drives one /v1/compare through the full middleware chain.
func postCompare(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, CompareResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/compare", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var resp CompareResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding compare answer: %v", err)
		}
	}
	return rec, resp
}

// TestReadyzReportsWorkerIdentity pins the fleet-facing readyz fields:
// a worker with an ID reports who it is (ID, PID, uptime, journal dir),
// and a plain single-daemon server omits them.
func TestReadyzReportsWorkerIdentity(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{WorkerID: "w7", JournalDir: dir})
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	s.ready.Store(true)
	s.Handler().ServeHTTP(rec, req)
	var rz ReadyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rz); err != nil {
		t.Fatalf("decoding readyz: %v", err)
	}
	if rz.WorkerID != "w7" || rz.PID != os.Getpid() || rz.JournalDir != dir {
		t.Fatalf("readyz identity = %+v, want worker w7 pid %d dir %s", rz, os.Getpid(), dir)
	}
	if rec.Header().Get(WorkerHeader) != "w7" {
		t.Fatalf("missing %s header: %v", WorkerHeader, rec.Header())
	}

	// No fleet, no identity noise.
	plain := New(Config{})
	plain.ready.Store(true)
	rec = httptest.NewRecorder()
	plain.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if strings.Contains(rec.Body.String(), "worker_id") {
		t.Fatalf("single-daemon readyz leaks fleet fields: %s", rec.Body.String())
	}
	if rec.Header().Get(WorkerHeader) != "" {
		t.Fatal("single-daemon server stamps a worker header")
	}
}

// TestCacheLookupEndpoint pins GET /v1/cache/{key}: a computed
// comparison is servable by key, a cold key answers 404 cache_miss, and
// a malformed key answers 400.
func TestCacheLookupEndpoint(t *testing.T) {
	s := New(Config{WorkerID: "w0"})
	// Compute (and thereby cache) one comparison through the API.
	rec, _ := postCompare(t, s, `{"workload":"E1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("compare = %d: %s", rec.Code, rec.Body.String())
	}
	e, err := workloads.ByName("E1")
	if err != nil {
		t.Fatal(err)
	}
	key := cds.ComparisonKey(e.Arch, e.Part)

	req := httptest.NewRequest(http.MethodGet, "/v1/cache/"+hex.EncodeToString(key[:]), nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cache lookup = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CompareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding cache answer: %v", err)
	}
	if !resp.Cached || resp.CacheSource != "local" || resp.WorkerID != "w0" {
		t.Fatalf("cache answer = %+v, want cached local from w0", resp)
	}
	if resp.Target != "" {
		t.Fatalf("cache answer invented a target %q (the asker fills it)", resp.Target)
	}

	// Cold key: 404 with the cache_miss class.
	var cold rescache.Key
	cold[0] = 0xFF
	req = httptest.NewRequest(http.MethodGet, "/v1/cache/"+hex.EncodeToString(cold[:]), nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "cache_miss") {
		t.Fatalf("cold key = %d %s, want 404 cache_miss", rec.Code, rec.Body.String())
	}

	// Malformed key: 400.
	req = httptest.NewRequest(http.MethodGet, "/v1/cache/zzzz", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad key = %d, want 400", rec.Code)
	}
}

// TestCompareUsesPeerFillOnLocalMiss pins the peer-fill path: a local
// cache miss consults the PeerFill seam and relays the peer's answer
// (attributed to both workers) without computing or queueing.
func TestCompareUsesPeerFillOnLocalMiss(t *testing.T) {
	asked := 0
	peer := func(ctx context.Context, fp [32]byte, key rescache.Key) (*CompareResponse, bool) {
		asked++
		return &CompareResponse{
			WorkerID: "w-peer",
			CDS:      SchedulerResult{TotalCycles: 4242},
			RF:       3,
		}, true
	}
	s := New(Config{WorkerID: "w-self", PeerFill: peer})
	// An FB override no other test uses guarantees a local miss.
	rec, resp := postCompare(t, s, `{"workload":"E1","fb_bytes":999424}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("compare = %d: %s", rec.Code, rec.Body.String())
	}
	if asked != 1 {
		t.Fatalf("peer asked %d times, want 1", asked)
	}
	if !resp.Cached || resp.CacheSource != "peer" || resp.CacheWorker != "w-peer" || resp.WorkerID != "w-self" {
		t.Fatalf("peer-filled answer = %+v, want cached peer answer from w-peer via w-self", resp)
	}
	if resp.Target != "E1" || resp.CDS.TotalCycles != 4242 {
		t.Fatalf("answer = %+v, want asker-filled target E1 with the peer's cycles", resp)
	}
	if got := rec.Header().Get("Server-Timing"); got != "cache;desc=peer" {
		t.Fatalf("Server-Timing = %q, want cache;desc=peer", got)
	}
	if s.PeerHits() != 1 {
		t.Fatalf("PeerHits = %d, want 1", s.PeerHits())
	}

	// A peer miss falls through to local compute; the answer is fresh,
	// not cached, and attributed to this worker alone.
	misses := 0
	s2 := New(Config{WorkerID: "w-self", PeerFill: func(context.Context, [32]byte, rescache.Key) (*CompareResponse, bool) {
		misses++
		return nil, false
	}})
	rec, resp = postCompare(t, s2, `{"workload":"E1","fb_bytes":998912}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("compare after peer miss = %d: %s", rec.Code, rec.Body.String())
	}
	if misses != 1 {
		t.Fatalf("peer consulted %d times, want 1", misses)
	}
	if resp.Cached || resp.CacheSource != "" || resp.WorkerID != "w-self" {
		t.Fatalf("computed answer = %+v, want uncached from w-self", resp)
	}
}

// TestTracedCompareSkipsPeerFill pins that ?trace=1 requests never take
// the peer path: analytics need the locally computed comparison.
func TestTracedCompareSkipsPeerFill(t *testing.T) {
	s := New(Config{WorkerID: "w-self", PeerFill: func(context.Context, [32]byte, rescache.Key) (*CompareResponse, bool) {
		t.Error("traced request consulted the peer cache")
		return nil, false
	}})
	req := httptest.NewRequest(http.MethodPost, "/v1/compare?trace=1",
		bytes.NewReader([]byte(`{"workload":"E1","fb_bytes":998400}`)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced compare = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CompareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) == 0 {
		t.Fatal("traced compare returned no analytics")
	}
}
