package serve

// Daemon hardening added for the chaos harness (internal/chaos):
//
//   - Panic recovery: a handler panic answers 500 with a JSON body in
//     the scherr.ErrInternal class and increments the "schedd_panics"
//     expvar instead of killing the process — a long-lived daemon must
//     survive its own bugs and report them, not restart-loop.
//
//   - Compare idempotency: a client retrying through a flaky network
//     (internal/schedclient behind a fault-injecting proxy) attaches an
//     Idempotency-Key header; while the first attempt is in flight,
//     duplicates wait for it, and once it has answered 2xx duplicates
//     replay the stored answer (marked Idempotency-Replayed: true)
//     instead of re-running the work. Non-2xx outcomes are deliberately
//     not stored: a failed attempt's duplicate re-executes for real.
//     Every entry remembers the request body's hash — a key that
//     reappears under a DIFFERENT body (a restarted router re-minting
//     its deterministic key stream, a client bug) is a collision, not a
//     duplicate, and bypasses the store entirely: the request executes
//     for real rather than replaying some other request's answer.
//     Sweeps get the same guarantee from journal-name locking plus
//     journaled resume, so a duplicated sweep submission re-runs no
//     completed point.

import (
	"bytes"
	"crypto/sha256"
	"expvar"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"

	"cds/internal/scherr"
)

// withRecover is the outermost middleware: a panicking handler is
// reported as a 500 in the ErrInternal class instead of tearing down
// the whole process (net/http would only kill the one connection, but a
// panic must still produce a well-formed JSON error and a counter).
func (s *Server) withRecover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.cfg.Logf("serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// Best effort: if the handler already started its answer
				// this write is lost on the wire, but the counter and log
				// above still record the panic.
				s.writeErr(w, fmt.Errorf("handler panic: %v: %w", v, scherr.ErrInternal))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Panics reports how many handler panics were recovered so far.
func (s *Server) Panics() int64 { return s.panics.Load() }

// The "schedd_panics" and "schedd_idem_hits" expvars aggregate over the
// same server registry as "schedd_traces" (see trace.go for why a
// registry + sync.Once).
var hardenPublishOnce sync.Once

func registerHardenExpvars() {
	hardenPublishOnce.Do(func() {
		expvar.Publish("schedd_panics", expvar.Func(func() any {
			traceRegistryMu.Lock()
			defer traceRegistryMu.Unlock()
			var total int64
			for _, srv := range traceRegistry {
				total += srv.panics.Load()
			}
			return total
		}))
		expvar.Publish("schedd_idem_hits", expvar.Func(func() any {
			traceRegistryMu.Lock()
			defer traceRegistryMu.Unlock()
			var total int64
			for _, srv := range traceRegistry {
				total += srv.idemHits.Load()
			}
			return total
		}))
		expvar.Publish("schedd_idem_collisions", expvar.Func(func() any {
			traceRegistryMu.Lock()
			defer traceRegistryMu.Unlock()
			var total int64
			for _, srv := range traceRegistry {
				total += srv.idemCollisions.Load()
			}
			return total
		}))
	})
}

// responseRecorder tees a handler's answer so a completed 2xx can be
// stored for idempotent replay.
type responseRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	r.buf.Write(p)
	return r.ResponseWriter.Write(p)
}

// idemEntry is one Idempotency-Key's state: in flight until done is
// closed, replayable afterwards iff status is 2xx. bodyHash fingerprints
// the request body the key was first seen with, so a colliding reuse of
// the key for different work is detectable.
type idemEntry struct {
	done     chan struct{}
	bodyHash [sha256.Size]byte
	status   int
	body     []byte
}

// idemStore is the bounded idempotency map. Eviction is FIFO over
// insertion order; evicting an entry only forfeits dedup for retries
// arriving after capacity-many newer keys, never correctness.
type idemStore struct {
	mu    sync.Mutex
	m     map[string]*idemEntry
	order []string
	bound int
}

func newIdemStore(bound int) *idemStore {
	if bound <= 0 {
		bound = 256
	}
	return &idemStore{m: map[string]*idemEntry{}, bound: bound}
}

// begin claims key: (entry, true) makes the caller the owner who must
// call complete; (entry, false) hands back an existing entry — the
// caller waits on it only if its bodyHash matches the new request's.
func (st *idemStore) begin(key string, bodyHash [sha256.Size]byte) (*idemEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.m[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{}), bodyHash: bodyHash}
	st.m[key] = e
	st.order = append(st.order, key)
	if len(st.order) > st.bound {
		oldest := st.order[0]
		st.order = st.order[1:]
		delete(st.m, oldest)
	}
	return e, true
}

// complete settles an owned entry: 2xx answers become replayable; other
// outcomes remove the key so a later duplicate re-executes for real.
func (st *idemStore) complete(key string, e *idemEntry, status int, body []byte) {
	st.mu.Lock()
	if status >= 200 && status < 300 {
		e.status, e.body = status, body
	} else if st.m[key] == e {
		delete(st.m, key)
		for i, k := range st.order {
			if k == key {
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
	}
	st.mu.Unlock()
	close(e.done)
}

// idemBegin implements the Idempotency-Key protocol for one request:
// proceed=true means the caller must run the work — with finish non-nil
// it owns the key and calls finish with the recorded answer; with finish
// nil the key collided with a DIFFERENT body (a re-minted router key, a
// client bug) and the request runs outside the store, so the collision
// can never replay another request's answer. proceed=false means the
// response has already been written (a replayed stored answer, or a
// cancellation while waiting on the first attempt).
func (s *Server) idemBegin(w http.ResponseWriter, r *http.Request, key string, bodyHash [sha256.Size]byte) (finish func(status int, body []byte), proceed bool) {
	for {
		e, owner := s.idem.begin(key, bodyHash)
		if owner {
			return func(status int, body []byte) {
				s.idem.complete(key, e, status, body)
			}, true
		}
		if e.bodyHash != bodyHash {
			s.idemCollisions.Add(1)
			s.cfg.Logf("serve: idempotency key %q reused with a different body; executing for real", key)
			return nil, true
		}
		select {
		case <-e.done:
			if e.status != 0 {
				s.idemHits.Add(1)
				s.cfg.Logf("serve: idempotent replay for key %q", key)
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Idempotency-Replayed", "true")
				w.WriteHeader(e.status)
				w.Write(e.body)
				return nil, false
			}
			// The first attempt failed; loop to claim ownership and
			// execute this duplicate for real.
		case <-r.Context().Done():
			s.writeErr(w, scherr.Canceled(r.Context().Err()))
			return nil, false
		}
	}
}
