package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cds"
	"cds/internal/scherr"
)

// TestPanicRecoveryMiddleware pins the panic contract: a panicking
// handler answers 500 with an ErrInternal-classed JSON body and bumps
// the panic counter; the server keeps serving afterwards.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			panic("kaboom: handler bug")
		},
	})
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500: %s", w.Code, w.Body.String())
	}
	e := decode[errorBody](t, w)
	if e.Class != "internal" {
		t.Fatalf("class = %q, want internal", e.Class)
	}
	if !strings.Contains(e.Error, "kaboom") || !strings.Contains(e.Error, scherr.ErrInternal.Error()) {
		t.Fatalf("error body %q does not carry the panic value and the ErrInternal class", e.Error)
	}
	if s.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", s.Panics())
	}

	// The process survived: an unrelated endpoint still answers.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hw := httptest.NewRecorder()
	s.Handler().ServeHTTP(hw, req)
	if hw.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", hw.Code)
	}
}

func readyz(t *testing.T, s *Server) (int, ReadyzResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w.Code, decode[ReadyzResponse](t, w)
}

// TestReadyzSaturation pins the overload transition: /readyz flips to
// 503 "saturated" (with queue depth and capacity in the body) exactly
// while the admission queue is full, and back to 200 once it drains.
func TestReadyzSaturation(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := New(Config{
		Workers: 1,
		Queue:   1,
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
			return &cds.Comparison{DS: &cds.Result{}}, nil
		},
	})
	s.ready.Store(true)

	if code, r := readyz(t, s); code != http.StatusOK || r.Status != "ready" || r.QueueCapacity != 1 {
		t.Fatalf("idle readyz = %d %+v, want 200 ready capacity=1", code, r)
	}

	var wg sync.WaitGroup
	serveOne := func() {
		defer wg.Done()
		post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	}
	wg.Add(2)
	go serveOne() // occupies the single slot
	<-started
	go serveOne() // waits in the queue -> saturation
	for i := 0; i < 500 && s.waiters.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	code, r := readyz(t, s)
	if code != http.StatusServiceUnavailable || r.Status != "saturated" {
		t.Fatalf("saturated readyz = %d %+v, want 503 saturated", code, r)
	}
	if r.QueueDepth != 1 || r.QueueCapacity != 1 {
		t.Fatalf("saturated readyz body %+v, want depth=1 capacity=1", r)
	}

	close(release)
	wg.Wait()
	if code, r := readyz(t, s); code != http.StatusOK || r.Status != "ready" || r.QueueDepth != 0 {
		t.Fatalf("post-drain readyz = %d %+v, want 200 ready depth=0", code, r)
	}
}

// TestReadyzDraining pins the shutdown transition: Drain flips /readyz
// to 503 "draining" even with an empty queue.
func TestReadyzDraining(t *testing.T) {
	s := New(Config{})
	s.ready.Store(true)
	if code, r := readyz(t, s); code != http.StatusOK || r.Status != "ready" {
		t.Fatalf("readyz = %d %+v, want 200 ready", code, r)
	}
	s.ready.Store(false) // what Drain does first
	if code, r := readyz(t, s); code != http.StatusServiceUnavailable || r.Status != "draining" {
		t.Fatalf("draining readyz = %d %+v, want 503 draining", code, r)
	}
}

// TestCompareIdempotency pins the duplicate-submission contract: two
// concurrent requests sharing an Idempotency-Key run the backend once;
// the duplicate replays the first answer byte-identically.
func TestCompareIdempotency(t *testing.T) {
	var calls int32
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	var mu sync.Mutex
	s := New(Config{
		Workers: 2,
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			entered <- struct{}{}
			<-release
			return &cds.Comparison{DS: &cds.Result{}, CDS: &cds.Result{}}, nil
		},
	})

	do := func(out chan<- *httptest.ResponseRecorder) {
		req := httptest.NewRequest(http.MethodPost, "/v1/compare", strings.NewReader(`{"workload":"MPEG"}`))
		req.Header.Set("Idempotency-Key", "k1")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		out <- w
	}
	answers := make(chan *httptest.ResponseRecorder, 2)
	go do(answers)
	<-entered // first attempt is inside the backend
	go do(answers)
	time.Sleep(20 * time.Millisecond) // the duplicate parks on the in-flight entry
	close(release)

	a, b := <-answers, <-answers
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("answers = %d, %d, want 200, 200", a.Code, b.Code)
	}
	if a.Body.String() != b.Body.String() {
		t.Fatalf("replayed answer differs:\n%s\nvs\n%s", a.Body.String(), b.Body.String())
	}
	if calls != 1 {
		t.Fatalf("backend ran %d times for one idempotency key, want 1", calls)
	}
	replays := 0
	for _, w := range []*httptest.ResponseRecorder{a, b} {
		if w.Header().Get("Idempotency-Replayed") == "true" {
			replays++
		}
	}
	if replays != 1 {
		t.Fatalf("replayed answers = %d, want exactly 1", replays)
	}
	if s.idemHits.Load() != 1 {
		t.Fatalf("idemHits = %d, want 1", s.idemHits.Load())
	}

	// A later request with the same key replays without touching the
	// backend at all.
	go do(answers)
	c := <-answers
	if c.Code != http.StatusOK || c.Header().Get("Idempotency-Replayed") != "true" {
		t.Fatalf("stored replay = %d (replayed=%q), want 200 replayed", c.Code, c.Header().Get("Idempotency-Replayed"))
	}
	if calls != 1 {
		t.Fatalf("backend ran %d times after stored replay, want still 1", calls)
	}
}

// TestCompareIdempotencyFailedAttemptRetries pins the other half of the
// contract: non-2xx outcomes are not stored, so a duplicate of a failed
// attempt re-executes for real.
func TestCompareIdempotencyFailedAttemptRetries(t *testing.T) {
	var calls int32
	var mu sync.Mutex
	s := New(Config{
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 1 {
				return nil, scherr.ErrInfeasible
			}
			return &cds.Comparison{DS: &cds.Result{}}, nil
		},
	})
	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/compare", strings.NewReader(`{"workload":"MPEG"}`))
		req.Header.Set("Idempotency-Key", "k2")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	if w := do(); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("first attempt = %d, want 422", w.Code)
	}
	if w := do(); w.Code != http.StatusOK {
		t.Fatalf("retry after failed attempt = %d, want 200 (failure must not be replayed)", w.Code)
	}
	if calls != 2 {
		t.Fatalf("backend calls = %d, want 2", calls)
	}
}

// TestCompareIdempotencyKeyCollisionRunsForReal pins the body-hash
// guard: an Idempotency-Key reused with a DIFFERENT body (a restarted
// router re-minting its key stream, a buggy client) must never replay
// the first request's stored answer — the colliding request executes
// for real, bypassing the store.
func TestCompareIdempotencyKeyCollisionRunsForReal(t *testing.T) {
	var calls int32
	var mu sync.Mutex
	s := New(Config{
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			return &cds.Comparison{DS: &cds.Result{}, CDS: &cds.Result{}}, nil
		},
	})
	do := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/compare", strings.NewReader(body))
		req.Header.Set("Idempotency-Key", "k-collide")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	if w := do(`{"workload":"MPEG"}`); w.Code != http.StatusOK {
		t.Fatalf("first request = %d", w.Code)
	}
	w := do(`{"workload":"E1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("colliding request = %d", w.Code)
	}
	if w.Header().Get("Idempotency-Replayed") == "true" {
		t.Fatal("colliding key replayed another request's answer")
	}
	if !strings.Contains(w.Body.String(), `"E1"`) {
		t.Fatalf("colliding answer = %s, want the E1 request's own result", w.Body.String())
	}
	if calls != 2 {
		t.Fatalf("backend calls = %d, want 2 (the collision must execute for real)", calls)
	}
	if s.idemCollisions.Load() != 1 {
		t.Fatalf("idemCollisions = %d, want 1", s.idemCollisions.Load())
	}

	// A true duplicate of the FIRST body still replays: the collision
	// left the stored entry intact.
	if w := do(`{"workload":"MPEG"}`); w.Header().Get("Idempotency-Replayed") != "true" {
		t.Fatal("true duplicate after a collision lost its replay")
	}
	if calls != 2 {
		t.Fatalf("backend calls = %d after replay, want still 2", calls)
	}
}
