// Package serve is the scheduling service behind cmd/schedd: an
// HTTP/JSON API over cds.CompareAllCtx and the sweep batch runner,
// hardened the way a long-lived daemon has to be:
//
//   - Admission control: a fixed number of execution slots plus a
//     bounded wait queue; when the queue is full the request is shed
//     immediately with 429 and a Retry-After hint instead of piling up.
//
//   - Retry with backoff: every compare call runs under internal/retry,
//     so a transient DMA fault (scherr.ErrTransient) costs backoff
//     milliseconds, not a failed request; deterministic errors
//     (invalid spec, infeasible) fail fast.
//
//   - Per-target circuit breaking: a workload that keeps failing
//     transiently trips its own breaker and is rejected with 503 +
//     Retry-After until a cooldown probe succeeds, without affecting
//     healthy targets.
//
//   - Per-request deadlines: every request inherits the server's
//     RequestTimeout through PR 2's context plumbing, so a stuck point
//     cannot hold an execution slot forever.
//
//   - Crash-safe sweeps: a sweep request naming a journal checkpoints
//     every completed point (sweep.RunJournaled); re-POSTing after a
//     crash resumes instead of recomputing.
//
//   - Graceful shutdown: Drain flips /readyz to 503 (so load balancers
//     stop sending), lets in-flight requests finish within the deadline,
//     then cancels the base context so journaled sweeps record their
//     abandoned points as canceled.
//
//   - Execution tracing: /v1/compare?trace=1 answers with per-scheduler
//     timeline analytics (utilization, overlap efficiency, critical-path
//     decomposition), and a sampled, byte-budgeted ring keeps recent full
//     traces for GET /debug/traces.
//
//   - Fleet membership: a worker given a WorkerID reports its identity
//     (ID, PID, uptime, journal dir) on /readyz so routers and chaos
//     oracles can tell a restarted worker from its predecessor on the
//     same port, stamps every answer with a Schedd-Worker header, serves
//     its result cache to ring peers on GET /v1/cache/{key}, and — via
//     the PeerFill seam — consults a peer's cache on a local miss before
//     computing (internal/cluster wires the ring; serve stays
//     cluster-agnostic).
//
//   - Incremental streaming: POST /v1/stream plans an arrival log with
//     the online scheduler; segment schedules are memoized under their
//     content fingerprints in a daemon-lived planner, so re-posting an
//     evolved log replans only the divergent segments (delta
//     replanning) and the answer reports the reuse split.
//
//   - Multi-tenant admission: with Config.Tenants set (schedd -tenants)
//     every compare/sweep request names its tenant via the X-Tenant
//     header, each tenant gets its own bounded admission budget (its
//     own 429, its own Retry-After sized to the backlog), and free
//     execution slots are granted across tenants by weighted fair
//     queueing — the service-level mirror of the array-level tenant
//     interleaver (internal/tenant). GET /metrics reports per-tenant
//     queue state alongside the result-cache counters.
//
// Endpoints: POST /v1/compare, POST /v1/sweep, POST /v1/stream,
// GET /v1/cache/{key}, GET /debug/traces, GET /metrics, GET /healthz,
// GET /readyz.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cds"
	"cds/internal/faultmachine"
	"cds/internal/rescache"
	"cds/internal/retry"
	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/stream"
	"cds/internal/sweep"
	"cds/internal/trace"
	"cds/internal/workloads"
)

// CompareFunc is the backend seam for /v1/compare: production uses
// cds.CompareAllCtx; tests substitute blocking or failing backends.
type CompareFunc func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error)

// PeerFillFunc is the fleet seam for peer cache fill: given a compare
// request's partition fingerprint (the ring routing key) and its result
// cache key, return a peer's cached answer if one exists. Implemented
// by internal/cluster; serve itself knows nothing about ring topology.
// The function must be fast-or-absent: a miss, an unreachable peer, or
// a slow peer all return ok=false and the worker computes locally.
type PeerFillFunc func(ctx context.Context, fp [32]byte, key rescache.Key) (*CompareResponse, bool)

// Config parameterizes the server. The zero value is usable: 2 workers,
// a queue of 8, 30s request timeout, default retry policy and breakers,
// no journal directory (sweep journaling disabled), no fault injection.
type Config struct {
	// Workers is the number of concurrent execution slots.
	Workers int
	// Queue bounds how many admitted requests may wait for a slot; the
	// next one is shed with 429 + Retry-After.
	Queue int
	// RequestTimeout is the per-request deadline.
	RequestTimeout time.Duration
	// DrainGrace is how long Drain keeps serving (answering /readyz with
	// 503) after readiness flips, so load balancers observe the flip and
	// stop routing before connections start being refused. The window is
	// clamped to half of Drain's remaining deadline so the shutdown
	// always keeps time to drain in-flight requests.
	DrainGrace time.Duration
	// Retry wraps every compare backend call.
	Retry retry.Policy
	// BreakerThreshold and BreakerCooldown configure the per-target
	// circuit breakers (NewBreaker defaulting applies).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// JournalDir, when set, enables sweep checkpointing: a request's
	// journal name maps to <JournalDir>/<name>.jsonl.
	JournalDir string
	// Machine, when set, additionally executes the CDS schedule of every
	// comparison on the functional machine under this fault-injection
	// runner. Injected transient failures are absorbed by the retry
	// policy; stalls must leave results untouched. Used for soak and
	// chaos testing (schedd's -fault-* flags).
	Machine *faultmachine.Runner
	// MachineSeed seeds the functional machine runs.
	MachineSeed int64
	// Compare substitutes the compare backend (default cds.CompareAllCtx
	// plus the optional Machine execution).
	Compare CompareFunc
	// TraceRingEntries and TraceRingBytes bound the /debug/traces ring
	// (defaults: 32 entries, 1 MiB of Chrome payloads). The ring only
	// ever holds what both bounds allow, so a long-lived daemon's trace
	// memory is fixed.
	TraceRingEntries int
	TraceRingBytes   int
	// TraceSampleEvery keeps every Nth ?trace=1 answer's full Chrome
	// payload in the ring (1 = every one, the default). Analytics are
	// always returned inline regardless of sampling.
	TraceSampleEvery int
	// SweepPointDelay, when positive, paces journaled sweeps: after each
	// journaled point the worker waits this long before taking the next.
	// A chaos/testing knob (schedd -sweep-point-delay): it widens the
	// window in which a process kill lands mid-sweep, making
	// kill-at-record-N plans deterministic.
	SweepPointDelay time.Duration
	// IdempotencyEntries bounds the /v1/compare idempotency map
	// (default 256 completed keys, FIFO eviction).
	IdempotencyEntries int
	// StreamMemoSegments bounds the /v1/stream segment-schedule memo
	// (default stream.DefaultMemoSegments).
	StreamMemoSegments int
	// WorkerID is this worker's stable fleet identity: what the router's
	// ring hashes and what /readyz and the Schedd-Worker header report.
	// Empty outside a fleet (single-daemon deployments change nothing).
	WorkerID string
	// PeerFill, when set, is consulted on a /v1/compare local cache miss
	// before the request pays for admission and computation: one fleet
	// worker's cached result serves them all. Wired by internal/cluster.
	PeerFill PeerFillFunc
	// Tenants, when non-empty, switches admission to multi-tenant mode:
	// compare/sweep requests must name a configured tenant in the
	// X-Tenant header, each tenant waits in its own budgeted queue, and
	// slots are granted by weighted fair queueing. Empty keeps the
	// single shared queue exactly as before.
	Tenants []TenantSpec
	// Now substitutes the clock for the breakers (tests).
	Now func() time.Time
	// Logf receives one line per served request and lifecycle event; nil
	// disables logging.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.TraceSampleEvery <= 0 {
		c.TraceSampleEvery = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the scheduling service. Construct with New; drive with
// Serve (or Handler for tests) and Drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	http    *http.Server
	ready   atomic.Bool
	slots   chan struct{}
	waiters atomic.Int64
	shed    atomic.Int64
	served  atomic.Int64
	// cacheHits counts /v1/compare answers served straight from the
	// result cache, bypassing admission and retry; peerHits counts the
	// subset answered by a fleet peer's cache after a local miss.
	cacheHits atomic.Int64
	peerHits  atomic.Int64
	// start anchors the uptime /readyz reports; a restart on the same
	// port resets it, which is how oracles tell the two apart.
	start time.Time
	// traces is the bounded ring behind /debug/traces; traceReqs counts
	// ?trace=1 answers, traceSeen drives the sampling cadence.
	traces    *trace.Ring
	traceReqs atomic.Int64
	traceSeen atomic.Int64
	// panics counts handler panics recovered by the middleware; idemHits
	// counts /v1/compare answers replayed from the idempotency store;
	// idemCollisions counts key reuses with a different body, which
	// bypass the store instead of replaying the wrong answer.
	panics         atomic.Int64
	idemHits       atomic.Int64
	idemCollisions atomic.Int64
	idem           *idemStore
	handler        http.Handler
	breakers       *retry.BreakerSet
	baseCtx        context.Context
	cancel         context.CancelFunc

	// journals tracks which journal names have a sweep in flight, so two
	// concurrent requests cannot append to the same checkpoint file.
	jmu      sync.Mutex
	journals map[string]bool

	// planner is the daemon-lived incremental stream scheduler behind
	// POST /v1/stream: segment schedules memoized here survive across
	// requests, so re-posting an evolved arrival log replans only the
	// divergent segments. streamReqs/streamReused feed /readyz.
	planner      *stream.Planner
	streamReqs   atomic.Int64
	streamReused atomic.Int64

	// tq is the multi-tenant admission queue; nil outside tenant mode,
	// in which case admit falls back to the single shared queue.
	tq *tenantQueue
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		slots:    make(chan struct{}, cfg.Workers),
		traces:   trace.NewRing(cfg.TraceRingEntries, cfg.TraceRingBytes),
		breakers: retry.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now),
		journals: map[string]bool{},
		idem:     newIdemStore(cfg.IdempotencyEntries),
		planner:  stream.NewPlanner(cfg.StreamMemoSegments),
		start:    time.Now(),
	}
	if len(cfg.Tenants) > 0 {
		s.tq = newTenantQueue(cfg.Workers, cfg.Queue, cfg.Tenants)
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheLookup)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.handler = s.withRecover(s.withWorkerHeader(s.mux))
	registerTraceExpvar(s)
	registerHardenExpvars()
	s.http = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
	}
	return s
}

// Handler exposes the full middleware chain (panic recovery over the
// mux) for in-process tests. Requests served through it do not inherit
// the base context; use Serve for lifecycle tests.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve marks the server ready and serves connections on l until Drain
// (or a listener error). Like http.Server.Serve it returns
// http.ErrServerClosed after a shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.ready.Store(true)
	s.cfg.Logf("serve: listening on %s (workers=%d queue=%d)", l.Addr(), s.cfg.Workers, s.cfg.Queue)
	return s.http.Serve(l)
}

// Drain gracefully shuts the server down: readiness flips to 503
// immediately, in-flight (and queued) requests run to completion within
// ctx's deadline, and if the deadline expires first the base context is
// canceled — handlers then stop cooperatively and journaled sweeps
// record their abandoned points as canceled — before the listener is
// force-closed. Returns nil when everything drained in time.
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false)
	s.cfg.Logf("serve: draining (served=%d shed=%d)", s.served.Load(), s.shed.Load())
	if grace := s.cfg.DrainGrace; grace > 0 {
		// The grace window spends the caller's drain budget, so cap it at
		// half the remaining deadline — a misconfigured grace >= deadline
		// must not leave Shutdown an already-expired context that would
		// force-close idle servers.
		if d, ok := ctx.Deadline(); ok {
			if rem := time.Until(d); grace > rem/2 {
				grace = rem / 2
			}
		}
		if grace > 0 {
			t := time.NewTimer(grace)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
	}
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Deadline expired with requests still in flight: cancel their
		// contexts so they abort (journaling canceled points), then close.
		s.cancel()
		s.http.Close()
		return fmt.Errorf("serve: drain deadline expired: %w", err)
	}
	s.cancel()
	s.cfg.Logf("serve: drained cleanly")
	return nil
}

// Ready reports whether the server currently answers /readyz with 200.
func (s *Server) Ready() bool { return s.ready.Load() }

// Shed reports how many requests were load-shed with 429 so far.
func (s *Server) Shed() int64 { return s.shed.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ReadyzResponse is the JSON answer of /readyz. Status is "ready"
// (200), "draining" (503, the server is shutting down) or "saturated"
// (503, the admission queue is full: the next request would be shed).
// Supervisors and routers steer traffic on it, so it must be truthful —
// a saturated server answering 200 invites the load balancer to pile
// more work onto a queue that is already shedding.
type ReadyzResponse struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	// WorkerID/PID/UptimeMS/JournalDir identify the worker process behind
	// this port. A worker restarted on the same address keeps its
	// WorkerID (ring placement is ID-stable) but shows a new PID and a
	// reset uptime — exactly the distinction the router's readmission
	// logic and the chaos restart-identity oracle need.
	WorkerID   string `json:"worker_id,omitempty"`
	PID        int    `json:"pid,omitempty"`
	UptimeMS   int64  `json:"uptime_ms,omitempty"`
	JournalDir string `json:"journal_dir,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := int(s.waiters.Load()), s.cfg.Queue
	if s.tq != nil {
		// Tenant mode: the honest queue picture is the summed per-tenant
		// backlogs against the summed budgets.
		depth, capacity = s.tq.depth()
	}
	resp := ReadyzResponse{
		Status:        "ready",
		QueueDepth:    depth,
		QueueCapacity: capacity,
		WorkerID:      s.cfg.WorkerID,
		PID:           os.Getpid(),
		UptimeMS:      time.Since(s.start).Milliseconds(),
		JournalDir:    s.cfg.JournalDir,
	}
	status := http.StatusOK
	switch {
	case !s.ready.Load():
		resp.Status, status = "draining", http.StatusServiceUnavailable
	case resp.QueueDepth >= resp.QueueCapacity:
		resp.Status, status = "saturated", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// admit implements the bounded work queue: an execution slot when one is
// free, a bounded wait otherwise, immediate 429 + Retry-After beyond the
// queue bound. ok=false means the response has been written. In tenant
// mode the wait goes through the per-tenant weighted-fair queue instead.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.tq != nil {
		return s.admitTenant(w, r)
	}
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	default:
	}
	if s.waiters.Add(1) > int64(s.cfg.Queue) {
		s.waiters.Add(-1)
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "queue full, load shed", "overload")
		return nil, false
	}
	defer s.waiters.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	case <-r.Context().Done():
		s.writeErr(w, scherr.Canceled(r.Context().Err()))
		return nil, false
	}
}

// CompareRequest selects a workload either by Table 1 name (with
// optional architecture preset and FB-size overrides) or as a full
// embedded spec (the internal/spec JSON schema).
type CompareRequest struct {
	Workload string          `json:"workload,omitempty"`
	Arch     string          `json:"arch,omitempty"`
	FBBytes  int             `json:"fb_bytes,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

// SchedulerResult is one scheduler's slice of a CompareResponse.
type SchedulerResult struct {
	TotalCycles int    `json:"total_cycles,omitempty"`
	Error       string `json:"error,omitempty"`
}

// CompareResponse is the JSON answer of /v1/compare.
type CompareResponse struct {
	Target         string          `json:"target"`
	Basic          SchedulerResult `json:"basic"`
	DS             SchedulerResult `json:"ds"`
	CDS            SchedulerResult `json:"cds"`
	BasicFeasible  bool            `json:"basic_feasible"`
	RF             int             `json:"rf"`
	DSImprovement  float64         `json:"ds_improvement"`
	CDSImprovement float64         `json:"cds_improvement"`
	DTBytes        int             `json:"dt_bytes"`
	Degraded       bool            `json:"degraded,omitempty"`
	Attempts       int             `json:"attempts"`
	// Cached marks answers served from the result cache: the request
	// skipped queue admission, the breaker and the retry loop entirely
	// (also surfaced as a Server-Timing: cache;desc=hit header).
	Cached bool `json:"cached,omitempty"`
	// WorkerID names the fleet worker that produced this answer (empty
	// outside a fleet). CacheSource distinguishes where a cached answer
	// came from: "local" (this worker's rescache) or "peer" (a ring
	// peer's cache consulted after a local miss); CacheWorker names that
	// peer.
	WorkerID    string `json:"worker_id,omitempty"`
	CacheSource string `json:"cache_source,omitempty"`
	CacheWorker string `json:"cache_worker,omitempty"`
	// FaultStalls/FaultTransfers report the functional machine's
	// fault-injection stats when the server runs one (chaos mode).
	FaultTransfers int `json:"fault_transfers,omitempty"`
	FaultStalls    int `json:"fault_stalls,omitempty"`
	// Traces carries per-scheduler timeline analytics (utilization,
	// overlap efficiency, critical-path decomposition) when the request
	// asked for them with ?trace=1 — in Basic, DS, CDS order, failed
	// schedulers skipped. Cached answers trace too: timelines are
	// re-derived from the deterministic schedules.
	Traces []trace.Analytics `json:"traces,omitempty"`
}

// resolve turns a compare request into (arch, partition, breaker target).
func (s *Server) resolve(req CompareRequest) (cds.Arch, *cds.Part, string, error) {
	if len(req.Spec) > 0 {
		if req.Workload != "" {
			return cds.Arch{}, nil, "", fmt.Errorf("request names both a workload and a spec: %w", scherr.ErrInvalidSpec)
		}
		part, pa, err := spec.Parse(req.Spec)
		if err != nil {
			return cds.Arch{}, nil, "", err
		}
		return pa, part, "spec:" + part.App.Name, nil
	}
	if req.Workload == "" {
		return cds.Arch{}, nil, "", fmt.Errorf("request needs a workload name or a spec: %w", scherr.ErrInvalidSpec)
	}
	e, err := workloads.ByName(req.Workload)
	if err != nil {
		return cds.Arch{}, nil, "", fmt.Errorf("%w: %w", err, scherr.ErrInvalidSpec)
	}
	pa := e.Arch
	if req.Arch != "" {
		archs, skipped := sweep.PresetArchs(req.Arch)
		if len(skipped) > 0 {
			return cds.Arch{}, nil, "", fmt.Errorf("unknown architecture preset %q: %w", req.Arch, scherr.ErrInvalidSpec)
		}
		pa = archs[0].Params
	}
	if req.FBBytes > 0 {
		pa.FBSetBytes = req.FBBytes
	}
	return pa, e.Part, req.Workload, nil
}

// compare is the retried backend call: the comparison itself plus the
// optional functional-machine execution under fault injection. key,
// when non-nil, is the request's already-computed ComparisonKey — the
// cache-fast path hands it down so the whole request hashes the spec
// exactly once (lookup, peer fill and compute all share it).
func (s *Server) compare(ctx context.Context, pa cds.Arch, part *cds.Part, key *rescache.Key) (*cds.Comparison, faultmachine.Stats, error) {
	var stats faultmachine.Stats
	if s.cfg.Compare != nil {
		cmp, err := s.cfg.Compare(ctx, pa, part)
		return cmp, stats, err
	}
	var cmp *cds.Comparison
	var err error
	if key != nil {
		cmp, err = cds.CompareAllKeyed(ctx, pa, part, *key)
	} else {
		cmp, err = cds.CompareAllCtx(ctx, pa, part)
	}
	if err != nil {
		return cmp, stats, err
	}
	if s.cfg.Machine != nil && cmp.CDS != nil {
		_, st, merr := s.cfg.Machine.Run(cmp.CDS.Schedule, s.cfg.MachineSeed, nil)
		if merr != nil {
			return cmp, st, merr
		}
		stats = st
	}
	return cmp, stats, nil
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	// Tenant mode: the tenant must resolve before ANY work happens for
	// the request — the cache fast path below bypasses admission, and an
	// unknown tenant must not ride it to an answer.
	if !s.checkTenant(w, r) {
		return
	}
	// The body is read up front so the idempotency store can fingerprint
	// it: replay is only safe for a true duplicate (same key, same body).
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.writeErr(w, fmt.Errorf("reading request body: %v: %w", err, scherr.ErrInvalidSpec))
		return
	}
	// Idempotency: a duplicated submission (a client retry through a
	// flaky network) with the same Idempotency-Key never double-runs —
	// it waits for the first attempt and replays its 2xx answer. A key
	// reused with a DIFFERENT body is a collision: it runs for real,
	// outside the store (finish == nil).
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		finish, proceed := s.idemBegin(w, r, key, sha256.Sum256(body))
		if !proceed {
			return
		}
		if finish != nil {
			rec := &responseRecorder{ResponseWriter: w}
			w = rec
			defer func() { finish(rec.status, rec.buf.Bytes()) }()
		}
	}
	var req CompareRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeErr(w, fmt.Errorf("decoding request body: %v: %w", err, scherr.ErrInvalidSpec))
		return
	}
	pa, part, target, err := s.resolve(req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	// Cache fast path: a resident memoized comparison answers before the
	// request pays for queue admission, breaker accounting, or the retry
	// loop. Only taken when this server computes with the real pipeline —
	// a Compare test seam or a functional machine produces per-request
	// state a cached answer cannot carry.
	cacheFast := s.cfg.Compare == nil && s.cfg.Machine == nil
	var key *rescache.Key
	if cacheFast {
		// One canonical hash serves the whole request: the local lookup,
		// the peer fill and the eventual computation all address it.
		k := cds.ComparisonKey(pa, part)
		key = &k
		if cmp, ok := cds.LookupComparisonByKey(k); ok {
			s.served.Add(1)
			s.cacheHits.Add(1)
			w.Header().Set("Server-Timing", "cache;desc=hit")
			s.cfg.Logf("serve: compare %s: ok (cache hit, degraded=%v)", target, cmp.Degraded())
			s.writeCompare(w, target, cmp, faultmachine.Stats{}, 1, "local", s.maybeTrace(wantTrace, target, cmp))
			return
		}
		// Local miss: ask a ring peer's cache before computing. Traced
		// requests always compute locally — analytics need the concrete
		// *Comparison, which a peer's JSON answer does not carry.
		if s.cfg.PeerFill != nil && !wantTrace {
			if resp, ok := s.cfg.PeerFill(r.Context(), part.Fingerprint(), *key); ok {
				s.served.Add(1)
				s.cacheHits.Add(1)
				s.peerHits.Add(1)
				cds.NoteComparisonPeerFill()
				resp.Target = target
				resp.CacheWorker = resp.WorkerID
				resp.WorkerID = s.cfg.WorkerID
				resp.CacheSource = "peer"
				resp.Cached = true
				resp.Attempts = 1
				w.Header().Set("Server-Timing", "cache;desc=peer")
				s.cfg.Logf("serve: compare %s: ok (peer cache fill from %s)", target, resp.CacheWorker)
				writeJSON(w, http.StatusOK, resp)
				return
			}
		}
		w.Header().Set("Server-Timing", "cache;desc=miss")
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.served.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	br := s.breakers.Get(target)
	if err := br.Allow(); err != nil {
		s.cfg.Logf("serve: compare %s: breaker open", target)
		s.writeErr(w, err)
		return
	}

	var cmp *cds.Comparison
	var stats faultmachine.Stats
	attempts := 0
	err = s.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		attempts++
		c, st, cerr := s.compare(ctx, pa, part, key)
		if cerr != nil {
			// Transient and canceled errors bubble to the retry loop; a
			// deterministic failure that still left usable results is
			// served degraded rather than failed.
			if errors.Is(cerr, scherr.ErrTransient) || errors.Is(cerr, scherr.ErrCanceled) {
				return cerr
			}
			if c == nil || !c.Usable() {
				return cerr
			}
		}
		cmp, stats = c, st
		return nil
	})
	// The breaker tracks target health: successes and transient failures
	// count; everything else (cancellation, deadline, a caller's
	// deterministic error) says nothing about the target, but must still
	// settle the call — an unsettled half-open probe wedges the breaker.
	switch {
	case err == nil:
		br.Record(true)
	case errors.Is(err, scherr.ErrTransient):
		br.Record(false)
	default:
		br.Abort()
	}
	if err != nil {
		s.cfg.Logf("serve: compare %s: %v (attempts=%d)", target, err, attempts)
		s.writeErr(w, err)
		return
	}

	s.cfg.Logf("serve: compare %s: ok (attempts=%d degraded=%v)", target, attempts, cmp.Degraded())
	s.writeCompare(w, target, cmp, stats, attempts, "", s.maybeTrace(wantTrace, target, cmp))
}

// writeCompare renders one comparison as the /v1/compare JSON answer.
// cacheSource is "" (computed now), "local" or "peer".
func (s *Server) writeCompare(w http.ResponseWriter, target string, cmp *cds.Comparison, stats faultmachine.Stats, attempts int, cacheSource string, traces []trace.Analytics) {
	resp := CompareResponse{
		Target:         target,
		BasicFeasible:  cmp.BasicErr == nil,
		RF:             cmp.RF,
		DSImprovement:  cmp.ImprovementDS,
		CDSImprovement: cmp.ImprovementCDS,
		DTBytes:        cmp.DTBytes,
		Degraded:       cmp.Degraded(),
		Attempts:       attempts,
		Cached:         cacheSource != "",
		WorkerID:       s.cfg.WorkerID,
		CacheSource:    cacheSource,
		FaultTransfers: stats.Transfers,
		FaultStalls:    stats.Stalls,
		Traces:         traces,
	}
	fill := func(out *SchedulerResult, res *cds.Result, err error) {
		if res != nil && res.Timing != nil {
			out.TotalCycles = res.Timing.TotalCycles
		}
		if err != nil {
			out.Error = err.Error()
		}
	}
	fill(&resp.Basic, cmp.Basic, cmp.BasicErr)
	fill(&resp.DS, cmp.DS, cmp.DSErr)
	fill(&resp.CDS, cmp.CDS, cmp.CDSErr)
	writeJSON(w, http.StatusOK, resp)
}

// SweepRequest selects a grid: architecture presets crossed with Table 1
// workloads (all of them when the list is empty). Workers asks for a
// smaller pool than the server's worker budget (0 or anything larger is
// clamped to the budget). Journal, when the server has a journal
// directory, names a crash-safe checkpoint: re-POST the same request
// after a crash and completed points are not recomputed; a journal with
// a sweep already in flight answers 409.
type SweepRequest struct {
	Archs     []string `json:"archs"`
	Workloads []string `json:"workloads,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	Journal   string   `json:"journal,omitempty"`
}

// SweepResponse is the JSON answer of /v1/sweep.
type SweepResponse struct {
	Rows []sweep.Row `json:"rows"`
	// SkippedArchs lists requested presets that do not exist.
	SkippedArchs []string `json:"skipped_archs,omitempty"`
	// Resumed counts points answered from the journal instead of run.
	Resumed int `json:"resumed,omitempty"`
}

var journalNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// lockJournal claims name for one in-flight sweep; false means another
// sweep is already appending to that journal.
func (s *Server) lockJournal(name string) bool {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journals[name] {
		return false
	}
	s.journals[name] = true
	return true
}

func (s *Server) unlockJournal(name string) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	delete(s.journals, name)
}

// sweepWorkers bounds a sweep's parallelism by the server's own worker
// budget: a request may ask for less, never more (0 = the full budget).
// Without the clamp one /v1/sweep could saturate every CPU regardless
// of the operator's admission config.
func sweepWorkers(requested, budget int) int {
	if requested <= 0 || requested > budget {
		return budget
	}
	return requested
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.checkTenant(w, r) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.served.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeErr(w, fmt.Errorf("decoding request body: %v: %w", err, scherr.ErrInvalidSpec))
		return
	}
	archs, skipped := sweep.PresetArchs(req.Archs...)
	if len(archs) == 0 {
		s.writeErr(w, fmt.Errorf("no known architecture presets in %v: %w", req.Archs, scherr.ErrInvalidSpec))
		return
	}
	exps := workloads.All()
	if len(req.Workloads) > 0 {
		exps = exps[:0]
		for _, name := range req.Workloads {
			e, err := workloads.ByName(name)
			if err != nil {
				s.writeErr(w, fmt.Errorf("%w: %w", err, scherr.ErrInvalidSpec))
				return
			}
			exps = append(exps, e)
		}
	}
	jobs := sweep.Grid(archs, exps)
	workers := sweepWorkers(req.Workers, s.cfg.Workers)

	resp := SweepResponse{SkippedArchs: skipped}
	if req.Journal != "" {
		if s.cfg.JournalDir == "" {
			s.writeErr(w, fmt.Errorf("journaling disabled (no -journal-dir): %w", scherr.ErrInvalidSpec))
			return
		}
		if !journalNameRE.MatchString(req.Journal) {
			s.writeErr(w, fmt.Errorf("bad journal name %q: %w", req.Journal, scherr.ErrInvalidSpec))
			return
		}
		if !s.lockJournal(req.Journal) {
			s.cfg.Logf("serve: sweep %s: rejected, journal busy", req.Journal)
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusConflict,
				fmt.Sprintf("journal %q already has a sweep in flight", req.Journal), "journal_busy")
			return
		}
		defer s.unlockJournal(req.Journal)
		j, prior, err := sweep.OpenJournal(filepath.Join(s.cfg.JournalDir, req.Journal+".jsonl"))
		if err != nil {
			s.writeErr(w, err)
			return
		}
		defer j.Close()
		resp.Resumed = len(sweep.Completed(prior))
		// The chaos pacing knob: holding the worker after each journaled
		// point widens the window in which a SIGKILL lands mid-sweep.
		var pace func(sweep.Record)
		if d := s.cfg.SweepPointDelay; d > 0 {
			pace = func(sweep.Record) {
				t := time.NewTimer(d)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
				}
			}
		}
		rows, err := sweep.RunJournaled(ctx, j, prior, jobs, workers, pace)
		if err != nil {
			s.cfg.Logf("serve: sweep %s: %v (%d rows journaled)", req.Journal, err, len(rows))
			s.writeErr(w, err)
			return
		}
		resp.Rows = rows
		s.cfg.Logf("serve: sweep %s: %d rows (%d resumed)", req.Journal, len(rows), resp.Resumed)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	outcomes := sweep.BatchCtx(ctx, jobs, workers)
	if err := scherr.FromContext(ctx); err != nil {
		s.writeErr(w, err)
		return
	}
	resp.Rows = sweep.Rows(outcomes)
	s.cfg.Logf("serve: sweep: %d rows", len(resp.Rows))
	writeJSON(w, http.StatusOK, resp)
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class"`
}

// writeErr maps a taxonomy error onto an HTTP status:
//
//	ErrInvalidSpec        400  the request is malformed
//	ErrInfeasible         422  the workload cannot be scheduled
//	ErrOpen (breaker)     503  + Retry-After
//	ErrTransient          503  + Retry-After (fault outlived the retries)
//	deadline exceeded     504
//	other cancellation    503  (shutdown/drain)
//	anything else         500
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status, class := http.StatusInternalServerError, "internal"
	var open *retry.OpenError
	switch {
	case errors.As(err, &open):
		status, class = http.StatusServiceUnavailable, "circuit_open"
		w.Header().Set("Retry-After", retryAfterSeconds(open.RetryAfter))
	case errors.Is(err, scherr.ErrInvalidSpec):
		status, class = http.StatusBadRequest, "invalid_spec"
	case errors.Is(err, scherr.ErrInfeasible):
		status, class = http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, context.DeadlineExceeded):
		status, class = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, scherr.ErrCanceled):
		status, class = http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, scherr.ErrTransient):
		status, class = http.StatusServiceUnavailable, "transient_fault"
		w.Header().Set("Retry-After", "1")
	}
	writeJSONError(w, status, err.Error(), class)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSONError(w http.ResponseWriter, status int, msg, class string) {
	writeJSON(w, status, errorBody{Error: msg, Class: class})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
