package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cds"
	"cds/internal/retry"
	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/workloads"
)

// fakeClock drives the breaker tests by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func fastSleep(context.Context, time.Duration) error { return nil }

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(w.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
}

func TestReadyzBeforeServe(t *testing.T) {
	// Readiness belongs to Serve: a constructed-but-not-serving server
	// must tell the load balancer to stay away.
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Serve = %d, want 503", w.Code)
	}
}

func TestCompareWorkload(t *testing.T) {
	s := New(Config{})
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("compare MPEG = %d: %s", w.Code, w.Body.String())
	}
	resp := decode[CompareResponse](t, w)
	if resp.Target != "MPEG" || resp.Degraded || resp.Attempts != 1 {
		t.Fatalf("target=%q degraded=%v attempts=%d, want MPEG/false/1", resp.Target, resp.Degraded, resp.Attempts)
	}
	if resp.CDSImprovement <= 0 || resp.CDS.TotalCycles <= 0 || resp.CDS.TotalCycles >= resp.Basic.TotalCycles {
		t.Fatalf("CDS did not improve on Basic: %+v", resp)
	}
	if resp.RF <= 0 || resp.DTBytes <= 0 {
		t.Fatalf("rf=%d dt_bytes=%d, want positive", resp.RF, resp.DTBytes)
	}

	// Architecture and FB-size overrides apply to the named workload.
	w = post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG","arch":"M1/4","fb_bytes":4096}`)
	if w.Code != http.StatusOK {
		t.Fatalf("compare with overrides = %d: %s", w.Code, w.Body.String())
	}
	over := decode[CompareResponse](t, w)
	if over.CDS.TotalCycles == resp.CDS.TotalCycles {
		t.Fatal("arch/fb overrides changed nothing")
	}
}

func TestCompareSpec(t *testing.T) {
	e, err := workloads.ByName("E2")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := spec.FromPartition(e.Part, e.Arch).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": raw})
	s := New(Config{})
	w := post(t, s.Handler(), "/v1/compare", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("compare spec = %d: %s", w.Code, w.Body.String())
	}
	resp := decode[CompareResponse](t, w)
	if !strings.HasPrefix(resp.Target, "spec:") {
		t.Fatalf("spec request targeted %q, want a spec: prefix", resp.Target)
	}
	if resp.CDSImprovement <= 0 {
		t.Fatalf("spec compare produced no improvement: %+v", resp)
	}
}

func TestCompareBadRequests(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{`},
		{"neither workload nor spec", `{}`},
		{"unknown workload", `{"workload":"NOPE"}`},
		{"workload and spec together", `{"workload":"MPEG","spec":{"x":1}}`},
		{"unknown arch preset", `{"workload":"MPEG","arch":"M9"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s.Handler(), "/v1/compare", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", w.Code, w.Body.String())
			}
			if e := decode[errorBody](t, w); e.Class != "invalid_spec" {
				t.Fatalf("class = %q, want invalid_spec", e.Class)
			}
		})
	}
}

func TestCompareInfeasible(t *testing.T) {
	s := New(Config{})
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG","fb_bytes":64}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", w.Code, w.Body.String())
	}
	if e := decode[errorBody](t, w); e.Class != "infeasible" {
		t.Fatalf("class = %q, want infeasible", e.Class)
	}
}

func TestCompareDegraded(t *testing.T) {
	// A deterministic single-scheduler failure with usable survivors is
	// served degraded (200 with a per-scheduler error), not failed.
	boom := errors.New("cds scheduler crashed")
	s := New(Config{
		Compare: func(context.Context, cds.Arch, *cds.Part) (*cds.Comparison, error) {
			cmp := &cds.Comparison{DS: &cds.Result{}, CDSErr: boom, ImprovementDS: 12.5}
			return cmp, boom
		},
	})
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded compare = %d, want 200: %s", w.Code, w.Body.String())
	}
	resp := decode[CompareResponse](t, w)
	if !resp.Degraded || resp.CDS.Error == "" || resp.DSImprovement != 12.5 {
		t.Fatalf("degraded response wrong: %+v", resp)
	}
}

// TestLoadShedding pins the admission contract: Workers slots, Queue
// bounded waiters, immediate 429 + Retry-After past the bound — and the
// shed request does not starve the admitted ones.
func TestLoadShedding(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := New(Config{
		Workers: 1,
		Queue:   1,
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
			return &cds.Comparison{DS: &cds.Result{}}, nil
		},
	})

	codes := make(chan int, 2)
	serveOne := func() {
		w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
		codes <- w.Code
	}
	go serveOne() // occupies the single slot
	<-started
	go serveOne() // waits in the queue
	for i := 0; i < 200 && s.waiters.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.waiters.Load() != 1 {
		t.Fatalf("waiters = %d, want 1", s.waiters.Load())
	}

	// Queue full: the third request is shed synchronously.
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if e := decode[errorBody](t, w); e.Class != "overload" {
		t.Fatalf("class = %q, want overload", e.Class)
	}
	if s.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", s.Shed())
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("admitted request %d finished %d, want 200", i, code)
		}
	}
}

// TestBreakerTripsPerTarget drives the server's circuit discipline: a
// target failing transiently trips its own breaker after the threshold,
// open-circuit requests never reach the backend, siblings stay
// unaffected, and the cooldown probe closes the circuit again.
func TestBreakerTripsPerTarget(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	var calls atomic.Int64
	failing.Store(true)
	s := New(Config{
		Retry:            retry.Policy{MaxAttempts: 1, Sleep: fastSleep},
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Now:              clk.Now,
		Compare: func(context.Context, cds.Arch, *cds.Part) (*cds.Comparison, error) {
			calls.Add(1)
			if failing.Load() {
				return nil, fmt.Errorf("injected DMA fault: %w", scherr.ErrTransient)
			}
			return &cds.Comparison{CDS: &cds.Result{}}, nil
		},
	})

	for i := 0; i < 2; i++ {
		w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("failing request %d = %d, want 503", i, w.Code)
		}
		if e := decode[errorBody](t, w); e.Class != "transient_fault" {
			t.Fatalf("class = %q, want transient_fault", e.Class)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("transient 503 missing Retry-After")
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("backend called %d times, want 2", calls.Load())
	}

	// Threshold reached: the circuit is open and the backend is spared.
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit request = %d, want 503", w.Code)
	}
	if e := decode[errorBody](t, w); e.Class != "circuit_open" {
		t.Fatalf("class = %q, want circuit_open", e.Class)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("circuit_open missing Retry-After")
	}
	if calls.Load() != 2 {
		t.Fatalf("open circuit let a call through to the backend (calls=%d)", calls.Load())
	}

	// A sibling target has its own breaker: it still reaches the backend.
	w = post(t, s.Handler(), "/v1/compare", `{"workload":"E2"}`)
	if e := decode[errorBody](t, w); w.Code != http.StatusServiceUnavailable || e.Class != "transient_fault" {
		t.Fatalf("sibling target = %d/%q, want 503/transient_fault", w.Code, e.Class)
	}
	if calls.Load() != 3 {
		t.Fatalf("sibling target did not reach the backend (calls=%d)", calls.Load())
	}

	// Cooldown passes and the fault clears: the half-open probe closes
	// the circuit, and traffic flows again.
	clk.Advance(11 * time.Second)
	failing.Store(false)
	for i := 0; i < 3; i++ {
		w = post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("post-recovery request %d = %d, want 200: %s", i, w.Code, w.Body.String())
		}
	}
}

// TestBreakerProbeAbortNoWedge pins the half-open anti-wedge: when the
// single cooldown probe ends with an error that says nothing about the
// target (here a cancellation), the breaker must NOT stay half-open
// forever rejecting every call — the next cooldown admits a fresh probe
// and a now-healthy target closes the circuit.
func TestBreakerProbeAbortNoWedge(t *testing.T) {
	clk := newFakeClock()
	var mode atomic.Int32 // 0 = transient fail, 1 = canceled, 2 = healthy
	s := New(Config{
		Retry:            retry.Policy{MaxAttempts: 1, Sleep: fastSleep},
		BreakerThreshold: 1,
		BreakerCooldown:  10 * time.Second,
		Now:              clk.Now,
		Compare: func(context.Context, cds.Arch, *cds.Part) (*cds.Comparison, error) {
			switch mode.Load() {
			case 0:
				return nil, fmt.Errorf("injected DMA fault: %w", scherr.ErrTransient)
			case 1:
				return nil, scherr.Canceled(context.Canceled)
			default:
				return &cds.Comparison{CDS: &cds.Result{}}, nil
			}
		},
	})
	body := `{"workload":"MPEG"}`

	// Trip the breaker, then feed the half-open probe a verdict-free
	// cancellation.
	if w := post(t, s.Handler(), "/v1/compare", body); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("tripping request = %d, want 503", w.Code)
	}
	clk.Advance(11 * time.Second)
	mode.Store(1)
	if w := post(t, s.Handler(), "/v1/compare", body); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled probe = %d, want 503", w.Code)
	}

	// Still open while the restarted cooldown runs...
	mode.Store(2)
	w := post(t, s.Handler(), "/v1/compare", body)
	if e := decode[errorBody](t, w); w.Code != http.StatusServiceUnavailable || e.Class != "circuit_open" {
		t.Fatalf("mid-cooldown request = %d/%q, want 503/circuit_open", w.Code, e.Class)
	}
	// ...but the next probe gets through: the breaker did not wedge.
	clk.Advance(11 * time.Second)
	if w := post(t, s.Handler(), "/v1/compare", body); w.Code != http.StatusOK {
		t.Fatalf("probe after aborted probe = %d, want 200: %s", w.Code, w.Body.String())
	}
	if w := post(t, s.Handler(), "/v1/compare", body); w.Code != http.StatusOK {
		t.Fatalf("post-recovery request = %d, want 200", w.Code)
	}
}

// TestSweepJournalBusy pins per-journal serialization: while one sweep
// holds a journal name, a second request naming it is rejected with 409
// + Retry-After instead of interleaving appends into the same file, and
// the name is usable again once released.
func TestSweepJournalBusy(t *testing.T) {
	s := New(Config{JournalDir: t.TempDir()})
	body := `{"archs":["M1/4"],"workloads":["MPEG"],"journal":"nightly"}`

	if !s.lockJournal("nightly") {
		t.Fatal("fresh journal name could not be locked")
	}
	w := post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusConflict {
		t.Fatalf("busy journal = %d, want 409: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("journal_busy response missing Retry-After")
	}
	if e := decode[errorBody](t, w); e.Class != "journal_busy" {
		t.Fatalf("class = %q, want journal_busy", e.Class)
	}

	// Other journal names are unaffected.
	w = post(t, s.Handler(), "/v1/sweep", `{"archs":["M1/4"],"workloads":["MPEG"],"journal":"other"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("sibling journal = %d, want 200: %s", w.Code, w.Body.String())
	}

	s.unlockJournal("nightly")
	w = post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("released journal = %d, want 200: %s", w.Code, w.Body.String())
	}
	// The handler released its own lock too: a re-POST resumes cleanly.
	w = post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("re-POST after handler = %d, want 200: %s", w.Code, w.Body.String())
	}
	if resp := decode[SweepResponse](t, w); resp.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1", resp.Resumed)
	}
}

// TestSweepWorkersClamp pins that a sweep's parallelism never exceeds
// the server's worker budget, whatever the client asks for.
func TestSweepWorkersClamp(t *testing.T) {
	cases := []struct {
		requested, budget, want int
	}{
		{0, 2, 2},  // default: the full budget
		{-3, 2, 2}, // nonsense: the full budget
		{1, 2, 1},  // asking for less is honored
		{64, 2, 2}, // asking for more is clamped
		{2, 2, 2},  // exactly the budget
	}
	for _, tc := range cases {
		if got := sweepWorkers(tc.requested, tc.budget); got != tc.want {
			t.Errorf("sweepWorkers(%d, %d) = %d, want %d", tc.requested, tc.budget, got, tc.want)
		}
	}
}

// TestDrainGraceClampedToDeadline pins the grace/deadline interaction:
// a DrainGrace far beyond the drain deadline must not eat the whole
// budget — an idle server still drains cleanly (nil) inside the
// deadline instead of force-closing and failing.
func TestDrainGraceClampedToDeadline(t *testing.T) {
	s := New(Config{DrainGrace: time.Hour})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain with grace >= deadline = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain took %v, beyond the 2s deadline", elapsed)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
}

// TestDrainGracefulWithInFlight runs the full lifecycle on a real
// listener: readiness flips to 503 the moment Drain starts (while the
// listener still answers, thanks to DrainGrace), the in-flight request
// completes, and Drain returns nil.
func TestDrainGracefulWithInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{
		DrainGrace: 200 * time.Millisecond,
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
			return &cds.Comparison{DS: &cds.Result{}}, nil
		},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	get := func(path string) (int, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if code, err := get("/readyz"); err != nil || code != http.StatusOK {
		t.Fatalf("readyz while serving = %d, %v; want 200", code, err)
	}

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/compare", "application/json", strings.NewReader(`{"workload":"MPEG"}`))
		if err != nil {
			inflight <- 0
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		inflight <- resp.StatusCode
	}()
	<-started

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()

	// During the grace window the listener still answers and tells the
	// load balancer to stop routing.
	flipped := false
	for i := 0; i < 100 && !flipped; i++ {
		code, err := get("/readyz")
		if err == nil && code == http.StatusServiceUnavailable {
			flipped = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !flipped {
		t.Fatal("readyz never flipped to 503 during the drain grace window")
	}

	close(release)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", code)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v, want nil (everything finished in time)", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
	if s.Ready() {
		t.Fatal("server still reports ready after drain")
	}
}

func TestSweepEndpoint(t *testing.T) {
	s := New(Config{})
	w := post(t, s.Handler(), "/v1/sweep", `{"archs":["M1/4","nope"],"workloads":["MPEG","E2"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", w.Code, w.Body.String())
	}
	resp := decode[SweepResponse](t, w)
	if len(resp.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(resp.Rows))
	}
	if !reflect.DeepEqual(resp.SkippedArchs, []string{"nope"}) {
		t.Fatalf("skipped_archs = %v, want [nope]", resp.SkippedArchs)
	}
	for _, row := range resp.Rows {
		if row.Err != "" || row.CDSImp <= 0 {
			t.Fatalf("bad sweep row: %+v", row)
		}
	}

	// No recognizable preset at all is a request error.
	w = post(t, s.Handler(), "/v1/sweep", `{"archs":["nope"]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("all-unknown sweep = %d, want 400", w.Code)
	}
}

func TestSweepJournalLifecycle(t *testing.T) {
	s := New(Config{JournalDir: t.TempDir()})
	body := `{"archs":["M1/4"],"workloads":["MPEG","E2","E3"],"journal":"nightly"}`

	w := post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("first journaled sweep = %d: %s", w.Code, w.Body.String())
	}
	first := decode[SweepResponse](t, w)
	if first.Resumed != 0 || len(first.Rows) != 3 {
		t.Fatalf("first sweep resumed=%d rows=%d, want 0/3", first.Resumed, len(first.Rows))
	}

	// Re-POSTing the same request answers from the journal: every point
	// resumed, rows identical.
	w = post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("resumed sweep = %d: %s", w.Code, w.Body.String())
	}
	second := decode[SweepResponse](t, w)
	if second.Resumed != 3 {
		t.Fatalf("resumed = %d, want 3 (all journaled)", second.Resumed)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatalf("resumed rows differ:\nfirst  %+v\nsecond %+v", first.Rows, second.Rows)
	}
}

func TestSweepJournalValidation(t *testing.T) {
	withDir := New(Config{JournalDir: t.TempDir()})
	w := post(t, withDir.Handler(), "/v1/sweep", `{"archs":["M1/4"],"journal":"../evil"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("path-traversal journal name = %d, want 400: %s", w.Code, w.Body.String())
	}

	noDir := New(Config{})
	w = post(t, noDir.Handler(), "/v1/sweep", `{"archs":["M1/4"],"journal":"nightly"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("journal without a journal dir = %d, want 400: %s", w.Code, w.Body.String())
	}
	if e := decode[errorBody](t, w); e.Class != "invalid_spec" {
		t.Fatalf("class = %q, want invalid_spec", e.Class)
	}
}

// TestCompareCacheFastPath: a re-posed spec is answered from the result
// cache — marked in the body and the Server-Timing header — and the
// answer matches the computed one.
func TestCompareCacheFastPath(t *testing.T) {
	s := New(Config{})
	// An FB size no other test uses, so the first request is a genuine miss.
	body := `{"workload":"MPEG","fb_bytes":2944}`
	w1 := post(t, s.Handler(), "/v1/compare", body)
	if w1.Code != http.StatusOK {
		t.Fatalf("fill = %d: %s", w1.Code, w1.Body.String())
	}
	if got := w1.Header().Get("Server-Timing"); got != "cache;desc=miss" {
		t.Errorf("fill Server-Timing = %q, want cache;desc=miss", got)
	}
	fill := decode[CompareResponse](t, w1)
	if fill.Cached {
		t.Error("first request claims to be cached")
	}

	w2 := post(t, s.Handler(), "/v1/compare", body)
	if w2.Code != http.StatusOK {
		t.Fatalf("hit = %d: %s", w2.Code, w2.Body.String())
	}
	if got := w2.Header().Get("Server-Timing"); got != "cache;desc=hit" {
		t.Errorf("hit Server-Timing = %q, want cache;desc=hit", got)
	}
	hit := decode[CompareResponse](t, w2)
	if !hit.Cached || hit.Attempts != 1 {
		t.Errorf("cached=%v attempts=%d, want true/1", hit.Cached, hit.Attempts)
	}
	if hit.CDS.TotalCycles != fill.CDS.TotalCycles || hit.RF != fill.RF || hit.DTBytes != fill.DTBytes {
		t.Errorf("cached answer drifted: fill=%+v hit=%+v", fill, hit)
	}
	if n := s.cacheHits.Load(); n != 1 {
		t.Errorf("cacheHits = %d, want 1", n)
	}
}
