package serve

// The ISSUE's acceptance soak: N requests hammered through the real
// backend (cds.CompareAllCtx plus a functional-machine execution under
// seeded stall/failure injection) against a small worker pool. Every
// response must be a 200 or a 429 — the retry layer absorbs the fault
// window, admission control sheds the overflow, and nothing else leaks
// out. A second phase drains the server mid-soak and proves in-flight
// requests finish while the drain still returns clean.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cds"
	"cds/internal/faultmachine"
	"cds/internal/retry"
	"cds/internal/scherr"
)

// soakConfig is the shared server shape: 2 slots, a queue of 2, a fault
// window of 4 machine runs (every one of them < MaxAttempts away from a
// clean run, so retries always absorb it), and breakers wide enough to
// never trip during the soak.
func soakConfig() Config {
	return Config{
		Workers:          2,
		Queue:            2,
		RequestTimeout:   30 * time.Second,
		Retry:            retry.Policy{MaxAttempts: 6, Seed: 9, Sleep: fastSleep},
		BreakerThreshold: 100,
		Machine: faultmachine.NewRunner(faultmachine.Config{
			Seed:         42,
			StallProbPct: 60,
			FailEvery:    5,
		}, 4),
		MachineSeed: 7,
	}
}

// TestCompareChaosMode pins the server's own fault-injection path (the
// -fault-* flags): the CDS schedule of every comparison runs on the
// functional machine, injected transient failures are absorbed by the
// retry policy, and the stall stats surface in the response.
func TestCompareChaosMode(t *testing.T) {
	cfg := soakConfig()
	cfg.Machine = faultmachine.NewRunner(faultmachine.Config{
		Seed:         42,
		StallProbPct: 100, // every transfer stalls: stats must be visible
		FailEvery:    5,
	}, 1) // exactly the first machine run fails
	s := New(cfg)
	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("chaos compare = %d: %s", w.Code, w.Body.String())
	}
	resp := decode[CompareResponse](t, w)
	if resp.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one injected failure, one retry)", resp.Attempts)
	}
	if resp.FaultStalls == 0 || resp.FaultTransfers == 0 {
		t.Fatalf("fault stats missing from the response: %+v", resp)
	}
	if resp.CDSImprovement <= 0 {
		t.Fatalf("chaos mode changed the comparison result: %+v", resp)
	}
}

func TestSoakUnderStallInjection(t *testing.T) {
	const requests = 200

	// The real backend plus the seeded fault runner, holding the
	// execution slot for a short emulated device latency. Without it a
	// 1-CPU box finishes every CPU-bound handler within its scheduler
	// timeslice and the admission queue can never fill.
	runner := faultmachine.NewRunner(faultmachine.Config{
		Seed:         42,
		StallProbPct: 60,
		FailEvery:    5,
	}, 4)
	var stalls atomic.Int64
	cfg := soakConfig()
	cfg.Machine = nil
	cfg.Compare = func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
		cmp, err := cds.CompareAllCtx(ctx, pa, part)
		if err != nil {
			return cmp, err
		}
		if cmp.CDS != nil {
			_, st, merr := runner.Run(cmp.CDS.Schedule, 7, nil)
			if merr != nil {
				return cmp, merr
			}
			stalls.Add(int64(st.Stalls))
		}
		select {
		case <-time.After(3 * time.Millisecond):
		case <-ctx.Done():
			return nil, scherr.Canceled(ctx.Err())
		}
		return cmp, nil
	}
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	var (
		ok200, shed429 atomic.Int64
		mu             sync.Mutex
		bad            []string
	)
	reject := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	// The whole soak fires as one concurrent burst: 200 clients against
	// 2 slots + 2 queue places is overload by construction, so admission
	// control MUST shed. Clients behave: a 429 backs off and retries, so
	// every request eventually succeeds — zero non-429 errors.
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				resp, err := http.Post(base+"/v1/compare", "application/json", strings.NewReader(`{"workload":"MPEG"}`))
				if err != nil {
					reject("request %d: %v", i, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					shed429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						reject("request %d: 429 without Retry-After", i)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					reject("request %d: status %d: %s", i, resp.StatusCode, body)
					return
				}
				var cr CompareResponse
				if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
					reject("request %d: decoding 200 body: %v", i, err)
				} else if cr.CDSImprovement <= 0 {
					reject("request %d: 200 with cds_improvement %v", i, cr.CDSImprovement)
				} else {
					ok200.Add(1)
				}
				resp.Body.Close()
				return
			}
		}(i)
	}
	wg.Wait()

	for _, msg := range bad {
		t.Error(msg)
	}
	if ok200.Load() != requests {
		t.Fatalf("%d of %d requests succeeded", ok200.Load(), requests)
	}
	// Overload by construction: the queue bound working at all is part
	// of the acceptance.
	if shed429.Load() == 0 {
		t.Fatal("no request was load-shed; the queue bound is not enforced")
	}
	if s.Shed() != shed429.Load() {
		t.Fatalf("Shed() = %d but clients saw %d 429s", s.Shed(), shed429.Load())
	}
	// The injected stalls really ran: fault injection was not silently off.
	if stalls.Load() == 0 {
		t.Fatal("no DMA stalls reported; fault injection did not engage")
	}
	if runner.Runs() <= requests/2 {
		t.Fatalf("machine ran %d times for %d served requests", runner.Runs(), requests)
	}
	t.Logf("soak: %d ok, %d shed, %d injected stalls, %d machine runs", ok200.Load(), shed429.Load(), stalls.Load(), runner.Runs())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
}

// TestSoakDrainMidFlight fires a request wave and drains the server in
// the middle of it: every response that arrives is a valid 200/429,
// connection errors only ever happen after the drain began, and Drain
// itself returns nil because the in-flight requests finish in time.
func TestSoakDrainMidFlight(t *testing.T) {
	const wave = 48
	s := New(soakConfig())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	var (
		drainStarted atomic.Bool
		responses    atomic.Int64
		lateErrors   atomic.Int64
		mu           sync.Mutex
		bad          []string
	)
	var wg sync.WaitGroup
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/compare", "application/json", strings.NewReader(`{"workload":"MPEG"}`))
			if err != nil {
				if !drainStarted.Load() {
					mu.Lock()
					bad = append(bad, fmt.Sprintf("request %d failed before the drain began: %v", i, err))
					mu.Unlock()
				} else {
					lateErrors.Add(1)
				}
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			responses.Add(1)
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("request %d: status %d", i, resp.StatusCode))
				mu.Unlock()
			}
		}(i)
	}

	// Let part of the wave land, then pull the plug. Waiting for a real
	// response (not a fixed sleep) keeps the "something completed before
	// the drain" invariant deterministic under -race on a loaded box.
	for i := 0; responses.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	drainStarted.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("mid-soak drain: %v", err)
	}
	wg.Wait()

	for _, msg := range bad {
		t.Error(msg)
	}
	if responses.Load() == 0 {
		t.Fatal("no request completed before the drain")
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
	t.Logf("drain mid-soak: %d responses, %d post-drain connection errors", responses.Load(), lateErrors.Load())
}
