package serve

// POST /v1/stream: the incremental online-scheduling endpoint. The body
// is a StreamRequest wrapping an arrival log (internal/stream's JSON
// shape). The server plans it with its daemon-lived planner — segment
// schedules are memoized across requests under content fingerprints, so
// a client following an evolving stream re-posts the whole log and pays
// CDS only for the segments that changed — then executes the stitched
// schedule under the streaming simulator (serialized and prefetching),
// audits both runs against the prefetch invariant family, and answers
// with the per-segment plan, the reuse split and both makespans.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/stream"
	"cds/internal/trace"
	"cds/internal/verify"
)

// StreamRequest is the POST /v1/stream body.
type StreamRequest struct {
	// Log is the arrival log to plan (stream.Log's JSON shape).
	Log json.RawMessage `json:"log"`
}

// StreamSegment is one segment's slice of the StreamResponse.
type StreamSegment struct {
	Name string `json:"name"`
	At   int    `json:"at"`
	// Fingerprint is the content key (hex) the segment's schedule is
	// memoized under.
	Fingerprint string `json:"fingerprint"`
	RF          int    `json:"rf"`
	Visits      int    `json:"visits"`
	// Reused reports whether this request took the segment's schedule
	// from the memo instead of running CDS.
	Reused bool `json:"reused"`
}

// StreamResponse is the JSON answer of /v1/stream.
type StreamResponse struct {
	Name     string          `json:"name"`
	Segments []StreamSegment `json:"segments"`
	// Reused and Replanned count this request's memo hits and CDS runs;
	// MemoSegments is the planner's residency after the request.
	Reused       int `json:"reused"`
	Replanned    int `json:"replanned"`
	MemoSegments int `json:"memo_segments"`
	// SerialCycles and PrefetchCycles are the streamed makespans without
	// and with context prefetch; PrefetchedBursts counts hoisted context
	// loads.
	SerialCycles     int    `json:"serial_cycles"`
	PrefetchCycles   int    `json:"prefetch_cycles"`
	PrefetchedBursts int    `json:"prefetched_bursts"`
	WorkerID         string `json:"worker_id,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.writeErr(w, fmt.Errorf("reading request body: %v: %w", err, scherr.ErrInvalidSpec))
		return
	}
	var req StreamRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeErr(w, fmt.Errorf("decoding request body: %v: %w", err, scherr.ErrInvalidSpec))
		return
	}
	if len(req.Log) == 0 {
		s.writeErr(w, fmt.Errorf("request needs an arrival log: %w", scherr.ErrInvalidSpec))
		return
	}
	lg, err := stream.ParseLog(req.Log)
	if err != nil {
		s.writeErr(w, err)
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.served.Add(1)
	s.streamReqs.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	plan, err := s.planner.Plan(ctx, lg)
	if err != nil {
		s.cfg.Logf("serve: stream %s: %v", lg.Name, err)
		s.writeErr(w, err)
		return
	}
	s.streamReused.Add(int64(plan.Reused))

	resp := StreamResponse{
		Name:         plan.Name,
		Reused:       plan.Reused,
		Replanned:    plan.Replanned,
		MemoSegments: s.planner.MemoLen(),
		WorkerID:     s.cfg.WorkerID,
	}
	for _, seg := range plan.Segments {
		resp.Segments = append(resp.Segments, StreamSegment{
			Name:        seg.Name,
			At:          seg.At,
			Fingerprint: fmt.Sprintf("%x", seg.Fingerprint),
			RF:          seg.RF,
			Visits:      len(seg.Schedule.Visits),
			Reused:      seg.Reused,
		})
	}
	for _, prefetch := range []bool{false, true} {
		res, tl, rerr := plan.Trace(prefetch, plan.Name)
		if rerr != nil {
			s.writeErr(w, rerr)
			return
		}
		if verr := s.verifyStream(plan, prefetch, res, tl); verr != nil {
			s.cfg.Logf("serve: stream %s: %v", lg.Name, verr)
			s.writeErr(w, verr)
			return
		}
		if prefetch {
			resp.PrefetchCycles = res.TotalCycles
			resp.PrefetchedBursts = res.PrefetchCount
		} else {
			resp.SerialCycles = res.TotalCycles
		}
	}

	s.cfg.Logf("serve: stream %s: ok (%d segments, %d reused, %d replanned)",
		lg.Name, len(plan.Segments), plan.Reused, plan.Replanned)
	writeJSON(w, http.StatusOK, resp)
}

// verifyStream audits one streamed execution before it is served: a
// schedule that fails its own invariants must never reach a client.
func (s *Server) verifyStream(plan *stream.Plan, prefetch bool, res *sim.Result, tl *trace.Timeline) error {
	return verify.StreamTimeline(plan.Schedule, plan.Opts(prefetch), res, tl)
}
