package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"cds/internal/spec"
	"cds/internal/stream"
	"cds/internal/workloads"
)

// streamBody wraps an arrival log as a /v1/stream request body.
func streamBody(t *testing.T, lg *stream.Log) string {
	t.Helper()
	raw, err := lg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(StreamRequest{Log: raw})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func genLog(t *testing.T, seed int64, index int) *stream.Log {
	t.Helper()
	a := workloads.GenArrivals(seed, index)
	lg, err := stream.Split(a.Spec, a.SegClusters, a.ArriveAt)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// Re-posting the same log must reuse every segment from the planner's
// memo; an evolved tail must replan only the divergent segment.
func TestStreamEndpointDeltaReplans(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.cancel()
	lg := genLog(t, 11, 1)

	w := post(t, s.Handler(), "/v1/stream", streamBody(t, lg))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", w.Code, w.Body.String())
	}
	first := decode[StreamResponse](t, w)
	if first.Reused != 0 || first.Replanned != len(lg.Segments) {
		t.Errorf("cold request reused/replanned = %d/%d, want 0/%d",
			first.Reused, first.Replanned, len(lg.Segments))
	}
	if first.PrefetchCycles > first.SerialCycles {
		t.Errorf("prefetch %d beats serialized %d the wrong way",
			first.PrefetchCycles, first.SerialCycles)
	}
	if len(first.Segments) != len(lg.Segments) {
		t.Fatalf("response carries %d segments, log has %d", len(first.Segments), len(lg.Segments))
	}

	w = post(t, s.Handler(), "/v1/stream", streamBody(t, lg))
	again := decode[StreamResponse](t, w)
	if again.Replanned != 0 || again.Reused != len(lg.Segments) {
		t.Errorf("warm request reused/replanned = %d/%d, want %d/0",
			again.Reused, again.Replanned, len(lg.Segments))
	}
	if again.SerialCycles != first.SerialCycles || again.PrefetchCycles != first.PrefetchCycles {
		t.Errorf("warm request changed the makespans: %+v vs %+v", again, first)
	}

	// Evolve the tail: the last segment's kernel costs change.
	last := &lg.Segments[len(lg.Segments)-1]
	last.Kernels[0].ComputeCycles += 97
	w = post(t, s.Handler(), "/v1/stream", streamBody(t, lg))
	delta := decode[StreamResponse](t, w)
	if delta.Replanned != 1 || delta.Reused != len(lg.Segments)-1 {
		t.Errorf("delta request reused/replanned = %d/%d, want %d/1",
			delta.Reused, delta.Replanned, len(lg.Segments)-1)
	}
	for i, seg := range delta.Segments[:len(delta.Segments)-1] {
		if !seg.Reused {
			t.Errorf("unchanged segment %d not reused", i)
		}
	}
	if delta.Segments[len(delta.Segments)-1].Reused {
		t.Error("mutated tail segment claims reuse")
	}
	if delta.MemoSegments == 0 {
		t.Error("planner memo reported empty after three requests")
	}
}

func TestStreamEndpointRejections(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.cancel()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed body", `{`, http.StatusBadRequest},
		{"missing log", `{}`, http.StatusBadRequest},
		{"invalid log", `{"log":{"name":"x","iterations":0,"segments":[]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := post(t, s.Handler(), "/v1/stream", c.body); w.Code != c.want {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, w.Code, c.want, w.Body.String())
		}
	}

	// A log whose segment is valid but cannot fit its machine (three
	// set-sized inputs in one cluster) is unprocessable, not a server
	// error.
	lg := &stream.Log{
		Name:       "fat",
		Iterations: 1,
		Arch:       &spec.Arch{FBSetBytes: 1024, CMWords: 256},
		Segments: []stream.Segment{{
			Data: []spec.Datum{
				{Name: "a", Size: 1024},
				{Name: "b", Size: 1024},
				{Name: "c", Size: 1024},
				{Name: "out", Size: 64, Final: true},
			},
			Kernels: []spec.Kernel{{
				Name: "k", ContextWords: 8, ComputeCycles: 10,
				Inputs: []string{"a", "b", "c"}, Outputs: []string{"out"},
			}},
			Clusters: []int{1},
		}},
	}
	if w := post(t, s.Handler(), "/v1/stream", streamBody(t, lg)); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("infeasible log: status = %d, want 422 (body %s)", w.Code, w.Body.String())
	}
}

// The memo bound holds under many distinct logs: residency never
// exceeds the configured cap.
func TestStreamEndpointMemoBounded(t *testing.T) {
	s := New(Config{Workers: 1, StreamMemoSegments: 4})
	defer s.cancel()
	for i := 0; i < 6; i++ {
		lg := genLog(t, 13, i)
		w := post(t, s.Handler(), "/v1/stream", streamBody(t, lg))
		if w.Code != http.StatusOK && w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("scenario %d: status = %d body=%s", i, w.Code, w.Body.String())
		}
		if w.Code != http.StatusOK {
			continue
		}
		resp := decode[StreamResponse](t, w)
		if resp.MemoSegments > 4 {
			t.Fatalf("scenario %d: memo grew to %d segments, bound is 4", i, resp.MemoSegments)
		}
	}
}
